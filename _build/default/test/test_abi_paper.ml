(* The paper's query suite on other ABIs: a 32-bit little-endian debuggee
   (like the paper's DECstation) and a big-endian 64-bit one.  The same
   DUEL queries must produce the same answers — pointer widths, struct
   layouts, and byte orders all differ underneath. *)

module Session = Duel_core.Session
module Abi = Duel_ctype.Abi

let case = Support.case

let kit_abi abi =
  let inf = Duel_scenarios.Scenarios.all ~abi () in
  { Support.session = Session.create (Duel_target.Backend.direct inf); inf }

let queries_and_expected =
  [
    ("x[1..4,8,12..50] >? 5 <? 10", [ "x[3] = 7"; "x[18] = 9"; "x[47] = 6" ]);
    ( "(hash[..1024] !=? 0)->scope >? 5",
      [ "hash[42]->scope = 7"; "hash[529]->scope = 8" ] );
    ( "hash[0]-->next->scope",
      [ "hash[0]->scope = 4"; "hash[0]->next->scope = 3";
        "hash[0]->next->next->scope = 2"; "hash[0]->next->next->next->scope = 1" ] );
    ( "root-->(left,right)->key",
      [ "root->key = 9"; "root->left->key = 3"; "root->left->left->key = 4";
        "root->left->right->key = 5"; "root->right->key = 12" ] );
    ( "hash[..1024]-->next->if (next) scope <? next->scope",
      [ "hash[287]-->next[[8]]->scope = 5" ] );
    ("#/(root-->(left,right)->key)", [ "#/(root-->(left,right)->key) = 5" ]);
    ( "L-->next->(value ==? next-->next->value)",
      [ "L-->next[[4]]->value = 27" ] );
    ( "hash[1,9]->(scope,name)",
      [ "hash[1]->scope = 3"; "hash[1]->name = \"x\""; "hash[9]->scope = 2";
        "hash[9]->name = \"abc\"" ] );
    ( "argv[0..]@0",
      [ "argv[0] = \"duel\""; "argv[1] = \"-q\""; "argv[2] = \"x[1..4]\"";
        "argv[3] = \"0\"" ] );
    ("pk.lo, pk.mid, pk.hi", [ "pk.lo = 5"; "pk.mid = 77"; "pk.hi = -1" ]);
  ]

let run_all abi_name abi () =
  let k = kit_abi abi in
  List.iter
    (fun (query, expected) ->
      Alcotest.(check (list string))
        (abi_name ^ ": " ^ query)
        expected (Support.exec k query))
    queries_and_expected

let sizes_ilp32 () =
  let k = kit_abi Abi.ilp32 in
  Alcotest.(check (list string)) "struct symbol is 12 bytes"
    [ "sizeof(struct symbol) = 12" ]
    (Support.exec k "sizeof(struct symbol)");
  Alcotest.(check (list string)) "hash is 4096 bytes" [ "sizeof hash = 4096" ]
    (Support.exec k "sizeof hash");
  Alcotest.(check (list string)) "pointer diff still element-scaled"
    [ "&hash[2]-&hash[0] = 2" ]
    (Support.exec k "&hash[2] - &hash[0]")

let suite =
  [
    case "paper query suite on ILP32 (DECstation-like)" (run_all "ilp32" Abi.ilp32);
    case "paper query suite on big-endian LP64" (run_all "be" (Abi.big_endian Abi.lp64));
    case "paper query suite on big-endian ILP32"
      (run_all "be32" (Abi.big_endian Abi.ilp32));
    case "ILP32 sizes" sizes_ilp32;
  ]
