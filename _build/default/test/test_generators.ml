(* DUEL generator semantics, operator by operator. *)

open Support

let suite =
  [
    (* to / up-to / to-inf *)
    q "range" "1..3" [ "1 = 1"; "2 = 2"; "3 = 3" ];
    q "empty range" "3..1" [];
    q "upto excludes bound" "..3" [ "0 = 0"; "1 = 1"; "2 = 2" ];
    q "range with generator bounds" "(1,5)..(2,6)"
      [ "1 = 1"; "2 = 2"; "1 = 1"; "2 = 2"; "3 = 3"; "4 = 4"; "5 = 5";
        "6 = 6"; "5 = 5"; "6 = 6" ];
    q "infinite range truncated" "(0..)[[3]]" [ "3 = 3" ];
    (* alternation *)
    q "alternation order" "5,1,3" [ "5 = 5"; "1 = 1"; "3 = 3" ];
    q "nested alternation" "(1,2),(3,4)" [ "1 = 1"; "2 = 2"; "3 = 3"; "4 = 4" ];
    (* cross products *)
    q "binary cross product" "(1,2)+(10,20)"
      [ "1+10 = 11"; "1+20 = 21"; "2+10 = 12"; "2+20 = 22" ];
    q "left drives outer loop" "(1..2)*(1..2)"
      [ "1*1 = 1"; "1*2 = 2"; "2*1 = 2"; "2*2 = 4" ];
    q "empty operand gives empty product" "(3..1)+5" [];
    (* filters *)
    q "filter keeps left value" "(1..5) >? 3" [ "4 = 4"; "5 = 5" ];
    q "filter chain" "(1..10) >? 3 <? 6" [ "4 = 4"; "5 = 5" ];
    q "filter equality" "(1..5) ==? 3" [ "3 = 3" ];
    q "filter not equal" "(1..3) !=? 2" [ "1 = 1"; "3 = 3" ];
    q "filter ge le" "(1..5) >=? 4 <=? 4" [ "4 = 4" ];
    q "filter with generator rhs" "(1..4) ==? (2,4)" [ "2 = 2"; "4 = 4" ];
    q "filter repeats left per matching right" "5 >? (1,2)" [ "5 = 5"; "5 = 5" ];
    (* logicals over generators *)
    q "and over generators" "(0,1,2) && 7" [ "1 && 7 = 7"; "2 && 7 = 7" ];
    q "or over generators" "(0,3) || 9" [ "0 || 9 = 9"; "3 = 1" ];
    (* if / while / for as expressions *)
    q "if without else skips" "if (0) 5" [];
    q "if over a generator condition" "if (0,1,0,2) (7)" [ "7 = 7"; "7 = 7" ];
    q "if else" "if (i0) 1 else 2" [ "2 = 2" ];
    qf "while loop" "int k; k = 0; while (k < 3) (k++; k)"
      [ "k = 1"; "k = 2"; "k = 3" ];
    qf "for yields body values" "int k; for (k = 0; k < 3; k++) k * 10"
      [ "k*10 = 0"; "k*10 = 10"; "k*10 = 20" ];
    qf "for without body values" "int k; for (k = 0; k < 3; k++) if (0) k" [];
    (* the paper's while: all condition values non-zero, then restart *)
    q "while restarts after the body (truncated by select)"
      "(while (v[..8]) 1)[[0..2]]" [ "1 = 1"; "1 = 1"; "1 = 1" ];
    qf "while stops when any condition value is zero"
      "w[1] = 0; while (w[..3]) 42" [];
    qf "bit-field increment" "pk.lo++; pk.lo" [ "pk.lo = 6" ];
    (* sequencing and imply *)
    q "sequence discards left" "1..3; 42" [ "42 = 42" ];
    q "sequence keeps left effects" "int m; m = 9; m + 1" [ "m+1 = 10" ];
    q "trailing semicolon silences" "1..3 ;" [];
    q "imply repeats right per left value" "1..3 => 7"
      [ "7 = 7"; "7 = 7"; "7 = 7" ];
    q "imply re-evaluates right" "k := (1,5) => k + 1" [ "k+1 = 2"; "k+1 = 6" ];
    (* aliases *)
    q "alias yields values" "a1 := 1..3" [ "1 = 1"; "2 = 2"; "3 = 3" ];
    q "alias to lvalue is an alias" "b1 := w[5]; b1 = 66; w[5]" [ "w[5] = 66" ];
    q "declaration allocates" "int fresh; fresh = 3; fresh * fresh"
      [ "fresh*fresh = 9" ];
    q "declaration with initial loop"
      "int i2; for (i2 = 0; i2 < 3; i2++) {i2}" [ "0 = 0"; "1 = 1"; "2 = 2" ];
    (* with scopes *)
    q "dot scope on struct" "pk.(lo, hi)" [ "pk.lo = 5"; "pk.hi = -1" ];
    q "arrow scope" "L->(value, next != 0)"
      [ "L->value = 11"; "L->next!=0 = 1" ];
    q "underscore is the subject" "w[..3]._" [ "w[0] = 10"; "w[1] = 20"; "w[2] = 30" ];
    q "underscore on pointer subject" "L->(_ != 0)" [ "L!=0 = 1" ];
    q "nested with scopes" "L->(next->(value))" [ "L->next->value = 13" ];
    q "with general rhs" "w[..2].(_ * 2)" [ "w[0]*2 = 20"; "w[1]*2 = 40" ];
    q "field shadows outer name" "L->value" [ "L->value = 11" ];
    (* unions: same bytes through different members *)
    q "union type punning (little-endian)" "uv.i, uv.c[0], uv.c[3]"
      [ "uv.i = 1094861636"; "uv.c[0] = 68 'D'"; "uv.c[3] = 65 'A'" ];
    q "union scope alternation" "uv.(i != 0, c[1])"
      [ "uv.i!=0 = 1"; "uv.c[1] = 67 'C'" ];
    (* 2-D arrays: row-major chained indexing, generators in both axes *)
    q "matrix element" "mat[1][2]" [ "mat[1][2] = 12" ];
    q "matrix row sweep" "mat[2][..4] >? 21"
      [ "mat[2][2] = 22"; "mat[2][3] = 23" ];
    q "matrix cross sweep" "#/(mat[..3][..4])" [ "#/(mat[..3][..4]) = 12" ];
    q "matrix sum" "+/(mat[..3][..4])" [ "+/(mat[..3][..4]) = 138" ];
    q "sizeof a row" "sizeof mat[0]" [ "sizeof mat[0] = 16" ];
    (* dfs / bfs *)
    q "dfs list walk" "head-->next->value"
      [ "head->value = 10"; "head->next->value = 20";
        "head->next->next->value = 30"; "head->next->next->next->value = 33";
        "head-->next[[4]]->value = 40"; "head-->next[[5]]->value = 29";
        "head-->next[[6]]->value = 50" ];
    q "dfs preorder on tree" "root-->(left,right)->key"
      [ "root->key = 9"; "root->left->key = 3"; "root->left->left->key = 4";
        "root->left->right->key = 5"; "root->right->key = 12" ];
    q "bfs level order on tree" "root-->>(left,right)->key"
      [ "root->key = 9"; "root->left->key = 3"; "root->right->key = 12";
        "root->left->left->key = 4"; "root->left->right->key = 5" ];
    q "dfs stops at null" "lone0 := 0; 1..0" [];
    q "dfs from null global gives nothing" "(hash[0])-->next->(0)@0" [];
    (* select *)
    q "select zero-based" "(10,20,30)[[1]]" [ "20 = 20" ];
    q "select multiple and reuse" "(10,20,30)[[2,0,2]]"
      [ "30 = 30"; "10 = 10"; "30 = 30" ];
    q "select out of range skipped" "(10,20)[[5]]" [];
    q "select paper example" "((1..9)*(1..9))[[52,74]]"
      [ "6*8 = 48"; "9*3 = 27" ];
    q "select with range of indices" "(10,20,30,40)[[1..2]]"
      [ "20 = 20"; "30 = 30" ];
    (* until *)
    q "until literal excludes stop" "(3,2,1,0,5)@0"
      [ "3 = 3"; "2 = 2"; "1 = 1" ];
    q "until never firing yields all" "(1..3)@9" [ "1 = 1"; "2 = 2"; "3 = 3" ];
    q "until expression stop" "(1..9)@(_ == 4)" [ "1 = 1"; "2 = 2"; "3 = 3" ];
    q "until char literal" "s[0..99]@'o'"
      [ "s[0] = 104 'h'"; "s[1] = 101 'e'"; "s[2] = 108 'l'"; "s[3] = 108 'l'" ];
    q "until sees fields through node pointers"
      "(head-->next@(value == 29))->value"
      [ "head->value = 10"; "head->next->value = 20";
        "head->next->next->value = 30"; "head->next->next->next->value = 33";
        "head-->next[[4]]->value = 40" ];
    q "until with field stop on a chain" "hash[0]-->next@(scope == 2)->name"
      [ "hash[0]->name = \"main\""; "hash[0]->next->name = \"argc\"" ];
    (* index alias *)
    q "index alias counts from zero" "(5,6,7)#n => {n}"
      [ "0 = 0"; "1 = 1"; "2 = 2" ];
    q "index alias usable in body" "w[..3]#idx ==? 20 => {idx}" [ "1 = 1" ];
    (* the paper's alias-in-index idiom: y := x[j := ..10] => ... x[{j}] *)
    q "alias inside an index expression"
      "y2 := w[j2 := ..10] => if (y2 < 0 || y2 > 100) w[{j2}]"
      [ "w[3] = -9"; "w[8] = 120" ];
    q "select indices from a range and alternation"
      "head-->next->value[[1..2,0]]"
      [ "head->next->value = 20"; "head->next->next->value = 30";
        "head->value = 10" ];
    (* reductions *)
    q "count" "#/(1..10)" [ "#/(1..10) = 10" ];
    q "count empty" "#/(1..0)" [ "#/(1..0) = 0" ];
    q "sum" "+/(1..10)" [ "+/(1..10) = 55" ];
    q "sum empty is zero" "+/(1..0)" [ "+/(1..0) = 0" ];
    q "sum goes float" "+/(1, 0.5)" [ "+/(1,0.5) = 1.5" ];
    q "all nonzero" "&&/(1..5)" [ "&&/(1..5) = 1" ];
    q "all with zero" "&&/(1,0,2)" [ "&&/(1,0,2) = 0" ];
    q "all vacuous" "&&/(1..0)" [ "&&/(1..0) = 1" ];
    q "any" "||/(0,0,3)" [ "||/(0,0,3) = 1" ];
    q "any empty" "||/(1..0)" [ "||/(1..0) = 0" ];
    (* sequence equality *)
    q "seq-eq equal" "(1..3) ==/ (1,2,3)" [ "1 = 1" ];
    q "seq-eq length mismatch" "(1..3) ==/ (1,2)" [ "0 = 0" ];
    q "seq-eq value mismatch" "(1..3) ==/ (1,9,3)" [ "0 = 0" ];
    q "seq-eq both empty" "(1..0) ==/ (5..2)" [ "1 = 1" ];
    (* braces *)
    q "braces substitute the value" "k2 := 6 => {k2} + 1" [ "6+1 = 7" ];
    q "braces on generator" "( {1..2} )" [ "1 = 1"; "2 = 2" ];
    (* calls with generators *)
    qf "function call cross product" "abs((-1,2)) * (1,10)"
      [ "abs(-1)*1 = 1"; "abs(-1)*10 = 10"; "abs(2)*1 = 2"; "abs(2)*10 = 20" ];
    qf "strcmp over argv" "i3 := ..4 => if (strcmp(argv[{i3}], \"-q\") == 0) {i3}"
      [ "1 = 1" ];
    (* frames *)
    q "frames generator walks all frames" "frames.n"
      [ "frame(0).n = 3"; "frame(1).n = 4"; "frame(2).n = 5" ];
    q "frame(i) scope" "frame(1).(n + acc)" [ "frame(1).n+frame(1).acc = 6" ];
    q "frame out of range is an error" "frame(9).n"
      [ "no active frame 9 (of 3)" ];
    (* assignment through generators *)
    qf "assign through generator lvalues" "w[0..2] = 1; w[0] + w[1] + w[2]"
      [ "w[0]+w[1]+w[2] = 3" ];
    (* C semantics: the lhs's with-scope must not capture rhs names *)
    qf "assignment rhs sees the enclosing scope"
      "value := 5; L->value = value; L->value" [ "L->value = 5" ];
    qf "explicit with-group still opens the scope for the rhs"
      "L->(value = value + 1); L->value" [ "L->value = 12" ];
    qf "compound assignment through a field"
      "L->value += L->next->value; L->value" [ "L->value = 24" ];
    qf "assign cross product last wins" "w[0] = (5, 9); w[0]" [ "w[0] = 9" ];
  ]
