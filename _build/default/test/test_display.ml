(* Value display and symbolic-expression machinery. *)

open Support
module Symbolic = Duel_core.Symbolic

let compress = Support.case "-->a[[n]] compression" (fun () ->
    let c s = Symbolic.compress s in
    Alcotest.(check string) "short chains untouched"
      "hash[0]->next->next->next->scope"
      (c "hash[0]->next->next->next->scope");
    Alcotest.(check string) "4 links compress"
      "L-->next[[4]]->value"
      (c "L->next->next->next->next->value");
    Alcotest.(check string) "8 links compress"
      "hash[287]-->next[[8]]->scope"
      (c "hash[287]->next->next->next->next->next->next->next->next->scope");
    Alcotest.(check string) "mixed fields break runs"
      "a->n->n->n->m->n->n->n->x"
      (c "a->n->n->n->m->n->n->n->x");
    Alcotest.(check string) "threshold configurable"
      "a-->n[[2]]->m"
      (Symbolic.compress ~threshold:2 "a->n->n->m");
    Alcotest.(check string) "prefix preserved"
      "q-->link[[5]]"
      (c "q->link->link->link->link->link"))

let paren_insertion = Support.case "symbolic parenthesization" (fun () ->
    let atom = Symbolic.atom in
    let add = Symbolic.binary Symbolic.prec_additive "+" in
    let mul = Symbolic.binary Symbolic.prec_multiplicative "*" in
    Alcotest.(check string) "no parens needed" "a+b*c"
      (Symbolic.to_string (add (atom "a") (mul (atom "b") (atom "c"))));
    Alcotest.(check string) "parens on low-prec child" "(a+b)*c"
      (Symbolic.to_string (mul (add (atom "a") (atom "b")) (atom "c")));
    Alcotest.(check string) "right assoc needs parens" "a-(b-c)"
      (Symbolic.to_string
         (Symbolic.binary Symbolic.prec_additive "-" (atom "a")
            (Symbolic.binary Symbolic.prec_additive "-" (atom "b") (atom "c")))))

let suite =
  [
    compress;
    paren_insertion;
    (* scalar rendering *)
    q1 "plain int" "42" "42 = 42";
    q1 "negative" "-42" "-42 = -42";
    q1 "unsigned rendered unsigned" "4000000000u" "4000000000u = 4000000000";
    q1 "char shows code and glyph" "'k'" "'k' = 107 'k'";
    q1 "newline char escaped" "'\\n'" "'\\n' = 10 '\\n'";
    q1 "double" "2.5" "2.5 = 2.5";
    q1 "double integral" "4.0" "4.0 = 4";
    q1 "char pointer shows the string" "s" "s = \"hello, world\"";
    q1 "null pointer" "(char *)0" "(char *)0 = 0x0";
    q1 "non-char pointer in hex" "&x[0] != 0" "&x[0]!=0 = 1";
    q1 "enum by name" "paint" "paint = GREEN";
    q1 "enum out of range numeric" "(enum color)7" "(enum color)7 = 7";
    (* aggregates *)
    q1 "struct display" "*L" "*L = {value = 11, next = 0x10182e0}";
    q1 "char array as string" "*argv[0]; \"ok\"" "\"ok\" = \"ok\"";
    q1 "int array braces" "v" "v = {3, 1, 4, 1, 5, 9, 2, 6}";
    q1 "nested struct depth" "pk" "pk = {lo = 5, mid = 77, hi = -1}";
    (* symbolic displays *)
    q1 "generator substitutes value" "x[1+2]" "x[1+2] = 7";
    q1 "range index substituted" "x[3..3]" "x[3] = 7";
    q1 "cast displayed" "(long)x[3]" "(long)x[3] = 7";
    q1 "call symbolic" "abs(-4)" "abs(-4) = 4";
    q1 "deref symbolic" "*&i0" "*&i0 = 0";
    q1 "grouped subexpression" "(1+2)*3" "(1+2)*3 = 9";
  ]
