(* DUEL one-liners versus the hand-written C baseline: identical result
   sets, via the same narrow debugger interface. *)

open Support
module Cquery = Duel_cquery.Cquery
module Conciseness = Duel_cquery.Conciseness

let case = Support.case

(* Extract "idx -> value" pairs from duel output lines like "x[3] = 7". *)
let parse_indexed lines =
  List.map
    (fun line ->
      Scanf.sscanf line "%_s@[%d] = %Ld" (fun i v -> (i, v)))
    lines

let array_search () =
  let k = kit () in
  let duel = parse_indexed (exec k "x[1..4,8,12..50] >? 5 <? 10") in
  let c =
    Cquery.array_search
      (Duel_target.Backend.direct k.inf)
      ~name:"x"
      ~ranges:[ (1, 4); (8, 8); (12, 50) ]
      ~lo:5L ~hi:10L
  in
  Alcotest.(check (list (pair int int64))) "same result set" c duel

let positives () =
  let k = kit ~scenario:(`Big 500) () in
  let duel = parse_indexed (exec k "big[..500] >? 0") in
  let c =
    Cquery.array_positives (Duel_target.Backend.direct k.inf) ~name:"big" ~n:500
  in
  Alcotest.(check int) "same count" (List.length c) (List.length duel);
  Alcotest.(check (list (pair int int64))) "same values" c duel

let hash_scopes () =
  let k = kit () in
  let duel =
    List.map
      (fun line -> Scanf.sscanf line "hash[%d]->scope = %Ld" (fun b s -> (b, s)))
      (exec k "(hash[..1024] !=? 0)->scope >? 5")
  in
  let c =
    Cquery.hash_high_scopes (Duel_target.Backend.direct k.inf) ~threshold:5L
  in
  Alcotest.(check (list (pair int int64))) "same buckets" c duel

let duplicates () =
  let k = kit () in
  let duel =
    (* [[i]] then [[j]] lines alternate: pair them up *)
    let lines =
      exec k
        "L-->next#i->value ==? L-->next#j->value => if (i < j) L-->next[[i,j]]->value"
    in
    let parse line =
      Scanf.sscanf line "L-->next[[%d]]->value = %Ld" (fun i v -> (i, v))
    in
    let rec pairs = function
      | a :: b :: rest ->
          let i, v = parse a and j, _ = parse b in
          (i, j, v) :: pairs rest
      | _ -> []
    in
    pairs lines
  in
  let c = Cquery.list_duplicates (Duel_target.Backend.direct k.inf) ~name:"L" in
  Alcotest.(check (list (triple int int int64))) "same duplicate pairs" c duel

let tree () =
  let k = kit () in
  let duel_keys =
    List.map
      (fun line -> Scanf.sscanf line "%_s@= %Ld" Fun.id)
      (exec k "root-->(left,right)->key")
  in
  let dbg = Duel_target.Backend.direct k.inf in
  Alcotest.(check (list int64)) "same preorder"
    (Cquery.tree_keys_preorder dbg ~name:"root")
    duel_keys;
  let count =
    match exec k "#/(root-->(left,right)->key)" with
    | [ line ] -> Scanf.sscanf line "%_s@= %d" Fun.id
    | _ -> Alcotest.fail "one line expected"
  in
  Alcotest.(check int) "same count" (Cquery.tree_count dbg ~name:"root") count

let violations () =
  let k = kit () in
  let c = Cquery.sort_violations (Duel_target.Backend.direct k.inf) in
  Alcotest.(check (list (triple int int int64))) "the planted violation"
    [ (287, 8, 5L) ] c;
  Alcotest.(check int) "duel finds the same single violation" 1
    (List.length (exec k "hash[..1024]-->next->if (next) scope <? next->scope"))

let conciseness_table () =
  let table = Conciseness.table () in
  Alcotest.(check int) "six paper pairs" 6 (List.length table);
  List.iter
    (fun (label, duel_chars, c_chars, duel_lines, c_lines) ->
      if duel_chars >= c_chars then
        Alcotest.failf "%s: DUEL (%d chars) not shorter than C (%d)" label
          duel_chars c_chars;
      if duel_lines > 1 && c_lines <= duel_lines then
        Alcotest.failf "%s: line counts unexpected" label)
    table

let queries_executable () =
  (* every DUEL one-liner in the conciseness table actually runs *)
  let k = kit () in
  List.iter
    (fun { Conciseness.duel; label; _ } ->
      match exec k duel with
      | _ :: _ -> ()
      | [] ->
          (* side-effect-only entries produce no lines; that's fine *)
          ignore label)
    Conciseness.entries

let suite =
  [
    case "array range search" array_search;
    case "positives sweep (B1 workload)" positives;
    case "hash high scopes" hash_scopes;
    case "list duplicates" duplicates;
    case "tree keys and count" tree;
    case "sortedness violations" violations;
    case "conciseness table shape" conciseness_table;
    case "conciseness queries run" queries_executable;
  ]
