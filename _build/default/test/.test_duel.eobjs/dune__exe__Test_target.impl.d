test/test_target.ml: Alcotest Bytes Duel_ctype Duel_dbgi Duel_mem Duel_target Int64 List Printf Support
