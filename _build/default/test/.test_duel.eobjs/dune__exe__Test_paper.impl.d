test/test_paper.ml: Alcotest Duel_target List Support
