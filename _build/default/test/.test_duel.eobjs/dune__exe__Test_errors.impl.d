test/test_errors.ml: Alcotest Duel_core List String Support
