test/test_engines.ml: Alcotest Duel_core Duel_target List Printf QCheck2 QCheck_alcotest Support
