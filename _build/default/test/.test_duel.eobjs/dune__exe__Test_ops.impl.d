test/test_ops.ml: Support
