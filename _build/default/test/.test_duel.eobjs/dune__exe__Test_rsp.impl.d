test/test_rsp.ml: Alcotest Bytes Duel_ctype Duel_dbgi Duel_rsp Duel_scenarios Duel_target List Printf QCheck2 QCheck_alcotest String Support
