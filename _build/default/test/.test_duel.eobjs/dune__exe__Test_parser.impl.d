test/test_parser.ml: Alcotest Duel_core Duel_ctype List QCheck2 QCheck_alcotest String Support
