test/test_ctype.ml: Alcotest Duel_ctype Format Int32 Int64 QCheck2 QCheck_alcotest Support
