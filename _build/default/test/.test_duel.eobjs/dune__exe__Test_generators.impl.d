test/test_generators.ml: Support
