test/test_abi_paper.ml: Alcotest Duel_core Duel_ctype Duel_scenarios Duel_target List Support
