test/test_minic.ml: Alcotest Duel_core Duel_ctype Duel_minic Duel_target Support
