test/test_fuzz.ml: Char Duel_core Duel_ctype Lazy QCheck2 QCheck_alcotest String Support
