test/test_session.ml: Alcotest Duel_core Duel_ctype Duel_mem Duel_target List String Support
