test/test_display.ml: Alcotest Duel_core Support
