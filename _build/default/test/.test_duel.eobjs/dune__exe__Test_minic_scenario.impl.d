test/test_minic_scenario.ml: Alcotest Duel_core Duel_minic Duel_target Support
