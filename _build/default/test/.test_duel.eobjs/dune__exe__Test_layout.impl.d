test/test_layout.ml: Alcotest Duel_ctype List Option Printf QCheck2 QCheck_alcotest Support
