test/support.ml: Alcotest Duel_core Duel_rsp Duel_scenarios Duel_target Lazy String
