test/test_mem.ml: Alcotest Bytes Char Duel_ctype Duel_mem Int64 List Option QCheck2 QCheck_alcotest String Support
