test/test_random_structs.ml: Array Duel_core Duel_cquery Duel_ctype Duel_target Int64 List QCheck2 QCheck_alcotest Scanf String
