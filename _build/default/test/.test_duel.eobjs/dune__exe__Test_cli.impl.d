test/test_cli.ml: Alcotest Filename Printf String Support Sys
