test/test_duel.mli:
