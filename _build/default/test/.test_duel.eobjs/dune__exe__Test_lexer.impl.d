test/test_lexer.ml: Alcotest Duel_core Duel_ctype Format List Support
