test/test_debugger.ml: Alcotest Duel_debug Duel_minic Duel_target List String Support
