test/test_cquery.ml: Alcotest Duel_cquery Duel_target Fun List Scanf Support
