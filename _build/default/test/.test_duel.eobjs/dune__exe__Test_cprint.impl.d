test/test_cprint.ml: Alcotest Duel_ctype Support
