test/test_oracle.ml: Duel_core Duel_ctype Duel_scenarios Duel_target Int32 Int64 Lazy Printf QCheck2 QCheck_alcotest String Support
