(* Differential tests: the lazy-Seq engine and the paper-faithful
   state-machine engine must produce identical output on everything —
   a fixed corpus covering every operator, plus randomly generated
   expressions.  Also checks the with-stack depth invariant. *)

open Support
module Session = Duel_core.Session
module Env = Duel_core.Env

let corpus =
  [
    "1 + (double)3/2";
    "(1,2,5)*4+(10,200)";
    "(1..3)+(5,9)";
    "(1,5)..(5,10)";
    "x[1..4,8,12..50] >? 5 <? 10";
    "x[1..3] == 7";
    "(hash[..1024] !=? 0)->scope >? 5";
    "hash[1,9]->(scope,name)";
    "hash[0]-->next->scope";
    "root-->(left,right)->key";
    "root-->>(left,right)->key";
    "root-->(if (key > 5) left else if (key < 5) right)->key";
    "#/(root-->(left,right)->key)";
    "+/(root-->(left,right)->key)";
    "&&/(v[..8])";
    "||/(w[..10] >? 100)";
    "hash[..1024]-->next->if (next) scope <? next->scope";
    "head-->next->value[[3,5]]";
    "((1..9)*(1..9))[[52,74]]";
    "(0..)[[5,2,7]]";
    "L-->next#i->value ==? L-->next#j->value => if (i < j) L-->next[[i,j]]->value";
    "w[..10].if (_ < 0 || _ > 100) _";
    "y := w[..10] => if (y < 0 || y > 100) y";
    "int q0; for (q0 = 0; q0 < 9; q0++) 4 + if (q0%3 == 0) {q0}*5";
    "i := 1..3; i + 4";
    "i := 1..3 => {i} + 4";
    "printf(\"%d %d, \", (3,4), 5..7)";
    "argv[0..]@0";
    "s[0..999]@(_=='\\0')";
    "(3,2,1,0,5)@0";
    "(head-->next@(value == 29))->value";
    "hash[0]-->next@(scope == 2)->name";
    "L-->next->(value ==? next-->next->value)";
    "frames.n";
    "frame(0..2).acc";
    "sizeof(struct symbol)";
    "sizeof hash";
    "v[..8] ==/ v[..8]";
    "(1..3) ==/ (1,2)";
    "paint, RED, BLUE";
    "pk.(lo, mid, hi)";
    "uv.i, uv.c[0]";
    "mat[..3][..4] >? 20";
    "dd * (1..3)";
    "w[0] = (5, 9); w[0]";
    "value := 5; L->value = value; L->value";
    "L->(value = value + 1); L->value";
    "w[0..2] += 10; w[..3]";
    "int k0; k0 = 0; while (k0 < 3) (k0++; k0)";
    "-x[3], ~x[3], !x[3]";
    "&x[5] - &x[2]";
    "*(x + 3)";
    "(char)321, (unsigned)-1";
    "hash[2]->name[0]";
    "strcmp(argv[0], \"duel\"), strlen(s)";
    "x[0] ? 111 : 222, x[3] ? 111 : 222";
    "(0,1,2) && 7";
    "(0,3) || 9";
    "1..0";
    "..0";
    "(1..0)+(5,9)";
    "5 >? (1,2)";
  ]

(* Run a query on both engines against identical fresh debuggees; output
   lines and captured target stdout must agree; the with-scope stack must
   be restored afterwards. *)
let run_both query =
  let run engine =
    let k = kit ~engine () in
    let lines = exec k query in
    let out = Duel_target.Inferior.take_output k.inf in
    let depth = Env.scope_depth k.session.Session.env in
    (lines, out, depth)
  in
  (run Session.Seq_engine, run Session.Sm_engine)

let corpus_case query =
  Support.case ("engines agree: " ^ query) (fun () ->
      let (l1, o1, d1), (l2, o2, d2) = run_both query in
      Alcotest.(check (list string)) "output lines" l1 l2;
      Alcotest.(check string) "target stdout" o1 o2;
      Alcotest.(check int) "seq engine scope depth restored" 0 d1;
      Alcotest.(check int) "sm engine scope depth restored" 0 d2)

(* Random expression generator over the kitchen-sink debuggee's globals.
   Restricted to side-effect-free operators so that sequencing differences
   cannot mask bugs (side effects are covered by the corpus). *)
let gen_query : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let atom =
    oneofl
      [ "1"; "3"; "0"; "42"; "x[3]"; "w[1]"; "v[2]"; "dd"; "paint"; "'a'";
        "i0"; "argc"; "2.5"; "L->value"; "head->value"; "root->key" ]
  in
  let small = oneofl [ "1"; "2"; "3"; "0"; "5" ] in
  let rec expr n =
    if n <= 0 then atom
    else
      frequency
        [
          (4, atom);
          (3, map2 (fun a b -> Printf.sprintf "(%s)+(%s)" a b) (expr (n - 1)) (expr (n - 1)));
          (2, map2 (fun a b -> Printf.sprintf "(%s)*(%s)" a b) (expr (n - 1)) (expr (n - 1)));
          (2, map2 (fun a b -> Printf.sprintf "(%s),(%s)" a b) (expr (n - 1)) (expr (n - 1)));
          (2, map2 (fun a b -> Printf.sprintf "(%s)..(%s)" a b) small small);
          (2, map2 (fun a b -> Printf.sprintf "(%s) >? (%s)" a b) (expr (n - 1)) (expr (n - 1)));
          (2, map (fun a -> Printf.sprintf "x[..%s]" a) small);
          (1, map (fun a -> Printf.sprintf "#/(%s)" a) (expr (n - 1)));
          (1, map (fun a -> Printf.sprintf "+/(%s)" a) (expr (n - 1)));
          (1, map2 (fun a b -> Printf.sprintf "(%s)[[%s]]" a b) (expr (n - 1)) small);
          (1, map2 (fun a b -> Printf.sprintf "(%s)@(%s)" a b) (expr (n - 1)) small);
          (1, map2 (fun c t -> Printf.sprintf "if (%s) (%s)" c t) (expr (n - 1)) (expr (n - 1)));
          (1, map2 (fun c t -> Printf.sprintf "(%s) => (%s)" c t) (expr (n - 1)) (expr (n - 1)));
          (1, map2 (fun a b -> Printf.sprintf "(%s) && (%s)" a b) (expr (n - 1)) (expr (n - 1)));
          (1, map2 (fun a b -> Printf.sprintf "(%s) ==/ (%s)" a b) (expr (n - 1)) (expr (n - 1)));
          (1, map (fun a -> Printf.sprintf "L-->next->(value + (%s))" a) small);
          (1, map (fun a -> Printf.sprintf "head-->next->value[[%s]]" a) small);
          (1, map (fun a -> Printf.sprintf "w[..3].(_ + (%s))" a) small);
        ]
  in
  expr 4

let prop_engines_agree =
  QCheck2.Test.make ~name:"engines agree on random expressions" ~count:250
    gen_query (fun query ->
      let (l1, o1, d1), (l2, o2, d2) = run_both query in
      l1 = l2 && o1 = o2 && d1 = 0 && d2 = 0)

let suite =
  List.map corpus_case corpus @ [ QCheck_alcotest.to_alcotest prop_engines_agree ]
