(* Session behaviour: command driving, display policy, flags. *)

open Support
module Session = Duel_core.Session
module Env = Duel_core.Env

let case = Support.case

let silent_semicolon () =
  let k = kit () in
  Alcotest.(check (list string)) "silenced" [] (exec k "w[0] = 1 ;");
  Alcotest.(check (list string)) "silenced through sequence" []
    (exec k "int z9; z9 = 1; z9 + 1 ;");
  Alcotest.(check (list string)) "effect happened" [ "w[0] = 1" ] (exec k "w[0]")

let max_values_cap () =
  let k = kit () in
  k.session.Session.max_values <- 3;
  Alcotest.(check (list string)) "capped with ellipsis"
    [ "0 = 0"; "1 = 1"; "2 = 2"; "..." ]
    (exec k "..10");
  k.session.Session.max_values <- 0;
  Alcotest.(check int) "uncapped" 10 (List.length (exec k "..10"))

let alias_persistence () =
  let k = kit () in
  ignore (exec k "total := #/(root-->(left,right)->key)");
  Alcotest.(check (list string)) "alias visible later" [ "total*2 = 10" ]
    (exec k "total * 2");
  ignore (exec k "total := 7");
  Alcotest.(check (list string)) "alias rebindable" [ "total = 7" ] (exec k "total")

let engine_switch () =
  let k = kit () in
  let a = exec k "x[..10] >? 0" in
  k.session.Session.engine <- Session.Sm_engine;
  let b = exec k "x[..10] >? 0" in
  Alcotest.(check (list string)) "same output after switching engines" a b

let symbolic_off () =
  let k = kit () in
  k.session.Session.env.Env.flags.Env.symbolic <- false;
  (match exec k "x[3..3] + 1" with
  | [ line ] ->
      Alcotest.(check bool) "value still correct" true
        (String.length line >= 3
        && String.sub line (String.length line - 3) 3 = "= 8")
  | _ -> Alcotest.fail "one line");
  k.session.Session.env.Env.flags.Env.symbolic <- true;
  Alcotest.(check (list string)) "symbolic back on" [ "x[3]+1 = 8" ]
    (exec k "x[3..3] + 1")

let compress_threshold () =
  let k = kit () in
  k.session.Session.env.Env.flags.Env.compress <- 2;
  let lines = exec k "hash[0]-->next->scope" in
  Alcotest.(check string) "third line compressed at threshold 2"
    "hash[0]-->next[[2]]->scope = 2"
    (List.nth lines 2)

let drive_counts () =
  let k = kit () in
  let ast = Session.parse k.session "x[..100] >? 0" in
  Alcotest.(check int) "drive returns the value count" 5
    (Session.drive k.session ast);
  let ast2 = Session.parse k.session "1..10" in
  Alcotest.(check int) "range count" 10 (Session.drive k.session ast2)

let string_literals_interned () =
  let k = kit () in
  ignore (exec k "strlen(\"abc\")");
  let before = Duel_mem.Alloc.bytes_in_use (Duel_target.Inferior.heap k.inf) in
  ignore (exec k "strlen(\"abc\")");
  ignore (exec k "strlen(\"abc\")");
  let after = Duel_mem.Alloc.bytes_in_use (Duel_target.Inferior.heap k.inf) in
  Alcotest.(check int) "same literal not re-allocated" before after

let ilp32_session () =
  (* a 32-bit debuggee: pointer arithmetic and int sizes follow the ABI *)
  let inf = Duel_target.Inferior.create ~abi:Duel_ctype.Abi.ilp32 () in
  Duel_target.Stdfuncs.register_all inf;
  let arr =
    Duel_target.Inferior.define_global inf "a32"
      (Duel_ctype.Ctype.array Duel_ctype.Ctype.long 4)
  in
  Duel_target.Build.poke_int inf Duel_ctype.Ctype.long (arr + 4) 7L;
  let s = Session.create (Duel_target.Backend.direct inf) in
  Alcotest.(check (list string)) "long is 4 bytes" [ "sizeof(long) = 4" ]
    (Session.exec s "sizeof(long)");
  Alcotest.(check (list string)) "pointers are 4 bytes" [ "sizeof(char *) = 4" ]
    (Session.exec s "sizeof(char *)");
  Alcotest.(check (list string)) "indexing scales by 4" [ "a32[1] = 7" ]
    (Session.exec s "a32[1]")

let big_endian_session () =
  let inf =
    Duel_target.Inferior.create ~abi:(Duel_ctype.Abi.big_endian Duel_ctype.Abi.lp64) ()
  in
  let g = Duel_target.Inferior.define_global inf "gbe" Duel_ctype.Ctype.int in
  Duel_target.Build.poke_int inf Duel_ctype.Ctype.int g 0x01020304L;
  (* most significant byte first in memory *)
  Alcotest.(check int) "MSB first" 0x01
    (Duel_mem.Memory.read_u8 (Duel_target.Inferior.mem inf) g);
  let s = Session.create (Duel_target.Backend.direct inf) in
  Alcotest.(check (list string)) "value reads correctly"
    [ "gbe = 16909060" ]
    (Session.exec s "gbe")

let suite =
  [
    case "trailing semicolon silences output" silent_semicolon;
    case "max_values caps display" max_values_cap;
    case "aliases persist across commands" alias_persistence;
    case "engine switching mid-session" engine_switch;
    case "symbolic computation toggle" symbolic_off;
    case "compression threshold flag" compress_threshold;
    case "drive counts values without formatting" drive_counts;
    case "string literals interned once" string_literals_interned;
    case "ILP32 debuggee" ilp32_session;
    case "big-endian debuggee" big_endian_session;
  ]
