(* Error reporting: the paper's "Illegal memory reference in ...:
   sym = lvalue 0x..." shape, plus lexical/syntax/type errors.  All errors
   come back as output lines; the session must stay usable afterwards. *)

open Support
module Env = Duel_core.Env
module Session = Duel_core.Session

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let check_error name query prefix =
  Support.case name (fun () ->
      let k = kit ~scenario:`Faulty () in
      match exec k query with
      | [ line ] ->
          if not (starts_with prefix line) then
            Alcotest.failf "expected error starting %S, got %S" prefix line
      | lines ->
          Alcotest.failf "expected one error line, got %d" (List.length lines))

let suite =
  [
    check_error "null dereference" "(*lone).value" "Illegal memory reference";
    check_error "dangling pointer field"
      "dang->next->next->next->value" "Illegal memory reference";
    check_error "wild address" "*(int *)0x40000000" "Illegal memory reference";
    check_error "division by zero" "1/0" "division by zero";
    check_error "modulo by zero" "5 % (3-3)" "division by zero";
    check_error "undefined name" "nosuchvar + 1" "undefined name nosuchvar";
    check_error "undefined field" "cyc->bogus" "undefined name bogus";
    check_error "arrow on non-pointer" "(1..3)->next" "-> applied to a non-pointer";
    check_error "assign to rvalue" "3 = 4" "assignment target is not an lvalue";
    check_error "address of rvalue" "&(1+2)" "& requires an lvalue";
    check_error "deref of int" "*(3.5, 4.5)" "* requires a pointer";
    check_error "underscore without scope" "_ + 1" "_ used outside";
    check_error "unknown struct tag" "(struct nosuch *)0" "no struct named nosuch";
    check_error "unknown function" "frobnicate(1)" "no target function named frobnicate";
    check_error "alias lhs" "cyc[0] := 2" "parse error";
    check_error "lex error" "cyc $ 2" "syntax error";
    check_error "float modulo" "2.5 % 2" "% applied to floating operands";
    Support.case "error carries symbolic operand and lvalue" (fun () ->
        let k = kit ~scenario:`Faulty () in
        match exec k "dang->next->next->next->value" with
        | [ line ] ->
            Alcotest.(check string) "full paper-style message"
              "Illegal memory reference: dang->next->next->next->value = lvalue 0x40000000"
              line
        | _ -> Alcotest.fail "expected one line");
    Support.case "session survives errors" (fun () ->
        let k = kit () in
        ignore (exec k "1/0");
        ignore (exec k "nosuch");
        ignore (exec k "x[[");
        Alcotest.(check (list string)) "still works" [ "1+1 = 2" ] (exec k "1+1");
        Alcotest.(check int) "scope stack clean" 0
          (Env.scope_depth k.session.Session.env));
    Support.case "error mid-generation keeps earlier output" (fun () ->
        let k = kit ~scenario:`Faulty () in
        let lines = exec k "dang->(value, next->next->next->value)" in
        Alcotest.(check int) "value printed, then the error" 2 (List.length lines);
        Alcotest.(check string) "first line fine" "dang->value = 1" (List.hd lines));
    Support.case "expansion limit trips on cycles" (fun () ->
        let k = kit ~scenario:`Faulty () in
        k.session.Session.env.Env.flags.Env.expansion_limit <- 16;
        let lines = exec k "cyc-->next->value" in
        Alcotest.(check string) "limit error last"
          "--> expansion exceeded 16 nodes (cycle?)"
          (List.nth lines (List.length lines - 1)));
    Support.case "cycle detection visits each node once" (fun () ->
        let k = kit ~scenario:`Faulty () in
        k.session.Session.env.Env.flags.Env.cycle_detect <- true;
        Alcotest.(check (list string)) "four nodes"
          [ "cyc->value = 100"; "cyc->next->value = 101";
            "cyc->next->next->value = 102"; "cyc->next->next->next->value = 103" ]
          (exec k "cyc-->next->value"));
    Support.case "dangling tail terminates --> silently" (fun () ->
        let k = kit ~scenario:`Faulty () in
        Alcotest.(check (list string)) "three values, no error"
          [ "dang->value = 1"; "dang->next->value = 2";
            "dang->next->next->value = 3" ]
          (exec k "dang-->next->value"));
  ]
