(* Struct/union layout: offsets, sizes, alignment, bit-field packing. *)

module Abi = Duel_ctype.Abi
module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout

let case = Support.case
let lp64 = Abi.lp64
let ilp32 = Abi.ilp32

let mk_struct tag fields =
  let c = Ctype.new_comp Ctype.CStruct tag in
  Ctype.define_fields c fields;
  c

let mk_union tag fields =
  let c = Ctype.new_comp Ctype.CUnion tag in
  Ctype.define_fields c fields;
  c

let offset abi c name =
  match Layout.find_field abi c name with
  | Some fi -> fi.Layout.fi_offset
  | None -> Alcotest.failf "no field %s" name

let symbol_layout () =
  (* struct symbol { char *name; int scope; struct symbol *next; } *)
  let c =
    mk_struct "sym_l"
      [
        Ctype.field "name" (Ctype.ptr Ctype.char);
        Ctype.field "scope" Ctype.int;
        Ctype.field "next" (Ctype.ptr Ctype.Void);
      ]
  in
  Alcotest.(check int) "name at 0" 0 (offset lp64 c "name");
  Alcotest.(check int) "scope at 8" 8 (offset lp64 c "scope");
  Alcotest.(check int) "next at 16 (padded)" 16 (offset lp64 c "next");
  Alcotest.(check int) "size 24" 24 (Layout.size_of lp64 (Ctype.Comp c));
  Alcotest.(check int) "align 8" 8 (Layout.align_of lp64 (Ctype.Comp c));
  (* ILP32: pointers are 4 bytes, no padding *)
  Alcotest.(check int) "ilp32 scope at 4" 4 (offset ilp32 c "scope");
  Alcotest.(check int) "ilp32 size 12" 12 (Layout.size_of ilp32 (Ctype.Comp c))

let padding_tail () =
  (* struct { char c; int i; char d; } -> 0,4,8, size 12 *)
  let c =
    mk_struct "pad_l"
      [ Ctype.field "c" Ctype.char; Ctype.field "i" Ctype.int; Ctype.field "d" Ctype.char ]
  in
  Alcotest.(check int) "c" 0 (offset lp64 c "c");
  Alcotest.(check int) "i" 4 (offset lp64 c "i");
  Alcotest.(check int) "d" 8 (offset lp64 c "d");
  Alcotest.(check int) "tail padding" 12 (Layout.size_of lp64 (Ctype.Comp c))

let nested () =
  let inner = mk_struct "inner_l" [ Ctype.field "a" Ctype.char; Ctype.field "b" Ctype.long ] in
  let outer =
    mk_struct "outer_l"
      [ Ctype.field "x" Ctype.char; Ctype.field "s" (Ctype.Comp inner); Ctype.field "y" Ctype.char ]
  in
  Alcotest.(check int) "inner size" 16 (Layout.size_of lp64 (Ctype.Comp inner));
  Alcotest.(check int) "s aligned to 8" 8 (offset lp64 outer "s");
  Alcotest.(check int) "outer size" 32 (Layout.size_of lp64 (Ctype.Comp outer))

let arrays () =
  let c =
    mk_struct "arr_l"
      [ Ctype.field "tag" Ctype.char; Ctype.field "v" (Ctype.array Ctype.int 3) ]
  in
  Alcotest.(check int) "array aligned as element" 4 (offset lp64 c "v");
  Alcotest.(check int) "size" 16 (Layout.size_of lp64 (Ctype.Comp c));
  Alcotest.(check int) "array type size" 12
    (Layout.size_of lp64 (Ctype.array Ctype.int 3));
  Alcotest.(check int) "2d array" 24
    (Layout.size_of lp64 (Ctype.Array (Ctype.array Ctype.int 3, Some 2)))

let union_layout () =
  let u =
    mk_union "u_l"
      [ Ctype.field "c" Ctype.char; Ctype.field "d" Ctype.double; Ctype.field "i" Ctype.int ]
  in
  Alcotest.(check int) "all at 0 (c)" 0 (offset lp64 u "c");
  Alcotest.(check int) "all at 0 (d)" 0 (offset lp64 u "d");
  Alcotest.(check int) "size of largest" 8 (Layout.size_of lp64 (Ctype.Comp u));
  Alcotest.(check int) "align of strictest" 8 (Layout.align_of lp64 (Ctype.Comp u))

let bitfields_pack () =
  (* unsigned lo:3; unsigned mid:7; int hi;  -> lo/mid share unit 0 *)
  let c =
    mk_struct "bf_l"
      [
        Ctype.bitfield "lo" Ctype.uint 3;
        Ctype.bitfield "mid" Ctype.uint 7;
        Ctype.field "hi" Ctype.int;
      ]
  in
  let lo = Option.get (Layout.find_field lp64 c "lo") in
  let mid = Option.get (Layout.find_field lp64 c "mid") in
  Alcotest.(check int) "lo unit offset" 0 lo.Layout.fi_offset;
  Alcotest.(check int) "lo bit 0" 0 lo.Layout.fi_bit_off;
  Alcotest.(check int) "mid same unit" 0 mid.Layout.fi_offset;
  Alcotest.(check int) "mid bit 3" 3 mid.Layout.fi_bit_off;
  Alcotest.(check int) "hi after unit" 4 (offset lp64 c "hi");
  Alcotest.(check int) "size 8" 8 (Layout.size_of lp64 (Ctype.Comp c))

let bitfields_no_straddle () =
  (* a:30 then b:4 cannot share a 32-bit unit *)
  let c =
    mk_struct "bf2_l"
      [ Ctype.bitfield "a" Ctype.uint 30; Ctype.bitfield "b" Ctype.uint 4 ]
  in
  let b = Option.get (Layout.find_field lp64 c "b") in
  Alcotest.(check int) "b starts a new unit" 4 b.Layout.fi_offset;
  Alcotest.(check int) "b bit 0" 0 b.Layout.fi_bit_off;
  Alcotest.(check int) "size 8" 8 (Layout.size_of lp64 (Ctype.Comp c))

let bitfields_zero_width () =
  let c =
    mk_struct "bf3_l"
      [
        Ctype.bitfield "a" Ctype.uint 3;
        Ctype.bitfield "" Ctype.uint 0;
        Ctype.bitfield "b" Ctype.uint 3;
      ]
  in
  let b = Option.get (Layout.find_field lp64 c "b") in
  Alcotest.(check int) "b pushed to next unit" 4 b.Layout.fi_offset;
  Alcotest.(check int) "zero-width member omitted" 2
    (List.length (Layout.fields_of lp64 c))

let incomplete () =
  let c = Ctype.new_comp Ctype.CStruct "inc_l" in
  Alcotest.check_raises "incomplete struct size" (Layout.Incomplete "struct inc_l")
    (fun () -> ignore (Layout.size_of lp64 (Ctype.Comp c)));
  Alcotest.check_raises "function size" (Layout.Incomplete "function type")
    (fun () -> ignore (Layout.size_of lp64 (Ctype.func Ctype.int [])))

let empty_struct () =
  let c = mk_struct "empty_l" [] in
  Alcotest.(check int) "non-zero size" 1 (max 1 (Layout.size_of lp64 (Ctype.Comp c)))

(* Property: random plain-field structs have monotonically increasing,
   properly aligned offsets; each field fits inside the struct; total size
   is a multiple of the alignment. *)
let prop_layout_invariants =
  let field_gen =
    QCheck2.Gen.oneofl
      [ Ctype.char; Ctype.short; Ctype.int; Ctype.long; Ctype.double;
        Ctype.ptr Ctype.Void; Ctype.array Ctype.short 3 ]
  in
  QCheck2.Test.make ~name:"struct layout invariants" ~count:300
    QCheck2.Gen.(list_size (int_range 1 10) field_gen)
    (fun types ->
      let fields = List.mapi (fun i t -> Ctype.field (Printf.sprintf "f%d" i) t) types in
      let c = Ctype.new_comp Ctype.CStruct "prop" in
      Ctype.define_fields c fields;
      let infos = Layout.fields_of lp64 c in
      let size = Layout.size_of lp64 (Ctype.Comp c) in
      let align = Layout.align_of lp64 (Ctype.Comp c) in
      let ok_one prev (fi : Layout.field_info) =
        let t = fi.Layout.fi_field.Ctype.f_type in
        let a = Layout.align_of lp64 t in
        let sz = Layout.size_of lp64 t in
        let aligned = fi.Layout.fi_offset mod a = 0 in
        let inside = fi.Layout.fi_offset + sz <= size in
        let after = fi.Layout.fi_offset >= prev in
        if aligned && inside && after then Some (fi.Layout.fi_offset + sz)
        else None
      in
      let rec walk prev = function
        | [] -> true
        | fi :: rest -> (
            match ok_one prev fi with
            | Some next -> walk next rest
            | None -> false)
      in
      walk 0 infos && size mod align = 0)

let suite =
  [
    case "struct symbol layout (both ABIs)" symbol_layout;
    case "interior and tail padding" padding_tail;
    case "nested struct alignment" nested;
    case "array members and array sizes" arrays;
    case "union overlays" union_layout;
    case "bit-fields pack into one unit" bitfields_pack;
    case "bit-fields never straddle units" bitfields_no_straddle;
    case "zero-width bit-field closes the unit" bitfields_zero_width;
    case "incomplete types have no size" incomplete;
    case "empty struct" empty_struct;
    QCheck_alcotest.to_alcotest prop_layout_invariants;
  ]
