(* Structural property tests: random object graphs are laid out in target
   memory with the builder DSL, then DUEL's traversals must agree with an
   OCaml model of the same structure (and with the C baseline loops).
   This exercises -->/-->>/reductions over shapes far beyond the paper's
   fixed examples. *)

module Ctype = Duel_ctype.Ctype
module Tenv = Duel_ctype.Tenv
module Inferior = Duel_target.Inferior
module Build = Duel_target.Build
module Session = Duel_core.Session

type tree = Leaf | Node of int * tree * tree

let rec tree_size = function
  | Leaf -> 0
  | Node (_, l, r) -> 1 + tree_size l + tree_size r

let rec tree_preorder = function
  | Leaf -> []
  | Node (k, l, r) -> (k :: tree_preorder l) @ tree_preorder r

let rec tree_sum = function
  | Leaf -> 0
  | Node (k, l, r) -> k + tree_sum l + tree_sum r

let tree_levelorder t =
  let rec go = function
    | [] -> []
    | Leaf :: rest -> go rest
    | Node (k, l, r) :: rest -> k :: go (rest @ [ l; r ])
  in
  go [ t ]

let gen_tree : tree QCheck2.Gen.t =
  let open QCheck2.Gen in
  let rec go n =
    if n <= 0 then pure Leaf
    else
      frequency
        [
          (1, pure Leaf);
          ( 3,
            let* k = int_range 1 99 in
            map2 (fun l r -> Node (k, l, r)) (go (n / 2)) (go (n / 2)) );
        ]
  in
  go 16

(* Materialize the model in a fresh inferior as struct tnode nodes. *)
let build_tree_target tree =
  let inf = Inferior.create () in
  let comp = Tenv.declare_struct (Inferior.tenv inf) "tnode" in
  Ctype.define_fields comp
    [
      Ctype.field "key" Ctype.int;
      Ctype.field "left" (Ctype.ptr (Ctype.Comp comp));
      Ctype.field "right" (Ctype.ptr (Ctype.Comp comp));
    ];
  let rec build = function
    | Leaf -> 0
    | Node (k, l, r) ->
        let node = Build.alloc inf (Ctype.Comp comp) in
        Build.poke_field inf comp node "key" (Int64.of_int k);
        Build.poke_field inf comp node "left" (Int64.of_int (build l));
        Build.poke_field inf comp node "right" (Int64.of_int (build r));
        node
  in
  let root = build tree in
  let g = Inferior.define_global inf "root" (Ctype.ptr (Ctype.Comp comp)) in
  Build.poke_int inf (Ctype.ptr (Ctype.Comp comp)) g (Int64.of_int root);
  Session.create (Duel_target.Backend.direct inf)

let values_of session query =
  List.map
    (fun line ->
      match String.rindex_opt line '=' with
      | Some i ->
          int_of_string
            (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | None -> failwith line)
    (Session.exec session query)

let prop_tree_traversals =
  QCheck2.Test.make ~name:"random trees: -->/-->>/count/sum match the model"
    ~count:120 gen_tree (fun tree ->
      let s = build_tree_target tree in
      values_of s "root-->(left,right)->key" = tree_preorder tree
      && values_of s "root-->>(left,right)->key" = tree_levelorder tree
      && values_of s "#/(root-->(left,right))" = [ tree_size tree ]
      && (tree_size tree = 0
         || values_of s "+/(root-->(left,right)->key)" = [ tree_sum tree ]))

(* Random lists: duplicates found by the paper's one-liner = model dups. *)
let gen_list : int list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 25) (int_range 1 9))

let build_list_target values =
  let inf = Inferior.create () in
  let comp = Tenv.declare_struct (Inferior.tenv inf) "node" in
  Ctype.define_fields comp
    [
      Ctype.field "value" Ctype.int;
      Ctype.field "next" (Ctype.ptr (Ctype.Comp comp));
    ];
  let link v tail =
    let node = Build.alloc inf (Ctype.Comp comp) in
    Build.poke_field inf comp node "value" (Int64.of_int v);
    Build.poke_field inf comp node "next" (Int64.of_int tail);
    node
  in
  let head = List.fold_right link values 0 in
  let g = Inferior.define_global inf "L" (Ctype.ptr (Ctype.Comp comp)) in
  Build.poke_int inf (Ctype.ptr (Ctype.Comp comp)) g (Int64.of_int head);
  (inf, Session.create (Duel_target.Backend.direct inf))

let model_dup_pairs values =
  let arr = Array.of_list values in
  let out = ref [] in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      if arr.(i) = arr.(j) then out := (i, j) :: !out
    done
  done;
  List.rev !out

let prop_list_duplicates =
  QCheck2.Test.make ~name:"random lists: duplicate scan matches the model"
    ~count:120 gen_list (fun values ->
      let inf, s = build_list_target values in
      let lines =
        Session.exec s
          "L-->next#i->value ==? L-->next#j->value => if (i < j) \
           L-->next[[i,j]]->value"
      in
      (* the symbolic is expanded for short chains (L->next->value) and
         compressed for long ones (L-->next[[7]]->value); recover the node
         index from either form *)
      let parse line =
        match String.index_opt line '[' with
        | Some i when i + 1 < String.length line && line.[i + 1] = '[' ->
            Scanf.sscanf
              (String.sub line i (String.length line - i))
              "[[%d]]" (fun n -> n)
        | _ ->
            (* count the "next" links in the expanded form *)
            let rec count from acc =
              match String.index_from_opt line from 'n' with
              | Some j
                when j + 4 <= String.length line
                     && String.sub line j 4 = "next" ->
                  count (j + 4) (acc + 1)
              | Some j -> count (j + 1) acc
              | None -> acc
            in
            count 0 0
      in
      let rec pairs = function
        | a :: b :: rest -> (parse a, parse b) :: pairs rest
        | _ -> []
      in
      let duel = pairs lines in
      let c_base =
        List.map
          (fun (i, j, _) -> (i, j))
          (Duel_cquery.Cquery.list_duplicates
             (Duel_target.Backend.direct inf) ~name:"L")
      in
      let model = model_dup_pairs values in
      duel = model && c_base = model)

(* Walk lengths: a list of length n yields n nodes under --> and the
   chain compresses beyond the threshold. *)
let prop_list_walk =
  QCheck2.Test.make ~name:"random lists: --> yields exactly the list"
    ~count:120 gen_list (fun values ->
      let _, s = build_list_target values in
      values_of s "L-->next->value" = values
      && values_of s "#/(L-->next)" = [ List.length values ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_tree_traversals;
    QCheck_alcotest.to_alcotest prop_list_duplicates;
    QCheck_alcotest.to_alcotest prop_list_walk;
  ]
