(* C operator semantics through full parse+eval: arithmetic conversions,
   unsigned wraparound, pointers, casts, assignment, inc/dec. *)

open Support

let suite =
  [
    (* arithmetic and conversions *)
    q1 "integer addition" "2+3" "2+3 = 5";
    q1 "precedence" "2+3*4" "2+3*4 = 14";
    q1 "integer division truncates" "7/2" "7/2 = 3";
    q1 "negative division toward zero" "-7/2" "-7/2 = -3";
    q1 "negative modulo" "-7%2" "-7%2 = -1";
    q1 "int overflow wraps" "2147483647 + 1" "2147483647+1 = -2147483648";
    q1 "long no wrap at 2^31" "2147483647L + 1" "2147483647L+1 = 2147483648";
    q1 "unsigned subtraction wraps" "5u - 6u" "5u-6u = 4294967295";
    q1 "unsigned division" "4294967295u / 2" "4294967295u/2 = 2147483647";
    q1 "unsigned comparison" "4294967295u > 1" "4294967295u>1 = 1";
    q1 "signed/unsigned usual conversion" "-1 > 1u" "-1>1u = 1";
    q1 "mixed int/double" "1 + (double)3/2" "1+(double)3/2 = 2.5";
    q1 "float literal arithmetic" "0.5 * 4" "0.5*4 = 2";
    q1 "char promotes to int" "'a' + 1" "'a'+1 = 98";
    q1 "hex and octal" "0x10 + 010" "0x10+010 = 24";
    (* shifts and bitwise *)
    q1 "shift left" "1 << 4" "1<<4 = 16";
    q1 "shift into sign bit" "1 << 31" "1<<31 = -2147483648";
    q1 "arithmetic shift right" "-8 >> 1" "-8>>1 = -4";
    q1 "logical shift right of unsigned" "0x80000000u >> 31" "0x80000000u>>31 = 1";
    q1 "bitand" "12 & 10" "12&10 = 8";
    q1 "bitor" "12 | 3" "12|3 = 15";
    q1 "bitxor" "12 ^ 10" "12^10 = 6";
    q1 "bitnot" "~0" "~0 = -1";
    q1 "bitwise precedence" "1 | 2 ^ 3 & 2" "1|2^3&2 = 1";
    (* unary and truth *)
    q1 "logical not" "!5" "!5 = 0";
    q1 "logical not of zero" "!0" "!0 = 1";
    q1 "unary minus promotes char" "-'a'" "-'a' = -97";
    q1 "double negation" "- -5" "--5 = 5";
    (* comparisons *)
    q1 "less" "3 < 4" "3<4 = 1";
    q1 "equality false" "3 == 4" "3==4 = 0";
    q1 "float compare" "2.5 > 2" "2.5>2 = 1";
    (* casts *)
    q1 "narrowing cast wraps" "(char)321" "(char)321 = 65 'A'";
    q1 "cast to short" "(short)70000" "(short)70000 = 4464";
    q1 "float to int truncates" "(int)2.9" "(int)2.9 = 2";
    q1 "negative float to int" "(int)-2.9" "(int)-2.9 = -2";
    q1 "int to double" "(double)3" "(double)3 = 3";
    q1 "cast to unsigned" "(unsigned)-1" "(unsigned)-1 = 4294967295";
    q1 "double to float loses precision" "(float)0.1 == 0.1"
      "(float)0.1==0.1 = 0";
    (* sizeof *)
    q1 "sizeof int" "sizeof(int)" "sizeof(int) = 4";
    q1 "sizeof pointer" "sizeof(char *)" "sizeof(char *) = 8";
    q1 "sizeof array type" "sizeof(int[10])" "sizeof(int [10]) = 40";
    q1 "sizeof expression" "sizeof x" "sizeof x = 400";
    q1 "sizeof struct via typedef" "sizeof(sym_t)" "sizeof(sym_t) = 24";
    q1 "sizeof array element" "sizeof x[0]" "sizeof x[0] = 4";
    (* pointers *)
    q1 "array decays in arithmetic" "*(x + 3)" "*(x+3) = 7";
    q1 "pointer difference" "&x[5] - &x[2]" "&x[5]-&x[2] = 3";
    q1 "pointer difference scales" "(char *)&x[1] - (char *)&x[0]"
      "(char *)&x[1]-(char *)&x[0] = 4";
    q1 "pointer plus int indexes" "x[3]" "x[3] = 7";
    q1 "commuted index (symbolic normalizes)" "3[x]" "x[3] = 7";
    q1 "address then deref" "*&x[3]" "*&x[3] = 7";
    q1 "pointer comparison" "&x[1] < &x[2]" "&x[1]<&x[2] = 1";
    q1 "null pointer equality" "hash[0] != 0" "hash[0]!=0 = 1";
    q1 "deref of string global" "s[0]" "s[0] = 104 'h'";
    (* enums *)
    q1 "enum arithmetic" "GREEN + 1" "GREEN+1 = 2";
    q1 "enum compare" "paint == GREEN" "paint==GREEN = 1";
    (* ternary, logicals on single values *)
    q1 "ternary true" "1 ? 10 : 20" "10 = 10";
    q1 "ternary false" "0 ? 10 : 20" "20 = 20";
    q1 "and yields right value" "2 && 3" "2 && 3 = 3";
    q1 "or short-circuit value" "2 || 3" "2 = 1";
    q1 "or falls to right" "0 || 3" "0 || 3 = 3";
    (* bit-fields *)
    q1 "bit-field read lo" "pk.lo" "pk.lo = 5";
    q1 "bit-field read mid" "pk.mid" "pk.mid = 77";
    q1 "plain field after bit-fields" "pk.hi" "pk.hi = -1";
    (* assignment family, on fresh debuggees *)
    qf "assignment returns value" "w[0] = 42" [ "w[0] = 42" ];
    qf "compound assignment" "w[0] += 5" [ "w[0] = 15" ];
    qf "chained assignment" "w[0] = w[1] = 7" [ "w[0] = 7" ];
    qf "assignment converts" "w[0] = 2.9" [ "w[0] = 2" ];
    qf "preincrement" "++w[0]" [ "++w[0] = 11" ];
    qf "postincrement yields old" "w[0]++" [ "w[0]++ = 10" ];
    qf "predecrement" "--w[0]" [ "--w[0] = 9" ];
    qf "bit-field assignment wraps" "pk.lo = 9; pk.lo" [ "pk.lo = 1" ];
    qf "increment through alias" "int i; i = 5; i++; i" [ "i = 6" ];
    qf "struct assignment copies" "*L = *L->next; L->value" [ "L->value = 13" ];
  ]
