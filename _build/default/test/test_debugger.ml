(* Breakpoints, watchpoints, and assertions with DUEL conditions (the
   paper's Discussion section, implemented over mini-C). *)

module Interp = Duel_minic.Interp
module Debugger = Duel_debug.Debugger
module Inferior = Duel_target.Inferior

let case = Support.case

let program =
  {|
struct cell { int value; struct cell *next; };
struct cell *first;
int nalloc;

int push(int v) {
  struct cell *q;
  q = (struct cell *)malloc(sizeof(struct cell));
  q->value = v;
  q->next = first;
  first = q;
  nalloc = nalloc + 1;
  return v;
}

int build(int n) {
  int i;
  for (i = 0; i < n; i++)
    push(i * i % 7);
  return nalloc;
}

int clobber(int k) {
  struct cell *p;
  int i;
  p = first;
  for (i = 0; i < k; i++)
    p = p->next;
  p->value = -1;
  return k;
}

int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
|}

let make () =
  let inf = Inferior.create () in
  Duel_target.Stdfuncs.register_all inf;
  let interp = Interp.load inf program in
  Debugger.create interp

let entry_breakpoint () =
  let dbg = make () in
  let b = Debugger.break_at dbg "push" in
  (match Debugger.run_int dbg "build" [ 5 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "fires once per call" 5 (Debugger.hits dbg b)

let conditional_breakpoint () =
  let dbg = make () in
  (* values pushed by build(6): 0 1 4 2 2 4 *)
  let b = Debugger.break_at dbg ~condition:"v == 4" "push" in
  let seen = ref [] in
  Debugger.on_stop dbg (fun dbg reason ->
      (match reason with
      | Debugger.Breakpoint _ -> seen := Debugger.query dbg "v" :: !seen
      | _ -> ());
      Debugger.Continue);
  (match Debugger.run_int dbg "build" [ 6 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "two of the six pushes" 2 (Debugger.hits dbg b);
  Alcotest.(check (list (list string))) "v inspected at each stop"
    [ [ "v = 4" ]; [ "v = 4" ] ]
    !seen

let generator_condition () =
  let dbg = make () in
  (* a condition that is itself a generator query over the heap *)
  let b =
    Debugger.break_at dbg ~condition:"#/(first-->next) == 3" "push"
  in
  (match Debugger.run_int dbg "build" [ 6 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "exactly one stop at length 3" 1 (Debugger.hits dbg b)

let line_breakpoint () =
  let dbg = make () in
  (* line 13 is "nalloc = nalloc + 1;" inside push *)
  let b = Debugger.break_at dbg ~line:13 "push" in
  (match Debugger.run_int dbg "build" [ 4 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "once per push call" 4 (Debugger.hits dbg b)

let watchpoint_fires_on_change () =
  let dbg = make () in
  let w = Debugger.watch dbg "#/(first-->next)" in
  let transitions = ref [] in
  Debugger.on_stop dbg (fun _ reason ->
      (match reason with
      | Debugger.Watchpoint { old_value; new_value; _ } ->
          transitions := (old_value, new_value) :: !transitions
      | _ -> ());
      Debugger.Continue);
  (match Debugger.run_int dbg "build" [ 3 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one change per push" 3 (Debugger.hits dbg w);
  (match List.rev !transitions with
  | (o, n) :: _ ->
      Alcotest.(check string) "first old" "#/(first-->next) = 0" o;
      Alcotest.(check string) "first new" "#/(first-->next) = 1" n
  | [] -> Alcotest.fail "no transitions")

let watchpoint_on_global () =
  let dbg = make () in
  let w = Debugger.watch dbg "nalloc" in
  (match Debugger.run_int dbg "build" [ 4 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "four increments" 4 (Debugger.hits dbg w)

let assertion_violated () =
  let dbg = make () in
  (match Debugger.run_int dbg "build" [ 5 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let a = Debugger.add_assertion dbg "first-->next->(value >= 0)" in
  Debugger.on_stop dbg (fun _ _ -> Debugger.Abort);
  (match Debugger.run_int dbg "clobber" [ 2 ] with
  | Ok _ -> Alcotest.fail "assertion should have fired"
  | Error msg ->
      Alcotest.(check bool) "abort message names the assertion" true
        (String.length msg > 0
        && String.sub msg 0 9 = "assertion"));
  Alcotest.(check int) "fired once then aborted" 1 (Debugger.hits dbg a)

let assertion_holds () =
  let dbg = make () in
  let a = Debugger.add_assertion dbg "nalloc >= 0" in
  (match Debugger.run_int dbg "build" [ 4 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "never fired" 0 (Debugger.hits dbg a)

let query_stack_at_stop () =
  let dbg = make () in
  ignore (Debugger.break_at dbg ~condition:"n == 1" "fib");
  let depth_seen = ref 0 in
  Debugger.on_stop dbg (fun dbg reason ->
      (match reason with
      | Debugger.Breakpoint _ when !depth_seen = 0 ->
          depth_seen := List.length (Debugger.query dbg "frames.n")
      | _ -> ());
      Debugger.Continue);
  (match Debugger.run_int dbg "fib" [ 6 ] with
  | Ok v -> Alcotest.(check int64) "fib(6)" 8L v
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "whole recursion stack visible" 6 !depth_seen

let mutation_from_stop () =
  let dbg = make () in
  (match Debugger.run_int dbg "build" [ 3 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* patch the running program's data from the debugger, then verify *)
  ignore (Debugger.query dbg "first-->next->value = 9 ;");
  (match Debugger.run_int dbg "build" [ 0 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "all patched"
    [ "#/(first-->next->(value ==? 9)) = 3" ]
    (Debugger.query dbg "#/(first-->next->(value ==? 9))")

let abort_unwinds_frames () =
  let inf = Inferior.create () in
  Duel_target.Stdfuncs.register_all inf;
  let interp = Interp.load inf program in
  let dbg = Debugger.create interp in
  ignore (Debugger.break_at dbg ~condition:"n == 0" "fib");
  Debugger.on_stop dbg (fun _ _ -> Debugger.Abort);
  (match Debugger.run_int dbg "fib" [ 8 ] with
  | Ok _ -> Alcotest.fail "should abort"
  | Error _ -> ());
  Alcotest.(check int) "no leaked frames" 0 (List.length (Inferior.frames inf))

let delete_disables () =
  let dbg = make () in
  let b = Debugger.break_at dbg "push" in
  (match Debugger.run_int dbg "build" [ 2 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Debugger.delete dbg b;
  (match Debugger.run_int dbg "build" [ 2 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "no hits after delete" 2 (Debugger.hits dbg b)

let suite =
  [
    case "entry breakpoint fires per call" entry_breakpoint;
    case "conditional breakpoint on a parameter" conditional_breakpoint;
    case "generator query as breakpoint condition" generator_condition;
    case "line breakpoint" line_breakpoint;
    case "watchpoint on a generator query" watchpoint_fires_on_change;
    case "watchpoint on a global" watchpoint_on_global;
    case "assertion violated aborts execution" assertion_violated;
    case "assertion that holds never fires" assertion_holds;
    case "frames.n shows the recursion stack at a stop" query_stack_at_stop;
    case "mutating the paused program from DUEL" mutation_from_stop;
    case "abort unwinds all frames" abort_unwinds_frames;
    case "delete disables a breakpoint" delete_disables;
  ]
