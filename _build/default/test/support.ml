(* Shared helpers for the test suites. *)

module Session = Duel_core.Session
module Env = Duel_core.Env
module Inferior = Duel_target.Inferior
module Scenarios = Duel_scenarios.Scenarios

type kit = { session : Session.t; inf : Inferior.t }

let kit ?(engine = Session.Seq_engine) ?(scenario = `All) () =
  let inf =
    match scenario with
    | `All -> Scenarios.all ()
    | `Symtab -> Scenarios.symtab ()
    | `Faulty -> Scenarios.faulty ()
    | `Big n -> Scenarios.big_array n
  in
  { session = Session.create ~engine (Duel_target.Backend.direct inf); inf }

let kit_rsp ?(engine = Session.Seq_engine) () =
  let inf = Scenarios.all () in
  { session = Session.create ~engine (Duel_rsp.Client.loopback inf); inf }

(* One reusable session per engine: alias pollution across cases is part of
   real usage, but tests that care create their own kit. *)
let exec k q = Session.exec k.session q
let exec1 k q = match exec k q with [ l ] -> l | ls -> String.concat "\n" ls

let check_query k q expected () =
  Alcotest.(check (list string)) q expected (exec k q)

let check_line k q expected () = Alcotest.(check string) q expected (exec1 k q)

let case name f = Alcotest.test_case name `Quick f

(* A shared kitchen-sink debuggee for read-only queries (building the
   1024-bucket table per case would dominate test time); tests with side
   effects on the target make their own kit. *)
let shared = lazy (kit ())

let q name query expected =
  case name (fun () -> check_query (Lazy.force shared) query expected ())

(* Same but only the single output line. *)
let q1 name query expected =
  case name (fun () -> check_line (Lazy.force shared) query expected ())

(* Same against a fresh debuggee (for queries with side effects). *)
let qf name query expected =
  case name (fun () -> check_query (kit ()) query expected ())
