(* The DUEL lexer: operators, literals, disambiguation. *)

module T = Duel_core.Token
module Lexer = Duel_core.Lexer
module Ctype = Duel_ctype.Ctype

let case = Support.case
let abi = Duel_ctype.Abi.lp64

let toks src = List.map fst (Lexer.tokenize ~abi src)

let tok_t =
  Alcotest.testable
    (fun fmt t -> Format.pp_print_string fmt (T.describe t))
    ( = )

let check_toks what src expected =
  Alcotest.(check (list tok_t)) what (expected @ [ T.EOF ]) (toks src)

let duel_operators () =
  check_toks "expansion family" "--> -->> -- - ->"
    [ T.DFS; T.BFS; T.DEC; T.MINUS; T.ARROW ];
  check_toks "filters" "<? >? <=? >=? ==? !=?"
    [ T.QLT; T.QGT; T.QLE; T.QGE; T.QEQ; T.QNE ];
  check_toks "filters vs comparisons" "< <= == != > >="
    [ T.LT; T.LE; T.EQEQ; T.NE; T.GT; T.GE ];
  check_toks "reductions" "#/ +/ &&/ ||/ ==/ #"
    [ T.COUNTOF; T.SUMOF; T.ALLOF; T.ANYOF; T.SEQEQ; T.HASH ];
  check_toks "alias and imply" ":= => = :"
    [ T.DEFINE; T.IMPLY; T.ASSIGN; T.COLON ];
  check_toks "dots" ".. ." [ T.DOTDOT; T.DOT ];
  check_toks "compound assigns" "+= -= <<= >>= &= |= ^= *= /= %="
    [ T.PLUSEQ; T.MINUSEQ; T.SHLEQ; T.SHREQ; T.AMPEQ; T.PIPEEQ; T.CARETEQ;
      T.STAREQ; T.SLASHEQ; T.PERCENTEQ ]

let select_brackets () =
  check_toks "select opener is one token, closer two" "x[[3]]"
    [ T.ID "x"; T.LSELECT; T.INT (3L, Ctype.int, "3"); T.RBRACK; T.RBRACK ];
  check_toks "nested index still works" "a[b[0]]"
    [ T.ID "a"; T.LBRACK; T.ID "b"; T.LBRACK; T.INT (0L, Ctype.int, "0");
      T.RBRACK; T.RBRACK ]

let range_vs_float () =
  check_toks "1..3 is int range" "1..3"
    [ T.INT (1L, Ctype.int, "1"); T.DOTDOT; T.INT (3L, Ctype.int, "3") ];
  check_toks "1.5 is a float" "1.5" [ T.FLT (1.5, Ctype.double, "1.5") ];
  check_toks "1. is a float" "1. " [ T.FLT (1.0, Ctype.double, "1.") ];
  check_toks "1e3" "1e3" [ T.FLT (1000.0, Ctype.double, "1e3") ];
  check_toks "1.5e-2" "1.5e-2" [ T.FLT (0.015, Ctype.double, "1.5e-2") ];
  check_toks "float suffix f" "2.5f" [ T.FLT (2.5, Ctype.float, "2.5") ]

let integer_literals () =
  check_toks "hex" "0xff" [ T.INT (255L, Ctype.int, "0xff") ];
  check_toks "octal" "017" [ T.INT (15L, Ctype.int, "017") ];
  check_toks "unsigned suffix" "5u" [ T.INT (5L, Ctype.uint, "5u") ];
  check_toks "long suffix" "5L" [ T.INT (5L, Ctype.long, "5L") ];
  check_toks "ull" "5ull" [ T.INT (5L, Ctype.ullong, "5ull") ];
  check_toks "big decimal promotes to long" "4294967296"
    [ T.INT (4294967296L, Ctype.long, "4294967296") ];
  check_toks "big hex promotes to uint" "0xffffffff"
    [ T.INT (4294967295L, Ctype.uint, "0xffffffff") ];
  check_toks "huge hex is ulong on lp64" "0xffffffffffffffff"
    [ T.INT (-1L, Ctype.ulong, "0xffffffffffffffff") ]

let char_and_string () =
  check_toks "char" "'a'" [ T.CHR ('a', "'a'") ];
  check_toks "escaped" "'\\n'" [ T.CHR ('\n', "'\\n'") ];
  check_toks "nul" "'\\0'" [ T.CHR ('\000', "'\\0'") ];
  check_toks "hex escape" "'\\x41'" [ T.CHR ('A', "'\\x41'") ];
  check_toks "string" "\"ab\\tc\"" [ T.STR "ab\tc" ];
  check_toks "string with quote" "\"a\\\"b\"" [ T.STR "a\"b" ]

let keywords_and_idents () =
  check_toks "keywords" "if else for while sizeof struct union enum"
    [ T.KIF; T.KELSE; T.KFOR; T.KWHILE; T.KSIZEOF; T.KSTRUCT; T.KUNION; T.KENUM ];
  check_toks "type keywords" "int char long short signed unsigned float double void _Bool"
    [ T.KINT; T.KCHAR; T.KLONG; T.KSHORT; T.KSIGNED; T.KUNSIGNED; T.KFLOAT;
      T.KDOUBLE; T.KVOID; T.KBOOL ];
  check_toks "frame keywords" "frame frames" [ T.KFRAME; T.KFRAMES ];
  check_toks "underscore alone" "_ _x x_" [ T.UNDER; T.ID "_x"; T.ID "x_" ];
  check_toks "prefix is not keyword" "iffy format" [ T.ID "iffy"; T.ID "format" ]

let comments () =
  check_toks "## comment to end of line" "1 ## comment here\n2"
    [ T.INT (1L, Ctype.int, "1"); T.INT (2L, Ctype.int, "2") ];
  check_toks "# alone is index alias" "x#i" [ T.ID "x"; T.HASH; T.ID "i" ]

let errors () =
  let check_err what src =
    Alcotest.(check bool) what true
      (match Lexer.tokenize ~abi src with
      | _ -> false
      | exception Lexer.Error _ -> true)
  in
  check_err "unterminated string" "\"abc";
  check_err "unterminated char" "'a";
  check_err "empty hex" "0x";
  check_err "bad octal" "08";
  check_err "stray backquote" "`"

let positions () =
  let positions = List.map snd (Lexer.tokenize ~abi "ab + cd") in
  Alcotest.(check (list int)) "byte offsets" [ 0; 3; 5; 7 ] positions

let suite =
  [
    case "DUEL operators, maximal munch" duel_operators;
    case "select brackets" select_brackets;
    case "1..3 vs floats" range_vs_float;
    case "integer literal typing" integer_literals;
    case "chars and strings" char_and_string;
    case "keywords and identifiers" keywords_and_idents;
    case "comments" comments;
    case "lexical errors" errors;
    case "token positions" positions;
  ]
