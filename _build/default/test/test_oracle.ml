(* Differential oracle: random C integer-arithmetic expressions evaluated
   by DUEL must match a direct Int32 reference implementation of C's
   [int] semantics (two's complement wraparound, truncating division,
   arithmetic shifts).  This cross-checks the lexer, parser, conversion
   machinery, and both engines against an independent model. *)

module Session = Duel_core.Session

type op = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr | Lt | Eq

type aexp =
  | Const of int32
  | Neg of aexp
  | Not of aexp
  | Bnot of aexp
  | Bin of op * aexp * aexp

exception Skip  (* C-undefined cases: division by zero / INT_MIN / -1 *)

let rec reference (e : aexp) : int32 =
  match e with
  | Const v -> v
  | Neg a -> Int32.neg (reference a)
  | Not a -> if reference a = 0l then 1l else 0l
  | Bnot a -> Int32.lognot (reference a)
  | Bin (op, a, b) -> (
      let va = reference a and vb = reference b in
      match op with
      | Add -> Int32.add va vb
      | Sub -> Int32.sub va vb
      | Mul -> Int32.mul va vb
      | Div ->
          if vb = 0l || (va = Int32.min_int && vb = -1l) then raise Skip
          else Int32.div va vb
      | Mod ->
          if vb = 0l || (va = Int32.min_int && vb = -1l) then raise Skip
          else Int32.rem va vb
      | And -> Int32.logand va vb
      | Or -> Int32.logor va vb
      | Xor -> Int32.logxor va vb
      | Shl -> Int32.shift_left va (Int32.to_int vb land 31)
      | Shr -> Int32.shift_right va (Int32.to_int vb land 31)
      | Lt -> if Int32.compare va vb < 0 then 1l else 0l
      | Eq -> if Int32.equal va vb then 1l else 0l)

let op_text = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Eq -> "=="

(* Fully parenthesized rendering; negative constants are written as
   subtractions from zero so the lexer sees only plain literals. *)
let rec render = function
  | Const v ->
      if Int32.equal v Int32.min_int then
        (* C has no int literal for INT_MIN (2147483648 would type as
           long, just as in real C); spell it arithmetically *)
        "((0 - 2147483647) - 1)"
      else if Int32.compare v 0l >= 0 then Int32.to_string v
      else Printf.sprintf "(0 - %ld)" (Int32.neg v)
  | Neg a -> Printf.sprintf "(-%s)" (render a)
  | Not a -> Printf.sprintf "(!%s)" (render a)
  | Bnot a -> Printf.sprintf "(~%s)" (render a)
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (render a) (op_text op) (render b)

let gen_aexp : aexp QCheck2.Gen.t =
  let open QCheck2.Gen in
  let const =
    oneof
      [
        map Int32.of_int (int_range (-100) 100);
        oneofl [ 0l; 1l; -1l; Int32.max_int; Int32.min_int; 0x7fffl ];
      ]
  in
  let shift_amount = map Int32.of_int (int_range 0 31) in
  let rec expr n =
    if n = 0 then map (fun v -> Const v) const
    else
      frequency
        [
          (2, map (fun v -> Const v) const);
          (1, map (fun a -> Neg a) (expr (n - 1)));
          (1, map (fun a -> Not a) (expr (n - 1)));
          (1, map (fun a -> Bnot a) (expr (n - 1)));
          ( 6,
            let* op =
              oneofl [ Add; Sub; Mul; Div; Mod; And; Or; Xor; Lt; Eq ]
            in
            map2 (fun a b -> Bin (op, a, b)) (expr (n - 1)) (expr (n - 1)) );
          ( 2,
            let* op = oneofl [ Shl; Shr ] in
            map2
              (fun a b -> Bin (op, a, b))
              (expr (n - 1))
              (map (fun v -> Const v) shift_amount) );
        ]
  in
  expr 4

(* DUEL's int literal typing means INT_MIN-ish constants can type as long;
   force int context by casting every constant?  No: the reference uses
   the value as written; DUEL types 2147483647 as int and our rendering
   never emits a literal above int range, so both sides stay in int. *)
let session =
  lazy
    (let k = Support.kit () in
     k.Support.session)

let eval_duel engine e =
  let s = Lazy.force session in
  s.Session.engine <- engine;
  let line = Session.exec_string s (render e) in
  match String.rindex_opt line '=' with
  | Some i ->
      Int64.of_string (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
  | None -> failwith ("no value in: " ^ line)

let agree engine e =
  match reference e with
  | expected -> (
      match eval_duel engine e with
      | got -> Int64.equal (Int64.of_int32 expected) got
      | exception _ -> false)
  | exception Skip -> true
  | exception Division_by_zero -> true

let prop_seq =
  QCheck2.Test.make ~name:"DUEL int arithmetic matches the Int32 oracle (seq)"
    ~print:render ~count:600 gen_aexp (agree Session.Seq_engine)

let prop_sm =
  QCheck2.Test.make ~name:"DUEL int arithmetic matches the Int32 oracle (sm)"
    ~print:render ~count:300 gen_aexp (agree Session.Sm_engine)

(* The same oracle on the ILP32 ABI: int is still 32 bits there, so the
   reference stands; this exercises the other ABI's normalize paths. *)
let session32 =
  lazy
    (Session.create
       (Duel_target.Backend.direct
          (Duel_scenarios.Scenarios.all ~abi:Duel_ctype.Abi.ilp32 ())))

let agree32 e =
  match reference e with
  | expected -> (
      let s = Lazy.force session32 in
      let line = Session.exec_string s (render e) in
      match String.rindex_opt line '=' with
      | Some i -> (
          match
            Int64.of_string
              (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
          with
          | got -> Int64.equal (Int64.of_int32 expected) got
          | exception _ -> false)
      | None -> false)
  | exception Skip -> true
  | exception Division_by_zero -> true

let prop_ilp32 =
  QCheck2.Test.make ~name:"DUEL int arithmetic matches the oracle on ILP32"
    ~print:render ~count:300 gen_aexp agree32

let suite =
  [
    QCheck_alcotest.to_alcotest prop_seq;
    QCheck_alcotest.to_alcotest prop_sm;
    QCheck_alcotest.to_alcotest prop_ilp32;
  ]
