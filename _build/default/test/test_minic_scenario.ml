(* The most faithful reproduction possible: instead of poking the symbol
   table into memory with OCaml builders, run an actual C program in the
   simulated inferior to build it — then ask the paper's questions about
   the state the program left behind, exactly as a live gdb+DUEL session
   would. *)

module Interp = Duel_minic.Interp
module Inferior = Duel_target.Inferior
module Session = Duel_core.Session

let case = Support.case

let program =
  {|
struct symbol { char *name; int scope; struct symbol *next; };
struct symbol *hash[64];

int add(int bucket, char *name, int scope) {
  struct symbol *q;
  q = (struct symbol *)malloc(sizeof(struct symbol));
  q->name = name;
  q->scope = scope;
  q->next = hash[bucket];
  hash[bucket] = q;
  return scope;
}

int populate() {
  int b;
  ## default chains: two symbols per bucket, scopes 2 then 1,
  ## inserted in increasing scope order so chains end up decreasing
  for (b = 0; b < 64; b++) {
    add(b, "inner", 1);
    add(b, "outer", 2);
  }
  ## the interesting buckets from the paper's transcripts
  add(5, "yylval", 7);
  add(41, "yytext", 8);
  ## a sortedness violation four links down bucket 17
  add(17, "deep3", 6);
  add(17, "deep2", 5);
  add(17, "deep1", 5);
  return 0;
}

int clear_heads() {
  int b;
  for (b = 0; b < 64; b++)
    hash[b]->scope = 0;
  return 0;
}
|}

let make () =
  let inf = Inferior.create () in
  Duel_target.Stdfuncs.register_all inf;
  let t = Interp.load inf program in
  ignore (Interp.call_int t "populate" []);
  (inf, t, Session.create (Duel_target.Backend.direct inf))

let deep_scopes () =
  let _, _, s = make () in
  Alcotest.(check (list string)) "the paper's hash scan"
    [ "hash[5]->scope = 7"; "hash[17]->scope = 5"; "hash[41]->scope = 8" ]
    (Session.exec s "(hash[..64] !=? 0)->scope >? 2")

let names_via_with () =
  let _, _, s = make () in
  Alcotest.(check (list string)) "names through _ and with"
    [ "hash[5]->name = \"yylval\""; "hash[17]->name = \"deep1\"";
      "hash[41]->name = \"yytext\"" ]
    (Session.exec s "hash[..64]->(if (_ && scope > 2) name)")

let chain_walk () =
  let _, _, s = make () in
  Alcotest.(check (list string)) "bucket 0 chain, decreasing scopes"
    [ "hash[0]->scope = 2"; "hash[0]->next->scope = 1" ]
    (Session.exec s "hash[0]-->next->scope")

let sortedness_violation () =
  let _, _, s = make () in
  (* deep1(5) deep2(5) deep3(6) outer(2) inner(1): violation where a
     scope is less than its successor's — deep2(5) < deep3(6) *)
  Alcotest.(check (list string)) "found at the planted position"
    [ "hash[17]->next->scope = 5" ]
    (Session.exec s "hash[..64]-->next->if (next) scope <? next->scope")

let totals () =
  let _, _, s = make () in
  Alcotest.(check (list string)) "symbol count: 64*2 + 5 planted"
    [ "#/(hash[..64]-->next) = 133" ]
    (Session.exec s "#/(hash[..64]-->next)")

let clear_by_program_then_query () =
  let _, t, s = make () in
  ignore (Interp.call_int t "clear_heads" []);
  Alcotest.(check (list string)) "heads cleared by the program"
    [ "#/(hash[..64]->(scope ==? 0)) = 64" ]
    (Session.exec s "#/(hash[..64]->(scope ==? 0))")

let clear_by_duel_then_program () =
  let _, t, s = make () in
  (* mutate from the debugger, observe from the program *)
  ignore (Session.exec s "hash[0..63]->scope = 9 ;");
  ignore (Interp.call_int t "populate" []);
  (* populate pushed new nodes on every chain; each old head, scope 9,
     is still reachable somewhere down its chain *)
  Alcotest.(check (list string)) "all 64 old heads still carry scope 9"
    [ "#/(hash[..64]-->next->(scope ==? 9)) = 64" ]
    (Session.exec s "#/(hash[..64]-->next->(scope ==? 9))")

let duel_calls_into_program () =
  let _, _, s = make () in
  (* call the program's own add() from a DUEL one-liner, then observe *)
  ignore (Session.exec s "add(3, \"fromduel\", 42) ;");
  Alcotest.(check (list string)) "inserted by a DUEL call"
    [ "hash[3]->name = \"fromduel\""; "hash[3]->scope = 42" ]
    (Session.exec s "hash[3]->(name, scope)")

let suite =
  [
    case "deep scopes on a program-built table" deep_scopes;
    case "names via with/_ on a program-built table" names_via_with;
    case "chain walk" chain_walk;
    case "sortedness violation" sortedness_violation;
    case "symbol totals" totals;
    case "program mutation observed by DUEL" clear_by_program_then_query;
    case "DUEL mutation observed by the program" clear_by_duel_then_program;
    case "DUEL calls the program's own functions" duel_calls_into_program;
  ]
