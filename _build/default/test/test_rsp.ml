(* The GDB remote-serial-protocol substrate: framing, server, client. *)

module Packet = Duel_rsp.Packet
module Server = Duel_rsp.Server
module Client = Duel_rsp.Client
module Dbgi = Duel_dbgi.Dbgi
module Ctype = Duel_ctype.Ctype
module Inferior = Duel_target.Inferior

let case = Support.case

let framing () =
  Alcotest.(check string) "simple frame" "$m10,4#2e" (Packet.encode "m10,4");
  Alcotest.(check string) "decode" "m10,4" (Packet.decode "$m10,4#2e");
  Alcotest.(check string) "empty payload" "" (Packet.decode (Packet.encode ""));
  Alcotest.(check int) "checksum is mod 256" 0x2e (Packet.checksum "m10,4")

let escaping () =
  let tricky = "a#b$c}d*e" in
  Alcotest.(check string) "escaped roundtrip" tricky
    (Packet.decode (Packet.encode tricky));
  (* the encoded form must not contain a bare '#' before the trailer *)
  let encoded = Packet.encode tricky in
  let body = String.sub encoded 1 (String.length encoded - 4) in
  Alcotest.(check bool) "no raw specials in body" false
    (String.exists (fun c -> c = '$') body)

let rle () =
  (* "0* " means '0' repeated (' ' - 29 + 1) = 4 times total *)
  let payload = "0* " in
  let framed = Printf.sprintf "$%s#%02x" payload (Packet.checksum payload) in
  Alcotest.(check string) "run-length decode" "0000" (Packet.decode framed)

let malformed () =
  let bad what raw =
    Alcotest.(check bool) what true
      (match Packet.decode raw with
      | _ -> false
      | exception Packet.Malformed _ -> true)
  in
  bad "no frame" "m10,4";
  bad "bad checksum" "$m10,4#00";
  bad "truncated" "$m";
  bad "trailing escape" (Printf.sprintf "$a}#%02x" (Packet.checksum "a}"));
  bad "rle without prior" (Printf.sprintf "$*x#%02x" (Packet.checksum "*x"))

let hex () =
  Alcotest.(check string) "bytes to hex" "00ff10"
    (Packet.hex_of_bytes (Bytes.of_string "\000\255\016"));
  Alcotest.(check string) "hex to bytes" "\000\255\016"
    (Bytes.to_string (Packet.bytes_of_hex "00ff10"));
  Alcotest.(check bool) "odd length rejected" true
    (match Packet.bytes_of_hex "abc" with
    | _ -> false
    | exception Packet.Malformed _ -> true)

let prop_packet_roundtrip =
  QCheck2.Test.make ~name:"packet encode/decode roundtrip" ~count:500
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun payload -> Packet.decode (Packet.encode payload) = payload)

let server_memory () =
  let inf = Inferior.create () in
  let g = Inferior.define_global inf "g" (Ctype.array Ctype.char 8) in
  let srv = Server.create inf in
  let reply payload = Server.handle_payload srv payload in
  Alcotest.(check string) "write" "OK"
    (reply (Printf.sprintf "M%x,3:616263" g));
  Alcotest.(check string) "read back" "616263"
    (reply (Printf.sprintf "m%x,3" g));
  Alcotest.(check string) "fault read" "E01" (reply "m40000000,4");
  Alcotest.(check string) "fault write" "E01" (reply "M40000000,1:00");
  Alcotest.(check string) "length mismatch" "E02"
    (reply (Printf.sprintf "M%x,3:61" g));
  Alcotest.(check string) "unknown packet empty reply" "" (reply "Zmagic");
  Alcotest.(check string) "qSupported" "PacketSize=4000" (reply "qSupported:x");
  Alcotest.(check string) "halt reason" "S05" (reply "?")

let server_extensions () =
  let inf = Duel_scenarios.Scenarios.all () in
  let srv = Server.create inf in
  let reply payload = Server.handle_payload srv payload in
  let addr = reply "qDuelAlloc:20" in
  Alcotest.(check bool) "alloc returns hex addr" true
    (int_of_string ("0x" ^ addr) > 0);
  Alcotest.(check string) "frames count" "3" (reply "qDuelFrames");
  Alcotest.(check string) "call abs" "i7" (reply "qDuelCall:abs;ifffffffffffffff9");
  Alcotest.(check string) "bad cval is a protocol error" "$E00#a5"
    (Server.handle srv (Packet.encode "qDuelCall:abs;i-7"));
  Alcotest.(check bool) "call error surfaces" true
    (String.length (reply "qDuelCall:nosuch") > 2);
  Alcotest.(check string) "nak on garbage" "-" (Server.handle srv "not a packet")

let client_end_to_end () =
  let k = Support.kit_rsp () in
  Alcotest.(check (list string)) "query over the wire"
    [ "x[3] = 7"; "x[18] = 9"; "x[47] = 6" ]
    (Support.exec k "x[1..4,8,12..50] >? 5 <? 10");
  Alcotest.(check (list string)) "write over the wire"
    [ "w[0] = 77" ]
    (Support.exec k "w[0] = 77");
  Alcotest.(check (list string)) "declaration allocates remotely"
    [ "r0+1 = 8" ]
    (Support.exec k "int r0; r0 = 7; r0 + 1");
  Alcotest.(check (list string)) "call with return typing"
    [ "strchr(s, 'w') = \"world\"" ]
    (Support.exec k "strchr(s, 'w')");
  Alcotest.(check (list string)) "faults become DUEL errors"
    [ "Illegal memory reference: *(int *)0x40000000 = lvalue 0x40000000" ]
    (Support.exec k "*(int *)0x40000000")

let client_matches_direct () =
  let queries =
    [
      "(hash[..1024] !=? 0)->scope >? 5";
      "hash[0]-->next->scope";
      "head-->next->value[[3,5]]";
      "#/(root-->(left,right)->key)";
      "printf(\"%s\", argv[1])";
    ]
  in
  let direct = Support.kit () in
  let rsp = Support.kit_rsp () in
  List.iter
    (fun query ->
      Alcotest.(check (list string)) query (Support.exec direct query)
        (Support.exec rsp query);
      Alcotest.(check string) ("stdout: " ^ query)
        (Inferior.take_output direct.Support.inf)
        (Inferior.take_output rsp.Support.inf))
    queries

let suite =
  [
    case "packet framing and checksums" framing;
    case "payload escaping" escaping;
    case "run-length decoding" rle;
    case "malformed packets rejected" malformed;
    case "hex codecs" hex;
    QCheck_alcotest.to_alcotest prop_packet_roundtrip;
    case "server memory packets" server_memory;
    case "server qDuel extensions" server_extensions;
    case "client end to end" client_end_to_end;
    case "client output matches direct backend" client_matches_direct;
  ]
