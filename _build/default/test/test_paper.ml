(* E1: golden tests for the paper's example transcripts.

   Each case is one `gdb> duel ...` interaction from the paper, run
   against the scenario debuggee built to match its data.  Where our
   output deliberately deviates (documented in EXPERIMENTS.md), the case
   name carries a [dev:] tag and the expectation records OUR output:
     dev:float   — we print 2.5 where the paper prints 2.500
     dev:order   — our --> visits true preorder (paper: 9,3,5,4,12)
     dev:compress— threshold-4 compression (paper inconsistent: compresses
                   3 links in one example, leaves 3 uncompressed in another)
     dev:typo    — the paper's tree-search comparisons are flipped
                   relative to its own printed output *)

open Support

let silent_suffix = []

let suite =
  [
    (* Syntax section, first examples *)
    q1 "print equivalence" "1 + (double)3/2" "1+(double)3/2 = 2.5";
    q "alternation products" "(1,2,5)*4+(10,200)"
      [ "1*4+10 = 14"; "1*4+200 = 204"; "2*4+10 = 18"; "2*4+200 = 208";
        "5*4+10 = 30"; "5*4+200 = 220" ];
    q "ranges and alternation" "(3,11)+(5..7)"
      [ "3+5 = 8"; "3+6 = 9"; "3+7 = 10"; "11+5 = 16"; "11+6 = 17";
        "11+7 = 18" ];
    (* semantics section: (1..3)+(5,9) prints 6 10 7 11 8 12 *)
    q "semantics driving order" "(1..3)+(5,9)"
      [ "1+5 = 6"; "1+9 = 10"; "2+5 = 7"; "2+9 = 11"; "3+5 = 8"; "3+9 = 12" ];
    (* to with generator operands *)
    q "to over alternating bounds" "(1,5)..(5,10)"
      [ "1 = 1"; "2 = 2"; "3 = 3"; "4 = 4"; "5 = 5";
        "1 = 1"; "2 = 2"; "3 = 3"; "4 = 4"; "5 = 5"; "6 = 6"; "7 = 7";
        "8 = 8"; "9 = 9"; "10 = 10";
        "5 = 5";
        "5 = 5"; "6 = 6"; "7 = 7"; "8 = 8"; "9 = 9"; "10 = 10" ];
    (* the x[100] searches *)
    q "range search with filters" "x[1..4,8,12..50] >? 5 <? 10"
      [ "x[3] = 7"; "x[18] = 9"; "x[47] = 6" ];
    q "same search via ==? with a range" "x[1..4,8,12..50] ==? (6..9)"
      [ "x[3] = 7"; "x[18] = 9"; "x[47] = 6" ];
    q "C comparison keeps C semantics" "x[1..3] == 7"
      [ "x[1]==7 = 0"; "x[2]==7 = 0"; "x[3]==7 = 1" ];
    (* the hash searches *)
    q "non-null heads with deep scopes" "(hash[..1024] !=? 0)->scope >? 5"
      [ "hash[42]->scope = 7"; "hash[529]->scope = 8" ];
    q "C loop equivalent (full C)"
      "int i; for (i = 0; i < 1024; i++) if (hash[i] && hash[i]->scope > 5) hash[i]->scope"
      [ "hash[i]->scope = 7"; "hash[i]->scope = 8" ];
    q "C loop with DUEL filter"
      "int i; for (i = 0; i < 1024; i++) if (hash[i]) hash[i]->scope >? 5"
      [ "hash[i]->scope = 7"; "hash[i]->scope = 8" ];
    q "C loop with both filters"
      "int i; for (i = 0; i < 1024; i++) (hash[i] !=? 0)->scope >? 5"
      [ "hash[i]->scope = 7"; "hash[i]->scope = 8" ];
    (* alternation of fields in a with scope *)
    q "fields via alternation" "hash[1,9]->(scope,name)"
      [ "hash[1]->scope = 3"; "hash[1]->name = \"x\"";
        "hash[9]->scope = 2"; "hash[9]->name = \"abc\"" ];
    (* underscore and aliases *)
    q "names via _ and with" "hash[..1024]->(if (_ && scope > 5) name)"
      [ "hash[42]->name = \"yylval\""; "hash[529]->name = \"yytext\"" ];
    q "alias hides the elements (w for x, see notes)"
      "y := w[..10] => if (y < 0 || y > 100) y" [ "y = -9"; "y = 120" ];
    q "underscore shows the elements" "w[..10].if (_ < 0 || _ > 100) _"
      [ "w[3] = -9"; "w[8] = 120" ];
    (* dfs over the chain of hash[0] *)
    q "list expansion" "hash[0]-->next->scope"
      [ "hash[0]->scope = 4"; "hash[0]->next->scope = 3";
        "hash[0]->next->next->scope = 2";
        "hash[0]->next->next->next->scope = 1" ];
    (* dev:order — paper prints 9,3,5,4,12 *)
    q "tree keys preorder [dev:order]" "root-->(left,right)->key"
      [ "root->key = 9"; "root->left->key = 3"; "root->left->left->key = 4";
        "root->left->right->key = 5"; "root->right->key = 12" ];
    (* dev:typo — comparisons flipped to match the paper's printed path *)
    q "path to the node holding 5 [dev:typo]"
      "root-->(if (key > 5) left else if (key < 5) right)->key"
      [ "root->key = 9"; "root->left->key = 3"; "root->left->right->key = 5" ];
    (* the sortedness check with compression *)
    q "sortedness violation with -->[[8]]"
      "hash[..1024]-->next->if (next) scope <? next->scope"
      [ "hash[287]-->next[[8]]->scope = 5" ];
    (* select *)
    q "select on products" "((1..9)*(1..9))[[52,74]]"
      [ "6*8 = 48"; "9*3 = 27" ];
    q "select on list values [dev:compress]" "head-->next->value[[3,5]]"
      [ "head->next->next->next->value = 33"; "head-->next[[5]]->value = 29" ];
    (* count *)
    q1 "count of tree nodes" "#/(root-->(left,right)->key)"
      "#/(root-->(left,right)->key) = 5";
    (* duplicates via # index aliases *)
    q "duplicate positions via #i #j"
      "L-->next#i->value ==? L-->next#j->value => if (i < j) L-->next[[i,j]]->value"
      [ "L-->next[[4]]->value = 27"; "L-->next[[9]]->value = 27" ];
    (* the introduction's one-liner *)
    q "intro duplicate query" "L-->next->(value ==? next-->next->value)"
      [ "L-->next[[4]]->value = 27" ];
    (* control expressions with braces *)
    q "if with braces substitutes"
      "int i; for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5"
      [ "4+0*5 = 4"; "4+3*5 = 19"; "4+6*5 = 34" ];
    q "if without braces displays the alias"
      "int j1; for (j1 = 0; j1 < 9; j1++) 4 + if (j1%3==0) j1*5"
      [ "4+j1*5 = 4"; "4+j1*5 = 19"; "4+j1*5 = 34" ];
    (* sequence and imply *)
    q "semicolon discards left values" "i := 1..3; i + 4" [ "i+4 = 7" ];
    q "imply with braces" "i := 1..3 => {i} + 4"
      [ "1+4 = 5"; "2+4 = 6"; "3+4 = 7" ];
    (* assignment through generators, silenced *)
    qf "clear scopes silently" "hash[0..1023]->scope = 0 ;" silent_suffix;
    (* @ truncation *)
    q "argv strings" "argv[0..]@0"
      [ "argv[0] = \"duel\""; "argv[1] = \"-q\""; "argv[2] = \"x[1..4]\"";
        "argv[3] = \"0\"" ];
    (* aliases through := chains write through *)
    qf "alias chain clears scopes"
      "xx := hash[..1024] !=? 0 => yy := xx->scope => yy = 0 ; #/(hash[..1024]->(scope ==? 0))"
      [ "#/(hash[..1024]->(scope ==? 0)) = 1024" ];
  ]

(* printf with generator arguments: check captured target stdout too. *)
let printf_case =
  Support.case "printf with generator arguments" (fun () ->
      let k = kit () in
      let lines = exec k "printf(\"%d %d, \", (3,4), 5..7)" in
      Alcotest.(check int) "six calls" 6 (List.length lines);
      Alcotest.(check string) "interleaved output"
        "3 5, 3 6, 3 7, 4 5, 4 6, 4 7, "
        (Duel_target.Inferior.take_output k.inf))

let string_until_case =
  Support.case "s[0..999]@'\\0' walks the string" (fun () ->
      let k = kit () in
      let lines = exec k "s[0..999]@(_=='\\0')" in
      Alcotest.(check int) "hello, world is 12 chars" 12 (List.length lines);
      Alcotest.(check string) "first" "s[0] = 104 'h'" (List.hd lines))

let suite = suite @ [ printf_case; string_until_case ]
