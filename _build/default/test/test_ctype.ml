(* Unit and property tests for the C type model: sizes, signedness,
   promotions, usual arithmetic conversions, normalization, bounds. *)

module Abi = Duel_ctype.Abi
module Ctype = Duel_ctype.Ctype

let case = Support.case
let lp64 = Abi.lp64
let ilp32 = Abi.ilp32

let ikind = Alcotest.testable (fun fmt k -> Format.pp_print_string fmt (Duel_ctype.Cprint.ikind_name k)) ( = )

let sizes_lp64 () =
  let check k n = Alcotest.(check int) (Duel_ctype.Cprint.ikind_name k) n (Ctype.ikind_size lp64 k) in
  check Ctype.Bool 1;
  check Ctype.Char 1;
  check Ctype.SChar 1;
  check Ctype.UChar 1;
  check Ctype.Short 2;
  check Ctype.UShort 2;
  check Ctype.Int 4;
  check Ctype.UInt 4;
  check Ctype.Long 8;
  check Ctype.ULong 8;
  check Ctype.LLong 8;
  check Ctype.ULLong 8

let sizes_ilp32 () =
  Alcotest.(check int) "long" 4 (Ctype.ikind_size ilp32 Ctype.Long);
  Alcotest.(check int) "llong" 8 (Ctype.ikind_size ilp32 Ctype.LLong)

let signedness () =
  Alcotest.(check bool) "char signed in lp64" true (Ctype.ikind_signed lp64 Ctype.Char);
  let unsigned_char = { lp64 with Abi.char_signed = false } in
  Alcotest.(check bool) "char unsigned variant" false
    (Ctype.ikind_signed unsigned_char Ctype.Char);
  Alcotest.(check bool) "uint" false (Ctype.ikind_signed lp64 Ctype.UInt);
  Alcotest.(check bool) "long" true (Ctype.ikind_signed lp64 Ctype.Long)

let promotions () =
  let check what k expected = Alcotest.check ikind what expected (Ctype.promote_ikind lp64 k) in
  check "char -> int" Ctype.Char Ctype.Int;
  check "uchar -> int" Ctype.UChar Ctype.Int;
  check "short -> int" Ctype.Short Ctype.Int;
  check "ushort -> int" Ctype.UShort Ctype.Int;
  check "bool -> int" Ctype.Bool Ctype.Int;
  check "int -> int" Ctype.Int Ctype.Int;
  check "uint stays" Ctype.UInt Ctype.UInt;
  check "long stays" Ctype.Long Ctype.Long

let usual_arith () =
  let ua a b = Ctype.usual_arith_ikind lp64 a b in
  Alcotest.check ikind "int+int" Ctype.Int (ua Ctype.Int Ctype.Int);
  Alcotest.check ikind "int+uint" Ctype.UInt (ua Ctype.Int Ctype.UInt);
  Alcotest.check ikind "uint+int" Ctype.UInt (ua Ctype.UInt Ctype.Int);
  Alcotest.check ikind "int+long" Ctype.Long (ua Ctype.Int Ctype.Long);
  Alcotest.check ikind "uint+long (lp64: long holds uint)" Ctype.Long
    (ua Ctype.UInt Ctype.Long);
  Alcotest.check ikind "ulong+long" Ctype.ULong (ua Ctype.ULong Ctype.Long);
  Alcotest.check ikind "uint+long (ilp32: same size -> ulong)" Ctype.ULong
    (Ctype.usual_arith_ikind ilp32 Ctype.UInt Ctype.Long)

let normalize () =
  let n k v = Ctype.normalize lp64 k v in
  Alcotest.(check int64) "char wrap" 65L (n Ctype.Char 321L);
  Alcotest.(check int64) "char negative" (-1L) (n Ctype.Char 255L);
  Alcotest.(check int64) "uchar" 255L (n Ctype.UChar 255L);
  Alcotest.(check int64) "uchar wrap" 1L (n Ctype.UChar 257L);
  Alcotest.(check int64) "int wrap" Int64.(add (of_int32 Int32.max_int) 0L)
    (n Ctype.Int (Int64.of_string "0x7fffffff"));
  Alcotest.(check int64) "int overflow wraps negative" Int64.(of_int32 Int32.min_int)
    (n Ctype.Int (Int64.add (Int64.of_int32 Int32.max_int) 1L));
  Alcotest.(check int64) "uint keeps 32 bits" 0xffffffffL (n Ctype.UInt (-1L));
  Alcotest.(check int64) "long identity" (-5L) (n Ctype.Long (-5L));
  Alcotest.(check int64) "bool clamps" 1L (n Ctype.Bool 42L);
  Alcotest.(check int64) "bool zero" 0L (n Ctype.Bool 0L)

let bounds () =
  Alcotest.(check int64) "char min" (-128L) (Ctype.ikind_min lp64 Ctype.Char);
  Alcotest.(check int64) "char max" 127L (Ctype.ikind_max lp64 Ctype.Char);
  Alcotest.(check int64) "uchar min" 0L (Ctype.ikind_min lp64 Ctype.UChar);
  Alcotest.(check int64) "uchar max" 255L (Ctype.ikind_max lp64 Ctype.UChar);
  Alcotest.(check int64) "int max" 2147483647L (Ctype.ikind_max lp64 Ctype.Int);
  Alcotest.(check int64) "uint max" 4294967295L (Ctype.ikind_max lp64 Ctype.UInt);
  Alcotest.(check int64) "ullong max is all ones" (-1L)
    (Ctype.ikind_max lp64 Ctype.ULLong)

let equality () =
  let s1 = Ctype.new_comp Ctype.CStruct "a" in
  let s2 = Ctype.new_comp Ctype.CStruct "a" in
  Alcotest.(check bool) "distinct comps differ" false
    (Ctype.equal (Ctype.Comp s1) (Ctype.Comp s2));
  Alcotest.(check bool) "same comp equal" true
    (Ctype.equal (Ctype.Comp s1) (Ctype.Comp s1));
  Alcotest.(check bool) "ptr structural" true
    (Ctype.equal (Ctype.ptr Ctype.int) (Ctype.ptr Ctype.int));
  Alcotest.(check bool) "array length matters" false
    (Ctype.equal (Ctype.array Ctype.int 3) (Ctype.array Ctype.int 4));
  Alcotest.(check bool) "func types" true
    (Ctype.equal
       (Ctype.func Ctype.int [ Ctype.char ])
       (Ctype.func Ctype.int [ Ctype.char ]))

let decay () =
  (match Ctype.decay (Ctype.array Ctype.int 5) with
  | Ctype.Ptr (Ctype.Integer Ctype.Int) -> ()
  | _ -> Alcotest.fail "array should decay to int*");
  (match Ctype.decay (Ctype.func Ctype.int []) with
  | Ctype.Ptr (Ctype.Func _) -> ()
  | _ -> Alcotest.fail "function should decay to pointer");
  match Ctype.decay Ctype.double with
  | Ctype.Floating Ctype.Double -> ()
  | _ -> Alcotest.fail "scalar decay is identity"

let predicates () =
  Alcotest.(check bool) "enum is integer" true
    (Ctype.is_integer (Ctype.Enum (Ctype.new_enum "e" [])));
  Alcotest.(check bool) "ptr is scalar" true (Ctype.is_scalar (Ctype.ptr Ctype.char));
  Alcotest.(check bool) "double is arith" true (Ctype.is_arith Ctype.double);
  Alcotest.(check bool) "void incomplete" false (Ctype.is_complete Ctype.Void);
  Alcotest.(check bool) "incomplete struct" false
    (Ctype.is_complete (Ctype.Comp (Ctype.new_comp Ctype.CStruct "inc")));
  Alcotest.(check bool) "unsized array incomplete" false
    (Ctype.is_complete (Ctype.Array (Ctype.int, None)))

let define_twice () =
  let c = Ctype.new_comp Ctype.CStruct "once" in
  Ctype.define_fields c [ Ctype.field "a" Ctype.int ];
  Alcotest.check_raises "second define rejected"
    (Invalid_argument "Ctype.define_fields: once already complete")
    (fun () -> Ctype.define_fields c [ Ctype.field "b" Ctype.int ])

(* Properties: normalize is idempotent and lands in [min,max] for signed
   kinds; unsigned normalize zero-extends within the mask. *)
let prop_normalize_idempotent =
  let kinds =
    [ Ctype.Bool; Ctype.Char; Ctype.SChar; Ctype.UChar; Ctype.Short;
      Ctype.UShort; Ctype.Int; Ctype.UInt; Ctype.Long; Ctype.ULong;
      Ctype.LLong; Ctype.ULLong ]
  in
  QCheck2.Test.make ~name:"normalize idempotent and in range" ~count:500
    QCheck2.Gen.(pair (oneofl kinds) int64)
    (fun (k, v) ->
      let n1 = Ctype.normalize lp64 k v in
      let n2 = Ctype.normalize lp64 k n1 in
      let in_range =
        if Ctype.ikind_signed lp64 k then
          Int64.compare (Ctype.ikind_min lp64 k) n1 <= 0
          && Int64.compare n1 (Ctype.ikind_max lp64 k) <= 0
        else if Ctype.ikind_size lp64 k >= 8 then true
        else
          Int64.compare 0L n1 <= 0
          && Int64.compare n1 (Ctype.ikind_max lp64 k) <= 0
      in
      Int64.equal n1 n2 && in_range)

let prop_usual_arith_commutative_rank =
  let kinds = [ Ctype.Int; Ctype.UInt; Ctype.Long; Ctype.ULong; Ctype.LLong; Ctype.ULLong ] in
  QCheck2.Test.make ~name:"usual arithmetic conversion is symmetric" ~count:200
    QCheck2.Gen.(pair (oneofl kinds) (oneofl kinds))
    (fun (a, b) ->
      Ctype.usual_arith_ikind lp64 a b = Ctype.usual_arith_ikind lp64 b a)

let suite =
  [
    case "scalar sizes (lp64)" sizes_lp64;
    case "scalar sizes (ilp32)" sizes_ilp32;
    case "signedness" signedness;
    case "integer promotions" promotions;
    case "usual arithmetic conversions" usual_arith;
    case "normalize wraps as two's complement" normalize;
    case "kind bounds" bounds;
    case "type equality" equality;
    case "decay" decay;
    case "predicates" predicates;
    case "composite defined once" define_twice;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    QCheck_alcotest.to_alcotest prop_usual_arith_commutative_rank;
  ]
