(* The mini-C execution substrate: parsing, semantics, interaction with
   the inferior and with DUEL. *)

module Interp = Duel_minic.Interp
module Mparse = Duel_minic.Mparse
module Mast = Duel_minic.Mast
module Inferior = Duel_target.Inferior
module Session = Duel_core.Session

let case = Support.case

let load src =
  let inf = Inferior.create () in
  Duel_target.Stdfuncs.register_all inf;
  (inf, Interp.load inf src)

let run src func args =
  let _, t = load src in
  Interp.call_int t func args

let check_run what src func args expected =
  case what (fun () -> Alcotest.(check int64) what expected (run src func args))

let arith =
  check_run "arithmetic and locals"
    "int f(int a, int b) { int c; c = a * b + 2; return c - 1; }" "f" [ 6; 7 ]
    43L

let conditionals =
  check_run "if/else chains"
    {|int sign(int x) {
        if (x > 0) return 1;
        else if (x < 0) return -1;
        else return 0;
      }|}
    "sign" [ -5 ] (-1L)

let while_loop =
  check_run "while with break/continue"
    {|int f(int n) {
        int i; int total;
        i = 0; total = 0;
        while (1) {
          i = i + 1;
          if (i > n) break;
          if (i % 2 == 0) continue;
          total = total + i;
        }
        return total;
      }|}
    "f" [ 10 ] 25L

let for_loop =
  check_run "for loop" "int f(int n) { int i; int s; s = 0; for (i = 1; i <= n; i++) s += i; return s; }"
    "f" [ 100 ] 5050L

let do_while =
  check_run "do/while runs at least once"
    "int f(int n) { int c; c = 0; do { c = c + 1; } while (c < n); return c; }"
    "f" [ 0 ] 1L

let recursion =
  check_run "recursion through the target-function registry"
    "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }"
    "fib" [ 12 ] 144L

let mutual_recursion =
  check_run "mutual recursion"
    {|int is_odd(int n);
      int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
      int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
      int f(int n) { return is_even(n); }|}
    "f" [ 10 ] 1L

let globals_and_init =
  check_run "globals with initializers"
    {|int base = 40;
      int bump(int d) { base = base + d; return base; }|}
    "bump" [ 2 ] 42L

let structs_and_heap =
  check_run "structs, malloc, pointer chains"
    {|struct cell { int value; struct cell *next; };
      struct cell *first;
      int push(int v) {
        struct cell *q;
        q = (struct cell *)malloc(sizeof(struct cell));
        q->value = v;
        q->next = first;
        first = q;
        return v;
      }
      int sum() {
        struct cell *p; int t;
        t = 0;
        for (p = first; p != 0; p = p->next) t = t + p->value;
        return t;
      }
      int main() {
        int i;
        for (i = 1; i <= 5; i++) push(i * i);
        return sum();
      }|}
    "main" [] 55L

let arrays_locals =
  check_run "local arrays"
    {|int f(int n) {
        int a[10]; int i; int s;
        for (i = 0; i < 10; i++) a[i] = i * n;
        s = 0;
        for (i = 0; i < 10; i++) s = s + a[i];
        return s;
      }|}
    "f" [ 3 ] 135L

let init_declarator =
  check_run "declarations with initializers"
    "int f(int n) { int a = 2 * n; int b = a + 1; return a * b; }" "f" [ 3 ] 42L

let bitfield_struct =
  check_run "bit-field structs"
    {|struct flags { unsigned lo : 3; unsigned hi : 5; };
      struct flags g;
      int f(int v) { g.lo = v; g.hi = v * 2; return g.lo + g.hi; }|}
    "f" [ 5 ] 15L

let printf_from_minic =
  case "printf from mini-C goes to the capture buffer" (fun () ->
      let inf, t = load {|int f(int n) { printf("n=%d!", n); return 0; }|} in
      ignore (Interp.call_int t "f" [ 7 ]);
      Alcotest.(check string) "captured" "n=7!" (Inferior.take_output inf))

let duel_calls_minic =
  case "DUEL expressions call mini-C functions" (fun () ->
      let inf, _t =
        load "int triple(int n) { return 3 * n; }"
      in
      let s = Session.create (Duel_target.Backend.direct inf) in
      Alcotest.(check (list string)) "call cross product"
        [ "triple(1)+1 = 4"; "triple(2)+1 = 7" ]
        (Session.exec s "triple(1..2) + 1"))

let duel_sees_program_state =
  case "DUEL inspects program heap state" (fun () ->
      let inf, t =
        load
          {|struct cell { int value; struct cell *next; };
            struct cell *first;
            int push(int v) {
              struct cell *q;
              q = (struct cell *)malloc(sizeof(struct cell));
              q->value = v; q->next = first; first = q;
              return v;
            }
            int build() { push(10); push(20); push(30); return 0; }|}
      in
      ignore (Interp.call_int t "build" []);
      let s = Session.create (Duel_target.Backend.direct inf) in
      Alcotest.(check (list string)) "walk the built list"
        [ "first->value = 30"; "first->next->value = 20";
          "first->next->next->value = 10" ]
        (Session.exec s "first-->next->value"))

let step_limit =
  case "step limit stops runaway loops" (fun () ->
      let _, t = load "int spin() { while (1) ; return 0; }" in
      Interp.set_step_limit t 1000;
      Alcotest.(check bool) "runtime error raised" true
        (match Interp.call_int t "spin" [] with
        | _ -> false
        | exception Interp.Runtime_error _ -> true))

let wrong_arity =
  case "arity mismatch reported" (fun () ->
      let _, t = load "int f(int a) { return a; }" in
      Alcotest.(check bool) "runtime error" true
        (match Interp.call_int t "f" [ 1; 2 ] with
        | _ -> false
        | exception Interp.Runtime_error _ -> true))

let parse_errors =
  case "syntax errors carry line numbers" (fun () ->
      let src = "int f() {\n  int x;\n  x = ;\n  return x;\n}" in
      match Mparse.parse ~abi:Duel_ctype.Abi.lp64 src with
      | _ -> Alcotest.fail "should not parse"
      | exception Mparse.Error (_, line) ->
          Alcotest.(check int) "line 3" 3 line)

let hook_events =
  case "hooks observe enter/stmt/leave" (fun () ->
      let _, t = load "int f(int n) { int a; a = n; return a + 1; }" in
      let enters = ref 0 and stmts = ref 0 and leaves = ref 0 in
      Interp.set_hook t
        (Some
           (function
           | Interp.Enter _ -> incr enters
           | Interp.Stmt _ -> incr stmts
           | Interp.Leave _ -> incr leaves));
      ignore (Interp.call_int t "f" [ 1 ]);
      Alcotest.(check int) "one enter" 1 !enters;
      Alcotest.(check int) "one leave" 1 !leaves;
      Alcotest.(check bool) "several statements" true (!stmts >= 3))

let return_conversion =
  check_run "return value converts to the declared type"
    "char f() { return 321; }" "f" [] 65L

let void_function =
  check_run "void functions return zero through the registry"
    {|int g;
      void set(int v) { g = v; }
      int f(int v) { set(v); return g; }|}
    "f" [ 9 ] 9L

let suite =
  [
    arith;
    conditionals;
    while_loop;
    for_loop;
    do_while;
    recursion;
    mutual_recursion;
    globals_and_init;
    structs_and_heap;
    arrays_locals;
    init_declarator;
    bitfield_struct;
    printf_from_minic;
    duel_calls_minic;
    duel_sees_program_state;
    step_limit;
    wrong_arity;
    parse_errors;
    hook_events;
    return_conversion;
    void_function;
  ]
