(* The DUEL parser: precedence, grammar shapes, declarations, and the
   print->reparse fixpoint property. *)

module Ast = Duel_core.Ast
module Parser = Duel_core.Parser
module Pretty = Duel_core.Pretty

let case = Support.case
let abi = Duel_ctype.Abi.lp64
let parse ?(is_typename = fun n -> n = "sym_t") src = Parser.parse ~is_typename ~abi src

(* Compare by canonical pretty-printed form: easier to read in failures
   than AST dumps, and precise because Pretty is deterministic. *)
let shape what src expected =
  Alcotest.(check string) what expected (Pretty.to_string (parse src))

let arithmetic_precedence () =
  shape "mul binds tighter" "1+2*3" "1+2*3";
  shape "parens preserved via grouping" "(1+2)*3" "(1+2)*3";
  shape "relational vs shift" "1<<2<3" "1<<2<3";
  shape "unary minus" "-x*3" "-x*3";
  shape "assoc left" "1-2-3" "1-2-3";
  (* right operand needing parens keeps them on reprint *)
  let ast = parse "1-(2-3)" in
  Alcotest.(check string) "groups kept" "1-(2-3)" (Pretty.to_string ast)

let duel_precedence () =
  shape "range below additive" "0..n-1" "0..n-1";
  shape "alternation below range" "1..4,8,12..50" "1..4,8,12..50";
  shape "filter above range" "(1..9) >? 5" "(1..9) >? 5";
  shape "imply right assoc" "a => b => c" "a => b => c";
  shape "alias in imply chain" "x := a => y := b => y = 0"
    "x := a => y := b => y = 0";
  shape "sequence lowest" "int i; i = 0; i + 1" "int i; i = 0; i+1";
  shape "trailing semicolon" "a = 0 ;" "a = 0 ;";
  shape "prefix upto" "..1024" "..1024";
  shape "postfix toinf" "0.." "0..";
  shape "reduction" "#/(a-->b)" "#/(a-->b)"

let postfix_chains () =
  shape "index then arrow" "hash[0]->scope" "hash[0]->scope";
  shape "dfs then arrow" "hash[0]-->next->scope" "hash[0]-->next->scope";
  shape "index alias inside chain" "L-->next#i->value" "L-->next#i->value";
  shape "select" "head-->next->value[[3,5]]" "head-->next->value[[3,5]]";
  shape "until" "argv[0..]@0" "argv[0..]@0";
  shape "until with paren" "s[0..9]@(_=='a')" "s[0..9]@(_=='a')";
  shape "with group" "hash[1,9]->(scope,name)" "hash[1,9]->(scope,name)";
  shape "postincrement" "i++" "i++";
  shape "call then index" "f(1)[2]" "f(1)[2]"

let control () =
  shape "if expression" "if (a) b" "if (a) b";
  shape "if else" "if (a) b else c" "if (a) b else c";
  shape "if as operand" "4 + if (i%3 == 0) i*5" "4+if (i%3==0) i*5";
  shape "for" "for (i = 0; i < 9; i++) x" "for (i = 0; i<9; i++) x";
  shape "for empty slots" "for (;;) x" "for (; ; ) x";
  shape "while" "while (a) b" "while (a) b";
  shape "greedy if after arrow" "h[..4]-->next->if (next) scope <? next->scope"
    "h[..4]-->next->if (next) scope <? next->scope"

let casts_and_sizeof () =
  shape "cast" "(double)3/2" "(double)3/2";
  shape "cast binds as unary" "(int)x + 1" "(int)x+1";
  shape "pointer cast" "(struct symbol *)p" "(struct symbol *)p";
  shape "typedef cast" "(sym_t *)p" "(sym_t *)p";
  shape "paren expr is not a cast" "(x)+1" "(x)+1";
  shape "sizeof type" "sizeof(int)" "sizeof(int)";
  shape "sizeof array type" "sizeof(int[4])" "sizeof(int [4])";
  shape "sizeof expr" "sizeof x" "sizeof x"

let declarations () =
  (match parse "int i, *p, a[5]" with
  | Ast.Decl (Ast.Tname [ "int" ], ds) ->
      Alcotest.(check int) "three declarators" 3 (List.length ds);
      (match ds with
      | [ ("i", Ast.Tname [ "int" ]); ("p", Ast.Tptr _); ("a", Ast.Tarr _) ] -> ()
      | _ -> Alcotest.fail "bad declarator shapes")
  | _ -> Alcotest.fail "expected declaration");
  (match parse "struct symbol *sp; sp" with
  | Ast.Seq (Ast.Decl (Ast.Tstruct_ref "symbol", [ ("sp", Ast.Tptr _) ]), Ast.Name "sp")
    -> ()
  | _ -> Alcotest.fail "struct declaration then use");
  match parse "int (*pa)[3]" with
  | Ast.Decl (_, [ ("pa", Ast.Tptr (Ast.Tarr _)) ]) -> ()
  | _ -> Alcotest.fail "pointer-to-array declarator"

let call_arguments () =
  match parse "printf(\"%d\", (3,4), 5..7)" with
  | Ast.Call (Ast.Name "printf", [ Ast.Str_lit "%d"; Ast.Group (Ast.Alt _); Ast.To _ ])
    -> ()
  | _ -> Alcotest.fail "argument shapes"

let ternary () =
  shape "ternary" "a ? b : c" "a ? b : c";
  shape "nested ternary right" "a ? b : c ? d : e" "a ? b : c ? d : e"

let errors () =
  let check_err what src =
    Alcotest.(check bool) what true
      (match parse src with
      | _ -> false
      | exception Parser.Error _ -> true)
  in
  check_err "empty parens" "()";
  check_err "trailing operator" "1 +";
  check_err "unbalanced bracket" "x[1";
  check_err "bad alias lhs" "x[0] := 2";
  check_err "chained range" "1..2..3";
  check_err "missing member" "x->";
  check_err "lone else" "else 1";
  check_err "bad declarator" "int 5"

(* Property: pretty-printing a parsed expression and reparsing it yields
   the same canonical form (a print/parse fixpoint).  The generator builds
   random well-formed DUEL expressions. *)
let gen_expr : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let atom =
    oneofl [ "1"; "42"; "x"; "y"; "_"; "0x10"; "'c'"; "2.5"; "n" ]
  in
  let rec expr n =
    if n <= 0 then atom
    else
      frequency
        [
          (3, atom);
          (2, map2 (fun a b -> a ^ "+" ^ b) (expr (n - 1)) (expr (n - 1)));
          (2, map2 (fun a b -> a ^ "*" ^ b) (expr (n - 1)) (expr (n - 1)));
          (2, map2 (fun a b -> "(" ^ a ^ ")[" ^ b ^ "]") (expr (n - 1)) (expr (n - 1)));
          (2, map2 (fun a b -> a ^ ".." ^ b) atom atom);
          (2, map2 (fun a b -> "(" ^ a ^ "," ^ b ^ ")") (expr (n - 1)) (expr (n - 1)));
          (1, map2 (fun a b -> a ^ " >? " ^ b) (expr (n - 1)) atom);
          (1, map2 (fun a b -> a ^ " => " ^ b) (expr (n - 1)) (expr (n - 1)));
          (1, map (fun a -> "#/(" ^ a ^ ")") (expr (n - 1)));
          (1, map (fun a -> "-" ^ a) (expr (n - 1)));
          (1, map2 (fun a b -> a ^ "-->" ^ b) atom atom);
          (1, map2 (fun c t -> "if (" ^ c ^ ") " ^ t) (expr (n - 1)) (expr (n - 1)));
        ]
  in
  expr 4

let prop_print_parse_fixpoint =
  QCheck2.Test.make ~name:"pretty/parse fixpoint" ~count:500 gen_expr
    (fun src ->
      match parse src with
      | exception _ -> QCheck2.assume_fail ()
      | ast ->
          let printed = Pretty.to_string ast in
          let reparsed = parse printed in
          Ast.equal_expr ast reparsed
          && String.equal printed (Pretty.to_string reparsed))

let suite =
  [
    case "C precedence" arithmetic_precedence;
    case "DUEL operator precedence" duel_precedence;
    case "postfix chains" postfix_chains;
    case "control expressions" control;
    case "casts and sizeof" casts_and_sizeof;
    case "declarations" declarations;
    case "call arguments" call_arguments;
    case "ternary" ternary;
    case "syntax errors" errors;
    QCheck_alcotest.to_alcotest prop_print_parse_fixpoint;
  ]
