(* Memory, codecs, allocator. *)

module Abi = Duel_ctype.Abi
module Memory = Duel_mem.Memory
module Codec = Duel_mem.Codec
module Alloc = Duel_mem.Alloc

let case = Support.case
let lp64 = Abi.lp64
let be = Abi.big_endian Abi.lp64

let roundtrip_bytes () =
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000 ~size:64;
  let data = Bytes.of_string "hello world" in
  Memory.write mem ~addr:0x1000 data;
  Alcotest.(check string) "roundtrip" "hello world"
    (Bytes.to_string (Memory.read mem ~addr:0x1000 ~len:11))

let zero_filled () =
  let mem = Memory.create () in
  Memory.map mem ~addr:0x2000 ~size:16;
  Alcotest.(check int) "fresh pages are zero" 0 (Memory.read_u8 mem 0x2007)

let fault_unmapped () =
  let mem = Memory.create () in
  Alcotest.check_raises "read faults" (Memory.Fault 0x5000) (fun () ->
      ignore (Memory.read mem ~addr:0x5000 ~len:1));
  Memory.map mem ~addr:0x5000 ~size:8;
  ignore (Memory.read mem ~addr:0x5000 ~len:8);
  Memory.unmap mem ~addr:0x5000 ~size:8;
  Alcotest.check_raises "read faults after unmap" (Memory.Fault 0x5000)
    (fun () -> ignore (Memory.read mem ~addr:0x5000 ~len:1))

let negative_fault () =
  let mem = Memory.create () in
  Alcotest.check_raises "negative address faults" (Memory.Fault (-4))
    (fun () -> ignore (Memory.read_u8 mem (-4)))

let cross_page () =
  let mem = Memory.create () in
  let addr = (2 * Memory.page_size) - 3 in
  Memory.map mem ~addr ~size:8;
  Memory.write mem ~addr (Bytes.of_string "abcdefgh");
  Alcotest.(check string) "crosses the page boundary" "abcdefgh"
    (Bytes.to_string (Memory.read mem ~addr ~len:8));
  (* a fault in the middle reports the exact unmapped byte *)
  let mem2 = Memory.create () in
  Memory.map mem2 ~addr:(Memory.page_size - 4) ~size:4;
  Alcotest.check_raises "faults at the page edge" (Memory.Fault Memory.page_size)
    (fun () -> ignore (Memory.read mem2 ~addr:(Memory.page_size - 4) ~len:8))

let is_mapped () =
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000 ~size:1;
  Alcotest.(check bool) "mapped page" true (Memory.is_mapped mem ~addr:0x1000 ~size:1);
  Alcotest.(check bool) "empty range" true (Memory.is_mapped mem ~addr:0x9000 ~size:0);
  Alcotest.(check bool) "unmapped" false (Memory.is_mapped mem ~addr:0x90000 ~size:1)

let int_codec () =
  let mem = Memory.create () in
  Memory.map mem ~addr:0 ~size:64;
  Codec.write_int lp64 mem ~addr:0 ~size:4 0x12345678L;
  Alcotest.(check int) "little-endian low byte first" 0x78 (Memory.read_u8 mem 0);
  Alcotest.(check int64) "read back" 0x12345678L
    (Codec.read_int lp64 mem ~addr:0 ~size:4 ~signed:false);
  Codec.write_int be mem ~addr:8 ~size:4 0x12345678L;
  Alcotest.(check int) "big-endian high byte first" 0x12 (Memory.read_u8 mem 8);
  Alcotest.(check int64) "big-endian read back" 0x12345678L
    (Codec.read_int be mem ~addr:8 ~size:4 ~signed:false);
  Codec.write_int lp64 mem ~addr:16 ~size:2 0xffffL;
  Alcotest.(check int64) "signed sign-extends" (-1L)
    (Codec.read_int lp64 mem ~addr:16 ~size:2 ~signed:true);
  Alcotest.(check int64) "unsigned zero-extends" 0xffffL
    (Codec.read_int lp64 mem ~addr:16 ~size:2 ~signed:false)

let float_codec () =
  let mem = Memory.create () in
  Memory.map mem ~addr:0 ~size:64;
  Codec.write_float lp64 mem ~addr:0 ~size:8 3.14159;
  Alcotest.(check (float 0.0)) "double roundtrip" 3.14159
    (Codec.read_float lp64 mem ~addr:0 ~size:8);
  Codec.write_float lp64 mem ~addr:8 ~size:4 1.5;
  Alcotest.(check (float 0.0)) "float roundtrip (exact half)" 1.5
    (Codec.read_float lp64 mem ~addr:8 ~size:4);
  Codec.write_float lp64 mem ~addr:16 ~size:16 2.75;
  Alcotest.(check (float 0.0)) "long double stored as double" 2.75
    (Codec.read_float lp64 mem ~addr:16 ~size:16)

let bitfield_codec () =
  let mem = Memory.create () in
  Memory.map mem ~addr:0 ~size:16;
  Codec.write_bitfield lp64 mem ~addr:0 ~unit_size:4 ~bit_off:3 ~width:7 77L;
  Codec.write_bitfield lp64 mem ~addr:0 ~unit_size:4 ~bit_off:0 ~width:3 5L;
  Alcotest.(check int64) "mid" 77L
    (Codec.read_bitfield lp64 mem ~addr:0 ~unit_size:4 ~bit_off:3 ~width:7 ~signed:false);
  Alcotest.(check int64) "lo" 5L
    (Codec.read_bitfield lp64 mem ~addr:0 ~unit_size:4 ~bit_off:0 ~width:3 ~signed:false);
  Codec.write_bitfield lp64 mem ~addr:8 ~unit_size:4 ~bit_off:4 ~width:4 0xfL;
  Alcotest.(check int64) "signed bit-field sign-extends" (-1L)
    (Codec.read_bitfield lp64 mem ~addr:8 ~unit_size:4 ~bit_off:4 ~width:4 ~signed:true)

let cstring_codec () =
  let mem = Memory.create () in
  Memory.map mem ~addr:0 ~size:64;
  Codec.write_cstring mem ~addr:0 "duel";
  Alcotest.(check string) "roundtrip" "duel" (Codec.read_cstring mem ~addr:0 ~max_len:100);
  Alcotest.(check string) "max_len truncates" "du" (Codec.read_cstring mem ~addr:0 ~max_len:2);
  (* stops at unmapped memory rather than faulting *)
  let mem2 = Memory.create () in
  Memory.map mem2 ~addr:(Memory.page_size - 2) ~size:2;
  Memory.write_u8 mem2 (Memory.page_size - 2) (Char.code 'a');
  Memory.write_u8 mem2 (Memory.page_size - 1) (Char.code 'b');
  Alcotest.(check string) "unterminated stops at fault" "ab"
    (Codec.read_cstring mem2 ~addr:(Memory.page_size - 2) ~max_len:100)

let alloc_basic () =
  let mem = Memory.create () in
  let heap = Alloc.create mem ~base:0x1000 ~size:0x10000 in
  let a = Alloc.malloc heap 10 in
  let b = Alloc.malloc heap 20 in
  Alcotest.(check bool) "16-aligned" true (a mod 16 = 0 && b mod 16 = 0);
  Alcotest.(check bool) "disjoint" true (b >= a + 16 || a >= b + 32);
  Alcotest.(check int) "zeroed" 0 (Memory.read_u8 mem a);
  Alcotest.(check (option int)) "block size recorded" (Some 16) (Alloc.block_size heap a);
  Alloc.free heap a;
  Alcotest.(check (option int)) "freed" None (Alloc.block_size heap a);
  Alcotest.(check int) "live count" 1 (Alloc.live_blocks heap)

let alloc_reuse_coalesce () =
  let mem = Memory.create () in
  let heap = Alloc.create mem ~base:0x1000 ~size:64 in
  let a = Alloc.malloc heap 16 in
  let b = Alloc.malloc heap 16 in
  let c = Alloc.malloc heap 16 in
  let d = Alloc.malloc heap 16 in
  Alcotest.check_raises "exhausted" Out_of_memory (fun () ->
      ignore (Alloc.malloc heap 1));
  Alloc.free heap b;
  Alloc.free heap c;
  (* b and c coalesce into 32 bytes *)
  let e = Alloc.malloc heap 32 in
  Alcotest.(check int) "coalesced block reused" b e;
  Alloc.free heap a;
  Alloc.free heap d;
  Alloc.free heap e;
  Alcotest.(check int) "all free" 0 (Alloc.live_blocks heap);
  Alcotest.(check int) "whole region again" 64
    (let f = Alloc.malloc heap 64 in
     Option.get (Alloc.block_size heap f))

let alloc_double_free () =
  let mem = Memory.create () in
  let heap = Alloc.create mem ~base:0x1000 ~size:256 in
  let a = Alloc.malloc heap 8 in
  Alloc.free heap a;
  Alcotest.(check bool) "double free rejected" true
    (match Alloc.free heap a with
    | () -> false
    | exception Invalid_argument _ -> true)

let prop_mem_roundtrip =
  QCheck2.Test.make ~name:"memory write/read roundtrip" ~count:200
    QCheck2.Gen.(pair (int_range 0 100000) (string_size (int_range 1 300)))
    (fun (addr, s) ->
      let mem = Memory.create () in
      Memory.map mem ~addr ~size:(String.length s);
      Memory.write mem ~addr (Bytes.of_string s);
      Bytes.to_string (Memory.read mem ~addr ~len:(String.length s)) = s)

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"int codec roundtrip both endians" ~count:300
    QCheck2.Gen.(triple (oneofl [ 1; 2; 4; 8 ]) int64 bool)
    (fun (size, v, big) ->
      let abi = if big then be else lp64 in
      let mem = Memory.create () in
      Memory.map mem ~addr:0 ~size:8;
      Codec.write_int abi mem ~addr:0 ~size v;
      let mask =
        if size >= 8 then -1L else Int64.sub (Int64.shift_left 1L (size * 8)) 1L
      in
      Int64.equal
        (Codec.read_int abi mem ~addr:0 ~size ~signed:false)
        (Int64.logand v mask))

let prop_alloc_disjoint =
  QCheck2.Test.make ~name:"allocator produces disjoint live blocks" ~count:100
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 1 200))
    (fun sizes ->
      let mem = Memory.create () in
      let heap = Alloc.create mem ~base:0x1000 ~size:0x100000 in
      let blocks =
        List.filter_map
          (fun s ->
            match Alloc.malloc heap s with
            | addr -> Some (addr, Option.get (Alloc.block_size heap addr))
            | exception Out_of_memory -> None)
          sizes
      in
      (* free every other block, then allocate again: still disjoint *)
      List.iteri (fun i (a, _) -> if i mod 2 = 0 then Alloc.free heap a) blocks;
      let more =
        List.filter_map
          (fun s ->
            match Alloc.malloc heap (s * 2) with
            | addr -> Some (addr, Option.get (Alloc.block_size heap addr))
            | exception Out_of_memory -> None)
          sizes
      in
      let live =
        more @ List.filteri (fun i _ -> i mod 2 = 1) blocks
      in
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) live in
      let rec disjoint = function
        | (a, sa) :: ((b, _) :: _ as rest) -> a + sa <= b && disjoint rest
        | _ -> true
      in
      disjoint sorted)

let suite =
  [
    case "byte roundtrip" roundtrip_bytes;
    case "fresh pages zero-filled" zero_filled;
    case "faults on unmapped and after unmap" fault_unmapped;
    case "negative addresses fault" negative_fault;
    case "cross-page access and exact fault address" cross_page;
    case "is_mapped" is_mapped;
    case "integer codec (endianness, sign extension)" int_codec;
    case "float codec (double, float, long double)" float_codec;
    case "bit-field codec" bitfield_codec;
    case "C string codec" cstring_codec;
    case "allocator basics" alloc_basic;
    case "allocator reuse and coalescing" alloc_reuse_coalesce;
    case "double free rejected" alloc_double_free;
    QCheck_alcotest.to_alcotest prop_mem_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_alloc_disjoint;
  ]
