(* The simulated inferior: globals, symbols, frames, builders, libc. *)

module Ctype = Duel_ctype.Ctype
module Dbgi = Duel_dbgi.Dbgi
module Inferior = Duel_target.Inferior
module Build = Duel_target.Build
module Stdfuncs = Duel_target.Stdfuncs
module Memory = Duel_mem.Memory

let case = Support.case

let globals () =
  let inf = Inferior.create () in
  let a = Inferior.define_global inf "a" Ctype.int in
  let b = Inferior.define_global inf "b" (Ctype.array Ctype.double 4) in
  Alcotest.(check bool) "addresses distinct" true (a <> b);
  Alcotest.(check bool) "b 8-aligned" true (b mod 8 = 0);
  (match Inferior.find_variable inf "b" with
  | Some info ->
      Alcotest.(check bool) "type preserved" true
        (Ctype.equal info.Dbgi.v_type (Ctype.array Ctype.double 4))
  | None -> Alcotest.fail "b not found");
  Alcotest.(check bool) "unknown is None" true
    (Inferior.find_variable inf "zz" = None);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Inferior: symbol a already defined") (fun () ->
      ignore (Inferior.define_global inf "a" Ctype.int))

let symbol_at () =
  let inf = Inferior.create () in
  let a = Inferior.define_global inf "arr" (Ctype.array Ctype.int 10) in
  (match Inferior.symbol_at inf (a + 8) with
  | Some ("arr", 8) -> ()
  | other ->
      Alcotest.failf "expected (arr, 8), got %s"
        (match other with
        | Some (n, o) -> Printf.sprintf "(%s,%d)" n o
        | None -> "None"));
  Alcotest.(check bool) "miss" true (Inferior.symbol_at inf 0x999999 = None)

let frames () =
  let inf = Inferior.create () in
  Inferior.push_frame inf "outer" [ ("x", Ctype.int) ];
  Inferior.push_frame inf "inner" [ ("x", Ctype.int); ("y", Ctype.double) ];
  (match Inferior.frames inf with
  | [ f0; f1 ] ->
      Alcotest.(check string) "innermost first" "inner" f0.Dbgi.fr_func;
      Alcotest.(check int) "index 0" 0 f0.Dbgi.fr_index;
      Alcotest.(check int) "index 1" 1 f1.Dbgi.fr_index;
      Alcotest.(check int) "locals" 2 (List.length f0.Dbgi.fr_locals)
  | fs -> Alcotest.failf "expected 2 frames, got %d" (List.length fs));
  Inferior.pop_frame inf;
  (match Inferior.frames inf with
  | [ f ] -> Alcotest.(check string) "outer remains" "outer" f.Dbgi.fr_func
  | _ -> Alcotest.fail "expected 1 frame");
  Inferior.pop_frame inf;
  Alcotest.check_raises "pop empty"
    (Invalid_argument "Inferior.pop_frame: no active frames") (fun () ->
      Inferior.pop_frame inf)

let peek_poke () =
  let inf = Inferior.create () in
  let g = Inferior.define_global inf "g" Ctype.short in
  Build.poke_int inf Ctype.short g (-7L);
  Alcotest.(check int64) "short roundtrip" (-7L) (Build.peek_int inf Ctype.short g);
  Build.set_global_int inf "g" 300L;
  Alcotest.(check int64) "via name" 300L (Build.get_global_int inf "g");
  let d = Inferior.define_global inf "d" Ctype.double in
  Build.poke_float inf Ctype.double d 6.25;
  Alcotest.(check (float 0.0)) "double" 6.25 (Build.peek_float inf Ctype.double d)

let field_access () =
  let inf = Inferior.create () in
  let c = Ctype.new_comp Ctype.CStruct "pair" in
  Ctype.define_fields c [ Ctype.field "a" Ctype.int; Ctype.field "b" Ctype.long ];
  let p = Build.alloc inf (Ctype.Comp c) in
  Build.poke_field inf c p "b" 99L;
  Alcotest.(check int64) "field roundtrip" 99L (Build.peek_field inf c p "b");
  Alcotest.(check int) "field address" (p + 8) (Build.field_addr inf c p "b");
  Alcotest.(check bool) "unknown field" true
    (match Build.field_addr inf c p "zz" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let cstring () =
  let inf = Inferior.create () in
  let a = Build.cstring inf "duel" in
  Alcotest.(check string) "written with NUL" "duel"
    (Duel_mem.Codec.read_cstring (Inferior.mem inf) ~addr:a ~max_len:100)

let printf_formats () =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let i v = Dbgi.Cint (Ctype.int, v) in
  let f v = Dbgi.Cfloat (Ctype.double, v) in
  let s text = Dbgi.Cint (Ctype.ptr Ctype.char, Int64.of_int (Build.cstring inf text)) in
  let check what fmt args expected =
    Alcotest.(check string) what expected (Stdfuncs.format inf fmt args)
  in
  check "plain" "hello" [] "hello";
  check "%d" "%d!" [ i 42L ] "42!";
  check "%d negative" "%d" [ i (-7L) ] "-7";
  check "%u" "%u" [ Dbgi.Cint (Ctype.uint, 4294967295L) ] "4294967295";
  check "%x %X %o" "%x %X %o" [ i 255L; i 255L; i 8L ] "ff FF 10";
  check "%c" "[%c]" [ i 65L ] "[A]";
  check "%s" "<%s>" [ s "abc" ] "<abc>";
  check "%5d width" "%5d" [ i 42L ] "   42";
  check "%-5d| left" "%-5d|" [ i 42L ] "42   |";
  check "%05d zero pad" "%05d" [ i (-42L) ] "-0042";
  check "%.2f" "%.2f" [ f 3.14159 ] "3.14";
  check "%g" "%g" [ f 0.5 ] "0.5";
  check "%.3s precision" "%.3s" [ s "abcdef" ] "abc";
  check "%*d star width" "%*d" [ i 6L; i 42L ] "    42";
  check "%%" "100%%" [] "100%";
  check "%ld length modifier" "%ld" [ i 7L ] "7";
  check "missing args give 0" "%d %d" [ i 1L ] "1 0"

let printf_capture () =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let s text = Dbgi.Cint (Ctype.ptr Ctype.char, Int64.of_int (Build.cstring inf text)) in
  (match Inferior.call inf "printf" [ s "%s-%s"; s "a"; s "b" ] with
  | Dbgi.Cint (_, n) -> Alcotest.(check int64) "returns length" 3L n
  | _ -> Alcotest.fail "printf should return int");
  Alcotest.(check string) "captured" "a-b" (Inferior.take_output inf);
  Alcotest.(check string) "buffer cleared" "" (Inferior.peek_output inf)

let libc_functions () =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let s text = Dbgi.Cint (Ctype.ptr Ctype.char, Int64.of_int (Build.cstring inf text)) in
  let i v = Dbgi.Cint (Ctype.int, v) in
  let int_of = function Dbgi.Cint (_, v) -> v | _ -> Alcotest.fail "int expected" in
  Alcotest.(check int64) "strlen" 5L (int_of (Inferior.call inf "strlen" [ s "abcde" ]));
  Alcotest.(check bool) "strcmp equal" true
    (Int64.equal (int_of (Inferior.call inf "strcmp" [ s "x"; s "x" ])) 0L);
  Alcotest.(check bool) "strcmp less" true
    (Int64.compare (int_of (Inferior.call inf "strcmp" [ s "a"; s "b" ])) 0L < 0);
  Alcotest.(check int64) "abs" 9L (int_of (Inferior.call inf "abs" [ i (-9L) ]));
  Alcotest.(check int64) "atoi" 123L (int_of (Inferior.call inf "atoi" [ s " 123" ]));
  (match Inferior.call inf "strchr" [ s "hello"; i 108L ] with
  | Dbgi.Cint (_, p) ->
      Alcotest.(check string) "strchr finds suffix" "llo"
        (Duel_mem.Codec.read_cstring (Inferior.mem inf) ~addr:(Int64.to_int p)
           ~max_len:10)
  | _ -> Alcotest.fail "strchr returns pointer");
  Alcotest.check_raises "unknown function" (Failure "no target function named nope")
    (fun () -> ignore (Inferior.call inf "nope" []))

let backend_faults () =
  let inf = Inferior.create () in
  let dbg = Duel_target.Backend.direct inf in
  Alcotest.(check bool) "fault surfaces as Target_fault" true
    (match dbg.Dbgi.get_bytes ~addr:0x123456789 ~len:4 with
    | _ -> false
    | exception Dbgi.Target_fault _ -> true);
  let addr = dbg.Dbgi.alloc_space 32 in
  dbg.Dbgi.put_bytes ~addr (Bytes.of_string "ok");
  Alcotest.(check string) "alloc space usable" "ok"
    (Bytes.to_string (dbg.Dbgi.get_bytes ~addr ~len:2));
  Alcotest.(check bool) "readable probe" true (Dbgi.readable dbg ~addr ~len:32);
  Alcotest.(check bool) "unreadable probe" false
    (Dbgi.readable dbg ~addr:0x3fffffff ~len:4)

let suite =
  [
    case "globals and symbol table" globals;
    case "symbol_at" symbol_at;
    case "frame stack" frames;
    case "typed peek/poke" peek_poke;
    case "struct field builders" field_access;
    case "C strings" cstring;
    case "printf format engine" printf_formats;
    case "printf output capture" printf_capture;
    case "libc functions" libc_functions;
    case "direct backend faults and allocation" backend_faults;
  ]
