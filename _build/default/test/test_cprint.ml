(* C declarator printing. *)

module Ctype = Duel_ctype.Ctype
module Cprint = Duel_ctype.Cprint

let case = Support.case

let check what t expected =
  Alcotest.(check string) what expected (Cprint.to_string t)

let check_decl what t name expected =
  Alcotest.(check string) what expected (Cprint.declaration t name)

let scalars () =
  check "int" Ctype.int "int";
  check "unsigned char" Ctype.uchar "unsigned char";
  check "long double" Ctype.ldouble "long double";
  check "bool" Ctype.bool "_Bool";
  check "void" Ctype.Void "void"

let pointers () =
  check "int*" (Ctype.ptr Ctype.int) "int *";
  check "char**" (Ctype.ptr (Ctype.ptr Ctype.char)) "char **";
  check_decl "named" (Ctype.ptr Ctype.char) "s" "char *s"

let arrays () =
  check_decl "int x[10]" (Ctype.array Ctype.int 10) "x" "int x[10]";
  check_decl "int x[2][3]" (Ctype.Array (Ctype.array Ctype.int 3, Some 2)) "x"
    "int x[2][3]";
  check_decl "array of pointers" (Ctype.array (Ctype.ptr Ctype.char) 5) "a"
    "char *a[5]";
  check_decl "pointer to array" (Ctype.ptr (Ctype.array Ctype.int 3)) "p"
    "int (*p)[3]";
  check "unknown length" (Ctype.Array (Ctype.int, None)) "int []"

let functions () =
  check_decl "simple" (Ctype.func Ctype.int [ Ctype.char ]) "f" "int f(char)";
  check_decl "no params" (Ctype.func Ctype.Void []) "f" "void f(void)";
  check_decl "variadic"
    (Ctype.func ~variadic:true Ctype.int [ Ctype.ptr Ctype.char ])
    "printf" "int printf(char *, ...)";
  check_decl "function pointer"
    (Ctype.ptr (Ctype.func Ctype.int [ Ctype.int ]))
    "fp" "int (*fp)(int)"

let tagged () =
  let c = Ctype.new_comp Ctype.CStruct "symbol" in
  check "struct" (Ctype.Comp c) "struct symbol";
  check "struct ptr array"
    (Ctype.array (Ctype.ptr (Ctype.Comp c)) 1024)
    "struct symbol *[1024]";
  let u = Ctype.new_comp Ctype.CUnion "u" in
  check "union" (Ctype.Comp u) "union u";
  let e = Ctype.new_enum "color" [] in
  check "enum" (Ctype.Enum e) "enum color";
  let anon = Ctype.new_comp Ctype.CStruct "" in
  check "anonymous" (Ctype.Comp anon) "struct <anon>"

let suite =
  [
    case "scalars" scalars;
    case "pointers" pointers;
    case "arrays" arrays;
    case "functions" functions;
    case "tagged types" tagged;
  ]
