## a mini-C demo program for oduel --program
## (## is the comment syntax of the shared lexer)

struct cell { int value; struct cell *next; };
struct cell *first;
int nalloc;

int push(int v) {
  struct cell *q;
  q = (struct cell *)malloc(sizeof(struct cell));
  q->value = v;
  q->next = first;
  first = q;
  nalloc = nalloc + 1;
  return v;
}

int build(int n) {
  int i;
  for (i = 0; i < n; i++)
    push(i * i % 7);
  return nalloc;
}

int sum() {
  struct cell *p;
  int total;
  total = 0;
  for (p = first; p != 0; p = p->next)
    total = total + p->value;
  return total;
}

int clobber(int k) {
  struct cell *p;
  int i;
  p = first;
  for (i = 0; i < k; i++)
    p = p->next;
  p->value = -1;
  return k;
}

int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
