(* The paper's symbol-table debugging session, end to end.

   The debuggee is a compiler whose symbol table is
       struct symbol { char *name; int scope; struct symbol *next; } *hash[1024];
   with chains sorted by decreasing scope.  The session walks through the
   paper's queries: searching buckets, filtering by scope, traversing
   chains with -->, verifying the sortedness invariant (and finding the
   planted violation 8 links down bucket 287), and finally clearing the
   head scopes by assignment through a generator lvalue.

   Run with: dune exec examples/symtab_debug.exe *)

module Session = Duel_core.Session
module Scenarios = Duel_scenarios.Scenarios

let () =
  let inf = Scenarios.all () in
  let session = Session.create (Duel_target.Backend.direct inf) in
  let say text = Printf.printf "# %s\n" text in
  let duel q =
    Printf.printf "duel> %s\n%s\n\n" q (Session.exec_string session q)
  in

  say "Which buckets hold symbols with scope deeper than 5?";
  duel "(hash[..1024] !=? 0)->scope >? 5";

  say "Several fields at once, via alternation inside the -> scope:";
  duel "hash[1,9]->(scope,name)";

  say "Walk one chain with the expansion operator:";
  duel "hash[0]-->next->(name, scope)";

  say "Names of deep-scope symbols, using the with-scope and _:";
  duel "hash[..1024]->(if (_ && scope > 5) name)";

  say "The same search written as C-style loops (DUEL accepts most of C):";
  duel
    "int i; for (i = 0; i < 1024; i++) if (hash[i] && hash[i]->scope > 5) \
     hash[i]->scope";

  say "Check the invariant: every chain sorted by decreasing scope.";
  say "One violation was planted 8 links down bucket 287 — note the";
  say "-->next[[8]] compression in the symbolic output:";
  duel "hash[..1024]-->next->if (next) scope <? next->scope";

  say "How many symbols are in the whole table?";
  duel "#/(hash[..1024]-->next)";

  say "How deep is the deepest chain?  (count per bucket, then filter)";
  duel "b := 0..1023 => #/(hash[{b}]-->next) >? 8";

  say "Clear the scope of the first symbol on each chain (side effect";
  say "only — the trailing ; suppresses display):";
  duel "hash[0..1023]->scope = 0 ;";
  duel "#/(hash[..1024]->(if (scope == 0) _))";

  say "Aliases persist across commands; use one to name a bucket:";
  duel "deep := hash[287]";
  duel "deep-->next->scope"
