(* Linked lists, binary trees, selection, reductions, and fault injection.

   Covers the paper's remaining query families: the introduction's
   "does list L contain two identical values?" one-liner, select [[..]],
   index aliases #i/#j, tree traversal and search, the @ truncation
   operator, and what happens on corrupted data (cycles, dangling
   pointers) — including the cycle-detection extension.

   Run with: dune exec examples/list_tree_debug.exe *)

module Session = Duel_core.Session
module Env = Duel_core.Env
module Scenarios = Duel_scenarios.Scenarios

let () =
  let inf = Scenarios.all () in
  let session = Session.create (Duel_target.Backend.direct inf) in
  let say text = Printf.printf "# %s\n" text in
  let duel q =
    Printf.printf "duel> %s\n%s\n\n" q (Session.exec_string session q)
  in

  say "The introduction's query: does L contain two identical values?";
  duel "L-->next->(value ==? next-->next->value)";

  say "Pinpoint both positions with index aliases and select:";
  duel
    "L-->next#i->value ==? L-->next#j->value => if (i < j) \
     L-->next[[i,j]]->value";

  say "Select the 3rd and 5th values of the head list (0-based):";
  duel "head-->next->value[[3,5]]";

  say "All tree keys, preorder, and their count and sum:";
  duel "root-->(left,right)->key";
  duel "#/(root-->(left,right)->key)";
  duel "+/(root-->(left,right)->key)";

  say "Search the tree: the path to the node holding 5";
  say "(the paper prints this path with the comparisons the other way";
  say "around — see EXPERIMENTS.md E10):";
  duel "root-->(if (key > 5) left else if (key < 5) right)->key";

  say "Truncation with @: characters of s up to the NUL, argv up to NULL:";
  duel "s[0..999]@(_=='\\0')";
  duel "argv[0..]@0";

  say "Leaves only (neither child):";
  duel "root-->(left,right)->if (!left && !right) key";

  say "--- fault injection (scenario: faulty) ---";
  let inf2 = Scenarios.faulty () in
  let s2 = Session.create (Duel_target.Backend.direct inf2) in
  let duel2 q = Printf.printf "duel> %s\n%s\n\n" q (Session.exec_string s2 q) in

  say "A dangling pointer terminates the --> sequence (paper semantics):";
  duel2 "dang-->next->value";

  say "... but an explicit dereference of the bad link is an error:";
  duel2 "dang->next->next->next->value";

  say "A cyclic list with cycle detection on (our extension; the paper's";
  say "implementation 'does not handle cycles'):";
  s2.Session.env.Env.flags.Env.cycle_detect <- true;
  duel2 "cyc-->next->value";

  say "With detection off, the safety cap stops the runaway traversal:";
  s2.Session.env.Env.flags.Env.cycle_detect <- false;
  s2.Session.env.Env.flags.Env.expansion_limit <- 8;
  duel2 "cyc-->next->value"
