(* Quickstart: embed DUEL in 40 lines.

   Build a simulated debuggee from scratch with the public API — declare a
   C struct type, create globals, lay out a linked list in target memory —
   then open a DUEL session on it and run generator queries.

   Run with: dune exec examples/quickstart.exe *)

module Ctype = Duel_ctype.Ctype
module Tenv = Duel_ctype.Tenv
module Inferior = Duel_target.Inferior
module Build = Duel_target.Build
module Session = Duel_core.Session

let () =
  (* 1. A fresh simulated inferior (LP64, little-endian by default). *)
  let inf = Inferior.create () in

  (* 2. Declare   struct point { int x, y; struct point *next; };   *)
  let point = Tenv.declare_struct (Inferior.tenv inf) "point" in
  Ctype.define_fields point
    [
      Ctype.field "x" Ctype.int;
      Ctype.field "y" Ctype.int;
      Ctype.field "next" (Ctype.ptr (Ctype.Comp point));
    ];

  (* 3. A global   int samples[10]   with some data. *)
  let samples = Inferior.define_global inf "samples" (Ctype.array Ctype.int 10) in
  List.iteri
    (fun i v -> Build.poke_int inf Ctype.int (samples + (4 * i)) (Int64.of_int v))
    [ 4; -2; 7; 0; 12; -5; 3; 9; -1; 6 ];

  (* 4. A global   struct point *path   — a heap-linked list. *)
  let link (x, y) tail =
    let p = Build.alloc inf (Ctype.Comp point) in
    Build.poke_field inf point p "x" (Int64.of_int x);
    Build.poke_field inf point p "y" (Int64.of_int y);
    Build.poke_field inf point p "next" (Int64.of_int tail);
    p
  in
  let head = List.fold_right link [ (0, 0); (3, 4); (6, 8); (9, 12) ] 0 in
  let path = Inferior.define_global inf "path" (Ctype.ptr (Ctype.Comp point)) in
  Build.poke_int inf (Ctype.ptr (Ctype.Comp point)) path (Int64.of_int head);

  (* 5. Open a DUEL session through the narrow debugger interface. *)
  let session = Session.create (Duel_target.Backend.direct inf) in
  let duel q =
    Printf.printf "duel> %s\n%s\n\n" q (Session.exec_string session q)
  in

  duel "samples[..10] >? 0";                  (* which samples are positive?  *)
  duel "#/(samples[..10] >? 0)";              (* ... how many?                *)
  duel "+/(samples[..10])";                   (* ... their sum?               *)
  duel "path-->next->(x, y)";                 (* walk the list                *)
  duel "path-->next->if (x == 6) y";          (* the y where x is 6           *)
  duel "p := path-->next => {p}->x * {p}->x + {p}->y * {p}->y"
       (* |p|^2 for each node, symbolically showing each pointer *)
