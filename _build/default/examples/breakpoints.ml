(* Watchpoints, conditional breakpoints, and assertions with DUEL
   conditions — the paper's Discussion section, running.

   A mini-C program (below) builds a linked list inside the simulated
   inferior.  We run it under the debugger with:
     - a watchpoint on the generator query  #/(first-->next)
     - a conditional breakpoint on push() that fires only when v > 4,
       where we interrogate the stopped program with DUEL
     - an assertion  first-->next->(value >= 0)  that a buggy function
       then violates
     - a conditional breakpoint inside recursive fib(), where frames.n
       displays the argument of every active frame at once.

   Run with: dune exec examples/breakpoints.exe *)

module Interp = Duel_minic.Interp
module Debugger = Duel_debug.Debugger
module Inferior = Duel_target.Inferior

let program =
  {|
struct cell { int value; struct cell *next; };

struct cell *first;
int nalloc;

struct cell *push(int v) {
  struct cell *q;
  q = (struct cell *)malloc(sizeof(struct cell));
  q->value = v;
  q->next = first;
  nalloc = nalloc + 1;
  return q;
}

int build(int n) {
  int i;
  for (i = 0; i < n; i++)
    first = push(i * i % 7);
  return nalloc;
}

int sum() {
  struct cell *p;
  int total;
  total = 0;
  for (p = first; p != 0; p = p->next)
    total = total + p->value;
  return total;
}

int clobber(int k) {
  struct cell *p;
  int i;
  p = first;
  for (i = 0; i < k; i++)
    p = p->next;
  p->value = -1;
  return k;
}

int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
|}

let () =
  let inf = Inferior.create () in
  Duel_target.Stdfuncs.register_all inf;
  let interp = Interp.load inf program in
  let dbg = Debugger.create interp in
  let say fmt = Printf.printf fmt in

  (* 1. watch a generator query while the program runs *)
  say "# watch the list length while build(6) runs\n";
  let w = Debugger.watch dbg "#/(first-->next)" in
  Debugger.on_stop dbg (fun dbg reason ->
      (match reason with
      | Debugger.Watchpoint { new_value; _ } ->
          say "  [watch] list length now: %s\n" new_value
      | other -> say "  [stop] %s\n" (Debugger.describe_stop other));
      ignore dbg;
      Debugger.Continue);
  (match Debugger.run_int dbg "build" [ 6 ] with
  | Ok n -> say "build(6) -> %Ld allocations\n\n" n
  | Error e -> say "error: %s\n" e);
  Debugger.delete dbg w;

  (* 2. conditional breakpoint: stop in push() only when v == 4,
     then interrogate the stopped program with DUEL *)
  say "# conditional breakpoint: push() when v == 4 (inspect with DUEL)\n";
  let b = Debugger.break_at dbg ~condition:"v == 4" "push" in
  Debugger.on_stop dbg (fun dbg reason ->
      (match reason with
      | Debugger.Breakpoint { func; _ } ->
          say "  [break] in %s:\n" func;
          List.iter (say "    duel> %s\n") (Debugger.query dbg "v, nalloc");
          List.iter (say "    duel> %s\n")
            (Debugger.query dbg "#/(first-->next->(value ==? 4))")
      | other -> say "  [stop] %s\n" (Debugger.describe_stop other));
      Debugger.Continue);
  (match Debugger.run_int dbg "build" [ 3 ] with
  | Ok _ -> say "(hit %d time(s): values pushed were 0, 1, 4)\n\n" (Debugger.hits dbg b)
  | Error e -> say "error: %s\n\n" e);
  Debugger.delete dbg b;

  (* 3. an assertion in the DUEL language, violated by a buggy function *)
  say "# assertion: every list value is non-negative\n";
  let a = Debugger.add_assertion dbg "first-->next->(value >= 0)" in
  Debugger.on_stop dbg (fun dbg reason ->
      (match reason with
      | Debugger.Assertion_failed { expr; detail; _ } ->
          say "  [assert] FAILED: %s (%s)\n" expr detail;
          List.iter (say "    duel> %s\n")
            (Debugger.query dbg "first-->next->value <? 0")
      | other -> say "  [stop] %s\n" (Debugger.describe_stop other));
      Debugger.Abort);
  (match Debugger.run_int dbg "clobber" [ 2 ] with
  | Ok _ -> say "clobber finished without tripping the assertion?!\n\n"
  | Error e -> say "execution aborted: %s\n\n" e);
  Debugger.delete dbg a;

  (* 4. recursion: frames.n shows every active frame's argument *)
  say "# break deep inside fib(7) and look at the whole stack with frames.n\n";
  let fired = ref false in
  let b = Debugger.break_at dbg ~condition:"n == 1" "fib" in
  Debugger.on_stop dbg (fun dbg reason ->
      (match reason with
      | Debugger.Breakpoint _ when not !fired ->
          fired := true;
          List.iter (say "    duel> %s\n") (Debugger.query dbg "frames.n")
      | _ -> ());
      Debugger.Continue);
  (match Debugger.run_int dbg "fib" [ 7 ] with
  | Ok v -> say "fib(7) = %Ld (breakpoint fired %d times)\n" v (Debugger.hits dbg b)
  | Error e -> say "error: %s\n" e)
