examples/quickstart.ml: Duel_core Duel_ctype Duel_target Int64 List Printf
