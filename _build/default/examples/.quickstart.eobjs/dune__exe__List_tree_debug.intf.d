examples/list_tree_debug.mli:
