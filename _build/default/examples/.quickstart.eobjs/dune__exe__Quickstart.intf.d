examples/quickstart.mli:
