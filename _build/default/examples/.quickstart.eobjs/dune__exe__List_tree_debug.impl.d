examples/list_tree_debug.ml: Duel_core Duel_scenarios Duel_target Printf
