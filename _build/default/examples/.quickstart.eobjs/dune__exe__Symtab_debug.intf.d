examples/symtab_debug.mli:
