examples/breakpoints.mli:
