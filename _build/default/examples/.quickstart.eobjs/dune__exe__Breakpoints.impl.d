examples/breakpoints.ml: Duel_debug Duel_minic Duel_target List Printf
