examples/rsp_debug.mli:
