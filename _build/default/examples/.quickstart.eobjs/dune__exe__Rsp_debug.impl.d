examples/rsp_debug.ml: Duel_core Duel_rsp Duel_scenarios Duel_target List Printf
