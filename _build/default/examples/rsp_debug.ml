(* DUEL over the GDB remote serial protocol.

   The paper's DUEL sat inside gdb; its debugger interface is deliberately
   narrow so that other debuggers can host it.  This example demonstrates
   that claim: the same session runs against (a) the direct in-process
   backend and (b) an RSP client whose every memory access crosses the
   $...#xx packet format to a gdbserver-style stub — with identical
   output.  A packet trace of one query shows what travels on the wire.

   Run with: dune exec examples/rsp_debug.exe *)

module Session = Duel_core.Session
module Scenarios = Duel_scenarios.Scenarios
module Server = Duel_rsp.Server
module Client = Duel_rsp.Client

let queries =
  [
    "x[1..4,8,12..50] >? 5 <? 10";
    "(hash[..1024] !=? 0)->scope >? 5";
    "head-->next->value[[3,5]]";
    "strlen(s) + strlen(argv[0])";
    "int scratch; scratch = 41; scratch + 1";
  ]

let run_with label dbg =
  Printf.printf "=== %s ===\n" label;
  let session = Session.create dbg in
  List.iter
    (fun q ->
      Printf.printf "duel> %s\n%s\n" q (Session.exec_string session q))
    queries;
  print_newline ()

let () =
  (* Same debuggee, two transports. *)
  let inf = Scenarios.all () in
  let direct = Duel_target.Backend.direct inf in
  run_with "direct backend" direct;

  let inf2 = Scenarios.all () in
  run_with "RSP loopback backend" (Client.loopback inf2);

  (* Peek at the wire: trace the packets for one small query. *)
  Printf.printf "=== packet trace for: v[0] + v[1] ===\n";
  let inf3 = Scenarios.all () in
  let server = Server.create inf3 in
  let count = ref 0 in
  let exchange raw =
    incr count;
    let reply = Server.handle server raw in
    if !count <= 12 then Printf.printf "  -> %s\n  <- %s\n" raw reply;
    reply
  in
  let dbg = Client.connect ~exchange (Client.debug_info_of_inferior inf3) in
  let session = Session.create dbg in
  Printf.printf "%s\n" (Session.exec_string session "v[0] + v[1]");
  Printf.printf "(%d packets total)\n" !count
