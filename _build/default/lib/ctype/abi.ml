type endian = Little | Big

type t = {
  name : string;
  endian : endian;
  char_signed : bool;
  short_size : int;
  int_size : int;
  long_size : int;
  llong_size : int;
  ptr_size : int;
  float_size : int;
  double_size : int;
  ldouble_size : int;
  max_align : int;
}

let lp64 =
  {
    name = "lp64";
    endian = Little;
    char_signed = true;
    short_size = 2;
    int_size = 4;
    long_size = 8;
    llong_size = 8;
    ptr_size = 8;
    float_size = 4;
    double_size = 8;
    ldouble_size = 16;
    max_align = 16;
  }

let ilp32 =
  {
    name = "ilp32";
    endian = Little;
    char_signed = true;
    short_size = 2;
    int_size = 4;
    long_size = 4;
    llong_size = 8;
    ptr_size = 4;
    float_size = 4;
    double_size = 8;
    ldouble_size = 8;
    max_align = 8;
  }

let big_endian abi = { abi with endian = Big; name = abi.name ^ "-be" }
