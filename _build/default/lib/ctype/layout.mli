(** ABI-dependent type layout: sizes, alignments, field offsets.

    Implements a System-V-style layout algorithm: members are placed at the
    next offset aligned for their type, bit-fields are packed into storage
    units of their declared type (never straddling a unit), a zero-width
    bit-field closes the current unit, unions overlay all members at offset
    zero, and the total size is rounded up to the overall alignment. *)

exception Incomplete of string
(** Raised when the size or layout of an incomplete (or function) type is
    requested; the payload names the offending type. *)

type field_info = {
  fi_field : Ctype.field;
  fi_offset : int;  (** byte offset of the field's storage unit *)
  fi_bit_off : int;
      (** for bit-fields: bit offset from the LSB of the storage unit
          (little-endian view); 0 for plain fields *)
}

val size_of : Abi.t -> Ctype.t -> int
(** @raise Incomplete on incomplete or function types. *)

val align_of : Abi.t -> Ctype.t -> int

val fields_of : Abi.t -> Ctype.comp -> field_info list
(** Laid-out members in declaration order (zero-width bit-fields omitted).
    @raise Incomplete if the composite has no field list yet. *)

val find_field : Abi.t -> Ctype.comp -> string -> field_info option
