type t = {
  structs : (string, Ctype.comp) Hashtbl.t;
  unions : (string, Ctype.comp) Hashtbl.t;
  enums : (string, Ctype.enum_info) Hashtbl.t;
  typedefs : (string, Ctype.t) Hashtbl.t;
}

let create () =
  {
    structs = Hashtbl.create 16;
    unions = Hashtbl.create 16;
    enums = Hashtbl.create 16;
    typedefs = Hashtbl.create 16;
  }

let declare_tagged table kind tag =
  match Hashtbl.find_opt table tag with
  | Some c -> c
  | None ->
      let c = Ctype.new_comp kind tag in
      Hashtbl.replace table tag c;
      c

let declare_struct env tag = declare_tagged env.structs Ctype.CStruct tag
let declare_union env tag = declare_tagged env.unions Ctype.CUnion tag

let define_enum env tag items =
  let e = Ctype.new_enum tag items in
  Hashtbl.replace env.enums tag e;
  e

let add_typedef env name t = Hashtbl.replace env.typedefs name t
let find_struct env tag = Hashtbl.find_opt env.structs tag
let find_union env tag = Hashtbl.find_opt env.unions tag
let find_enum env tag = Hashtbl.find_opt env.enums tag
let find_typedef env name = Hashtbl.find_opt env.typedefs name

let find_enum_const env name =
  let found = ref None in
  let check _tag (e : Ctype.enum_info) =
    if !found = None then
      match List.assoc_opt name e.Ctype.enum_items with
      | Some v -> found := Some (e, v)
      | None -> ()
  in
  Hashtbl.iter check env.enums;
  !found

let typedef_names env = Hashtbl.fold (fun k _ acc -> k :: acc) env.typedefs []
