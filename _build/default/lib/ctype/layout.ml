exception Incomplete of string

type field_info = {
  fi_field : Ctype.field;
  fi_offset : int;
  fi_bit_off : int;
}

type comp_layout = { cl_size : int; cl_align : int; cl_fields : field_info list }

let comp_cache : (string * int, comp_layout) Hashtbl.t = Hashtbl.create 64

let align_up n a = (n + a - 1) / a * a

let rec size_of abi t =
  match t with
  | Ctype.Void -> raise (Incomplete "void")
  | Ctype.Integer k -> Ctype.ikind_size abi k
  | Ctype.Floating k -> Ctype.fkind_size abi k
  | Ctype.Ptr _ -> abi.Abi.ptr_size
  | Ctype.Array (elt, Some n) -> n * size_of abi elt
  | Ctype.Array (_, None) -> raise (Incomplete "array of unknown length")
  | Ctype.Func _ -> raise (Incomplete "function type")
  | Ctype.Enum _ -> abi.Abi.int_size
  | Ctype.Comp c -> (comp_layout abi c).cl_size

and align_of abi t =
  match t with
  | Ctype.Void -> 1
  | Ctype.Integer k -> min (Ctype.ikind_size abi k) abi.Abi.max_align
  | Ctype.Floating k -> min (Ctype.fkind_size abi k) abi.Abi.max_align
  | Ctype.Ptr _ -> abi.Abi.ptr_size
  | Ctype.Array (elt, _) -> align_of abi elt
  | Ctype.Func _ -> 1
  | Ctype.Enum _ -> min abi.Abi.int_size abi.Abi.max_align
  | Ctype.Comp c -> (comp_layout abi c).cl_align

and comp_layout abi (c : Ctype.comp) =
  let key = (abi.Abi.name, c.Ctype.comp_id) in
  match Hashtbl.find_opt comp_cache key with
  | Some l -> l
  | None ->
      let fields =
        match c.Ctype.comp_fields with
        | None ->
            let kind =
              match c.Ctype.comp_kind with
              | Ctype.CStruct -> "struct"
              | Ctype.CUnion -> "union"
            in
            raise (Incomplete (kind ^ " " ^ c.Ctype.comp_tag))
        | Some fs -> fs
      in
      let l =
        match c.Ctype.comp_kind with
        | Ctype.CStruct -> layout_struct abi fields
        | Ctype.CUnion -> layout_union abi fields
      in
      Hashtbl.replace comp_cache key l;
      l

(* Struct layout runs in bit units so that consecutive bit-fields pack into
   the same storage unit.  [bit_pos] is the first free bit; a plain member
   first rounds it up to a byte, then to its own alignment. *)
and layout_struct abi fields =
  let bit_pos = ref 0 in
  let align = ref 1 in
  let place acc (f : Ctype.field) =
    match f.Ctype.f_bits with
    | None ->
        let a = align_of abi f.Ctype.f_type in
        let size = size_of abi f.Ctype.f_type in
        let off = align_up (align_up !bit_pos 8 / 8) a in
        bit_pos := (off + size) * 8;
        align := max !align a;
        { fi_field = f; fi_offset = off; fi_bit_off = 0 } :: acc
    | Some 0 ->
        let unit_bits = size_of abi f.Ctype.f_type * 8 in
        bit_pos := align_up !bit_pos unit_bits;
        acc
    | Some width ->
        let unit = size_of abi f.Ctype.f_type in
        let unit_bits = unit * 8 in
        let a = align_of abi f.Ctype.f_type in
        let start =
          if (!bit_pos mod unit_bits) + width > unit_bits then
            align_up !bit_pos unit_bits
          else !bit_pos
        in
        let unit_start = start / unit_bits * unit_bits in
        bit_pos := start + width;
        align := max !align a;
        {
          fi_field = f;
          fi_offset = unit_start / 8;
          fi_bit_off = start - unit_start;
        }
        :: acc
  in
  let infos = List.rev (List.fold_left place [] fields) in
  let size = align_up (align_up !bit_pos 8 / 8) !align in
  { cl_size = max size !align; cl_align = !align; cl_fields = infos }

and layout_union abi fields =
  let place (f : Ctype.field) =
    { fi_field = f; fi_offset = 0; fi_bit_off = 0 }
  in
  let member_size (f : Ctype.field) =
    match f.Ctype.f_bits with
    | Some w -> align_up w 8 / 8
    | None -> size_of abi f.Ctype.f_type
  in
  let size = List.fold_left (fun s f -> max s (member_size f)) 0 fields in
  let align =
    List.fold_left (fun a f -> max a (align_of abi f.Ctype.f_type)) 1 fields
  in
  {
    cl_size = max (align_up size align) align;
    cl_align = align;
    cl_fields = List.map place fields;
  }

let fields_of abi c = (comp_layout abi c).cl_fields

let find_field abi c name =
  List.find_opt
    (fun fi -> String.equal fi.fi_field.Ctype.f_name name)
    (fields_of abi c)
