(** Target ABI description.

    DUEL evaluates C expressions against a byte-addressed target, so the
    sizes, alignments, endianness, and [char] signedness of the target's C
    implementation must be explicit.  An {!t} value captures everything the
    type-layout and scalar-codec code needs.  Two ready-made ABIs are
    provided: {!lp64} (the default: x86-64/RISC-V style, little-endian) and
    {!ilp32} (classic 32-bit, as on the DECstation the paper used, except
    that the DECstation was little-endian MIPS, which [ilp32] matches). *)

type endian = Little | Big

type t = {
  name : string;  (** human-readable ABI name, e.g. ["lp64"] *)
  endian : endian;
  char_signed : bool;  (** is plain [char] signed? *)
  short_size : int;
  int_size : int;
  long_size : int;
  llong_size : int;
  ptr_size : int;
  float_size : int;
  double_size : int;
  ldouble_size : int;
  max_align : int;  (** scalar alignment is [min size max_align] *)
}

val lp64 : t
(** 64-bit ABI: 2/4/8/8-byte short/int/long/long long, 8-byte pointers,
    little-endian, signed [char]. *)

val ilp32 : t
(** 32-bit ABI: 2/4/4/8-byte short/int/long/long long, 4-byte pointers,
    little-endian, signed [char]. *)

val big_endian : t -> t
(** [big_endian abi] is [abi] with byte order flipped to big-endian (and a
    name suffix), for codec and layout testing. *)
