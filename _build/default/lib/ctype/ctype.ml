type ikind =
  | Bool
  | Char
  | SChar
  | UChar
  | Short
  | UShort
  | Int
  | UInt
  | Long
  | ULong
  | LLong
  | ULLong

type fkind = Float | Double | LDouble

type t =
  | Void
  | Integer of ikind
  | Floating of fkind
  | Ptr of t
  | Array of t * int option
  | Func of func_type
  | Comp of comp
  | Enum of enum_info

and func_type = { ret : t; params : t list; variadic : bool }

and comp = {
  comp_kind : comp_kind;
  comp_tag : string;
  comp_id : int;
  mutable comp_fields : field list option;
}

and comp_kind = CStruct | CUnion

and field = { f_name : string; f_type : t; f_bits : int option }

and enum_info = {
  enum_tag : string;
  enum_id : int;
  mutable enum_items : (string * int64) list;
}

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let new_comp comp_kind comp_tag =
  { comp_kind; comp_tag; comp_id = next_id (); comp_fields = None }

let new_enum enum_tag enum_items =
  { enum_tag; enum_id = next_id (); enum_items }

let define_fields comp fields =
  match comp.comp_fields with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Ctype.define_fields: %s already complete"
           comp.comp_tag)
  | None -> comp.comp_fields <- Some fields

let field f_name f_type = { f_name; f_type; f_bits = None }
let bitfield f_name f_type width = { f_name; f_type; f_bits = Some width }

let is_integer = function Integer _ | Enum _ -> true | _ -> false
let is_floating = function Floating _ -> true | _ -> false
let is_arith t = is_integer t || is_floating t
let is_ptr = function Ptr _ -> true | _ -> false
let is_scalar t = is_arith t || is_ptr t

let is_complete = function
  | Void -> false
  | Comp c -> c.comp_fields <> None
  | Array (_, None) -> false
  | Integer _ | Floating _ | Ptr _ | Array (_, Some _) | Func _ | Enum _ ->
      true

let ikind_signed (abi : Abi.t) = function
  | Bool | UChar | UShort | UInt | ULong | ULLong -> false
  | SChar | Short | Int | Long | LLong -> true
  | Char -> abi.char_signed

let ikind_size (abi : Abi.t) = function
  | Bool | Char | SChar | UChar -> 1
  | Short | UShort -> abi.short_size
  | Int | UInt -> abi.int_size
  | Long | ULong -> abi.long_size
  | LLong | ULLong -> abi.llong_size

let fkind_size (abi : Abi.t) = function
  | Float -> abi.float_size
  | Double -> abi.double_size
  | LDouble -> abi.ldouble_size

let ikind_rank = function
  | Bool -> 0
  | Char | SChar | UChar -> 1
  | Short | UShort -> 2
  | Int | UInt -> 3
  | Long | ULong -> 4
  | LLong | ULLong -> 5

let promote_ikind abi k =
  if ikind_rank k >= ikind_rank Int then k
  else if ikind_signed abi k then Int
  else if ikind_size abi k < abi.int_size then Int
  else UInt

let to_unsigned = function
  | Char | SChar | UChar -> UChar
  | Short | UShort -> UShort
  | Int | UInt -> UInt
  | Long | ULong -> ULong
  | LLong | ULLong -> ULLong
  | Bool -> Bool

(* Both kinds are assumed already promoted (rank >= Int). *)
let usual_arith_ikind abi k1 k2 =
  let r1 = ikind_rank k1 and r2 = ikind_rank k2 in
  let s1 = ikind_signed abi k1 and s2 = ikind_signed abi k2 in
  if k1 = k2 then k1
  else if s1 = s2 then if r1 >= r2 then k1 else k2
  else
    let su, ss, ru, rs = if s1 then (k2, k1, r2, r1) else (k1, k2, r1, r2) in
    if ru >= rs then su
    else if ikind_size abi ss > ikind_size abi su then ss
    else to_unsigned ss

let normalize abi k v =
  let size = ikind_size abi k in
  if k = Bool then if Int64.equal v 0L then 0L else 1L
  else if size >= 8 then v
  else
    let bits = size * 8 in
    let mask = Int64.sub (Int64.shift_left 1L bits) 1L in
    let v = Int64.logand v mask in
    if ikind_signed abi k && Int64.logand v (Int64.shift_left 1L (bits - 1)) <> 0L
    then Int64.logor v (Int64.lognot mask)
    else v

let ikind_min abi k =
  if not (ikind_signed abi k) then 0L
  else
    let bits = (ikind_size abi k * 8) - 1 in
    Int64.neg (Int64.shift_left 1L (min bits 63))

let ikind_max abi k =
  let size = ikind_size abi k in
  if ikind_signed abi k then
    Int64.sub (Int64.shift_left 1L ((size * 8) - 1)) 1L
  else if k = Bool then 1L
  else if size >= 8 then -1L (* all ones, viewed unsigned *)
  else Int64.sub (Int64.shift_left 1L (size * 8)) 1L

let integer_kind = function
  | Integer k -> Some k
  | Enum _ -> Some Int
  | Void | Floating _ | Ptr _ | Array _ | Func _ | Comp _ -> None

let decay = function
  | Array (elt, _) -> Ptr elt
  | Func _ as f -> Ptr f
  | t -> t

let strip_array = function Array (e, n) -> (e, n) | t -> (t, None)

let rec equal t1 t2 =
  match (t1, t2) with
  | Void, Void -> true
  | Integer k1, Integer k2 -> k1 = k2
  | Floating k1, Floating k2 -> k1 = k2
  | Ptr a, Ptr b -> equal a b
  | Array (a, n1), Array (b, n2) -> n1 = n2 && equal a b
  | Func f1, Func f2 ->
      f1.variadic = f2.variadic
      && equal f1.ret f2.ret
      && List.length f1.params = List.length f2.params
      && List.for_all2 equal f1.params f2.params
  | Comp c1, Comp c2 -> c1.comp_id = c2.comp_id
  | Enum e1, Enum e2 -> e1.enum_id = e2.enum_id
  | ( ( Void | Integer _ | Floating _ | Ptr _ | Array _ | Func _ | Comp _
      | Enum _ ),
      _ ) ->
      false

let char = Integer Char
let schar = Integer SChar
let uchar = Integer UChar
let short = Integer Short
let ushort = Integer UShort
let int = Integer Int
let uint = Integer UInt
let long = Integer Long
let ulong = Integer ULong
let llong = Integer LLong
let ullong = Integer ULLong
let bool = Integer Bool
let float = Floating Float
let double = Floating Double
let ldouble = Floating LDouble
let ptr t = Ptr t
let array t n = Array (t, Some n)
let func ?(variadic = false) ret params = Func { ret; params; variadic }
