(** C type representation.

    Models the C type system as DUEL needs it: integer and floating kinds,
    pointers, arrays (possibly of unknown length), function types,
    struct/union composites (mutable so that recursive types such as linked
    lists can be tied after creation), and enums.

    Composites and enums carry a unique id; type equality ({!equal}) is
    structural on scalars/pointers/arrays and nominal (by id) on composites
    and enums, matching C's tag-based compatibility rules closely enough for
    a debugger. *)

type ikind =
  | Bool
  | Char  (** plain [char]; signedness comes from the ABI *)
  | SChar
  | UChar
  | Short
  | UShort
  | Int
  | UInt
  | Long
  | ULong
  | LLong
  | ULLong

type fkind = Float | Double | LDouble

type t =
  | Void
  | Integer of ikind
  | Floating of fkind
  | Ptr of t
  | Array of t * int option  (** element type, length if known *)
  | Func of func_type
  | Comp of comp
  | Enum of enum_info

and func_type = { ret : t; params : t list; variadic : bool }

and comp = {
  comp_kind : comp_kind;
  comp_tag : string;  (** [""] for anonymous *)
  comp_id : int;
  mutable comp_fields : field list option;  (** [None] while incomplete *)
}

and comp_kind = CStruct | CUnion

and field = {
  f_name : string;
  f_type : t;
  f_bits : int option;  (** bit-field width, if a bit-field *)
}

and enum_info = {
  enum_tag : string;
  enum_id : int;
  mutable enum_items : (string * int64) list;
}

val new_comp : comp_kind -> string -> comp
(** Fresh incomplete composite with a unique id. *)

val new_enum : string -> (string * int64) list -> enum_info

val define_fields : comp -> field list -> unit
(** Complete a composite.  @raise Invalid_argument if already complete. *)

val field : string -> t -> field
val bitfield : string -> t -> int -> field

(** {1 Predicates and classification} *)

val is_integer : t -> bool
(** Integer types, including enums and [_Bool]. *)

val is_floating : t -> bool
val is_arith : t -> bool
val is_ptr : t -> bool
val is_scalar : t -> bool
(** Arithmetic or pointer (what C allows in a condition). *)

val is_complete : t -> bool

val ikind_signed : Abi.t -> ikind -> bool
val ikind_size : Abi.t -> ikind -> int
val fkind_size : Abi.t -> fkind -> int

val ikind_rank : ikind -> int
(** C integer conversion rank ordering. *)

val promote_ikind : Abi.t -> ikind -> ikind
(** Integer promotion: ranks below [int] go to [int] (or [unsigned int] if
    [int] cannot represent all values). *)

val usual_arith_ikind : Abi.t -> ikind -> ikind -> ikind
(** The common integer kind of C's usual arithmetic conversions (both
    operands already promoted). *)

val normalize : Abi.t -> ikind -> int64 -> int64
(** Truncate/sign-extend a 64-bit value to the kind's width, producing the
    canonical in-range representative (two's complement wraparound). *)

val ikind_min : Abi.t -> ikind -> int64
val ikind_max : Abi.t -> ikind -> int64
(** Inclusive bounds; for ULLong, [ikind_max] is [-1L] viewed unsigned. *)

val integer_kind : t -> ikind option
(** The underlying integer kind of an integer-typed value (enums map to the
    ABI's [int]). *)

val decay : t -> t
(** Array-to-pointer and function-to-pointer decay for rvalue contexts. *)

val strip_array : t -> t * int option
(** [strip_array (Array (e, n))] is [(e, n)]; identity shape otherwise. *)

val equal : t -> t -> bool

(** {1 Common shorthands} *)

val char : t
val schar : t
val uchar : t
val short : t
val ushort : t
val int : t
val uint : t
val long : t
val ulong : t
val llong : t
val ullong : t
val bool : t
val float : t
val double : t
val ldouble : t
val ptr : t -> t
val array : t -> int -> t
val func : ?variadic:bool -> t -> t list -> t
