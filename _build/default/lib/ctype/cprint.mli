(** Printing C types in C declarator syntax. *)

val declaration : Ctype.t -> string -> string
(** [declaration t name] renders a C declaration of [name] with type [t],
    e.g. [declaration (ptr (array int 3)) "x"] is ["int (*x)[3]"]. *)

val to_string : Ctype.t -> string
(** Abstract declarator (type name), e.g. ["struct symbol *[1024]"]. *)

val ikind_name : Ctype.ikind -> string
val fkind_name : Ctype.fkind -> string
