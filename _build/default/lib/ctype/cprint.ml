let ikind_name = function
  | Ctype.Bool -> "_Bool"
  | Ctype.Char -> "char"
  | Ctype.SChar -> "signed char"
  | Ctype.UChar -> "unsigned char"
  | Ctype.Short -> "short"
  | Ctype.UShort -> "unsigned short"
  | Ctype.Int -> "int"
  | Ctype.UInt -> "unsigned int"
  | Ctype.Long -> "long"
  | Ctype.ULong -> "unsigned long"
  | Ctype.LLong -> "long long"
  | Ctype.ULLong -> "unsigned long long"

let fkind_name = function
  | Ctype.Float -> "float"
  | Ctype.Double -> "double"
  | Ctype.LDouble -> "long double"

let tagged kind tag = if tag = "" then kind ^ " <anon>" else kind ^ " " ^ tag

(* Classic inside-out declarator construction: [go t inner] wraps the
   declarator string [inner] with the syntax for [t] and returns the full
   "specifier declarator" rendering.  Pointer declarators must be
   parenthesized before being suffixed with [] or (). *)
let rec go t inner =
  match t with
  | Ctype.Void -> spec "void" inner
  | Ctype.Integer k -> spec (ikind_name k) inner
  | Ctype.Floating k -> spec (fkind_name k) inner
  | Ctype.Comp c ->
      let kind =
        match c.Ctype.comp_kind with
        | Ctype.CStruct -> "struct"
        | Ctype.CUnion -> "union"
      in
      spec (tagged kind c.Ctype.comp_tag) inner
  | Ctype.Enum e -> spec (tagged "enum" e.Ctype.enum_tag) inner
  | Ctype.Ptr t' -> go t' ("*" ^ inner)
  | Ctype.Array (elt, n) ->
      let dim = match n with None -> "[]" | Some n -> Printf.sprintf "[%d]" n in
      go elt (protect inner ^ dim)
  | Ctype.Func { ret; params; variadic } ->
      let ps = List.map to_string params in
      let ps = if variadic then ps @ [ "..." ] else ps in
      let ps = if ps = [] then [ "void" ] else ps in
      go ret (protect inner ^ "(" ^ String.concat ", " ps ^ ")")

and protect inner =
  if String.length inner > 0 && inner.[0] = '*' then "(" ^ inner ^ ")"
  else inner

and spec name inner = if inner = "" then name else name ^ " " ^ inner
and to_string t = go t ""

let declaration t name = go t name
