lib/ctype/abi.ml:
