lib/ctype/abi.mli:
