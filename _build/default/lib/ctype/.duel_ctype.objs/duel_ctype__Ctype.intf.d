lib/ctype/ctype.mli: Abi
