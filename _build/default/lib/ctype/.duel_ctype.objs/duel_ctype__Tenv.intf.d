lib/ctype/tenv.mli: Ctype
