lib/ctype/ctype.ml: Abi Int64 List Printf
