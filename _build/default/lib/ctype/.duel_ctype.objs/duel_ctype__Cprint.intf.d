lib/ctype/cprint.mli: Ctype
