lib/ctype/cprint.ml: Ctype List Printf String
