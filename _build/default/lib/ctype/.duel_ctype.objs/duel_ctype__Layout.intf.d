lib/ctype/layout.mli: Abi Ctype
