lib/ctype/tenv.ml: Ctype Hashtbl List
