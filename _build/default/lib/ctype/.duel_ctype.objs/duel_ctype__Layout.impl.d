lib/ctype/layout.ml: Abi Ctype Hashtbl List String
