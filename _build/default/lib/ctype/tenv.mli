(** Type environment: named struct/union/enum tags and typedefs.

    DUEL resolves type names at evaluation time (the paper decorates ASTs
    with symbolic names, not symbol-table pointers), so casts and
    declarations look tags and typedefs up here.  The target simulator
    populates one of these when a debuggee is built; it plays the role of
    gdb's type tables behind [duel_get_target_typedef/struct/union/enum]. *)

type t

val create : unit -> t

val declare_struct : t -> string -> Ctype.comp
(** Look up or create the (possibly incomplete) struct with this tag. *)

val declare_union : t -> string -> Ctype.comp
val define_enum : t -> string -> (string * int64) list -> Ctype.enum_info
val add_typedef : t -> string -> Ctype.t -> unit

val find_struct : t -> string -> Ctype.comp option
val find_union : t -> string -> Ctype.comp option
val find_enum : t -> string -> Ctype.enum_info option
val find_typedef : t -> string -> Ctype.t option

val find_enum_const : t -> string -> (Ctype.enum_info * int64) option
(** Resolve an enumeration constant by name across all known enums. *)

val typedef_names : t -> string list
