(** An RSP stub ("gdbserver") fronting a simulated inferior.

    Speaks standard memory packets plus three [qDuel] extension queries in
    the spirit of gdb's [q] packets (a real debug agent would also need
    them, because DUEL allocates scratch target space and calls target
    functions):

    {ul
    {- [m<addr>,<len>] — read memory, hex reply or [E01] on fault}
    {- [M<addr>,<len>:<hex>] — write memory, [OK] or [E01]}
    {- [qDuelAlloc:<len>] — allocate target space, reply [<addr hex>]}
    {- [qDuelCall:<name>;<arg>;...] — call a target function; each arg and
       the reply are [i<hex64>] (integer/pointer) or [f<hex64>] (double
       bits)}
    {- [qDuelFrames] — reply [<n hex>], the active frame count}
    {- [qSupported], [?], [Hg...] — handshake niceties, answered inertly}}

    Unknown packets get the RSP-standard empty reply. *)

type t

val create : Duel_target.Inferior.t -> t

val handle_payload : t -> string -> string
(** Process one decoded payload, returning the reply payload. *)

val handle : t -> string -> string
(** Process one framed packet ([$...#xx]) and return the framed reply.
    Malformed packets get a NAK ["-"]. *)
