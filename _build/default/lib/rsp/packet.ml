exception Malformed of string

let checksum payload =
  let sum = ref 0 in
  String.iter (fun c -> sum := (!sum + Char.code c) land 0xff) payload;
  !sum

let must_escape c = c = '$' || c = '#' || c = '}' || c = '*'

let escape payload =
  let b = Buffer.create (String.length payload + 8) in
  String.iter
    (fun c ->
      if must_escape c then begin
        Buffer.add_char b '}';
        Buffer.add_char b (Char.chr (Char.code c lxor 0x20))
      end
      else Buffer.add_char b c)
    payload;
  Buffer.contents b

let encode payload =
  let escaped = escape payload in
  Printf.sprintf "$%s#%02x" escaped (checksum escaped)

let decode raw =
  let n = String.length raw in
  if n < 4 || raw.[0] <> '$' || raw.[n - 3] <> '#' then
    raise (Malformed "missing $...#xx frame");
  let body = String.sub raw 1 (n - 4) in
  let declared =
    try int_of_string ("0x" ^ String.sub raw (n - 2) 2)
    with Failure _ -> raise (Malformed "bad checksum digits")
  in
  if checksum body <> declared then raise (Malformed "checksum mismatch");
  (* undo escapes and run-length encoding *)
  let b = Buffer.create (String.length body) in
  let rec go i =
    if i < String.length body then
      match body.[i] with
      | '}' ->
          if i + 1 >= String.length body then
            raise (Malformed "trailing escape");
          Buffer.add_char b (Char.chr (Char.code body.[i + 1] lxor 0x20));
          go (i + 2)
      | '*' ->
          if i + 1 >= String.length body then raise (Malformed "trailing RLE");
          if Buffer.length b = 0 then raise (Malformed "RLE with no prior byte");
          let count = Char.code body.[i + 1] - 29 in
          if count < 3 then raise (Malformed "RLE count too small");
          let prev = Buffer.nth b (Buffer.length b - 1) in
          for _ = 1 to count do
            Buffer.add_char b prev
          done;
          go (i + 2)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0;
  Buffer.contents b

let hex_digit n = "0123456789abcdef".[n]

let hex_of_bytes data =
  let b = Buffer.create (2 * Bytes.length data) in
  Bytes.iter
    (fun c ->
      Buffer.add_char b (hex_digit (Char.code c lsr 4));
      Buffer.add_char b (hex_digit (Char.code c land 0xf)))
    data;
  Buffer.contents b

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - 48
  | 'a' .. 'f' -> Char.code c - 87
  | 'A' .. 'F' -> Char.code c - 55
  | _ -> raise (Malformed (Printf.sprintf "bad hex digit %C" c))

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then raise (Malformed "odd hex length");
  Bytes.init (n / 2) (fun i ->
      Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
