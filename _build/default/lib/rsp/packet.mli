(** GDB Remote Serial Protocol packet framing.

    A packet is [$<payload>#<xx>] where [xx] is the two-hex-digit modulo-256
    sum of the payload bytes.  Payload bytes [$], [#], [}], [*] are escaped
    as [}] followed by the byte xor 0x20; run-length encoding
    ([<byte>*<count+29>]) is accepted on decode (gdbserver emits it) but
    never produced on encode. *)

exception Malformed of string

val checksum : string -> int
val encode : string -> string
(** Frame a payload: escape, append checksum. *)

val decode : string -> string
(** Unframe one packet: verify checksum, undo escapes and run-length
    encoding.  @raise Malformed on bad framing or checksum. *)

val hex_of_bytes : bytes -> string
val bytes_of_hex : string -> bytes
(** @raise Malformed on odd length or non-hex digits. *)
