lib/rsp/server.mli: Duel_target
