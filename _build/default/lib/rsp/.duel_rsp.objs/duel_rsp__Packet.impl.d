lib/rsp/packet.ml: Buffer Bytes Char Printf String
