lib/rsp/client.ml: Bytes Duel_ctype Duel_dbgi Duel_target Int64 List Packet Printf Server String
