lib/rsp/server.ml: Bytes Duel_ctype Duel_dbgi Duel_mem Duel_target Int64 List Packet Printf String
