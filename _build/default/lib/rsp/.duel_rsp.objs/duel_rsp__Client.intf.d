lib/rsp/client.mli: Duel_ctype Duel_dbgi Duel_target
