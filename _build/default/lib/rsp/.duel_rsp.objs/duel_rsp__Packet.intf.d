lib/rsp/packet.mli:
