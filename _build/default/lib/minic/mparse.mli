(** Parser for mini-C programs.

    Statement grammar on top of the DUEL lexer and expression parser:

    {v
    program     := (struct-def | global-decl | function-def)*
    struct-def  := "struct" ID "{" (type declarator (":" INT)?
                                    ("," declarator (":" INT)?)* ";")* "}" ";"
    global-decl := type declarator ("=" expr)? ("," ...)* ";"
    function    := type declarator "(" params? ")" block
    params      := "void" | type declarator ("," type declarator)*
    stmt        := block | "if" | "while" | "do"-"while" | "for" | "return"
                 | "break" ";" | "continue" ";" | decl ";" | expr ";" | ";"
    v}

    [return], [break], [continue], [do] are contextual identifiers (the
    DUEL lexer has no such keywords). *)

exception Error of string * int
(** message and line number *)

val parse : abi:Duel_ctype.Abi.t -> string -> Mast.program
