(** Mini-C interpreter over the simulated inferior.

    Loading a program defines its struct types in the inferior's type
    environment, allocates and initializes its globals in the data
    segment, and registers each function as a callable target function —
    so functions are reachable through the ordinary debugger interface
    ([duel_call_target_func]), DUEL expressions can call them, and they
    can recurse through the same path.

    Executing a function pushes a real frame (params + hoisted locals in
    stack memory) and interprets statements whose expressions are DUEL
    ASTs evaluated single-valuedly against target memory.  An optional
    hook observes every function entry/exit and statement — the
    attachment point for {!Duel_debug.Debugger}'s breakpoints,
    watchpoints, and assertions. *)

module Dbgi = Duel_dbgi.Dbgi

type event =
  | Enter of { func : string }
  | Stmt of { func : string; line : int }
  | Leave of { func : string }

type t

exception Runtime_error of string

val load : Duel_target.Inferior.t -> string -> t
(** Parse and load mini-C source.
    @raise Mparse.Error on syntax errors.
    @raise Runtime_error on bad types or duplicate definitions. *)

val inferior : t -> Duel_target.Inferior.t
val functions : t -> string list

val set_hook : t -> (event -> unit) option -> unit
val set_step_limit : t -> int -> unit
(** Abort execution after this many statements (default 10 million);
    guards demo programs against runaway loops. *)

val call : t -> string -> Dbgi.cval list -> Dbgi.cval
(** Run a loaded function (equivalent to calling it through the debugger
    interface).  @raise Runtime_error on execution errors (including the
    step limit); DUEL evaluation errors surface as
    {!Duel_core.Error.Duel_error}. *)

val call_int : t -> string -> int list -> int64
(** Convenience: call with int arguments, return an integer result. *)
