module T = Duel_core.Token
module P = Duel_core.Parser
module Ast = Duel_core.Ast

exception Error of string * int

(* Map byte offsets to 1-based line numbers. *)
let line_table src =
  let lines = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' then lines := (i + 1) :: !lines) src;
  let starts = Array.of_list (List.rev !lines) in
  fun offset ->
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if starts.(mid) <= offset then search mid hi else search lo (mid - 1)
    in
    search 0 (Array.length starts - 1) + 1

type state = { st : P.state; line_of : int -> int; tags : (string, unit) Hashtbl.t }

let here s = s.line_of (P.state_offset s.st)
let fail s msg = raise (Error (msg, here s))

let expect s tok =
  try P.expect s.st tok with P.Error (msg, off) -> raise (Error (msg, s.line_of off))

let expression s =
  try P.expression s.st
  with P.Error (msg, off) -> raise (Error (msg, s.line_of off))

let base_type s =
  try P.base_type s.st
  with P.Error (msg, off) -> raise (Error (msg, s.line_of off))

let declarator s base =
  try P.declarator s.st base
  with P.Error (msg, off) -> raise (Error (msg, s.line_of off))

let contextual s =
  match P.state_peek s.st with T.ID name -> Some name | _ -> None

let eat_contextual s = expect s (T.ID (Option.get (contextual s)))

(* --- statements --------------------------------------------------------- *)

let rec parse_stmt s : Mast.stmt =
  let s_line = here s in
  let kind =
    match P.state_peek s.st with
    | T.LBRACE ->
        expect s T.LBRACE;
        let rec items acc =
          if P.accept_tok s.st T.RBRACE then List.rev acc
          else items (parse_stmt s :: acc)
        in
        Mast.Sblock (items [])
    | T.SEMI ->
        expect s T.SEMI;
        Mast.Sempty
    | T.KIF ->
        expect s T.KIF;
        expect s T.LPAREN;
        let cond = expression s in
        expect s T.RPAREN;
        let then_s = parse_stmt s in
        if
          match contextual s with
          | Some "else" ->
              eat_contextual s;
              true
          | _ -> P.accept_tok s.st T.KELSE
        then Mast.Sif (cond, then_s, Some (parse_stmt s))
        else Mast.Sif (cond, then_s, None)
    | T.KWHILE ->
        expect s T.KWHILE;
        expect s T.LPAREN;
        let cond = expression s in
        expect s T.RPAREN;
        Mast.Swhile (cond, parse_stmt s)
    | T.KFOR ->
        expect s T.KFOR;
        expect s T.LPAREN;
        let init = if P.state_peek s.st = T.SEMI then None else Some (expression s) in
        expect s T.SEMI;
        let cond = if P.state_peek s.st = T.SEMI then None else Some (expression s) in
        expect s T.SEMI;
        let step = if P.state_peek s.st = T.RPAREN then None else Some (expression s) in
        expect s T.RPAREN;
        Mast.Sfor (init, cond, step, parse_stmt s)
    | T.ID "do" ->
        eat_contextual s;
        let body = parse_stmt s in
        expect s T.KWHILE;
        expect s T.LPAREN;
        let cond = expression s in
        expect s T.RPAREN;
        expect s T.SEMI;
        Mast.Sdo (body, cond)
    | T.ID "return" ->
        eat_contextual s;
        if P.accept_tok s.st T.SEMI then Mast.Sreturn None
        else begin
          let e = expression s in
          expect s T.SEMI;
          Mast.Sreturn (Some e)
        end
    | T.ID "break" ->
        eat_contextual s;
        expect s T.SEMI;
        Mast.Sbreak
    | T.ID "continue" ->
        eat_contextual s;
        expect s T.SEMI;
        Mast.Scontinue
    | _ when starts_decl s ->
        let ds = parse_local_decl s in
        Mast.Sdecl ds
    | _ ->
        let e = expression s in
        expect s T.SEMI;
        Mast.Sexpr e
  in
  { Mast.s_line; s_kind = kind }

(* A type keyword, or "struct tag" where the tag is known, starts a local
   declaration.  A known struct tag is required so that "struct" in an
   expression position (impossible in C anyway) cannot confuse us. *)
and starts_decl s =
  match P.state_peek s.st with
  | T.KSTRUCT | T.KUNION | T.KENUM -> true
  | t -> ( match t with
    | T.KINT | T.KCHAR | T.KLONG | T.KSHORT | T.KSIGNED | T.KUNSIGNED
    | T.KFLOAT | T.KDOUBLE | T.KVOID | T.KBOOL ->
        true
    | _ -> false)

and parse_local_decl s =
  let base = base_type s in
  let rec more acc =
    let name, t = declarator s base in
    let init =
      if P.accept_tok s.st T.ASSIGN then Some (expression s) else None
    in
    let acc = (name, t, init) :: acc in
    if P.accept_tok s.st T.COMMA then more acc
    else begin
      expect s T.SEMI;
      List.rev acc
    end
  in
  more []

(* --- top level ----------------------------------------------------------- *)

let parse_struct_def s =
  expect s T.KSTRUCT;
  let tag =
    match P.state_peek s.st with
    | T.ID tag ->
        expect s (T.ID tag);
        tag
    | _ -> fail s "expected struct tag"
  in
  Hashtbl.replace s.tags tag ();
  expect s T.LBRACE;
  let fields = ref [] in
  while P.state_peek s.st <> T.RBRACE do
    let base = base_type s in
    let rec more () =
      let name, t = declarator s base in
      let width =
        if P.accept_tok s.st T.COLON then
          match P.state_peek s.st with
          | T.INT (v, _, _) ->
              P.state_advance s.st;
              Some (Int64.to_int v)
          | _ -> fail s "expected bit-field width"
        else None
      in
      fields := (name, t, width) :: !fields;
      if P.accept_tok s.st T.COMMA then more () else expect s T.SEMI
    in
    more ()
  done;
  expect s T.RBRACE;
  expect s T.SEMI;
  { Mast.sd_tag = tag; sd_fields = List.rev !fields }

(* None for function prototypes, which declare nothing we need (calls
   resolve dynamically through the target-function registry). *)
let parse_top s : Mast.top option =
  match P.state_peek s.st with
  | T.KSTRUCT when P.state_peek_at s.st 2 = T.LBRACE ->
      Some (Tstruct (parse_struct_def s))
  | _ ->
      let line = here s in
      let base = base_type s in
      let name, t = declarator s base in
      if P.accept_tok s.st T.LPAREN then begin
        (* function definition *)
        let params =
          if P.accept_tok s.st T.RPAREN then []
          else if P.state_peek s.st = T.KVOID then begin
            expect s T.KVOID;
            expect s T.RPAREN;
            []
          end
          else begin
            let rec more acc =
              let pbase = base_type s in
              let pname, pt = declarator s pbase in
              let acc = (pname, pt) :: acc in
              if P.accept_tok s.st T.COMMA then more acc
              else begin
                expect s T.RPAREN;
                List.rev acc
              end
            in
            more []
          end
        in
        if P.accept_tok s.st T.SEMI then None (* prototype *)
        else
          let body = parse_stmt s in
          Some
            (Tfunc
               { Mast.f_name = name; f_line = line; f_ret = t;
                 f_params = params; f_body = body })
      end
      else begin
        (* global declaration; only single declarators with optional init
           per group for simplicity of the Tglobal representation *)
        let init = if P.accept_tok s.st T.ASSIGN then Some (expression s) else None in
        let g = { Mast.g_name = name; g_type = t; g_init = init } in
        if P.state_peek s.st = T.COMMA then fail s "one global per declaration, please";
        expect s T.SEMI;
        Some (Tglobal g)
      end

let parse ~abi src =
  let toks =
    try Array.of_list (Duel_core.Lexer.tokenize ~abi src)
    with Duel_core.Lexer.Error (msg, off) ->
      let line_of = line_table src in
      raise (Error (msg, line_of off))
  in
  let s =
    {
      st = P.make_state toks;
      line_of = line_table src;
      tags = Hashtbl.create 8;
    }
  in
  let rec tops acc =
    if P.state_peek s.st = T.EOF then List.rev acc
    else
      match parse_top s with
      | Some top -> tops (top :: acc)
      | None -> tops acc
  in
  tops []
