(** Abstract syntax of mini-C programs.

    Mini-C is the execution substrate for the paper's Discussion-section
    ideas (watchpoints, conditional breakpoints, and assertions driven by
    DUEL expressions): a small C subset whose programs run inside the
    simulated inferior, pushing real frames and mutating real target
    memory — so a DUEL session can inspect a *running* program exactly as
    the original did under gdb.

    Expressions reuse the DUEL expression AST ({!Duel_core.Ast.expr});
    mini-C programs are expected to stay within the C subset (the
    evaluator takes the first value of each expression). *)

module Ast = Duel_core.Ast

type stmt = { s_line : int; s_kind : stmt_kind }

and stmt_kind =
  | Sexpr of Ast.expr
  | Sdecl of (string * Ast.type_expr * Ast.expr option) list
      (** local declarations, hoisted to frame entry; initializers run in
          statement order *)
  | Sif of Ast.expr * stmt * stmt option
  | Swhile of Ast.expr * stmt
  | Sdo of stmt * Ast.expr
  | Sfor of Ast.expr option * Ast.expr option * Ast.expr option * stmt
  | Sreturn of Ast.expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sempty

type func = {
  f_name : string;
  f_line : int;
  f_ret : Ast.type_expr;
  f_params : (string * Ast.type_expr) list;
  f_body : stmt;
}

type struct_def = {
  sd_tag : string;
  sd_fields : (string * Ast.type_expr * int option) list;
      (** name, type, bit-field width *)
}

type global = {
  g_name : string;
  g_type : Ast.type_expr;
  g_init : Ast.expr option;
}

type top = Tstruct of struct_def | Tglobal of global | Tfunc of func
type program = top list

(** All local declarations in a function body, in source order (for
    frame-entry hoisting). *)
let rec locals_of_stmt stmt =
  match stmt.s_kind with
  | Sdecl ds -> List.map (fun (name, t, _) -> (name, t)) ds
  | Sblock ss -> List.concat_map locals_of_stmt ss
  | Sif (_, t, f) ->
      locals_of_stmt t
      @ (match f with Some f -> locals_of_stmt f | None -> [])
  | Swhile (_, b) | Sfor (_, _, _, b) | Sdo (b, _) -> locals_of_stmt b
  | Sexpr _ | Sreturn _ | Sbreak | Scontinue | Sempty -> []
