lib/minic/mast.ml: Duel_core List
