lib/minic/interp.ml: Duel_core Duel_ctype Duel_dbgi Duel_target Hashtbl Int64 List Mast Mparse Option Printf Seq
