lib/minic/mparse.ml: Array Duel_core Hashtbl Int64 List Mast Option String
