lib/minic/interp.mli: Duel_dbgi Duel_target
