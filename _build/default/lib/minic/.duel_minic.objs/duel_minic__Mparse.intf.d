lib/minic/mparse.mli: Duel_ctype Mast
