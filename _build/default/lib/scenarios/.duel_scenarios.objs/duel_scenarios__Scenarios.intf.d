lib/scenarios/scenarios.mli: Duel_ctype Duel_target
