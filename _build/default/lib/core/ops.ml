module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Dbgi = Duel_dbgi.Dbgi

let no_sym = Symbolic.atom "?"

let sym_on env = env.Env.flags.Env.symbolic

let binop_info = function
  | Ast.Badd -> ("+", Symbolic.prec_additive)
  | Ast.Bsub -> ("-", Symbolic.prec_additive)
  | Ast.Bmul -> ("*", Symbolic.prec_multiplicative)
  | Ast.Bdiv -> ("/", Symbolic.prec_multiplicative)
  | Ast.Bmod -> ("%", Symbolic.prec_multiplicative)
  | Ast.Blt -> ("<", Symbolic.prec_relational)
  | Ast.Bgt -> (">", Symbolic.prec_relational)
  | Ast.Ble -> ("<=", Symbolic.prec_relational)
  | Ast.Bge -> (">=", Symbolic.prec_relational)
  | Ast.Beq -> ("==", Symbolic.prec_equality)
  | Ast.Bne -> ("!=", Symbolic.prec_equality)
  | Ast.Bshl -> ("<<", Symbolic.prec_shift)
  | Ast.Bshr -> (">>", Symbolic.prec_shift)
  | Ast.Bband -> ("&", Symbolic.prec_bitand)
  | Ast.Bbor -> ("|", Symbolic.prec_bitor)
  | Ast.Bbxor -> ("^", Symbolic.prec_bitxor)

let combine_sym env op a b =
  if sym_on env then
    let text, prec = binop_info op in
    Symbolic.binary prec text a.Value.sym b.Value.sym
  else no_sym

let int_result env ?sym v =
  let sym =
    match sym with Some s -> s | None -> if sym_on env then Symbolic.atom (Int64.to_string v) else no_sym
  in
  Value.int_value ~sym Ctype.int v

let is_comparison = function
  | Ast.Blt | Ast.Bgt | Ast.Ble | Ast.Bge | Ast.Beq | Ast.Bne -> true
  | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv | Ast.Bmod | Ast.Bshl
  | Ast.Bshr | Ast.Bband | Ast.Bbor | Ast.Bbxor ->
      false

let type_error env op v =
  ignore env;
  let text, _ = binop_info op in
  Error.fail
    ~operand:(Symbolic.to_string v.Value.sym, Value.describe v)
    (Printf.sprintf "invalid operand of %s" text)

let pointee_size env v =
  match v.Value.typ with
  | Ctype.Ptr Ctype.Void -> 1
  | Ctype.Ptr (Ctype.Func _) ->
      Error.fail
        ~operand:(Symbolic.to_string v.Value.sym, Value.describe v)
        "arithmetic on a function pointer"
  | Ctype.Ptr t -> (
      try Layout.size_of env.Env.dbg.Dbgi.abi t
      with Layout.Incomplete what ->
        Error.failf "arithmetic on pointer to incomplete type %s" what)
  | _ -> assert false

let as_int64 v = match v.Value.st with Value.Rint i -> i | _ -> assert false

(* --- integer arithmetic under C semantics ------------------------------ *)

let shift_amount v = Int64.to_int (Int64.logand v 63L)

let int_binary env op ka a kb b sym =
  let abi = env.Env.dbg.Dbgi.abi in
  if is_comparison op then begin
    let k = Ctype.usual_arith_ikind abi (Ctype.promote_ikind abi ka) (Ctype.promote_ikind abi kb) in
    let a = Ctype.normalize abi k a and b = Ctype.normalize abi k b in
    let c =
      if Ctype.ikind_signed abi k then Int64.compare a b
      else Int64.unsigned_compare a b
    in
    let r =
      match op with
      | Ast.Blt -> c < 0
      | Ast.Bgt -> c > 0
      | Ast.Ble -> c <= 0
      | Ast.Bge -> c >= 0
      | Ast.Beq -> c = 0
      | Ast.Bne -> c <> 0
      | _ -> assert false
    in
    Value.int_value ~sym Ctype.int (if r then 1L else 0L)
  end
  else
    match op with
    | Ast.Bshl | Ast.Bshr ->
        let k = Ctype.promote_ikind abi ka in
        let a = Ctype.normalize abi k a in
        let n = shift_amount b in
        let raw =
          match op with
          | Ast.Bshl -> Int64.shift_left a n
          | Ast.Bshr ->
              if Ctype.ikind_signed abi k then Int64.shift_right a n
              else
                (* logical shift of the value confined to the kind's width *)
                let width = Ctype.ikind_size abi k * 8 in
                let masked =
                  if width >= 64 then a
                  else Int64.logand a (Int64.sub (Int64.shift_left 1L width) 1L)
                in
                Int64.shift_right_logical masked n
          | _ -> assert false
        in
        Value.int_value ~sym (Ctype.Integer k) (Ctype.normalize abi k raw)
    | _ ->
        let k = Ctype.usual_arith_ikind abi (Ctype.promote_ikind abi ka) (Ctype.promote_ikind abi kb) in
        let a = Ctype.normalize abi k a and b = Ctype.normalize abi k b in
        let signed = Ctype.ikind_signed abi k in
        let raw =
          match op with
          | Ast.Badd -> Int64.add a b
          | Ast.Bsub -> Int64.sub a b
          | Ast.Bmul -> Int64.mul a b
          | Ast.Bdiv ->
              if b = 0L then Error.fail "division by zero"
              else if signed then Int64.div a b
              else Int64.unsigned_div a b
          | Ast.Bmod ->
              if b = 0L then Error.fail "division by zero"
              else if signed then Int64.rem a b
              else Int64.unsigned_rem a b
          | Ast.Bband -> Int64.logand a b
          | Ast.Bbor -> Int64.logor a b
          | Ast.Bbxor -> Int64.logxor a b
          | _ -> assert false
        in
        Value.int_value ~sym (Ctype.Integer k) (Ctype.normalize abi k raw)

let float_binary op a b sym =
  if is_comparison op then
    let r =
      match op with
      | Ast.Blt -> a < b
      | Ast.Bgt -> a > b
      | Ast.Ble -> a <= b
      | Ast.Bge -> a >= b
      | Ast.Beq -> a = b
      | Ast.Bne -> a <> b
      | _ -> assert false
    in
    Value.int_value ~sym Ctype.int (if r then 1L else 0L)
  else
    let raw =
      match op with
      | Ast.Badd -> a +. b
      | Ast.Bsub -> a -. b
      | Ast.Bmul -> a *. b
      | Ast.Bdiv -> a /. b
      | Ast.Bmod -> Error.fail "% applied to floating operands"
      | _ -> Error.fail "bitwise operator applied to floating operands"
    in
    Value.float_value ~sym Ctype.double raw

let pointer_compare op a b sym =
  let c = Int64.unsigned_compare a b in
  let r =
    match op with
    | Ast.Blt -> c < 0
    | Ast.Bgt -> c > 0
    | Ast.Ble -> c <= 0
    | Ast.Bge -> c >= 0
    | Ast.Beq -> c = 0
    | Ast.Bne -> c <> 0
    | _ -> Error.fail "invalid arithmetic on pointers"
  in
  Value.int_value ~sym Ctype.int (if r then 1L else 0L)

(* Fetch an operand, tagging faults with the paper's "in x of x OP y"
   role description. *)
let fetch_operand env op ~role other v =
  if sym_on env then
    Error.with_context
      (Printf.sprintf "%s of %s%s%s"
         (Symbolic.to_string v.Value.sym)
         (Symbolic.to_string (if role = `Left then v.Value.sym else other.Value.sym))
         (fst (binop_info op))
         (Symbolic.to_string (if role = `Left then other.Value.sym else v.Value.sym)))
      (fun () -> Value.fetch env.Env.dbg v)
  else Value.fetch env.Env.dbg v

let binary env op lhs rhs =
  let dbg = env.Env.dbg in
  let a = fetch_operand env op ~role:`Left rhs lhs in
  let b = fetch_operand env op ~role:`Right lhs rhs in
  let sym = combine_sym env op a b in
  match (a.Value.typ, b.Value.typ) with
  | Ctype.Ptr _, Ctype.Ptr _ -> (
      match op with
      | Ast.Bsub ->
          let size = pointee_size env a in
          let diff = Int64.sub (as_int64 a) (as_int64 b) in
          Value.int_value ~sym Ctype.long (Int64.div diff (Int64.of_int size))
      | _ -> pointer_compare op (as_int64 a) (as_int64 b) sym)
  | Ctype.Ptr _, t when Ctype.is_integer t -> (
      match op with
      | Ast.Badd | Ast.Bsub ->
          let size = Int64.of_int (pointee_size env a) in
          let off = Int64.mul (Value.to_int64 dbg b) size in
          let base = as_int64 a in
          let addr =
            if op = Ast.Badd then Int64.add base off else Int64.sub base off
          in
          Value.int_value ~sym a.Value.typ addr
      | _ when is_comparison op ->
          pointer_compare op (as_int64 a) (Value.to_int64 dbg b) sym
      | _ -> type_error env op a)
  | t, Ctype.Ptr _ when Ctype.is_integer t -> (
      match op with
      | Ast.Badd ->
          let size = Int64.of_int (pointee_size env b) in
          let off = Int64.mul (Value.to_int64 dbg a) size in
          Value.int_value ~sym b.Value.typ (Int64.add (as_int64 b) off)
      | _ when is_comparison op ->
          pointer_compare op (Value.to_int64 dbg a) (as_int64 b) sym
      | _ -> type_error env op b)
  | ta, tb when Ctype.is_arith ta && Ctype.is_arith tb -> (
      match (Ctype.integer_kind ta, Ctype.integer_kind tb) with
      | Some ka, Some kb -> int_binary env op ka (as_int64 a) kb (as_int64 b) sym
      | _ -> float_binary op (Value.to_float dbg a) (Value.to_float dbg b) sym)
  | ta, _ when not (Ctype.is_scalar ta) -> type_error env op a
  | _, _ -> type_error env op b

let filter_holds env f lhs rhs =
  let op =
    match f with
    | Ast.Qlt -> Ast.Blt
    | Ast.Qgt -> Ast.Bgt
    | Ast.Qle -> Ast.Ble
    | Ast.Qge -> Ast.Bge
    | Ast.Qeq -> Ast.Beq
    | Ast.Qne -> Ast.Bne
  in
  as_int64 (binary env op lhs rhs) <> 0L

let values_equal env a b = as_int64 (binary env Ast.Beq a b) <> 0L

let unary env op operand =
  let dbg = env.Env.dbg in
  let mk_sym text v =
    if sym_on env then Symbolic.unary text v.Value.sym else no_sym
  in
  match op with
  | Ast.Uaddr -> (
      match operand.Value.st with
      | Value.Lval a ->
          Value.int_value ~sym:(mk_sym "&" operand)
            (Ctype.Ptr operand.Value.typ) (Int64.of_int a)
      | Value.Lbit _ ->
          Error.fail
            ~operand:(Symbolic.to_string operand.Value.sym, Value.describe operand)
            "cannot take the address of a bit-field"
      | Value.Rint _ | Value.Rfloat _ ->
          Error.fail
            ~operand:(Symbolic.to_string operand.Value.sym, Value.describe operand)
            "& requires an lvalue")
  | Ast.Uderef -> (
      let v = Value.fetch dbg operand in
      match v.Value.typ with
      | Ctype.Ptr t ->
          Value.lvalue ~sym:(mk_sym "*" v) t (Int64.to_int (as_int64 v))
      | _ ->
          Error.fail
            ~operand:(Symbolic.to_string v.Value.sym, Value.describe v)
            "* requires a pointer")
  | Ast.Unot ->
      let t = Value.truth dbg operand in
      Value.int_value ~sym:(mk_sym "!" operand) Ctype.int (if t then 0L else 1L)
  | Ast.Ubnot -> (
      let v = Value.fetch dbg operand in
      match Ctype.integer_kind v.Value.typ with
      | Some k ->
          let abi = dbg.Dbgi.abi in
          let k = Ctype.promote_ikind abi k in
          let raw = Int64.lognot (Ctype.normalize abi k (as_int64 v)) in
          Value.int_value ~sym:(mk_sym "~" v) (Ctype.Integer k)
            (Ctype.normalize abi k raw)
      | None ->
          Error.fail
            ~operand:(Symbolic.to_string v.Value.sym, Value.describe v)
            "~ requires an integer")
  | Ast.Uminus -> (
      let v = Value.fetch dbg operand in
      match (v.Value.st, Ctype.integer_kind v.Value.typ) with
      | Value.Rfloat f, _ ->
          Value.float_value ~sym:(mk_sym "-" v) v.Value.typ (-.f)
      | Value.Rint i, Some k ->
          let abi = dbg.Dbgi.abi in
          let k = Ctype.promote_ikind abi k in
          Value.int_value ~sym:(mk_sym "-" v) (Ctype.Integer k)
            (Ctype.normalize abi k (Int64.neg i))
      | _ ->
          Error.fail
            ~operand:(Symbolic.to_string v.Value.sym, Value.describe v)
            "- requires an arithmetic operand")
  | Ast.Uplus -> (
      let v = Value.fetch dbg operand in
      match (v.Value.st, Ctype.integer_kind v.Value.typ) with
      | Value.Rfloat _, _ -> v
      | Value.Rint i, Some k ->
          let abi = dbg.Dbgi.abi in
          let k = Ctype.promote_ikind abi k in
          Value.int_value ~sym:v.Value.sym (Ctype.Integer k)
            (Ctype.normalize abi k i)
      | _ ->
          Error.fail
            ~operand:(Symbolic.to_string v.Value.sym, Value.describe v)
            "+ requires an arithmetic operand")

let index env lhs rhs =
  let dbg = env.Env.dbg in
  let a = Value.fetch dbg lhs in
  let b = Value.fetch dbg rhs in
  let a, b = if Ctype.is_ptr b.Value.typ then (b, a) else (a, b) in
  match a.Value.typ with
  | Ctype.Ptr elt ->
      let size = pointee_size env a in
      let i = Value.to_int64 dbg b in
      let addr = Int64.to_int (as_int64 a) + (Int64.to_int i * size) in
      let sym =
        if sym_on env then
          Symbolic.postfix a.Value.sym
            ("[" ^ Symbolic.to_string b.Value.sym ^ "]")
        else no_sym
      in
      Value.lvalue ~sym elt addr
  | _ ->
      Error.fail
        ~operand:(Symbolic.to_string a.Value.sym, Value.describe a)
        "indexing requires a pointer or array"

let incdec env op operand =
  let dbg = env.Env.dbg in
  let old_v = Value.fetch dbg operand in
  let one = Value.int_value Ctype.int 1L in
  let delta =
    match op with
    | Ast.Preinc | Ast.Postinc -> Ast.Badd
    | Ast.Predec | Ast.Postdec -> Ast.Bsub
  in
  let new_v = binary env delta old_v one in
  let stored = Value.store dbg ~into:operand new_v in
  let text_pre, text_post =
    match op with
    | Ast.Preinc | Ast.Postinc -> ("++", "++")
    | Ast.Predec | Ast.Postdec -> ("--", "--")
  in
  match op with
  | Ast.Preinc | Ast.Predec ->
      if sym_on env then
        Value.with_sym stored (Symbolic.unary text_pre operand.Value.sym)
      else stored
  | Ast.Postinc | Ast.Postdec ->
      let sym =
        if sym_on env then Symbolic.postfix operand.Value.sym text_post
        else no_sym
      in
      Value.with_sym (Value.convert dbg operand.Value.typ old_v) sym

let assign env op lhs rhs =
  let dbg = env.Env.dbg in
  let rhs_v =
    match op with
    | None -> rhs
    | Some bop -> binary env bop (Value.fetch dbg lhs) rhs
  in
  Value.store dbg ~into:lhs rhs_v
