(** Abstract syntax of DUEL expressions.

    The node set mirrors the paper's operator inventory: all of C's
    expression operators (with C semantics), plus the DUEL generators —
    [to] ([e1..e2] and the [..e] / [e..] shorthands), [alternate] ([,]),
    the filtering comparisons ([>?] family), [with] ([.] and [->] with
    arbitrary right operands), graph expansion ([-->] depth-first, [-->>]
    breadth-first), [select] ([[[...]]]), [until] ([@]), index aliasing
    ([#]), sequence reductions ([#/], [+/], [&&/], [||/], [==/]), aliasing
    ([:=]), [imply] ([=>]), sequencing ([;]), display braces ([{e}]), and
    C control structures recast as expressions. *)

module Ctype = Duel_ctype.Ctype

type unop =
  | Uminus
  | Uplus
  | Unot  (** [!] *)
  | Ubnot  (** [~] *)
  | Uderef  (** [*] *)
  | Uaddr  (** [&] *)

type incdec = Preinc | Predec | Postinc | Postdec

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Blt
  | Bgt
  | Ble
  | Bge
  | Beq
  | Bne
  | Bshl
  | Bshr
  | Bband  (** bitwise [&] *)
  | Bbor
  | Bbxor

(** The filtering comparisons: [e1 OP? e2] yields [e1] when the comparison
    holds, and nothing otherwise. *)
type filter = Qlt | Qgt | Qle | Qge | Qeq | Qne

type reduction = Rcount  (** [#/] *) | Rsum  (** [+/] *) | Rall  (** [&&/] *) | Rany  (** [||/] *)

type with_kind = Wdot  (** [e1.e2] *) | Warrow  (** [e1->e2] *)

(** Type syntax for casts, [sizeof], and DUEL declarations.  Resolution to
    {!Ctype.t} happens at evaluation time, as in the paper ("type checking
    must be done during evaluation"). *)
type type_expr =
  | Tname of string list  (** base-specifier keywords, e.g. [unsigned int] *)
  | Tstruct_ref of string
  | Tunion_ref of string
  | Tenum_ref of string
  | Ttypedef_ref of string
  | Tptr of type_expr
  | Tarr of type_expr * expr option

and expr =
  | Int_lit of int64 * Ctype.t * string  (** value, C type, source lexeme *)
  | Float_lit of float * Ctype.t * string
  | Char_lit of char * string
  | Str_lit of string
  | Name of string
  | Underscore  (** [_], the innermost [with] operand *)
  | Unary of unop * expr
  | Incdec of incdec * expr
  | Binary of binop * expr * expr
  | Logand of expr * expr  (** [&&] with generator semantics *)
  | Logor of expr * expr
  | Filter of filter * expr * expr  (** [e1 >? e2] etc. *)
  | Cond of expr * expr * expr  (** C [?:] *)
  | Assign of binop option * expr * expr  (** [=] or [op=] *)
  | Cast of type_expr * expr
  | Call of expr * expr list
  | Index of expr * expr  (** [e1[e2]] *)
  | With of with_kind * expr * expr
  | To of expr * expr  (** [e1..e2] *)
  | To_inf of expr  (** [e..] *)
  | Up_to of expr  (** [..e], shorthand for [0..e-1] *)
  | Alt of expr * expr  (** [e1,e2] *)
  | Seq of expr * expr  (** [e1;e2] *)
  | Seq_void of expr  (** [e;] — trailing semicolon, effects only *)
  | Imply of expr * expr  (** [e1 => e2] *)
  | Def_alias of string * expr  (** [a := e] *)
  | Dfs of expr * expr  (** [e1 --> e2] *)
  | Bfs of expr * expr  (** [e1 -->> e2] *)
  | Select of expr * expr  (** [e1[[e2]]] *)
  | Until of expr * expr  (** [e1 @ e2] *)
  | Index_alias of expr * string  (** [e # name] *)
  | Reduce of reduction * expr
  | Seq_eq of expr * expr  (** [e1 ==/ e2] — the paper's [equality] *)
  | Braces of expr  (** [{e}] — substitute the value in symbolic output *)
  | Group of expr  (** [(e)] — kept for faithful "as entered" display *)
  | If of expr * expr * expr option
  | For of expr option * expr option * expr option * expr
  | While of expr * expr
  | Decl of type_expr * (string * type_expr) list
      (** [int i, *p;] — each declarator is (name, full type). *)
  | Sizeof_expr of expr
  | Sizeof_type of type_expr
  | Frame of expr  (** [frame(e)] — scope generator over frame locals *)
  | Frames_gen  (** [frames] — generator of active frame indices *)

(** Structural equality ignoring source lexemes (used by differential
    engine tests to compare reparsed trees). *)
let rec equal_expr a b =
  match (a, b) with
  | Int_lit (v1, t1, _), Int_lit (v2, t2, _) -> v1 = v2 && Ctype.equal t1 t2
  | Float_lit (v1, t1, _), Float_lit (v2, t2, _) -> v1 = v2 && Ctype.equal t1 t2
  | Char_lit (c1, _), Char_lit (c2, _) -> c1 = c2
  | Str_lit s1, Str_lit s2 -> s1 = s2
  | Name n1, Name n2 -> n1 = n2
  | Underscore, Underscore -> true
  | Unary (o1, e1), Unary (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Incdec (o1, e1), Incdec (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Binary (o1, a1, b1), Binary (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Logand (a1, b1), Logand (a2, b2) | Logor (a1, b1), Logor (a2, b2) ->
      equal_expr a1 a2 && equal_expr b1 b2
  | Filter (o1, a1, b1), Filter (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Cond (a1, b1, c1), Cond (a2, b2, c2) ->
      equal_expr a1 a2 && equal_expr b1 b2 && equal_expr c1 c2
  | Assign (o1, a1, b1), Assign (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Cast (t1, e1), Cast (t2, e2) -> equal_type_expr t1 t2 && equal_expr e1 e2
  | Call (f1, a1), Call (f2, a2) ->
      equal_expr f1 f2
      && List.length a1 = List.length a2
      && List.for_all2 equal_expr a1 a2
  | Index (a1, b1), Index (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | With (k1, a1, b1), With (k2, a2, b2) ->
      k1 = k2 && equal_expr a1 a2 && equal_expr b1 b2
  | To (a1, b1), To (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | To_inf e1, To_inf e2 | Up_to e1, Up_to e2 -> equal_expr e1 e2
  | Alt (a1, b1), Alt (a2, b2)
  | Seq (a1, b1), Seq (a2, b2)
  | Imply (a1, b1), Imply (a2, b2)
  | Dfs (a1, b1), Dfs (a2, b2)
  | Bfs (a1, b1), Bfs (a2, b2)
  | Select (a1, b1), Select (a2, b2)
  | Until (a1, b1), Until (a2, b2)
  | Seq_eq (a1, b1), Seq_eq (a2, b2)
  | While (a1, b1), While (a2, b2) ->
      equal_expr a1 a2 && equal_expr b1 b2
  | Seq_void e1, Seq_void e2 -> equal_expr e1 e2
  | Def_alias (n1, e1), Def_alias (n2, e2) -> n1 = n2 && equal_expr e1 e2
  | Index_alias (e1, n1), Index_alias (e2, n2) -> n1 = n2 && equal_expr e1 e2
  | Reduce (r1, e1), Reduce (r2, e2) -> r1 = r2 && equal_expr e1 e2
  | Braces e1, Braces e2 | Group e1, Group e2 -> equal_expr e1 e2
  | If (c1, t1, e1), If (c2, t2, e2) ->
      equal_expr c1 c2 && equal_expr t1 t2 && Option.equal equal_expr e1 e2
  | For (i1, c1, s1, b1), For (i2, c2, s2, b2) ->
      Option.equal equal_expr i1 i2
      && Option.equal equal_expr c1 c2
      && Option.equal equal_expr s1 s2
      && equal_expr b1 b2
  | Decl (t1, d1), Decl (t2, d2) ->
      equal_type_expr t1 t2
      && List.length d1 = List.length d2
      && List.for_all2
           (fun (n1, ty1) (n2, ty2) -> n1 = n2 && equal_type_expr ty1 ty2)
           d1 d2
  | Sizeof_expr e1, Sizeof_expr e2 -> equal_expr e1 e2
  | Sizeof_type t1, Sizeof_type t2 -> equal_type_expr t1 t2
  | Frame e1, Frame e2 -> equal_expr e1 e2
  | Frames_gen, Frames_gen -> true
  | _, _ -> false

and equal_type_expr a b =
  match (a, b) with
  | Tname w1, Tname w2 -> w1 = w2
  | Tstruct_ref t1, Tstruct_ref t2
  | Tunion_ref t1, Tunion_ref t2
  | Tenum_ref t1, Tenum_ref t2
  | Ttypedef_ref t1, Ttypedef_ref t2 ->
      t1 = t2
  | Tptr t1, Tptr t2 -> equal_type_expr t1 t2
  | Tarr (t1, e1), Tarr (t2, e2) ->
      equal_type_expr t1 t2 && Option.equal equal_expr e1 e2
  | _, _ -> false
