module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Tenv = Duel_ctype.Tenv
module Dbgi = Duel_dbgi.Dbgi

let max_array_elems = 24
let max_string_len = 200
let max_depth = 4

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let char_escape c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c when Char.code c >= 32 && Char.code c < 127 -> String.make 1 c
  | c -> Printf.sprintf "\\%03o" (Char.code c)

let string_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\'' -> Buffer.add_char b '\''
      | c -> Buffer.add_string b (char_escape c))
    s;
  Buffer.contents b

let read_c_string env addr =
  let dbg = env.Env.dbg in
  let b = Buffer.create 16 in
  let rec go i =
    if i < max_string_len then
      match dbg.Dbgi.get_bytes ~addr:(addr + i) ~len:1 with
      | bytes -> (
          match Bytes.get bytes 0 with
          | '\000' -> Some (Buffer.contents b)
          | c ->
              Buffer.add_char b c;
              go (i + 1))
      | exception Dbgi.Target_fault _ -> None
    else Some (Buffer.contents b ^ "...")
  in
  go 0

let enum_name (e : Ctype.enum_info) v =
  List.find_opt (fun (_, x) -> Int64.equal x v) e.Ctype.enum_items
  |> Option.map fst

let is_char_type = function
  | Ctype.Integer (Ctype.Char | Ctype.SChar | Ctype.UChar) -> true
  | _ -> false

let rec render env depth (v : Value.t) =
  let dbg = env.Env.dbg in
  match v.Value.typ with
  | Ctype.Comp c -> render_comp env depth c (Value.addr_of v)
  | Ctype.Array (elt, n) -> render_array env depth elt n (Value.addr_of v)
  | Ctype.Func _ -> (
      match v.Value.st with
      | Value.Lval a -> Printf.sprintf "<function at 0x%x>" a
      | _ -> "<function>")
  | _ -> (
      let v = Value.fetch dbg v in
      match (v.Value.st, v.Value.typ) with
      | Value.Rint i, Ctype.Ptr inner when not (Int64.equal i 0L) && is_char_type inner
        -> (
          match read_c_string env (Int64.to_int i) with
          | Some s -> Printf.sprintf "\"%s\"" (string_escape s)
          | None -> Printf.sprintf "0x%Lx <unreadable>" i)
      | Value.Rint i, Ctype.Ptr _ -> Printf.sprintf "0x%Lx" i
      | Value.Rint i, Ctype.Enum e -> (
          match enum_name e i with
          | Some name -> name
          | None -> Int64.to_string i)
      | Value.Rint i, t when is_char_type t ->
          let c = Int64.to_int (Int64.logand i 0xffL) in
          Printf.sprintf "%Ld '%s'" i (char_escape (Char.chr c))
      | Value.Rint i, Ctype.Integer (Ctype.UInt | Ctype.ULong | Ctype.ULLong | Ctype.UShort)
        ->
          Printf.sprintf "%Lu" i
      | Value.Rint i, _ -> Int64.to_string i
      | Value.Rfloat f, _ -> float_to_string f
      | (Value.Lval _ | Value.Lbit _), _ -> Value.describe v)

and render_comp env depth c addr =
  if depth >= max_depth then "{...}"
  else
    let abi = env.Env.dbg.Dbgi.abi in
    match c.Ctype.comp_fields with
    | None -> "<incomplete>"
    | Some _ ->
        let fields = Layout.fields_of abi c in
        let render_field (fi : Layout.field_info) =
          let f = fi.Layout.fi_field in
          let fv =
            match f.Ctype.f_bits with
            | Some width ->
                Value.make f.Ctype.f_type
                  (Value.Lbit
                     {
                       addr = addr + fi.Layout.fi_offset;
                       unit_size = Layout.size_of abi f.Ctype.f_type;
                       bit_off = fi.Layout.fi_bit_off;
                       width;
                     })
                  (Symbolic.atom f.Ctype.f_name)
            | None ->
                Value.lvalue
                  ~sym:(Symbolic.atom f.Ctype.f_name)
                  f.Ctype.f_type
                  (addr + fi.Layout.fi_offset)
          in
          match render env (depth + 1) fv with
          | s -> Printf.sprintf "%s = %s" f.Ctype.f_name s
          | exception Error.Duel_error _ ->
              Printf.sprintf "%s = <unreadable>" f.Ctype.f_name
        in
        "{" ^ String.concat ", " (List.map render_field fields) ^ "}"

and render_array env depth elt n addr =
  let abi = env.Env.dbg.Dbgi.abi in
  if is_char_type elt then
    match read_c_string env addr with
    | Some s -> Printf.sprintf "\"%s\"" (string_escape s)
    | None -> "<unreadable>"
  else
    match n with
    | None -> Printf.sprintf "0x%x" addr
    | Some n ->
        let size = try Layout.size_of abi elt with Layout.Incomplete _ -> 0 in
        let shown = min n max_array_elems in
        let elems =
          List.init shown (fun i ->
              let ev =
                Value.lvalue ~sym:(Symbolic.atom "elt") elt (addr + (i * size))
              in
              match render env (depth + 1) ev with
              | s -> s
              | exception Error.Duel_error _ -> "<unreadable>")
        in
        let elems = if shown < n then elems @ [ "..." ] else elems in
        "{" ^ String.concat ", " elems ^ "}"

let value_to_string env v = render env 0 v

let scalar_literal env v =
  let v = Value.fetch env.Env.dbg v in
  match v.Value.st with
  | Value.Rint i -> (
      match v.Value.typ with
      | Ctype.Ptr _ -> Printf.sprintf "0x%Lx" i
      | _ -> Int64.to_string i)
  | Value.Rfloat f -> float_to_string f
  | Value.Lval _ | Value.Lbit _ -> Value.describe v
