lib/core/error.ml: Buffer Printf
