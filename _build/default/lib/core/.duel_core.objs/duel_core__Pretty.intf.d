lib/core/pretty.mli: Ast
