lib/core/parser.ml: Array Ast Lexer List Printf Token
