lib/core/env.ml: Bytes Duel_ctype Duel_dbgi Error Hashtbl List String Symbolic Value
