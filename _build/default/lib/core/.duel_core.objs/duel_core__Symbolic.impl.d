lib/core/symbolic.ml: Buffer Printf String
