lib/core/ast.ml: Duel_ctype List Option
