lib/core/token.ml: Duel_ctype Printf
