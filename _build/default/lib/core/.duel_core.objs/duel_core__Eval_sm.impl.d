lib/core/eval_sm.ml: Array Ast Duel_ctype Duel_dbgi Either Env Error Fun Hashtbl Int64 List Ops Option Pretty Printer Printf Semantics Seq Symbolic Value
