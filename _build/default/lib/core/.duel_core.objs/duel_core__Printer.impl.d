lib/core/printer.ml: Buffer Bytes Char Duel_ctype Duel_dbgi Env Error Float Int64 List Option Printf String Symbolic Value
