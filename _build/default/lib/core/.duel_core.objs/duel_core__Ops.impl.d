lib/core/ops.ml: Ast Duel_ctype Duel_dbgi Env Error Int64 Printf Symbolic Value
