lib/core/lexer.mli: Duel_ctype Token
