lib/core/semantics.mli: Ast Duel_ctype Either Env Symbolic Value
