lib/core/value.ml: Bytes Char Duel_ctype Duel_dbgi Error Int32 Int64 Printf Symbolic
