lib/core/ops.mli: Ast Env Symbolic Value
