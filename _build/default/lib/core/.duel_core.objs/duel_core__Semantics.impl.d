lib/core/semantics.ml: Ast Char Duel_ctype Duel_dbgi Either Env Error Int64 List Option Printf String Symbolic Value
