lib/core/eval_sm.mli: Ast Env Seq Value
