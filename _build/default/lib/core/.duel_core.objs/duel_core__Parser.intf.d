lib/core/parser.mli: Ast Duel_ctype Token
