lib/core/env.mli: Duel_dbgi Hashtbl Value
