lib/core/session.ml: Ast Duel_ctype Duel_dbgi Env Error Eval_seq Eval_sm Lexer List Parser Printer Printexc Printf Seq String Symbolic Value
