lib/core/eval_seq.ml: Array Ast Duel_ctype Duel_dbgi Either Env Error Fun Hashtbl Int64 List Ops Pretty Printer Printf Semantics Seq Symbolic Value
