lib/core/pretty.ml: Ast Char List Printf String Symbolic
