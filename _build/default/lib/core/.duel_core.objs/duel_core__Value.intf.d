lib/core/value.mli: Duel_ctype Duel_dbgi Symbolic
