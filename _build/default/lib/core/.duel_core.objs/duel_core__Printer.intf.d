lib/core/printer.mli: Env Value
