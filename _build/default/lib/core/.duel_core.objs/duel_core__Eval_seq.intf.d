lib/core/eval_seq.mli: Ast Env Seq Value
