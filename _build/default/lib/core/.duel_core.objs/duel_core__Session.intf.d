lib/core/session.mli: Ast Duel_dbgi Env Seq Value
