lib/core/lexer.ml: Buffer Char Duel_ctype Int64 List Printf String Token
