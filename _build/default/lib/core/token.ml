(** Lexical tokens of DUEL. *)

module Ctype = Duel_ctype.Ctype

type t =
  | INT of int64 * Ctype.t * string  (** value, type, source lexeme *)
  | FLT of float * Ctype.t * string
  | CHR of char * string
  | STR of string
  | ID of string
  | KIF
  | KELSE
  | KFOR
  | KWHILE
  | KSIZEOF
  | KSTRUCT
  | KUNION
  | KENUM
  | KINT
  | KCHAR
  | KLONG
  | KSHORT
  | KSIGNED
  | KUNSIGNED
  | KFLOAT
  | KDOUBLE
  | KVOID
  | KBOOL
  | KFRAME
  | KFRAMES
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | LSELECT  (** [[[] *)
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | QUESTION
  | COLON
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | SHL
  | SHR
  | INC
  | DEC
  | DOT
  | ARROW
  | DFS  (** [-->] *)
  | BFS  (** [-->>] *)
  | DOTDOT
  | QLT
  | QGT
  | QLE
  | QGE
  | QEQ
  | QNE
  | ASSIGN
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PERCENTEQ
  | AMPEQ
  | PIPEEQ
  | CARETEQ
  | SHLEQ
  | SHREQ
  | DEFINE  (** [:=] *)
  | IMPLY  (** [=>] *)
  | HASH
  | COUNTOF  (** [#/] *)
  | SUMOF  (** [+/] *)
  | ALLOF  (** [&&/] *)
  | ANYOF  (** [||/] *)
  | SEQEQ  (** [==/] *)
  | AT
  | UNDER  (** [_] *)
  | EOF

let describe = function
  | INT (_, _, s) | FLT (_, _, s) -> s
  | CHR (_, s) -> s
  | STR s -> Printf.sprintf "%S" s
  | ID s -> s
  | KIF -> "if"
  | KELSE -> "else"
  | KFOR -> "for"
  | KWHILE -> "while"
  | KSIZEOF -> "sizeof"
  | KSTRUCT -> "struct"
  | KUNION -> "union"
  | KENUM -> "enum"
  | KINT -> "int"
  | KCHAR -> "char"
  | KLONG -> "long"
  | KSHORT -> "short"
  | KSIGNED -> "signed"
  | KUNSIGNED -> "unsigned"
  | KFLOAT -> "float"
  | KDOUBLE -> "double"
  | KVOID -> "void"
  | KBOOL -> "_Bool"
  | KFRAME -> "frame"
  | KFRAMES -> "frames"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACK -> "["
  | RBRACK -> "]"
  | LSELECT -> "[["
  | LBRACE -> "{"
  | RBRACE -> "}"
  | SEMI -> ";"
  | COMMA -> ","
  | QUESTION -> "?"
  | COLON -> ":"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | SHL -> "<<"
  | SHR -> ">>"
  | INC -> "++"
  | DEC -> "--"
  | DOT -> "."
  | ARROW -> "->"
  | DFS -> "-->"
  | BFS -> "-->>"
  | DOTDOT -> ".."
  | QLT -> "<?"
  | QGT -> ">?"
  | QLE -> "<=?"
  | QGE -> ">=?"
  | QEQ -> "==?"
  | QNE -> "!=?"
  | ASSIGN -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PERCENTEQ -> "%="
  | AMPEQ -> "&="
  | PIPEEQ -> "|="
  | CARETEQ -> "^="
  | SHLEQ -> "<<="
  | SHREQ -> ">>="
  | DEFINE -> ":="
  | IMPLY -> "=>"
  | HASH -> "#"
  | COUNTOF -> "#/"
  | SUMOF -> "+/"
  | ALLOF -> "&&/"
  | ANYOF -> "||/"
  | SEQEQ -> "==/"
  | AT -> "@"
  | UNDER -> "_"
  | EOF -> "<end of expression>"
