module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Tenv = Duel_ctype.Tenv
module Dbgi = Duel_dbgi.Dbgi

let no_sym = Symbolic.atom "?"
let sym_on env = env.Env.flags.Env.symbolic

(* --- type resolution ---------------------------------------------------- *)

let base_of_words words =
  let canon = List.sort compare words in
  match canon with
  | [ "void" ] -> Ctype.Void
  | [ "char" ] -> Ctype.char
  | [ "char"; "signed" ] -> Ctype.schar
  | [ "char"; "unsigned" ] -> Ctype.uchar
  | [ "short" ] | [ "int"; "short" ] | [ "short"; "signed" ] | [ "int"; "short"; "signed" ]
    ->
      Ctype.short
  | [ "short"; "unsigned" ] | [ "int"; "short"; "unsigned" ] -> Ctype.ushort
  | [ "int" ] | [ "signed" ] | [ "int"; "signed" ] -> Ctype.int
  | [ "unsigned" ] | [ "int"; "unsigned" ] -> Ctype.uint
  | [ "long" ] | [ "int"; "long" ] | [ "long"; "signed" ] | [ "int"; "long"; "signed" ] ->
      Ctype.long
  | [ "long"; "unsigned" ] | [ "int"; "long"; "unsigned" ] -> Ctype.ulong
  | [ "long"; "long" ] | [ "int"; "long"; "long" ] | [ "long"; "long"; "signed" ]
  | [ "int"; "long"; "long"; "signed" ] ->
      Ctype.llong
  | [ "long"; "long"; "unsigned" ] | [ "int"; "long"; "long"; "unsigned" ] ->
      Ctype.ullong
  | [ "float" ] -> Ctype.float
  | [ "double" ] -> Ctype.double
  | [ "double"; "long" ] -> Ctype.ldouble
  | [ "_Bool" ] -> Ctype.bool
  | words -> Error.failf "invalid type specifier '%s'" (String.concat " " words)

let rec resolve_type env ~eval_int te =
  let tenv = env.Env.dbg.Dbgi.tenv in
  match te with
  | Ast.Tname words -> base_of_words words
  | Ast.Tstruct_ref tag -> (
      match Tenv.find_struct tenv tag with
      | Some c -> Ctype.Comp c
      | None -> Error.failf "no struct named %s" tag)
  | Ast.Tunion_ref tag -> (
      match Tenv.find_union tenv tag with
      | Some c -> Ctype.Comp c
      | None -> Error.failf "no union named %s" tag)
  | Ast.Tenum_ref tag -> (
      match Tenv.find_enum tenv tag with
      | Some e -> Ctype.Enum e
      | None -> Error.failf "no enum named %s" tag)
  | Ast.Ttypedef_ref name -> (
      match Tenv.find_typedef tenv name with
      | Some t -> t
      | None -> Error.failf "no typedef named %s" name)
  | Ast.Tptr inner -> Ctype.Ptr (resolve_type env ~eval_int inner)
  | Ast.Tarr (inner, dim) ->
      let n = Option.map (fun e -> Int64.to_int (eval_int e)) dim in
      Ctype.Array (resolve_type env ~eval_int inner, n)

(* --- literals ----------------------------------------------------------- *)

let literal env e =
  match e with
  | Ast.Int_lit (v, t, lex) ->
      Some (Value.int_value ~sym:(Symbolic.atom lex) t v)
  | Ast.Float_lit (v, t, lex) ->
      Some (Value.float_value ~sym:(Symbolic.atom lex) t v)
  | Ast.Char_lit (c, lex) ->
      Some
        (Value.int_value ~sym:(Symbolic.atom lex) Ctype.char
           (Int64.of_int (Char.code c)))
  | Ast.Str_lit s ->
      let addr = Env.string_literal env s in
      Some
        (Value.lvalue
           ~sym:(Symbolic.atom (Printf.sprintf "%S" s))
           (Ctype.Array (Ctype.char, Some (String.length s + 1)))
           addr)
  | _ -> None

(* --- with scopes -------------------------------------------------------- *)

let field_value env ~comp ~addr ~base_sym ~sep name =
  let abi = env.Env.dbg.Dbgi.abi in
  match Layout.find_field abi comp name with
  | None -> None
  | Some fi ->
      let f = fi.Layout.fi_field in
      let sym =
        if sym_on env then Symbolic.member base_sym sep name else no_sym
      in
      let v =
        match f.Ctype.f_bits with
        | Some width ->
            Value.make f.Ctype.f_type
              (Value.Lbit
                 {
                   addr = addr + fi.Layout.fi_offset;
                   unit_size = Layout.size_of abi f.Ctype.f_type;
                   bit_off = fi.Layout.fi_bit_off;
                   width;
                 })
              sym
        | None ->
            Value.lvalue ~sym f.Ctype.f_type (addr + fi.Layout.fi_offset)
      in
      Some v

let comp_scope env value comp addr sep =
  {
    Env.sc_value = value;
    sc_lookup =
      (fun name ->
        field_value env ~comp ~addr ~base_sym:value.Value.sym ~sep name);
  }

let plain_scope value =
  { Env.sc_value = value; sc_lookup = (fun _ -> None) }

let with_scope env kind u =
  let dbg = env.Env.dbg in
  match kind with
  | Ast.Wdot -> (
      match (u.Value.typ, u.Value.st) with
      | Ctype.Comp c, (Value.Lval addr | Value.Lbit { addr; _ }) ->
          comp_scope env u c addr "."
      | _ -> plain_scope u)
  | Ast.Warrow -> (
      let uf = Value.fetch dbg u in
      match uf.Value.typ with
      | Ctype.Ptr (Ctype.Comp c) -> (
          match uf.Value.st with
          | Value.Rint p -> comp_scope env uf c (Int64.to_int p) "->"
          | _ -> plain_scope uf)
      | Ctype.Ptr _ -> plain_scope uf
      | _ ->
          Error.fail
            ~operand:(Symbolic.to_string uf.Value.sym, Value.describe uf)
            "-> applied to a non-pointer")

let node_scope env u =
  let dbg = env.Env.dbg in
  match (u.Value.typ, u.Value.st) with
  | Ctype.Comp c, (Value.Lval addr | Value.Lbit { addr; _ }) ->
      comp_scope env u c addr "."
  | _ -> (
      let uf = Value.fetch dbg u in
      match (uf.Value.typ, uf.Value.st) with
      | Ctype.Ptr (Ctype.Comp c), Value.Rint p ->
          comp_scope env uf c (Int64.to_int p) "->"
      | _ -> plain_scope uf)

let frame_count env = List.length (env.Env.dbg.Dbgi.frames ())

let frame_scope env i =
  let frames = env.Env.dbg.Dbgi.frames () in
  match List.nth_opt frames i with
  | None -> Error.failf "no active frame %d (of %d)" i (List.length frames)
  | Some fr ->
      let base = Printf.sprintf "frame(%d)" i in
      let value =
        Value.int_value ~sym:(Symbolic.atom base) Ctype.int (Int64.of_int i)
      in
      {
        Env.sc_value = value;
        sc_lookup =
          (fun name ->
            match List.assoc_opt name fr.Dbgi.fr_locals with
            | None -> None
            | Some info ->
                let sym =
                  if sym_on env then
                    Symbolic.member (Symbolic.atom base) "." name
                  else no_sym
                in
                Some (Value.lvalue ~sym info.Dbgi.v_type info.Dbgi.v_addr));
      }

(* --- traversal ---------------------------------------------------------- *)

let traversal_child_ok env w =
  let dbg = env.Env.dbg in
  match Value.fetch dbg w with
  | wf -> (
      match (wf.Value.st, wf.Value.typ) with
      | Value.Rint 0L, _ -> None
      | Value.Rint p, Ctype.Ptr t ->
          let len =
            match Layout.size_of dbg.Dbgi.abi t with
            | n -> n
            | exception Layout.Incomplete _ -> 1
          in
          if Dbgi.readable dbg ~addr:(Int64.to_int p) ~len then Some wf
          else None
      | Value.Rint _, _ -> Some wf
      | Value.Rfloat f, _ -> if f = 0.0 then None else Some wf
      | (Value.Lval _ | Value.Lbit _), _ -> Some wf)
  | exception Error.Duel_error _ -> None

(* --- calls -------------------------------------------------------------- *)

let default_promote env v =
  let dbg = env.Env.dbg in
  let v = Value.fetch dbg v in
  match v.Value.typ with
  | Ctype.Floating Ctype.Float -> Value.convert dbg Ctype.double v
  | t -> (
      match Ctype.integer_kind t with
      | Some k ->
          let pk = Ctype.promote_ikind dbg.Dbgi.abi k in
          if pk = k then v else Value.convert dbg (Ctype.Integer pk) v
      | None -> v)

let call_function env callee args =
  let dbg = env.Env.dbg in
  let name =
    match callee with
    | Ast.Name n -> n
    | _ -> Error.fail "only named functions can be called"
  in
  let ftype =
    match dbg.Dbgi.find_variable name with
    | Some { Dbgi.v_type = Ctype.Func ft; _ } -> Some ft
    | Some { Dbgi.v_type = Ctype.Ptr (Ctype.Func ft); _ } -> Some ft
    | _ -> None
  in
  let converted =
    match ftype with
    | None -> List.map (default_promote env) args
    | Some ft ->
        let rec conv params args =
          match (params, args) with
          | _, [] -> []
          | [], rest -> List.map (default_promote env) rest
          | p :: ps, a :: rest ->
              Value.convert dbg (Ctype.decay p) a :: conv ps rest
        in
        conv ft.Ctype.params args
  in
  let cvals = List.map (Value.to_cval dbg) converted in
  let result =
    try dbg.Dbgi.call_func name cvals
    with Failure msg -> Error.fail msg
  in
  let sym =
    if sym_on env then
      Symbolic.postfix (Symbolic.atom name)
        ("("
        ^ String.concat ", "
            (List.map (fun a -> Symbolic.to_string a.Value.sym) args)
        ^ ")")
    else no_sym
  in
  Value.of_cval result sym

(* --- reductions --------------------------------------------------------- *)

let sum_step env acc v =
  let dbg = env.Env.dbg in
  let vf = Value.fetch dbg v in
  match (acc, vf.Value.st) with
  | Either.Left i, Value.Rint j -> Either.Left (Int64.add i j)
  | Either.Left i, Value.Rfloat f -> Either.Right (Int64.to_float i +. f)
  | Either.Right f, _ -> Either.Right (f +. Value.to_float dbg vf)
  | Either.Left _, (Value.Lval _ | Value.Lbit _) ->
      Error.fail
        ~operand:(Symbolic.to_string v.Value.sym, Value.describe v)
        "+/ requires scalar values"

let sum_result _env ~sym = function
  | Either.Left i -> Value.int_value ~sym Ctype.long i
  | Either.Right f -> Value.float_value ~sym Ctype.double f
