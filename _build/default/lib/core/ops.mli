(** Application of C operators to DUEL values.

    The paper keeps "its own implementation of the C operators" (about 1200
    lines of C); this is that layer.  All functions fetch their operands
    (rvalue conversion) as needed, implement C's usual arithmetic
    conversions, unsigned wraparound, pointer arithmetic and comparison,
    and compose symbolic values with minimal parenthesization. *)

val binary : Env.t -> Ast.binop -> Value.t -> Value.t -> Value.t
(** @raise Error.Duel_error on division by zero and type errors. *)

val filter_holds : Env.t -> Ast.filter -> Value.t -> Value.t -> bool
(** The comparison behind [e1 >? e2] (same semantics as C's [>]). *)

val values_equal : Env.t -> Value.t -> Value.t -> bool
(** C [==] as a boolean — used by [==/] and the [@] constant form. *)

val unary : Env.t -> Ast.unop -> Value.t -> Value.t
val incdec : Env.t -> Ast.incdec -> Value.t -> Value.t
val index : Env.t -> Value.t -> Value.t -> Value.t
(** C indexing: [a[i]] is [*(a + i)]; the symbolic value is [a[i]] with the
    index's symbolic (which for generators is the current value). *)

val assign : Env.t -> Ast.binop option -> Value.t -> Value.t -> Value.t
(** [=] and the compound assignments. *)

val int_result : Env.t -> ?sym:Symbolic.t -> int64 -> Value.t
(** An [int]-typed rvalue (for counts, truth values, and reductions). *)
