(** Evaluation environment: the alias table, the [with]-scope
    name-resolution stack, per-session flags, and the debugger handle.

    Name resolution order (paper: "C's scope rules apply", extended by
    [with] scopes and aliases): innermost [with] scopes first, then
    aliases (including DUEL declarations and [#] index aliases), then the
    innermost frame's locals, then globals and functions, then enumeration
    constants. *)

module Dbgi = Duel_dbgi.Dbgi

type scope = {
  sc_value : Value.t;  (** what [_] refers to *)
  sc_lookup : string -> Value.t option;
      (** member resolution, producing values with qualified symbolics
          such as [hash[42]->scope] *)
}

type flags = {
  mutable symbolic : bool;
      (** compute symbolic values (on by default; the B3 bench measures
          the paper's claim that this dominates evaluation cost) *)
  mutable cycle_detect : bool;
      (** detect cycles in [-->]/[-->>] (off by default, matching the
          paper's implementation; on to traverse cyclic lists safely) *)
  mutable compress : int;  (** [-->a[[n]]] compression threshold *)
  mutable expansion_limit : int;
      (** safety cap on nodes yielded by one [-->]; 0 = unlimited *)
}

type t = {
  dbg : Dbgi.t;
  aliases : (string, Value.t) Hashtbl.t;
  mutable scopes : scope list;
  strings : (string, int) Hashtbl.t;  (** interned target string literals *)
  flags : flags;
}

val create : Dbgi.t -> t
val default_flags : unit -> flags

val lookup : t -> string -> Value.t
(** @raise Error.Duel_error on undefined names. *)

val define_alias : t -> string -> Value.t -> unit
val find_alias : t -> string -> Value.t option
val push_scope : t -> scope -> unit
val pop_scope : t -> unit

val current_scope : t -> scope
(** Innermost scope, for [_].  @raise Error.Duel_error if none. *)

val scope_depth : t -> int
val restore_scope_depth : t -> int -> unit
(** Drop scopes down to a saved depth — used by operators that abandon a
    subsequence early ([@], select) so the stack cannot leak. *)

val string_literal : t -> string -> int
(** Target address of an interned copy of a string literal. *)
