(** Hand-written DUEL lexer (the paper pairs a hand-written lexer with a
    yacc parser; our parser is recursive descent).

    Maximal munch over the extended operator set, with two DUEL-specific
    wrinkles: [1..3] lexes as integer–[..]–integer rather than a float
    ([1.] followed by [.3]), and [ ]] ] is always two [RBRACK]s so that
    [a[b[0]]] still parses (the select closer is matched as two tokens by
    the parser).  [##] starts a comment running to the end of the line
    (gdb reserves a single [#]). *)

exception Error of string * int
(** Lexical error: message and byte offset. *)

val tokenize : abi:Duel_ctype.Abi.t -> string -> (Token.t * int) list
(** Token stream with byte offsets, ending in [(EOF, _)].  Integer literals
    are typed by C's rules under the given ABI (decimal: first of
    int/long/long long that fits; hex/octal: also the unsigned kinds;
    [u]/[l]/[ll] suffixes as in C). *)
