module T = Token

exception Error of string * int

type state = {
  toks : (T.t * int) array;
  mutable pos : int;
  is_typename : string -> bool;
}

let fail st msg =
  let _, off = st.toks.(st.pos) in
  raise (Error (msg, off))

let peek st = fst st.toks.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else T.EOF

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let eat st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (T.describe tok)
         (T.describe (peek st)))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

(* --- type syntax ------------------------------------------------------- *)

let base_type_keyword = function
  | T.KINT | T.KCHAR | T.KLONG | T.KSHORT | T.KSIGNED | T.KUNSIGNED
  | T.KFLOAT | T.KDOUBLE | T.KVOID | T.KBOOL ->
      true
  | _ -> false

(* Does the current token start a type name?  Used to tell casts from
   parenthesized expressions and declarations from expressions. *)
let starts_type st =
  match peek st with
  | T.KSTRUCT | T.KUNION | T.KENUM -> true
  | t when base_type_keyword t -> true
  | T.ID name -> st.is_typename name
  | _ -> false

let base_word = function
  | T.KINT -> "int"
  | T.KCHAR -> "char"
  | T.KLONG -> "long"
  | T.KSHORT -> "short"
  | T.KSIGNED -> "signed"
  | T.KUNSIGNED -> "unsigned"
  | T.KFLOAT -> "float"
  | T.KDOUBLE -> "double"
  | T.KVOID -> "void"
  | T.KBOOL -> "_Bool"
  | _ -> assert false

let parse_base_type st =
  match peek st with
  | T.KSTRUCT ->
      advance st;
      (match peek st with
      | T.ID tag ->
          advance st;
          Ast.Tstruct_ref tag
      | _ -> fail st "expected struct tag")
  | T.KUNION ->
      advance st;
      (match peek st with
      | T.ID tag ->
          advance st;
          Ast.Tunion_ref tag
      | _ -> fail st "expected union tag")
  | T.KENUM ->
      advance st;
      (match peek st with
      | T.ID tag ->
          advance st;
          Ast.Tenum_ref tag
      | _ -> fail st "expected enum tag")
  | T.ID name when st.is_typename name ->
      advance st;
      Ast.Ttypedef_ref name
  | t when base_type_keyword t ->
      let words = ref [] in
      while base_type_keyword (peek st) do
        words := base_word (peek st) :: !words;
        advance st
      done;
      Ast.Tname (List.rev !words)
  | _ -> fail st "expected a type name"

(* --- expression grammar ------------------------------------------------ *)

let starts_expression = function
  | T.INT _ | T.FLT _ | T.CHR _ | T.STR _ | T.ID _ | T.UNDER | T.LPAREN
  | T.LBRACE | T.MINUS | T.PLUS | T.BANG | T.TILDE | T.STAR | T.AMP | T.INC
  | T.DEC | T.KSIZEOF | T.KIF | T.KFOR | T.KWHILE | T.KFRAME | T.KFRAMES
  | T.COUNTOF | T.SUMOF | T.ALLOF | T.ANYOF | T.DOTDOT ->
      true
  | _ -> false

let rec parse_seq st =
  let lhs = parse_seq_item st in
  if peek st = T.SEMI then begin
    advance st;
    if starts_expression (peek st) || starts_type st then
      Ast.Seq (lhs, parse_seq st)
    else Ast.Seq_void lhs
  end
  else lhs

and parse_seq_item st =
  if starts_type st then parse_decl_or_expr st else parse_alt st

(* A type-starting token at sequence level is normally a declaration
   ([int i]), but could also be a typedef name used in an expression
   position is not supported — declarations win, as in C. *)
and parse_decl_or_expr st =
  let saved = st.pos in
  match parse_declaration st with
  | decl -> decl
  | exception Error _ ->
      st.pos <- saved;
      parse_alt st

and parse_declaration st =
  let base = parse_base_type st in
  let rec declarators acc =
    let name, typ = parse_declarator st base in
    let acc = (name, typ) :: acc in
    if accept st T.COMMA then declarators acc else List.rev acc
  in
  Ast.Decl (base, declarators [])

(* C declarator, inside-out: pointers bind looser than the trailing array
   dimensions.  Function declarators are not supported (documented). *)
and parse_declarator st base =
  let rec pointers n = if accept st T.STAR then pointers (n + 1) else n in
  let nptr = pointers 0 in
  let name, wrap = parse_direct_declarator st in
  let rec add_ptrs t n = if n = 0 then t else add_ptrs (Ast.Tptr t) (n - 1) in
  (name, wrap (add_ptrs base nptr))

and parse_direct_declarator st =
  let name, wrap_inner =
    match peek st with
    | T.ID name ->
        advance st;
        (name, fun t -> t)
    | T.LPAREN ->
        advance st;
        let name, typ_of = parse_declarator_partial st in
        eat st T.RPAREN;
        (name, typ_of)
    | _ -> fail st "expected a declarator"
  in
  let rec arrays wrap =
    if accept st T.LBRACK then begin
      let dim =
        if peek st = T.RBRACK then None else Some (parse_seq st)
      in
      eat st T.RBRACK;
      (* dimensions apply outside-in on the element type *)
      arrays (fun t -> wrap (Ast.Tarr (t, dim)))
    end
    else wrap
  in
  (name, arrays wrap_inner)

(* A parenthesized declarator like "( *p )" — returns the name and a
   function mapping the element type to the declared type. *)
and parse_declarator_partial st =
  let rec pointers n = if accept st T.STAR then pointers (n + 1) else n in
  let nptr = pointers 0 in
  let name, wrap = parse_direct_declarator st in
  let rec add_ptrs t n = if n = 0 then t else add_ptrs (Ast.Tptr t) (n - 1) in
  (name, fun t -> wrap (add_ptrs t nptr))

(* Abstract declarator for casts/sizeof: base, then *s, then [dims]. *)
and parse_type_name st =
  let base = parse_base_type st in
  let rec pointers t = if accept st T.STAR then pointers (Ast.Tptr t) else t in
  let t = pointers base in
  let rec arrays t =
    if accept st T.LBRACK then begin
      let dim = if peek st = T.RBRACK then None else Some (parse_seq st) in
      eat st T.RBRACK;
      Ast.Tarr (arrays t, dim)
    end
    else t
  in
  arrays t

and parse_alt st =
  let lhs = parse_imply st in
  if accept st T.COMMA then Ast.Alt (lhs, parse_alt st) else lhs

and parse_imply st =
  let lhs = parse_assign st in
  if accept st T.IMPLY then Ast.Imply (lhs, parse_imply st) else lhs

and parse_assign st =
  let lhs = parse_cond st in
  match peek st with
  | T.DEFINE -> (
      advance st;
      match lhs with
      | Ast.Name name -> Ast.Def_alias (name, parse_assign st)
      | _ -> fail st "left side of := must be a name")
  | T.ASSIGN ->
      advance st;
      Ast.Assign (None, lhs, parse_assign st)
  | T.PLUSEQ ->
      advance st;
      Ast.Assign (Some Ast.Badd, lhs, parse_assign st)
  | T.MINUSEQ ->
      advance st;
      Ast.Assign (Some Ast.Bsub, lhs, parse_assign st)
  | T.STAREQ ->
      advance st;
      Ast.Assign (Some Ast.Bmul, lhs, parse_assign st)
  | T.SLASHEQ ->
      advance st;
      Ast.Assign (Some Ast.Bdiv, lhs, parse_assign st)
  | T.PERCENTEQ ->
      advance st;
      Ast.Assign (Some Ast.Bmod, lhs, parse_assign st)
  | T.AMPEQ ->
      advance st;
      Ast.Assign (Some Ast.Bband, lhs, parse_assign st)
  | T.PIPEEQ ->
      advance st;
      Ast.Assign (Some Ast.Bbor, lhs, parse_assign st)
  | T.CARETEQ ->
      advance st;
      Ast.Assign (Some Ast.Bbxor, lhs, parse_assign st)
  | T.SHLEQ ->
      advance st;
      Ast.Assign (Some Ast.Bshl, lhs, parse_assign st)
  | T.SHREQ ->
      advance st;
      Ast.Assign (Some Ast.Bshr, lhs, parse_assign st)
  | _ -> lhs

and parse_cond st =
  let cond = parse_to st in
  if accept st T.QUESTION then begin
    let then_e = parse_imply st in
    eat st T.COLON;
    let else_e = parse_cond st in
    Ast.Cond (cond, then_e, else_e)
  end
  else cond

and parse_to st =
  if peek st = T.DOTDOT then begin
    advance st;
    Ast.Up_to (parse_logor st)
  end
  else begin
    let lhs = parse_logor st in
    if accept st T.DOTDOT then
      if starts_expression (peek st) then Ast.To (lhs, parse_logor st)
      else Ast.To_inf lhs
    else lhs
  end

and parse_logor st =
  let rec loop lhs =
    if accept st T.OROR then loop (Ast.Logor (lhs, parse_logand st)) else lhs
  in
  loop (parse_logand st)

and parse_logand st =
  let rec loop lhs =
    if accept st T.ANDAND then loop (Ast.Logand (lhs, parse_bitor st)) else lhs
  in
  loop (parse_bitor st)

and parse_bitor st =
  let rec loop lhs =
    if accept st T.PIPE then loop (Ast.Binary (Ast.Bbor, lhs, parse_bitxor st))
    else lhs
  in
  loop (parse_bitxor st)

and parse_bitxor st =
  let rec loop lhs =
    if accept st T.CARET then
      loop (Ast.Binary (Ast.Bbxor, lhs, parse_bitand st))
    else lhs
  in
  loop (parse_bitand st)

and parse_bitand st =
  let rec loop lhs =
    if accept st T.AMP then loop (Ast.Binary (Ast.Bband, lhs, parse_equality st))
    else lhs
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop lhs =
    match peek st with
    | T.EQEQ ->
        advance st;
        loop (Ast.Binary (Ast.Beq, lhs, parse_relational st))
    | T.NE ->
        advance st;
        loop (Ast.Binary (Ast.Bne, lhs, parse_relational st))
    | T.QEQ ->
        advance st;
        loop (Ast.Filter (Ast.Qeq, lhs, parse_relational st))
    | T.QNE ->
        advance st;
        loop (Ast.Filter (Ast.Qne, lhs, parse_relational st))
    | T.SEQEQ ->
        advance st;
        loop (Ast.Seq_eq (lhs, parse_relational st))
    | _ -> lhs
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop lhs =
    match peek st with
    | T.LT ->
        advance st;
        loop (Ast.Binary (Ast.Blt, lhs, parse_shift st))
    | T.GT ->
        advance st;
        loop (Ast.Binary (Ast.Bgt, lhs, parse_shift st))
    | T.LE ->
        advance st;
        loop (Ast.Binary (Ast.Ble, lhs, parse_shift st))
    | T.GE ->
        advance st;
        loop (Ast.Binary (Ast.Bge, lhs, parse_shift st))
    | T.QLT ->
        advance st;
        loop (Ast.Filter (Ast.Qlt, lhs, parse_shift st))
    | T.QGT ->
        advance st;
        loop (Ast.Filter (Ast.Qgt, lhs, parse_shift st))
    | T.QLE ->
        advance st;
        loop (Ast.Filter (Ast.Qle, lhs, parse_shift st))
    | T.QGE ->
        advance st;
        loop (Ast.Filter (Ast.Qge, lhs, parse_shift st))
    | _ -> lhs
  in
  loop (parse_shift st)

and parse_shift st =
  let rec loop lhs =
    match peek st with
    | T.SHL ->
        advance st;
        loop (Ast.Binary (Ast.Bshl, lhs, parse_additive st))
    | T.SHR ->
        advance st;
        loop (Ast.Binary (Ast.Bshr, lhs, parse_additive st))
    | _ -> lhs
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | T.PLUS ->
        advance st;
        loop (Ast.Binary (Ast.Badd, lhs, parse_multiplicative st))
    | T.MINUS ->
        advance st;
        loop (Ast.Binary (Ast.Bsub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | T.STAR ->
        advance st;
        loop (Ast.Binary (Ast.Bmul, lhs, parse_unary st))
    | T.SLASH ->
        advance st;
        loop (Ast.Binary (Ast.Bdiv, lhs, parse_unary st))
    | T.PERCENT ->
        advance st;
        loop (Ast.Binary (Ast.Bmod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | T.INC ->
      advance st;
      Ast.Incdec (Ast.Preinc, parse_unary st)
  | T.DEC ->
      advance st;
      Ast.Incdec (Ast.Predec, parse_unary st)
  | T.BANG ->
      advance st;
      Ast.Unary (Ast.Unot, parse_unary st)
  | T.TILDE ->
      advance st;
      Ast.Unary (Ast.Ubnot, parse_unary st)
  | T.MINUS ->
      advance st;
      Ast.Unary (Ast.Uminus, parse_unary st)
  | T.PLUS ->
      advance st;
      Ast.Unary (Ast.Uplus, parse_unary st)
  | T.STAR ->
      advance st;
      Ast.Unary (Ast.Uderef, parse_unary st)
  | T.AMP ->
      advance st;
      Ast.Unary (Ast.Uaddr, parse_unary st)
  | T.COUNTOF ->
      advance st;
      Ast.Reduce (Ast.Rcount, parse_unary st)
  | T.SUMOF ->
      advance st;
      Ast.Reduce (Ast.Rsum, parse_unary st)
  | T.ALLOF ->
      advance st;
      Ast.Reduce (Ast.Rall, parse_unary st)
  | T.ANYOF ->
      advance st;
      Ast.Reduce (Ast.Rany, parse_unary st)
  | T.DOTDOT ->
      advance st;
      Ast.Up_to (parse_logor st)
  | T.KSIZEOF ->
      advance st;
      if peek st = T.LPAREN && type_follows st then begin
        advance st;
        let t = parse_type_name st in
        eat st T.RPAREN;
        Ast.Sizeof_type t
      end
      else Ast.Sizeof_expr (parse_unary st)
  | T.LPAREN when type_follows st ->
      advance st;
      let t = parse_type_name st in
      eat st T.RPAREN;
      Ast.Cast (t, parse_unary st)
  | _ -> parse_postfix st

(* Is the token after the current '(' the start of a type name? *)
and type_follows st =
  match peek2 st with
  | T.KSTRUCT | T.KUNION | T.KENUM -> true
  | t when base_type_keyword t -> true
  | T.ID name -> st.is_typename name
  | _ -> false

and parse_postfix st =
  let rec loop lhs =
    match peek st with
    | T.LBRACK ->
        advance st;
        let idx = parse_seq st in
        eat st T.RBRACK;
        loop (Ast.Index (lhs, idx))
    | T.LSELECT ->
        advance st;
        let sel = parse_seq st in
        eat st T.RBRACK;
        eat st T.RBRACK;
        loop (Ast.Select (lhs, sel))
    | T.LPAREN ->
        advance st;
        let args =
          if peek st = T.RPAREN then []
          else begin
            let rec collect acc =
              let arg = parse_imply st in
              if accept st T.COMMA then collect (arg :: acc)
              else List.rev (arg :: acc)
            in
            collect []
          end
        in
        eat st T.RPAREN;
        loop (Ast.Call (lhs, args))
    | T.DOT ->
        advance st;
        with_operand st lhs Ast.Wdot loop
    | T.ARROW ->
        advance st;
        with_operand st lhs Ast.Warrow loop
    | T.DFS ->
        advance st;
        expand_operand st lhs (fun a b -> Ast.Dfs (a, b)) loop
    | T.BFS ->
        advance st;
        expand_operand st lhs (fun a b -> Ast.Bfs (a, b)) loop
    | T.HASH -> (
        advance st;
        match peek st with
        | T.ID name ->
            advance st;
            loop (Ast.Index_alias (lhs, name))
        | _ -> fail st "expected an alias name after #")
    | T.AT ->
        advance st;
        loop (Ast.Until (lhs, parse_stop_operand st))
    | T.INC ->
        advance st;
        loop (Ast.Incdec (Ast.Postinc, lhs))
    | T.DEC ->
        advance st;
        loop (Ast.Incdec (Ast.Postdec, lhs))
    | _ -> lhs
  in
  loop (parse_primary st)

(* Right operand of . -> --> -->>.  A control expression extends greedily
   and ends the postfix chain; anything else continues it. *)
and with_operand st lhs kind loop =
  match peek st with
  | T.ID name ->
      advance st;
      loop (Ast.With (kind, lhs, Ast.Name name))
  | T.UNDER ->
      advance st;
      loop (Ast.With (kind, lhs, Ast.Underscore))
  | T.LPAREN ->
      advance st;
      let e = parse_seq st in
      eat st T.RPAREN;
      loop (Ast.With (kind, lhs, Ast.Group e))
  | T.LBRACE ->
      advance st;
      let e = parse_seq st in
      eat st T.RBRACE;
      loop (Ast.With (kind, lhs, Ast.Braces e))
  | T.KIF | T.KFOR | T.KWHILE ->
      Ast.With (kind, lhs, parse_primary st)
  | _ -> fail st "expected a member expression after . or ->"

and expand_operand st lhs build loop =
  match peek st with
  | T.ID name ->
      advance st;
      loop (build lhs (Ast.Name name))
  | T.LPAREN ->
      advance st;
      let e = parse_seq st in
      eat st T.RPAREN;
      loop (build lhs (Ast.Group e))
  | T.KIF | T.KFOR | T.KWHILE -> build lhs (parse_primary st)
  | _ -> fail st "expected a traversal expression after --> "

(* Operand of @: a constant, name, _, or parenthesized expression. *)
and parse_stop_operand st =
  match peek st with
  | T.INT (v, t, s) ->
      advance st;
      Ast.Int_lit (v, t, s)
  | T.CHR (c, s) ->
      advance st;
      Ast.Char_lit (c, s)
  | T.ID name ->
      advance st;
      Ast.Name name
  | T.UNDER ->
      advance st;
      Ast.Underscore
  | T.LPAREN ->
      advance st;
      let e = parse_seq st in
      eat st T.RPAREN;
      Ast.Group e
  | _ -> fail st "expected a stop condition after @"

and parse_primary st =
  match peek st with
  | T.INT (v, t, s) ->
      advance st;
      Ast.Int_lit (v, t, s)
  | T.FLT (v, t, s) ->
      advance st;
      Ast.Float_lit (v, t, s)
  | T.CHR (c, s) ->
      advance st;
      Ast.Char_lit (c, s)
  | T.STR s ->
      advance st;
      Ast.Str_lit s
  | T.ID name ->
      advance st;
      Ast.Name name
  | T.UNDER ->
      advance st;
      Ast.Underscore
  | T.LPAREN ->
      advance st;
      let e = parse_seq st in
      eat st T.RPAREN;
      Ast.Group e
  | T.LBRACE ->
      advance st;
      let e = parse_seq st in
      eat st T.RBRACE;
      Ast.Braces e
  | T.KIF ->
      advance st;
      eat st T.LPAREN;
      let cond = parse_seq st in
      eat st T.RPAREN;
      let then_e = parse_imply st in
      if accept st T.KELSE then Ast.If (cond, then_e, Some (parse_imply st))
      else Ast.If (cond, then_e, None)
  | T.KFOR ->
      advance st;
      eat st T.LPAREN;
      let init = if peek st = T.SEMI then None else Some (parse_alt st) in
      eat st T.SEMI;
      let cond = if peek st = T.SEMI then None else Some (parse_alt st) in
      eat st T.SEMI;
      let step = if peek st = T.RPAREN then None else Some (parse_alt st) in
      eat st T.RPAREN;
      Ast.For (init, cond, step, parse_imply st)
  | T.KWHILE ->
      advance st;
      eat st T.LPAREN;
      let cond = parse_seq st in
      eat st T.RPAREN;
      Ast.While (cond, parse_imply st)
  | T.KFRAME ->
      advance st;
      eat st T.LPAREN;
      let e = parse_seq st in
      eat st T.RPAREN;
      Ast.Frame e
  | T.KFRAMES ->
      advance st;
      Ast.Frames_gen
  | tok -> fail st (Printf.sprintf "unexpected %s" (T.describe tok))

let parse ?(is_typename = fun _ -> false) ~abi src =
  let toks = Array.of_list (Lexer.tokenize ~abi src) in
  let st = { toks; pos = 0; is_typename } in
  let e = parse_seq st in
  if peek st <> T.EOF then
    fail st (Printf.sprintf "trailing input at %s" (T.describe (peek st)));
  e

(* --- embedding API ------------------------------------------------------ *)



let make_state ?(is_typename = fun _ -> false) toks =
  { toks; pos = 0; is_typename }

let state_pos st = st.pos
let state_peek st = peek st

let state_peek_at st n =
  if st.pos + n < Array.length st.toks then fst st.toks.(st.pos + n) else T.EOF

let state_advance st = advance st
let state_offset st = snd st.toks.(st.pos)
let expression st = parse_imply st
let type_starts st = starts_type st
let base_type st = parse_base_type st
let declarator st base = parse_declarator st base
let expect st tok = eat st tok
let accept_tok st tok = accept st tok
let error_at st msg = fail st msg
