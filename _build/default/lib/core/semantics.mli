(** Semantic helpers shared by the two evaluation engines: type
    resolution, [with]-scope construction, [-->] node validity, target
    function calls, and reductions' accumulation. *)

module Ctype = Duel_ctype.Ctype

val resolve_type :
  Env.t -> eval_int:(Ast.expr -> int64) -> Ast.type_expr -> Ctype.t
(** Resolve type syntax against the target's type environment; array
    dimensions are evaluated with [eval_int] (first value).
    @raise Error.Duel_error on unknown tags/typedefs or bad specifiers. *)

val literal : Env.t -> Ast.expr -> Value.t option
(** The value of a literal node ([Int_lit], [Float_lit], [Char_lit],
    [Str_lit] — the latter interned into target space); [None] for
    non-literals. *)

val with_scope : Env.t -> Ast.with_kind -> Value.t -> Env.scope
(** Scope for [e1.e2] / [e1->e2]: [_] is e1's value; members resolve to
    fields when the subject is a struct/union (directly or through a
    pointer).  @raise Error.Duel_error if [->] is applied to a
    non-pointer. *)

val node_scope : Env.t -> Value.t -> Env.scope
(** Scope used while expanding a [-->] node: like [->] for pointer nodes,
    like [.] for aggregate lvalues, fields-free otherwise. *)

val frame_scope : Env.t -> int -> Env.scope
(** Scope over the locals of active frame [i] (the [frame(i)] extension).
    @raise Error.Duel_error if no such frame. *)

val frame_count : Env.t -> int

val traversal_child_ok : Env.t -> Value.t -> Value.t option
(** Validity test for [-->] candidates: fetches; non-null readable
    pointers and non-zero scalars survive (returned fetched), everything
    else terminates that branch ([None]). *)

val call_function : Env.t -> Ast.expr -> Value.t list -> Value.t
(** Call a target function named by the callee expression with already
    evaluated arguments (converted per the function's prototype). *)

val sum_step : Env.t -> (int64, float) Either.t -> Value.t -> (int64, float) Either.t
(** Accumulate one value into a [+/] sum (switches to float on the first
    floating value). *)

val sum_result : Env.t -> sym:Symbolic.t -> (int64, float) Either.t -> Value.t
