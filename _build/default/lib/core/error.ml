(** Evaluation errors.

    The paper: "Symbolic values assist in the display of results as well as
    errors: The offending operand's symbolic value is printed, e.g., the
    expression [ptr[..99]->val] might produce
    [Illegal memory reference in x of x->y: ptr[48] = lvalue 0x16820.]"
    An {!t} carries the human message plus the symbolic expression and
    rendering of the offending operand so the session layer can produce
    exactly that shape. *)

type t = {
  msg : string;  (** e.g. ["Illegal memory reference"] *)
  context : string option;  (** e.g. ["x of x->y"] — operand role *)
  operand : (string * string) option;
      (** symbolic and value rendering of the offending operand,
          e.g. [("ptr[48]", "lvalue 0x16820")] *)
}

exception Duel_error of t

let fail ?context ?operand msg =
  raise (Duel_error { msg; context; operand })

let failf ?context ?operand fmt =
  Printf.ksprintf (fun msg -> fail ?context ?operand msg) fmt

let with_context ctx f =
  try f ()
  with Duel_error ({ context = None; _ } as err) ->
    raise (Duel_error { err with context = Some ctx })

let to_string err =
  let b = Buffer.create 64 in
  Buffer.add_string b err.msg;
  (match err.context with
  | Some c ->
      Buffer.add_string b " in ";
      Buffer.add_string b c
  | None -> ());
  (match err.operand with
  | Some (sym, v) ->
      Buffer.add_string b ": ";
      Buffer.add_string b sym;
      Buffer.add_string b " = ";
      Buffer.add_string b v
  | None -> ());
  Buffer.contents b
