module Ctype = Duel_ctype.Ctype
module Abi = Duel_ctype.Abi

exception Error of string * int

let fail msg pos = raise (Error (msg, pos))

let keyword = function
  | "if" -> Some Token.KIF
  | "else" -> Some Token.KELSE
  | "for" -> Some Token.KFOR
  | "while" -> Some Token.KWHILE
  | "sizeof" -> Some Token.KSIZEOF
  | "struct" -> Some Token.KSTRUCT
  | "union" -> Some Token.KUNION
  | "enum" -> Some Token.KENUM
  | "int" -> Some Token.KINT
  | "char" -> Some Token.KCHAR
  | "long" -> Some Token.KLONG
  | "short" -> Some Token.KSHORT
  | "signed" -> Some Token.KSIGNED
  | "unsigned" -> Some Token.KUNSIGNED
  | "float" -> Some Token.KFLOAT
  | "double" -> Some Token.KDOUBLE
  | "void" -> Some Token.KVOID
  | "_Bool" -> Some Token.KBOOL
  | "frame" -> Some Token.KFRAME
  | "frames" -> Some Token.KFRAMES
  | _ -> None

(* Multi-character operators, longest first: maximal munch. *)
let operators =
  [
    ("-->>", Token.BFS);
    ("<<=", Token.SHLEQ);
    (">>=", Token.SHREQ);
    ("-->", Token.DFS);
    ("<=?", Token.QLE);
    (">=?", Token.QGE);
    ("==?", Token.QEQ);
    ("!=?", Token.QNE);
    ("==/", Token.SEQEQ);
    ("&&/", Token.ALLOF);
    ("||/", Token.ANYOF);
    ("<?", Token.QLT);
    (">?", Token.QGT);
    ("==", Token.EQEQ);
    ("!=", Token.NE);
    ("<=", Token.LE);
    (">=", Token.GE);
    ("&&", Token.ANDAND);
    ("||", Token.OROR);
    ("<<", Token.SHL);
    (">>", Token.SHR);
    ("++", Token.INC);
    ("--", Token.DEC);
    ("->", Token.ARROW);
    ("..", Token.DOTDOT);
    ("+=", Token.PLUSEQ);
    ("-=", Token.MINUSEQ);
    ("*=", Token.STAREQ);
    ("/=", Token.SLASHEQ);
    ("%=", Token.PERCENTEQ);
    ("&=", Token.AMPEQ);
    ("|=", Token.PIPEEQ);
    ("^=", Token.CARETEQ);
    (":=", Token.DEFINE);
    ("=>", Token.IMPLY);
    ("#/", Token.COUNTOF);
    ("+/", Token.SUMOF);
    ("[[", Token.LSELECT);
    ("(", Token.LPAREN);
    (")", Token.RPAREN);
    ("[", Token.LBRACK);
    ("]", Token.RBRACK);
    ("{", Token.LBRACE);
    ("}", Token.RBRACE);
    (";", Token.SEMI);
    (",", Token.COMMA);
    ("?", Token.QUESTION);
    (":", Token.COLON);
    ("+", Token.PLUS);
    ("-", Token.MINUS);
    ("*", Token.STAR);
    ("/", Token.SLASH);
    ("%", Token.PERCENT);
    ("&", Token.AMP);
    ("|", Token.PIPE);
    ("^", Token.CARET);
    ("~", Token.TILDE);
    ("!", Token.BANG);
    ("<", Token.LT);
    (">", Token.GT);
    ("=", Token.ASSIGN);
    (".", Token.DOT);
    ("#", Token.HASH);
    ("@", Token.AT);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_oct c = c >= '0' && c <= '7'

(* Pick the C type of an integer literal: the first kind in the candidate
   list (ordered by rank) whose range contains the value. *)
let type_int_literal abi ~value ~base ~unsigned ~longs pos =
  let candidates =
    match (unsigned, longs, base = 10) with
    | false, 0, true -> [ Ctype.Int; Ctype.Long; Ctype.LLong ]
    | false, 0, false ->
        [ Ctype.Int; Ctype.UInt; Ctype.Long; Ctype.ULong; Ctype.LLong;
          Ctype.ULLong ]
    | false, 1, true -> [ Ctype.Long; Ctype.LLong ]
    | false, 1, false -> [ Ctype.Long; Ctype.ULong; Ctype.LLong; Ctype.ULLong ]
    | false, _, true -> [ Ctype.LLong ]
    | false, _, false -> [ Ctype.LLong; Ctype.ULLong ]
    | true, 0, _ -> [ Ctype.UInt; Ctype.ULong; Ctype.ULLong ]
    | true, 1, _ -> [ Ctype.ULong; Ctype.ULLong ]
    | true, _, _ -> [ Ctype.ULLong ]
  in
  let fits k =
    if Ctype.ikind_signed abi k then
      value >= 0L && value <= Ctype.ikind_max abi k
    else
      (* unsigned: value is the raw bit pattern; it fits when normalizing
         to the kind's width is the identity *)
      Ctype.normalize abi k value = value
  in
  match List.find_opt fits candidates with
  | Some k -> Ctype.Integer k
  | None ->
      if unsigned || base <> 10 then Ctype.Integer Ctype.ULLong
      else fail "integer literal too large" pos

let tokenize ~abi src =
  let n = String.length src in
  let toks = ref [] in
  let emit tok pos = toks := (tok, pos) :: !toks in
  let peek i = if i < n then Some src.[i] else None in
  let rec skip_ws i =
    if i < n && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r')
    then skip_ws (i + 1)
    else if i + 1 < n && src.[i] = '#' && src.[i + 1] = '#' then
      let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
      skip_ws (eol (i + 2))
    else i
  in
  let escape i =
    (* after the backslash; returns (char, next index) *)
    match peek i with
    | None -> fail "unterminated escape" i
    | Some 'n' -> ('\n', i + 1)
    | Some 't' -> ('\t', i + 1)
    | Some 'r' -> ('\r', i + 1)
    | Some 'b' -> ('\b', i + 1)
    | Some 'f' -> ('\012', i + 1)
    | Some 'v' -> ('\011', i + 1)
    | Some 'a' -> ('\007', i + 1)
    | Some '\\' -> ('\\', i + 1)
    | Some '\'' -> ('\'', i + 1)
    | Some '"' -> ('"', i + 1)
    | Some '0' .. '7' ->
        let rec oct acc j count =
          if count < 3 && j < n && is_oct src.[j] then
            oct ((acc * 8) + (Char.code src.[j] - 48)) (j + 1) (count + 1)
          else (acc, j)
        in
        let v, j = oct 0 i 0 in
        (Char.chr (v land 0xff), j)
    | Some 'x' ->
        let rec hex acc j =
          if j < n && is_hex src.[j] then
            hex ((acc * 16) + int_of_string (Printf.sprintf "0x%c" src.[j])) (j + 1)
          else (acc, j)
        in
        let v, j = hex 0 (i + 1) in
        if j = i + 1 then fail "bad \\x escape" i
        else (Char.chr (v land 0xff), j)
    | Some c -> (c, i + 1)
  in
  let rec scan i =
    let i = skip_ws i in
    if i >= n then emit Token.EOF i
    else
      let c = src.[i] in
      if is_ident_start c then begin
        let rec endp j = if j < n && is_ident_char src.[j] then endp (j + 1) else j in
        let j = endp i in
        let word = String.sub src i (j - i) in
        (match (word, keyword word) with
        | "_", _ -> emit Token.UNDER i
        | _, Some kw -> emit kw i
        | _, None -> emit (Token.ID word) i);
        scan j
      end
      else if is_digit c then number i
      else if c = '\'' then begin
        let ch, j =
          match peek (i + 1) with
          | None -> fail "unterminated character constant" i
          | Some '\\' -> escape (i + 2)
          | Some c' -> (c', i + 2)
        in
        match peek j with
        | Some '\'' ->
            emit (Token.CHR (ch, String.sub src i (j + 1 - i))) i;
            scan (j + 1)
        | _ -> fail "unterminated character constant" i
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          match peek j with
          | None -> fail "unterminated string literal" i
          | Some '"' -> j + 1
          | Some '\\' ->
              let ch, j' = escape (j + 1) in
              Buffer.add_char buf ch;
              str j'
          | Some c' ->
              Buffer.add_char buf c';
              str (j + 1)
        in
        let j = str (i + 1) in
        emit (Token.STR (Buffer.contents buf)) i;
        scan j
      end
      else begin
        let matched =
          List.find_opt
            (fun (text, _) ->
              let len = String.length text in
              i + len <= n && String.sub src i len = text)
            operators
        in
        match matched with
        | Some (text, tok) ->
            emit tok i;
            scan (i + String.length text)
        | None -> fail (Printf.sprintf "unexpected character %C" c) i
      end
  and number i =
    (* Disambiguate "1..3": a '.' only belongs to the number if the next
       character is not another '.'. *)
    let dot_ok j = j + 1 >= n || src.[j + 1] <> '.' in
    if
      i + 1 < n
      && src.[i] = '0'
      && (src.[i + 1] = 'x' || src.[i + 1] = 'X')
    then begin
      let rec endp j = if j < n && is_hex src.[j] then endp (j + 1) else j in
      let j = endp (i + 2) in
      if j = i + 2 then fail "bad hexadecimal literal" i;
      finish_int i j ~base:16
    end
    else begin
      let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
      let j = digits i in
      let is_float =
        (j < n && src.[j] = '.' && dot_ok j)
        || (j < n && (src.[j] = 'e' || src.[j] = 'E'))
      in
      if is_float then begin
        let j = if j < n && src.[j] = '.' then digits (j + 1) else j in
        let j =
          if j < n && (src.[j] = 'e' || src.[j] = 'E') then begin
            let k = if j + 1 < n && (src.[j + 1] = '+' || src.[j + 1] = '-') then j + 2 else j + 1 in
            let k' = digits k in
            if k' = k then fail "bad float exponent" j else k'
          end
          else j
        in
        let text = String.sub src i (j - i) in
        let typ, j =
          match peek j with
          | Some ('f' | 'F') -> (Ctype.float, j + 1)
          | Some ('l' | 'L') -> (Ctype.ldouble, j + 1)
          | _ -> (Ctype.double, j)
        in
        emit (Token.FLT (float_of_string text, typ, text)) i;
        scan j
      end
      else if i < n && src.[i] = '0' && j > i + 1 then begin
        (* octal *)
        let rec check k = k >= j || (is_oct src.[k] && check (k + 1)) in
        if not (check (i + 1)) then fail "bad octal literal" i;
        finish_int i j ~base:8
      end
      else finish_int i j ~base:10
    end
  and finish_int start stop ~base =
    let digits = String.sub src start (stop - start) in
    let value =
      try
        match base with
        | 16 -> Int64.of_string ("0x" ^ String.sub digits 2 (String.length digits - 2))
        | 8 -> Int64.of_string ("0o" ^ String.sub digits 1 (String.length digits - 1))
        | _ -> Int64.of_string digits
      with Failure _ -> (
        (* out of Int64 signed range: accept the unsigned bit pattern *)
        match base with
        | 16 -> Int64.of_string ("0u" ^ digits)
        | _ -> fail "integer literal too large" start)
    in
    let rec suffix j unsigned longs =
      match peek j with
      | Some ('u' | 'U') when not unsigned -> suffix (j + 1) true longs
      | Some ('l' | 'L') when longs = 0 ->
          if j + 1 < n && (src.[j + 1] = 'l' || src.[j + 1] = 'L') then
            suffix (j + 2) unsigned 2
          else suffix (j + 1) unsigned 1
      | _ -> (j, unsigned, longs)
    in
    let j, unsigned, longs = suffix stop false 0 in
    let typ = type_int_literal abi ~value ~base ~unsigned ~longs start in
    emit (Token.INT (value, typ, String.sub src start (j - start))) start;
    scan j
  in
  scan 0;
  List.rev !toks
