module Ctype = Duel_ctype.Ctype
module Tenv = Duel_ctype.Tenv
module Dbgi = Duel_dbgi.Dbgi

type scope = {
  sc_value : Value.t;
  sc_lookup : string -> Value.t option;
}

type flags = {
  mutable symbolic : bool;
  mutable cycle_detect : bool;
  mutable compress : int;
  mutable expansion_limit : int;
}

type t = {
  dbg : Dbgi.t;
  aliases : (string, Value.t) Hashtbl.t;
  mutable scopes : scope list;
  strings : (string, int) Hashtbl.t;
  flags : flags;
}

let default_flags () =
  {
    symbolic = true;
    cycle_detect = false;
    compress = Symbolic.default_threshold;
    expansion_limit = 1_000_000;
  }

let create dbg =
  {
    dbg;
    aliases = Hashtbl.create 16;
    scopes = [];
    strings = Hashtbl.create 16;
    flags = default_flags ();
  }

let define_alias env name v = Hashtbl.replace env.aliases name v
let find_alias env name = Hashtbl.find_opt env.aliases name
let push_scope env sc = env.scopes <- sc :: env.scopes

let pop_scope env =
  match env.scopes with
  | [] -> invalid_arg "Env.pop_scope: empty scope stack"
  | _ :: rest -> env.scopes <- rest

let current_scope env =
  match env.scopes with
  | sc :: _ -> sc
  | [] -> Error.fail "_ used outside of a with scope (. -> --> @)"

let scope_depth env = List.length env.scopes

let restore_scope_depth env depth =
  let rec drop scopes n = if n <= 0 then scopes else
    match scopes with [] -> [] | _ :: rest -> drop rest (n - 1)
  in
  let extra = List.length env.scopes - depth in
  if extra > 0 then env.scopes <- drop env.scopes extra

let rec scope_find scopes name =
  match scopes with
  | [] -> None
  | sc :: rest -> (
      match sc.sc_lookup name with
      | Some v -> Some v
      | None -> scope_find rest name)

let frame_local env name =
  match env.dbg.Dbgi.frames () with
  | [] -> None
  | frame :: _ -> (
      match List.assoc_opt name frame.Dbgi.fr_locals with
      | Some info ->
          Some
            (Value.lvalue ~sym:(Symbolic.atom name) info.Dbgi.v_type
               info.Dbgi.v_addr)
      | None -> None)

let global env name =
  match env.dbg.Dbgi.find_variable name with
  | Some info ->
      Some
        (Value.lvalue ~sym:(Symbolic.atom name) info.Dbgi.v_type
           info.Dbgi.v_addr)
  | None -> None

let enum_const env name =
  match Tenv.find_enum_const env.dbg.Dbgi.tenv name with
  | Some (e, v) ->
      Some (Value.int_value ~sym:(Symbolic.atom name) (Ctype.Enum e) v)
  | None -> None

let lookup env name =
  match scope_find env.scopes name with
  | Some v -> v
  | None -> (
      match find_alias env name with
      | Some v -> Value.with_sym v (Symbolic.atom name)
      | None -> (
          match frame_local env name with
          | Some v -> v
          | None -> (
              match global env name with
              | Some v -> v
              | None -> (
                  match enum_const env name with
                  | Some v -> v
                  | None -> Error.failf "undefined name %s" name))))

let string_literal env s =
  match Hashtbl.find_opt env.strings s with
  | Some addr -> addr
  | None ->
      let addr = env.dbg.Dbgi.alloc_space (String.length s + 1) in
      env.dbg.Dbgi.put_bytes ~addr (Bytes.of_string (s ^ "\000"));
      Hashtbl.replace env.strings s addr;
      addr
