module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Dbgi = Duel_dbgi.Dbgi

let no_sym = Symbolic.atom "?"
let sym_on env = env.Env.flags.Env.symbolic

(* One runtime node per AST node, carrying the paper's [state] and saved
   [value] plus per-operator auxiliary state. *)
type node = {
  expr : Ast.expr;
  kids : node array;
  mutable state : int;
  mutable saved : Value.t option;
  mutable counter : int64;
  mutable hi : int64;
  mutable depth : int;  (* scope depth captured at state 0 *)
  mutable work : Value.t list;  (* dfs/bfs worklist *)
  mutable buffer : Value.t array;  (* select buffer *)
  mutable buffered : int;
  mutable src_done : bool;
  mutable src_scopes : Env.scope list;
  mutable visited : (int64, unit) Hashtbl.t option;
  mutable argvals : Value.t array;
}

let dummy_value = Value.int_value Ctype.int 0L

(* Sub-expressions that behave as generator operands, in evaluation
   order. *)
let subexprs (e : Ast.expr) : Ast.expr list =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Char_lit _ | Ast.Str_lit _
  | Ast.Name _ | Ast.Underscore | Ast.Frames_gen | Ast.Decl _
  | Ast.Sizeof_type _ ->
      []
  | Ast.Unary (_, a)
  | Ast.Incdec (_, a)
  | Ast.Braces a
  | Ast.Group a
  | Ast.Cast (_, a)
  | Ast.Def_alias (_, a)
  | Ast.Index_alias (a, _)
  | Ast.Reduce (_, a)
  | Ast.Seq_void a
  | Ast.Up_to a
  | Ast.To_inf a
  | Ast.Sizeof_expr a
  | Ast.Frame a ->
      [ a ]
  | Ast.Binary (_, a, b)
  | Ast.Logand (a, b)
  | Ast.Logor (a, b)
  | Ast.Filter (_, a, b)
  | Ast.Assign (_, a, b)
  | Ast.Index (a, b)
  | Ast.With (_, a, b)
  | Ast.To (a, b)
  | Ast.Alt (a, b)
  | Ast.Seq (a, b)
  | Ast.Imply (a, b)
  | Ast.Dfs (a, b)
  | Ast.Bfs (a, b)
  | Ast.Select (a, b)
  | Ast.Until (a, b)
  | Ast.Seq_eq (a, b)
  | Ast.While (a, b) ->
      [ a; b ]
  | Ast.Cond (a, b, c) | Ast.If (a, b, Some c) -> [ a; b; c ]
  | Ast.If (a, b, None) -> [ a; b ]
  | Ast.Call (_, args) -> args
  | Ast.For (i, c, s, b) ->
      List.filter_map Fun.id [ i; c; s ] @ [ b ]

let rec compile e =
  {
    expr = e;
    kids = Array.of_list (List.map compile (subexprs e));
    state = 0;
    saved = None;
    counter = 0L;
    hi = 0L;
    depth = 0;
    work = [];
    buffer = [||];
    buffered = 0;
    src_done = false;
    src_scopes = [];
    visited = None;
    argvals = [||];
  }

let rec reset n =
  n.state <- 0;
  n.saved <- None;
  n.work <- [];
  n.buffered <- 0;
  n.src_done <- false;
  n.visited <- None;
  Array.iter reset n.kids

let get_saved n =
  match n.saved with Some v -> v | None -> assert false

(* --- the evaluator ------------------------------------------------------ *)

let rec next env n : Value.t option =
  match n.expr with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Char_lit _ | Ast.Str_lit _ ->
      if n.state = 0 then begin
        n.state <- 1;
        Semantics.literal env n.expr
      end
      else begin
        n.state <- 0;
        None
      end
  | Ast.Name name ->
      if n.state = 0 then begin
        n.state <- 1;
        Some (Env.lookup env name)
      end
      else begin
        n.state <- 0;
        None
      end
  | Ast.Underscore ->
      if n.state = 0 then begin
        n.state <- 1;
        Some (Env.current_scope env).Env.sc_value
      end
      else begin
        n.state <- 0;
        None
      end
  | Ast.Group _ -> next env n.kids.(0)
  | Ast.Braces _ -> (
      match next env n.kids.(0) with
      | Some v ->
          Some
            (if sym_on env then
               Value.with_sym v
                 (Symbolic.atom (Printer.scalar_literal env v))
             else v)
      | None -> None)
  | Ast.Unary (op, _) -> Option.map (Ops.unary env op) (next env n.kids.(0))
  | Ast.Incdec (op, _) -> Option.map (Ops.incdec env op) (next env n.kids.(0))
  | Ast.Cast (te, _) -> (
      match next env n.kids.(0) with
      | None -> None
      | Some v ->
          let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
          let v' = Value.convert env.Env.dbg t v in
          Some
            (if sym_on env then
               Value.with_sym v'
                 (Symbolic.unary ("(" ^ Pretty.type_to_string te ^ ")")
                    v.Value.sym)
             else v'))
  | Ast.Def_alias (name, _) -> (
      match next env n.kids.(0) with
      | None -> None
      | Some v ->
          Env.define_alias env name v;
          Some v)
  | Ast.Binary (op, _, _) -> binary_like env n (Ops.binary env op)
  | Ast.Index _ -> binary_like env n (Ops.index env)
  | Ast.Assign (op, _, _) -> assign_sm env n op
  | Ast.Alt _ -> alt env n
  | Ast.To _ -> to_range env n
  | Ast.Up_to _ -> up_to env n
  | Ast.To_inf _ -> to_inf env n
  | Ast.Filter (f, _, _) -> filter env n f
  | Ast.Logand _ -> logand env n
  | Ast.Logor _ -> logor env n
  | Ast.Cond _ -> conditional env n ~has_else:true
  | Ast.If (_, _, Some _) -> conditional env n ~has_else:true
  | Ast.If (_, _, None) -> conditional env n ~has_else:false
  | Ast.With (kind, lhs, _) -> with_op env n kind lhs
  | Ast.Imply _ -> imply env n
  | Ast.Seq _ -> seq_op env n
  | Ast.Seq_void _ ->
      drain env n.kids.(0);
      None
  | Ast.Index_alias (_, name) -> index_alias env n name
  | Ast.Reduce (r, _) -> reduce env n r
  | Ast.Seq_eq _ -> seq_eq env n
  | Ast.Dfs _ -> expand env n ~depth_first:true
  | Ast.Bfs _ -> expand env n ~depth_first:false
  | Ast.Select _ -> select env n
  | Ast.Until (_, stop) -> until env n stop
  | Ast.While _ -> while_op env n
  | Ast.For (init, cond, step, _) -> for_op env n init cond step
  | Ast.Call (callee, args) -> call env n callee (List.length args)
  | Ast.Decl (base, decls) ->
      List.iter (declare env base) decls;
      None
  | Ast.Sizeof_expr _ -> sizeof_expr env n
  | Ast.Sizeof_type te ->
      if n.state = 0 then begin
        n.state <- 1;
        let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
        let size =
          try Layout.size_of env.Env.dbg.Dbgi.abi t
          with Layout.Incomplete what ->
            Error.failf "sizeof incomplete type %s" what
        in
        let sym =
          if sym_on env then Symbolic.atom (Pretty.to_string n.expr)
          else no_sym
        in
        Some (Value.int_value ~sym Ctype.ulong (Int64.of_int size))
      end
      else begin
        n.state <- 0;
        None
      end
  | Ast.Frame _ -> (
      match next env n.kids.(0) with
      | None -> None
      | Some u ->
          let i = Int64.to_int (Value.to_int64 env.Env.dbg u) in
          let sym =
            if sym_on env then Symbolic.atom (Printf.sprintf "frame(%d)" i)
            else no_sym
          in
          Some (Value.int_value ~sym Ctype.int (Int64.of_int i)))
  | Ast.Frames_gen ->
      if n.state = 0 then begin
        n.counter <- 0L;
        n.hi <- Int64.of_int (Semantics.frame_count env);
        n.state <- 1
      end;
      if Int64.compare n.counter n.hi < 0 then begin
        let i = n.counter in
        n.counter <- Int64.add i 1L;
        let sym =
          if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym
        in
        Some (Value.int_value ~sym Ctype.int i)
      end
      else begin
        n.state <- 0;
        None
      end

and drain env kid = match next env kid with Some _ -> drain env kid | None -> ()

and eval_int env e =
  let kid = compile e in
  let depth = Env.scope_depth env in
  match next env kid with
  | Some v ->
      let i = Value.to_int64 env.Env.dbg v in
      Env.restore_scope_depth env depth;
      i
  | None -> Error.fail "expected a value"

(* state 0: fetch the next left value; state 1: produce one combination per
   right value — the paper's bin0/bin1 code. *)
and binary_like env n f =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        n.saved <- Some u;
        n.state <- 1;
        binary_like env n f
  else
    match next env n.kids.(1) with
    | Some v -> Some (f (get_saved n) v)
    | None ->
        n.state <- 0;
        binary_like env n f

(* Assignment: like binary_like, but the right operand evaluates under the
   scope stack captured at state 0 — the left side's with-scope must not
   capture names on the right ([q->scope = scope] means the parameter). *)
and assign_sm env n op =
  match n.state with
  | 0 ->
      (* fresh evaluation: capture the stack before the left side can
         push its with-scopes *)
      n.src_scopes <- env.Env.scopes;
      n.state <- 2;
      assign_sm env n op
  | 2 -> (
      match next env n.kids.(0) with
      | None ->
          n.state <- 0;
          None
      | Some u ->
          n.saved <- Some u;
          n.state <- 1;
          assign_sm env n op)
  | _ -> (
      let outer = env.Env.scopes in
      env.Env.scopes <- n.src_scopes;
      let v = next env n.kids.(1) in
      n.src_scopes <- env.Env.scopes;
      env.Env.scopes <- outer;
      match v with
      | Some v -> Some (Ops.assign env op (get_saved n) v)
      | None ->
          n.state <- 2;
          assign_sm env n op)

and alt env n =
  if n.state = 0 then
    match next env n.kids.(0) with
    | Some v -> Some v
    | None ->
        n.state <- 1;
        alt env n
  else
    match next env n.kids.(1) with
    | Some v -> Some v
    | None ->
        n.state <- 0;
        None

and to_range env n =
  match n.state with
  | 0 -> (
      match next env n.kids.(0) with
      | None -> None
      | Some u ->
          n.saved <- Some u;
          n.state <- 1;
          to_range env n)
  | 1 -> (
      match next env n.kids.(1) with
      | None ->
          n.state <- 0;
          to_range env n
      | Some v ->
          n.counter <- Value.to_int64 env.Env.dbg (get_saved n);
          n.hi <- Value.to_int64 env.Env.dbg v;
          n.state <- 2;
          to_range env n)
  | _ ->
      if Int64.compare n.counter n.hi <= 0 then begin
        let i = n.counter in
        n.counter <- Int64.add i 1L;
        Some (make_int env i)
      end
      else begin
        n.state <- 1;
        to_range env n
      end

and make_int env i =
  let sym = if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym in
  Value.int_value ~sym Ctype.int i

and up_to env n =
  match n.state with
  | 0 -> (
      match next env n.kids.(0) with
      | None -> None
      | Some u ->
          n.counter <- 0L;
          n.hi <- Int64.sub (Value.to_int64 env.Env.dbg u) 1L;
          n.state <- 1;
          up_to env n)
  | _ ->
      if Int64.compare n.counter n.hi <= 0 then begin
        let i = n.counter in
        n.counter <- Int64.add i 1L;
        Some (make_int env i)
      end
      else begin
        n.state <- 0;
        up_to env n
      end

and to_inf env n =
  match n.state with
  | 0 -> (
      match next env n.kids.(0) with
      | None -> None
      | Some u ->
          n.counter <- Value.to_int64 env.Env.dbg u;
          n.state <- 1;
          to_inf env n)
  | _ ->
      let i = n.counter in
      n.counter <- Int64.add i 1L;
      Some (make_int env i)

and filter env n f =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        n.saved <- Some u;
        n.state <- 1;
        filter env n f
  else
    match next env n.kids.(1) with
    | Some v ->
        if Ops.filter_holds env f (get_saved n) v then Some (get_saved n)
        else filter env n f
    | None ->
        n.state <- 0;
        filter env n f

and logand env n =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        if Value.truth env.Env.dbg u then begin
          n.saved <- Some u;
          n.state <- 1;
          logand env n
        end
        else logand env n
  else
    match next env n.kids.(1) with
    | Some v ->
        Some
          (if sym_on env then
             Value.with_sym v
               (Symbolic.binary Symbolic.prec_logand " && "
                  (get_saved n).Value.sym v.Value.sym)
           else v)
    | None ->
        n.state <- 0;
        logand env n

and logor env n =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        if Value.truth env.Env.dbg u then
          Some (Ops.int_result env ~sym:u.Value.sym 1L)
        else begin
          n.saved <- Some u;
          n.state <- 1;
          logor env n
        end
  else
    match next env n.kids.(1) with
    | Some v ->
        Some
          (if sym_on env then
             Value.with_sym v
               (Symbolic.binary Symbolic.prec_logor " || "
                  (get_saved n).Value.sym v.Value.sym)
           else v)
    | None ->
        n.state <- 0;
        logor env n

(* states: 0 pulling condition; 1 producing then-branch; 2 producing
   else-branch. *)
and conditional env n ~has_else =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        if Value.truth env.Env.dbg u then begin
          n.state <- 1;
          conditional env n ~has_else
        end
        else if has_else then begin
          n.state <- 2;
          conditional env n ~has_else
        end
        else conditional env n ~has_else
  else
    let branch = n.state in
    match next env n.kids.(branch) with
    | Some v -> Some v
    | None ->
        n.state <- 0;
        conditional env n ~has_else

and with_op env n kind lhs =
  match lhs with
  | Ast.Frame _ | Ast.Frames_gen ->
      if n.state = 0 then
        match next env n.kids.(0) with
        | None -> None
        | Some u ->
            let i = Int64.to_int (Value.to_int64 env.Env.dbg u) in
            Env.push_scope env (Semantics.frame_scope env i);
            n.state <- 1;
            with_op env n kind lhs
      else begin
        match next env n.kids.(1) with
        | Some v -> Some v
        | None ->
            Env.pop_scope env;
            n.state <- 0;
            with_op env n kind lhs
      end
  | _ ->
      if n.state = 0 then
        match next env n.kids.(0) with
        | None -> None
        | Some u ->
            Env.push_scope env (Semantics.with_scope env kind u);
            n.state <- 1;
            with_op env n kind lhs
      else begin
        match next env n.kids.(1) with
        | Some v -> Some v
        | None ->
            Env.pop_scope env;
            n.state <- 0;
            with_op env n kind lhs
      end

and imply env n =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some _ ->
        n.state <- 1;
        imply env n
  else
    match next env n.kids.(1) with
    | Some v -> Some v
    | None ->
        n.state <- 0;
        imply env n

and seq_op env n =
  if n.state = 0 then begin
    drain env n.kids.(0);
    n.state <- 1
  end;
  match next env n.kids.(1) with
  | Some v -> Some v
  | None ->
      n.state <- 0;
      None

and index_alias env n name =
  if n.state = 0 then begin
    n.counter <- 0L;
    n.state <- 1
  end;
  match next env n.kids.(0) with
  | Some u ->
      let i = n.counter in
      n.counter <- Int64.add i 1L;
      let sym =
        if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym
      in
      Env.define_alias env name (Value.int_value ~sym Ctype.int i);
      Some u
  | None ->
      n.state <- 0;
      None

and reduce env n r =
  if n.state = 1 then begin
    n.state <- 0;
    None
  end
  else begin
    n.state <- 1;
    let dbg = env.Env.dbg in
    let depth = Env.scope_depth env in
    let sym =
      if sym_on env then Symbolic.atom (Pretty.to_string n.expr) else no_sym
    in
    let result =
      match r with
      | Ast.Rcount ->
          let rec count acc =
            match next env n.kids.(0) with
            | Some _ -> count (acc + 1)
            | None -> acc
          in
          Value.int_value ~sym Ctype.int (Int64.of_int (count 0))
      | Ast.Rsum ->
          let rec sum acc =
            match next env n.kids.(0) with
            | Some v -> sum (Semantics.sum_step env acc v)
            | None -> acc
          in
          Semantics.sum_result env ~sym (sum (Either.Left 0L))
      | Ast.Rall ->
          let rec all () =
            match next env n.kids.(0) with
            | Some v -> if Value.truth dbg v then all () else false
            | None -> true
          in
          let ok = all () in
          if not ok then reset n.kids.(0);
          Value.int_value ~sym Ctype.int (if ok then 1L else 0L)
      | Ast.Rany ->
          let rec any () =
            match next env n.kids.(0) with
            | Some v -> if Value.truth dbg v then true else any ()
            | None -> false
          in
          let ok = any () in
          if ok then reset n.kids.(0);
          Value.int_value ~sym Ctype.int (if ok then 1L else 0L)
    in
    Env.restore_scope_depth env depth;
    Some result
  end

and seq_eq env n =
  if n.state = 1 then begin
    n.state <- 0;
    None
  end
  else begin
    n.state <- 1;
    let depth = Env.scope_depth env in
    let rec go () =
      match (next env n.kids.(0), next env n.kids.(1)) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some u, Some v -> Ops.values_equal env u v && go ()
    in
    let equal = go () in
    reset n.kids.(0);
    reset n.kids.(1);
    Env.restore_scope_depth env depth;
    Some (Ops.int_result env (if equal then 1L else 0L))
  end

(* The paper's dfs: pop a node, open its scope, stack its valid children,
   yield it. *)
and expand env n ~depth_first =
  let limit = env.Env.flags.Env.expansion_limit in
  if n.state = 0 then begin
    if env.Env.flags.Env.cycle_detect then n.visited <- Some (Hashtbl.create 64);
    n.counter <- 0L;
    n.state <- 1;
    n.work <- []
  end;
  let seen_before w =
    match n.visited with
    | None -> false
    | Some tbl -> (
        match w.Value.st with
        | Value.Rint key ->
            if Hashtbl.mem tbl key then true
            else begin
              Hashtbl.replace tbl key ();
              false
            end
        | _ -> false)
  in
  match n.work with
  | node :: rest ->
      n.counter <- Int64.add n.counter 1L;
      if limit > 0 && Int64.compare n.counter (Int64.of_int limit) > 0 then
        Error.failf "--> expansion exceeded %d nodes (cycle?)" limit
      else begin
        Env.push_scope env (Semantics.node_scope env node);
        let rec collect acc =
          match next env n.kids.(1) with
          | Some w -> (
              match Semantics.traversal_child_ok env w with
              | Some wf -> collect (wf :: acc)
              | None -> collect acc)
          | None -> List.rev acc
        in
        let kids = List.filter (fun w -> not (seen_before w)) (collect []) in
        Env.pop_scope env;
        n.work <- (if depth_first then kids @ rest else rest @ kids);
        Some node
      end
  | [] -> (
      match next env n.kids.(0) with
      | None ->
          n.state <- 0;
          None
      | Some u -> (
          match Semantics.traversal_child_ok env u with
          | Some uf when not (seen_before uf) ->
              n.work <- [ uf ];
              expand env n ~depth_first
          | _ -> expand env n ~depth_first))

and select env n =
  if n.state = 0 then begin
    n.buffer <- [||];
    n.buffered <- 0;
    n.src_done <- false;
    n.src_scopes <- env.Env.scopes;
    n.depth <- Env.scope_depth env;
    n.state <- 1
  end;
  let pull () =
    if n.src_done then false
    else begin
      let outer = env.Env.scopes in
      env.Env.scopes <- n.src_scopes;
      let got =
        match next env n.kids.(0) with
        | None ->
            n.src_done <- true;
            false
        | Some v ->
            if n.buffered >= Array.length n.buffer then begin
              let grown = Array.make (max 16 (2 * Array.length n.buffer)) dummy_value in
              Array.blit n.buffer 0 grown 0 n.buffered;
              n.buffer <- grown
            end;
            n.buffer.(n.buffered) <- v;
            n.buffered <- n.buffered + 1;
            true
      in
      n.src_scopes <- env.Env.scopes;
      env.Env.scopes <- outer;
      got
    end
  in
  let rec nth i =
    if i < n.buffered then Some n.buffer.(i)
    else if pull () then nth i
    else None
  in
  match next env n.kids.(1) with
  | None ->
      reset n.kids.(0);
      n.state <- 0;
      None
  | Some idx -> (
      let i = Int64.to_int (Value.to_int64 env.Env.dbg idx) in
      if i < 0 then select env n
      else match nth i with Some v -> Some v | None -> select env n)

and until env n stop =
  if n.state = 0 then begin
    n.depth <- Env.scope_depth env;
    n.state <- 1
  end;
  match next env n.kids.(0) with
  | None ->
      n.state <- 0;
      None
  | Some u ->
      let fired =
        match Semantics.literal env stop with
        | Some lit -> Ops.values_equal env u lit
        | None ->
            (* the source's own scopes may be live; pop only the stop
               scope *)
            let stop_depth = Env.scope_depth env in
            Env.push_scope env (Semantics.node_scope env u);
            let rec any () =
              match next env n.kids.(1) with
              | Some v ->
                  if Value.truth env.Env.dbg v then true else any ()
              | None -> false
            in
            let f = any () in
            if f then reset n.kids.(1);
            Env.restore_scope_depth env stop_depth;
            f
      in
      if fired then begin
        reset n.kids.(0);
        Env.restore_scope_depth env n.depth;
        n.state <- 0;
        None
      end
      else Some u

(* The paper's while: check that all condition values are non-zero, yield
   the body, start over. *)
and while_op env n =
  let cond_holds () =
    let depth = Env.scope_depth env in
    let rec check () =
      match next env n.kids.(0) with
      | Some v ->
          if Value.truth env.Env.dbg v then check ()
          else begin
            reset n.kids.(0);
            false
          end
      | None -> true
    in
    let ok = check () in
    Env.restore_scope_depth env depth;
    ok
  in
  if n.state = 0 then
    if cond_holds () then begin
      n.state <- 1;
      while_op env n
    end
    else None
  else
    match next env n.kids.(1) with
    | Some v -> Some v
    | None ->
        n.state <- 0;
        while_op env n

and for_op env n init cond step =
  let have_init = Option.is_some init in
  let have_cond = Option.is_some cond in
  let have_step = Option.is_some step in
  let cond_idx = if have_init then 1 else 0 in
  let step_idx = cond_idx + if have_cond then 1 else 0 in
  let body_idx = step_idx + if have_step then 1 else 0 in
  let cond_holds () =
    if not have_cond then true
    else begin
      let depth = Env.scope_depth env in
      let rec check () =
        match next env n.kids.(cond_idx) with
        | Some v ->
            if Value.truth env.Env.dbg v then check ()
            else begin
              reset n.kids.(cond_idx);
              false
            end
        | None -> true
      in
      let ok = check () in
      Env.restore_scope_depth env depth;
      ok
    end
  in
  match n.state with
  | 0 ->
      if have_init then drain env n.kids.(0);
      n.state <- 1;
      for_op env n init cond step
  | 1 ->
      if cond_holds () then begin
        n.state <- 2;
        for_op env n init cond step
      end
      else begin
        n.state <- 0;
        None
      end
  | _ -> (
      match next env n.kids.(body_idx) with
      | Some v -> Some v
      | None ->
          if have_step then drain env n.kids.(step_idx);
          n.state <- 1;
          for_op env n init cond step)

(* Cross product over the argument generators: a classic odometer.  State
   0 fills every wheel; afterwards the last wheel advances and exhausted
   wheels restart. *)
and call env n callee nargs =
  let produce () =
    Some (Semantics.call_function env callee (Array.to_list n.argvals))
  in
  if nargs = 0 then
    if n.state = 0 then begin
      n.state <- 1;
      produce ()
    end
    else begin
      n.state <- 0;
      None
    end
  else if n.state = 0 then begin
    n.argvals <- Array.make nargs dummy_value;
    let rec fill i =
      if i >= nargs then true
      else
        match next env n.kids.(i) with
        | Some v ->
            n.argvals.(i) <- v;
            fill (i + 1)
        | None -> false
    in
    if fill 0 then begin
      n.state <- 1;
      produce ()
    end
    else None
  end
  else begin
    let rec advance i =
      if i < 0 then false
      else
        match next env n.kids.(i) with
        | Some v ->
            n.argvals.(i) <- v;
            let rec refill j =
              if j >= nargs then true
              else
                match next env n.kids.(j) with
                | Some v ->
                    n.argvals.(j) <- v;
                    refill (j + 1)
                | None -> false
            in
            refill (i + 1)
        | None -> advance (i - 1)
    in
    if advance (nargs - 1) then produce ()
    else begin
      n.state <- 0;
      None
    end
  end

and declare env base (name, te) =
  ignore base;
  let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
  let size =
    try Layout.size_of env.Env.dbg.Dbgi.abi t
    with Layout.Incomplete what ->
      Error.failf "cannot declare a variable of incomplete type %s" what
  in
  let addr = env.Env.dbg.Dbgi.alloc_space size in
  Env.define_alias env name (Value.lvalue ~sym:(Symbolic.atom name) t addr)

and sizeof_expr env n =
  if n.state = 1 then begin
    n.state <- 0;
    None
  end
  else begin
    n.state <- 1;
    let depth = Env.scope_depth env in
    let t =
      match next env n.kids.(0) with
      | Some v -> v.Value.typ
      | None -> Error.fail "sizeof of an empty sequence"
    in
    reset n.kids.(0);
    Env.restore_scope_depth env depth;
    let size =
      try Layout.size_of env.Env.dbg.Dbgi.abi t
      with Layout.Incomplete what -> Error.failf "sizeof incomplete type %s" what
    in
    let sym =
      if sym_on env then Symbolic.atom (Pretty.to_string n.expr) else no_sym
    in
    Some (Value.int_value ~sym Ctype.ulong (Int64.of_int size))
  end

let eval env e =
  let root = compile e in
  Seq.of_dispenser (fun () -> next env root)
