(** DUEL values.

    The paper: "The 'values' produced during evaluation have a type, an
    actual value, and a symbolic value.  The actual value is a value of a
    primitive C type or an lvalue, which is a pointer to target data."

    Rvalues hold canonical scalars ([int64] for integers/pointers/enums,
    [float] for floating types); lvalues hold a target address (plus
    bit-field geometry for bit-field members).  All target access goes
    through the narrow debugger interface. *)

module Ctype = Duel_ctype.Ctype
module Dbgi = Duel_dbgi.Dbgi

type storage =
  | Rint of int64
  | Rfloat of float
  | Lval of int
  | Lbit of { addr : int; unit_size : int; bit_off : int; width : int }

type t = { typ : Ctype.t; st : storage; sym : Symbolic.t }

val make : Ctype.t -> storage -> Symbolic.t -> t
val with_sym : t -> Symbolic.t -> t

val int_value : ?sym:Symbolic.t -> Ctype.t -> int64 -> t
(** An integer/pointer/enum rvalue (value not normalized here). *)

val float_value : ?sym:Symbolic.t -> Ctype.t -> float -> t
val lvalue : ?sym:Symbolic.t -> Ctype.t -> int -> t

val is_lvalue : t -> bool

val addr_of : t -> int
(** @raise Error.Duel_error if the value is not an addressable lvalue. *)

val fetch : Dbgi.t -> t -> t
(** Rvalue conversion: load scalars from target memory (raising the
    paper's "Illegal memory reference" error on faults), decay arrays to
    pointers; struct/union and function designators pass through. *)

val to_int64 : Dbgi.t -> t -> int64
(** Fetch and return as integer.  @raise Error.Duel_error on non-integer,
    non-pointer values. *)

val to_float : Dbgi.t -> t -> float
val truth : Dbgi.t -> t -> bool
(** C truth of a scalar.  @raise Error.Duel_error for non-scalars. *)

val convert : Dbgi.t -> Ctype.t -> t -> t
(** Cast to a target type (C conversion rules: integer narrowing by
    two's-complement wrap, float<->int truncation, pointer<->integer
    reinterpretation).  Fetches first; keeps the operand's symbolic. *)

val store : Dbgi.t -> into:t -> t -> t
(** C assignment: convert the (fetched) right value to the destination's
    type and write it through the debugger interface; returns the stored
    value as an rvalue carrying the destination's symbolic.  Supports
    struct-to-struct copies of equal composite type.
    @raise Error.Duel_error if the destination is not an lvalue. *)

val to_cval : Dbgi.t -> t -> Dbgi.cval
(** For target function calls; fetches, decays, converts. *)

val of_cval : Dbgi.cval -> Symbolic.t -> t

val describe : t -> string
(** Short rendering for error messages, e.g. ["lvalue 0x16820"] or ["42"]. *)
