(** Recursive-descent parser for DUEL.

    Precedence, loosest to tightest (all C operators keep their relative C
    precedence; DUEL operators slot in as the paper's examples require):

    {ol
    {- [;] sequence (a trailing [;] evaluates for side effects only)}
    {- [,] alternation}
    {- [=>] imply (right-assoc)}
    {- [:=] alias and C assignment [=], [op=] (right-assoc)}
    {- [?:]}
    {- [..] / [..e] / [e..] (non-associative)}
    {- [||]} {- [&&]} {- [|]} {- [^]} {- [&]}
    {- [==] [!=] [==?] [!=?] [==/]}
    {- [<] [>] [<=] [>=] [<?] [>?] [<=?] [>=?]}
    {- [<<] [>>]} {- [+] [-]} {- [*] [/] [%]}
    {- unary: [! ~ - + * & ++ -- sizeof], casts, reductions [#/ +/ &&/ ||/],
       prefix [..e]}
    {- postfix, left-assoc chains: [e[i]], [e[[i]]], [e(args)], [e.x],
       [e->x], [e-->x], [e-->>x], [e#name], [e@stop], [e++], [e--]}}

    The right operand of [.], [->], [-->], [-->>] is a name, [_],
    a parenthesized expression, a [{e}] brace, or a control expression
    ([if]/[for]/[while], which greedily extends to the right, as in
    [hash[..1024]-->next->if (next) scope <? next->scope]).

    Declarations ([int i, *p;]) are recognized at sequence level; the
    separating [;] is the ordinary sequence operator, so
    [int i; for (i = 0; ...) ...] parses as the paper shows.  Whether an
    identifier names a type (typedef) is decided by the [is_typename]
    callback, since DUEL resolves types at evaluation time. *)

exception Error of string * int
(** Parse error: message and byte offset. *)

val parse :
  ?is_typename:(string -> bool) ->
  abi:Duel_ctype.Abi.t ->
  string ->
  Ast.expr
(** Parse a complete DUEL expression.  @raise Error on syntax errors.
    @raise Lexer.Error on lexical errors. *)

(** {1 Embedding}

    The mini-C frontend ([Duel_minic]) reuses this expression grammar
    inside its own statement grammar; these entry points parse from a
    shared token stream without requiring the whole input to be one
    expression. *)

type state

val make_state :
  ?is_typename:(string -> bool) -> (Token.t * int) array -> state

val state_pos : state -> int
val state_peek : state -> Token.t
val state_peek_at : state -> int -> Token.t
(** Token [n] positions ahead ([state_peek_at st 0 = state_peek st]). *)

val state_advance : state -> unit
val state_offset : state -> int
(** Byte offset of the current token (for line tracking). *)

val expression : state -> Ast.expr
(** Parse one assignment-level expression (no top-level [,] or [;]). *)

val type_starts : state -> bool
(** Does a type name start at the current token? *)

val base_type : state -> Ast.type_expr
val declarator : state -> Ast.type_expr -> string * Ast.type_expr
val expect : state -> Token.t -> unit
val accept_tok : state -> Token.t -> bool
val error_at : state -> string -> 'a
