(** Printing DUEL ASTs back to concrete syntax.

    Produces a canonical rendering with only the parentheses that
    precedence requires.  Used for the "displayed as entered" part of
    symbolic output (reductions, declarations) and by the
    parse–print–reparse property tests. *)

val to_string : Ast.expr -> string
val type_to_string : Ast.type_expr -> string
