(** Rendering DUEL values for display.

    Follows the paper's transcripts: integers in decimal, characters
    quoted, [char *] values shown as the string they point to, other
    pointers in hex, enum values by enumerator name, and aggregates
    (structs, unions, arrays) in gdb's brace syntax with a depth/length
    cap. *)

val value_to_string : Env.t -> Value.t -> string
(** Fetches scalars from the target as needed. *)

val scalar_literal : Env.t -> Value.t -> string
(** Compact rendering used when a [{e}] brace substitutes a value into a
    symbolic expression (e.g. [4+0*5]). *)
