lib/dbgi/dbgi.mli: Duel_ctype
