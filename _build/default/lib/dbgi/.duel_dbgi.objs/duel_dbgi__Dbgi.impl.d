lib/dbgi/dbgi.ml: Duel_ctype
