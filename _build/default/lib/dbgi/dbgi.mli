(** The DUEL–debugger interface.

    The paper keeps this interface "intentionally narrow to simplify
    connecting it to a debugger": copy bytes to/from the target, allocate
    target space, call a target function, and query symbol/type
    information.  DUEL proper (the [duel_core] library) talks to the target
    {e only} through a value of type {!t}; backends exist for the direct
    in-process simulator ({!Duel_target.Backend} in the target library) and
    for the GDB remote-serial-protocol client ([duel_rsp]).

    Mirrors the paper's function list:
    [duel_get_target_bytes], [duel_put_target_bytes],
    [duel_alloc_target_space], [duel_call_target_func],
    [duel_get_target_variable], [duel_get_target_typedef/struct/union/enum],
    plus the "miscellaneous" frame queries. *)

exception Target_fault of int
(** Raised by [get_bytes]/[put_bytes] with the faulting target address. *)

(** Scalar values crossing the interface for target-function calls.
    Pointers travel as [Cint] with a pointer type. *)
type cval = Cint of Duel_ctype.Ctype.t * int64 | Cfloat of Duel_ctype.Ctype.t * float

type var_info = { v_addr : int; v_type : Duel_ctype.Ctype.t }

type frame_info = {
  fr_index : int;  (** 0 is the innermost active frame *)
  fr_func : string;
  fr_locals : (string * var_info) list;
}

type t = {
  abi : Duel_ctype.Abi.t;
  get_bytes : addr:int -> len:int -> bytes;
  put_bytes : addr:int -> bytes -> unit;
  alloc_space : int -> int;
  call_func : string -> cval list -> cval;
      (** @raise Failure if the function is unknown. *)
  find_variable : string -> var_info option;
      (** Global (file-scope) variables and functions by name. *)
  tenv : Duel_ctype.Tenv.t;
      (** Tag and typedef lookup — the paper's
          [duel_get_target_typedef/struct/union/enum]. *)
  frames : unit -> frame_info list;
      (** Active frames, innermost first ("the number of active frames" and
          locals, from the paper's miscellaneous functions). *)
}

val readable : t -> addr:int -> len:int -> bool
(** [true] iff [get_bytes] would succeed — used by [-->] traversals to
    recognise invalid pointers without raising. *)
