lib/debug/debugger.mli: Duel_core Duel_dbgi Duel_minic
