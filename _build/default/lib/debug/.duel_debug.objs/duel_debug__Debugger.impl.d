lib/debug/debugger.ml: Duel_core Duel_ctype Duel_dbgi Duel_minic Duel_target Fun Hashtbl Int64 List Option Printf Seq String
