(** Execution control with DUEL conditions — the paper's future work,
    implemented.

    The Discussion section of the paper proposes two uses beyond the
    [duel] command: "Duel would also be useful in other traditional
    debugging facilities, e.g., watchpoints and conditional breakpoints",
    and "annotating programs with assertions written in a Duel-like
    language".  This module provides both over the mini-C substrate:

    {ul
    {- {b breakpoints} at a function entry or a (function, line), with an
       optional DUEL condition evaluated in the stopped program's context
       (innermost frame locals visible);}
    {- {b watchpoints} on arbitrary DUEL expressions — including
       generator queries like [#/(first-->next)] — re-evaluated at every
       statement and firing when the rendered values change;}
    {- {b assertions}: DUEL expressions checked at every statement; an
       assertion holds when every produced value is non-zero (so
       [&&/(x[..5] >=? 0)] and bare generator filters both work), and a
       stop fires the first time it does not.}}

    At each stop the registered handler may interrogate the paused
    program through the embedded DUEL session ({!query}) and then
    [Continue] or [Abort].  Debugger evaluations never re-trigger stops
    (no recursive hooks). *)

module Dbgi = Duel_dbgi.Dbgi

type stop_reason =
  | Breakpoint of { id : int; func : string; line : int }
  | Watchpoint of { id : int; expr : string; old_value : string; new_value : string }
  | Assertion_failed of { id : int; expr : string; detail : string }

type action = Continue | Abort

type t

val create : Duel_minic.Interp.t -> t
val interp : t -> Duel_minic.Interp.t
val session : t -> Duel_core.Session.t
(** The DUEL session attached to the (possibly stopped) program. *)

val query : t -> string -> string list
(** Run a [duel] command against the current program state. *)

val break_at : t -> ?condition:string -> ?line:int -> string -> int
(** Breakpoint on a function (entry if [line] is omitted).  The condition
    is a DUEL expression; the breakpoint fires when any of its values is
    non-zero.  Returns the breakpoint id. *)

val watch : t -> string -> int
(** Watchpoint on a DUEL expression; fires when its rendered value
    sequence changes between statements.  Returns the watchpoint id. *)

val add_assertion : t -> string -> int
val delete : t -> int -> unit
(** Remove a breakpoint/watchpoint/assertion by id (idempotent). *)

val hits : t -> int -> int
(** How many times the given breakpoint/watchpoint/assertion has fired. *)

val on_stop : t -> (t -> stop_reason -> action) -> unit
(** Install the stop handler (default: always [Continue]). *)

val describe_stop : stop_reason -> string

val run : t -> string -> Dbgi.cval list -> (Dbgi.cval, string) result
(** Execute a mini-C function under the debugger.  [Error] carries the
    abort/runtime-error message. *)

val run_int : t -> string -> int list -> (int64, string) result
