module Dbgi = Duel_dbgi.Dbgi
module Session = Duel_core.Session
module Env = Duel_core.Env
module Value = Duel_core.Value
module Interp = Duel_minic.Interp

type stop_reason =
  | Breakpoint of { id : int; func : string; line : int }
  | Watchpoint of { id : int; expr : string; old_value : string; new_value : string }
  | Assertion_failed of { id : int; expr : string; detail : string }

type action = Continue | Abort

exception Aborted of stop_reason

type breakpoint = {
  bp_id : int;
  bp_func : string;
  bp_line : int option;
  bp_cond : string option;
}

type watchpoint = { wp_id : int; wp_expr : string; mutable wp_last : string option }
type assertion = { as_id : int; as_expr : string }

type t = {
  interp : Interp.t;
  session : Session.t;
  mutable breakpoints : breakpoint list;
  mutable watchpoints : watchpoint list;
  mutable assertions : assertion list;
  hit_counts : (int, int) Hashtbl.t;
  mutable next_id : int;
  mutable handler : t -> stop_reason -> action;
  mutable in_stop : bool;  (* suppress hooks while the debugger evaluates *)
}

let session dbg = dbg.session
let interp dbg = dbg.interp

let query dbg cmd =
  dbg.in_stop <- true;
  Fun.protect
    ~finally:(fun () -> dbg.in_stop <- false)
    (fun () -> Session.exec dbg.session cmd)

let fresh_id dbg =
  let id = dbg.next_id in
  dbg.next_id <- id + 1;
  id

let break_at dbg ?condition ?line func =
  let id = fresh_id dbg in
  dbg.breakpoints <-
    { bp_id = id; bp_func = func; bp_line = line; bp_cond = condition }
    :: dbg.breakpoints;
  id

let watch dbg expr =
  let id = fresh_id dbg in
  dbg.watchpoints <- { wp_id = id; wp_expr = expr; wp_last = None } :: dbg.watchpoints;
  id

let add_assertion dbg expr =
  let id = fresh_id dbg in
  dbg.assertions <- { as_id = id; as_expr = expr } :: dbg.assertions;
  id

let delete dbg id =
  dbg.breakpoints <- List.filter (fun b -> b.bp_id <> id) dbg.breakpoints;
  dbg.watchpoints <- List.filter (fun w -> w.wp_id <> id) dbg.watchpoints;
  dbg.assertions <- List.filter (fun a -> a.as_id <> id) dbg.assertions

let hits dbg id = Option.value (Hashtbl.find_opt dbg.hit_counts id) ~default:0
let on_stop dbg handler = dbg.handler <- handler

let describe_stop = function
  | Breakpoint { id; func; line } ->
      Printf.sprintf "breakpoint %d at %s:%d" id func line
  | Watchpoint { id; expr; old_value; new_value } ->
      Printf.sprintf "watchpoint %d: %s changed: %s -> %s" id expr old_value
        new_value
  | Assertion_failed { id; expr; detail } ->
      Printf.sprintf "assertion %d failed: %s (%s)" id expr detail

(* --- evaluation helpers in the stopped program's context ---------------- *)

(* Values rendered as the duel command would print them; errors rendered
   inline so a watch on a not-yet-valid expression simply shows the
   error text until the state makes it meaningful. *)
let render dbg expr =
  match query dbg expr with
  | [] -> "<no values>"
  | lines -> String.concat "; " lines

let condition_holds dbg expr =
  dbg.in_stop <- true;
  Fun.protect
    ~finally:(fun () -> dbg.in_stop <- false)
    (fun () ->
      let env = dbg.session.Session.env in
      let depth = Env.scope_depth env in
      let result =
        match Session.parse dbg.session expr with
        | ast ->
            let seq = Session.eval dbg.session ast in
            (try Seq.exists (fun v -> Value.truth env.Env.dbg v) seq
             with Duel_core.Error.Duel_error _ -> false)
        | exception _ -> false
      in
      Env.restore_scope_depth env depth;
      result)

(* An assertion holds when every value it produces is non-zero. *)
let assertion_check dbg expr =
  dbg.in_stop <- true;
  Fun.protect
    ~finally:(fun () -> dbg.in_stop <- false)
    (fun () ->
      let env = dbg.session.Session.env in
      let depth = Env.scope_depth env in
      let result =
        match Session.parse dbg.session expr with
        | ast -> (
            let seq = Session.eval dbg.session ast in
            try
              let bad =
                Seq.filter_map
                  (fun v ->
                    if Value.truth env.Env.dbg v then None
                    else Some (Session.format_value dbg.session v))
                  seq
              in
              match bad () with
              | Seq.Nil -> Ok ()
              | Seq.Cons (first, _) -> Error first
            with Duel_core.Error.Duel_error err ->
              Error (Duel_core.Error.to_string err))
        | exception _ -> Error "unparsable assertion"
      in
      Env.restore_scope_depth env depth;
      result)

let stop dbg reason =
  Hashtbl.replace dbg.hit_counts
    (match reason with
    | Breakpoint { id; _ } | Watchpoint { id; _ } | Assertion_failed { id; _ } -> id)
    (hits dbg
       (match reason with
       | Breakpoint { id; _ } | Watchpoint { id; _ } | Assertion_failed { id; _ } ->
           id)
    + 1);
  match dbg.handler dbg reason with
  | Continue -> ()
  | Abort -> raise (Aborted reason)

let check_watchpoints dbg =
  List.iter
    (fun wp ->
      let now = render dbg wp.wp_expr in
      match wp.wp_last with
      | None -> wp.wp_last <- Some now
      | Some old when String.equal old now -> ()
      | Some old ->
          wp.wp_last <- Some now;
          stop dbg
            (Watchpoint
               { id = wp.wp_id; expr = wp.wp_expr; old_value = old; new_value = now }))
    dbg.watchpoints

let check_assertions dbg =
  List.iter
    (fun a ->
      match assertion_check dbg a.as_expr with
      | Ok () -> ()
      | Error detail ->
          stop dbg (Assertion_failed { id = a.as_id; expr = a.as_expr; detail }))
    dbg.assertions

let check_breakpoints dbg ~func ~line ~entry =
  List.iter
    (fun bp ->
      let position_matches =
        String.equal bp.bp_func func
        &&
        match bp.bp_line with
        | None -> entry
        | Some l -> (not entry) && l = line
      in
      if position_matches then
        let fire =
          match bp.bp_cond with
          | None -> true
          | Some cond -> condition_holds dbg cond
        in
        if fire then
          stop dbg (Breakpoint { id = bp.bp_id; func; line }))
    dbg.breakpoints

let hook dbg event =
  if not dbg.in_stop then
    match event with
    | Interp.Enter { func } -> check_breakpoints dbg ~func ~line:0 ~entry:true
    | Interp.Leave _ -> ()
    | Interp.Stmt { func; line } ->
        check_breakpoints dbg ~func ~line ~entry:false;
        check_watchpoints dbg;
        check_assertions dbg

let create interp =
  let inf = Interp.inferior interp in
  let dbg =
    {
      interp;
      session = Session.create (Duel_target.Backend.direct inf);
      breakpoints = [];
      watchpoints = [];
      assertions = [];
      hit_counts = Hashtbl.create 8;
      next_id = 1;
      handler = (fun _ _ -> Continue);
      in_stop = false;
    }
  in
  Interp.set_hook interp (Some (hook dbg));
  dbg

let run dbg name args =
  (* seed watchpoints so the first statement compares against the state
     at entry, not against "never evaluated" *)
  List.iter (fun wp -> wp.wp_last <- Some (render dbg wp.wp_expr)) dbg.watchpoints;
  match Interp.call dbg.interp name args with
  | v -> Ok v
  | exception Aborted reason -> Error (describe_stop reason)
  | exception Interp.Runtime_error msg -> Error msg
  | exception Duel_core.Error.Duel_error err ->
      Error (Duel_core.Error.to_string err)

let run_int dbg name args =
  let cargs =
    List.map
      (fun v -> Dbgi.Cint (Duel_ctype.Ctype.int, Int64.of_int v))
      args
  in
  match run dbg name cargs with
  | Ok (Dbgi.Cint (_, v)) -> Ok v
  | Ok (Dbgi.Cfloat (_, f)) -> Ok (Int64.of_float f)
  | Error _ as e -> e
