type entry = { label : string; duel : string; c_code : string }

let entries =
  [
    {
      label = "list duplicate values";
      duel = "L-->next->(value ==? next-->next->value)";
      c_code =
        "List *p, *q;\n\
         for (p = L; p; p = p->next)\n\
        \    for (q = p->next; q; q = q->next)\n\
        \        if (p->value == q->value)\n\
        \            printf(\"%x %x contain %d\\n\", p, q, p->value);";
    };
    {
      label = "hash scopes above 5";
      duel = "(hash[..1024] !=? 0)->scope >? 5";
      c_code =
        "int i;\n\
         for (i = 0; i < 1024; i++)\n\
        \    if (hash[i] != 0)\n\
        \        if (hash[i]->scope > 5)\n\
        \            printf(\"hash[%d]->scope = %d\\n\", i, hash[i]->scope);";
    };
    {
      label = "array values between 5 and 10";
      duel = "x[1..4,8,12..50] >? 5 <? 10";
      c_code =
        "int i;\n\
         for (i = 1; i <= 50; i++)\n\
        \    if (i <= 4 || i == 8 || i >= 12)\n\
        \        if (x[i] > 5 && x[i] < 10)\n\
        \            printf(\"x[%d] = %d\\n\", i, x[i]);";
    };
    {
      label = "count tree nodes";
      duel = "#/(root-->(left,right)->key)";
      c_code =
        "int count(struct tnode *t) {\n\
        \    if (t == 0) return 0;\n\
        \    return 1 + count(t->left) + count(t->right);\n\
         }\n\
         printf(\"%d\\n\", count(root));";
    };
    {
      label = "chain sortedness check";
      duel = "hash[..1024]-->next->if (next) scope <? next->scope";
      c_code =
        "int i; struct symbol *p;\n\
         for (i = 0; i < 1024; i++)\n\
        \    for (p = hash[i]; p; p = p->next)\n\
        \        if (p->next && p->scope < p->next->scope)\n\
        \            printf(\"hash[%d] scope %d\\n\", i, p->scope);";
    };
    {
      label = "clear first scopes";
      duel = "hash[0..1023]->scope = 0 ;";
      c_code =
        "int i;\n\
         for (i = 0; i < 1024; i++)\n\
        \    hash[i]->scope = 0;";
    };
  ]

let chars s =
  let count = ref 0 in
  String.iter
    (fun c -> if c <> ' ' && c <> '\n' && c <> '\t' then incr count)
    s;
  !count

let lines s = List.length (String.split_on_char '\n' s)

let table () =
  List.map
    (fun e -> (e.label, chars e.duel, chars e.c_code, lines e.duel, lines e.c_code))
    entries
