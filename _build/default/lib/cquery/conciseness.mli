(** The paper's DUEL-vs-C conciseness comparison (experiment C1).

    Each entry pairs a DUEL one-liner from the paper with the C code the
    paper (or a straightforward translation) would need, so the benchmark
    harness can print the character/line comparison table. *)

type entry = {
  label : string;
  duel : string;
  c_code : string;  (** the equivalent C, as in the paper where given *)
}

val entries : entry list

val chars : string -> int
(** Non-whitespace character count (whitespace is formatting, not typing
    effort). *)

val lines : string -> int

val table : unit -> (string * int * int * int * int) list
(** [(label, duel_chars, c_chars, duel_lines, c_lines)] per entry. *)
