(** Baseline state-exploration queries, hand-coded "as you would in C".

    The paper motivates DUEL by contrasting one-line queries with the
    non-trivial C loops a programmer would otherwise write (its
    introduction shows the list-duplicate scan in C).  These are those C
    loops, written directly against the narrow debugger interface — the
    moral equivalent of the "functions whose only use is to be called from
    the debugger".  Result-set equality with the DUEL one-liners is
    asserted by the integration tests, and bench B5 compares their cost.

    All functions raise [Failure] if the expected globals or types are
    missing (they are tied to the {!Duel_scenarios} debuggees). *)

module Dbgi = Duel_dbgi.Dbgi

val read_int_at : Dbgi.t -> Duel_ctype.Ctype.t -> int -> int64
val read_ptr_at : Dbgi.t -> int -> int

val array_search :
  Dbgi.t -> name:string -> ranges:(int * int) list -> lo:int64 -> hi:int64 ->
  (int * int64) list
(** C loop for [x[ranges] >? lo <? hi]: indices and values strictly
    between [lo] and [hi], scanning the inclusive index ranges. *)

val array_positives : Dbgi.t -> name:string -> n:int -> (int * int64) list
(** C loop for [x[..n] >? 0]. *)

val hash_high_scopes : Dbgi.t -> threshold:int64 -> (int * int64) list
(** C loop for [(hash[..1024] !=? 0)->scope >? threshold]: bucket index and
    scope of heads whose scope exceeds the threshold. *)

val list_duplicates : Dbgi.t -> name:string -> (int * int * int64) list
(** The introduction's doubly nested loop (with its off-by-one bug fixed):
    pairs [i < j] of node indices whose [value] fields are equal. *)

val tree_keys_preorder : Dbgi.t -> name:string -> int64 list
val tree_count : Dbgi.t -> name:string -> int

val sort_violations : Dbgi.t -> (int * int * int64) list
(** C loops for the sortedness check over all hash chains: (bucket, link
    depth, scope) where a node's scope is less than its successor's. *)
