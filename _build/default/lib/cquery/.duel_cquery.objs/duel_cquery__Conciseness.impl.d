lib/cquery/conciseness.ml: List String
