lib/cquery/cquery.mli: Duel_ctype Duel_dbgi
