lib/cquery/conciseness.mli:
