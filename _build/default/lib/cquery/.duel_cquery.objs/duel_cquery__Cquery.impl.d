lib/cquery/cquery.ml: Array Bytes Char Duel_ctype Duel_dbgi Int64 List
