lib/mem/alloc.mli: Memory
