lib/mem/memory.mli:
