lib/mem/codec.mli: Duel_ctype Memory
