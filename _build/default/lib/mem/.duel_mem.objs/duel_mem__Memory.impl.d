lib/mem/memory.ml: Bytes Char Hashtbl
