lib/mem/alloc.ml: Bytes Hashtbl List Memory Printf
