lib/mem/codec.ml: Buffer Bytes Char Duel_ctype Int32 Int64 Memory Printf
