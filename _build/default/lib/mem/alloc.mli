(** First-fit heap allocator over a region of target memory.

    Backs the paper's [duel_alloc_target_space] (DUEL declarations such as
    [int i;] allocate target locations) and the scenario builders' object
    graphs.  Returned blocks are 16-byte aligned and the underlying pages
    are mapped on demand; [free] recycles blocks and coalesces neighbours.

    @raise Out_of_memory when the region is exhausted. *)

type t

val create : Memory.t -> base:int -> size:int -> t
val malloc : t -> int -> int
(** Allocate [n] bytes ([n = 0] behaves as [n = 1]); contents zeroed. *)

val free : t -> int -> unit
(** @raise Invalid_argument if the address is not a live allocation. *)

val block_size : t -> int -> int option
(** Size of the live allocation starting at this address, if any. *)

val live_blocks : t -> int
val bytes_in_use : t -> int
