type free_block = { fb_addr : int; fb_size : int }

type t = {
  mem : Memory.t;
  base : int;
  limit : int;
  mutable free_list : free_block list;  (* sorted by address *)
  live : (int, int) Hashtbl.t;  (* addr -> size *)
}

let alignment = 16
let align_up n = (n + alignment - 1) / alignment * alignment

let create mem ~base ~size =
  if base <= 0 || size <= 0 then invalid_arg "Alloc.create: bad region";
  let base = align_up base in
  {
    mem;
    base;
    limit = base + size;
    free_list = [ { fb_addr = base; fb_size = size } ];
    live = Hashtbl.create 64;
  }

let zero heap addr size =
  Memory.map heap.mem ~addr ~size;
  Memory.write heap.mem ~addr (Bytes.make size '\000')

let malloc heap n =
  if n < 0 then invalid_arg "Alloc.malloc: negative size";
  let n = align_up (max n 1) in
  let rec take acc = function
    | [] -> raise Out_of_memory
    | b :: rest when b.fb_size >= n ->
        let remainder =
          if b.fb_size = n then []
          else [ { fb_addr = b.fb_addr + n; fb_size = b.fb_size - n } ]
        in
        heap.free_list <- List.rev_append acc (remainder @ rest);
        b.fb_addr
    | b :: rest -> take (b :: acc) rest
  in
  let addr = take [] heap.free_list in
  Hashtbl.replace heap.live addr n;
  zero heap addr n;
  addr

(* Reinsert a block into the address-sorted free list, coalescing with the
   blocks that end at its start or begin at its end. *)
let free heap addr =
  match Hashtbl.find_opt heap.live addr with
  | None -> invalid_arg (Printf.sprintf "Alloc.free: 0x%x is not allocated" addr)
  | Some size ->
      Hashtbl.remove heap.live addr;
      let rec insert = function
        | [] -> [ { fb_addr = addr; fb_size = size } ]
        | b :: rest when b.fb_addr + b.fb_size = addr ->
            insert_merged { fb_addr = b.fb_addr; fb_size = b.fb_size + size } rest
        | b :: rest when addr + size = b.fb_addr ->
            { fb_addr = addr; fb_size = size + b.fb_size } :: rest
        | b :: rest when b.fb_addr > addr ->
            { fb_addr = addr; fb_size = size } :: b :: rest
        | b :: rest -> b :: insert rest
      and insert_merged merged = function
        | b :: rest when merged.fb_addr + merged.fb_size = b.fb_addr ->
            { merged with fb_size = merged.fb_size + b.fb_size } :: rest
        | rest -> merged :: rest
      in
      heap.free_list <- insert heap.free_list

let block_size heap addr = Hashtbl.find_opt heap.live addr
let live_blocks heap = Hashtbl.length heap.live
let bytes_in_use heap = Hashtbl.fold (fun _ s acc -> acc + s) heap.live 0
