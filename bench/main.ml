(* Benchmark harness: regenerates every quantitative claim in the paper's
   evaluation (experiments B1-B6 and C1 in DESIGN.md / EXPERIMENTS.md).

   The paper has no numbered tables or figures; its measurable claims are
   in the Implementation section.  For each experiment we print the
   measured numbers and the paper's claim next to a PASS/CHECK verdict on
   the *shape* (who is faster, by roughly what factor), since absolute
   numbers are hardware-bound (the paper used a DECstation 5000).

   Run with: dune exec bench/main.exe *)

open Bechamel
module Session = Duel_core.Session
module Env = Duel_core.Env
module Scenarios = Duel_scenarios.Scenarios
module Cquery = Duel_cquery.Cquery
module Conciseness = Duel_cquery.Conciseness
module Backend = Duel_backend.Backend
module Dbgi = Duel_dbgi.Dbgi
module Dispatcher = Duel_dbgi.Dispatcher

let ( // ) a b = if b = 0.0 then Float.nan else a /. b

(* Backends are built from spec strings (lib/backend): the configuration
   a tier measures is the same value a user can hand to oduel --target. *)
let backend_of spec =
  match Backend.of_string spec with
  | Ok b -> b
  | Error m -> failwith (spec ^ ": " ^ m)

(* --- tiny driver on top of bechamel ------------------------------------ *)

let measure (tests : (string * (unit -> unit)) list) : (string * float) list =
  let elts =
    List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) tests
  in
  let grouped = Test.make_grouped ~name:"g" ~fmt:"%s%s" elts in
  let cfg =
    Benchmark.cfg ~limit:400 ~quota:(Time.second 0.4) ~stabilize:false
      ~start:10 ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let label = Measure.label Toolkit.Instance.monotonic_clock in
  let ols_of arr =
    let ols =
      Analyze.OLS.ols ~bootstrap:0 ~r_square:false ~responder:label
        ~predictors:[| Measure.run |] arr
    in
    match Analyze.OLS.estimates ols with
    | Some (est :: _) -> est
    | _ -> Float.nan
  in
  List.map
    (fun (name, _) ->
      let key = "g" ^ name in
      match Hashtbl.find_opt raw key with
      | Some b -> (name, ols_of b.Benchmark.lr)
      | None -> (name, Float.nan))
    tests

let ns v =
  if Float.is_nan v then "n/a"
  else if v >= 1e9 then Printf.sprintf "%8.2f s " (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%8.2f ms" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%8.2f us" (v /. 1e3)
  else Printf.sprintf "%8.0f ns" v

let header title = Printf.printf "\n=== %s ===\n" title
let row name v = Printf.printf "  %-42s %s\n" name (ns v)

let verdict ok claim =
  Printf.printf "  -> %s %s\n" (if ok then "[shape holds]" else "[CHECK]") claim

let session_of inf = Session.create (Duel_target.Backend.direct inf)

let prepared session query =
  let ast = Session.parse session query in
  fun () -> ignore (Session.drive session ast)

(* --- B1: the x[..10000] >? 0 sweep -------------------------------------- *)

let b1 () =
  header "B1  sweep: big[..10000] >? 0   (paper: ~5 s on a DECstation 5000)";
  let inf = Scenarios.big_array 10000 in
  let s = session_of inf in
  let query = "big[..10000] >? 0" in
  let eval_only = prepared s query in
  let parse_and_eval () = ignore (Session.drive s (Session.parse s query)) in
  let eval_1k = prepared s "big[..1000] >? 0" in
  let results =
    measure
      [
        ("b1_eval_10k", eval_only);
        ("b1_parse_eval_10k", parse_and_eval);
        ("b1_eval_1k", eval_1k);
      ]
  in
  List.iter (fun (n, v) -> row n v) results;
  let t10k = List.assoc "b1_eval_10k" results in
  let t1k = List.assoc "b1_eval_1k" results in
  verdict
    (t10k < 5e9 && t10k > t1k && t10k // t1k < 30.0)
    (Printf.sprintf
       "well under the interactive threshold; cost scales ~linearly (10k/1k \
        = %.1fx)"
       (t10k // t1k))

(* --- B2: name lookup dominates 1..100+i ---------------------------------- *)

let b2 () =
  header
    "B2  lookup: 1..100+i   (paper: most time goes to the 100 lookups of i; \
     measured at 5000 iterations so the lookup term dominates the noise)";
  let inf = Scenarios.all () in
  let s = session_of inf in
  (* symbolic computation off so the measurement isolates name lookup *)
  s.Session.env.Env.flags.Env.symbolic <- false;
  ignore (Session.exec s "i := 5");
  let alias = prepared s "1..5000+i" in
  let const = prepared s "1..5000+5" in
  let global = prepared s "1..5000+i0" in
  let results =
    measure
      [ ("b2_alias_i", alias); ("b2_global_i0", global); ("b2_const_5", const) ]
  in
  List.iter (fun (n, v) -> row n v) results;
  let ta = List.assoc "b2_alias_i" results in
  let tg = List.assoc "b2_global_i0" results in
  let tc = List.assoc "b2_const_5" results in
  (* expected divergence: the 1993 claim came from per-evaluation searches
     of gdb's symbol tables; our O(1) hash lookups put the name cost within
     measurement noise of a constant.  The verdict asserts exactly that. *)
  verdict
    (ta // tc < 2.0 && tg // tc < 2.0)
    (Printf.sprintf
       "alias %.2fx, global(+fetch) %.2fx of the constant query: lookups NO \
        LONGER dominate (expected divergence — the paper's cost was gdb's \
        per-evaluation symbol search; see EXPERIMENTS.md B2)"
       (ta // tc) (tg // tc))

(* --- B3: symbolic-value computation dominates ---------------------------- *)

let b3 () =
  header
    "B3  symbolic values: big[..1000] !=? 0   (paper: symbolic computation \
     is more expensive than the result; computed 1000 times, printed once)";
  let inf = Scenarios.big_array 1000 in
  let s_on = session_of inf in
  let s_off = session_of inf in
  s_off.Session.env.Env.flags.Env.symbolic <- false;
  let query = "big[..1000] !=? 0" in
  let on = prepared s_on query in
  let off = prepared s_off query in
  let results = measure [ ("b3_symbolic_on", on); ("b3_symbolic_off", off) ] in
  List.iter (fun (n, v) -> row n v) results;
  let t_on = List.assoc "b3_symbolic_on" results in
  let t_off = List.assoc "b3_symbolic_off" results in
  verdict (t_on > t_off)
    (Printf.sprintf "symbolic overhead: %.2fx (on/off)" (t_on // t_off))

(* --- B4: engine ablation -------------------------------------------------- *)

let b4 () =
  header
    "B4  engines: lazy-Seq vs paper's state machine   (paper: 'more \
     efficient implementations of generators are possible')";
  let mk engine =
    let inf = Scenarios.all () in
    Session.create ~engine (Duel_target.Backend.direct inf)
  in
  let seq = mk Session.Seq_engine and sm = mk Session.Sm_engine in
  let deep = "hash[..1024]-->next->if (next) scope <? next->scope" in
  let arith = "((1..40)*(1..40)) >? 1500" in
  let results =
    measure
      [
        ("b4_seq_traversal", prepared seq deep);
        ("b4_sm_traversal", prepared sm deep);
        ("b4_seq_arith", prepared seq arith);
        ("b4_sm_arith", prepared sm arith);
      ]
  in
  List.iter (fun (n, v) -> row n v) results;
  let r1 =
    List.assoc "b4_sm_traversal" results
    // List.assoc "b4_seq_traversal" results
  in
  let r2 =
    List.assoc "b4_sm_arith" results // List.assoc "b4_seq_arith" results
  in
  verdict
    (Float.is_finite r1 && Float.is_finite r2)
    (Printf.sprintf
       "state-machine/seq cost ratio: traversal %.2fx, arithmetic %.2fx \
        (both engines interactive-speed)"
       r1 r2)

(* --- B5: interpreted DUEL vs compiled-style C baseline -------------------- *)

let b5 () =
  header
    "B5  DUEL one-liners vs the C baseline loops   (intro claim: the \
     one-liner replaces non-trivial C; cost of interpretation is the price)";
  let inf = Scenarios.all () in
  let s = session_of inf in
  let dbg = Duel_target.Backend.direct inf in
  let pairs =
    [
      ( "array_search",
        prepared s "x[1..4,8,12..50] >? 5 <? 10",
        fun () ->
          ignore
            (Cquery.array_search dbg ~name:"x"
               ~ranges:[ (1, 4); (8, 8); (12, 50) ]
               ~lo:5L ~hi:10L) );
      ( "hash_scan",
        prepared s "(hash[..1024] !=? 0)->scope >? 5",
        fun () -> ignore (Cquery.hash_high_scopes dbg ~threshold:5L) );
      ( "list_dups",
        prepared s
          "L-->next#i->value ==? L-->next#j->value => if (i < j) \
           L-->next[[i,j]]->value",
        fun () -> ignore (Cquery.list_duplicates dbg ~name:"L") );
      ( "tree_count",
        prepared s "#/(root-->(left,right)->key)",
        fun () -> ignore (Cquery.tree_count dbg ~name:"root") );
    ]
  in
  let tests =
    List.concat_map
      (fun (name, duel, c) -> [ ("b5_duel_" ^ name, duel); ("b5_c_" ^ name, c) ])
      pairs
  in
  let results = measure tests in
  List.iter (fun (n, v) -> row n v) results;
  let all_slower =
    List.for_all
      (fun (name, _, _) ->
        List.assoc ("b5_duel_" ^ name) results
        > List.assoc ("b5_c_" ^ name) results)
      pairs
  in
  let ratios =
    String.concat ", "
      (List.map
         (fun (name, _, _) ->
           Printf.sprintf "%s %.0fx" name
             (List.assoc ("b5_duel_" ^ name) results
             // List.assoc ("b5_c_" ^ name) results))
         pairs)
  in
  verdict all_slower
    ("interpretation overhead vs native loops (still interactive): " ^ ratios)

(* --- B6: debugger-interface transport overhead ---------------------------- *)

let b6 () =
  header
    "B6  narrow interface: direct backend vs RSP loopback   (paper: the \
     interface is intentionally narrow; here every access crosses a \
     gdbserver-style packet layer)";
  (* cache off on the bare-RSP arm: this experiment measures the packet
     layer; D1 below measures what the data cache recovers. *)
  let direct_s = Session.create (Backend.of_spec "direct:all+cache") in
  let rsp_s = Session.create (Backend.of_spec "rsp:all") in
  let rsp_cached_s = Session.create (Backend.of_spec "rsp:all+cache") in
  let query = "x[..100] >? 0" in
  let results =
    measure
      [
        ("b6_direct", prepared direct_s query);
        ("b6_rsp", prepared rsp_s query);
        ("b6_rsp_dcache", prepared rsp_cached_s query);
      ]
  in
  List.iter (fun (n, v) -> row n v) results;
  let r = List.assoc "b6_rsp" results // List.assoc "b6_direct" results in
  verdict (r > 1.0) (Printf.sprintf "packet layer costs %.1fx on this sweep" r)

(* --- B7: DUEL in watchpoints (the paper's future work) -------------------- *)

let b7_program =
  {|
struct cell { int value; struct cell *next; };
struct cell *first;
int push(int v) {
  struct cell *q;
  q = (struct cell *)malloc(sizeof(struct cell));
  q->value = v;
  q->next = first;
  first = q;
  return v;
}
int build(int n) {
  int i;
  for (i = 0; i < n; i++) push(i);
  return n;
}
|}

let b7 () =
  header
    "B7  DUEL conditions in watchpoints   (paper: 'a faster implementation \
     would be required if Duel expressions were used in watchpoints and \
     conditional breakpoints' — we measure exactly that overhead)";
  let fresh () =
    let inf = Duel_target.Inferior.create () in
    Duel_target.Stdfuncs.register_all inf;
    let interp = Duel_minic.Interp.load inf b7_program in
    Duel_debug.Debugger.create interp
  in
  let bare = fresh () in
  let watched = fresh () in
  ignore (Duel_debug.Debugger.watch watched "#/(first-->next)");
  let watched_off = fresh () in
  ignore (Duel_debug.Debugger.watch watched_off "#/(first-->next)");
  (Duel_debug.Debugger.session watched_off).Session.env.Env.flags.Env.symbolic <-
    false;
  let run dbg () =
    match Duel_debug.Debugger.run_int dbg "build" [ 20 ] with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let results =
    measure
      [
        ("b7_no_watchpoint", run bare);
        ("b7_duel_watchpoint", run watched);
        ("b7_watchpoint_nosym", run watched_off);
      ]
  in
  List.iter (fun (n, v) -> row n v) results;
  let r =
    List.assoc "b7_duel_watchpoint" results
    // List.assoc "b7_no_watchpoint" results
  in
  let r2 =
    List.assoc "b7_duel_watchpoint" results
    // List.assoc "b7_watchpoint_nosym" results
  in
  verdict (r > 2.0)
    (Printf.sprintf
       "a per-statement DUEL watchpoint costs %.0fx; symbolic computation \
        alone accounts for %.1fx of it — the paper's concern, quantified"
       r r2)

(* --- D1: the target-memory data cache over RSP ---------------------------- *)

(* Deep pointer traversals where every [->next] hop is a dependent target
   read: the worst case for a packet-per-access remote protocol and the
   best case for the line-granular data cache.  We count actual framed
   packets through a counted exchange and time the same query cached and
   uncached.  [--quick --json FILE] runs only this tier (the CI smoke
   step); a full run appends it after B1-C1. *)

type d1_row = {
  d_name : string;
  d_query : string;
  d_size : int;
  d_packets_uncached : int;
  d_packets_cached : int;
  d_packets_prefetch : int;
  d_uncached_s : float;
  d_cached_cold_s : float;
  d_cached_warm_s : float;
  d_prefetch_cold_s : float;
}

let time_run fn =
  let t0 = Unix.gettimeofday () in
  fn ();
  Unix.gettimeofday () -. t0

let best_of k fn =
  let rec go best k =
    if k = 0 then best else go (Float.min best (time_run fn)) (k - 1)
  in
  go (time_run fn) (k - 1)

(* The RSP loopback with the backend library's packet counter; the
   cached arm is literally the same spec plus "+cache". *)
let d1_workload ~name ~query ~size ~spec =
  (* Uncached: every access is a round-trip. *)
  let b_u = backend_of spec in
  let s_u = Session.create b_u.Backend.b_dbg in
  let run_u = prepared s_u query in
  run_u ();
  let d_packets_uncached = !(b_u.Backend.b_packets) in
  let d_uncached_s = best_of 3 run_u in
  (* Cached: the first (cold) run is the packet count that matters. *)
  let b_c = backend_of (spec ^ "+cache") in
  let s_c = Session.create b_c.Backend.b_dbg in
  let run_c = prepared s_c query in
  let d_cached_cold_s = time_run run_c in
  let d_packets_cached = !(b_c.Backend.b_packets) in
  let d_cached_warm_s = best_of 3 run_c in
  (match Duel_dbgi.Dcache.stats b_c.Backend.b_dbg with
  | Some st ->
      Printf.printf "  %-14s cache counters: %s\n" name
        (String.concat "; " (Duel_dbgi.Dcache.to_lines st))
  | None -> ());
  (* Prefetching: same cache, plus the traversal prefetch planner.  The
     cold run is the one the planner exists for — dependent chases whose
     lines arrive in batched spans instead of one fill per line. *)
  let b_p = backend_of (spec ^ "+cache+prefetch") in
  let s_p = Session.create b_p.Backend.b_dbg in
  let run_p = prepared s_p query in
  let d_prefetch_cold_s = time_run run_p in
  let d_packets_prefetch = !(b_p.Backend.b_packets) in
  (match Duel_dbgi.Prefetch.stats b_p.Backend.b_dbg with
  | Some st ->
      Printf.printf "  %-14s prefetch counters: %s\n" name
        (String.concat "; " (Duel_dbgi.Prefetch.to_lines st))
  | None -> ());
  b_u.Backend.b_close ();
  b_c.Backend.b_close ();
  b_p.Backend.b_close ();
  {
    d_name = name;
    d_query = query;
    d_size = size;
    d_packets_uncached;
    d_packets_cached;
    d_packets_prefetch;
    d_uncached_s;
    d_cached_cold_s;
    d_cached_warm_s;
    d_prefetch_cold_s;
  }

let d1_pass r =
  r.d_packets_uncached >= 5 * r.d_packets_cached
  && r.d_cached_cold_s < r.d_uncached_s
  && r.d_packets_cached >= 3 * r.d_packets_prefetch

let d1_json ~quick rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"dcache_rsp_traversal\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"query\": %S, \"size\": %d,\n\
           \     \"packets_uncached\": %d, \"packets_cached\": %d, \
            \"packets_prefetch\": %d, \"packet_ratio\": %.2f,\n\
           \     \"prefetch_ratio\": %.2f,\n\
           \     \"uncached_s\": %.6f, \"cached_cold_s\": %.6f, \
            \"cached_warm_s\": %.6f,\n\
           \     \"prefetch_cold_s\": %.6f,\n\
           \     \"speedup_cold\": %.2f, \"speedup_warm\": %.2f, \"pass\": \
            %b}%s\n"
           r.d_name r.d_query r.d_size r.d_packets_uncached r.d_packets_cached
           r.d_packets_prefetch
           (float_of_int r.d_packets_uncached
           // float_of_int r.d_packets_cached)
           (float_of_int r.d_packets_cached
           // float_of_int r.d_packets_prefetch)
           r.d_uncached_s r.d_cached_cold_s r.d_cached_warm_s
           r.d_prefetch_cold_s
           (r.d_uncached_s // r.d_cached_cold_s)
           (r.d_uncached_s // r.d_cached_warm_s)
           (d1_pass r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"pass\": %b\n}\n" (List.for_all d1_pass rows));
  Buffer.contents b

let d1 ~quick ~json_file () =
  header
    "D1  data cache: deep traversals over RSP loopback, cache off / on / \
     on+prefetch (packets = framed $...#xx exchanges; cold = first run on \
     an empty cache)";
  let n = if quick then 600 else 2000 in
  let depth = if quick then 9 else 11 in
  let r_list =
    d1_workload ~name:"deep_list" ~query:"#/(deep-->next->value)" ~size:n
      ~spec:(Printf.sprintf "rsp:deep_list:%d" n)
  in
  let r_tree =
    d1_workload ~name:"deep_tree" ~query:"#/(droot-->(left,right)->key)"
      ~size:depth
      ~spec:(Printf.sprintf "rsp:deep_tree:%d" depth)
  in
  let rows = [ r_list; r_tree ] in
  Printf.printf "  %-14s %10s %10s %10s %8s %12s %12s %12s\n" "workload"
    "pkts(raw)" "pkts($)" "pkts(pf)" "ratio" "raw" "cold $" "cold pf";
  List.iter
    (fun r ->
      Printf.printf "  %-14s %10d %10d %10d %7.1fx %s %s %s\n" r.d_name
        r.d_packets_uncached r.d_packets_cached r.d_packets_prefetch
        (float_of_int r.d_packets_uncached // float_of_int r.d_packets_cached)
        (ns (r.d_uncached_s *. 1e9))
        (ns (r.d_cached_cold_s *. 1e9))
        (ns (r.d_prefetch_cold_s *. 1e9)))
    rows;
  let pass = List.for_all d1_pass rows in
  verdict pass
    (Printf.sprintf
       "cache cuts packets %.1fx (list) / %.1fx (tree); prefetch cuts \
        cold-cache packets a further %.1fx / %.1fx (need >= 5x cache, >= \
        3x prefetch, cold < raw)"
       (match rows with
       | r :: _ ->
           float_of_int r.d_packets_uncached // float_of_int r.d_packets_cached
       | [] -> Float.nan)
       (match rows with
       | [ _; r ] ->
           float_of_int r.d_packets_uncached // float_of_int r.d_packets_cached
       | _ -> Float.nan)
       (match rows with
       | r :: _ ->
           float_of_int r.d_packets_cached // float_of_int r.d_packets_prefetch
       | [] -> Float.nan)
       (match rows with
       | [ _; r ] ->
           float_of_int r.d_packets_cached // float_of_int r.d_packets_prefetch
       | _ -> Float.nan));
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc (d1_json ~quick rows);
      close_out oc;
      Printf.printf "  (wrote %s)\n" file
  | None -> ());
  pass

(* --- L1: the lowering / name-resolution cache tier ------------------------ *)

(* Steady-state cost of a compiled query, lowered (resolution slots live)
   vs the Dynamic-slot ablation (full lookup chain on every pull): the
   cost a conditional breakpoint pays on every step.  The IR is compiled
   once and re-driven, exactly like [Session.compile] + [eval_ir] in a
   watchpoint.  The lookup-bound query is a hard gate: the bench exits
   nonzero unless lowering wins by >= 2x there. *)

type l1_row = {
  l_name : string;
  l_query : string;
  l_size : int;
  l_dynamic_s : float;
  l_lowered_s : float;
  l_hits : int;
  l_dynamic_lookups : int;
  l_gated : bool;
}

let l1_gate = 2.0

let l1_workload ~name ~gated ~query ~size ~make_inf =
  let time_mode lower =
    let s = session_of (make_inf ()) in
    s.Session.env.Env.flags.Env.symbolic <- false;
    s.Session.lower <- lower;
    let ir = Session.compile s (Session.parse s query) in
    let run () = ignore (Session.drive_ir s ir) in
    (* one warm run: slot population is a first-run cost; the steady
       state is what repeated re-evaluation pays *)
    run ();
    let t = best_of 5 run in
    (t, s.Session.env.Env.lstats)
  in
  let l_dynamic_s, dls = time_mode false in
  let l_lowered_s, lls = time_mode true in
  {
    l_name = name;
    l_query = query;
    l_size = size;
    l_dynamic_s;
    l_lowered_s;
    l_hits = lls.Env.l_hits;
    l_dynamic_lookups = dls.Env.l_dynamic;
    l_gated = gated;
  }

let l1_pass r = (not r.l_gated) || r.l_dynamic_s >= l1_gate *. r.l_lowered_s

let l1_json ~quick rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"lowering_resolution_cache\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b (Printf.sprintf "  \"gate\": %.1f,\n" l1_gate);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"query\": %S, \"size\": %d,\n\
           \     \"dynamic_s\": %.6f, \"lowered_s\": %.6f, \"speedup\": \
            %.2f,\n\
           \     \"slot_hits\": %d, \"dynamic_lookups\": %d, \"gated\": %b, \
            \"pass\": %b}%s\n"
           r.l_name r.l_query r.l_size r.l_dynamic_s r.l_lowered_s
           (r.l_dynamic_s // r.l_lowered_s)
           r.l_hits r.l_dynamic_lookups r.l_gated (l1_pass r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"pass\": %b\n}\n" (List.for_all l1_pass rows));
  Buffer.contents b

let l1 ~quick ~json_file () =
  header
    "L1  lowering: compiled IR re-driven, resolution slots vs Dynamic \
     ablation (the cost a DUEL breakpoint condition pays per step; \
     lookup-bound query gated at >= 2x)";
  let n = if quick then 2000 else 5000 in
  let sweep = if quick then 2000 else 10000 in
  (* The gated workload evaluates a global from a breakpoint 40 calls deep
     in recursion: the dynamic chain rebuilds the frame list and walks it
     past the alias table on every one of the N lookups (what the paper
     measured in gdb); the resolution slot pays one stamped cache probe. *)
  let deep_stack () =
    let inf = Scenarios.all () in
    for _ = 1 to 40 do
      Duel_target.Inferior.push_frame inf "fib"
        [ ("n", Duel_ctype.Ctype.int); ("acc", Duel_ctype.Ctype.int) ]
    done;
    inf
  in
  let r_lookup =
    l1_workload ~name:"lookup_bound" ~gated:true
      ~query:(Printf.sprintf "(1..%d) + i0" n)
      ~size:n ~make_inf:deep_stack
  in
  let r_sweep =
    l1_workload ~name:"memory_sweep" ~gated:false
      ~query:(Printf.sprintf "big[..%d] >? 0" sweep)
      ~size:sweep
      ~make_inf:(fun () -> Scenarios.big_array sweep)
  in
  let r_shallow =
    l1_workload ~name:"shallow_stack" ~gated:false
      ~query:(Printf.sprintf "(1..%d) + i0" n)
      ~size:n
      ~make_inf:(fun () -> Scenarios.all ())
  in
  let rows = [ r_lookup; r_shallow; r_sweep ] in
  Printf.printf "  %-14s %12s %12s %8s %10s %10s\n" "workload" "dynamic"
    "lowered" "speedup" "slot hits" "dyn looks";
  List.iter
    (fun r ->
      Printf.printf "  %-14s %s %s %7.2fx %10d %10d%s\n" r.l_name
        (ns (r.l_dynamic_s *. 1e9))
        (ns (r.l_lowered_s *. 1e9))
        (r.l_dynamic_s // r.l_lowered_s)
        r.l_hits r.l_dynamic_lookups
        (if r.l_gated then "  [gate >= 2x]" else ""))
    rows;
  let pass = List.for_all l1_pass rows in
  verdict pass
    (Printf.sprintf
       "slots make the lookup-bound query %.1fx faster at 40 frames (gate \
        %.1fx), %.1fx at 3; the memory-bound sweep moves %.2fx \
        (informational — its cost is target reads, not name resolution)"
       (r_lookup.l_dynamic_s // r_lookup.l_lowered_s)
       l1_gate
       (r_shallow.l_dynamic_s // r_shallow.l_lowered_s)
       (r_sweep.l_dynamic_s // r_sweep.l_lowered_s));
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc (l1_json ~quick rows);
      close_out oc;
      Printf.printf "  (wrote %s)\n" file
  | None -> ());
  pass

(* --- V1: the bytecode VM tier --------------------------------------------- *)

(* Steady-state cost of a compiled query on the three engines: the
   unlowered walker (ast), the lowered walker (ir — the VM's comparison
   point) and the bytecode VM.  Compiled once, re-driven, symbolics off:
   the watchpoint pattern, same methodology as L1.  The [#/] reduce loop
   is the hard gate — fully fused, its accumulator never leaves the VM's
   integer registers, so the VM must beat the lowered walker by >= 2x.
   The lookup- and chase-bound arms are parity gates (>= 0.9x): their
   cost is name resolution and target reads, which the superinstructions
   call straight into, so the VM must at least not regress them. *)

let v1_reduce_gate = 2.0
let v1_parity_gate = 0.9

type v1_row = {
  v_name : string;
  v_query : string;
  v_size : int;
  v_ast_s : float;
  v_ir_s : float;
  v_vm_s : float;
  v_gate : float;  (* required vm-over-ir speedup *)
  v_super : int;  (* superinstruction dispatches during the VM timing *)
  v_fused : int;  (* elements folded inside fused reduce loops *)
}

let v1_workload ~name ~query ~size ~gate ~make_inf =
  let time engine lower =
    let s = session_of (make_inf ()) in
    s.Session.engine <- engine;
    s.Session.env.Env.flags.Env.symbolic <- false;
    s.Session.lower <- lower;
    let ir = Session.compile s (Session.parse s query) in
    let run () = ignore (Session.drive_ir s ir) in
    run ();
    (best_of 5 run, s.Session.vstats)
  in
  let v_ast_s, _ = time Session.Seq_engine false in
  let v_ir_s, _ = time Session.Seq_engine true in
  let v_vm_s, vs = time Session.Vm_engine true in
  {
    v_name = name;
    v_query = query;
    v_size = size;
    v_ast_s;
    v_ir_s;
    v_vm_s;
    v_gate = gate;
    v_super = vs.Duel_core.Vm.v_super;
    v_fused = vs.Duel_core.Vm.v_fused;
  }

let v1_pass r = r.v_ir_s >= r.v_gate *. r.v_vm_s

let v1_json ~quick rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"bytecode_vm_engine\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b
    (Printf.sprintf "  \"reduce_gate\": %.1f, \"parity_gate\": %.1f,\n"
       v1_reduce_gate v1_parity_gate);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"query\": %S, \"size\": %d,\n\
           \     \"ast_s\": %.6f, \"ir_s\": %.6f, \"vm_s\": %.6f,\n\
           \     \"vm_over_ir\": %.2f, \"gate\": %.1f, \"superinsns\": %d, \
            \"fused\": %d, \"pass\": %b}%s\n"
           r.v_name r.v_query r.v_size r.v_ast_s r.v_ir_s r.v_vm_s
           (r.v_ir_s // Float.max r.v_vm_s 1e-9)
           r.v_gate r.v_super r.v_fused (v1_pass r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"pass\": %b\n}\n" (List.for_all v1_pass rows));
  Buffer.contents b

let v1 ~quick ~json_file () =
  header
    "V1  bytecode VM: compiled programs re-driven vs both walker engines \
     (reduce loop gated at >= 2x over lowered IR; lookup and chase arms \
     gated at >= 0.9x)";
  let n_reduce = if quick then 200_000 else 1_000_000 in
  let n_lookup = if quick then 2000 else 5000 in
  let n_chase = if quick then 2000 else 10_000 in
  let deep_stack () =
    let inf = Scenarios.all () in
    for _ = 1 to 40 do
      Duel_target.Inferior.push_frame inf "fib"
        [ ("n", Duel_ctype.Ctype.int); ("acc", Duel_ctype.Ctype.int) ]
    done;
    inf
  in
  let r_reduce =
    v1_workload ~name:"reduce_sum" ~gate:v1_reduce_gate
      ~query:(Printf.sprintf "+/(1..%d)" n_reduce)
      ~size:n_reduce
      ~make_inf:(fun () -> Scenarios.all ())
  in
  (* counting a pure range needs no loop at all: the fused form computes
     hi-lo+1 algebraically, so this row's VM time is ~0 by design *)
  let r_count =
    v1_workload ~name:"reduce_count" ~gate:v1_reduce_gate
      ~query:(Printf.sprintf "#/(1..%d)" n_reduce)
      ~size:n_reduce
      ~make_inf:(fun () -> Scenarios.all ())
  in
  let r_lookup =
    v1_workload ~name:"lookup_bound" ~gate:v1_parity_gate
      ~query:(Printf.sprintf "(1..%d) + i0" n_lookup)
      ~size:n_lookup ~make_inf:deep_stack
  in
  let r_chase =
    v1_workload ~name:"pointer_chase" ~gate:v1_parity_gate
      ~query:"#/(deep-->next->value)" ~size:n_chase
      ~make_inf:(fun () -> Scenarios.deep_list n_chase)
  in
  let rows = [ r_reduce; r_count; r_lookup; r_chase ] in
  Printf.printf "  %-14s %12s %12s %12s %9s %10s %10s\n" "workload" "ast"
    "lowered ir" "vm" "vm/ir" "superinsn" "fused";
  List.iter
    (fun r ->
      Printf.printf "  %-14s %s %s %s %8.2fx %10d %10d  [gate >= %.1fx]\n"
        r.v_name
        (ns (r.v_ast_s *. 1e9))
        (ns (r.v_ir_s *. 1e9))
        (ns (r.v_vm_s *. 1e9))
        (r.v_ir_s // Float.max r.v_vm_s 1e-9)
        r.v_super r.v_fused r.v_gate)
    rows;
  let pass = List.for_all v1_pass rows in
  verdict pass
    (Printf.sprintf
       "the VM runs the fused +/ reduce loop %.1fx faster than the lowered \
        walker (gate %.1fx; #/ collapses to O(1)) and holds %.2fx / %.2fx \
        on the lookup- and chase-bound arms (gates %.1fx)"
       (r_reduce.v_ir_s // Float.max r_reduce.v_vm_s 1e-9)
       v1_reduce_gate
       (r_lookup.v_ir_s // r_lookup.v_vm_s)
       (r_chase.v_ir_s // r_chase.v_vm_s)
       v1_parity_gate);
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc (v1_json ~quick rows);
      close_out oc;
      Printf.printf "  (wrote %s)\n" file
  | None -> ());
  pass

(* --- S1: the serving layer ------------------------------------------------ *)

(* Two ways to run the same query against a remote target over loopback
   TCP.  Serial: the classic remote evaluation — the query runs on the
   client and every scalar crosses the wire as its own packet
   round-trip (cache off; this is the configuration the serving layer
   exists to beat).  Pipelined: 8 clients ship whole queries as
   [qDuelEval] and keep them all in flight in the server's one select
   loop.  The gate is per-query throughput: pipelined evals must beat
   the serial round-trip client by >= 2x, or the bench exits nonzero. *)

let s1_gate = 2.0

type s1_result = {
  s_clients : int;
  s_queries : int;
  s_serial_s : float;
  s_serial_packets : int;
  s_pipelined_s : float;
  s_pipelined_packets : int;
}

let s1_speedup r =
  r.s_serial_s /. float_of_int r.s_queries
  // (r.s_pipelined_s /. float_of_int r.s_queries)

let s1_json ~quick r stats_wire =
  Printf.sprintf
    "{\n\
    \  \"bench\": \"serve_pipelined_vs_serial\",\n\
    \  \"quick\": %b,\n\
    \  \"clients\": %d,\n\
    \  \"queries\": %d,\n\
    \  \"serial_s\": %.6f,\n\
    \  \"serial_packets\": %d,\n\
    \  \"pipelined_s\": %.6f,\n\
    \  \"pipelined_packets\": %d,\n\
    \  \"per_query_serial_s\": %.6f,\n\
    \  \"per_query_pipelined_s\": %.6f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"gate\": %.1f,\n\
    \  \"server_stats\": %S,\n\
    \  \"pass\": %b\n\
     }\n"
    quick r.s_clients r.s_queries r.s_serial_s r.s_serial_packets
    r.s_pipelined_s r.s_pipelined_packets
    (r.s_serial_s /. float_of_int r.s_queries)
    (r.s_pipelined_s /. float_of_int r.s_queries)
    (s1_speedup r) s1_gate stats_wire
    (s1_speedup r >= s1_gate)

let s1 ~quick ~json_file () =
  header
    "S1  serving layer: 8 pipelined qDuelEval clients vs one serial \
     round-trip-per-scalar client, loopback TCP (gate: pipelined >= 2x \
     per-query throughput)";
  let module Server = Duel_serve.Server in
  let module Client = Duel_serve.Client in
  let n = 256 in
  let nclients = 8 in
  let queries = if quick then 24 else 96 in
  let query = Printf.sprintf "big[..%d] >? 0" n in
  let inf = Scenarios.big_array n in
  let srv = Server.create inf in
  let port = Server.listen_tcp srv ~host:"127.0.0.1" ~port:0 in
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  let pump () = ignore (Server.step srv 0.01) in
  let st = Server.stats srv in
  (* serial: per-scalar round-trips through the network Dbgi, cache off;
     dialled through the backend spec language like any other client,
     debug info coming from the spec's local twin *)
  let serial =
    match
      Backend.of_string ~pump (Printf.sprintf "tcp://%s#big:%d" addr n)
    with
    | Ok b -> b
    | Error m -> failwith m
  in
  pump ();
  let s = Session.create serial.Backend.b_dbg in
  let ast = Session.parse s query in
  let packets0 = st.Server.packets in
  let s_serial_s =
    time_run (fun () ->
        for _ = 1 to queries do
          ignore (Session.drive s ast)
        done)
  in
  let s_serial_packets = st.Server.packets - packets0 in
  serial.Backend.b_close ();
  pump ();
  (* pipelined: every client's eval is in flight before any is collected *)
  let clients = List.init nclients (fun _ -> Client.connect ~pump addr) in
  pump ();
  let packets1 = st.Server.packets in
  let rounds = queries / nclients in
  let s_pipelined_s =
    time_run (fun () ->
        for _ = 1 to rounds do
          List.iter (fun cl -> Client.eval_send cl query) clients;
          List.iter (fun cl -> ignore (Client.eval_recv cl)) clients
        done)
  in
  let s_pipelined_packets = st.Server.packets - packets1 in
  let stats_wire = Server.stats_wire srv in
  List.iter Client.close clients;
  Server.shutdown srv;
  while Server.step srv 0.0 do
    ()
  done;
  let r =
    {
      s_clients = nclients;
      s_queries = rounds * nclients;
      s_serial_s;
      s_serial_packets;
      s_pipelined_s;
      s_pipelined_packets;
    }
  in
  Printf.printf "  %-28s %12s %12s %10s\n" "mode" "total" "per query"
    "packets";
  Printf.printf "  %-28s %s %s %10d\n" "serial (round-trip/scalar)"
    (ns (r.s_serial_s *. 1e9))
    (ns (r.s_serial_s /. float_of_int queries *. 1e9))
    r.s_serial_packets;
  Printf.printf "  %-28s %s %s %10d\n"
    (Printf.sprintf "pipelined (%d x qDuelEval)" nclients)
    (ns (r.s_pipelined_s *. 1e9))
    (ns (r.s_pipelined_s /. float_of_int r.s_queries *. 1e9))
    r.s_pipelined_packets;
  let pass = s1_speedup r >= s1_gate in
  verdict pass
    (Printf.sprintf
       "shipping the query is %.1fx faster per query than shipping the \
        scalars (gate %.1fx); packets %d -> %d"
       (s1_speedup r) s1_gate r.s_serial_packets r.s_pipelined_packets);
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc (s1_json ~quick r stats_wire);
      close_out oc;
      Printf.printf "  (wrote %s)\n" file
  | None -> ());
  pass

(* --- S2: sharded serve scaling -------------------------------------------- *)

(* The S1 pipelined battery again, but against the sharded server: the
   same compute-heavy query from the same 8 pipelined clients, served by
   1/2/4/8 event-loop shards (one OCaml domain each, SO_REUSEPORT accept
   balancing).  Clients run real blocking IO from the bench's own domain
   — no pump — so the measured number is genuine cross-domain serving.
   The gate (4 shards >= 2x the 1-shard throughput) only arms on
   machines whose [Domain.recommended_domain_count] reaches 4; smaller
   runners print the curve they can and skip the verdict. *)

let s2_gate = 2.0

type s2_row = {
  r2_shards : int;
  r2_queries : int;
  r2_elapsed_s : float;
  r2_qps : float;
}

let s2_json ~quick ~cores ~query ~gated ~speedup4 ~pass rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"serve_shard_scaling\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b (Printf.sprintf "  \"query\": %S,\n" query);
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shards\": %d, \"queries\": %d, \"elapsed_s\": %.6f, \
            \"qps\": %.1f}%s\n"
           r.r2_shards r.r2_queries r.r2_elapsed_s r.r2_qps
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b (Printf.sprintf "  \"gate\": %.1f,\n" s2_gate);
  Buffer.add_string b (Printf.sprintf "  \"gated\": %b,\n" gated);
  Buffer.add_string b (Printf.sprintf "  \"speedup_at_4\": %.2f,\n" speedup4);
  Buffer.add_string b (Printf.sprintf "  \"pass\": %b\n" pass);
  Buffer.add_string b "}\n";
  Buffer.contents b

let s2 ~quick ~json_file () =
  let cores = Domain.recommended_domain_count () in
  header
    (Printf.sprintf
       "S2  sharded serve scaling: 8 pipelined clients vs 1/2/4/8 \
        event-loop shards, loopback TCP (gate: 4 shards >= %.0fx 1-shard \
        throughput; %d core%s available)"
       s2_gate cores
       (if cores = 1 then "" else "s"))
  ;
  let module Sharded = Duel_serve.Sharded in
  let module Client = Duel_serve.Client in
  let n = 4096 in
  let nclients = 8 in
  let rounds = if quick then 8 else 32 in
  let query = Printf.sprintf "+/big[..%d]" n in
  let counts = List.filter (fun c -> c <= cores) [ 1; 2; 4; 8 ] in
  let counts = if counts = [] then [ 1 ] else counts in
  let run_one shards =
    let inf = Scenarios.big_array n in
    let srv = Sharded.create ~shards inf in
    let port = Sharded.listen_tcp srv ~host:"127.0.0.1" ~port:0 in
    Sharded.start srv;
    let addr = Printf.sprintf "127.0.0.1:%d" port in
    let clients = List.init nclients (fun _ -> Client.connect addr) in
    (* warm every connection and the shared plan cache *)
    List.iter (fun cl -> ignore (Client.eval cl query)) clients;
    let elapsed =
      time_run (fun () ->
          for _ = 1 to rounds do
            List.iter (fun cl -> Client.eval_send cl query) clients;
            List.iter (fun cl -> ignore (Client.eval_recv cl)) clients
          done)
    in
    List.iter Client.close clients;
    Sharded.shutdown srv;
    Sharded.join srv;
    let queries = rounds * nclients in
    {
      r2_shards = shards;
      r2_queries = queries;
      r2_elapsed_s = elapsed;
      r2_qps = (float_of_int queries /. elapsed);
    }
  in
  let rows = List.map run_one counts in
  let qps_at k =
    match List.find_opt (fun r -> r.r2_shards = k) rows with
    | Some r -> r.r2_qps
    | None -> 0.0
  in
  Printf.printf "  %-10s %12s %12s %10s\n" "shards" "total" "per query"
    "qps";
  List.iter
    (fun r ->
      Printf.printf "  %-10d %s %s %10.1f\n" r.r2_shards
        (ns (r.r2_elapsed_s *. 1e9))
        (ns (r.r2_elapsed_s /. float_of_int r.r2_queries *. 1e9))
        r.r2_qps)
    rows;
  let gated = cores >= 4 in
  let speedup4 = if gated then qps_at 4 /. qps_at 1 else 0.0 in
  let pass = (not gated) || speedup4 >= s2_gate in
  if gated then
    verdict pass
      (Printf.sprintf
         "4 shards serve %.1fx the 1-shard throughput (gate %.1fx)"
         speedup4 s2_gate)
  else
    Printf.printf
      "  SKIP  scaling gate needs >= 4 cores \
       (Domain.recommended_domain_count = %d); curve recorded, verdict \
       waived\n"
      cores;
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc (s2_json ~quick ~cores ~query ~gated ~speedup4 ~pass rows);
      close_out oc;
      Printf.printf "  (wrote %s)\n" file
  | None -> ());
  pass

(* --- R1: fleet fan-out ---------------------------------------------------- *)

(* Relative debugging at fleet scale: the same query against 8 named
   targets hosted by one serve instance.  Serial is the pre-fleet
   workflow — dial, bind the target, evaluate, hang up, once per
   target, so every sweep pays 8 connection setups and 8 full
   round-trip conversations.  Fan-out is one persistent connection
   shipping a single [qDuelEvalAll] and collecting the 8 tagged leg
   streams from one reply burst.  Both arms run warm (plans compiled,
   caches hot); the gate is per-sweep latency — the fan-out must beat
   the serial loop by >= 2x or the bench exits nonzero. *)

let r1_gate = 2.0

type r1_result = {
  r_targets : int;
  r_rounds : int;
  r_serial_s : float;
  r_fanout_s : float;
}

let r1_speedup r = r.r_serial_s // r.r_fanout_s

let r1_json ~quick r stats_wire =
  Printf.sprintf
    "{\n\
    \  \"bench\": \"fleet_eval_all_vs_serial\",\n\
    \  \"quick\": %b,\n\
    \  \"targets\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"serial_s\": %.6f,\n\
    \  \"fanout_s\": %.6f,\n\
    \  \"per_sweep_serial_s\": %.6f,\n\
    \  \"per_sweep_fanout_s\": %.6f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"gate\": %.1f,\n\
    \  \"server_stats\": %S,\n\
    \  \"pass\": %b\n\
     }\n"
    quick r.r_targets r.r_rounds r.r_serial_s r.r_fanout_s
    (r.r_serial_s /. float_of_int r.r_rounds)
    (r.r_fanout_s /. float_of_int r.r_rounds)
    (r1_speedup r) r1_gate stats_wire
    (r1_speedup r >= r1_gate)

let r1 ~quick ~json_file () =
  header
    (Printf.sprintf
       "R1  fleet fan-out: one qDuelEvalAll over 8 targets vs 8 serial \
        connect-bind-eval sessions, loopback TCP (gate: fan-out >= %.0fx \
        per-sweep latency)"
       r1_gate);
  let module Server = Duel_serve.Server in
  let module Client = Duel_serve.Client in
  let module Fleet = Duel_fleet.Fleet in
  let ntargets = 8 in
  let rounds = if quick then 10 else 40 in
  let query = "deep-->next->value" in
  let fleet =
    match
      Fleet.create
        (List.init ntargets (fun i ->
             (Printf.sprintf "t%d" i, "deep_list:8")))
    with
    | Ok f -> f
    | Error m -> failwith m
  in
  let inf = (List.hd (Fleet.targets fleet)).Fleet.inf in
  let srv = Server.create ~fleet inf in
  let port = Server.listen_tcp srv ~host:"127.0.0.1" ~port:0 in
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  let pump () = ignore (Server.step srv 0.01) in
  let ids = Fleet.ids fleet in
  let sweep_serial () =
    List.iter
      (fun id ->
        let cl = Client.connect ~pump addr in
        Client.use_target cl id;
        ignore (Client.eval cl query);
        Client.close cl)
      ids
  in
  let cl = Client.connect ~pump addr in
  let sweep_fanout () = ignore (Client.eval_all cl [] query) in
  (* one warm sweep each: every target's plan compiled, both arms hot *)
  sweep_serial ();
  sweep_fanout ();
  let r_serial_s =
    time_run (fun () ->
        for _ = 1 to rounds do
          sweep_serial ()
        done)
  in
  let r_fanout_s =
    time_run (fun () ->
        for _ = 1 to rounds do
          sweep_fanout ()
        done)
  in
  let stats_wire = Server.stats_wire srv in
  Client.close cl;
  Server.shutdown srv;
  while Server.step srv 0.0 do
    ()
  done;
  let r = { r_targets = ntargets; r_rounds = rounds; r_serial_s; r_fanout_s } in
  Printf.printf "  %-36s %12s %12s\n" "mode" "total" "per sweep";
  Printf.printf "  %-36s %s %s\n"
    (Printf.sprintf "serial (%d x connect+bind+eval)" ntargets)
    (ns (r.r_serial_s *. 1e9))
    (ns (r.r_serial_s /. float_of_int rounds *. 1e9));
  Printf.printf "  %-36s %s %s\n" "fan-out (1 x qDuelEvalAll)"
    (ns (r.r_fanout_s *. 1e9))
    (ns (r.r_fanout_s /. float_of_int rounds *. 1e9));
  let pass = r1_speedup r >= r1_gate in
  verdict pass
    (Printf.sprintf
       "one fan-out sweeps %d targets %.1fx faster than %d serial sessions \
        (gate %.1fx)"
       ntargets (r1_speedup r) ntargets r1_gate);
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc (r1_json ~quick r stats_wire);
      close_out oc;
      Printf.printf "  (wrote %s)\n" file
  | None -> ());
  pass

(* --- X1: the chaos tier --------------------------------------------------- *)

(* The S1 query battery again, but through a hostile wire: a Duel_chaos
   byte mangler corrupting ~1% of the bytes in both directions sits
   between the retrying client and the serve loop.  The gate is
   correctness, not speed: every eval must converge to the clean-stack
   oracle, with the recovery visible in the counters on both sides. *)

let x1_json ~quick ~queries ~oracle_lines ~elapsed ~wire ~ctr ~pass stats_wire =
  Printf.sprintf
    "{\n\
    \  \"bench\": \"serve_chaos_convergence\",\n\
    \  \"quick\": %b,\n\
    \  \"queries\": %d,\n\
    \  \"oracle_lines\": %d,\n\
    \  \"elapsed_s\": %.6f,\n\
    \  \"wire_bytes\": %d,\n\
    \  \"wire_corrupted\": %d,\n\
    \  \"wire_splits\": %d,\n\
    \  \"client_resends\": %d,\n\
    \  \"client_timeouts\": %d,\n\
    \  \"client_naks_sent\": %d,\n\
    \  \"client_dup_frames\": %d,\n\
    \  \"server_stats\": %S,\n\
    \  \"pass\": %b\n\
     }\n"
    quick queries oracle_lines elapsed wire.Duel_chaos.Mangler.bytes
    wire.Duel_chaos.Mangler.corrupted wire.Duel_chaos.Mangler.splits
    ctr.Duel_serve.Client.resends ctr.Duel_serve.Client.timeouts
    ctr.Duel_serve.Client.naks_sent ctr.Duel_serve.Client.dup_frames
    stats_wire pass

let x1 ~quick ~json_file () =
  header
    "X1  chaos: the S1 query battery through a 1% byte-corrupting wire \
     (gate: every eval converges to the clean-stack oracle)";
  let module Server = Duel_serve.Server in
  let module Client = Duel_serve.Client in
  let module Mangler = Duel_chaos.Mangler in
  let module Proxy = Duel_chaos.Proxy in
  let n = 256 in
  let queries = if quick then 12 else 48 in
  let query = Printf.sprintf "big[..%d] >? 0" n in
  let oracle = Session.exec (session_of (Scenarios.big_array n)) query in
  let inf = Scenarios.big_array n in
  (* short D frames: at a 1% per-byte corruption rate a frame's survival
     odds fall off exponentially with its length, so stream the reply in
     small chunks and let the seq re-request fill in the casualties *)
  let srv =
    Server.create ~config:{ Server.default_config with eval_chunk = 2 } inf
  in
  let up = Mangler.create ~seed:11 (Mangler.corrupting ~rate:0.01) in
  let down = Mangler.create ~seed:12 (Mangler.corrupting ~rate:0.01) in
  let proxy, client_end, server_end = Proxy.between ~up ~down () in
  Server.inject srv server_end;
  let pump () =
    ignore (Server.step srv 0.005);
    ignore (Proxy.step proxy 0.005)
  in
  let retry =
    {
      Client.attempts = 20;
      reply_timeout = 0.5;
      base_backoff = 0.001;
      max_backoff = 0.01;
      jitter = 0.5;
    }
  in
  let cl = Client.of_fd ~pump ~retry client_end in
  let wrong = ref 0 in
  let elapsed =
    time_run (fun () ->
        for _ = 1 to queries do
          if Client.eval cl query <> oracle then incr wrong
        done)
  in
  let ctr = Client.counters cl in
  let stats_wire = Server.stats_wire srv in
  let sst = Server.stats srv in
  let wire = Mangler.stats down in
  let wire_up = Mangler.stats up in
  Client.close cl;
  Proxy.close proxy;
  Server.shutdown srv;
  while Server.step srv 0.0 do
    ()
  done;
  Printf.printf "  %-42s %d/%d (%d oracle lines each)\n" "queries converged"
    (queries - !wrong) queries (List.length oracle);
  Printf.printf "  %-42s %d bytes, %d corrupted, %d splits\n"
    "wire damage (replies)" wire.Mangler.bytes wire.Mangler.corrupted
    wire.Mangler.splits;
  Printf.printf "  %-42s %d bytes, %d corrupted, %d splits\n"
    "wire damage (requests)" wire_up.Mangler.bytes wire_up.Mangler.corrupted
    wire_up.Mangler.splits;
  Printf.printf "  %-42s %d resends, %d timeouts, %d NAKs sent, %d dup \
                 frames\n"
    "client recovery" ctr.Client.resends ctr.Client.timeouts
    ctr.Client.naks_sent ctr.Client.dup_frames;
  Printf.printf "  %-42s %d damaged frames NAKed, %d retransmits, %d eval \
                 replays\n"
    "server recovery" sst.Server.faults sst.Server.naks sst.Server.eval_dups;
  row "total" (elapsed *. 1e9);
  row "per query" (elapsed /. float_of_int queries *. 1e9);
  let damaged = wire.Mangler.corrupted + wire_up.Mangler.corrupted > 0 in
  let recovered =
    sst.Server.faults + sst.Server.eval_dups + ctr.Client.resends
    + ctr.Client.naks_seen
    > 0
  in
  let pass = !wrong = 0 && damaged && recovered in
  verdict pass
    (Printf.sprintf
       "all %d evals equal the oracle through %d corrupted bytes (recovery: \
        %d client resends, %d eval replays, %d damaged requests NAKed)"
       queries
       (wire.Mangler.corrupted + wire_up.Mangler.corrupted)
       ctr.Client.resends sst.Server.eval_dups sst.Server.faults);
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc
        (x1_json ~quick ~queries ~oracle_lines:(List.length oracle) ~elapsed
           ~wire ~ctr ~pass stats_wire);
      close_out oc;
      Printf.printf "  (wrote %s)\n" file
  | None -> ());
  pass

(* --- F1/F2: the dispatcher tier ------------------------------------------- *)

(* F1 is a correctness gate: a dispatcher fronting one dead replica, one
   fault-injected replica and one healthy replica must converge
   bit-identically with a clean single-backend oracle, with the failovers
   and the breaker trip visible in its counters.  F2 is the latency gate:
   against two replicas with seeded injected stalls, hedging at p90 must
   cut the read p99 by >= 3x over the same rig with hedging off. *)

let faddr_of dbg name =
  match dbg.Dbgi.find_variable name with
  | Some { Dbgi.v_addr; _ } -> v_addr
  | _ -> failwith ("variable not found: " ^ name)

type f1_row = {
  f1_spec : string;
  f1_oracle : string;
  f1_words : int;
  f1_mismatches : int;
  f1_queries_ok : bool;
  f1_failovers : int;
  f1_trips : int;
  f1_dead_down : bool;
}

let f1_pass r =
  r.f1_mismatches = 0 && r.f1_queries_ok && r.f1_failovers > 0
  && r.f1_trips >= 1 && r.f1_dead_down

let f1_run ~quick =
  let n = if quick then 200 else 400 in
  (* trip=1: score-based routing relegates a failed replica to the back
     of the candidate list, so the dead replica is only ever retried
     through the breaker's half-open probes — the first failure must
     trip it for the sweep to observe the breaker at all *)
  let spec =
    Printf.sprintf
      "dispatch(dead:big:%d,direct:big:%d+flaky(seed=21,profile=nasty),direct:big:%d;hedge=off,trip=1,probe=50ms)"
      n n n
  in
  let oracle_spec = Printf.sprintf "direct:big:%d+cache" n in
  let b = backend_of spec in
  let ob = backend_of oracle_spec in
  let dbg = b.Backend.b_dbg and odbg = ob.Backend.b_dbg in
  let base = faddr_of dbg "big" in
  let mismatches = ref 0 in
  for i = 0 to n - 1 do
    let addr = base + (4 * i) in
    let got = dbg.Dbgi.get_bytes ~addr ~len:4 in
    let want = odbg.Dbgi.get_bytes ~addr ~len:4 in
    if not (Bytes.equal got want) then incr mismatches
  done;
  let q = Printf.sprintf "big[..%d] >? 0" n in
  let f1_queries_ok =
    Session.exec (Session.create dbg) q = Session.exec (Session.create odbg) q
  in
  let d =
    match b.Backend.b_dispatchers with
    | (_, d) :: _ -> d
    | [] -> failwith "no dispatcher in the built stack"
  in
  let c = Dispatcher.counters d in
  let f1_dead_down =
    match Dispatcher.replica_health d with
    | (_, h) :: _ -> not h.Dbgi.h_ok
    | [] -> false
  in
  let row =
    {
      f1_spec = spec;
      f1_oracle = oracle_spec;
      f1_words = n;
      f1_mismatches = !mismatches;
      f1_queries_ok;
      f1_failovers = c.Dispatcher.failovers;
      f1_trips = c.Dispatcher.trips;
      f1_dead_down;
    }
  in
  b.Backend.b_close ();
  ob.Backend.b_close ();
  row

type f2_row = {
  f2_hedged_spec : string;
  f2_unhedged_spec : string;
  f2_ops : int;
  f2_hedged_p50 : float;
  f2_hedged_p99 : float;
  f2_unhedged_p50 : float;
  f2_unhedged_p99 : float;
  f2_hedges_fired : int;
  f2_hedge_wins : int;
}

let f2_gate = 3.0
let f2_tail_cut r = r.f2_unhedged_p99 // r.f2_hedged_p99
let f2_pass r = f2_tail_cut r >= f2_gate && r.f2_hedges_fired > 0

let percentile_of xs p =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then Float.nan
  else a.(min (n - 1) (int_of_float (ceil (p *. float_of_int (n - 1)))))

let f2_run ~quick =
  let n = 256 in
  let ops = if quick then 400 else 1000 in
  let mk hedge =
    (* asymmetric stall rates: the hedge only loses when both replicas
       stall on the same op, which the seeds keep under the p99 slot *)
    Printf.sprintf
      "dispatch(direct:big:%d+stall(seed=31,ms=15,rate=0.05),direct:big:%d+stall(seed=32,ms=15,rate=0.02);hedge=%s)"
      n n hedge
  in
  let arm spec =
    let b = backend_of spec in
    let dbg = b.Backend.b_dbg in
    let base = faddr_of dbg "big" in
    let lats = ref [] in
    for i = 0 to ops - 1 do
      let addr = base + (4 * (i mod n)) in
      let t0 = Unix.gettimeofday () in
      ignore (dbg.Dbgi.get_bytes ~addr ~len:4);
      lats := (Unix.gettimeofday () -. t0) :: !lats
    done;
    let d =
      match b.Backend.b_dispatchers with
      | (_, d) :: _ -> d
      | [] -> failwith "no dispatcher in the built stack"
    in
    let c = Dispatcher.counters d in
    b.Backend.b_close ();
    (!lats, c)
  in
  let hedged_spec = mk "p90" and unhedged_spec = mk "off" in
  let h_lats, h_c = arm hedged_spec in
  let u_lats, _ = arm unhedged_spec in
  {
    f2_hedged_spec = hedged_spec;
    f2_unhedged_spec = unhedged_spec;
    f2_ops = ops;
    f2_hedged_p50 = percentile_of h_lats 0.50;
    f2_hedged_p99 = percentile_of h_lats 0.99;
    f2_unhedged_p50 = percentile_of u_lats 0.50;
    f2_unhedged_p99 = percentile_of u_lats 0.99;
    f2_hedges_fired = h_c.Dispatcher.hedges_fired;
    f2_hedge_wins = h_c.Dispatcher.hedge_wins;
  }

let f_json ~quick r1 r2 =
  Printf.sprintf
    "{\n\
    \  \"bench\": \"dispatcher_failover_hedging\",\n\
    \  \"quick\": %b,\n\
    \  \"f1\": {\"spec\": %S, \"oracle\": %S, \"words\": %d,\n\
    \         \"mismatches\": %d, \"queries_match\": %b, \"failovers\": %d,\n\
    \         \"trips\": %d, \"dead_replica_down\": %b, \"pass\": %b},\n\
    \  \"f2\": {\"hedged_spec\": %S, \"unhedged_spec\": %S, \"ops\": %d,\n\
    \         \"hedged_p50_s\": %.6f, \"hedged_p99_s\": %.6f,\n\
    \         \"unhedged_p50_s\": %.6f, \"unhedged_p99_s\": %.6f,\n\
    \         \"tail_cut\": %.2f, \"gate\": %.1f,\n\
    \         \"hedges_fired\": %d, \"hedge_wins\": %d, \"pass\": %b},\n\
    \  \"pass\": %b\n\
     }\n"
    quick r1.f1_spec r1.f1_oracle r1.f1_words r1.f1_mismatches r1.f1_queries_ok
    r1.f1_failovers r1.f1_trips r1.f1_dead_down (f1_pass r1) r2.f2_hedged_spec
    r2.f2_unhedged_spec r2.f2_ops r2.f2_hedged_p50 r2.f2_hedged_p99
    r2.f2_unhedged_p50 r2.f2_unhedged_p99 (f2_tail_cut r2) f2_gate
    r2.f2_hedges_fired r2.f2_hedge_wins (f2_pass r2)
    (f1_pass r1 && f2_pass r2)

let f_tier ~quick ~json_file () =
  header
    "F1  dispatcher: dead + fault-injected + healthy replicas vs the clean \
     oracle (gate: bit-identical convergence with visible failover)";
  let r1 = f1_run ~quick in
  Printf.printf "  %-42s %s\n" "spec" r1.f1_spec;
  Printf.printf "  %-42s %d/%d words, %s\n" "bit-identical with oracle"
    (r1.f1_words - r1.f1_mismatches)
    r1.f1_words
    (if r1.f1_queries_ok then "query output equal" else "QUERY OUTPUT DIFFERS");
  Printf.printf "  %-42s %d failovers, %d trips, dead replica %s\n"
    "routing under faults" r1.f1_failovers r1.f1_trips
    (if r1.f1_dead_down then "reported down" else "STILL REPORTED UP");
  verdict (f1_pass r1)
    (Printf.sprintf
       "%d/%d words match through one dead and one fault-injected replica \
        (%d failovers, %d breaker trips)"
       (r1.f1_words - r1.f1_mismatches)
       r1.f1_words r1.f1_failovers r1.f1_trips);
  header
    "F2  hedged reads: two stalling replicas, hedge=p90 vs hedge=off (gate: \
     unhedged p99 >= 3x hedged p99)";
  let r2 = f2_run ~quick in
  Printf.printf "  %-42s %s %s\n" "hedged   p50 / p99"
    (ns (r2.f2_hedged_p50 *. 1e9))
    (ns (r2.f2_hedged_p99 *. 1e9));
  Printf.printf "  %-42s %s %s\n" "unhedged p50 / p99"
    (ns (r2.f2_unhedged_p50 *. 1e9))
    (ns (r2.f2_unhedged_p99 *. 1e9));
  Printf.printf "  %-42s %d fired, %d won\n" "hedges" r2.f2_hedges_fired
    r2.f2_hedge_wins;
  verdict (f2_pass r2)
    (Printf.sprintf
       "hedging cuts the stalled p99 %.1fx (gate %.1fx) over %d reads; %d \
        hedges fired, %d won"
       (f2_tail_cut r2) f2_gate r2.f2_ops r2.f2_hedges_fired r2.f2_hedge_wins);
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc (f_json ~quick r1 r2);
      close_out oc;
      Printf.printf "  (wrote %s)\n" file
  | None -> ());
  f1_pass r1 && f2_pass r2

(* --- C1: conciseness table ------------------------------------------------ *)

let c1 () =
  header "C1  conciseness: DUEL one-liners vs equivalent C (non-space chars)";
  Printf.printf "  %-32s %10s %8s %8s\n" "query" "DUEL" "C" "ratio";
  let table = Conciseness.table () in
  List.iter
    (fun (label, dc, cc, _, _) ->
      Printf.printf "  %-32s %10d %8d %7.1fx\n" label dc cc
        (float_of_int cc /. float_of_int dc))
    table;
  let total_d = List.fold_left (fun a (_, d, _, _, _) -> a + d) 0 table in
  let total_c = List.fold_left (fun a (_, _, c, _, _) -> a + c) 0 table in
  verdict
    (total_d * 2 < total_c)
    (Printf.sprintf "DUEL total %d chars vs C %d chars (%.1fx)" total_d
       total_c
       (float_of_int total_c /. float_of_int total_d))

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let rec find_flag name = function
    | flag :: file :: _ when flag = name -> Some file
    | _ :: rest -> find_flag name rest
    | [] -> None
  in
  let json_file = find_flag "--json" argv in
  let json_lower = find_flag "--json-lower" argv in
  let json_vm = find_flag "--json-vm" argv in
  let json_serve = find_flag "--json-serve" argv in
  let json_shard = find_flag "--json-shard" argv in
  let json_chaos = find_flag "--json-chaos" argv in
  let json_dispatch = find_flag "--json-dispatch" argv in
  let json_fleet = find_flag "--json-fleet" argv in
  let pass =
    if quick then (
      (* CI smoke mode: the gated tiers only, small sizes. *)
      Printf.printf
        "DUEL benchmarks, quick mode (D1 data-cache, L1 lowering, V1 \
         bytecode VM, S1 serving, S2 shard scaling, R1 fleet fan-out, X1 \
         chaos and F1/F2 dispatcher tiers)\n";
      let d1_ok = d1 ~quick ~json_file () in
      let l1_ok = l1 ~quick ~json_file:json_lower () in
      let v1_ok = v1 ~quick ~json_file:json_vm () in
      let s1_ok = s1 ~quick ~json_file:json_serve () in
      let s2_ok = s2 ~quick ~json_file:json_shard () in
      let r1_ok = r1 ~quick ~json_file:json_fleet () in
      let x1_ok = x1 ~quick ~json_file:json_chaos () in
      let f_ok = f_tier ~quick ~json_file:json_dispatch () in
      d1_ok && l1_ok && v1_ok && s1_ok && s2_ok && r1_ok && x1_ok && f_ok)
    else begin
      Printf.printf
        "DUEL reproduction benchmarks (see DESIGN.md section 4 and \
         EXPERIMENTS.md)\n";
      b1 ();
      b2 ();
      b3 ();
      b4 ();
      b5 ();
      b6 ();
      b7 ();
      let d1_ok = d1 ~quick:false ~json_file () in
      let l1_ok = l1 ~quick:false ~json_file:json_lower () in
      let v1_ok = v1 ~quick:false ~json_file:json_vm () in
      let s1_ok = s1 ~quick:false ~json_file:json_serve () in
      let s2_ok = s2 ~quick:false ~json_file:json_shard () in
      let r1_ok = r1 ~quick:false ~json_file:json_fleet () in
      let x1_ok = x1 ~quick:false ~json_file:json_chaos () in
      let f_ok = f_tier ~quick:false ~json_file:json_dispatch () in
      c1 ();
      Printf.printf "\ndone.\n";
      d1_ok && l1_ok && v1_ok && s1_ok && s2_ok && r1_ok && x1_ok && f_ok
    end
  in
  exit (if pass then 0 else 1)
