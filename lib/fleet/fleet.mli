(** The target fleet: N named debuggees behind one serving instance.

    Relative debugging (DUCT, mdb — PAPERS.md) wants the same query
    evaluated against several executions and the streams compared; the
    fleet is the registry that makes "several executions" addressable.
    A fleet is built once from a spec like

    {[ fleet(good=deep_list:40,bad=deep_list_buggy:40,x=dead:all) ]}

    and shared by every serve shard.  Each target carries its own lock
    (raw access serialized across shards), its own write-generation
    (per-target cache coherence — a store into one target never
    invalidates a sibling's caches), and its own atomic counters
    (surfaced by [qDuelStats] as [tgt.<id>.*]).

    The module is deliberately below the serve layer: it depends only
    on the target simulator and scenarios, so clients (the {!Diff}
    consumer side) and servers share one vocabulary of target ids. *)

(** {1 Scenario grammar}

    The canonical name → debuggee mapping, shared by backend specs
    ([direct://…#name]) and fleet slots. *)

val scenario_grammar : string
(** Human-readable list of accepted scenario names (for error text and
    [--help]). *)

val scenario_of_name : string -> (Duel_target.Inferior.t, string) result
(** [scenario_of_name "deep_list:40"] builds a fresh debuggee.
    Accepts: [all] (or empty), [symtab], [faulty], [big:N],
    [deep_list:N], [deep_tree:N], and the seeded-buggy twins
    [deep_list_buggy:N], [deep_list_swapped:N], [deep_tree_buggy:N]. *)

(** {1 Targets} *)

(** Per-target observable counters (process-global, atomically
    maintained across shards). *)
type tstats = {
  binds : int Atomic.t;  (** [qDuelUse] bindings onto this target *)
  evals : int Atomic.t;  (** queries evaluated against it *)
  values : int Atomic.t;  (** result lines those queries streamed *)
  errors : int Atomic.t;  (** evals whose output reported an error *)
}

type target = private {
  id : string;
  spec : string;  (** the slot spec as written, e.g. ["dead:all"] *)
  inf : Duel_target.Inferior.t;
  dead : bool;  (** [dead:] slots fault every wire-class operation *)
  lock : Mutex.t;  (** serializes raw target access across shards *)
  wrap : Duel_dbgi.Dbgi.t -> Duel_dbgi.Dbgi.t;
      (** extra decoration under the cache (chaos rigs); identity by
          default *)
  tstats : tstats;
}

type t

val create :
  ?wrap:(string -> Duel_dbgi.Dbgi.t -> Duel_dbgi.Dbgi.t) ->
  (string * string) list ->
  (t, string) result
(** [create [(id, spec); …]] builds the fleet.  Each [spec] is a
    scenario name, optionally prefixed [dead:].  Ids must be unique and
    drawn from letters, digits, ['_'], ['-'], ['.'] (they travel inside
    wire frames).  [wrap id] decorates target [id]'s serialized raw
    access — the chaos soak injects faults here. *)

val parse : string -> ((string * string) list, string) result
(** Split a [fleet(id=spec,…)] string into slots (no debuggees built). *)

val of_string :
  ?wrap:(string -> Duel_dbgi.Dbgi.t -> Duel_dbgi.Dbgi.t) ->
  string ->
  (t, string) result
(** [parse] then [create]. *)

val is_fleet_spec : string -> bool
(** Does the string look like [fleet(…)]? — the serve CLI uses this to
    pick between a single scenario and a fleet. *)

val find : t -> string -> target option
val targets : t -> target list
val ids : t -> string list
val size : t -> int

val describe : t -> string
(** ["good=deep_list:40,bad=dead:all"] — the [qDuelTargets] reply and
    the canonical spelling of the fleet. *)

val generation : target -> int
(** The target's write-generation (its memory's store counter) — the
    coherence stamp for per-target data and plan caches. *)

val generation_sum : t -> int
(** Sum of all member generations: monotone under any single store, the
    coherence stamp for fleet-wide artifacts. *)

val note_bind : target -> unit
val note_eval : target -> values:int -> error:bool -> unit

val shard_dbgi : ?cache:bool -> target -> Duel_dbgi.Dbgi.t
(** One shard's access interface to one target: direct (or dead) raw
    access serialized by the target's lock, decorated by its [wrap],
    fronted (unless [~cache:false]) by a {e shard-local} data cache
    whose staleness probe snoops this target's generation — so stores
    through any shard retire sibling caches for this target only. *)
