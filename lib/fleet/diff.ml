(* Cross-target stream diff: align two tagged result sequences and
   report the first divergence symbolically.

   The server streams each value line as "symbolic = value" (the
   evaluator's side-effect-path rendering followed by the rendered
   value).  Relative debugging compares twins whose symbolic paths are
   identical by construction — same query, same layout — so alignment
   is positional and the comparison keys on the {e value} part only:
   the symbolic part is what we report, not what we compare (two twins
   loaded at different addresses still diff clean).  Lines with no
   " = " separator (plain outputs, error reports) compare whole. *)

type side = { d_sym : string; d_value : string; d_line : string }

type outcome =
  | Equal of int
  | Diverged of { index : int; left : side; right : side }
  | Left_short of { index : int; right : side }
  | Right_short of { index : int; left : side }

let split_line line =
  match
    (* first " = " — symbolic paths themselves never embed one because
       the evaluator renders operators unspaced *)
    let rec scan i =
      if i + 3 > String.length line then None
      else if String.sub line i 3 = " = " then Some i
      else scan (i + 1)
    in
    scan 0
  with
  | Some i ->
      {
        d_sym = String.sub line 0 i;
        d_value = String.sub line (i + 3) (String.length line - i - 3);
        d_line = line;
      }
  | None -> { d_sym = ""; d_value = line; d_line = line }

(* The lazy core: pulls one element from each side per step, so
   comparing two huge streams that diverge early touches only the
   prefix up to the divergence. *)
let diff_seq (left : string Seq.t) (right : string Seq.t) =
  let rec go i left right =
    match (left (), right ()) with
    | Seq.Nil, Seq.Nil -> Equal i
    | Seq.Nil, Seq.Cons (r, _) -> Left_short { index = i; right = split_line r }
    | Seq.Cons (l, _), Seq.Nil -> Right_short { index = i; left = split_line l }
    | Seq.Cons (l, left'), Seq.Cons (r, right') ->
        let ls = split_line l and rs = split_line r in
        if ls.d_value = rs.d_value then go (i + 1) left' right'
        else Diverged { index = i; left = ls; right = rs }
  in
  go 0 left right

let diff left right = diff_seq (List.to_seq left) (List.to_seq right)

let side_lines ~id s =
  if s.d_sym = "" then [ Printf.sprintf "  %-8s %s" (id ^ ":") s.d_value ]
  else
    [
      Printf.sprintf "  %-8s %s" (id ^ ":") s.d_sym;
      Printf.sprintf "  %-8s = %s" "" s.d_value;
    ]

let report ~id_a ~id_b = function
  | Equal n -> [ Printf.sprintf "streams identical (%d values)" n ]
  | Diverged { index; left; right } ->
      (Printf.sprintf "first divergence at value #%d:" index
      :: side_lines ~id:id_a left)
      @ side_lines ~id:id_b right
  | Left_short { index; right } ->
      Printf.sprintf "%s ends at value #%d; %s continues:" id_a index id_b
      :: side_lines ~id:id_b right
  | Right_short { index; left } ->
      Printf.sprintf "%s ends at value #%d; %s continues:" id_b index id_a
      :: side_lines ~id:id_a left
