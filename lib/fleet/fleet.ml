(* The target fleet: N named debuggees behind one serving instance.

   mdb's lesson (PAPERS.md) is that the debugger core should never know
   how many targets exist; this module is where that count lives.  A
   fleet is an immutable array of named targets — each a scenario
   instance with its own lock, its own write-generation (the coherence
   source for per-target data and plan caches), and its own observable
   counters.  The serve layer builds one shard-local access interface
   per (shard, target) pair from {!shard_dbgi}; the fleet object itself
   is shared by every shard, so the per-target locks serialize raw
   access across domains and the atomic counters aggregate for free.

   The scenario grammar also lives here (it used to be private to
   [Duel_backend]): the fleet is where new scenarios — notably the
   seeded-buggy twins for relative debugging — become addressable, and
   the backend spec language delegates to {!scenario_of_name} so the
   same names work in [--target] specs and fleet slots. *)

module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache
module Inferior = Duel_target.Inferior
module Memory = Duel_mem.Memory
module Scenarios = Duel_scenarios.Scenarios

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* ------------------------------------------------------------------ *)
(* The scenario grammar *)

let scenario_grammar =
  "all, symtab, faulty, big:N, deep_list:N, deep_tree:N, deep_list_buggy:N, \
   deep_list_swapped:N, deep_tree_buggy:N"

let inferior_of_scenario name =
  let name = String.trim name in
  let num what n =
    match int_of_string_opt n with
    | Some v when v > 0 -> v
    | _ -> bad "scenario %s: expected a positive count, got %S" what n
  in
  match String.split_on_char ':' name with
  | [ "all" ] | [ "" ] -> Scenarios.all ()
  | [ "symtab" ] -> Scenarios.symtab ()
  | [ "faulty" ] -> Scenarios.faulty ()
  | [ "big"; n ] -> Scenarios.big_array (num "big" n)
  | [ "deep_list"; n ] -> Scenarios.deep_list (num "deep_list" n)
  | [ "deep_tree"; n ] -> Scenarios.deep_tree (num "deep_tree" n)
  | [ "deep_list_buggy"; n ] ->
      Scenarios.deep_list_buggy ~bug:Scenarios.Off_by_one
        (num "deep_list_buggy" n)
  | [ "deep_list_swapped"; n ] ->
      Scenarios.deep_list_buggy ~bug:Scenarios.Swapped_link
        (num "deep_list_swapped" n)
  | [ "deep_tree_buggy"; n ] ->
      Scenarios.deep_tree_buggy (num "deep_tree_buggy" n)
  | _ -> bad "unknown scenario %S (want %s)" name scenario_grammar

let scenario_of_name name =
  match inferior_of_scenario name with
  | inf -> Ok inf
  | exception Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Targets *)

type tstats = {
  binds : int Atomic.t;  (* qDuelUse bindings *)
  evals : int Atomic.t;  (* queries evaluated against this target *)
  values : int Atomic.t;  (* result lines those queries streamed *)
  errors : int Atomic.t;  (* evals whose output reported an error *)
}

type target = {
  id : string;
  spec : string;  (* as written in the fleet slot, e.g. "dead:all" *)
  inf : Inferior.t;
  dead : bool;
  lock : Mutex.t;  (* serializes raw target access across shards *)
  wrap : Dbgi.t -> Dbgi.t;  (* extra decoration (chaos rigs); id by default *)
  tstats : tstats;
}

type t = { members : target array }

let targets t = Array.to_list t.members
let ids t = Array.to_list (Array.map (fun tg -> tg.id) t.members)
let size t = Array.length t.members
let find t id = Array.find_opt (fun tg -> tg.id = id) t.members
let generation tg = Memory.generation (Inferior.mem tg.inf)

(* The sum is monotone under any single target's store, so it serves as
   the coherence stamp for artifacts spanning the whole fleet (the
   fan-out's shared plan entries). *)
let generation_sum t =
  Array.fold_left (fun acc tg -> acc + generation tg) 0 t.members

let note_bind tg = Atomic.incr tg.tstats.binds

let note_eval tg ~values ~error =
  Atomic.incr tg.tstats.evals;
  ignore (Atomic.fetch_and_add tg.tstats.values values);
  if error then Atomic.incr tg.tstats.errors

(* Ids travel inside reply frames tagged per-target, so they must stay
   clear of the frame syntax (',', ';', '=', '*'). *)
let id_ok id =
  id <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-' || c = '.')
       id

(* Local debug information, dead live target: every wire-class operation
   raises the typed transient fault (zero-length ops and static queries
   still succeed), so a fan-out over a dead slot reports the fault in
   that slot's stream and nowhere else. *)
let dead_of inf =
  let raw = Duel_target.Backend.direct ~cache:false inf in
  let down ~addr ~len = raise (Dbgi.Target_transient { addr; len }) in
  {
    raw with
    Dbgi.get_bytes =
      (fun ~addr ~len -> if len = 0 then Bytes.create 0 else down ~addr ~len);
    put_bytes =
      (fun ~addr data ->
        if Bytes.length data = 0 then ()
        else down ~addr ~len:(Bytes.length data));
    alloc_space = (fun size -> down ~addr:0 ~len:size);
    call_func = (fun _ _ -> down ~addr:0 ~len:0);
    frames = (fun () -> down ~addr:0 ~len:0);
    caps = Dbgi.basic_caps ~transport:Dbgi.Synthetic "dead";
  }

let create ?(wrap = fun _ dbg -> dbg) slots =
  match
    if slots = [] then bad "a fleet needs at least one target";
    let seen = Hashtbl.create 8 in
    List.map
      (fun (id, spec) ->
        if not (id_ok id) then
          bad "bad target id %S (want letters, digits, '_', '-', '.')" id;
        if Hashtbl.mem seen id then bad "duplicate target id %S" id;
        Hashtbl.add seen id ();
        let dead, scen =
          if String.length spec >= 5 && String.sub spec 0 5 = "dead:" then
            (true, String.sub spec 5 (String.length spec - 5))
          else (false, spec)
        in
        {
          id;
          spec;
          inf = inferior_of_scenario scen;
          dead;
          lock = Mutex.create ();
          wrap = wrap id;
          tstats =
            {
              binds = Atomic.make 0;
              evals = Atomic.make 0;
              values = Atomic.make 0;
              errors = Atomic.make 0;
            };
        })
      slots
  with
  | members -> Ok { members = Array.of_list members }
  | exception Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* The fleet spec: fleet(id=scenario,id=dead:scenario,...) *)

let is_fleet_spec s =
  let s = String.trim s in
  String.length s > 6
  && String.sub s 0 6 = "fleet("
  && s.[String.length s - 1] = ')'

let parse s =
  let s = String.trim s in
  if not (is_fleet_spec s) then
    Error (Printf.sprintf "not a fleet spec: %S (want fleet(id=scenario,...))" s)
  else
    let inner = String.sub s 6 (String.length s - 7) in
    match
      String.split_on_char ',' inner
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
      |> List.map (fun slot ->
             match String.index_opt slot '=' with
             | None -> bad "fleet slot %S: expected id=scenario" slot
             | Some i ->
                 ( String.trim (String.sub slot 0 i),
                   String.trim
                     (String.sub slot (i + 1) (String.length slot - i - 1)) ))
    with
    | slots -> Ok slots
    | exception Bad m -> Error m

let of_string ?wrap s =
  match parse s with Error m -> Error m | Ok slots -> create ?wrap slots

(* The qDuelTargets reply (and the canonical spelling of the fleet). *)
let describe t =
  String.concat ","
    (Array.to_list (Array.map (fun tg -> tg.id ^ "=" ^ tg.spec) t.members))

(* ------------------------------------------------------------------ *)
(* Per-shard access *)

(* One shard's interface to one target: direct (or dead) raw access,
   serialized per-operation by the target's own lock — so two shards
   evaluating against {e different} targets never contend — decorated
   by the target's [wrap], and fronted by a shard-local data cache
   whose generation probe snoops this target's write counter (a store
   through any shard retires every sibling's cached lines for this
   target, and only this target). *)
let shard_dbgi ?(cache = true) tg =
  let base =
    if tg.dead then dead_of tg.inf
    else Duel_target.Backend.direct ~cache:false tg.inf
  in
  let base = tg.wrap (Dbgi.serialized tg.lock base) in
  if not cache then base
  else begin
    let dbg =
      Dcache.wrap
        ~config:
          {
            Dcache.default_config with
            Dcache.stale_policy = Dcache.Probe (fun () -> generation tg);
          }
        base
    in
    (* per-target predictor sharing the member's generation: a write to
       this target drops its speculated lines on every shard, and only
       this target's *)
    ignore (Duel_dbgi.Prefetch.attach dbg);
    dbg
  end
