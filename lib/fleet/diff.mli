(** Cross-target stream diff — the client half of relative debugging.

    Two targets ran the same query; their value streams arrive as
    tagged sequences of ["symbolic = value"] lines.  This module aligns
    the streams positionally, compares the {e value} part of each pair
    (the symbolic part is reported, not compared, so twins at different
    load addresses diff clean), and reports the first divergence with
    both sides' symbolic expressions — the paper's promise that a query
    result is always traceable to the access path that produced it. *)

(** One side of a compared value line. *)
type side = {
  d_sym : string;  (** symbolic access path; [""] if the line had none *)
  d_value : string;  (** rendered value — the compared part *)
  d_line : string;  (** the raw line *)
}

type outcome =
  | Equal of int  (** streams identical; [n] values compared *)
  | Diverged of { index : int; left : side; right : side }
      (** first value mismatch, 0-based position in the stream *)
  | Left_short of { index : int; right : side }
      (** left stream ended at [index]; [right] is the first extra *)
  | Right_short of { index : int; left : side }

val split_line : string -> side
(** Split one value line on its first [" = "]; a line without one
    becomes a pure value ([d_sym = ""]). *)

val diff_seq : string Seq.t -> string Seq.t -> outcome
(** Lazy positional diff: consumes both streams only up to the first
    divergence. *)

val diff : string list -> string list -> outcome

val report : id_a:string -> id_b:string -> outcome -> string list
(** Printable divergence report, sides labelled by target id. *)
