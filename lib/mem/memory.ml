type t = { pages : (int, bytes) Hashtbl.t; mutable gen : int }

exception Fault of int

let page_size = 4096
let create () = { pages = Hashtbl.create 64; gen = 0 }
let page_of addr = addr / page_size
let offset_of addr = addr mod page_size
let generation mem = mem.gen

let map mem ~addr ~size =
  if size < 0 then invalid_arg "Memory.map: negative size";
  if size > 0 then begin
    mem.gen <- mem.gen + 1;
    for p = page_of addr to page_of (addr + size - 1) do
      if not (Hashtbl.mem mem.pages p) then
        Hashtbl.replace mem.pages p (Bytes.make page_size '\000')
    done
  end

let unmap mem ~addr ~size =
  if size > 0 then begin
    mem.gen <- mem.gen + 1;
    for p = page_of addr to page_of (addr + size - 1) do
      Hashtbl.remove mem.pages p
    done
  end

let is_mapped mem ~addr ~size =
  size = 0
  ||
  let rec check p last =
    p > last || (Hashtbl.mem mem.pages p && check (p + 1) last)
  in
  addr >= 0 && check (page_of addr) (page_of (addr + size - 1))

let find_page mem addr =
  if addr < 0 then raise (Fault addr);
  match Hashtbl.find_opt mem.pages (page_of addr) with
  | Some page -> page
  | None -> raise (Fault addr)

let read_u8 mem addr = Char.code (Bytes.get (find_page mem addr) (offset_of addr))

let write_u8 mem addr v =
  let page = find_page mem addr in
  mem.gen <- mem.gen + 1;
  Bytes.set page (offset_of addr) (Char.chr (v land 0xff))

(* Bulk accesses copy page by page so that a read spanning a page boundary
   still works and still faults on the exact unmapped page. *)
let read mem ~addr ~len =
  if len < 0 then invalid_arg "Memory.read: negative length";
  let buf = Bytes.create len in
  let rec copy pos =
    if pos < len then begin
      let a = addr + pos in
      let page = find_page mem a in
      let off = offset_of a in
      let n = min (page_size - off) (len - pos) in
      Bytes.blit page off buf pos n;
      copy (pos + n)
    end
  in
  copy 0;
  buf

let write mem ~addr data =
  let len = Bytes.length data in
  if len > 0 then mem.gen <- mem.gen + 1;
  let rec copy pos =
    if pos < len then begin
      let a = addr + pos in
      let page = find_page mem a in
      let off = offset_of a in
      let n = min (page_size - off) (len - pos) in
      Bytes.blit data pos page off n;
      copy (pos + n)
    end
  in
  copy 0

let mapped_bytes mem = Hashtbl.length mem.pages * page_size
