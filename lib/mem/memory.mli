(** Simulated target address space.

    A sparse, page-granular, byte-addressed memory.  Addresses are OCaml
    [int]s (63-bit, plenty for a simulated 64-bit inferior).  Accessing an
    unmapped page raises {!Fault}, which is how DUEL queries such as
    [head-->next] detect "invalid pointer" and stop, and how error messages
    like "Illegal memory reference" arise, exactly as with a live inferior
    under ptrace. *)

type t

exception Fault of int
(** Raised with the faulting address on access to unmapped memory. *)

val page_size : int

val create : unit -> t

val map : t -> addr:int -> size:int -> unit
(** Make the pages covering [addr, addr+size) accessible (zero-filled the
    first time).  [size = 0] maps nothing. *)

val unmap : t -> addr:int -> size:int -> unit
(** Remove all pages intersecting the range, discarding their contents.
    Used by fault-injection scenarios to create dangling pointers. *)

val is_mapped : t -> addr:int -> size:int -> bool

val read : t -> addr:int -> len:int -> bytes
(** @raise Fault on any unmapped byte. *)

val write : t -> addr:int -> bytes -> unit
val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val mapped_bytes : t -> int
(** Total currently-mapped size, for tests and stats. *)

val generation : t -> int
(** A write-generation counter, bumped by every mutation ([write],
    [write_u8], [map], [unmap]).  An in-process cache layered over this
    memory (see [Duel_dbgi.Dcache]) snoops it to detect stores that
    bypassed the cache — the mini-C interpreter, scenario builders, and
    watchpointed program runs all mutate the inferior directly. *)
