(** Endian-aware scalar encoding/decoding against target memory.

    Integers travel as [int64] (the canonical representative produced by
    {!Duel_ctype.Ctype.normalize}); floats as OCaml [float].  [long double]
    is stored as a double in the low 8 bytes of its 16-byte slot — a
    documented simplification (we model storage width, not x87 precision). *)

val decode_int : Duel_ctype.Abi.t -> bytes -> signed:bool -> int64
(** Decode a whole buffer as one endian-aware scalar; the buffer's length
    is the scalar's size.  The in-memory codecs and the debugger-interface
    scalar helpers ({!Duel_dbgi.Dbgi.read_scalar}) are both built on this.
    @raise Invalid_argument if the length is not 1, 2, 4, or 8. *)

val encode_int : Duel_ctype.Abi.t -> size:int -> int64 -> bytes
(** Inverse of {!decode_int}: the low [size] bytes of the value, in the
    ABI's byte order.  @raise Invalid_argument on bad sizes. *)

val read_int : Duel_ctype.Abi.t -> Memory.t -> addr:int -> size:int -> signed:bool -> int64
(** @raise Invalid_argument if [size] is not 1, 2, 4, or 8. *)

val write_int : Duel_ctype.Abi.t -> Memory.t -> addr:int -> size:int -> int64 -> unit
val read_float : Duel_ctype.Abi.t -> Memory.t -> addr:int -> size:int -> float
val write_float : Duel_ctype.Abi.t -> Memory.t -> addr:int -> size:int -> float -> unit

val read_bitfield :
  Duel_ctype.Abi.t ->
  Memory.t ->
  addr:int ->
  unit_size:int ->
  bit_off:int ->
  width:int ->
  signed:bool ->
  int64
(** Extract a bit-field from the storage unit at [addr].  [bit_off] counts
    from the unit's least-significant bit in the little-endian view; on a
    big-endian ABI the offset is flipped, matching GCC's convention. *)

val write_bitfield :
  Duel_ctype.Abi.t ->
  Memory.t ->
  addr:int ->
  unit_size:int ->
  bit_off:int ->
  width:int ->
  int64 ->
  unit

val read_cstring : Memory.t -> addr:int -> max_len:int -> string
(** Read a NUL-terminated string (stopping at [max_len] or at the first
    unmapped byte, whichever comes first). *)

val write_cstring : Memory.t -> addr:int -> string -> unit
(** Write the string plus a terminating NUL. *)
