module Abi = Duel_ctype.Abi

let check_size size =
  match size with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg (Printf.sprintf "Codec: bad scalar size %d" size)

let byte_index (abi : Abi.t) size i =
  match abi.Abi.endian with Abi.Little -> i | Abi.Big -> size - 1 - i

let decode_int (abi : Abi.t) data ~signed =
  let size = Bytes.length data in
  check_size size;
  let v = ref 0L in
  for i = size - 1 downto 0 do
    let b = Char.code (Bytes.get data (byte_index abi size i)) in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
  done;
  (* Bytes were accumulated most-significant first, so !v now holds the
     zero-extended value; sign-extend if requested. *)
  let v = !v in
  if signed && size < 8 then
    let bits = size * 8 in
    let sign_bit = Int64.shift_left 1L (bits - 1) in
    if Int64.logand v sign_bit <> 0L then
      Int64.logor v (Int64.shift_left (-1L) bits)
    else v
  else v

let encode_int (abi : Abi.t) ~size v =
  check_size size;
  let data = Bytes.create size in
  for i = 0 to size - 1 do
    let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (i * 8)) 0xffL) in
    Bytes.set data (byte_index abi size i) (Char.chr b)
  done;
  data

let read_int (abi : Abi.t) mem ~addr ~size ~signed =
  check_size size;
  decode_int abi (Memory.read mem ~addr ~len:size) ~signed

let write_int (abi : Abi.t) mem ~addr ~size v =
  Memory.write mem ~addr (encode_int abi ~size v)

let read_float abi mem ~addr ~size =
  match size with
  | 4 ->
      Int32.float_of_bits
        (Int64.to_int32 (read_int abi mem ~addr ~size:4 ~signed:false))
  | 8 -> Int64.float_of_bits (read_int abi mem ~addr ~size:8 ~signed:false)
  | 16 -> Int64.float_of_bits (read_int abi mem ~addr ~size:8 ~signed:false)
  | _ -> invalid_arg (Printf.sprintf "Codec: bad float size %d" size)

let write_float abi mem ~addr ~size v =
  match size with
  | 4 ->
      write_int abi mem ~addr ~size:4
        (Int64.of_int32 (Int32.bits_of_float v))
  | 8 -> write_int abi mem ~addr ~size:8 (Int64.bits_of_float v)
  | 16 ->
      write_int abi mem ~addr ~size:8 (Int64.bits_of_float v);
      write_int abi mem ~addr:(addr + 8) ~size:8 0L
  | _ -> invalid_arg (Printf.sprintf "Codec: bad float size %d" size)

let effective_bit_off (abi : Abi.t) ~unit_size ~bit_off ~width =
  match abi.Abi.endian with
  | Abi.Little -> bit_off
  | Abi.Big -> (unit_size * 8) - bit_off - width

let read_bitfield abi mem ~addr ~unit_size ~bit_off ~width ~signed =
  let unit_v = read_int abi mem ~addr ~size:unit_size ~signed:false in
  let off = effective_bit_off abi ~unit_size ~bit_off ~width in
  let v = Int64.shift_right_logical unit_v off in
  let mask =
    if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
  in
  let v = Int64.logand v mask in
  if signed && width < 64 then
    let sign_bit = Int64.shift_left 1L (width - 1) in
    if Int64.logand v sign_bit <> 0L then Int64.logor v (Int64.lognot mask)
    else v
  else v

let write_bitfield abi mem ~addr ~unit_size ~bit_off ~width v =
  let unit_v = read_int abi mem ~addr ~size:unit_size ~signed:false in
  let off = effective_bit_off abi ~unit_size ~bit_off ~width in
  let mask =
    if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
  in
  let cleared = Int64.logand unit_v (Int64.lognot (Int64.shift_left mask off)) in
  let inserted = Int64.shift_left (Int64.logand v mask) off in
  write_int abi mem ~addr ~size:unit_size (Int64.logor cleared inserted)

let read_cstring mem ~addr ~max_len =
  let buf = Buffer.create 16 in
  let rec go i =
    if i < max_len then
      match Memory.read_u8 mem (addr + i) with
      | 0 -> ()
      | b ->
          Buffer.add_char buf (Char.chr b);
          go (i + 1)
      | exception Memory.Fault _ -> ()
  in
  go 0;
  Buffer.contents buf

let write_cstring mem ~addr s =
  Memory.write mem ~addr (Bytes.of_string (s ^ "\000"))
