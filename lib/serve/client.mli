(** The network client for {!Server}.

    Owns one non-blocking socket, the client half of the ACK/NAK
    discipline (skip server ACKs, retransmit on NAK, NAK damaged
    replies), and an incremental deframer, so split and coalesced reads
    are invisible above {!exchange}.

    Two levels of service:

    {ul
    {- {!rpc} — one RSP payload each way, for the classic
       one-round-trip-per-access packets.  {!dbgi} builds a full
       {!Duel_dbgi.Dbgi.t} over it via {!Duel_rsp.Client.connect},
       following the gdb model: symbols and types come from {e local}
       debug information (the scenario builders are deterministic, so a
       locally built twin of the served scenario has identical
       addresses), while memory, allocation and calls go over the wire.}
    {- {!eval} — ship a whole DUEL query to the server and stream the
       formatted result lines back; one round-trip per {e query}.
       {!eval_send}/{!eval_recv} split the halves so several clients
       can keep evals in flight concurrently (the pipelined
       benchmark).}}

    {2 Failure policy}

    Every wait has a deadline: a dead, wedged or lossy server produces a
    typed {!Error}, never a hang.  A reply missing after
    [retry_policy.reply_timeout] is retried with exponential backoff and
    jitter — but only when a resend cannot execute twice.  Memory
    reads/writes and pure queries are idempotent and resend as-is;
    evaluation goes over the wire as [qDuelEvalSeq:<seq>,<budget>;expr],
    which the server deduplicates by sequence number (a resend replays
    the stored reply without re-running the command) — the [budget] is
    the client's remaining deadline, so the server fails a request typed
    when nobody is waiting for the answer any more.  Allocation and
    target calls are not resendable; their timeout is a clean failure.

    {2 Cache coherence}

    A {!dbgi} built with [~cache:true] (the default) is wrapped in
    {!Duel_dbgi.Dcache} under the [Explicit] stale policy — there is no
    generation counter to snoop across the wire.  The client honours
    the owner's side of that contract: every completed {!eval} marks
    all caches built from this connection stale (a server-side eval can
    write target memory), and the wrapped interface's [frames] probes
    the wire's [qDuelFrames] count, marking the cache stale whenever it
    changes. *)

(** {2 Typed failures}

    Everything this client raises about the {e conversation} is an
    {!Error}, never a raw [Failure]: a health scorer (the
    {!Duel_dbgi.Dispatcher}) must trip a replica on transport faults
    only, and a string cannot carry that distinction.  {!is_transport}
    draws the line: [Remote] means the server executed the request and
    reported a failure — an authoritative answer, not a reason to fail
    over. *)

type failure =
  | Connect of string  (** establishing the connection failed *)
  | Closed of string  (** the peer is gone: EOF, reset, broken pipe *)
  | Timeout of string  (** a deadline expired, retries included *)
  | Protocol of string
      (** persistent NAKs or frames that defy the protocol *)
  | Remote of string
      (** the server executed the request and reported failure *)
  | Unknown_target of string
      (** {!use_target} named an id the server's fleet does not have —
          authoritative like [Remote] (the server answered [E03]), but
          typed so callers can fall back to the roster instead of
          parsing message text *)

exception Error of failure

val failure_message : failure -> string

val is_transport : failure -> bool
(** [true] for everything except [Remote] and [Unknown_target] — the
    faults that indicate the {e replica} (not the query) is
    unhealthy. *)

type retry_policy = {
  attempts : int;  (** total send attempts per request, including the first *)
  reply_timeout : float;  (** seconds to wait for a reply per attempt *)
  base_backoff : float;  (** seconds before the first resend *)
  max_backoff : float;  (** cap on the exponential growth *)
  jitter : float;  (** fraction of each delay randomised away, [0..1] *)
}

val default_retry : retry_policy
(** 8 attempts, 2 s reply timeout, 20 ms base backoff doubling to a
    500 ms cap, 0.5 jitter. *)

type counters = {
  mutable resends : int;  (** requests retransmitted after a reply timeout *)
  mutable timeouts : int;  (** reply waits that expired *)
  mutable naks_sent : int;  (** damaged reply frames we NAKed *)
  mutable naks_seen : int;  (** server NAKs of our (damaged) requests *)
  mutable dup_frames : int;  (** stale or duplicate reply frames discarded *)
}

type t

val connect :
  ?pump:(unit -> unit) -> ?timeout:float -> ?retry:retry_policy -> string -> t
(** [connect addr] opens ["unix:PATH"] or ["HOST:PORT"] (bare ["PORT"]
    means loopback).  [pump] is called instead of blocking in [select]
    whenever a read or write would block — the cooperative driver for a
    server living in the same process (tests, benchmarks) is
    [~pump:(fun () -> ignore (Server.step srv 0.01))]; deadlines apply
    in pump mode too, so a shut-down in-process server cannot wedge the
    client.  [timeout] (default 30 s) bounds each whole operation;
    [retry] governs per-reply waits and resends.
    @raise Error ([Connect _]) on a refused connection or malformed
    address. *)

val of_fd :
  ?pump:(unit -> unit) ->
  ?timeout:float ->
  ?retry:retry_policy ->
  Unix.file_descr ->
  t
(** Adopt an already-connected socket (one end of a [socketpair] whose
    other end was {!Server.inject}ed).  Sets it non-blocking. *)

val counters : t -> counters
(** This connection's client-side retry/recovery counters. *)

val close : t -> unit

val parse_addr : string -> Unix.sockaddr
(** The address syntax of {!connect}, exposed for the CLI. *)

val exchange : t -> string -> string
(** One framed packet out, one framed reply back — the shape
    {!Duel_rsp.Client.connect} wants.  Retransmits on server NAK, NAKs
    damaged replies so the server retransmits, and resends idempotent
    requests whose reply timed out (with backoff; see the failure
    policy above).
    @raise Error on deadline ([Timeout]), EOF ([Closed]), or persistent
    rejection ([Protocol]). *)

val rpc : t -> string -> string
(** {!exchange} at the payload level (encode, exchange, decode). *)

val recv_reply : t -> string
(** Await one reply payload without sending anything — for requests
    written out of band (pipelining tests and benchmarks). *)

val eval : t -> string -> string list
(** [eval t expr] runs [expr] server-side in this connection's session
    and returns the formatted output lines.  Marks this connection's
    caches stale (see the coherence contract above).
    @raise Error — [Remote] if the server reports an evaluation error,
    transport-class otherwise. *)

val eval_send : t -> string -> unit
(** Fire the eval request ([qDuelEvalSeq]) without waiting — pair with
    {!eval_recv}.  At most one eval may be in flight per connection. *)

val eval_recv : t -> string list
(** Collect the streamed reply of the pending {!eval_send}: data chunks
    are de-duplicated by index, stale frames from earlier exchanges are
    discarded, and a missing or partly damaged reply is re-requested by
    sequence number (the server replays the stored reply without
    re-executing).  Damaged frames {e within} the stream are not NAKed
    — a NAK retransmits the whole stored multi-frame reply, which
    snowballs on long streams; the terminal frame's line count reveals
    what is missing and the seq re-request fetches it precisely.  The
    overall deadline set at {!eval_send} bounds everything.
    @raise Error on deadline or a typed server failure — never a hang,
    even if the server dies mid-reply. *)

val use_target : t -> string -> unit
(** Bind this connection to fleet target [id] ([qDuelUse:<id>]): later
    evals and wire accesses aim at that target, in a fresh server-side
    session.  Marks this connection's caches stale — everything cached
    so far came from the previous target.
    @raise Error — [Unknown_target id] if the fleet has no such target
    (or the server hosts no fleet), transport-class otherwise. *)

val targets : t -> (string * string) list
(** The server's fleet roster ([qDuelTargets]) as [(id, spec)] pairs;
    empty on a fleet-less server. *)

val eval_all :
  t -> string list -> string -> (string * (string list, string) result) list
(** [eval_all t ids expr] evaluates [expr] across fleet targets in one
    round-trip ([qDuelEvalAll]); [ids = []] means every target.  Per
    target: [Ok lines] (which may themselves report an evaluation error
    — a dead target's transient fault arrives as its output, exactly as
    a single-target eval would) or [Error msg] for a leg that failed
    outright (unknown id, escaped server-side exception).  Legs arrive
    in server order; the terminal frame's leg count is verified, so a
    truncated reply fails typed instead of passing for a short fleet.
    Not resend-safe: there is no replay window for fan-outs, so a lost
    reply surfaces as [Timeout] and the retry decision is the
    caller's.  Marks this connection's caches stale.
    @raise Error on deadline, transport failure, or a fleet-less
    server ([Remote]). *)

val server_stats : t -> (string * int) list
(** The server's [qDuelStats] counters, parsed — including the
    per-target [tgt.<id>.<counter>] keys when a fleet is hosted. *)

val frame_count : t -> int
(** The wire's [qDuelFrames] — the active-frame count on the server. *)

val shutdown_server : t -> unit
(** Ask the server to shut down gracefully ([qDuelShutdown]). *)

val dbgi :
  ?cache:bool ->
  ?prefetch:bool ->
  t ->
  Duel_rsp.Client.debug_info ->
  Duel_dbgi.Dbgi.t
(** The network debugger interface over this connection (see the module
    preamble).  [~cache:false] gives the raw one-round-trip-per-access
    client with no coherence obligations; [~prefetch:false] keeps the
    cache but disables speculative read-ahead into it. *)
