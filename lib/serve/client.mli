(** The network client for {!Server}.

    Owns one non-blocking socket, the client half of the ACK/NAK
    discipline (skip server ACKs, retransmit on NAK, NAK damaged
    replies), and an incremental deframer, so split and coalesced reads
    are invisible above {!exchange}.

    Two levels of service:

    {ul
    {- {!rpc} — one RSP payload each way, for the classic
       one-round-trip-per-access packets.  {!dbgi} builds a full
       {!Duel_dbgi.Dbgi.t} over it via {!Duel_rsp.Client.connect},
       following the gdb model: symbols and types come from {e local}
       debug information (the scenario builders are deterministic, so a
       locally built twin of the served scenario has identical
       addresses), while memory, allocation and calls go over the wire.}
    {- {!eval} — ship a whole DUEL query to the server ([qDuelEval:])
       and stream the formatted result lines back; one round-trip per
       {e query}.  {!eval_send}/{!eval_recv} split the halves so
       several clients can keep evals in flight concurrently (the
       pipelined benchmark).}}

    {2 Cache coherence}

    A {!dbgi} built with [~cache:true] (the default) is wrapped in
    {!Duel_dbgi.Dcache} under the [Explicit] stale policy — there is no
    generation counter to snoop across the wire.  The client honours
    the owner's side of that contract: every completed {!eval} marks
    all caches built from this connection stale (a server-side eval can
    write target memory), and the wrapped interface's [frames] probes
    the wire's [qDuelFrames] count, marking the cache stale whenever it
    changes. *)

type t

val connect : ?pump:(unit -> unit) -> ?timeout:float -> string -> t
(** [connect addr] opens ["unix:PATH"] or ["HOST:PORT"] (bare ["PORT"]
    means loopback).  [pump] is called instead of blocking in [select]
    whenever a read or write would block — the cooperative driver for a
    server living in the same process (tests, benchmarks) is
    [~pump:(fun () -> ignore (Server.step srv 0.01))].  [timeout]
    (default 30 s) bounds every wait for the server.
    @raise Unix.Unix_error if the connection is refused.
    @raise Failure on a malformed address. *)

val of_fd : ?pump:(unit -> unit) -> ?timeout:float -> Unix.file_descr -> t
(** Adopt an already-connected socket (one end of a [socketpair] whose
    other end was {!Server.inject}ed).  Sets it non-blocking. *)

val close : t -> unit

val parse_addr : string -> Unix.sockaddr
(** The address syntax of {!connect}, exposed for the CLI. *)

val exchange : t -> string -> string
(** One framed packet out, one framed reply back — the shape
    {!Duel_rsp.Client.connect} wants.  Retransmits on server NAK (up
    to 3 times), NAKs damaged replies so the server retransmits.
    @raise Failure on timeout, EOF, or persistent rejection. *)

val rpc : t -> string -> string
(** {!exchange} at the payload level (encode, exchange, decode). *)

val recv_reply : t -> string
(** Await one reply payload without sending anything — for requests
    written out of band (pipelining tests and benchmarks). *)

val eval : t -> string -> string list
(** [eval t expr] runs [expr] server-side in this connection's session
    and returns the formatted output lines.  Marks this connection's
    caches stale (see the coherence contract above).
    @raise Failure if the server reports an error or the reply stream
    is damaged. *)

val eval_send : t -> string -> unit
(** Fire the [qDuelEval:] request without waiting — pair with
    {!eval_recv}.  At most one eval may be in flight per connection. *)

val eval_recv : t -> string list
(** Collect the streamed reply of the pending {!eval_send}. *)

val server_stats : t -> (string * int) list
(** The server's [qDuelStats] counters, parsed. *)

val frame_count : t -> int
(** The wire's [qDuelFrames] — the active-frame count on the server. *)

val shutdown_server : t -> unit
(** Ask the server to shut down gracefully ([qDuelShutdown]). *)

val dbgi : ?cache:bool -> t -> Duel_rsp.Client.debug_info -> Duel_dbgi.Dbgi.t
(** The network debugger interface over this connection (see the module
    preamble).  [~cache:false] gives the raw one-round-trip-per-access
    client with no coherence obligations. *)
