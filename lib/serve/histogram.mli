(** A fixed-bucket latency histogram.

    Service times land in logarithmic buckets (bucket [i] holds samples
    in [[2{^i-1}, 2{^i}) µs], bucket 0 everything under a microsecond),
    so recording is O(1), memory is constant, and percentiles come out
    as bucket upper bounds — the shape a server can afford to maintain
    on every request.  Quantile error is bounded by the 2x bucket width,
    which is plenty to tell a 10 µs loopback exchange from a 10 ms
    stall. *)

type t

val create : unit -> t
val reset : t -> unit

val add : t -> float -> unit
(** Record one sample, in seconds.  Negative samples count as zero. *)

val count : t -> int
(** Total samples recorded. *)

val merge : t -> t -> t
(** Bucket-wise sum into a {e fresh} histogram; neither input is
    mutated.  Because every histogram shares the same bucket
    boundaries, the merge is exact: percentiles of the merged histogram
    are percentiles over the union of the two sample streams.  Used to
    aggregate per-shard service-time histograms for [qDuelStats]; the
    merged total is recomputed from the bucket counts, so merging a
    histogram another domain is concurrently updating yields a
    consistent (if slightly stale) snapshot. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [[0, 1]]: an upper bound on the [p]-th
    quantile, in seconds ([0.] when empty). *)

val to_wire : t -> string
(** Compact [count=..;p50us=..;p90us=..;p99us=..] rendering (integer
    microseconds) for the [qDuelStats] packet. *)

val to_lines : t -> string list
(** Human-readable summary plus a sparkline of the occupied buckets, for
    [info server]. *)
