(** A fixed-bucket latency histogram.

    Service times land in logarithmic buckets (bucket [i] holds samples
    in [[2{^i-1}, 2{^i}) µs], bucket 0 everything under a microsecond),
    so recording is O(1), memory is constant, and percentiles come out
    as bucket upper bounds — the shape a server can afford to maintain
    on every request.  Quantile error is bounded by the 2x bucket width,
    which is plenty to tell a 10 µs loopback exchange from a 10 ms
    stall. *)

type t

val create : unit -> t
val reset : t -> unit

val add : t -> float -> unit
(** Record one sample, in seconds.  Negative samples count as zero. *)

val count : t -> int
(** Total samples recorded. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [[0, 1]]: an upper bound on the [p]-th
    quantile, in seconds ([0.] when empty). *)

val to_wire : t -> string
(** Compact [count=..;p50us=..;p90us=..;p99us=..] rendering (integer
    microseconds) for the [qDuelStats] packet. *)

val to_lines : t -> string list
(** Human-readable summary plus a sparkline of the occupied buckets, for
    [info server]. *)
