(* Log2-bucketed latency histogram: bucket i counts samples whose
   duration in microseconds is in [2^(i-1), 2^i); bucket 0 is < 1 µs.
   32 buckets cover up to ~35 minutes; anything beyond saturates into
   the last bucket. *)

let buckets = 32

type t = { counts : int array; mutable total : int }

let create () = { counts = Array.make buckets 0; total = 0 }

let reset t =
  Array.fill t.counts 0 buckets 0;
  t.total <- 0

let bucket_of seconds =
  let us = seconds *. 1e6 in
  if us < 1.0 then 0
  else
    let rec go i bound =
      if i >= buckets - 1 || us < bound then i else go (i + 1) (bound *. 2.0)
    in
    go 1 2.0

let add t seconds =
  let i = bucket_of (Float.max seconds 0.0) in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

(* Bucket-wise sum into a fresh histogram: with identical bucket
   boundaries on both sides the merge is exact — the percentile read
   off the merged histogram equals the percentile over the union of the
   two sample streams (within the shared bucket resolution).  Neither
   input is mutated, so merging a live shard's histogram only ever
   reads it (racy reads of a foreign domain's counters may be a step
   stale, never torn). *)
let merge a b =
  let t = create () in
  for i = 0 to buckets - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.total <- Array.fold_left ( + ) 0 t.counts;
  t

(* Upper bound of bucket i, in seconds. *)
let bucket_top i = ldexp 1e-6 i

let percentile t p =
  if t.total = 0 then 0.0
  else begin
    let need =
      Float.to_int (Float.round (p *. float_of_int t.total)) |> max 1
    in
    let rec go i seen =
      if i >= buckets then bucket_top (buckets - 1)
      else
        let seen = seen + t.counts.(i) in
        if seen >= need then bucket_top i else go (i + 1) seen
    in
    go 0 0
  end

let us t p = Float.to_int (Float.ceil (percentile t p *. 1e6))

let to_wire t =
  Printf.sprintf "count=%d;p50us=%d;p90us=%d;p99us=%d" t.total (us t 0.50)
    (us t 0.90) (us t 0.99)

let to_lines t =
  if t.total = 0 then [ "service time: no samples" ]
  else begin
    let spark = Buffer.create buckets in
    let hi = Array.fold_left max 1 t.counts in
    let glyphs = [| " "; "."; ":"; "-"; "="; "#" |] in
    let last_occupied = ref 0 in
    Array.iteri (fun i n -> if n > 0 then last_occupied := i) t.counts;
    for i = 0 to !last_occupied do
      let n = t.counts.(i) in
      let g = if n = 0 then 0 else 1 + (n * (Array.length glyphs - 2) / hi) in
      Buffer.add_string spark glyphs.(g)
    done;
    [
      Printf.sprintf "service time: %d samples, p50 <= %d us, p90 <= %d us, p99 <= %d us"
        t.total (us t 0.50) (us t 0.90) (us t 0.99);
      Printf.sprintf "latency buckets (1us..2^%d us, log2): [%s]" !last_occupied
        (Buffer.contents spark);
    ]
  end
