(* A concurrent network debug server: one target, many clients, one
   thread.

   Hanson's follow-up to the narrow debugger interface (MSR-TR-99-4)
   puts that interface on the wire; this module is our serving layer
   over it.  A single [Unix.select] event loop owns every socket:
   listeners (TCP and Unix-domain) plus one connection object per
   client, each with an incremental RSP deframer on the read side and a
   bounded output queue on the write side.  Nothing blocks: reads take
   whatever the kernel has and feed the deframer, writes send what the
   socket accepts and keep the rest queued, and a connection whose
   output queue is over budget simply stops being read until it drains
   (backpressure, instead of unbounded buffering).

   Protocol-wise each connection is an independent RSP exchange against
   the shared [Duel_rsp.Server] stub, plus two serve-level extensions:
   [qDuelEval:<expr>] runs a whole DUEL command in the connection's own
   [Session] (aliases isolated per client, target shared) and streams
   the formatted results back in chunked [D...] frames ended by a
   [T<count>] frame, so a thin client pays one round-trip per *query*
   instead of one per scalar; [qDuelStats] reports the observability
   counters. *)

module Packet = Duel_rsp.Packet
module Rsp_server = Duel_rsp.Server
module Session = Duel_core.Session
module Bytecode = Duel_core.Bytecode
module Inferior = Duel_target.Inferior
module Memory = Duel_mem.Memory
module Fleet = Duel_fleet.Fleet

(* Server-side fault points for chaos testing.  The hook is consulted at
   each point and answers "inject here?"; a deterministic (seeded) hook
   makes a failing schedule replayable.  Every injection is counted in
   the [chaos] stat so a soak run can prove the fault path was actually
   exercised. *)
type fault_point =
  | Accept  (** close an accepted connection before serving it *)
  | Reply_drop  (** swallow an outgoing reply (client must time out) *)
  | Reply_truncate  (** send only a reply prefix (client must NAK) *)
  | Stall_read  (** skip reading a ready connection this step *)
  | Stall_write  (** skip writing a writable connection this step *)

type config = {
  max_conns : int;
  idle_timeout : float;
  max_output : int;
  max_requests : int;
  max_input : int;
  max_eval_values : int;
  eval_chunk : int;
  plan_cache : int;
  limits : Rsp_server.limits;
  fault_hook : (fault_point -> bool) option;
}

let default_config =
  {
    max_conns = 64;
    idle_timeout = 30.0;
    max_output = 1 lsl 20;
    max_requests = 0;
    max_input = 0;
    max_eval_values = 10_000;
    eval_chunk = 32;
    plan_cache = 64;
    limits = Rsp_server.default_limits;
    fault_hook = None;
  }

type stats = {
  mutable accepted : int;
  mutable peak_active : int;
  mutable closed : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable packets : int;
  mutable evals : int;
  mutable eval_values : int;
  mutable faults : int;
  mutable naks : int;
  mutable timeouts : int;
  mutable limited : int;
  mutable chaos : int;
  mutable eval_dups : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plan_compiles : int;
  mutable plan_inval : int;
  mutable plan_evict : int;
  hist : Histogram.t;
}

(* One hosted target as this shard sees it: the fleet member (shared
   across shards — lock, generation, counters) plus this shard's own
   cached access interface, RSP stub, and plan-compile context. *)
type slot = {
  sl_target : Fleet.target;
  sl_dbgi : Duel_dbgi.Dbgi.t;
  sl_rsp : Rsp_server.t;
  sl_plan_session : Session.t;  (* dedicated compile context (never evals) *)
}

type conn = {
  fd : Unix.file_descr;
  dfr : Packet.Deframer.t;
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of the front chunk already written *)
  mutable out_bytes : int;
  mutable closing : bool;  (* drain the queue, then close *)
  mutable last_active : float;
  mutable requests : int;
  mutable rx_bytes : int;
  mutable last_reply : string;  (* retransmitted on a client NAK *)
  (* at-most-once bookkeeping for qDuelEvalSeq: a resent request with
     the sequence number we already served replays the stored reply
     without re-executing the command *)
  mutable last_eval_seq : int;  (* -1: none yet *)
  mutable last_eval_reply : string;
  mutable session : Session.t;
  (* the fleet target this connection's session and RSP traffic are
     aimed at; [qDuelUse:<id>] rebinds (fresh session, seq reset).
     [None] iff the server hosts no fleet. *)
  mutable bound : slot option;
}

(* A consistent read of one shard's observable load, for merging. *)
type view = { v_st : stats; v_active : int }

type t = {
  cfg : config;
  inf : Inferior.t;
  rsp : Rsp_server.t;
  dbgi : Duel_dbgi.Dbgi.t;  (* shard-local interface for sessions *)
  (* Serializes direct target access shared with sibling shards: RSP
     dispatch and stdout capture take it; [dbgi] is expected to be
     already serialized by the same mutex (see {!Duel_dbgi.Dbgi.serialized}).
     [None] (the single-threaded default) costs nothing. *)
  target_lock : Mutex.t option;
  (* The cross-shard shutdown flag: [shutdown] raises it, every shard's
     [step] lowers its own sails when it sees it.  A lone server owns a
     private flag, so the behavior is exactly the old [shutting] bool. *)
  stop : bool Atomic.t;
  mutable listeners : (Unix.file_descr * string option) list;
      (* fd, unix-socket path to unlink on close *)
  mutable conns : conn list;
  mutable accepting : bool;
  mutable shutting : bool;
  scratch : bytes;
  st : stats;
  (* Sockets handed to this shard by another domain (a dispatcher or a
     sibling's accept), adopted at the top of the next [step].  The
     wake pipe kicks the shard out of [select] so a hand-off is served
     immediately instead of on the next timeout. *)
  inbox : Unix.file_descr Queue.t;
  inbox_lock : Mutex.t;
  mutable wake : (Unix.file_descr * Unix.file_descr) option;  (* rd, wr *)
  (* When sharded: every shard of the server (self included), so
     qDuelStats answered by any shard reports whole-server numbers and
     a shutdown can wake every sibling's select. *)
  mutable siblings : t list;
  (* the query-plan cache: token-normalized expression text -> compiled
     program.  Domain-safe ({!Plan_cache}); shared across shards.  When
     a fleet is hosted, keys are prefixed with the target id, so twins
     evaluating one expression never share a compiled plan (compiling
     interns literals into *that* target's memory). *)
  plans : Plan_cache.t;
  plan_session : Session.t;  (* dedicated compile context (never evals) *)
  (* the hosted fleet, shared by every shard; [slots] is this shard's
     per-target view in fleet order.  Both empty on a classic
     single-target server. *)
  fleet : Fleet.t option;
  slots : slot array;
}

let fresh_stats () =
  {
    accepted = 0;
    peak_active = 0;
    closed = 0;
    bytes_in = 0;
    bytes_out = 0;
    packets = 0;
    evals = 0;
    eval_values = 0;
    faults = 0;
    naks = 0;
    timeouts = 0;
    limited = 0;
    chaos = 0;
    eval_dups = 0;
    plan_hits = 0;
    plan_misses = 0;
    plan_compiles = 0;
    plan_inval = 0;
    plan_evict = 0;
    hist = Histogram.create ();
  }

let create ?(config = default_config) ?dbgi ?plans ?stop ?target_lock ?fleet
    inf =
  (* a peer can vanish between select and write; the loop must see that
     as EPIPE on the write, not die of SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let dbgi =
    match dbgi with Some d -> d | None -> Duel_target.Backend.direct inf
  in
  (* this shard's per-target interfaces: shard-local dcaches over the
     shared (locked) raw targets, one RSP stub and compile context each *)
  let slots =
    match fleet with
    | None -> [||]
    | Some f ->
        Array.of_list
          (List.map
             (fun tg ->
               let d = Fleet.shard_dbgi tg in
               {
                 sl_target = tg;
                 sl_dbgi = d;
                 sl_rsp =
                   Rsp_server.create ~limits:config.limits tg.Fleet.inf;
                 sl_plan_session = Session.create d;
               })
             (Fleet.targets f))
  in
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_rd;
  Unix.set_nonblock wake_wr;
  {
    cfg = config;
    inf;
    rsp = Rsp_server.create ~limits:config.limits inf;
    dbgi;
    target_lock;
    stop = (match stop with Some a -> a | None -> Atomic.make false);
    listeners = [];
    conns = [];
    accepting = true;
    shutting = false;
    scratch = Bytes.create 65536;
    st = fresh_stats ();
    inbox = Queue.create ();
    inbox_lock = Mutex.create ();
    wake = Some (wake_rd, wake_wr);
    siblings = [];
    plans =
      (match plans with
      | Some p -> p
      | None -> Plan_cache.create config.plan_cache);
    plan_session = Session.create dbgi;
    fleet;
    slots;
  }

let stats t = t.st
let active t = List.length t.conns
let set_siblings t all = t.siblings <- all

(* Hold the target lock (shared direct access under sharding) around
   [f]; free when unsharded. *)
let target_locked t f =
  match t.target_lock with None -> f () | Some m -> Mutex.protect m f

(* The connection's view of "the target": its bound fleet slot when a
   fleet is hosted, the server's single target otherwise.  Everything
   downstream of dispatch goes through these, so the classic path and
   the fleet path share one code shape. *)
let conn_inf t c =
  match c.bound with Some sl -> sl.sl_target.Fleet.inf | None -> t.inf

let conn_rsp t c = match c.bound with Some sl -> sl.sl_rsp | None -> t.rsp

let conn_locked t c f =
  match c.bound with
  | Some sl -> Mutex.protect sl.sl_target.Fleet.lock f
  | None -> target_locked t f

(* Plan-cache coordinates for the connection's target: abi/compile
   context, key prefix (the target id — twins must never share a
   compiled plan), and the generation the entry is stamped with. *)
let conn_plan t c =
  match c.bound with
  | Some sl ->
      ( sl.sl_dbgi,
        sl.sl_plan_session,
        sl.sl_target.Fleet.id ^ "\x00",
        fun () -> Fleet.generation sl.sl_target )
  | None ->
      ( t.dbgi,
        t.plan_session,
        "",
        fun () -> Memory.generation (Inferior.mem t.inf) )

(* --- listeners ----------------------------------------------------------- *)

let listen_tcp ?(reuseport = false) t ~host ~port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  (* per-shard accept: every shard binds the same address and the
     kernel load-balances incoming connections across the listeners *)
  if reuseport then Unix.setsockopt fd SO_REUSEPORT true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  t.listeners <- (fd, None) :: t.listeners;
  match Unix.getsockname fd with
  | ADDR_INET (_, p) -> p
  | _ -> port

let listen_unix t path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  t.listeners <- (fd, Some path) :: t.listeners

(* --- connection lifecycle ------------------------------------------------ *)

let new_conn t fd =
  Unix.set_nonblock fd;
  (* small ACK and reply writes must not sit behind Nagle's algorithm
     waiting for a delayed ACK (a no-op on Unix-domain sockets) *)
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  (* fleet servers bind every fresh connection to the first slot; the
     client rebinds with qDuelUse *)
  let bound = if Array.length t.slots = 0 then None else Some t.slots.(0) in
  let session =
    Session.create
      (match bound with Some sl -> sl.sl_dbgi | None -> t.dbgi)
  in
  session.Session.max_values <- t.cfg.max_eval_values;
  let c =
    {
      fd;
      dfr = Packet.Deframer.create ();
      outq = Queue.create ();
      out_off = 0;
      out_bytes = 0;
      closing = false;
      last_active = Unix.gettimeofday ();
      requests = 0;
      rx_bytes = 0;
      last_reply = "";
      last_eval_seq = -1;
      last_eval_reply = "";
      session;
      bound;
    }
  in
  t.conns <- c :: t.conns;
  t.st.accepted <- t.st.accepted + 1;
  t.st.peak_active <- max t.st.peak_active (List.length t.conns);
  c

let inject t fd = ignore (new_conn t fd)

(* --- cross-domain hand-off ----------------------------------------------- *)

(* The inbox lock also guards the wake pipe's lifetime: a sibling
   domain waking this shard must not race the shard closing the pipe
   (a closed-and-reused fd number would receive the byte). *)
let wake t =
  Mutex.protect t.inbox_lock (fun () ->
      match t.wake with
      | Some (_, wr) -> (
          try ignore (Unix.write_substring wr "w" 0 1)
          with Unix.Unix_error _ -> ())
      | None -> ())

(* Hand an accepted socket to this shard from another domain: enqueue
   under the inbox lock, then kick the shard out of its [select].  The
   fd is owned by the shard from here on (adopted or closed at the top
   of its next step).  A shard that has already fully shut down (wake
   pipe gone) cannot adopt — close the socket instead of leaking it. *)
let hand_off t fd =
  let adopted =
    Mutex.protect t.inbox_lock (fun () ->
        match t.wake with
        | None -> false
        | Some (_, wr) ->
            Queue.push fd t.inbox;
            (try ignore (Unix.write_substring wr "w" 0 1)
             with Unix.Unix_error _ -> ());
            true)
  in
  if not adopted then try Unix.close fd with Unix.Unix_error _ -> ()

(* Adopt everything handed to us since the last step.  Runs in the
   shard's own domain; respects the same capacity/shutdown rules as
   [accept_some]. *)
let drain_inbox t =
  let pending =
    Mutex.protect t.inbox_lock (fun () ->
        let l = List.of_seq (Queue.to_seq t.inbox) in
        Queue.clear t.inbox;
        l)
  in
  List.iter
    (fun fd ->
      if (not t.accepting) || List.length t.conns >= t.cfg.max_conns then begin
        t.st.limited <- t.st.limited + 1;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else ignore (new_conn t fd))
    pending

let drop t c =
  if List.memq c t.conns then begin
    t.conns <- List.filter (fun c' -> not (c' == c)) t.conns;
    t.st.closed <- t.st.closed + 1;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* --- output queue -------------------------------------------------------- *)

let enqueue c s =
  if s <> "" then begin
    Queue.push s c.outq;
    c.out_bytes <- c.out_bytes + String.length s
  end

(* Write as much queued output as the socket accepts right now. *)
let rec write_some t c =
  if not (Queue.is_empty c.outq) then begin
    let front = Queue.peek c.outq in
    let len = String.length front - c.out_off in
    match
      Unix.write_substring c.fd front c.out_off len
    with
    | n ->
        c.out_bytes <- c.out_bytes - n;
        t.st.bytes_out <- t.st.bytes_out + n;
        c.last_active <- Unix.gettimeofday ();
        if n = len then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0;
          write_some t c
        end
        else c.out_off <- c.out_off + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        drop t c
  end

(* --- request dispatch ---------------------------------------------------- *)

let frame = Packet.encode

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let after p s = String.sub s (String.length p) (String.length s - String.length p)

(* --- the shared query-plan cache ----------------------------------------- *)

(* Plans are keyed by the command's *token stream*, not its text: the
   lexer is the normalizer, so two spellings differing only in
   whitespace (or trailing comments) share one compiled program.  A
   string that does not even lex falls through to [Session.exec], which
   owns the error message. *)
let plan_key dbgi expr =
  match
    Duel_core.Lexer.tokenize ~abi:dbgi.Duel_dbgi.Dbgi.abi expr
    |> List.map fst
  with
  | toks -> Some (Marshal.to_string toks [])
  | exception _ -> None

(* Parse + lower + compile in the given dedicated plan session.
   Anything that fails here (parse error, lowering limit) is [None]:
   the caller falls through to the interpreter path, which reports the
   failure the same way a planless server would. *)
let plan_compile session expr =
  match
    Duel_core.Compile.compile
      (Session.compile session (Session.parse session expr))
  with
  | prog -> Some prog
  | exception _ -> None

(* Look up (or build) the plan for [expr] in the (possibly shared,
   always domain-safe) {!Plan_cache}, against one target's coordinates:
   [prefix] namespaces the key by target id (fleet twins must never
   share a plan — compiling interns literals into that target's
   memory), [gen] is that target's write-generation.  [gen] is re-read
   *after* a compile: compiling may itself intern string literals into
   target space, and a plan must not be born already stale.  Cache
   outcomes land in this shard's own counters; two shards racing to
   compile the same key both count a compile and the later store wins —
   wasted work at worst, never a wrong plan. *)
let plan_lookup_in t ~prefix ~session ~gen dbgi expr =
  if not (Plan_cache.enabled t.plans) then None
  else
    match plan_key dbgi expr with
    | None -> None
    | Some key -> (
        let key = prefix ^ key in
        match Plan_cache.find t.plans ~key ~gen:(gen ()) with
        | Plan_cache.Hit prog ->
            t.st.plan_hits <- t.st.plan_hits + 1;
            Some prog
        | (Plan_cache.Stale | Plan_cache.Absent) as missed -> (
            if missed = Plan_cache.Stale then
              t.st.plan_inval <- t.st.plan_inval + 1;
            t.st.plan_misses <- t.st.plan_misses + 1;
            match plan_compile session expr with
            | None -> None
            | Some prog ->
                t.st.plan_compiles <- t.st.plan_compiles + 1;
                t.st.plan_evict <-
                  t.st.plan_evict
                  + Plan_cache.store t.plans ~key ~gen:(gen ()) prog;
                Some prog))

(* Target-printed output (printf goes to the server process; the client
   deserves to see it), as trailing lines. *)
let printed_lines out =
  String.split_on_char '\n' out |> List.filter (fun l -> l <> "")

(* Error classification for per-target counters: does this output line
   report a failure rather than a value?  Matches the fixed prefixes
   [Session.exec]'s error mapping emits. *)
let line_is_error l =
  let pre p = has_prefix p l in
  pre "syntax error" || pre "parse error"
  || pre "Illegal memory reference"
  || pre "Transient target fault"
  || pre "evaluation too deep"

(* Lines a qDuelEval sends back: the session's formatted output plus
   anything the target printed.  A cached plan runs on the VM in the
   connection's own session (cloned first, so slot state stays
   per-client); everything else takes the ordinary interpreter path.
   All coordinates — plan key prefix, compile context, generation,
   output capture — come from the connection's bound target. *)
let eval_lines t c expr =
  let dbgi, session, prefix, gen = conn_plan t c in
  let lines =
    match plan_lookup_in t ~prefix ~session ~gen dbgi expr with
    | Some prog -> Session.exec_program c.session (Bytecode.clone prog)
    | None -> Session.exec c.session expr
  in
  let lines =
    match conn_locked t c (fun () -> Inferior.take_output (conn_inf t c)) with
    | "" -> lines
    | out -> lines @ printed_lines out
  in
  (match c.bound with
  | Some sl ->
      Fleet.note_eval sl.sl_target ~values:(List.length lines)
        ~error:(List.exists line_is_error lines)
  | None -> ());
  lines

let chunked chunk lines =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | l :: rest ->
        if n >= chunk then go (List.rev cur :: acc) [ l ] 1 rest
        else go acc (l :: cur) (n + 1) rest
  in
  go [] [] 0 lines

(* Counter-wise sum into a fresh stats record — the counters-merge half
   of qDuelStats aggregation (the histogram half is {!Histogram.merge}).
   [peak_active] sums: per-shard peaks are not simultaneous, so the sum
   is an upper bound on the whole-server peak, which is the honest
   direction for a capacity counter.  Neither input is mutated; merging
   a foreign shard's live record reads each field once (immediate
   values never tear across domains, they can only be a step stale). *)
let merge_stats a b =
  {
    accepted = a.accepted + b.accepted;
    peak_active = a.peak_active + b.peak_active;
    closed = a.closed + b.closed;
    bytes_in = a.bytes_in + b.bytes_in;
    bytes_out = a.bytes_out + b.bytes_out;
    packets = a.packets + b.packets;
    evals = a.evals + b.evals;
    eval_values = a.eval_values + b.eval_values;
    faults = a.faults + b.faults;
    naks = a.naks + b.naks;
    timeouts = a.timeouts + b.timeouts;
    limited = a.limited + b.limited;
    chaos = a.chaos + b.chaos;
    eval_dups = a.eval_dups + b.eval_dups;
    plan_hits = a.plan_hits + b.plan_hits;
    plan_misses = a.plan_misses + b.plan_misses;
    plan_compiles = a.plan_compiles + b.plan_compiles;
    plan_inval = a.plan_inval + b.plan_inval;
    plan_evict = a.plan_evict + b.plan_evict;
    hist = Histogram.merge a.hist b.hist;
  }

let view t = { v_st = t.st; v_active = List.length t.conns }

let merge_views a b =
  { v_st = merge_stats a.v_st b.v_st; v_active = a.v_active + b.v_active }

(* What a stats request reports: this shard alone when standalone, the
   merged whole when sharded — any shard answers for the server. *)
let merged_view t =
  match t.siblings with
  | [] -> view t
  | s :: ss -> List.fold_left (fun acc s' -> merge_views acc (view s')) (view s) ss

(* Per-target counters on the stats wire: [tgt.<id>.<counter>=<n>;…].
   The atomics live in the shared fleet, already whole-server numbers —
   read once here, never summed across shards (unlike the per-shard
   records {!merged_view} folds). *)
let tgt_wire t =
  match t.fleet with
  | None -> ""
  | Some f ->
      String.concat ""
        (List.map
           (fun tg ->
             let s = tg.Fleet.tstats in
             Printf.sprintf
               "tgt.%s.binds=%d;tgt.%s.evals=%d;tgt.%s.values=%d;tgt.%s.errors=%d;"
               tg.Fleet.id
               (Atomic.get s.Fleet.binds)
               tg.Fleet.id
               (Atomic.get s.Fleet.evals)
               tg.Fleet.id
               (Atomic.get s.Fleet.values)
               tg.Fleet.id
               (Atomic.get s.Fleet.errors))
           (Fleet.targets f))

let stats_wire t =
  let { v_st = st; v_active } = merged_view t in
  Printf.sprintf
    "accepted=%d;active=%d;peak=%d;closed=%d;packets=%d;evals=%d;eval_values=%d;faults=%d;naks=%d;timeouts=%d;limited=%d;chaos=%d;eval_dups=%d;plan_hits=%d;plan_misses=%d;plan_compiles=%d;plan_inval=%d;plan_evict=%d;bytes_in=%d;bytes_out=%d;%s%s"
    st.accepted v_active st.peak_active st.closed st.packets st.evals
    st.eval_values st.faults st.naks st.timeouts st.limited st.chaos
    st.eval_dups st.plan_hits st.plan_misses st.plan_compiles st.plan_inval
    st.plan_evict st.bytes_in st.bytes_out (tgt_wire t)
    (Histogram.to_wire st.hist)

let stats_to_lines t =
  let { v_st = st; v_active } = merged_view t in
  [
    Printf.sprintf "connections: %d active (peak %d), %d accepted, %d closed"
      v_active st.peak_active st.accepted st.closed;
    Printf.sprintf
      "traffic: %d packets (%d faults, %d naks), %d bytes in, %d bytes out"
      st.packets st.faults st.naks st.bytes_in st.bytes_out;
    Printf.sprintf "evals: %d queries, %d values streamed" st.evals
      st.eval_values;
    Printf.sprintf "lifecycle: %d idle timeouts, %d limit rejections"
      st.timeouts st.limited;
    Printf.sprintf "chaos: %d injected server faults, %d eval replays deduped"
      st.chaos st.eval_dups;
    Printf.sprintf
      "plan cache: %d resident, %d hits, %d misses (%d compiles), %d \
       invalidated, %d evicted"
      (Plan_cache.resident t.plans)
      st.plan_hits st.plan_misses st.plan_compiles st.plan_inval st.plan_evict;
  ]
  @ (match t.fleet with
    | None -> []
    | Some f ->
        List.map
          (fun tg ->
            let s = tg.Fleet.tstats in
            Printf.sprintf
              "target %s (%s): %d binds, %d evals, %d values, %d errors"
              tg.Fleet.id tg.Fleet.spec (Atomic.get s.Fleet.binds)
              (Atomic.get s.Fleet.evals)
              (Atomic.get s.Fleet.values)
              (Atomic.get s.Fleet.errors))
          (Fleet.targets f))
  @ Histogram.to_lines st.hist

(* Raise the shared stop flag: every shard holding this [stop] (itself
   included) begins a graceful drain on its next step.  The wake keeps
   a quiescent peer from sleeping out its select timeout first. *)
let shutdown t =
  t.accepting <- false;
  Atomic.set t.stop true;
  wake t;
  List.iter wake t.siblings

let fault t point =
  match t.cfg.fault_hook with
  | None -> false
  | Some hook ->
      let hit = hook point in
      if hit then t.st.chaos <- t.st.chaos + 1;
      hit

(* qDuelEvalSeq:<seq>[,<budget-ms>];<expr> — the resend-safe eval form.

   Evaluation is not idempotent (a query may store through the target or
   call a target function), so a client whose reply was lost cannot
   blindly resend a plain [qDuelEval:].  The sequence number makes the
   resend safe: the server keeps the last served (seq, reply) per
   connection and replays the stored reply, without re-executing, when
   the same seq arrives again.  Replies are tagged with the seq — data
   chunks [D<seq>,<idx>;...], terminal [T<seq>,<count>], typed failure
   [F<seq>;<msg>] — so the client can discard stale frames from an
   abandoned earlier exchange and de-duplicate chunks.  The optional
   budget is the client's remaining deadline in milliseconds; a request
   arriving with no budget left fails typed ([F<seq>;deadline]) instead
   of burning target time on an answer nobody is waiting for. *)
let eval_seq t c spec =
  match String.index_opt spec ';' with
  | None -> frame "E00"
  | Some semi -> (
      let head = String.sub spec 0 semi in
      let expr = String.sub spec (semi + 1) (String.length spec - semi - 1) in
      let seq_s, budget =
        match String.index_opt head ',' with
        | None -> (head, None)
        | Some comma ->
            ( String.sub head 0 comma,
              Some
                (String.sub head (comma + 1) (String.length head - comma - 1))
            )
      in
      match int_of_string_opt ("0x" ^ seq_s) with
      | None -> frame "E00"
      | Some seq when seq < 0 -> frame "E00"
      | Some seq ->
          if seq = c.last_eval_seq then begin
            t.st.eval_dups <- t.st.eval_dups + 1;
            c.last_eval_reply
          end
          else
            let budget_ms =
              match budget with
              | None -> None
              | Some b -> (
                  match int_of_string_opt ("0x" ^ b) with
                  | None -> Some (-1) (* unparsable budget: treat as spent *)
                  | some -> some)
            in
            let reply =
              match budget_ms with
              | Some ms when ms <= 0 -> frame (Printf.sprintf "F%x;deadline" seq)
              | _ ->
                  t.st.evals <- t.st.evals + 1;
                  let lines = eval_lines t c expr in
                  t.st.eval_values <- t.st.eval_values + List.length lines;
                  let chunks = chunked t.cfg.eval_chunk lines in
                  String.concat ""
                    (List.mapi
                       (fun i ls ->
                         frame
                           (Printf.sprintf "D%x,%x;%s" seq i
                              (String.concat "\n" ls)))
                       chunks)
                  ^ frame (Printf.sprintf "T%x,%x" seq (List.length lines))
            in
            c.last_eval_seq <- seq;
            c.last_eval_reply <- reply;
            reply)

(* qDuelUse:<id> — rebind the connection to another fleet target.  A
   fresh session (aliases and scopes are per-target state; carrying
   them across targets would alias one target's interned addresses into
   another) and a reset eval-seq window (stored replies belong to the
   old target).  Unknown id — or no fleet at all — is the typed E03. *)
let use_target t c id =
  match t.fleet with
  | None -> frame "E03"
  | Some f -> (
      match Fleet.find f id with
      | None -> frame "E03"
      | Some tg -> (
          match
            Array.to_seq t.slots
            |> Seq.find (fun sl -> sl.sl_target.Fleet.id = id)
          with
          | None -> frame "E03"
          | Some sl ->
              let session = Session.create sl.sl_dbgi in
              session.Session.max_values <- t.cfg.max_eval_values;
              c.session <- session;
              c.bound <- Some sl;
              c.last_eval_seq <- -1;
              c.last_eval_reply <- "";
              Fleet.note_bind tg;
              frame "OK"))

(* One target's leg of a fan-out: evaluate in an ephemeral session (the
   fan-out must not disturb the connection's bound session, and aliases
   defined inside the expression are scoped to the leg), stream as
   tagged chunks [R<id>,<idx>;…] closed by [Z<id>,<count>].  Errors are
   isolated per leg twice over: [Session.exec] maps evaluation and
   transport failures to output lines (a dead target reports its
   transient fault inside its own R/Z stream), and anything that still
   escapes becomes that leg's [X<id>;msg] — never the fan-out's. *)
let eval_slot t sl expr =
  let id = sl.sl_target.Fleet.id in
  match
    let session = Session.create sl.sl_dbgi in
    session.Session.max_values <- t.cfg.max_eval_values;
    let lines =
      match
        plan_lookup_in t ~prefix:(id ^ "\x00") ~session:sl.sl_plan_session
          ~gen:(fun () -> Fleet.generation sl.sl_target)
          sl.sl_dbgi expr
      with
      | Some prog -> Session.exec_program session (Bytecode.clone prog)
      | None -> Session.exec session expr
    in
    match
      Mutex.protect sl.sl_target.Fleet.lock (fun () ->
          Inferior.take_output sl.sl_target.Fleet.inf)
    with
    | "" -> lines
    | out -> lines @ printed_lines out
  with
  | lines ->
      t.st.eval_values <- t.st.eval_values + List.length lines;
      Fleet.note_eval sl.sl_target ~values:(List.length lines)
        ~error:(List.exists line_is_error lines);
      let chunks = chunked t.cfg.eval_chunk lines in
      String.concat ""
        (List.mapi
           (fun i ls ->
             frame (Printf.sprintf "R%s,%x;%s" id i (String.concat "\n" ls)))
           chunks)
      ^ frame (Printf.sprintf "Z%s,%x" id (List.length lines))
  | exception e ->
      Fleet.note_eval sl.sl_target ~values:0 ~error:true;
      frame (Printf.sprintf "X%s;%s" id (Printexc.to_string e))

(* qDuelEvalAll:<ids|*>;<expr> — evaluate one expression across fleet
   targets.  Legs run in request order on this shard; concurrency comes
   from other shards running *their* fan-outs against other targets at
   the same time (the locks are per-target).  Unknown ids get an [X]
   leg; the terminal [T<count>] counts every leg, so the client can
   verify nothing was silently dropped.  Not resend-safe (use the
   per-target qDuelEvalSeq for that). *)
let eval_all t spec =
  match String.index_opt spec ';' with
  | None -> frame "E00"
  | Some semi -> (
      let ids_s = String.sub spec 0 semi in
      let expr = String.sub spec (semi + 1) (String.length spec - semi - 1) in
      match t.fleet with
      | None -> frame "E03"
      | Some _ ->
          let legs =
            if String.trim ids_s = "*" then
              Array.to_list t.slots |> List.map (fun sl -> Ok sl)
            else
              String.split_on_char ',' ids_s
              |> List.map String.trim
              |> List.filter (fun id -> id <> "")
              |> List.map (fun id ->
                     match
                       Array.to_seq t.slots
                       |> Seq.find (fun sl -> sl.sl_target.Fleet.id = id)
                     with
                     | Some sl -> Ok sl
                     | None -> Error id)
          in
          if legs = [] then frame "E00"
          else begin
            t.st.evals <- t.st.evals + 1;
            String.concat ""
              (List.map
                 (function
                   | Ok sl -> eval_slot t sl expr
                   | Error id ->
                       frame (Printf.sprintf "X%s;unknown target" id))
                 legs)
            ^ frame (Printf.sprintf "T%x" (List.length legs))
          end)

(* Process one complete, valid request frame.  Returns the reply text
   (one or more frames, already encoded and concatenated). *)
let dispatch t c payload =
  if payload = "qDuelStats" then frame (stats_wire t)
  else if payload = "qDuelShutdown" then begin
    shutdown t;
    frame "OK"
  end
  else if payload = "qDuelTargets" then
    frame (match t.fleet with None -> "" | Some f -> Fleet.describe f)
  else if has_prefix "qDuelUse:" payload then
    use_target t c (after "qDuelUse:" payload)
  else if has_prefix "qDuelEvalAll:" payload then
    eval_all t (after "qDuelEvalAll:" payload)
  else if has_prefix "qDuelEvalSeq:" payload then
    eval_seq t c (after "qDuelEvalSeq:" payload)
  else if has_prefix "qDuelEval:" payload then begin
    t.st.evals <- t.st.evals + 1;
    let lines = eval_lines t c (after "qDuelEval:" payload) in
    t.st.eval_values <- t.st.eval_values + List.length lines;
    let chunks = chunked t.cfg.eval_chunk lines in
    String.concat ""
      (List.map (fun ls -> frame ("D" ^ String.concat "\n" ls)) chunks)
    ^ frame (Printf.sprintf "T%x" (List.length lines))
  end
  else
    (* plain RSP traffic: memory, allocation, calls, frames, handshake —
       aimed at the connection's target (its bound fleet slot, or the
       server's single shared target), under that target's lock *)
    match
      conn_locked t c (fun () ->
          Rsp_server.handle_payload (conn_rsp t c) payload)
    with
    | reply -> frame reply
    | exception Packet.Malformed _ -> frame "E00"

let handle_event t c = function
  | Packet.Deframer.Ack -> ()
  | Packet.Deframer.Nak ->
      (* the client rejected our reply: retransmit it *)
      t.st.naks <- t.st.naks + 1;
      enqueue c c.last_reply
  | Packet.Deframer.Bad _ ->
      (* damaged frame: NAK it; the deframer has already resynced *)
      t.st.faults <- t.st.faults + 1;
      enqueue c "-"
  | Packet.Deframer.Frame payload ->
      c.requests <- c.requests + 1;
      let over_requests =
        t.cfg.max_requests > 0 && c.requests > t.cfg.max_requests
      in
      let over_input = t.cfg.max_input > 0 && c.rx_bytes > t.cfg.max_input in
      if over_requests || over_input then begin
        (* budget exhausted: final error reply, then drain and close *)
        t.st.limited <- t.st.limited + 1;
        enqueue c "+";
        enqueue c (frame "E02");
        c.closing <- true
      end
      else begin
        t.st.packets <- t.st.packets + 1;
        enqueue c "+";
        let t0 = Unix.gettimeofday () in
        let reply = dispatch t c payload in
        Histogram.add t.st.hist (Unix.gettimeofday () -. t0);
        c.last_reply <- reply;
        (* chaos fault points on the reply path.  [last_reply] is set
           first in both cases, so the normal recovery machinery (NAK
           retransmit for a truncated reply, timed-out resend + seq
           replay for a dropped one) is what gets exercised. *)
        if fault t Reply_drop then ()
        else if fault t Reply_truncate then
          enqueue c (String.sub reply 0 (String.length reply / 2))
        else enqueue c reply
      end

let read_some t c =
  match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 ->
      (* EOF: no more requests will come; drain what we owe, then close *)
      c.closing <- true;
      if c.out_bytes = 0 then drop t c
  | n ->
      c.last_active <- Unix.gettimeofday ();
      c.rx_bytes <- c.rx_bytes + n;
      t.st.bytes_in <- t.st.bytes_in + n;
      List.iter (handle_event t c) (Packet.Deframer.feed c.dfr t.scratch 0 n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> drop t c

let accept_some t lfd =
  let rec go () =
    match Unix.accept lfd with
    | fd, _ ->
        if List.length t.conns >= t.cfg.max_conns then begin
          t.st.limited <- t.st.limited + 1;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else if fault t Accept then begin
          (* the connection dies before its first byte is served — the
             client sees a clean EOF and must treat it as retriable *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          go ()
        end
        else begin
          ignore (new_conn t fd);
          go ()
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

(* --- the loop ------------------------------------------------------------ *)

let close_listeners t =
  List.iter
    (fun (fd, path) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match path with
      | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | None -> ())
    t.listeners;
  t.listeners <- [];
  (* nothing further will be handed off; close stragglers and the pipe
     (under the inbox lock, so a sibling's late [wake]/[hand_off] sees
     [None] instead of a recycled fd number) *)
  Mutex.protect t.inbox_lock (fun () ->
      Queue.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.inbox;
      Queue.clear t.inbox;
      (match t.wake with
      | Some (rd, wr) ->
          (try Unix.close rd with Unix.Unix_error _ -> ());
          (try Unix.close wr with Unix.Unix_error _ -> ())
      | None -> ());
      t.wake <- None)

(* One event-loop iteration: select with [timeout], then accept / read /
   write / reap.  Returns [false] once a shutdown has fully drained —
   the [run] loop's exit condition. *)
let step t timeout =
  (* the stop flag may have been raised by any sibling shard (or a
     signal handler); it is the one cross-domain control signal *)
  if Atomic.get t.stop then t.shutting <- true;
  if t.shutting then begin
    t.accepting <- false;
    (* graceful: no new requests, but every queued reply still drains *)
    List.iter (fun c -> c.closing <- true) t.conns
  end;
  (* adopt sockets handed over by other domains since the last step *)
  drain_inbox t;
  let can_accept =
    t.accepting && List.length t.conns < t.cfg.max_conns
  in
  let rd_listen = if can_accept then List.map fst t.listeners else [] in
  let rd_wake = match t.wake with Some (rd, _) -> [ rd ] | None -> [] in
  (* chaos stall decisions, one per connection per step, shared by the
     select sets and the opportunistic flush below *)
  let stalled_read = List.filter (fun _ -> fault t Stall_read) t.conns in
  let stalled_write = List.filter (fun _ -> fault t Stall_write) t.conns in
  let rd_conns =
    List.filter
      (fun c ->
        (not c.closing)
        && c.out_bytes <= t.cfg.max_output
        && not (List.memq c stalled_read))
      t.conns
  in
  let wr_conns =
    List.filter
      (fun c -> c.out_bytes > 0 && not (List.memq c stalled_write))
      t.conns
  in
  let rds = rd_wake @ rd_listen @ List.map (fun c -> c.fd) rd_conns in
  let wrs = List.map (fun c -> c.fd) wr_conns in
  (match Unix.select rds wrs [] timeout with
  | rready, wready, _ ->
      (* a wake byte means "look again now": drain it (edge, not level)
         and pick up whatever was handed off while we slept *)
      (match t.wake with
      | Some (rd, _) when List.mem rd rready ->
          let junk = Bytes.create 64 in
          let rec drain () =
            match Unix.read rd junk 0 64 with
            | 64 -> drain ()
            | _ -> ()
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
              ->
                ()
          in
          drain ();
          drain_inbox t
      | _ -> ());
      List.iter
        (fun lfd -> if List.mem lfd rready then accept_some t lfd)
        rd_listen;
      List.iter
        (fun c -> if List.mem c.fd rready then read_some t c)
        rd_conns;
      List.iter
        (fun c -> if List.mem c.fd wready then write_some t c)
        wr_conns
  | exception Unix.Unix_error (EINTR, _, _) -> ());
  (* opportunistic flush: replies produced by this step's reads *)
  List.iter
    (fun c ->
      if c.out_bytes > 0 && not (List.memq c stalled_write) then
        write_some t c)
    t.conns;
  (* drained closing connections can go *)
  List.iter
    (fun c -> if c.closing && c.out_bytes = 0 then drop t c)
    t.conns;
  (* the reaper: anything silent past the idle timeout *)
  if t.cfg.idle_timeout > 0.0 then begin
    let now = Unix.gettimeofday () in
    List.iter
      (fun c ->
        if now -. c.last_active > t.cfg.idle_timeout then begin
          t.st.timeouts <- t.st.timeouts + 1;
          drop t c
        end)
      t.conns
  end;
  if t.shutting && t.conns = [] then begin
    close_listeners t;
    false
  end
  else true

let run t = while step t 0.2 do () done
