(** The concurrent network debug server.

    One simulated target, many clients, one thread: a single
    [Unix.select] event loop owns the listening sockets (TCP and
    Unix-domain) and every accepted connection.  Each connection runs an
    independent RSP exchange over an incremental deframer
    ({!Duel_rsp.Packet.Deframer}) against the shared {!Duel_rsp.Server}
    stub, plus the serve-level extensions:

    {ul
    {- [qDuelEval:<expr>] — run a whole DUEL command server-side in the
       connection's own {!Duel_core.Session} (aliases are per-client,
       the target is shared) and stream the formatted results back as
       chunked [D<line>\n<line>...] frames ended by [T<hex count>].  A
       thin client pays one round-trip per {e query} instead of one per
       scalar.}
    {- [qDuelEvalSeq:<seq>[,<budget-ms>];<expr>] — the resend-safe eval
       form.  Evaluation may have side effects, so a client that lost a
       reply cannot blindly resend a plain [qDuelEval:]; here the server
       keeps the last served (seq, reply) per connection and {e replays}
       the stored reply, without re-executing, when the same hex [seq]
       arrives again (counted in the [eval_dups] stat).  Replies are
       tagged: data chunks [D<seq>,<idx>;...], terminal
       [T<seq>,<count>], typed failure [F<seq>;<msg>].  A request whose
       optional [budget-ms] (the client's remaining deadline) is already
       spent answers [F<seq>;deadline] instead of evaluating.

       {b The at-most-once guarantee is per-connection, not
       per-server.}  The replay table lives on the connection object:
       resends {e on the same connection} are deduplicated no matter
       which shard of a sharded server owns it, and two connections
       using the same sequence numbers (unavoidable, since every client
       counts from 1) can never replay each other's replies — not even
       when a reconnecting client lands on a different shard, because
       the fresh connection starts with an empty table.  The flip side:
       a request whose connection died is {e not} protected — resending
       it over a new connection may execute it a second time.  The
       {!Client} therefore never resends an in-flight eval across a
       reconnect; it surfaces the transport failure and leaves the
       retry decision (idempotent or not) to the caller.}
    {- [qDuelStats] — the observability counters as [key=value;...]
       (see {!stats_wire}).}
    {- [qDuelShutdown] — reply [OK] and begin a graceful shutdown.}}

    {2 Fleet hosting}

    A server created with [?fleet] hosts N named targets
    ({!Duel_fleet.Fleet}) instead of one.  Every fresh connection is
    bound to the first fleet slot; three more protocol verbs appear:

    {ul
    {- [qDuelTargets] — the fleet roster as [id=spec,...] (empty reply
       on a fleet-less server).}
    {- [qDuelUse:<id>] — rebind the connection: subsequent evals and
       RSP traffic aim at target [id], with a fresh session (aliases
       are per-target state) and a reset eval-seq replay window.
       Unknown id answers the typed [E03].}
    {- [qDuelEvalAll:<ids|*>;<expr>] — evaluate one expression across
       the named targets (comma-separated ids, or [*] for all), reusing
       each target's cached plan.  The reply interleaves per-target
       tagged sequences: chunks [R<id>,<hex idx>;<lines>] closed by
       [Z<id>,<hex count>] per target, [X<id>;<msg>] for a leg that
       failed outright (unknown id, escaped exception), and a terminal
       [T<hex legs>] counting every leg so nothing is silently dropped.
       Failures are isolated per leg: a dead or faulting target reports
       inside its own stream and never disturbs a sibling's.  Not
       resend-safe — use [qDuelEvalSeq] per target for that.}}

    Per-target isolation holds throughout: each target has its own
    write-generation (data and plan caches for one target survive
    stores into another), its own plan-cache namespace (twins never
    share a compiled plan — compiling interns literals into that
    target's memory), and its own [tgt.<id>.*] counters in
    [qDuelStats].

    {2 Robustness}

    Writes never block: replies go into a per-connection output queue
    drained as the socket accepts them, and a connection whose queue
    exceeds [max_output] stops being {e read} until it drains —
    backpressure instead of unbounded buffering.  Damaged frames are
    NAKed and the deframer resyncs on the next [$]; a client NAK
    retransmits the last reply.  A reaper closes connections idle past
    [idle_timeout]; per-connection request/byte budgets reply [E02] and
    close; target-side resource limits are enforced by the RSP stub
    ({!Duel_rsp.Server.limits}).  {!shutdown} stops accepting, drains
    every queued reply, then closes. *)

(** Server-side chaos fault points (see [config.fault_hook]). *)
type fault_point =
  | Accept  (** close an accepted connection before serving it *)
  | Reply_drop  (** swallow an outgoing reply (client must time out) *)
  | Reply_truncate  (** send only a reply prefix (client must NAK) *)
  | Stall_read  (** skip reading a ready connection for one step *)
  | Stall_write  (** skip writing a writable connection for one step *)

type config = {
  max_conns : int;  (** accepted connections beyond this are refused *)
  idle_timeout : float;  (** seconds of silence before the reaper; <= 0 disables *)
  max_output : int;
      (** per-connection queued-output bytes before reads pause *)
  max_requests : int;  (** per-connection request budget; 0 = unlimited *)
  max_input : int;  (** per-connection received-byte budget; 0 = unlimited *)
  max_eval_values : int;
      (** cap on values a [qDuelEval] streams back (then ["..."]) *)
  eval_chunk : int;  (** result lines per [D] frame *)
  plan_cache : int;
      (** capacity of the shared query-plan cache: compiled
          {!Duel_core.Bytecode} programs keyed by the command's token
          stream (so spellings differing only in whitespace share a
          plan), shared across every connection and run on the VM via
          {!Duel_core.Session.exec_program} on a per-use
          {!Duel_core.Bytecode.clone}.  Entries are invalidated when the
          target's write-generation moves (stores, RSP writes, called
          functions) and evicted LRU beyond this capacity; [0] disables
          the cache entirely (every eval takes the interpreter path). *)
  limits : Duel_rsp.Server.limits;  (** target resource limits *)
  fault_hook : (fault_point -> bool) option;
      (** chaos injection: consulted at each fault point, answers
          "inject here?".  Use a deterministic (seeded) hook so a
          failing schedule replays; every injection increments the
          [chaos] stat.  [None] (the default) costs nothing. *)
}

val default_config : config

type stats = {
  mutable accepted : int;
  mutable peak_active : int;
  mutable closed : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable packets : int;  (** valid request frames dispatched *)
  mutable evals : int;  (** [qDuelEval] queries *)
  mutable eval_values : int;  (** result lines streamed *)
  mutable faults : int;  (** damaged frames NAKed *)
  mutable naks : int;  (** client NAKs (retransmissions) *)
  mutable timeouts : int;  (** idle connections reaped *)
  mutable limited : int;  (** budget/capacity rejections *)
  mutable chaos : int;  (** injected server-side faults *)
  mutable eval_dups : int;  (** [qDuelEvalSeq] resends answered by replay *)
  mutable plan_hits : int;  (** evals served from a cached plan *)
  mutable plan_misses : int;  (** evals that found no valid plan *)
  mutable plan_compiles : int;  (** plans compiled and cached *)
  mutable plan_inval : int;  (** plans retired by a generation bump *)
  mutable plan_evict : int;  (** plans evicted by LRU pressure *)
  hist : Histogram.t;  (** per-request service time *)
}

type t

type view = { v_st : stats; v_active : int }
(** One shard's observable load: its counters plus its live connection
    count (which is not a counter and so cannot live in {!stats}). *)

val create :
  ?config:config ->
  ?dbgi:Duel_dbgi.Dbgi.t ->
  ?plans:Plan_cache.t ->
  ?stop:bool Atomic.t ->
  ?target_lock:Mutex.t ->
  ?fleet:Duel_fleet.Fleet.t ->
  Duel_target.Inferior.t ->
  t
(** A server (or one shard of a sharded server) over [inf].  The
    optional arguments are the sharding seams; every default reproduces
    the classic single-threaded server exactly:

    {ul
    {- [dbgi] — the interface sessions evaluate against (default: a
       cached {!Duel_target.Backend.direct} over [inf]).  A sharded
       server passes each shard its own data cache over a
       {!Duel_dbgi.Dbgi.serialized} view of the shared target.}
    {- [plans] — the query-plan cache (default: a private one of
       capacity [config.plan_cache]).  {!Plan_cache} is domain-safe, so
       one cache may be shared by every shard.}
    {- [stop] — the shutdown flag {!shutdown} raises and {!step} polls
       (default: private).  Shards share one, so [qDuelShutdown]
       arriving at any shard drains all of them.}
    {- [target_lock] — when present, RSP dispatch and target-stdout
       capture run holding it; pass the same mutex the shards'
       serialized DBGIs use.  Absent (the default), target access is
       unguarded exactly as before.}
    {- [fleet] — host these named targets instead of just [inf] (see
       {e Fleet hosting} above).  The fleet object is shared across
       shards; this shard builds its own per-target data caches, RSP
       stubs, and plan-compile contexts from it.  Pass the first
       target's inferior as [inf] (it backs the fleet-less defaults,
       which bound connections never touch).}} *)

val listen_tcp : ?reuseport:bool -> t -> host:string -> port:int -> int
(** Bind and listen; returns the actual port (useful with [port = 0]).
    [reuseport] sets [SO_REUSEPORT] before binding, so sibling shards
    can bind the same address and let the kernel balance accepts.
    @raise Unix.Unix_error on bind failure. *)

val listen_unix : t -> string -> unit
(** Listen on a Unix-domain socket path (unlinked first if stale, and
    again on shutdown). *)

val inject : t -> Unix.file_descr -> unit
(** Adopt an already-connected socket as a client connection — tests
    drive the loop over [Unix.socketpair] ends, no listener needed.
    Must be called from the domain that steps this server; from any
    other domain use {!hand_off}. *)

val hand_off : t -> Unix.file_descr -> unit
(** Hand an already-connected socket to this server from {e another}
    domain: the fd is queued under a lock and adopted at the top of the
    server's next {!step} (a wake pipe interrupts its [select], so the
    hand-off does not wait out the select timeout).  Ownership of the
    fd transfers unconditionally — if the server has already shut down,
    the fd is closed.  This is the dispatcher half of sharded
    listening: one shard accepts, siblings serve. *)

val set_siblings : t -> t list -> unit
(** Tell this shard about every shard of its server (self included).
    [qDuelStats]/{!stats_wire}/{!stats_to_lines} then report the merged
    whole-server numbers, and {!shutdown} wakes every sibling so a
    drain starts immediately.  Standalone servers (the default empty
    list) report themselves only. *)

val view : t -> view
val merge_stats : stats -> stats -> stats
(** Counter-wise sum into a fresh record (inputs unchanged), histograms
    merged via {!Histogram.merge}.  [peak_active] sums — per-shard
    peaks need not be simultaneous, so the result is an upper bound. *)

val merge_views : view -> view -> view
val merged_view : t -> view
(** This shard's view merged with every sibling's (see
    {!set_siblings}); equals [view t] when standalone. *)

val step : t -> float -> bool
(** One event-loop iteration: select (waiting at most the given
    seconds), accept, read, dispatch, write, reap.  Returns [false]
    once a {!shutdown} has fully drained; a driver loop is
    [while step t 0.2 do () done]. *)

val run : t -> unit
(** [step] until shut down. *)

val shutdown : t -> unit
(** Graceful shutdown: stop accepting, drain every queued reply, close
    all connections and listeners.  Takes effect over the following
    [step]s; idempotent. *)

val stats : t -> stats
val active : t -> int

val stats_wire : t -> string
(** The [qDuelStats] reply: [key=value] pairs joined by [;], including
    the histogram's [count]/[p50us]/[p90us]/[p99us]. *)

val stats_to_lines : t -> string list
(** Human-readable counters (the REPL's [info server]). *)
