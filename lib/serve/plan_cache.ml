(* The shared query-plan cache, factored out of the server so that N
   domain shards can share one table.

   Every public operation holds the internal mutex for its whole
   critical section, so concurrent lookups, stores and evictions from
   different domains never tear the table or the LRU bookkeeping.  The
   stored {!Duel_core.Bytecode.program} values are compile-time
   constants from the cache's point of view: a user clones them
   ({!Duel_core.Bytecode.clone}) before execution, and clones only read
   the master copy, so handing the same program to two domains at once
   is safe.

   Compilation deliberately happens {e outside} the lock (it can take
   target round-trips to intern string literals); two shards racing to
   compile the same key both succeed and the second [store] simply
   replaces the first — wasted work, never wrong results. *)

module Bytecode = Duel_core.Bytecode

type entry = {
  e_prog : Bytecode.program;
  e_gen : int;  (* target write-generation the program was compiled under *)
  mutable e_tick : int;  (* LRU clock stamp *)
}

type t = {
  capacity : int;
  lock : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
}

type outcome = Hit of Bytecode.program | Stale | Absent

let create capacity =
  {
    capacity;
    lock = Mutex.create ();
    tbl = Hashtbl.create (max 1 capacity);
    tick = 0;
  }

let enabled t = t.capacity > 0

let resident t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

(* Look up [key] compiled under the current generation [gen].  A stale
   entry (compiled under an older generation) is removed under the same
   lock acquisition that found it, so no other domain can hit it in
   between. *)
let find t ~key ~gen =
  if not (enabled t) then Absent
  else
    Mutex.protect t.lock (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.tbl key with
        | Some e when e.e_gen = gen ->
            e.e_tick <- t.tick;
            Hit e.e_prog
        | Some _ ->
            Hashtbl.remove t.tbl key;
            Stale
        | None -> Absent)

(* Insert (or replace) under the lock, then evict the least recently
   used entry if the table overflowed.  Returns the number of entries
   evicted (0 or 1). *)
let store t ~key ~gen prog =
  if not (enabled t) then 0
  else
    Mutex.protect t.lock (fun () ->
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl key { e_prog = prog; e_gen = gen; e_tick = t.tick };
        if Hashtbl.length t.tbl > t.capacity then begin
          let victim =
            Hashtbl.fold
              (fun k e acc ->
                match acc with
                | Some (_, lru) when lru.e_tick <= e.e_tick -> acc
                | _ -> Some (k, e))
              t.tbl None
          in
          match victim with
          | Some (k, _) ->
              Hashtbl.remove t.tbl k;
              1
          | None -> 0
        end
        else 0)
