(* The network side of a thin DUEL client: a non-blocking socket, an
   incremental deframer for replies, and the retransmit half of the
   ACK/NAK discipline.  On top of the raw exchange it offers the two
   serve-level calls (qDuelEval, qDuelStats) and a [Dbgi.t] built from
   [Duel_rsp.Client.connect] — the gdb model: symbols and types come
   from local debug information, live process state from the wire. *)

module Packet = Duel_rsp.Packet
module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache

type t = {
  fd : Unix.file_descr;
  dfr : Packet.Deframer.t;
  mutable events : Packet.Deframer.event list;  (* parsed, unconsumed *)
  pump : (unit -> unit) option;
      (* cooperative driver: called instead of blocking in select when
         the server runs in this very process (tests, benchmarks) *)
  timeout : float;
  scratch : bytes;
  mutable caches : Dbgi.t list;  (* data caches to stale-mark on evals *)
  mutable last_frame_count : int;
}

let of_fd ?pump ?(timeout = 30.0) fd =
  (* the server may close first (shutdown, budgets, reaper); a write
     to the dead socket must raise EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Unix.set_nonblock fd;
  (* request frames are small; they must leave immediately, not wait in
     Nagle's buffer for the previous packet's delayed ACK *)
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    fd;
    dfr = Packet.Deframer.create ();
    events = [];
    pump;
    timeout;
    scratch = Bytes.create 8192;
    caches = [];
    last_frame_count = -1;
  }

let parse_addr addr =
  if String.length addr > 5 && String.sub addr 0 5 = "unix:" then
    Unix.ADDR_UNIX (String.sub addr 5 (String.length addr - 5))
  else
    let host, port =
      match String.rindex_opt addr ':' with
      | Some i ->
          ( String.sub addr 0 i,
            String.sub addr (i + 1) (String.length addr - i - 1) )
      | None -> ("127.0.0.1", addr)
    in
    let host = if host = "" || host = "localhost" then "127.0.0.1" else host in
    let port =
      match int_of_string_opt port with
      | Some p -> p
      | None -> failwith ("serve: bad port in address " ^ addr)
    in
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith ("serve: unknown host " ^ host))
    in
    Unix.ADDR_INET (ip, port)

let connect ?pump ?timeout addr =
  let sockaddr = parse_addr addr in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd ?pump ?timeout fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- byte plumbing ------------------------------------------------------- *)

let wait_io t ~write deadline =
  match t.pump with
  | Some pump -> pump ()
  | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then failwith "serve: timed out waiting for the server";
      let rds = if write then [] else [ t.fd ] in
      let wrs = if write then [ t.fd ] else [] in
      ignore (Unix.select rds wrs [] (Float.min left 0.2))

let send_all t s =
  let deadline = Unix.gettimeofday () +. t.timeout in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring t.fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          wait_io t ~write:true deadline;
          go off
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
          failwith "serve: connection closed by server"
  in
  go 0

(* The next deframed event, reading (or pumping the in-process server)
   as needed. *)
let next_event t =
  let deadline = Unix.gettimeofday () +. t.timeout in
  let rec go () =
    match t.events with
    | e :: rest ->
        t.events <- rest;
        e
    | [] -> (
        match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
        | 0 -> failwith "serve: connection closed by server"
        | n ->
            t.events <- Packet.Deframer.feed t.dfr t.scratch 0 n;
            go ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            wait_io t ~write:false deadline;
            go ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
            failwith "serve: connection reset by server")
  in
  go ()

(* --- the exchange -------------------------------------------------------- *)

(* Await one reply frame, ACKing nothing and skipping server ACKs; a
   damaged reply is NAKed so the server retransmits. *)
let rec await_reply t =
  match next_event t with
  | Packet.Deframer.Ack -> await_reply t
  | Packet.Deframer.Nak -> `Nak
  | Packet.Deframer.Bad _ ->
      send_all t "-";
      await_reply t
  | Packet.Deframer.Frame p -> `Frame p

let exchange t framed =
  let rec attempt tries =
    send_all t framed;
    match await_reply t with
    | `Frame p -> Packet.encode p
    | `Nak ->
        if tries >= 3 then
          failwith "serve: server rejected the packet repeatedly"
        else attempt (tries + 1)
  in
  attempt 0

let rpc t payload = Packet.decode (exchange t (Packet.encode payload))

let recv_reply t =
  match await_reply t with
  | `Frame p -> p
  | `Nak -> failwith "serve: unexpected NAK from the server"

(* --- serve-level calls --------------------------------------------------- *)

let mark_caches_stale t = List.iter Dcache.mark_stale t.caches

let eval_send t expr = send_all t (Packet.encode ("qDuelEval:" ^ expr))

let eval_recv t =
  let rec go acc =
    match next_event t with
    | Packet.Deframer.Ack -> go acc
    | Packet.Deframer.Nak -> failwith "serve: server rejected the eval request"
    | Packet.Deframer.Bad _ -> failwith "serve: damaged eval reply"
    | Packet.Deframer.Frame p ->
        if p = "" then failwith "serve: empty reply to qDuelEval"
        else if p.[0] = 'D' then
          let chunk =
            String.split_on_char '\n'
              (String.sub p 1 (String.length p - 1))
          in
          go (List.rev_append chunk acc)
        else if p.[0] = 'T' then List.rev acc
        else if p.[0] = 'E' then failwith ("serve: eval failed: " ^ p)
        else failwith ("serve: unexpected eval reply frame " ^ p)
  in
  let lines = go [] in
  (* the eval ran arbitrary DUEL server-side: local caches are suspect *)
  mark_caches_stale t;
  lines

let eval t expr =
  eval_send t expr;
  eval_recv t

let server_stats t =
  let reply = rpc t "qDuelStats" in
  String.split_on_char ';' reply
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | None -> None
         | Some i ->
             let k = String.sub kv 0 i in
             let v = String.sub kv (i + 1) (String.length kv - i - 1) in
             Option.map (fun v -> (k, v)) (int_of_string_opt v))

let frame_count t =
  let reply = rpc t "qDuelFrames" in
  match int_of_string_opt ("0x" ^ reply) with
  | Some n -> n
  | None -> failwith ("serve: bad qDuelFrames reply " ^ reply)

let shutdown_server t = ignore (rpc t "qDuelShutdown")

(* --- the network debugger interface -------------------------------------- *)

let dbgi ?(cache = true) t di =
  let raw = Duel_rsp.Client.connect ~exchange:(exchange t) di in
  (* [mark_stale] needs the *wrapped* interface, which doesn't exist
     until after we build the frames hook it closes over. *)
  let wrapped = ref None in
  let frames () =
    (* a stop boundary the wire can show us: the active frame count
       changed since we last looked — whatever we cached is suspect *)
    let n = frame_count t in
    if t.last_frame_count >= 0 && n <> t.last_frame_count then (
      match !wrapped with Some d -> Dcache.mark_stale d | None -> ());
    t.last_frame_count <- n;
    di.Duel_rsp.Client.di_frames ()
  in
  let raw = { raw with Dbgi.frames } in
  if not cache then raw
  else begin
    let dbg =
      Dcache.wrap
        ~config:
          {
            Dcache.default_config with
            stale_policy = Dcache.Explicit;
          }
        raw
    in
    wrapped := Some dbg;
    t.caches <- dbg :: t.caches;
    dbg
  end
