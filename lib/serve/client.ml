(* The network side of a thin DUEL client: a non-blocking socket, an
   incremental deframer for replies, and the retransmit half of the
   ACK/NAK discipline.  On top of the raw exchange it offers the two
   serve-level calls (qDuelEval, qDuelStats) and a [Dbgi.t] built from
   [Duel_rsp.Client.connect] — the gdb model: symbols and types come
   from local debug information, live process state from the wire.

   Failure policy: every wait has a deadline, so a dead or wedged server
   produces a typed [Error], never a hang.  A reply that does not
   arrive within [reply_timeout] is retried with exponential backoff —
   but only when resending cannot double-execute: memory reads/writes
   and queries are idempotent, evaluation is resent via the
   sequence-numbered [qDuelEvalSeq] form the server deduplicates, and
   anything else (alloc, call) fails cleanly instead of resending. *)

module Packet = Duel_rsp.Packet
module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache

(* Typed failures: a dispatcher or retry layer must be able to tell "the
   replica is unreachable" (trip it, fail over) from "the server answered
   and the answer is bad" (authoritative, propagate).  Raw [Failure]
   cannot carry that distinction. *)
type failure =
  | Connect of string  (* establishing the connection failed *)
  | Closed of string  (* the peer is gone: EOF, reset, broken pipe *)
  | Timeout of string  (* a deadline expired, retries included *)
  | Protocol of string  (* persistent NAKs or frames that defy the protocol *)
  | Remote of string  (* the server executed the request and reported failure *)
  | Unknown_target of string  (* the fleet has no target with this id *)

exception Error of failure

let failure_message = function
  | Connect m | Closed m | Timeout m | Protocol m | Remote m -> m
  | Unknown_target id -> "serve: no such target: " ^ id

let is_transport = function
  | Connect _ | Closed _ | Timeout _ | Protocol _ -> true
  (* the server answered: authoritative, retrying elsewhere won't help *)
  | Remote _ | Unknown_target _ -> false

let fail f = raise (Error f)

let () =
  Printexc.register_printer (function
    | Error f -> Some ("Duel_serve.Client.Error: " ^ failure_message f)
    | _ -> None)

type retry_policy = {
  attempts : int;  (** total send attempts per request, including the first *)
  reply_timeout : float;  (** seconds to wait for a reply per attempt *)
  base_backoff : float;  (** seconds before the first resend *)
  max_backoff : float;  (** cap on the exponential growth *)
  jitter : float;  (** fraction of the delay randomised away, [0..1] *)
}

let default_retry =
  {
    attempts = 8;
    reply_timeout = 2.0;
    base_backoff = 0.02;
    max_backoff = 0.5;
    jitter = 0.5;
  }

type counters = {
  mutable resends : int;  (** requests retransmitted after a reply timeout *)
  mutable timeouts : int;  (** reply waits that expired *)
  mutable naks_sent : int;  (** damaged reply frames we NAKed *)
  mutable naks_seen : int;  (** server NAKs of our (damaged) requests *)
  mutable dup_frames : int;  (** stale or duplicate reply frames discarded *)
}

type t = {
  fd : Unix.file_descr;
  dfr : Packet.Deframer.t;
  mutable events : Packet.Deframer.event list;  (* parsed, unconsumed *)
  pump : (unit -> unit) option;
      (* cooperative driver: called instead of blocking in select when
         the server runs in this very process (tests, benchmarks) *)
  timeout : float;  (* overall per-operation deadline *)
  retry : retry_policy;
  ctr : counters;
  mutable jitter_state : int64;  (* tiny xorshift for backoff jitter *)
  scratch : bytes;
  mutable caches : Dbgi.t list;  (* data caches to stale-mark on evals *)
  mutable last_frame_count : int;
  mutable next_seq : int;  (* qDuelEvalSeq sequence numbers *)
  mutable eval_pending : (int * string * float) option;
      (* seq, expr, overall deadline of the eval in flight *)
}

let of_fd ?pump ?(timeout = 30.0) ?(retry = default_retry) fd =
  (* the server may close first (shutdown, budgets, reaper); a write
     to the dead socket must raise EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Unix.set_nonblock fd;
  (* request frames are small; they must leave immediately, not wait in
     Nagle's buffer for the previous packet's delayed ACK *)
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    fd;
    dfr = Packet.Deframer.create ();
    events = [];
    pump;
    timeout;
    retry;
    ctr =
      { resends = 0; timeouts = 0; naks_sent = 0; naks_seen = 0; dup_frames = 0 };
    jitter_state = 0x2545f4914f6cdd1dL;
    scratch = Bytes.create 8192;
    caches = [];
    last_frame_count = -1;
    next_seq = 1;
    eval_pending = None;
  }

let counters t = t.ctr

let parse_addr addr =
  if String.length addr > 5 && String.sub addr 0 5 = "unix:" then
    Unix.ADDR_UNIX (String.sub addr 5 (String.length addr - 5))
  else
    let host, port =
      match String.rindex_opt addr ':' with
      | Some i ->
          ( String.sub addr 0 i,
            String.sub addr (i + 1) (String.length addr - i - 1) )
      | None -> ("127.0.0.1", addr)
    in
    let host = if host = "" || host = "localhost" then "127.0.0.1" else host in
    let port =
      match int_of_string_opt port with
      | Some p -> p
      | None -> fail (Connect ("serve: bad port in address " ^ addr))
    in
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> fail (Connect ("serve: unknown host " ^ host)))
    in
    Unix.ADDR_INET (ip, port)

let connect ?pump ?timeout ?retry addr =
  let sockaddr = parse_addr addr in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail
       (Connect
          (Printf.sprintf "serve: connect %s: %s" addr (Unix.error_message e))));
  of_fd ?pump ?timeout ?retry fd

let close t =
  (* release buffered writes while the socket is still alive: the dcache
     registry outlives this client, and a later [Dcache.flush_all]
     barrier must not find dirty lines behind a dead connection *)
  List.iter (fun d -> try Dcache.flush d with _ -> ()) t.caches;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- backoff ------------------------------------------------------------- *)

let jitter_draw t =
  (* xorshift64*: cheap, local, no global Random state *)
  let x = t.jitter_state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.jitter_state <- x;
  Int64.to_float (Int64.shift_right_logical x 11) /. 9007199254740992.0

let backoff_delay t ~attempt =
  let p = t.retry in
  let scaled = p.base_backoff *. (2. ** float_of_int (attempt - 1)) in
  let capped = Float.min p.max_backoff scaled in
  capped *. (1. -. (p.jitter *. jitter_draw t))

let backoff_wait t ~attempt =
  match t.pump with
  | Some pump ->
      (* sleeping would stall the in-process server we are waiting on;
         give it cycles instead of wall time *)
      pump ()
  | None -> Unix.sleepf (backoff_delay t ~attempt)

(* --- byte plumbing ------------------------------------------------------- *)

(* Wait for the transport (or pump the in-process server).  [false]
   means the deadline passed — every caller turns that into a typed
   failure or a retry, never a spin. *)
let wait_io t ~write deadline =
  let left = deadline -. Unix.gettimeofday () in
  if left <= 0.0 then false
  else begin
    (match t.pump with
    | Some pump -> pump ()
    | None ->
        let rds = if write then [] else [ t.fd ] in
        let wrs = if write then [ t.fd ] else [] in
        ignore (Unix.select rds wrs [] (Float.min left 0.2)));
    true
  end

let send_all t s =
  let deadline = Unix.gettimeofday () +. t.timeout in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring t.fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          if wait_io t ~write:true deadline then go off
          else fail (Timeout "serve: timed out sending to the server")
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
          fail (Closed "serve: connection closed by server")
  in
  go 0

(* The next deframed event before [deadline], reading (or pumping the
   in-process server) as needed; [None] on deadline. *)
let next_event_opt t deadline =
  let rec go () =
    match t.events with
    | e :: rest ->
        t.events <- rest;
        Some e
    | [] -> (
        match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
        | 0 -> fail (Closed "serve: connection closed by server")
        | n ->
            t.events <- Packet.Deframer.feed t.dfr t.scratch 0 n;
            go ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            if wait_io t ~write:false deadline then go () else None
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
            fail (Closed "serve: connection reset by server"))
  in
  go ()

(* Discard whatever is already buffered or immediately readable.  Called
   at the start of each operation: with at most one request in flight
   per connection, anything still queued at that point is a stale reply
   (e.g. the late answer to a request we already resent and completed)
   and must not be mistaken for the new reply. *)
let drain_stale t =
  let rec slurp () =
    match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 -> () (* let the operation itself report EOF *)
    | n ->
        t.events <- t.events @ Packet.Deframer.feed t.dfr t.scratch 0 n;
        slurp ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ()
  in
  slurp ();
  List.iter
    (function
      | Packet.Deframer.Frame _ -> t.ctr.dup_frames <- t.ctr.dup_frames + 1
      | _ -> ())
    t.events;
  t.events <- []

(* --- the exchange -------------------------------------------------------- *)

(* Await one reply frame before [deadline], skipping server ACKs; a
   damaged reply is NAKed so the server retransmits.  [`Timeout] leaves
   the decision (resend or fail) to the caller. *)
let rec await_reply t deadline =
  match next_event_opt t deadline with
  | None -> `Timeout
  | Some Packet.Deframer.Ack -> await_reply t deadline
  | Some Packet.Deframer.Nak -> `Nak
  | Some (Packet.Deframer.Bad _) ->
      t.ctr.naks_sent <- t.ctr.naks_sent + 1;
      send_all t "-";
      await_reply t deadline
  | Some (Packet.Deframer.Frame p) -> `Frame p

(* May this framed request be retransmitted when the reply timed out?
   Only when a resend cannot execute twice: the reply may have been
   computed and lost, so the server might see the request again.
   Memory reads, repeated writes of the same bytes, and pure queries
   are idempotent; [qDuelEvalSeq] resends are deduplicated server-side
   by sequence number.  Allocation and target calls are neither, so
   they time out into a clean failure instead. *)
let resend_safe framed =
  String.length framed >= 2
  &&
  let body = String.sub framed 1 (String.length framed - 1) in
  let pre p =
    String.length body >= String.length p
    && String.sub body 0 (String.length p) = p
  in
  match framed.[1] with
  | 'm' | 'M' | '?' | 'H' -> true
  | 'q' ->
      pre "qDuelFrames" || pre "qDuelStats" || pre "qSupported"
      || pre "qDuelEvalSeq:" || pre "qDuelShutdown"
      (* rebinding to the same target twice is the same binding, and the
         roster query is pure *)
      || pre "qDuelUse:" || pre "qDuelTargets"
  | _ -> false

let exchange t framed =
  drain_stale t;
  let may_resend = resend_safe framed in
  let rec attempt n =
    send_all t framed;
    let deadline = Unix.gettimeofday () +. t.retry.reply_timeout in
    match await_reply t deadline with
    | `Frame p -> Packet.encode p
    | `Nak ->
        (* the server rejected a damaged request before executing it:
           resending is always safe *)
        t.ctr.naks_seen <- t.ctr.naks_seen + 1;
        if n >= t.retry.attempts then
          fail (Protocol "serve: server rejected the packet repeatedly")
        else attempt (n + 1)
    | `Timeout ->
        t.ctr.timeouts <- t.ctr.timeouts + 1;
        if may_resend && n < t.retry.attempts then begin
          t.ctr.resends <- t.ctr.resends + 1;
          backoff_wait t ~attempt:n;
          attempt (n + 1)
        end
        else if may_resend then
          fail (Timeout "serve: no reply from server (retries exhausted)")
        else
          fail
            (Timeout
               "serve: no reply from server (request not resendable: it may \
                have side effects)")
  in
  attempt 1

let rpc t payload = Packet.decode (exchange t (Packet.encode payload))

let recv_reply t =
  let deadline = Unix.gettimeofday () +. t.retry.reply_timeout in
  match await_reply t deadline with
  | `Frame p -> p
  | `Nak -> fail (Protocol "serve: unexpected NAK from the server")
  | `Timeout -> fail (Timeout "serve: timed out waiting for the server")

(* --- serve-level calls --------------------------------------------------- *)

let mark_caches_stale t = List.iter Dcache.mark_stale t.caches

let eval_frame seq expr deadline =
  (* deadline propagation: tell the server how much budget remains, so a
     request that arrives after the client stopped waiting fails typed
     instead of burning target time *)
  let ms =
    int_of_float (Float.max 0. (1000. *. (deadline -. Unix.gettimeofday ())))
  in
  Packet.encode (Printf.sprintf "qDuelEvalSeq:%x,%x;%s" seq ms expr)

let eval_send t expr =
  drain_stale t;
  if t.eval_pending <> None then
    invalid_arg "serve: an eval is already in flight on this connection";
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let deadline = Unix.gettimeofday () +. t.timeout in
  t.eval_pending <- Some (seq, expr, deadline);
  send_all t (eval_frame seq expr deadline)

(* Parse one seq-tagged eval reply frame: [D<seq>,<idx>;text],
   [T<seq>,<count>] or [F<seq>;msg].  Untagged [D...]/[T...] from a
   pre-seq server are accepted as chunk 0, 1, 2, ... in arrival order. *)
type eval_frame_kind =
  | Chunk of int * int * string  (* seq, idx, text *)
  | Fin of int * int  (* seq, line count *)
  | Failed of int * string
  | Legacy_chunk of string
  | Legacy_fin
  | Unrelated

let parse_eval_frame p =
  if p = "" then Unrelated
  else
    let rest = String.sub p 1 (String.length p - 1) in
    match p.[0] with
    | 'D' -> (
        match String.index_opt rest ';' with
        | Some semi -> (
            let head = String.sub rest 0 semi in
            let text =
              String.sub rest (semi + 1) (String.length rest - semi - 1)
            in
            match String.index_opt head ',' with
            | Some comma -> (
                let seq_s = String.sub head 0 comma in
                let idx_s =
                  String.sub head (comma + 1) (String.length head - comma - 1)
                in
                match
                  ( int_of_string_opt ("0x" ^ seq_s),
                    int_of_string_opt ("0x" ^ idx_s) )
                with
                | Some seq, Some idx -> Chunk (seq, idx, text)
                | _ -> Legacy_chunk rest)
            | None -> Legacy_chunk rest)
        | None -> Legacy_chunk rest)
    | 'T' -> (
        match String.index_opt rest ',' with
        | Some comma -> (
            let seq_s = String.sub rest 0 comma in
            let n_s =
              String.sub rest (comma + 1) (String.length rest - comma - 1)
            in
            match
              (int_of_string_opt ("0x" ^ seq_s), int_of_string_opt ("0x" ^ n_s))
            with
            | Some seq, Some n -> Fin (seq, n)
            | _ -> Legacy_fin)
        | None -> Legacy_fin)
    | 'F' -> (
        match String.index_opt rest ';' with
        | Some semi -> (
            let seq_s = String.sub rest 0 semi in
            let msg =
              String.sub rest (semi + 1) (String.length rest - semi - 1)
            in
            match int_of_string_opt ("0x" ^ seq_s) with
            | Some seq -> Failed (seq, msg)
            | None -> Unrelated)
        | None -> Unrelated)
    | _ -> Unrelated

let eval_recv t =
  match t.eval_pending with
  | None -> invalid_arg "serve: no eval in flight"
  | Some (seq, expr, deadline) ->
      let finish r =
        t.eval_pending <- None;
        (* the eval ran arbitrary DUEL server-side: local caches are
           suspect whether it succeeded or not *)
        mark_caches_stale t;
        match r with `Done lines -> lines | `Fail f -> fail f
      in
      (* chunks indexed as the server numbered them; duplicates (from a
         whole-reply retransmit after one damaged frame) drop here *)
      let chunks : (int, string) Hashtbl.t = Hashtbl.create 8 in
      let add_chunk idx text =
        if Hashtbl.mem chunks idx then
          t.ctr.dup_frames <- t.ctr.dup_frames + 1
        else Hashtbl.add chunks idx text
      in
      let legacy_next = ref 0 in
      let assemble count =
        let lines =
          List.concat_map
            (fun (_, text) -> String.split_on_char '\n' text)
            (List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) chunks []))
        in
        if List.length lines <> count then
          `Fail
            (Protocol
               (Printf.sprintf "serve: eval reply incomplete (%d of %d lines)"
                  (List.length lines) count))
        else `Done lines
      in
      let rec collect attempt =
        let reply_deadline =
          Float.min deadline (Unix.gettimeofday () +. t.retry.reply_timeout)
        in
        match next_event_opt t reply_deadline with
        | None ->
            t.ctr.timeouts <- t.ctr.timeouts + 1;
            if Unix.gettimeofday () >= deadline then
              finish (`Fail (Timeout "serve: eval deadline exhausted"))
            else if attempt >= t.retry.attempts then
              finish (`Fail (Timeout "serve: no eval reply (retries exhausted)"))
            else begin
              (* resending is safe: the server deduplicates by seq and
                 replays the stored reply without re-executing *)
              t.ctr.resends <- t.ctr.resends + 1;
              backoff_wait t ~attempt;
              send_all t (eval_frame seq expr deadline);
              collect (attempt + 1)
            end
        | Some Packet.Deframer.Ack -> collect attempt
        | Some Packet.Deframer.Nak ->
            (* our request frame was damaged in flight; same seq again *)
            t.ctr.naks_seen <- t.ctr.naks_seen + 1;
            if attempt >= t.retry.attempts then
              finish (`Fail (Protocol "serve: eval request rejected repeatedly"))
            else begin
              send_all t (eval_frame seq expr deadline);
              collect (attempt + 1)
            end
        | Some (Packet.Deframer.Bad _) ->
            (* A damaged frame mid-stream.  Do NOT NAK here: a NAK makes
               the server retransmit the whole stored multi-frame reply,
               so NAKing every damaged chunk of a long stream snowballs —
               each retransmitted copy spawns more NAKs than it settles.
               The terminal frame tells us exactly what is missing; the
               seq re-request below replays the reply once per ask. *)
            collect attempt
        | Some (Packet.Deframer.Frame p) -> (
            match parse_eval_frame p with
            | Chunk (s, idx, text) when s = seq ->
                add_chunk idx text;
                collect attempt
            | Fin (s, count) when s = seq -> (
                match assemble count with
                | `Done lines -> finish (`Done lines)
                | `Fail _ when attempt < t.retry.attempts ->
                    (* chunks of this copy were damaged in flight; ask
                       for a replay (dedup by seq server-side) and keep
                       the chunks we already have *)
                    t.ctr.resends <- t.ctr.resends + 1;
                    send_all t (eval_frame seq expr deadline);
                    collect (attempt + 1)
                | `Fail _ as e -> finish e)
            | Failed (s, msg) when s = seq ->
                finish (`Fail (Remote ("serve: eval failed: " ^ msg)))
            | Chunk _ | Fin _ | Failed _ ->
                (* stale frames of an earlier exchange *)
                t.ctr.dup_frames <- t.ctr.dup_frames + 1;
                collect attempt
            | Legacy_chunk text ->
                add_chunk !legacy_next text;
                incr legacy_next;
                collect attempt
            | Legacy_fin ->
                let lines =
                  List.concat_map
                    (fun (_, text) -> String.split_on_char '\n' text)
                    (List.sort compare
                       (Hashtbl.fold (fun k v l -> (k, v) :: l) chunks []))
                in
                finish (`Done lines)
            | Unrelated ->
                if String.length p >= 1 && p.[0] = 'E' then
                  finish (`Fail (Remote ("serve: eval failed: " ^ p)))
                else begin
                  (* a late reply to some earlier, already-failed
                     exchange: stale, not ours to act on *)
                  t.ctr.dup_frames <- t.ctr.dup_frames + 1;
                  collect attempt
                end)
      in
      collect 1

let eval t expr =
  eval_send t expr;
  eval_recv t

let server_stats t =
  let reply = rpc t "qDuelStats" in
  String.split_on_char ';' reply
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | None -> None
         | Some i ->
             let k = String.sub kv 0 i in
             let v = String.sub kv (i + 1) (String.length kv - i - 1) in
             Option.map (fun v -> (k, v)) (int_of_string_opt v))

let frame_count t =
  let reply = rpc t "qDuelFrames" in
  match int_of_string_opt ("0x" ^ reply) with
  | Some n -> n
  | None -> fail (Protocol ("serve: bad qDuelFrames reply " ^ reply))

let shutdown_server t = ignore (rpc t "qDuelShutdown")

(* --- fleet calls ---------------------------------------------------------- *)

let use_target t id =
  match rpc t ("qDuelUse:" ^ id) with
  | "OK" ->
      (* the connection now aims at a different target: every line this
         client cached came from the old one *)
      mark_caches_stale t;
      t.last_frame_count <- -1
  | "E03" -> fail (Unknown_target id)
  | other -> fail (Protocol ("serve: bad qDuelUse reply " ^ other))

let targets t =
  match rpc t "qDuelTargets" with
  | "" -> []
  | reply ->
      String.split_on_char ',' reply
      |> List.filter_map (fun slot ->
             match String.index_opt slot '=' with
             | None -> None
             | Some i ->
                 Some
                   ( String.sub slot 0 i,
                     String.sub slot (i + 1) (String.length slot - i - 1) ))

(* Parse one fan-out reply frame: chunk [R<id>,<hex idx>;text], leg
   terminal [Z<id>,<hex count>], leg failure [X<id>;msg], fan-out
   terminal [T<hex legs>] (a [T] {e with} a comma is a stale eval-seq
   terminal, not ours). *)
type all_frame =
  | All_chunk of string * int * string
  | All_fin of string * int
  | All_failed of string * string
  | All_done of int
  | All_unrelated

let parse_all_frame p =
  if p = "" then All_unrelated
  else
    let rest = String.sub p 1 (String.length p - 1) in
    match p.[0] with
    | 'R' -> (
        match (String.index_opt rest ',', String.index_opt rest ';') with
        | Some comma, Some semi when comma < semi -> (
            let id = String.sub rest 0 comma in
            let idx_s = String.sub rest (comma + 1) (semi - comma - 1) in
            let text =
              String.sub rest (semi + 1) (String.length rest - semi - 1)
            in
            match int_of_string_opt ("0x" ^ idx_s) with
            | Some idx -> All_chunk (id, idx, text)
            | None -> All_unrelated)
        | _ -> All_unrelated)
    | 'Z' -> (
        match String.index_opt rest ',' with
        | Some comma -> (
            let id = String.sub rest 0 comma in
            let n_s =
              String.sub rest (comma + 1) (String.length rest - comma - 1)
            in
            match int_of_string_opt ("0x" ^ n_s) with
            | Some n -> All_fin (id, n)
            | None -> All_unrelated)
        | None -> All_unrelated)
    | 'X' -> (
        match String.index_opt rest ';' with
        | Some semi ->
            All_failed
              ( String.sub rest 0 semi,
                String.sub rest (semi + 1) (String.length rest - semi - 1) )
        | None -> All_unrelated)
    | 'T' ->
        if String.contains rest ',' then All_unrelated
        else (
          match int_of_string_opt ("0x" ^ rest) with
          | Some n -> All_done n
          | None -> All_unrelated)
    | _ -> All_unrelated

let eval_all t ids expr =
  drain_stale t;
  if t.eval_pending <> None then
    invalid_arg "serve: an eval is already in flight on this connection";
  let ids_s = match ids with [] -> "*" | l -> String.concat "," l in
  (* not resend-safe: the server has no replay window for fan-outs, so a
     lost reply surfaces as a timeout for the caller to retry knowingly *)
  send_all t (Packet.encode (Printf.sprintf "qDuelEvalAll:%s;%s" ids_s expr));
  let deadline = Unix.gettimeofday () +. t.timeout in
  let chunks : (string, (int, string) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let results = ref [] in  (* leg results, reverse arrival order *)
  let finish r =
    mark_caches_stale t;
    match r with `Done legs -> legs | `Fail f -> fail f
  in
  let assemble id count : (string list, string) result =
    let tbl =
      match Hashtbl.find_opt chunks id with
      | Some tbl -> tbl
      | None -> Hashtbl.create 1
    in
    let lines =
      List.concat_map
        (fun (_, text) -> String.split_on_char '\n' text)
        (List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []))
    in
    if List.length lines <> count then
      Error
        (Printf.sprintf "incomplete reply (%d of %d lines)"
           (List.length lines) count)
    else Ok lines
  in
  let rec collect () =
    match next_event_opt t deadline with
    | None -> finish (`Fail (Timeout "serve: eval_all timed out"))
    | Some Packet.Deframer.Ack -> collect ()
    | Some Packet.Deframer.Nak ->
        finish (`Fail (Protocol "serve: server rejected the fan-out request"))
    | Some (Packet.Deframer.Bad _) ->
        (* a damaged frame loses (part of) one leg; the per-leg counts
           and the terminal leg count report exactly what is missing *)
        collect ()
    | Some (Packet.Deframer.Frame p) -> (
        match parse_all_frame p with
        | All_chunk (id, idx, text) ->
            let tbl =
              match Hashtbl.find_opt chunks id with
              | Some tbl -> tbl
              | None ->
                  let tbl = Hashtbl.create 4 in
                  Hashtbl.add chunks id tbl;
                  tbl
            in
            if Hashtbl.mem tbl idx then
              t.ctr.dup_frames <- t.ctr.dup_frames + 1
            else Hashtbl.add tbl idx text;
            collect ()
        | All_fin (id, count) ->
            results := (id, assemble id count) :: !results;
            collect ()
        | All_failed (id, msg) ->
            results := (id, Error msg) :: !results;
            collect ()
        | All_done legs ->
            let got = List.rev !results in
            if List.length got <> legs then
              finish
                (`Fail
                   (Protocol
                      (Printf.sprintf
                         "serve: eval_all reply incomplete (%d of %d targets)"
                         (List.length got) legs)))
            else finish (`Done got)
        | All_unrelated ->
            if p = "E03" then
              finish (`Fail (Remote "serve: server hosts no fleet"))
            else if String.length p >= 1 && p.[0] = 'E' then
              finish (`Fail (Remote ("serve: eval_all failed: " ^ p)))
            else begin
              t.ctr.dup_frames <- t.ctr.dup_frames + 1;
              collect ()
            end)
  in
  collect ()

(* --- the network debugger interface -------------------------------------- *)

let dbgi ?(cache = true) ?(prefetch = true) t di =
  let raw = Duel_rsp.Client.connect ~exchange:(exchange t) di in
  (* [mark_stale] needs the *wrapped* interface, which doesn't exist
     until after we build the frames hook it closes over. *)
  let wrapped = ref None in
  let frames () =
    (* a stop boundary the wire can show us: the active frame count
       changed since we last looked — whatever we cached is suspect *)
    let n = frame_count t in
    if t.last_frame_count >= 0 && n <> t.last_frame_count then (
      match !wrapped with Some d -> Dcache.mark_stale d | None -> ());
    t.last_frame_count <- n;
    di.Duel_rsp.Client.di_frames ()
  in
  let health () =
    {
      Dbgi.h_ok = true;
      h_detail =
        Printf.sprintf "wire: %d resends, %d timeouts, %d naks seen"
          t.ctr.resends t.ctr.timeouts t.ctr.naks_seen;
      h_latency_ms = 0.;
      h_failures = 0;
    }
  in
  let raw =
    {
      raw with
      Dbgi.frames;
      caps = Dbgi.basic_caps ~transport:Dbgi.Socket "serve";
      health;
    }
  in
  if not cache then raw
  else begin
    let dbg =
      Dcache.wrap
        ~config:
          {
            Dcache.default_config with
            stale_policy = Dcache.Explicit;
          }
        raw
    in
    wrapped := Some dbg;
    t.caches <- dbg :: t.caches;
    (* speculative reads batch beautifully here: one [m addr,len] wire
       exchange per span instead of one per line *)
    if prefetch then ignore (Duel_dbgi.Prefetch.attach dbg);
    dbg
  end
