(* The sharded serve stack: N copies of the {!Server} event loop, one
   OCaml 5 domain each, over one shared target.

   What is shared and what is shard-local:

   - The {e target} (the simulated inferior) is shared.  Every shard's
     raw direct access is serialized per-operation by one mutex
     ({!Duel_dbgi.Dbgi.serialized}); reads mostly never reach it,
     because each shard owns a private {!Duel_dbgi.Dcache} whose
     generation probe snoops the shared memory's write-generation — a
     store by any shard retires every other shard's cached lines on
     their next access, the same coherence hook single-threaded rigs
     already used.
   - The {e plan cache} is shared ({!Plan_cache} is mutex-guarded), so
     a query compiled by one shard is a hit on every other.
   - The {e stop flag} is shared: [qDuelShutdown] arriving at any shard
     (or a signal handler calling {!shutdown}) drains all of them.
   - Everything else — connections, sessions, stats, the latency
     histogram, the RSP stub, the select loop itself — is shard-local
     and touched only by the shard's own domain.  [qDuelStats] merges
     the per-shard numbers on demand ({!Server.merged_view}).

   Listener setup: TCP uses SO_REUSEPORT — every shard binds the same
   address and the kernel balances accepts, so there is no hand-off on
   the TCP hot path at all.  Unix-domain sockets cannot share a bind,
   so a small dispatcher domain accepts and hands each fd to the next
   shard round-robin over the shard's locked inbox ({!Server.hand_off}),
   which wakes the shard's select through its wake pipe. *)

module Inferior = Duel_target.Inferior
module Memory = Duel_mem.Memory
module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache

type t = {
  shards : Server.t array;
  stop : bool Atomic.t;
  rr : int Atomic.t;  (* round-robin hand-off cursor *)
  mutable unix_listeners : (Unix.file_descr * string) list;
  mutable domains : unit Domain.t list;
  mutable running : bool;
}

let shard_count t = Array.length t.shards
let shards t = Array.to_list t.shards

let create ?(config = Server.default_config) ?fleet ~shards:n inf =
  if n < 1 then invalid_arg "Sharded.create: shards must be >= 1";
  let stop = Atomic.make false in
  let plans = Plan_cache.create config.Server.plan_cache in
  let lock = Mutex.create () in
  let mem = Inferior.mem inf in
  let shard _ =
    match fleet with
    | Some _ ->
        (* fleet hosting: the shared fleet carries the per-target locks
           and generations; each shard builds its own per-target caches
           inside [Server.create], so nothing else is needed here *)
        Server.create ~config ~plans ~stop ?fleet inf
    | None ->
        if n = 1 then
          (* one shard is exactly the classic server: direct cached DBGI,
             no target lock, nothing serialized — bit-identical behavior *)
          Server.create ~config ~plans ~stop inf
        else
          let dbgi =
            Dcache.wrap
              ~config:
                {
                  Dcache.default_config with
                  stale_policy = Dcache.Probe (fun () -> Memory.generation mem);
                }
              (Dbgi.serialized lock
                 (Duel_target.Backend.direct ~cache:false inf))
          in
          (* a per-shard predictor over the per-shard cache: speculation
             state is shard-local, coherence rides the shared generation *)
          ignore (Duel_dbgi.Prefetch.attach dbgi);
          Server.create ~config ~dbgi ~plans ~stop ~target_lock:lock inf
  in
  let shards = Array.init n shard in
  if n > 1 then begin
    let all = Array.to_list shards in
    Array.iter (fun s -> Server.set_siblings s all) shards
  end;
  {
    shards;
    stop;
    rr = Atomic.make 0;
    unix_listeners = [];
    domains = [];
    running = false;
  }

(* --- listeners ----------------------------------------------------------- *)

let listen_tcp t ~host ~port =
  match t.shards with
  | [| only |] -> Server.listen_tcp only ~host ~port
  | shards ->
      (* shard 0 resolves an ephemeral port, siblings join it *)
      let port = Server.listen_tcp ~reuseport:true shards.(0) ~host ~port in
      Array.iteri
        (fun i s ->
          if i > 0 then
            ignore (Server.listen_tcp ~reuseport:true s ~host ~port))
        shards;
      port

let next_shard t =
  let n = Array.length t.shards in
  t.shards.(Atomic.fetch_and_add t.rr 1 mod n)

(* Round-robin a connected socket to some shard.  Safe from any domain;
   this is also the dispatcher's balancing policy. *)
let inject t fd = Server.hand_off (next_shard t) fd

let listen_unix t path =
  match t.shards with
  | [| only |] -> Server.listen_unix only path
  | _ ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.bind fd (ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      t.unix_listeners <- (fd, path) :: t.unix_listeners

(* The dispatcher loop: accept until the stop flag rises, handing each
   connection to the next shard.  Runs in its own domain. *)
let dispatch_loop t lfd path =
  let rec accept_all () =
    match Unix.accept lfd with
    | fd, _ ->
        inject t fd;
        accept_all ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ lfd ] [] [] 0.2 with
      | _ :: _, _, _ -> accept_all ()
      | _ -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  try Unix.unlink path with Unix.Unix_error _ -> ()

(* --- lifecycle ----------------------------------------------------------- *)

let spawn_dispatchers t =
  List.map
    (fun (lfd, path) -> Domain.spawn (fun () -> dispatch_loop t lfd path))
    t.unix_listeners

(* Every shard (and any unix-socket dispatcher) in a background domain;
   the caller's domain stays free to drive clients (tests, benches). *)
let start t =
  if t.running then invalid_arg "Sharded.start: already running";
  t.running <- true;
  t.domains <-
    spawn_dispatchers t
    @ List.map
        (fun s -> Domain.spawn (fun () -> Server.run s))
        (Array.to_list t.shards)

let join t =
  let ds = t.domains in
  t.domains <- [];
  t.running <- false;
  List.iter Domain.join ds

(* The CLI shape: shard 0 runs on the calling domain (so an interactive
   process keeps its main domain busy in the loop), siblings and
   dispatchers in spawned domains; returns when every loop has drained
   after a {!shutdown}.  With one shard and no unix dispatcher this is
   exactly [Server.run] — no domain is ever spawned. *)
let run t =
  if t.running then invalid_arg "Sharded.run: already running";
  t.running <- true;
  let siblings =
    List.filteri (fun i _ -> i > 0) (Array.to_list t.shards)
    |> List.map (fun s -> Domain.spawn (fun () -> Server.run s))
  in
  t.domains <- spawn_dispatchers t @ siblings;
  Server.run t.shards.(0);
  join t

(* Raise the shared stop flag and wake every shard.  [Server.shutdown]
   on any shard reaches its siblings; the dispatchers poll the flag. *)
let shutdown t = Server.shutdown t.shards.(0)

let active t = Array.fold_left (fun n s -> n + Server.active s) 0 t.shards
let merged_view t = Server.merged_view t.shards.(0)
let stats_wire t = Server.stats_wire t.shards.(0)
let stats_to_lines t = Server.stats_to_lines t.shards.(0)
