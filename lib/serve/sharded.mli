(** The sharded serve stack: N {!Server} event loops, one OCaml 5
    domain each, over one shared target.

    {2 Threading model}

    Shard-local (touched only by the owning domain): the select loop,
    connections and their sessions, the RSP stub, stats and the latency
    histogram, and a private {!Duel_dbgi.Dcache}.  Shared: the target —
    raw access serialized per-operation by one mutex
    ({!Duel_dbgi.Dbgi.serialized}), with each shard's dcache kept
    coherent by the shared memory's write-generation probe; the
    {!Plan_cache} (internally mutex-guarded), so a query compiled by
    one shard hits on all; and the stop flag, so [qDuelShutdown] at any
    shard gracefully drains every shard.  [qDuelStats] answered by any
    shard reports the merged whole-server counters and histogram.

    {2 Listeners}

    {!listen_tcp} with more than one shard binds one [SO_REUSEPORT]
    listener per shard — the kernel balances accepts, no hand-off on
    the hot path.  {!listen_unix} (which cannot share a bind) runs a
    dispatcher domain that accepts and hands each fd to the next shard
    round-robin via {!Server.hand_off}.

    With [shards = 1] no domain is spawned, no lock is taken and no
    DBGI is wrapped: the behavior is bit-identical to the classic
    single-threaded {!Server}. *)

type t

val create :
  ?config:Server.config ->
  ?fleet:Duel_fleet.Fleet.t ->
  shards:int ->
  Duel_target.Inferior.t ->
  t
(** [create ~shards:n inf] builds [n] shard servers over the shared
    target.  With [?fleet], every shard hosts the same named targets
    (see {!Server} {e Fleet hosting}): the fleet object — locks,
    generations, counters — is shared, while each shard builds its own
    per-target data caches and compile contexts; pass the first
    target's inferior as [inf].  @raise Invalid_argument if [n < 1]. *)

val shard_count : t -> int
val shards : t -> Server.t list

val listen_tcp : t -> host:string -> port:int -> int
(** Bind every shard to the same address ([SO_REUSEPORT] when sharded);
    returns the actual port (useful with [port = 0]). *)

val listen_unix : t -> string -> unit
(** Unix-domain listening: served directly by the single shard, or by a
    dispatcher domain (started with {!start}/{!run}) when sharded. *)

val inject : t -> Unix.file_descr -> unit
(** Hand a connected socket to the next shard round-robin (safe from
    any domain; queued until the shard's next step). *)

val start : t -> unit
(** Spawn every shard loop (and any unix-socket dispatcher) in a
    background domain and return; the caller's domain is free to drive
    clients.  Pair with {!join}. *)

val join : t -> unit
(** Wait for every spawned domain to finish (they finish after
    {!shutdown} has drained).  An uncaught exception in a shard
    re-raises here. *)

val run : t -> unit
(** The CLI shape: shard 0 runs on the calling domain, siblings and
    dispatchers in spawned domains; returns once a {!shutdown} has
    fully drained.  With one shard and a TCP listener this is exactly
    [Server.run] — no domain is spawned. *)

val shutdown : t -> unit
(** Raise the shared stop flag and wake every shard: stop accepting,
    drain every queued reply on every shard, close.  Idempotent; safe
    from any domain and from a signal handler. *)

val active : t -> int
(** Live connections summed over shards (a racy snapshot when called
    while running). *)

val merged_view : t -> Server.view
val stats_wire : t -> string
val stats_to_lines : t -> string list
