(** The shared, domain-safe query-plan cache.

    Compiled {!Duel_core.Bytecode.program}s keyed by the query's
    normalized token stream, LRU-bounded, invalidated by the target's
    write-generation.  One cache may be shared by every shard of a
    sharded server: all table and LRU bookkeeping happens under an
    internal mutex, so concurrent hits, stores and evictions from
    different domains never tear state.

    Generation discipline is the caller's: pass the generation the
    program was compiled under to {!store} and the {e current}
    generation to {!find}; a mismatch retires the entry ({!Stale}).
    Compilation itself should happen outside this module (and therefore
    outside the lock) — two domains racing to compile the same key both
    succeed, and the later {!store} replaces the earlier one. *)

type t

type outcome =
  | Hit of Duel_core.Bytecode.program
      (** found, compiled under the generation asked about.  The program
          is the shared master copy: {!Duel_core.Bytecode.clone} it
          before execution. *)
  | Stale  (** found but compiled under an older generation; removed *)
  | Absent

val create : int -> t
(** [create capacity].  A capacity [<= 0] disables the cache: {!find}
    always answers {!Absent} and {!store} is a no-op. *)

val enabled : t -> bool

val find : t -> key:string -> gen:int -> outcome

val store : t -> key:string -> gen:int -> Duel_core.Bytecode.program -> int
(** Insert (replacing any entry under the same key) and evict the LRU
    entry beyond capacity; returns the number of entries evicted. *)

val resident : t -> int
(** Entries currently cached. *)
