(** The lazy-sequence generator engine.

    Each IR node evaluates to a ['a Seq.t] of values; OCaml's persistent
    lazy sequences play the role of the paper's per-node coroutine state
    (re-forcing a sequence restarts it, which is exactly the paper's
    "after NOVALUE ... the next call re-evaluates the node").  Operator
    semantics follow the paper's pseudo-code operator by operator. *)

val eval : Env.t -> Ir.expr -> Value.t Seq.t
(** Lazily produce the lowered expression's values.  Side effects (alias
    definitions, assignments, target-function calls) happen as the
    sequence is consumed, in the paper's evaluation order.  Name
    resolution goes through the expression's slots
    ({!Semantics.name_value}). *)
