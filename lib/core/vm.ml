(** The bytecode VM — the third evaluation engine.

    Executes {!Bytecode.program}s produced by {!Compile}.  Each region
    runs in a heap-allocated resumption {!frame} ([pc] + a view of the
    activation's registers + parent link): suspending a generator is
    saving an integer, and a suspended traversal is a plain value that
    can be held across commands and resumed later ({!start}/{!step}).
    Closure-chasing in {!Eval_seq} becomes a flat dispatch loop here;
    the shared helpers ({!Semantics}, {!Ops}, {!Value}) are the same, so
    the two engines are observationally identical — enforced by the
    three-engine differential battery in [test/test_vm.ml]. *)

module Ctype = Duel_ctype.Ctype
module B = Bytecode

type stats = {
  mutable v_dispatch : int;  (** instructions dispatched *)
  mutable v_super : int;  (** superinstruction executions *)
  mutable v_frames : int;  (** resumption frames allocated *)
  mutable v_fallback : int;  (** Eval_seq fallback generators spawned *)
  mutable v_fused : int;  (** elements folded inside fused reductions *)
}

let fresh_stats () =
  { v_dispatch = 0; v_super = 0; v_frames = 0; v_fallback = 0; v_fused = 0 }

let no_sym = Symbolic.atom "?"
let sym_on env = env.Env.flags.Env.symbolic

type gen =
  | Gnone
  | Gframe of frame
  | Gdisp of (unit -> Value.t option)  (** an {!Eval_seq} fallback *)
  | Gchase of chase  (** the fused [-->] traversal *)

(* The resumption frame: where this region's activation is suspended,
   plus its view of the register files (shared across the activation —
   regions have disjoint register ranges) and who spawned it. *)
and frame = {
  mutable pc : int;
  act : activation;
  parent : frame option;
}

and activation = {
  prog : B.program;
  env : Env.t;
  st : stats;
  regs : Value.t array;
  iregs : int64 array;
  gens : gen array;
}

and chase = {
  ch_step : B.operand;
  ch_df : bool;
  ch_roots : int;  (* gen slot of the roots generator *)
  mutable ch_work : Value.t list;
  ch_visited : (int64, unit) Hashtbl.t option;
  ch_limit : int;
  mutable ch_count : int;
}

let mk_range env i =
  let sym = if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym in
  Value.int_value ~sym Ctype.int i

(* Inline-operand evaluation: exactly {!Semantics.single}. *)
let opv (a : activation) = function
  | B.Oreg r -> a.regs.(r)
  | B.Oconst i -> a.prog.B.consts.(i)
  | B.Oname i -> Semantics.name_value a.env a.prog.B.names.(i)
  | B.Ounder -> (Env.current_scope a.env).Env.sc_value

let is_super = function B.Oreg _ -> false | _ -> true

let seen_before ch w =
  match ch.ch_visited with
  | None -> false
  | Some tbl -> (
      match w.Value.st with
      | Value.Rint key ->
          if Hashtbl.mem tbl key then true
          else begin
            Hashtbl.replace tbl key ();
            false
          end
      | _ -> false)

(* Fused reductions over [lo..hi]: the accumulator never leaves an
   int64.  Numerically identical to folding the produced range — range
   elements are int rvalues, so [sum_step] stays on the integer side and
   wraps the same way. *)
let reduce_range a r lo hi sym =
  let env = a.env in
  let n =
    if Int64.compare hi lo >= 0 then Int64.succ (Int64.sub hi lo) else 0L
  in
  a.st.v_fused <- a.st.v_fused + Int64.to_int n;
  match r with
  | Ast.Rcount -> Value.int_value ~sym Ctype.int n
  | Ast.Rsum ->
      let s = ref 0L in
      let i = ref lo in
      while Int64.compare !i hi <= 0 do
        s := Int64.add !s !i;
        i := Int64.succ !i
      done;
      Semantics.sum_result env ~sym (Either.Left !s)
  | Ast.Rall ->
      (* false iff the range contains 0 *)
      let ok = not (Int64.compare lo 0L <= 0 && Int64.compare 0L hi <= 0) in
      Value.int_value ~sym Ctype.int (if ok then 1L else 0L)
  | Ast.Rany ->
      (* true iff nonempty and not exactly [0..0] *)
      let ok =
        Int64.compare lo hi <= 0 && not (Int64.equal lo 0L && Int64.equal hi 0L)
      in
      Value.int_value ~sym Ctype.int (if ok then 1L else 0L)

(* --- the dispatch loop ---------------------------------------------------- *)

let rec run_frame (f : frame) : Value.t option =
  let a = f.act in
  let p = a.prog in
  let code = p.B.insns in
  let env = a.env in
  let st = a.st in
  let regs = a.regs and iregs = a.iregs and gens = a.gens in
  let pc = ref f.pc in
  let rec loop () =
    let i = code.(!pc) in
    st.v_dispatch <- st.v_dispatch + 1;
    incr pc;
    match i with
    | B.Iyield r ->
        f.pc <- !pc;
        Some regs.(r)
    | B.Ihalt ->
        f.pc <- !pc - 1;
        (* sticky: every further resume sees the halt *)
        None
    | B.Ijmp t ->
        pc := t;
        loop ()
    | B.Iload (d, o) ->
        regs.(d) <- opv a o;
        loop ()
    | B.Iunary (op, d, s) ->
        regs.(d) <- Ops.unary env op regs.(s);
        loop ()
    | B.Iincdec (op, d, s) ->
        regs.(d) <- Ops.incdec env op regs.(s);
        loop ()
    | B.Ibraces (d, s) ->
        let v = regs.(s) in
        regs.(d) <-
          (if sym_on env then
             Value.with_sym v (Symbolic.atom (Printer.scalar_literal env v))
           else v);
        loop ()
    | B.Ibinary (op, d, l, o) ->
        if is_super o then st.v_super <- st.v_super + 1;
        let rhs = opv a o in
        regs.(d) <- Ops.binary env op regs.(l) rhs;
        loop ()
    | B.Iindex (d, l, o) ->
        if is_super o then st.v_super <- st.v_super + 1;
        let rhs = opv a o in
        regs.(d) <- Ops.index env regs.(l) rhs;
        loop ()
    | B.Ilogand_sym (d, u, v) ->
        regs.(d) <-
          (if sym_on env then
             Value.with_sym regs.(v)
               (Symbolic.binary Symbolic.prec_logand " && " regs.(u).Value.sym
                  regs.(v).Value.sym)
           else regs.(v));
        loop ()
    | B.Ilogor_sym (d, u, v) ->
        regs.(d) <-
          (if sym_on env then
             Value.with_sym regs.(v)
               (Symbolic.binary Symbolic.prec_logor " || " regs.(u).Value.sym
                  regs.(v).Value.sym)
           else regs.(v));
        loop ()
    | B.Ilogor_true (d, u) ->
        regs.(d) <- Ops.int_result env ~sym:regs.(u).Value.sym 1L;
        loop ()
    | B.Idef_alias (six, r) ->
        Env.define_alias env p.B.strs.(six) regs.(r);
        loop ()
    | B.Iindex_alias (six, ic) ->
        let i = Int64.to_int iregs.(ic) in
        let sym =
          if sym_on env then Symbolic.atom (string_of_int i) else no_sym
        in
        Env.define_alias env p.B.strs.(six)
          (Value.int_value ~sym Ctype.int (Int64.of_int i));
        iregs.(ic) <- Int64.add iregs.(ic) 1L;
        loop ()
    | B.Ipush_with (kind, r) ->
        Env.push_scope env (Semantics.with_scope env kind regs.(r));
        loop ()
    | B.Ipop_scope ->
        Env.pop_scope env;
        loop ()
    | B.Ito_int (d, s) ->
        iregs.(d) <- Value.to_int64 env.Env.dbg regs.(s);
        loop ()
    | B.Iiconst (d, k) ->
        iregs.(d) <- k;
        loop ()
    | B.Iiadd (d, k) ->
        iregs.(d) <- Int64.add iregs.(d) k;
        loop ()
    | B.Iimov (d, s) ->
        iregs.(d) <- iregs.(s);
        loop ()
    | B.Irange_next (d, cur, hi, exh) ->
        if Int64.compare iregs.(cur) iregs.(hi) > 0 then pc := exh
        else begin
          regs.(d) <- mk_range env iregs.(cur);
          iregs.(cur) <- Int64.succ iregs.(cur)
        end;
        loop ()
    | B.Irange_from (d, cur, start) ->
        (* the open range answers to [expansion_limit] like runaway
           loops do; identical wording across all three engines *)
        let limit = env.Env.flags.Env.expansion_limit in
        if
          limit > 0
          && Int64.compare
               (Int64.sub iregs.(cur) iregs.(start))
               (Int64.of_int limit)
             >= 0
        then
          Error.failf "open range exceeded %d values (runaway generator?)"
            limit;
        regs.(d) <- mk_range env iregs.(cur);
        iregs.(cur) <- Int64.succ iregs.(cur);
        loop ()
    | B.Itruth (r, els) ->
        if not (Value.truth env.Env.dbg regs.(r)) then pc := els;
        loop ()
    | B.Ifilter (k, u, o, els) ->
        if is_super o then st.v_super <- st.v_super + 1;
        let rhs = opv a o in
        if not (Ops.filter_holds env k regs.(u) rhs) then pc := els;
        loop ()
    | B.Ispawn (g, rid) ->
        st.v_frames <- st.v_frames + 1;
        gens.(g) <- Gframe { pc = p.B.entries.(rid); act = a; parent = Some f };
        loop ()
    | B.Ifallback (g, ix) ->
        st.v_fallback <- st.v_fallback + 1;
        gens.(g) <- Gdisp (Seq.to_dispenser (Eval_seq.eval env p.B.irs.(ix)));
        loop ()
    | B.Ichase (g, roots, step, df) ->
        st.v_super <- st.v_super + 1;
        gens.(g) <-
          Gchase
            {
              ch_step = step;
              ch_df = df;
              ch_roots = roots;
              ch_work = [];
              ch_visited =
                (if env.Env.flags.Env.cycle_detect then
                   Some (Hashtbl.create 64)
                 else None);
              ch_limit = env.Env.flags.Env.expansion_limit;
              ch_count = 0;
            };
        loop ()
    | B.Iresume (d, g, exh) -> (
        match resume a gens.(g) with
        | Some v ->
            regs.(d) <- v;
            loop ()
        | None ->
            pc := exh;
            loop ())
    | B.Ireduce (d, r, g, six) ->
        regs.(d) <- reduce a r gens.(g) p.B.syms.(six);
        loop ()
    | B.Ireduce_to (d, r, olo, ohi, six) ->
        st.v_super <- st.v_super + 1;
        let lo = Value.to_int64 env.Env.dbg (opv a olo) in
        let hi = Value.to_int64 env.Env.dbg (opv a ohi) in
        let sym = if sym_on env then p.B.syms.(six) else no_sym in
        regs.(d) <- reduce_range a r lo hi sym;
        loop ()
    | B.Ireduce_upto (d, r, o, six) ->
        st.v_super <- st.v_super + 1;
        let hi = Int64.pred (Value.to_int64 env.Env.dbg (opv a o)) in
        let sym = if sym_on env then p.B.syms.(six) else no_sym in
        regs.(d) <- reduce_range a r 0L hi sym;
        loop ()
  in
  loop ()

and resume a g =
  match g with
  | Gframe f -> run_frame f
  | Gdisp d -> d ()
  | Gchase ch -> chase_next a ch
  | Gnone -> None

(* One step of the fused [-->]/[-->>] traversal: same order of effects
   as [Eval_seq.eval_expand] — children are collected under the node's
   scope *before* the node is yielded, the visited table is updated at
   the same points, and the expansion limit counts popped nodes. *)
and chase_next a ch =
  let env = a.env in
  a.st.v_super <- a.st.v_super + 1;
  match ch.ch_work with
  | node :: rest ->
      ch.ch_count <- ch.ch_count + 1;
      if ch.ch_limit > 0 && ch.ch_count > ch.ch_limit then
        Error.failf "--> expansion exceeded %d nodes (cycle?)" ch.ch_limit
      else begin
        let kids =
          let scope = Semantics.node_scope env node in
          Env.push_scope env scope;
          let w = opv a ch.ch_step in
          let r =
            match Semantics.traversal_child_ok env w with
            | Some wf ->
                Semantics.chase_hint env w wf;
                [ wf ]
            | None -> []
          in
          Env.pop_scope env;
          r
        in
        let kids = List.filter (fun w -> not (seen_before ch w)) kids in
        ch.ch_work <- (if ch.ch_df then kids @ rest else rest @ kids);
        Some node
      end
  | [] -> (
      (* pull the next root *)
      match resume a a.gens.(ch.ch_roots) with
      | None -> None
      | Some u -> (
          match Semantics.traversal_child_ok env u with
          | None -> chase_next a ch
          | Some uf ->
              if seen_before ch uf then chase_next a ch
              else begin
                ch.ch_work <- [ uf ];
                chase_next a ch
              end))

(* The generic in-VM reduction: drain the generator and fold, restoring
   the scope depth afterwards — a transcription of
   [Eval_seq.eval_reduce] over a resumable generator. *)
and reduce a r g psym =
  let env = a.env in
  let dbg = env.Env.dbg in
  let depth = Env.scope_depth env in
  let sym = if sym_on env then psym else no_sym in
  let result =
    match r with
    | Ast.Rcount ->
        let n = ref 0 in
        let rec drain () =
          match resume a g with
          | Some _ ->
              incr n;
              drain ()
          | None -> ()
        in
        drain ();
        Value.int_value ~sym Ctype.int (Int64.of_int !n)
    | Ast.Rsum ->
        let rec fold acc =
          match resume a g with
          | Some v -> fold (Semantics.sum_step env acc v)
          | None -> acc
        in
        Semantics.sum_result env ~sym (fold (Either.Left 0L))
    | Ast.Rall ->
        let rec all () =
          match resume a g with
          | Some v -> if Value.truth dbg v then all () else false
          | None -> true
        in
        Value.int_value ~sym Ctype.int (if all () then 1L else 0L)
    | Ast.Rany ->
        let rec any () =
          match resume a g with
          | Some v -> if Value.truth dbg v then true else any ()
          | None -> false
        in
        Value.int_value ~sym Ctype.int (if any () then 1L else 0L)
  in
  Env.restore_scope_depth env depth;
  result

(* --- entry points --------------------------------------------------------- *)

(** A suspended program activation: pull values with {!step}; hold it
    across commands (its frames are plain heap values). *)
type run = { r_root : frame }

let start ?stats env (prog : B.program) : run =
  let st = match stats with Some s -> s | None -> fresh_stats () in
  let filler = Value.int_value Ctype.int 0L in
  let act =
    {
      prog;
      env;
      st;
      regs = Array.make (max 1 prog.B.nregs) filler;
      iregs = Array.make (max 1 prog.B.niregs) 0L;
      gens = Array.make (max 1 prog.B.ngens) Gnone;
    }
  in
  st.v_frames <- st.v_frames + 1;
  { r_root = { pc = prog.B.entries.(0); act; parent = None } }

let step (r : run) : Value.t option = run_frame r.r_root

(** The engine interface: forcing the outer thunk starts a fresh
    activation (the paper's restart-on-re-evaluation), the tail is
    ephemeral like {!Eval_sm}'s. *)
let eval ?stats env prog : Value.t Seq.t =
 fun () ->
  let h = start ?stats env prog in
  let rec next () =
    match step h with Some v -> Seq.Cons (v, next) | None -> Seq.Nil
  in
  next ()
