module Tenv = Duel_ctype.Tenv
module Dbgi = Duel_dbgi.Dbgi

type engine = Seq_engine | Sm_engine | Vm_engine

type t = {
  env : Env.t;
  mutable engine : engine;
  mutable max_values : int;
  mutable lower : bool;
  vstats : Vm.stats;
  mutable vm_plan : (Ir.expr * Bytecode.program) option;
}

(* The resolution cache snoops the same write-generation counter as the
   data cache (when the interface has one): a store that bypassed us
   invalidates cached global slots exactly when it drops cached lines. *)
let create ?(engine = Seq_engine) dbg =
  let probe = Duel_dbgi.Dcache.coherence_probe dbg in
  {
    env = Env.create ?probe dbg;
    engine;
    max_values = 0;
    lower = true;
    vstats = Vm.fresh_stats ();
    vm_plan = None;
  }

let parse session src =
  let tenv = session.env.Env.dbg.Dbgi.tenv in
  let is_typename name = Tenv.find_typedef tenv name <> None in
  Parser.parse ~is_typename ~abi:session.env.Env.dbg.Dbgi.abi src

let compile session ast =
  let mode = if session.lower then Lower.Cached else Lower.Dynamic in
  Lower.lower ~mode session.env ast

(* The VM engine compiles the IR once and re-uses the program on
   re-drives of the same tree (the memo is keyed by physical identity —
   exactly the benchmark/watchpoint pattern). *)
let vm_program session ir =
  match session.vm_plan with
  | Some (ir0, prog) when ir0 == ir -> prog
  | _ ->
      let prog = Compile.compile ir in
      session.vm_plan <- Some (ir, prog);
      prog

let eval_ir session ir =
  match session.engine with
  | Seq_engine -> Eval_seq.eval session.env ir
  | Sm_engine -> Eval_sm.eval session.env ir
  | Vm_engine ->
      Vm.eval ~stats:session.vstats session.env (vm_program session ir)

let eval session ast = eval_ir session (compile session ast)

(* Commands are flush points: any stores the data cache coalesced during
   evaluation reach the target before control returns, so the inferior's
   own code (and tests reading memory directly) see consistent state. *)
let flush_writes session = Duel_dbgi.Dcache.flush session.env.Env.dbg

let drive_ir session ir =
  let depth = Env.scope_depth session.env in
  let n = Seq.fold_left (fun acc _ -> acc + 1) 0 (eval_ir session ir) in
  Env.restore_scope_depth session.env depth;
  flush_writes session;
  n

let drive session ast = drive_ir session (compile session ast)

let format_value session v =
  let threshold = session.env.Env.flags.Env.compress in
  let sym = Symbolic.compress ~threshold (Symbolic.to_string v.Value.sym) in
  (* A Duel_error raised while rendering (e.g. fetching an unreadable
     scalar lvalue) propagates: the command reports the error itself. *)
  sym ^ " = " ^ Printer.value_to_string session.env v

(* Values of a command ending in ';' are evaluated for side effects only
   and not displayed. *)
let rec silent = function
  | Ast.Seq_void _ -> true
  | Ast.Seq (_, b) -> silent b
  | _ -> false

(* The shared command wrapper: evaluate a lazily-produced sequence,
   format (or count) its values, map every failure to the session's
   error lines, restore the scope stack, flush coalesced writes. *)
let exec_with session (produce : unit -> bool * Value.t Seq.t) =
  let depth = Env.scope_depth session.env in
  let lines = ref [] in
  let emit line = lines := line :: !lines in
  (try
     let quiet, seq = produce () in
     let count = ref 0 in
     let consume v =
       incr count;
       if not quiet then
         if session.max_values = 0 || !count <= session.max_values then
           emit (format_value session v)
         else if !count = session.max_values + 1 then emit "..."
     in
     Seq.iter consume seq
   with
  | Lexer.Error (msg, pos) ->
      emit (Printf.sprintf "syntax error at character %d: %s" pos msg)
  | Parser.Error (msg, pos) ->
      emit (Printf.sprintf "parse error at character %d: %s" pos msg)
  | Error.Duel_error err -> emit (Error.to_string err)
  | Dbgi.Target_fault { addr; len } ->
      emit
        (Printf.sprintf "Illegal memory reference: address 0x%x (%d-byte access)"
           addr len)
  | Dbgi.Target_transient { addr; len } ->
      (* the transport flaked, not the program: the command failed but the
         session (aliases, scopes, caches) is intact — rerunning it is the
         right response, and the data cache has already marked itself
         stale so the rerun re-reads the target *)
      emit
        (Printf.sprintf
           "Transient target fault: address 0x%x (%d-byte access); the \
            command may be retried"
           addr len)
  | Stack_overflow -> emit "evaluation too deep (stack overflow)"
  | Out_of_memory as e -> raise e
  | e ->
      (* a command prompt is a main loop: surface anything a backend or
         called target function may throw, then keep the session alive *)
      emit (Printexc.to_string e));
  Env.restore_scope_depth session.env depth;
  (* The end-of-command flush talks to the target too: over a flaky
     transport it can fault after a perfectly good evaluation.  Keep the
     contract that exec never raises — the cache keeps the unflushed
     ranges buffered and marks itself stale, so the next flush point
     retries the batch. *)
  (try flush_writes session with
  | Dbgi.Target_fault { addr; len } ->
      emit
        (Printf.sprintf
           "Illegal memory reference: address 0x%x (%d-byte access)" addr len)
  | Dbgi.Target_transient { addr; len } ->
      emit
        (Printf.sprintf
           "Transient target fault: address 0x%x (%d-byte access); the \
            command may be retried"
           addr len));
  List.rev !lines

let exec session src =
  exec_with session (fun () ->
      let ast = parse session src in
      (silent ast, eval session ast))

(* Run an already-compiled program (the serve layer's plan cache): same
   output contract as [exec] on the program's source text.  Always the
   VM — a cached plan *is* VM bytecode. *)
let exec_program session prog =
  exec_with session (fun () ->
      ( prog.Bytecode.quiet,
        Vm.eval ~stats:session.vstats session.env prog ))

let exec_string session src = String.concat "\n" (exec session src)

let cache_stats session =
  let dbg = session.env.Env.dbg in
  match Duel_dbgi.Dcache.stats dbg with
  | None -> [ "memory cache: off" ]
  | Some st ->
      Printf.sprintf "memory cache: on (%d lines resident)"
        (Duel_dbgi.Dcache.cached_lines dbg)
      :: Duel_dbgi.Dcache.to_lines st

let prefetch_stats session =
  let dbg = session.env.Env.dbg in
  match Duel_dbgi.Prefetch.stats dbg with
  | None ->
      [
        (if Duel_dbgi.Dcache.is_cached dbg then
           "prefetch: off (no predictor attached; see --no-prefetch)"
         else "prefetch: off (no data cache to speculate into)");
      ]
  | Some st ->
      Duel_dbgi.Prefetch.to_lines ~on:(Duel_dbgi.Prefetch.enabled dbg) st

let set_prefetch session on =
  let dbg = session.env.Env.dbg in
  if on && not (Duel_dbgi.Prefetch.is_attached dbg) then
    (* started with --no-prefetch: attach lazily if there is a cache *)
    ignore (Duel_dbgi.Prefetch.attach dbg);
  Duel_dbgi.Prefetch.set_enabled dbg on

let lower_stats session =
  let ls = session.env.Env.lstats in
  [
    Printf.sprintf "lowering: %s" (if session.lower then "on" else "off");
    Printf.sprintf "slot lookups: %d hits, %d misses (%d stale), %d dynamic"
      ls.Env.l_hits ls.Env.l_misses ls.Env.l_stale ls.Env.l_dynamic;
  ]

let vm_stats session =
  let vs = session.vstats in
  [
    Printf.sprintf "vm engine: %s"
      (match session.engine with
      | Vm_engine -> "on (bytecode)"
      | Seq_engine -> "off (seq engine)"
      | Sm_engine -> "off (sm engine)");
    Printf.sprintf "dispatch: %d instructions, %d superinstructions"
      vs.Vm.v_dispatch vs.Vm.v_super;
    Printf.sprintf "frames: %d allocated, %d fallback generators, %d fused \
                    reduce elements"
      vs.Vm.v_frames vs.Vm.v_fallback vs.Vm.v_fused;
  ]
