(** Semantic helpers shared by the two evaluation engines: type
    resolution, lowered name resolution (the slot inline cache),
    [with]-scope construction, [-->] node validity, target function
    calls, and reductions' accumulation. *)

module Ctype = Duel_ctype.Ctype

val resolve_type :
  Env.t -> eval_int:(Ir.expr -> int64) -> Ir.type_expr -> Ctype.t
(** Resolve type syntax against the target's type environment; array
    dimensions are evaluated with [eval_int] (first value).  [Tready]
    types (pre-resolved by {!Lower}) return immediately.
    @raise Error.Duel_error on unknown tags/typedefs or bad specifiers. *)

val name_value : Env.t -> Ir.name -> Value.t
(** Resolve a lowered name through its slot: a valid slot answers without
    touching the resolution chain (member slots rebuild the value from
    the innermost scope's live subject); an invalid or empty slot runs
    the full chain and re-caches.  [Sdynamic] slots always run the full
    chain.  Updates {!Env.lstats}.
    @raise Error.Duel_error on undefined names. *)

val single : Env.t -> Ir.expr -> Value.t
(** Direct evaluation of an {!Ir.pure_single} operand (literal, name,
    [_], possibly parenthesized) — the engines' singleton fast path. *)

val with_scope : Env.t -> Ast.with_kind -> Value.t -> Env.scope
(** Scope for [e1.e2] / [e1->e2]: [_] is e1's value; members resolve to
    fields when the subject is a struct/union (directly or through a
    pointer).  @raise Error.Duel_error if [->] is applied to a
    non-pointer. *)

val node_scope : Env.t -> Value.t -> Env.scope
(** Scope used while expanding a [-->] node: like [->] for pointer nodes,
    like [.] for aggregate lvalues, fields-free otherwise. *)

val frame_scope : Env.t -> int -> Env.scope
(** Scope over the locals of active frame [i] (the [frame(i)] extension).
    @raise Error.Duel_error if no such frame. *)

val frame_count : Env.t -> int

val traversal_child_ok : Env.t -> Value.t -> Value.t option
(** Validity test for [-->] candidates: fetches; non-null readable
    pointers and non-zero scalars survive (returned fetched), everything
    else terminates that branch ([None]). *)

val chase_hint : Env.t -> Value.t -> Value.t -> unit
(** [chase_hint env w wf] tells the dcache prefetcher a [-->] hop just
    validated: [w] the raw child (its lvalue locates the link field
    inside the node whose scope is innermost), [wf] the fetched pointer.
    Advisory only — no-op without an attached prefetcher, never
    raises. *)

val call_function : Env.t -> string option -> Value.t list -> Value.t
(** Call a target function by name (the lowered callee; [None] — a
    non-name callee — is an error) with already evaluated arguments
    (converted per the function's prototype).  Bumps {!Env.bump_ext}:
    the target may have changed frames or memory. *)

val sum_step : Env.t -> (int64, float) Either.t -> Value.t -> (int64, float) Either.t
(** Accumulate one value into a [+/] sum (switches to float on the first
    floating value). *)

val sum_result : Env.t -> sym:Symbolic.t -> (int64, float) Either.t -> Value.t
