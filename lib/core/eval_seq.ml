module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Dbgi = Duel_dbgi.Dbgi

let no_sym = Symbolic.atom "?"
let sym_on env = env.Env.flags.Env.symbolic

(* Defer all effects into the first pull, so that re-forcing a sequence
   re-evaluates the node from scratch (the paper's state-reset behaviour)
   and so that name lookups see aliases defined by earlier pulls. *)
let delay (f : unit -> Value.t Seq.t) : Value.t Seq.t = fun () -> f () ()

(* Push a scope, keep it for the whole inner sequence, pop it when the
   inner sequence is exhausted (the paper's with). *)
let scoped env scope (inner : unit -> Value.t Seq.t) : Value.t Seq.t =
 fun () ->
  Env.push_scope env scope;
  let rec wrap s () =
    match s () with
    | Seq.Nil ->
        Env.pop_scope env;
        Seq.Nil
    | Seq.Cons (x, tl) -> Seq.Cons (x, wrap tl)
  in
  wrap (inner ()) ()

let int_seq env lo hi : Value.t Seq.t =
  let mk i =
    let sym =
      if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym
    in
    Value.int_value ~sym Ctype.int i
  in
  Seq.unfold
    (fun i -> if Int64.compare i hi > 0 then None else Some (mk i, Int64.add i 1L))
    lo

(* Evaluate a sequence under the scope stack captured at creation time,
   isolated from scopes pushed by sibling subexpressions.  Used for the
   right side of assignments: in [q->scope = scope] the left side's
   with-scope must not capture the right side's [scope] (C semantics). *)
let isolated env (seq : Value.t Seq.t) : Value.t Seq.t =
  let snapshot = ref (Env.stack env) in
  let rec wrap s () =
    let outer = Env.stack env in
    Env.set_stack env !snapshot;
    let result = s () in
    snapshot := Env.stack env;
    Env.set_stack env outer;
    match result with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, tl) -> Seq.Cons (x, wrap tl)
  in
  wrap seq

(* The open range [lo..] is the one generator with no bound of its own,
   so it answers to [expansion_limit] the way runaway loops do: after
   producing [limit] values the next pull reports the limit instead of
   spinning forever.  A fully-consumed bare [1..] must come back as an
   error, never hang the session. *)
let int_seq_from env lo : Value.t Seq.t =
  let mk i =
    let sym =
      if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym
    in
    Value.int_value ~sym Ctype.int i
  in
  Seq.unfold
    (fun i ->
      let limit = env.Env.flags.Env.expansion_limit in
      if limit > 0 && Int64.sub i lo >= Int64.of_int limit then
        Error.failf "open range exceeded %d values (runaway generator?)"
          limit
      else Some (mk i, Int64.add i 1L))
    lo

let rec eval env (e : Ir.expr) : Value.t Seq.t =
  match e with
  | Ir.Lit l -> fun () -> Seq.Cons (l.Ir.l_value, Seq.empty)
  | Ir.Name nm ->
      fun () -> Seq.Cons (Semantics.name_value env nm, Seq.empty)
  | Ir.Underscore ->
      fun () -> Seq.Cons ((Env.current_scope env).Env.sc_value, Seq.empty)
  | Ir.Group inner -> eval env inner
  | Ir.Braces inner ->
      Seq.map
        (fun v ->
          if sym_on env then
            Value.with_sym v (Symbolic.atom (Printer.scalar_literal env v))
          else v)
        (eval env inner)
  | Ir.Unary (op, a) -> Seq.map (Ops.unary env op) (eval env a)
  | Ir.Incdec (op, a) -> Seq.map (Ops.incdec env op) (eval env a)
  | Ir.Binary (op, a, b) -> cross env a b (Ops.binary env op)
  | Ir.Logand (a, b) ->
      Seq.concat_map
        (fun u ->
          if Value.truth env.Env.dbg u then
            Seq.map
              (fun v ->
                if sym_on env then
                  Value.with_sym v
                    (Symbolic.binary Symbolic.prec_logand " && " u.Value.sym
                       v.Value.sym)
                else v)
              (eval env b)
          else Seq.empty)
        (eval env a)
  | Ir.Logor (a, b) ->
      Seq.concat_map
        (fun u ->
          if Value.truth env.Env.dbg u then
            Seq.return (Ops.int_result env ~sym:u.Value.sym 1L)
          else
            Seq.map
              (fun v ->
                if sym_on env then
                  Value.with_sym v
                    (Symbolic.binary Symbolic.prec_logor " || " u.Value.sym
                       v.Value.sym)
                else v)
              (eval env b))
        (eval env a)
  | Ir.Filter (f, a, b) when Ir.pure_single b ->
      Seq.filter
        (fun u -> Ops.filter_holds env f u (Semantics.single env b))
        (eval env a)
  | Ir.Filter (f, a, b) ->
      Seq.concat_map
        (fun u ->
          Seq.filter_map
            (fun v -> if Ops.filter_holds env f u v then Some u else None)
            (eval env b))
        (eval env a)
  | Ir.Cond (c, t, f) ->
      Seq.concat_map
        (fun u ->
          if Value.truth env.Env.dbg u then eval env t else eval env f)
        (eval env c)
  | Ir.Assign (op, l, r) ->
      delay (fun () ->
          let rhs = isolated env (eval env r) in
          Seq.concat_map
            (fun u -> Seq.map (fun v -> Ops.assign env op u v) rhs)
            (eval env l))
  | Ir.Cast (te, cast_text, a) ->
      delay (fun () ->
          let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
          Seq.map
            (fun v ->
              let v' = Value.convert env.Env.dbg t v in
              if sym_on env then
                Value.with_sym v' (Symbolic.unary cast_text v.Value.sym)
              else v')
            (eval env a))
  | Ir.Call (callee, args) ->
      let rec build acc = function
        | [] ->
            Seq.return
              (Semantics.call_function env callee (List.rev acc))
        | a :: rest ->
            Seq.concat_map (fun v -> build (v :: acc) rest) (eval env a)
      in
      delay (fun () -> build [] args)
  | Ir.Index (a, b) -> cross env a b (Ops.index env)
  | Ir.With (kind, lhs, rhs) -> eval_with env kind lhs rhs
  | Ir.To (a, b) ->
      Seq.concat_map
        (fun u ->
          let lo = Value.to_int64 env.Env.dbg u in
          Seq.concat_map
            (fun v -> int_seq env lo (Value.to_int64 env.Env.dbg v))
            (eval env b))
        (eval env a)
  | Ir.To_inf a ->
      Seq.concat_map
        (fun u -> int_seq_from env (Value.to_int64 env.Env.dbg u))
        (eval env a)
  | Ir.Up_to a ->
      Seq.concat_map
        (fun u ->
          int_seq env 0L (Int64.sub (Value.to_int64 env.Env.dbg u) 1L))
        (eval env a)
  | Ir.Alt (a, b) -> Seq.append (eval env a) (eval env b)
  | Ir.Seq (a, b) ->
      delay (fun () ->
          Seq.iter ignore (eval env a);
          eval env b)
  | Ir.Seq_void a ->
      delay (fun () ->
          Seq.iter ignore (eval env a);
          Seq.empty)
  | Ir.Imply (a, b) -> Seq.concat_map (fun _ -> eval env b) (eval env a)
  | Ir.Def_alias (name, a) ->
      Seq.map
        (fun u ->
          Env.define_alias env name u;
          u)
        (eval env a)
  | Ir.Dfs (roots, step) -> eval_expand env ~depth_first:true roots step
  | Ir.Bfs (roots, step) -> eval_expand env ~depth_first:false roots step
  | Ir.Select (a, b) -> eval_select env a b
  | Ir.Until (a, stop) -> eval_until env a stop
  | Ir.Index_alias (a, name) ->
      delay (fun () ->
          let next = ref 0 in
          Seq.map
            (fun u ->
              let i = !next in
              incr next;
              let sym =
                if sym_on env then Symbolic.atom (string_of_int i) else no_sym
              in
              Env.define_alias env name
                (Value.int_value ~sym Ctype.int (Int64.of_int i));
              u)
            (eval env a))
  | Ir.Reduce (r, a, psym) ->
      delay (fun () -> Seq.return (eval_reduce env r a psym))
  | Ir.Seq_eq (a, b) -> delay (fun () -> Seq.return (eval_seq_eq env a b))
  | Ir.If (c, t, f) ->
      Seq.concat_map
        (fun u ->
          if Value.truth env.Env.dbg u then eval env t
          else match f with None -> Seq.empty | Some f -> eval env f)
        (eval env c)
  | Ir.For (init, cond, step, body) -> eval_for env init cond step body
  | Ir.While (cond, body) -> eval_while env cond body
  | Ir.Decl decls ->
      delay (fun () ->
          List.iter (declare env) decls;
          Seq.empty)
  | Ir.Sizeof_expr (a, psym) ->
      delay (fun () ->
          let depth = Env.scope_depth env in
          let first = (eval env a) () in
          let t =
            match first with
            | Seq.Cons (v, _) -> v.Value.typ
            | Seq.Nil -> Error.fail "sizeof of an empty sequence"
          in
          Env.restore_scope_depth env depth;
          let size =
            try Layout.size_of env.Env.dbg.Dbgi.abi t
            with Layout.Incomplete what ->
              Error.failf "sizeof incomplete type %s" what
          in
          let sym = if sym_on env then psym else no_sym in
          Seq.return (Value.int_value ~sym Ctype.ulong (Int64.of_int size)))
  | Ir.Sizeof_type (te, psym) ->
      delay (fun () ->
          let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
          let size =
            try Layout.size_of env.Env.dbg.Dbgi.abi t
            with Layout.Incomplete what ->
              Error.failf "sizeof incomplete type %s" what
          in
          let sym = if sym_on env then psym else no_sym in
          Seq.return (Value.int_value ~sym Ctype.ulong (Int64.of_int size)))
  | Ir.Frame a ->
      Seq.map
        (fun u ->
          let i = Int64.to_int (Value.to_int64 env.Env.dbg u) in
          let sym =
            if sym_on env then Symbolic.atom (Printf.sprintf "frame(%d)" i)
            else no_sym
          in
          Value.int_value ~sym Ctype.int (Int64.of_int i))
        (eval env a)
  | Ir.Frames_gen ->
      delay (fun () ->
          int_seq env 0L (Int64.of_int (Semantics.frame_count env - 1)))

(* The singleton fast path: when the right operand is an effect-free
   single value (a literal, a slotted name, [_]), skip the nested
   sequence machinery and call straight into Ops — [1..N+i] touches the
   resolution cache once per left value and nothing else. *)
and cross env a b f =
  if Ir.pure_single b then
    Seq.map (fun u -> f u (Semantics.single env b)) (eval env a)
  else
    Seq.concat_map
      (fun u -> Seq.map (fun v -> f u v) (eval env b))
      (eval env a)

and eval_int env e =
  let depth = Env.scope_depth env in
  match (eval env e) () with
  | Seq.Cons (v, _) ->
      let i = Value.to_int64 env.Env.dbg v in
      Env.restore_scope_depth env depth;
      i
  | Seq.Nil -> Error.fail "expected a value"

(* e1.e2 / e1->e2, with frame(i) and frames as scope subjects. *)
and eval_with env kind lhs rhs =
  match lhs with
  | Ir.Frame fe ->
      Seq.concat_map
        (fun u ->
          let i = Int64.to_int (Value.to_int64 env.Env.dbg u) in
          scoped env (Semantics.frame_scope env i) (fun () -> eval env rhs))
        (eval env fe)
  | Ir.Frames_gen ->
      delay (fun () ->
          Seq.concat_map
            (fun i ->
              scoped env (Semantics.frame_scope env i) (fun () ->
                  eval env rhs))
            (Seq.init (Semantics.frame_count env) Fun.id))
  | _ ->
      Seq.concat_map
        (fun u ->
          scoped env (Semantics.with_scope env kind u) (fun () ->
              eval env rhs))
        (eval env lhs)

(* --> and -->>.  Children of a node are collected eagerly (the paper
   stacks them before yielding the node) under the node's scope; the
   traversal as a whole stays lazy.  For DFS children are pushed in
   reverse so the first-generated child is visited first (the paper notes
   this). *)
and eval_expand env ~depth_first roots step =
 delay @@ fun () ->
  let limit = env.Env.flags.Env.expansion_limit in
  let visited =
    if env.Env.flags.Env.cycle_detect then Some (Hashtbl.create 64) else None
  in
  let seen_before w =
    match visited with
    | None -> false
    | Some tbl -> (
        match w.Value.st with
        | Value.Rint key ->
            if Hashtbl.mem tbl key then true
            else begin
              Hashtbl.replace tbl key ();
              false
            end
        | _ -> false)
  in
  let children node =
    let scope = Semantics.node_scope env node in
    Env.push_scope env scope;
    let result =
      Seq.fold_left
        (fun acc w ->
          match Semantics.traversal_child_ok env w with
          | Some wf ->
              Semantics.chase_hint env w wf;
              wf :: acc
          | None -> acc)
        [] (eval env step)
    in
    Env.pop_scope env;
    List.rev result
  in
  let count = ref 0 in
  let rec walk work () =
    match work with
    | [] -> Seq.Nil
    | node :: rest ->
        incr count;
        if limit > 0 && !count > limit then
          Error.failf "--> expansion exceeded %d nodes (cycle?)" limit
        else begin
          let kids = List.filter (fun w -> not (seen_before w)) (children node) in
          let work' =
            if depth_first then kids @ rest else rest @ kids
          in
          Seq.Cons (node, walk work')
        end
  in
  Seq.concat_map
    (fun u ->
      match Semantics.traversal_child_ok env u with
      | Some uf -> if seen_before uf then Seq.empty else walk [ uf ]
      | None -> Seq.empty)
    (eval env roots)

(* e1[[e2]]: 0-based selection (see DESIGN.md).  The source sequence is
   materialized incrementally and its pushed scopes are swapped in and out
   around each extension, so partial consumption cannot corrupt the
   name-resolution stack. *)
and eval_select env a b =
  delay (fun () ->
      let buffer = ref [||] in
      let buffered = ref 0 in
      let src = ref (Some (eval env a)) in
      let src_scopes = ref (Env.stack env) in
      let pull () =
        match !src with
        | None -> false
        | Some s ->
            let outer = Env.stack env in
            Env.set_stack env !src_scopes;
            let result =
              match s () with
              | Seq.Nil ->
                  src := None;
                  false
              | Seq.Cons (v, tl) ->
                  src := Some tl;
                  if !buffered >= Array.length !buffer then begin
                    let grown =
                      Array.make (max 16 (2 * Array.length !buffer)) v
                    in
                    Array.blit !buffer 0 grown 0 !buffered;
                    buffer := grown
                  end;
                  !buffer.(!buffered) <- v;
                  incr buffered;
                  true
            in
            src_scopes := Env.stack env;
            Env.set_stack env outer;
            result
      in
      let rec nth n = if n < !buffered then Some !buffer.(n) else if pull () then nth n else None in
      Seq.filter_map
        (fun idx ->
          let n = Int64.to_int (Value.to_int64 env.Env.dbg idx) in
          if n < 0 then None else nth n)
        (eval env b))

(* e1@stop: yield e1's values until the stop condition fires (exclusive).
   A source literal stop compares for equality; any other stop expression
   is evaluated in the scope of the candidate value and stops on any
   non-zero value. *)
and eval_until env a stop =
  delay (fun () ->
      let depth = Env.scope_depth env in
      let stop_lit =
        match stop with
        | Ir.Lit { Ir.l_source = true; l_value } -> Some l_value
        | _ -> None
      in
      let stops u =
        match stop_lit with
        | Some lit -> Ops.values_equal env u lit
        | None ->
            (* restore only to just below the stop scope: the source
               sequence may have its own scopes live on the stack *)
            let stop_depth = Env.scope_depth env in
            (* like the node scope of -->: fields visible through struct
               lvalues and pointers alike *)
            Env.push_scope env (Semantics.node_scope env u);
            let fired =
              Seq.exists (fun v -> Value.truth env.Env.dbg v) (eval env stop)
            in
            Env.restore_scope_depth env stop_depth;
            fired
      in
      let rec go s () =
        match s () with
        | Seq.Nil -> Seq.Nil
        | Seq.Cons (u, tl) ->
            if stops u then begin
              Env.restore_scope_depth env depth;
              Seq.Nil
            end
            else Seq.Cons (u, go tl)
      in
      go (eval env a))

and eval_reduce env r a psym =
  let dbg = env.Env.dbg in
  let depth = Env.scope_depth env in
  let sym = if sym_on env then psym else no_sym in
  let result =
    match r with
    | Ast.Rcount ->
        let n = Seq.fold_left (fun acc _ -> acc + 1) 0 (eval env a) in
        Value.int_value ~sym Ctype.int (Int64.of_int n)
    | Ast.Rsum ->
        let acc =
          Seq.fold_left (Semantics.sum_step env) (Either.Left 0L) (eval env a)
        in
        Semantics.sum_result env ~sym acc
    | Ast.Rall ->
        let ok = Seq.for_all (fun v -> Value.truth dbg v) (eval env a) in
        Value.int_value ~sym Ctype.int (if ok then 1L else 0L)
    | Ast.Rany ->
        let ok = Seq.exists (fun v -> Value.truth dbg v) (eval env a) in
        Value.int_value ~sym Ctype.int (if ok then 1L else 0L)
  in
  Env.restore_scope_depth env depth;
  result

and eval_seq_eq env a b =
  let depth = Env.scope_depth env in
  let da = Seq.to_dispenser (eval env a) in
  let db = Seq.to_dispenser (eval env b) in
  let rec go () =
    match (da (), db ()) with
    | None, None -> true
    | Some _, None | None, Some _ -> false
    | Some u, Some v -> Ops.values_equal env u v && go ()
  in
  let equal = go () in
  Env.restore_scope_depth env depth;
  Ops.int_result env
    ~sym:(if sym_on env then Symbolic.atom (if equal then "1" else "0") else no_sym)
    (if equal then 1L else 0L)

(* The paper's while: all of the condition's values must be non-zero; the
   body's values are produced; then the whole thing repeats.  Iterations
   are bounded by [expansion_limit] — a `while (1) ...` must come back as
   a reported error, not hang the session (same contract as `-->` on a
   cyclic structure). *)
and eval_while env cond body =
  let limit = env.Env.flags.Env.expansion_limit in
  let cond_holds () =
    let depth = Env.scope_depth env in
    let ok = Seq.for_all (fun v -> Value.truth env.Env.dbg v) (eval env cond) in
    Env.restore_scope_depth env depth;
    ok
  in
  fun () ->
    let iters = ref 0 in
    let rec loop () =
      if cond_holds () then begin
        incr iters;
        if limit > 0 && !iters > limit then
          Error.failf "loop exceeded %d iterations (runaway condition?)" limit;
        Seq.append (eval env body) loop ()
      end
      else Seq.Nil
    in
    loop ()

and eval_for env init cond step body =
  let limit = env.Env.flags.Env.expansion_limit in
  let drain = function
    | None -> ()
    | Some e -> Seq.iter ignore (eval env e)
  in
  let cond_holds () =
    match cond with
    | None -> true
    | Some c ->
        let depth = Env.scope_depth env in
        let ok = Seq.for_all (fun v -> Value.truth env.Env.dbg v) (eval env c) in
        Env.restore_scope_depth env depth;
        ok
  in
  fun () ->
    drain init;
    let iters = ref 0 in
    let rec loop () =
      if cond_holds () then begin
        incr iters;
        if limit > 0 && !iters > limit then
          Error.failf "loop exceeded %d iterations (runaway condition?)" limit;
        Seq.append (eval env body) (fun () ->
            drain step;
            loop ())
          ()
      end
      else Seq.Nil
    in
    loop ()

and declare env (name, te) =
  let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
  let size =
    try Layout.size_of env.Env.dbg.Dbgi.abi t
    with Layout.Incomplete what ->
      Error.failf "cannot declare a variable of incomplete type %s" what
  in
  let addr = env.Env.dbg.Dbgi.alloc_space size in
  Env.define_alias env name (Value.lvalue ~sym:(Symbolic.atom name) t addr)
