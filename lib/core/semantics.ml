module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Tenv = Duel_ctype.Tenv
module Dbgi = Duel_dbgi.Dbgi

let no_sym = Symbolic.atom "?"
let sym_on env = env.Env.flags.Env.symbolic

(* --- type resolution ---------------------------------------------------- *)

let base_of_words words =
  let canon = List.sort compare words in
  match canon with
  | [ "void" ] -> Ctype.Void
  | [ "char" ] -> Ctype.char
  | [ "char"; "signed" ] -> Ctype.schar
  | [ "char"; "unsigned" ] -> Ctype.uchar
  | [ "short" ] | [ "int"; "short" ] | [ "short"; "signed" ] | [ "int"; "short"; "signed" ]
    ->
      Ctype.short
  | [ "short"; "unsigned" ] | [ "int"; "short"; "unsigned" ] -> Ctype.ushort
  | [ "int" ] | [ "signed" ] | [ "int"; "signed" ] -> Ctype.int
  | [ "unsigned" ] | [ "int"; "unsigned" ] -> Ctype.uint
  | [ "long" ] | [ "int"; "long" ] | [ "long"; "signed" ] | [ "int"; "long"; "signed" ] ->
      Ctype.long
  | [ "long"; "unsigned" ] | [ "int"; "long"; "unsigned" ] -> Ctype.ulong
  | [ "long"; "long" ] | [ "int"; "long"; "long" ] | [ "long"; "long"; "signed" ]
  | [ "int"; "long"; "long"; "signed" ] ->
      Ctype.llong
  | [ "long"; "long"; "unsigned" ] | [ "int"; "long"; "long"; "unsigned" ] ->
      Ctype.ullong
  | [ "float" ] -> Ctype.float
  | [ "double" ] -> Ctype.double
  | [ "double"; "long" ] -> Ctype.ldouble
  | [ "_Bool" ] -> Ctype.bool
  | words -> Error.failf "invalid type specifier '%s'" (String.concat " " words)

let rec resolve_type env ~eval_int (te : Ir.type_expr) =
  let tenv = env.Env.dbg.Dbgi.tenv in
  match te with
  | Ir.Tready t -> t
  | Ir.Tname words -> base_of_words words
  | Ir.Tstruct_ref tag -> (
      match Tenv.find_struct tenv tag with
      | Some c -> Ctype.Comp c
      | None -> Error.failf "no struct named %s" tag)
  | Ir.Tunion_ref tag -> (
      match Tenv.find_union tenv tag with
      | Some c -> Ctype.Comp c
      | None -> Error.failf "no union named %s" tag)
  | Ir.Tenum_ref tag -> (
      match Tenv.find_enum tenv tag with
      | Some e -> Ctype.Enum e
      | None -> Error.failf "no enum named %s" tag)
  | Ir.Ttypedef_ref name -> (
      match Tenv.find_typedef tenv name with
      | Some t -> t
      | None -> Error.failf "no typedef named %s" name)
  | Ir.Tptr inner -> Ctype.Ptr (resolve_type env ~eval_int inner)
  | Ir.Tarr (inner, dim) ->
      let n = Option.map (fun e -> Int64.to_int (eval_int e)) dim in
      Ctype.Array (resolve_type env ~eval_int inner, n)

(* --- with scopes -------------------------------------------------------- *)

let member_value env ~fi ~addr ~base_sym ~sep name =
  let abi = env.Env.dbg.Dbgi.abi in
  let f = fi.Layout.fi_field in
  let sym =
    if sym_on env then Symbolic.member base_sym sep name else no_sym
  in
  match f.Ctype.f_bits with
  | Some width ->
      Value.make f.Ctype.f_type
        (Value.Lbit
           {
             addr = addr + fi.Layout.fi_offset;
             unit_size = Layout.size_of abi f.Ctype.f_type;
             bit_off = fi.Layout.fi_bit_off;
             width;
           })
        sym
  | None -> Value.lvalue ~sym f.Ctype.f_type (addr + fi.Layout.fi_offset)

let field_value env ~comp ~addr ~base_sym ~sep name =
  let abi = env.Env.dbg.Dbgi.abi in
  match Layout.find_field abi comp name with
  | None -> None
  | Some fi -> Some (member_value env ~fi ~addr ~base_sym ~sep name)

let comp_scope env value comp addr sep =
  {
    Env.sc_value = value;
    sc_lookup =
      (fun name ->
        field_value env ~comp ~addr ~base_sym:value.Value.sym ~sep name);
    sc_comp =
      Some
        {
          Env.ci_comp = comp;
          ci_addr = addr;
          ci_sep = sep;
          ci_sym = value.Value.sym;
        };
  }

let plain_scope value =
  { Env.sc_value = value; sc_lookup = (fun _ -> None); sc_comp = None }

let with_scope env kind u =
  let dbg = env.Env.dbg in
  match kind with
  | Ast.Wdot -> (
      match (u.Value.typ, u.Value.st) with
      | Ctype.Comp c, (Value.Lval addr | Value.Lbit { addr; _ }) ->
          comp_scope env u c addr "."
      | _ -> plain_scope u)
  | Ast.Warrow -> (
      let uf = Value.fetch dbg u in
      match uf.Value.typ with
      | Ctype.Ptr (Ctype.Comp c) -> (
          match uf.Value.st with
          | Value.Rint p -> comp_scope env uf c (Int64.to_int p) "->"
          | _ -> plain_scope uf)
      | Ctype.Ptr _ -> plain_scope uf
      | _ ->
          Error.fail
            ~operand:(Symbolic.to_string uf.Value.sym, Value.describe uf)
            "-> applied to a non-pointer")

let node_scope env u =
  let dbg = env.Env.dbg in
  match (u.Value.typ, u.Value.st) with
  | Ctype.Comp c, (Value.Lval addr | Value.Lbit { addr; _ }) ->
      comp_scope env u c addr "."
  | _ -> (
      let uf = Value.fetch dbg u in
      match (uf.Value.typ, uf.Value.st) with
      | Ctype.Ptr (Ctype.Comp c), Value.Rint p ->
          comp_scope env uf c (Int64.to_int p) "->"
      | _ -> plain_scope uf)

let frame_count env = List.length (env.Env.dbg.Dbgi.frames ())

let frame_scope env i =
  let frames = env.Env.dbg.Dbgi.frames () in
  match List.nth_opt frames i with
  | None -> Error.failf "no active frame %d (of %d)" i (List.length frames)
  | Some fr ->
      let base = Printf.sprintf "frame(%d)" i in
      let value =
        Value.int_value ~sym:(Symbolic.atom base) Ctype.int (Int64.of_int i)
      in
      {
        Env.sc_value = value;
        sc_lookup =
          (fun name ->
            match List.assoc_opt name fr.Dbgi.fr_locals with
            | None -> None
            | Some info ->
                let sym =
                  if sym_on env then
                    Symbolic.member (Symbolic.atom base) "." name
                  else no_sym
                in
                Some (Value.lvalue ~sym info.Dbgi.v_type info.Dbgi.v_addr));
        sc_comp = None;
      }

(* --- lowered name resolution -------------------------------------------- *)

(* The full chain, classifying the result into the node's slot.  Members
   of the innermost scope cache the field layout (rebuilt from the live
   scope subject on each hit); the four stable stages cache their value
   under a generation stamp.  Outer-scope members stay transient: they
   are rare and their validity would need the whole stack compared. *)
let cache_slot env (nm : Ir.name) v =
  nm.Ir.n_slot <- Ir.Scached { c_stamp = Env.stamp env; c_value = v };
  v

let resolve_unscoped env (nm : Ir.name) =
  let name = nm.Ir.n_name in
  match Env.find_alias env name with
  | Some v -> cache_slot env nm (Value.with_sym v (Symbolic.atom name))
  | None -> (
      match Env.frame_local env name with
      | Some v -> cache_slot env nm v
      | None -> (
          match Env.global env name with
          | Some v -> cache_slot env nm v
          | None -> (
              match Env.enum_const env name with
              | Some v -> cache_slot env nm v
              | None -> Error.failf "undefined name %s" name)))

let resolve_name env (nm : Ir.name) =
  let name = nm.Ir.n_name in
  let outer rest =
    match Env.scope_find rest name with
    | Some v ->
        nm.Ir.n_slot <- Ir.Snone;
        v
    | None -> resolve_unscoped env nm
  in
  match env.Env.scopes with
  | [] -> resolve_unscoped env nm
  | sc :: rest -> (
      match sc.Env.sc_comp with
      | Some ci -> (
          match
            Layout.find_field env.Env.dbg.Dbgi.abi ci.Env.ci_comp name
          with
          | Some fi ->
              nm.Ir.n_slot <-
                Ir.Smember { m_comp = ci.Env.ci_comp; m_fi = fi };
              member_value env ~fi ~addr:ci.Env.ci_addr
                ~base_sym:ci.Env.ci_sym ~sep:ci.Env.ci_sep name
          | None -> outer rest)
      | None -> (
          match sc.Env.sc_lookup name with
          | Some v ->
              nm.Ir.n_slot <- Ir.Snone;
              v
          | None -> outer rest))

let name_value env (nm : Ir.name) =
  let ls = env.Env.lstats in
  match nm.Ir.n_slot with
  | Ir.Sdynamic ->
      ls.Env.l_dynamic <- ls.Env.l_dynamic + 1;
      Env.lookup env nm.Ir.n_name
  | Ir.Snone ->
      ls.Env.l_misses <- ls.Env.l_misses + 1;
      resolve_name env nm
  | Ir.Smember { m_comp; m_fi } -> (
      match env.Env.scopes with
      | { Env.sc_comp = Some ci; _ } :: _ when ci.Env.ci_comp == m_comp ->
          ls.Env.l_hits <- ls.Env.l_hits + 1;
          member_value env ~fi:m_fi ~addr:ci.Env.ci_addr
            ~base_sym:ci.Env.ci_sym ~sep:ci.Env.ci_sep nm.Ir.n_name
      | _ ->
          ls.Env.l_misses <- ls.Env.l_misses + 1;
          ls.Env.l_stale <- ls.Env.l_stale + 1;
          resolve_name env nm)
  | Ir.Scached { c_stamp; c_value } ->
      if Env.stamp_valid env c_stamp then begin
        ls.Env.l_hits <- ls.Env.l_hits + 1;
        c_value
      end
      else begin
        ls.Env.l_misses <- ls.Env.l_misses + 1;
        ls.Env.l_stale <- ls.Env.l_stale + 1;
        resolve_name env nm
      end

(* Effect-free singleton operands (Ir.pure_single): evaluated with a
   direct call instead of a nested generator. *)
let rec single env (e : Ir.expr) =
  match e with
  | Ir.Lit l -> l.Ir.l_value
  | Ir.Name nm -> name_value env nm
  | Ir.Underscore -> (Env.current_scope env).Env.sc_value
  | Ir.Group inner -> single env inner
  | _ -> invalid_arg "Semantics.single: not a pure singleton"

(* --- traversal ---------------------------------------------------------- *)

let traversal_child_ok env w =
  let dbg = env.Env.dbg in
  match Value.fetch dbg w with
  | wf -> (
      match (wf.Value.st, wf.Value.typ) with
      | Value.Rint 0L, _ -> None
      | Value.Rint p, Ctype.Ptr t ->
          let len =
            match Layout.size_of dbg.Dbgi.abi t with
            | n -> n
            | exception Layout.Incomplete _ -> 1
          in
          if Dbgi.readable dbg ~addr:(Int64.to_int p) ~len then Some wf
          else None
      | Value.Rint _, _ -> Some wf
      | Value.Rfloat f, _ -> if f = 0.0 then None else Some wf
      | (Value.Lval _ | Value.Lbit _), _ -> Some wf)
  | exception Error.Duel_error _ -> None

(* Feed the dcache prefetcher after a hop validates: [w] is the raw
   child the traversal step produced (an lvalue when it came off a
   member like [-->next]), [wf] the fetched pointer.  The innermost
   scope is the node being expanded, so the link field's offset inside a
   node is the member's address minus the node base — exactly what the
   predictor needs to walk the chain ahead of the engine.  Purely
   advisory: no-op without an attached prefetcher, never raises. *)
let chase_hint env w wf =
  match env.Env.scopes with
  | { Env.sc_comp = Some ci; _ } :: _ -> (
      match (w.Value.st, wf.Value.st, wf.Value.typ) with
      | Value.Lval la, Value.Rint p, Ctype.Ptr t when p <> 0L ->
          let link_offset = la - ci.Env.ci_addr in
          if link_offset >= 0 then begin
            let dbg = env.Env.dbg in
            let width =
              match Layout.size_of dbg.Dbgi.abi t with
              | n -> n
              | exception Layout.Incomplete _ -> 1
            in
            Duel_dbgi.Prefetch.hint_chase dbg ~link_offset ~width
              ~target:(Int64.to_int p)
          end
      | _ -> ())
  | _ -> ()

(* --- calls -------------------------------------------------------------- *)

let default_promote env v =
  let dbg = env.Env.dbg in
  let v = Value.fetch dbg v in
  match v.Value.typ with
  | Ctype.Floating Ctype.Float -> Value.convert dbg Ctype.double v
  | t -> (
      match Ctype.integer_kind t with
      | Some k ->
          let pk = Ctype.promote_ikind dbg.Dbgi.abi k in
          if pk = k then v else Value.convert dbg (Ctype.Integer pk) v
      | None -> v)

let call_function env callee args =
  let dbg = env.Env.dbg in
  let name =
    match callee with
    | Some n -> n
    | None -> Error.fail "only named functions can be called"
  in
  let ftype =
    match dbg.Dbgi.find_variable name with
    | Some { Dbgi.v_type = Ctype.Func ft; _ } -> Some ft
    | Some { Dbgi.v_type = Ctype.Ptr (Ctype.Func ft); _ } -> Some ft
    | _ -> None
  in
  let converted =
    match ftype with
    | None -> List.map (default_promote env) args
    | Some ft ->
        let rec conv params args =
          match (params, args) with
          | _, [] -> []
          | [], rest -> List.map (default_promote env) rest
          | p :: ps, a :: rest ->
              Value.convert dbg (Ctype.decay p) a :: conv ps rest
        in
        conv ft.Ctype.params args
  in
  let cvals = List.map (Value.to_cval dbg) converted in
  let result =
    try dbg.Dbgi.call_func name cvals
    with Failure msg -> Error.fail msg
  in
  (* the target ran: frames may have come and gone, memory moved *)
  Env.bump_ext env;
  let sym =
    if sym_on env then
      Symbolic.postfix (Symbolic.atom name)
        ("("
        ^ String.concat ", "
            (List.map (fun a -> Symbolic.to_string a.Value.sym) args)
        ^ ")")
    else no_sym
  in
  Value.of_cval result sym

(* --- reductions --------------------------------------------------------- *)

let sum_step env acc v =
  let dbg = env.Env.dbg in
  let vf = Value.fetch dbg v in
  match (acc, vf.Value.st) with
  | Either.Left i, Value.Rint j -> Either.Left (Int64.add i j)
  | Either.Left i, Value.Rfloat f -> Either.Right (Int64.to_float i +. f)
  | Either.Right f, _ -> Either.Right (f +. Value.to_float dbg vf)
  | Either.Left _, (Value.Lval _ | Value.Lbit _) ->
      Error.fail
        ~operand:(Symbolic.to_string v.Value.sym, Value.describe v)
        "+/ requires scalar values"

let sum_result _env ~sym = function
  | Either.Left i -> Value.int_value ~sym Ctype.long i
  | Either.Right f -> Value.float_value ~sym Ctype.double f
