(** The compiled form of a DUEL command: a flat instruction array with a
    constant pool.

    {!Compile} translates {!Ir.expr} into one of these; {!Vm} executes
    it.  Every generator subexpression becomes a {e region} — a
    contiguous run of instructions entered through {!program.entries} —
    executed in its own heap-allocated resumption frame, so a suspended
    traversal is a plain value (see {!Vm.frame}).  Sub-generators are
    wired with [Ispawn]/[Iresume]; anything the compiler does not handle
    natively falls back to an {!Eval_seq} dispenser via [Ifallback],
    which keeps the reference semantics bit-for-bit on the long tail.

    Superinstructions cover the hot shapes the benches expose: binary /
    index / filter ops whose right operand is {!Ir.pure_single} take an
    inline {!operand} instead of a nested region; [-->]-chase with a
    single-name step runs as one [Ichase] generator pulling child
    pointers straight through {!Semantics.name_value} (and so the data
    cache); [..] ranges iterate in integer registers ([Irange_next]);
    and [#/]-style reductions over pure ranges fold entirely inside the
    VM ([Ireduce_to]/[Ireduce_upto]) so the accumulator never
    materializes as a sequence. *)

(** An inline operand for superinstructions — the compiled form of an
    {!Ir.pure_single} expression (evaluated exactly like
    {!Semantics.single}). *)
type operand =
  | Oreg of int  (** a value register *)
  | Oconst of int  (** index into {!program.consts} *)
  | Oname of int  (** index into {!program.names}: resolved through slots *)
  | Ounder  (** [_]: the innermost scope's subject *)

type insn =
  (* straight-line value ops (registers are per-activation) *)
  | Iload of int * operand  (** dst <- operand *)
  | Iunary of Ast.unop * int * int  (** dst <- op src *)
  | Iincdec of Ast.incdec * int * int
  | Ibraces of int * int  (** dst <- src with literal symbolic *)
  | Ibinary of Ast.binop * int * int * operand  (** dst <- lhs op operand *)
  | Iindex of int * int * operand  (** dst <- lhs[operand] *)
  | Ilogand_sym of int * int * int  (** dst <- v under [u && v] symbolic *)
  | Ilogor_sym of int * int * int  (** dst <- v under [u || v] symbolic *)
  | Ilogor_true of int * int  (** dst <- 1 carrying u's symbolic *)
  | Idef_alias of int * int  (** strs index, src: [name := src] *)
  | Iindex_alias of int * int  (** strs index, counter ireg: [e # name] *)
  | Ipush_with of Ast.with_kind * int  (** push [with]-scope over src *)
  | Ipop_scope
  (* integer registers: range generators and counters *)
  | Ito_int of int * int  (** ireg dst <- to_int64 src *)
  | Iiconst of int * int64
  | Iiadd of int * int64
  | Iimov of int * int  (** ireg dst <- ireg src *)
  | Irange_next of int * int * int * int
      (** dst, cur, hi, exhaust pc: yield machinery for [lo..hi] *)
  | Irange_from of int * int * int
      (** dst, cur, start: [lo..] never exhausts on its own — the VM
          bounds [cur - start] by [expansion_limit] *)
  (* control *)
  | Ijmp of int
  | Itruth of int * int  (** fall through if truthy, else jump *)
  | Ifilter of Ast.filter * int * operand * int
      (** fall through if [u op? operand] holds, else jump *)
  (* generators *)
  | Ispawn of int * int  (** gen slot <- fresh frame for region id *)
  | Ifallback of int * int
      (** gen slot <- {!Eval_seq} dispenser over {!program.irs} entry *)
  | Ichase of int * int * operand * bool
      (** gen slot, roots gen slot, step operand, depth-first? — the
          fused [-->]-with-single-step traversal *)
  | Iresume of int * int * int  (** dst <- next value of gen, else jump *)
  | Ireduce of int * Ast.reduction * int * int
      (** dst, reduction, gen slot, sym index: drain and fold in the VM *)
  | Ireduce_to of int * Ast.reduction * operand * operand * int
      (** dst <- reduction over [lo..hi], both operands pure: the fully
          fused loop — the accumulator never leaves an int64 *)
  | Ireduce_upto of int * Ast.reduction * operand * int
      (** dst <- reduction over [0..op-1] *)
  | Iyield of int  (** suspend the frame, producing a value *)
  | Ihalt  (** region exhausted (sticky) *)

type program = {
  insns : insn array;
  entries : int array;  (** region id -> entry pc; region 0 is the root *)
  consts : Value.t array;  (** literal pool (Lower's interned values) *)
  names : Ir.name array;  (** shared slot records: the inline name cache *)
  strs : string array;  (** alias names *)
  syms : Symbolic.t array;  (** precomputed reduction symbolics *)
  irs : Ir.expr array;  (** fallback subtrees, evaluated by {!Eval_seq} *)
  nregs : int;
  niregs : int;
  ngens : int;
  quiet : bool;  (** [;]-terminated command: values not displayed *)
}

(** Share the immutable parts (instructions, constants, symbolics),
    refresh the mutable ones: name-slot records are stamped against one
    {!Env}, so a program cached across sessions must hand each user its
    own copies ({!Ir.clone_name}), including the names buried in
    fallback subtrees. *)
let clone p =
  {
    p with
    names = Array.map Ir.clone_name p.names;
    irs = Array.map Ir.clone p.irs;
  }
