module Ctype = Duel_ctype.Ctype

type mode = Cached | Dynamic

let slot_of = function Cached -> Ir.Snone | Dynamic -> Ir.Sdynamic

(* Literal values are built once, here.  String literals are interned
   into target space at lowering time (the intern table makes this
   idempotent), so evaluation never allocates. *)
let lit_value env (e : Ast.expr) =
  match e with
  | Ast.Int_lit (v, t, lex) ->
      Some (Value.int_value ~sym:(Symbolic.atom lex) t v)
  | Ast.Float_lit (v, t, lex) ->
      Some (Value.float_value ~sym:(Symbolic.atom lex) t v)
  | Ast.Char_lit (c, lex) ->
      Some
        (Value.int_value ~sym:(Symbolic.atom lex) Ctype.char
           (Int64.of_int (Char.code c)))
  | Ast.Str_lit s ->
      let addr = Env.string_literal env s in
      Some
        (Value.lvalue
           ~sym:(Symbolic.atom (Printf.sprintf "%S" s))
           (Ctype.Array (Ctype.char, Some (String.length s + 1)))
           addr)
  | _ -> None

(* A lowered operand usable for constant folding: a literal, possibly
   parenthesized.  Folding through Group is sound — Group changes
   neither value nor symbolic. *)
let rec folded_lit (e : Ir.expr) =
  match e with
  | Ir.Lit l -> Some l.Ir.l_value
  | Ir.Group inner -> folded_lit inner
  | _ -> None

(* Foldable operand: a scalar rvalue literal.  Lvalue literals (interned
   strings) are excluded — folding over them could read target memory at
   lowering time, and a store earlier in the same command must be seen. *)
let scalar_lit e =
  match folded_lit e with
  | Some ({ Value.st = Value.Rint _ | Value.Rfloat _; _ } as v) -> Some v
  | _ -> None

let rec const_int (e : Ir.expr) =
  match e with
  | Ir.Lit { Ir.l_value = { Value.st = Value.Rint i; _ }; _ } -> Some i
  | Ir.Group inner -> const_int inner
  | _ -> None

let rec const_dims_only (te : Ir.type_expr) =
  match te with
  | Ir.Tready _ | Ir.Tname _ | Ir.Tstruct_ref _ | Ir.Tunion_ref _
  | Ir.Tenum_ref _ | Ir.Ttypedef_ref _ ->
      true
  | Ir.Tptr t -> const_dims_only t
  | Ir.Tarr (t, None) -> const_dims_only t
  | Ir.Tarr (t, Some d) -> const_int d <> None && const_dims_only t

(* Pre-resolve a type whose dimensions are all constant; on failure
   (unknown tag, incomplete type) keep the syntactic form so the error
   surfaces at evaluation time, exactly where the unlowered tree raised
   it — lowering itself never fails. *)
let finalize_type env (te : Ir.type_expr) =
  if const_dims_only te then
    match
      Semantics.resolve_type env
        ~eval_int:(fun e ->
          match const_int e with Some i -> i | None -> assert false)
        te
    with
    | t -> Ir.Tready t
    | exception Error.Duel_error _ -> te
  else te

let rec lower_expr env mode (e : Ast.expr) : Ir.expr =
  let go e = lower_expr env mode e in
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Char_lit _ | Ast.Str_lit _ -> (
      match lit_value env e with
      | Some v -> Ir.Lit { Ir.l_value = v; l_source = true }
      | None -> assert false)
  | Ast.Name n -> Ir.Name { Ir.n_name = n; n_slot = slot_of mode }
  | Ast.Underscore -> Ir.Underscore
  | Ast.Unary (op, a) -> (
      let a' = go a in
      match scalar_lit a' with
      | Some v -> (
          (* fold only when the operator succeeds now; a failing fold
             (e.g. [&3]) falls back so the error stays lazy *)
          match Ops.unary env op v with
          | r -> Ir.Lit { Ir.l_value = r; l_source = false }
          | exception Error.Duel_error _ -> Ir.Unary (op, a'))
      | None -> Ir.Unary (op, a'))
  | Ast.Incdec (op, a) -> Ir.Incdec (op, go a)
  | Ast.Binary (op, a, b) -> (
      let a' = go a and b' = go b in
      match (scalar_lit a', scalar_lit b') with
      | Some u, Some v -> (
          match Ops.binary env op u v with
          | r -> Ir.Lit { Ir.l_value = r; l_source = false }
          | exception Error.Duel_error _ -> Ir.Binary (op, a', b'))
      | _ -> Ir.Binary (op, a', b'))
  | Ast.Logand (a, b) -> Ir.Logand (go a, go b)
  | Ast.Logor (a, b) -> Ir.Logor (go a, go b)
  | Ast.Filter (f, a, b) -> Ir.Filter (f, go a, go b)
  | Ast.Cond (c, t, f) -> Ir.Cond (go c, go t, go f)
  | Ast.Assign (op, l, r) -> Ir.Assign (op, go l, go r)
  | Ast.Cast (te, a) ->
      Ir.Cast
        ( lower_type_expr env mode te,
          "(" ^ Pretty.type_to_string te ^ ")",
          go a )
  | Ast.Call (callee, args) ->
      let name = match callee with Ast.Name n -> Some n | _ -> None in
      Ir.Call (name, List.map go args)
  | Ast.Index (a, b) -> Ir.Index (go a, go b)
  | Ast.With (kind, lhs, rhs) -> Ir.With (kind, go lhs, go rhs)
  | Ast.To (a, b) -> Ir.To (go a, go b)
  | Ast.To_inf a -> Ir.To_inf (go a)
  | Ast.Up_to a -> Ir.Up_to (go a)
  | Ast.Alt (a, b) -> Ir.Alt (go a, go b)
  | Ast.Seq (a, b) -> Ir.Seq (go a, go b)
  | Ast.Seq_void a -> Ir.Seq_void (go a)
  | Ast.Imply (a, b) -> Ir.Imply (go a, go b)
  | Ast.Def_alias (name, a) -> Ir.Def_alias (name, go a)
  | Ast.Dfs (roots, step) -> Ir.Dfs (go roots, go step)
  | Ast.Bfs (roots, step) -> Ir.Bfs (go roots, go step)
  | Ast.Select (a, b) -> Ir.Select (go a, go b)
  | Ast.Until (a, stop) -> Ir.Until (go a, go stop)
  | Ast.Index_alias (a, name) -> Ir.Index_alias (go a, name)
  | Ast.Reduce (r, a) ->
      Ir.Reduce (r, go a, Symbolic.atom (Pretty.to_string e))
  | Ast.Seq_eq (a, b) -> Ir.Seq_eq (go a, go b)
  | Ast.Braces a -> Ir.Braces (go a)
  | Ast.Group a -> Ir.Group (go a)
  | Ast.If (c, t, f) -> Ir.If (go c, go t, Option.map go f)
  | Ast.For (init, cond, step, body) ->
      Ir.For (Option.map go init, Option.map go cond, Option.map go step, go body)
  | Ast.While (cond, body) -> Ir.While (go cond, go body)
  | Ast.Decl (_base, decls) ->
      (* each declarator's type already embeds the base specifier *)
      Ir.Decl
        (List.map (fun (n, te) -> (n, lower_type_expr env mode te)) decls)
  | Ast.Sizeof_expr a ->
      Ir.Sizeof_expr (go a, Symbolic.atom (Pretty.to_string e))
  | Ast.Sizeof_type te ->
      Ir.Sizeof_type
        (lower_type_expr env mode te, Symbolic.atom (Pretty.to_string e))
  | Ast.Frame a -> Ir.Frame (go a)
  | Ast.Frames_gen -> Ir.Frames_gen

and lower_type_expr env mode (te : Ast.type_expr) : Ir.type_expr =
  let lowered =
    let rec syn te =
      match te with
      | Ast.Tname w -> Ir.Tname w
      | Ast.Tstruct_ref s -> Ir.Tstruct_ref s
      | Ast.Tunion_ref s -> Ir.Tunion_ref s
      | Ast.Tenum_ref s -> Ir.Tenum_ref s
      | Ast.Ttypedef_ref s -> Ir.Ttypedef_ref s
      | Ast.Tptr t -> Ir.Tptr (syn t)
      | Ast.Tarr (t, dim) ->
          Ir.Tarr (syn t, Option.map (lower_expr env mode) dim)
    in
    syn te
  in
  finalize_type env lowered

let lower ?(mode = Cached) env ast = lower_expr env mode ast
let lower_type ?(mode = Cached) env te = lower_type_expr env mode te
