module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Dbgi = Duel_dbgi.Dbgi

type storage =
  | Rint of int64
  | Rfloat of float
  | Lval of int
  | Lbit of { addr : int; unit_size : int; bit_off : int; width : int }

type t = { typ : Ctype.t; st : storage; sym : Symbolic.t }

let make typ st sym = { typ; st; sym }
let with_sym v sym = { v with sym }

let default_sym = Symbolic.atom "?"

let int_value ?(sym = default_sym) typ v = { typ; st = Rint v; sym }
let float_value ?(sym = default_sym) typ v = { typ; st = Rfloat v; sym }
let lvalue ?(sym = default_sym) typ addr = { typ; st = Lval addr; sym }
let is_lvalue v = match v.st with Lval _ | Lbit _ -> true | Rint _ | Rfloat _ -> false

let describe v =
  match v.st with
  | Rint i -> (
      match v.typ with
      | Ctype.Ptr _ -> Printf.sprintf "0x%Lx" i
      | _ -> Int64.to_string i)
  | Rfloat f -> Printf.sprintf "%g" f
  | Lval a -> Printf.sprintf "lvalue 0x%x" a
  | Lbit b -> Printf.sprintf "bit-field lvalue 0x%x" b.addr

let addr_of v =
  match v.st with
  | Lval a -> a
  | Lbit b -> b.addr
  | Rint _ | Rfloat _ ->
      Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
        "not an lvalue"

let memory_error v addr =
  Error.fail
    ~operand:(Symbolic.to_string v.sym, Printf.sprintf "lvalue 0x%x" addr)
    "Illegal memory reference"

(* Integer access via the interface scalar helpers, with faults rephrased
   as the paper's "Illegal memory reference" carrying symbolic context. *)
let read_scalar dbg v ~addr ~size ~signed =
  try Dbgi.read_scalar dbg ~addr ~size ~signed
  with Dbgi.Target_fault { addr = a; _ } -> memory_error v a

let write_scalar dbg v ~addr ~size value =
  try Dbgi.write_scalar dbg ~addr ~size value
  with Dbgi.Target_fault { addr = a; _ } -> memory_error v a

let size_of dbg typ =
  try Layout.size_of dbg.Dbgi.abi typ
  with Layout.Incomplete what ->
    Error.failf "size of incomplete type %s" what

let fetch dbg v =
  match v.st with
  | Rint _ | Rfloat _ -> (
      match v.typ with
      | Ctype.Array (elt, _) -> { v with typ = Ctype.Ptr elt }
      | _ -> v)
  | Lbit b ->
      let abi = dbg.Dbgi.abi in
      let signed =
        match Ctype.integer_kind v.typ with
        | Some k -> Ctype.ikind_signed abi k
        | None -> false
      in
      let unit_v =
        read_scalar dbg v ~addr:b.addr ~size:b.unit_size ~signed:false
      in
      let off =
        match abi.Duel_ctype.Abi.endian with
        | Duel_ctype.Abi.Little -> b.bit_off
        | Duel_ctype.Abi.Big -> (b.unit_size * 8) - b.bit_off - b.width
      in
      let mask =
        if b.width >= 64 then -1L
        else Int64.sub (Int64.shift_left 1L b.width) 1L
      in
      let raw = Int64.logand (Int64.shift_right_logical unit_v off) mask in
      let value =
        if signed && b.width < 64
           && Int64.logand raw (Int64.shift_left 1L (b.width - 1)) <> 0L
        then Int64.logor raw (Int64.lognot mask)
        else raw
      in
      { v with st = Rint value }
  | Lval addr -> (
      match v.typ with
      | Ctype.Integer k ->
          let abi = dbg.Dbgi.abi in
          let size = Ctype.ikind_size abi k in
          let signed = Ctype.ikind_signed abi k in
          { v with st = Rint (read_scalar dbg v ~addr ~size ~signed) }
      | Ctype.Enum _ ->
          let abi = dbg.Dbgi.abi in
          let size = abi.Duel_ctype.Abi.int_size in
          { v with st = Rint (read_scalar dbg v ~addr ~size ~signed:true) }
      | Ctype.Ptr _ ->
          let size = dbg.Dbgi.abi.Duel_ctype.Abi.ptr_size in
          { v with st = Rint (read_scalar dbg v ~addr ~size ~signed:false) }
      | Ctype.Floating k ->
          let abi = dbg.Dbgi.abi in
          let size = Ctype.fkind_size abi k in
          let bits =
            read_scalar dbg v ~addr ~size:(min size 8) ~signed:false
          in
          let f =
            if size = 4 then Int32.float_of_bits (Int64.to_int32 bits)
            else Int64.float_of_bits bits
          in
          { v with st = Rfloat f }
      | Ctype.Array (elt, _) ->
          (* array-to-pointer decay: the lvalue's address becomes the
             pointer rvalue *)
          { v with typ = Ctype.Ptr elt; st = Rint (Int64.of_int addr) }
      | Ctype.Func _ | Ctype.Comp _ -> v
      | Ctype.Void ->
          Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
            "cannot fetch a void value")

let to_int64 dbg v =
  let v = fetch dbg v in
  match v.st with
  | Rint i -> i
  | Rfloat f -> Int64.of_float f
  | Lval _ | Lbit _ ->
      Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
        "expected a scalar value"

let to_float dbg v =
  let v = fetch dbg v in
  match (v.st, v.typ) with
  | Rfloat f, _ -> f
  | Rint i, typ -> (
      match Ctype.integer_kind typ with
      | Some k when not (Ctype.ikind_signed dbg.Dbgi.abi k) ->
          if Int64.compare i 0L >= 0 then Int64.to_float i
          else Int64.to_float i +. 18446744073709551616.0
      | _ -> Int64.to_float i)
  | (Lval _ | Lbit _), _ ->
      Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
        "expected a scalar value"

let truth dbg v =
  let v = fetch dbg v in
  match v.st with
  | Rint i -> i <> 0L
  | Rfloat f -> f <> 0.0
  | Lval _ | Lbit _ ->
      Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
        "expected a scalar condition"

let convert dbg target v =
  let v = fetch dbg v in
  let abi = dbg.Dbgi.abi in
  match target with
  | Ctype.Integer k ->
      let raw =
        match v.st with
        | Rint i -> i
        | Rfloat f -> Int64.of_float f
        | Lval _ | Lbit _ ->
            Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
              "cannot convert aggregate to integer"
      in
      { typ = target; st = Rint (Ctype.normalize abi k raw); sym = v.sym }
  | Ctype.Enum _ ->
      let raw =
        match v.st with
        | Rint i -> i
        | Rfloat f -> Int64.of_float f
        | Lval _ | Lbit _ ->
            Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
              "cannot convert aggregate to enum"
      in
      { typ = target; st = Rint (Ctype.normalize abi Ctype.Int raw); sym = v.sym }
  | Ctype.Floating k ->
      let f =
        match v.st with
        | Rfloat f -> f
        | Rint _ -> to_float dbg v
        | Lval _ | Lbit _ ->
            Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
              "cannot convert aggregate to floating"
      in
      let f = if k = Ctype.Float then Int32.float_of_bits (Int32.bits_of_float f) else f in
      { typ = target; st = Rfloat f; sym = v.sym }
  | Ctype.Ptr _ ->
      let raw =
        match v.st with
        | Rint i -> i
        | Rfloat _ ->
            Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
              "cannot convert floating to pointer"
        | Lval _ | Lbit _ ->
            Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
              "cannot convert aggregate to pointer"
      in
      { typ = target; st = Rint raw; sym = v.sym }
  | Ctype.Void -> { typ = target; st = Rint 0L; sym = v.sym }
  | Ctype.Array _ | Ctype.Func _ | Ctype.Comp _ ->
      Error.failf "cannot cast to %s" (Duel_ctype.Cprint.to_string target)

let store dbg ~into rhs =
  let abi = dbg.Dbgi.abi in
  match (into.st, into.typ) with
  | Lbit b, typ ->
      let v = convert dbg (Ctype.Integer Ctype.LLong) rhs in
      let raw = match v.st with Rint i -> i | _ -> assert false in
      let unit_v =
        read_scalar dbg into ~addr:b.addr ~size:b.unit_size ~signed:false
      in
      let off =
        match abi.Duel_ctype.Abi.endian with
        | Duel_ctype.Abi.Little -> b.bit_off
        | Duel_ctype.Abi.Big -> (b.unit_size * 8) - b.bit_off - b.width
      in
      let mask =
        if b.width >= 64 then -1L
        else Int64.sub (Int64.shift_left 1L b.width) 1L
      in
      let cleared =
        Int64.logand unit_v (Int64.lognot (Int64.shift_left mask off))
      in
      let inserted = Int64.shift_left (Int64.logand raw mask) off in
      write_scalar dbg into ~addr:b.addr ~size:b.unit_size
        (Int64.logor cleared inserted);
      let normalized =
        match Ctype.integer_kind typ with
        | Some k when Ctype.ikind_signed abi k && b.width < 64 ->
            let sign_bit = Int64.shift_left 1L (b.width - 1) in
            let masked = Int64.logand raw mask in
            if Int64.logand masked sign_bit <> 0L then
              Int64.logor masked (Int64.lognot mask)
            else masked
        | _ -> Int64.logand raw mask
      in
      { typ; st = Rint normalized; sym = into.sym }
  | Lval addr, (Ctype.Comp c as typ) -> (
      (* struct assignment: byte copy of equal composite types *)
      let rhs = if is_lvalue rhs then rhs else fetch dbg rhs in
      match (rhs.st, rhs.typ) with
      | Lval src, Ctype.Comp c2 when c.Ctype.comp_id = c2.Ctype.comp_id ->
          let size = size_of dbg typ in
          let data =
            try dbg.Dbgi.get_bytes ~addr:src ~len:size
            with Dbgi.Target_fault { addr = a; _ } -> memory_error rhs a
          in
          (try dbg.Dbgi.put_bytes ~addr data
           with Dbgi.Target_fault { addr = a; _ } -> memory_error into a);
          { into with sym = into.sym }
      | _ ->
          Error.fail ~operand:(Symbolic.to_string rhs.sym, describe rhs)
            "incompatible struct assignment")
  | Lval addr, typ -> (
      let v = convert dbg typ rhs in
      match (v.st, typ) with
      | Rint i, Ctype.Integer k ->
          write_scalar dbg into ~addr ~size:(Ctype.ikind_size abi k) i;
          { typ; st = Rint i; sym = into.sym }
      | Rint i, Ctype.Enum _ ->
          write_scalar dbg into ~addr ~size:abi.Duel_ctype.Abi.int_size i;
          { typ; st = Rint i; sym = into.sym }
      | Rint i, Ctype.Ptr _ ->
          write_scalar dbg into ~addr ~size:abi.Duel_ctype.Abi.ptr_size i;
          { typ; st = Rint i; sym = into.sym }
      | Rfloat f, Ctype.Floating k ->
          let size = Ctype.fkind_size abi k in
          let bits =
            if size = 4 then Int64.of_int32 (Int32.bits_of_float f)
            else Int64.bits_of_float f
          in
          write_scalar dbg into ~addr ~size:(min size 8) bits;
          if size = 16 then write_scalar dbg into ~addr:(addr + 8) ~size:8 0L;
          { typ; st = Rfloat f; sym = into.sym }
      | _ ->
          Error.fail ~operand:(Symbolic.to_string into.sym, describe into)
            "unsupported assignment target type")
  | (Rint _ | Rfloat _), _ ->
      Error.fail ~operand:(Symbolic.to_string into.sym, describe into)
        "assignment target is not an lvalue"

let to_cval dbg v =
  let v = fetch dbg v in
  match v.st with
  | Rint i -> Dbgi.Cint (v.typ, i)
  | Rfloat f -> Dbgi.Cfloat (v.typ, f)
  | Lval _ | Lbit _ ->
      Error.fail ~operand:(Symbolic.to_string v.sym, describe v)
        "cannot pass aggregates to target functions"

let of_cval cv sym =
  match cv with
  | Dbgi.Cint (t, i) -> { typ = t; st = Rint i; sym }
  | Dbgi.Cfloat (t, f) -> { typ = t; st = Rfloat f; sym }
