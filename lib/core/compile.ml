(* The IR -> bytecode compiler.

   Every generator subexpression becomes a region on a worklist; the
   emitted code for a composite node is a resume loop over its
   children's regions (or over inline operands when a child is
   pure_single — the superinstruction forms).  Register, integer
   register and generator-slot numbering is monotonic across the whole
   program: at most one activation of a region is live at a time within
   one program activation (lazy sequences are consumed sequentially and
   the IR is a tree, so a region can never be re-entered while
   suspended), which lets every frame share the activation's flat
   register file.

   Anything outside the native set compiles to [Ifallback]: the VM runs
   the subtree through an [Eval_seq] dispenser, inheriting the reference
   semantics — including error text and effect order — exactly. *)

module B = Bytecode

type builder = {
  mutable code : B.insn array;
  mutable len : int;
  mutable regions : (int * Ir.expr) list;  (* pending worklist *)
  mutable entries : (int * int) list;  (* region id -> entry pc *)
  mutable nregions : int;
  mutable consts : Value.t list;  (* reversed pools *)
  mutable nconsts : int;
  mutable names : Ir.name list;
  mutable nnames : int;
  mutable strs : string list;
  mutable nstrs : int;
  mutable syms : Symbolic.t list;
  mutable nsyms : int;
  mutable irs : Ir.expr list;
  mutable nirs : int;
  mutable nregs : int;
  mutable niregs : int;
  mutable ngens : int;
}

let emit c i =
  if c.len = Array.length c.code then begin
    let grown = Array.make (max 64 (2 * c.len)) B.Ihalt in
    Array.blit c.code 0 grown 0 c.len;
    c.code <- grown
  end;
  c.code.(c.len) <- i;
  c.len <- c.len + 1;
  c.len - 1

let reg c =
  c.nregs <- c.nregs + 1;
  c.nregs - 1

let ireg c =
  c.niregs <- c.niregs + 1;
  c.niregs - 1

let gen_slot c =
  c.ngens <- c.ngens + 1;
  c.ngens - 1

let const_ix c v =
  c.nconsts <- c.nconsts + 1;
  c.consts <- v :: c.consts;
  c.nconsts - 1

let name_ix c nm =
  c.nnames <- c.nnames + 1;
  c.names <- nm :: c.names;
  c.nnames - 1

let str_ix c s =
  c.nstrs <- c.nstrs + 1;
  c.strs <- s :: c.strs;
  c.nstrs - 1

let sym_ix c s =
  c.nsyms <- c.nsyms + 1;
  c.syms <- s :: c.syms;
  c.nsyms - 1

let ir_ix c e =
  c.nirs <- c.nirs + 1;
  c.irs <- e :: c.irs;
  c.nirs - 1

(* Forward jump targets: emit with a placeholder, record how to rebuild
   the instruction once the label binds. *)
type label = { mutable l_pc : int; mutable l_fixups : (int * (int -> B.insn)) list }

let label () = { l_pc = -1; l_fixups = [] }

let emit_to c lbl mk =
  if lbl.l_pc >= 0 then ignore (emit c (mk lbl.l_pc))
  else begin
    let pc = emit c (mk (-1)) in
    lbl.l_fixups <- (pc, mk) :: lbl.l_fixups
  end

let bind c lbl =
  lbl.l_pc <- c.len;
  List.iter (fun (pc, mk) -> c.code.(pc) <- mk lbl.l_pc) lbl.l_fixups;
  lbl.l_fixups <- []

let here c = c.len

(* [frame(i).e] and [frames.e] use frame scopes, not with-scopes — the
   generic With emission would be wrong for them, so they stay on the
   fallback path. *)
let plain_with_lhs = function
  | Ir.Frame _ | Ir.Frames_gen -> false
  | _ -> true

(* Shallow test: does this node compile natively?  (Its children are
   handled independently by [spawn].)  Every arm here must agree with
   the guards on [emit_body]'s arms: the root region is emitted without
   consulting [native], so [emit_body] falls through to its own
   fallback arm on exactly the same shapes. *)
let rec native e =
  match e with
  | Ir.Lit _ | Ir.Name _ | Ir.Underscore -> true
  | Ir.Group a -> native a
  | Ir.Braces _ | Ir.Unary _ | Ir.Incdec _ | Ir.Binary _ | Ir.Index _
  | Ir.Logand _ | Ir.Logor _ | Ir.Filter _ | Ir.Cond _ | Ir.If _ | Ir.Alt _
  | Ir.Seq _ | Ir.Seq_void _ | Ir.Imply _ | Ir.Def_alias _ | Ir.Index_alias _
  | Ir.To _ | Ir.To_inf _ | Ir.Up_to _ | Ir.Reduce _ ->
      true
  | Ir.Dfs (_, step) | Ir.Bfs (_, step) -> Ir.pure_single step
  | Ir.With (_, lhs, _) -> plain_with_lhs lhs
  | _ -> false

let rec operand_of c e =
  match e with
  | Ir.Lit l -> B.Oconst (const_ix c l.Ir.l_value)
  | Ir.Name nm -> B.Oname (name_ix c nm)
  | Ir.Underscore -> B.Ounder
  | Ir.Group a -> operand_of c a
  | _ -> invalid_arg "operand_of: not pure_single"

(* Queue a region for [e]; its body is emitted by the [compile] drain
   loop.  Returns the region id. *)
let region c e =
  let id = c.nregions in
  c.nregions <- c.nregions + 1;
  c.regions <- (id, e) :: c.regions;
  id

(* Emit the spawn of a child generator: a native child gets its own
   region and frame; anything else becomes an Eval_seq dispenser. *)
let spawn c e =
  let g = gen_slot c in
  if native e then ignore (emit c (B.Ispawn (g, region c e)))
  else ignore (emit c (B.Ifallback (g, ir_ix c e)));
  g

(* The standard resume loop over a child generator [a]:
     spawn gA
   L: resume rU <- gA, exhausted -> done
     <body rU>           (emitted by [body], may yield)
     jmp L
   done:
   The [done] label is returned unbound so callers can chain (Alt, With
   exhaust paths); [emit_region] binds it to Ihalt. *)
let resume_loop c a body =
  let g = spawn c a in
  let l_next = label () and l_done = label () in
  bind c l_next;
  let r = reg c in
  emit_to c l_done (fun t -> B.Iresume (r, g, t));
  body r l_next;
  emit_to c l_next (fun t -> B.Ijmp t);
  l_done

(* Like [resume_loop], but when the producer is a pure-bound range the
   iteration runs inline in the consumer's own frame — integer-register
   loop, no child spawn, no per-element resume.  This is what makes
   [(1..N) + x] cost one superinstruction per element instead of a frame
   round-trip plus one. *)
let rec value_loop c a body =
  match fused_range a with
  | None -> resume_loop c a body
  | Some fr ->
      let ihi = ireg c and icur = ireg c in
      (match fr with
      | `To (a0, b0) ->
          let ilo = ireg c in
          let ta = reg c in
          ignore (emit c (B.Iload (ta, operand_of c a0)));
          ignore (emit c (B.Ito_int (ilo, ta)));
          let tb = reg c in
          ignore (emit c (B.Iload (tb, operand_of c b0)));
          ignore (emit c (B.Ito_int (ihi, tb)));
          ignore (emit c (B.Iimov (icur, ilo)))
      | `Up_to a0 ->
          let tb = reg c in
          ignore (emit c (B.Iload (tb, operand_of c a0)));
          ignore (emit c (B.Ito_int (ihi, tb)));
          ignore (emit c (B.Iiadd (ihi, -1L)));
          ignore (emit c (B.Iiconst (icur, 0L))));
      let l_next = label () and l_done = label () in
      bind c l_next;
      let d = reg c in
      emit_to c l_done (fun t -> B.Irange_next (d, icur, ihi, t));
      body d l_next;
      emit_to c l_next (fun t -> B.Ijmp t);
      l_done

(* [#/(a..b)] and friends: a reduction over a pure-operand range folds
   into a single instruction. *)
and fused_range inner =
  match inner with
  | Ir.Group a -> fused_range a
  | Ir.To (a, b) when Ir.pure_single a && Ir.pure_single b -> Some (`To (a, b))
  | Ir.Up_to a when Ir.pure_single a -> Some (`Up_to a)
  | _ -> None

(* Emit the full body for one region. *)
let rec emit_region c e =
  let l_done = emit_body c e in
  bind c l_done;
  ignore (emit c B.Ihalt)

(* Emit code that yields [e]'s sequence; returns the unbound exhaust
   label (control jumps there once the sequence is done). *)
and emit_body c e : label =
  match e with
  | Ir.Group a -> emit_body c a
  | Ir.Lit _ | Ir.Name _ | Ir.Underscore ->
      let op = operand_of c e in
      let r = reg c in
      ignore (emit c (B.Iload (r, op)));
      ignore (emit c (B.Iyield r));
      let l_done = label () in
      emit_to c l_done (fun t -> B.Ijmp t);
      l_done
  | Ir.Unary (op, a) ->
      resume_loop c a (fun r _ ->
          let d = reg c in
          ignore (emit c (B.Iunary (op, d, r)));
          ignore (emit c (B.Iyield d)))
  | Ir.Incdec (op, a) ->
      resume_loop c a (fun r _ ->
          let d = reg c in
          ignore (emit c (B.Iincdec (op, d, r)));
          ignore (emit c (B.Iyield d)))
  | Ir.Braces a ->
      resume_loop c a (fun r _ ->
          let d = reg c in
          ignore (emit c (B.Ibraces (d, r)));
          ignore (emit c (B.Iyield d)))
  | Ir.Binary (op, a, b) when Ir.pure_single b ->
      (* superinstruction: the rhs collapses into an inline operand *)
      let rand = operand_of c b in
      value_loop c a (fun r _ ->
          let d = reg c in
          ignore (emit c (B.Ibinary (op, d, r, rand)));
          ignore (emit c (B.Iyield d)))
  | Ir.Binary (op, a, b) ->
      resume_loop c a (fun ru _ ->
          let l_inner =
            resume_loop c b (fun rv _ ->
                let d = reg c in
                ignore (emit c (B.Ibinary (op, d, ru, B.Oreg rv)));
                ignore (emit c (B.Iyield d)))
          in
          bind c l_inner)
  | Ir.Index (a, b) when Ir.pure_single b ->
      let rand = operand_of c b in
      value_loop c a (fun r _ ->
          let d = reg c in
          ignore (emit c (B.Iindex (d, r, rand)));
          ignore (emit c (B.Iyield d)))
  | Ir.Index (a, b) ->
      resume_loop c a (fun ru _ ->
          let l_inner =
            resume_loop c b (fun rv _ ->
                let d = reg c in
                ignore (emit c (B.Iindex (d, ru, B.Oreg rv)));
                ignore (emit c (B.Iyield d)))
          in
          bind c l_inner)
  | Ir.Logand (a, b) ->
      resume_loop c a (fun ru l_next ->
          emit_to c l_next (fun t -> B.Itruth (ru, t));
          let l_inner =
            resume_loop c b (fun rv _ ->
                let d = reg c in
                ignore (emit c (B.Ilogand_sym (d, ru, rv)));
                ignore (emit c (B.Iyield d)))
          in
          bind c l_inner)
  | Ir.Logor (a, b) ->
      resume_loop c a (fun ru l_next ->
          let l_false = label () in
          emit_to c l_false (fun t -> B.Itruth (ru, t));
          let d = reg c in
          ignore (emit c (B.Ilogor_true (d, ru)));
          ignore (emit c (B.Iyield d));
          emit_to c l_next (fun t -> B.Ijmp t);
          bind c l_false;
          let l_inner =
            resume_loop c b (fun rv _ ->
                let d2 = reg c in
                ignore (emit c (B.Ilogor_sym (d2, ru, rv)));
                ignore (emit c (B.Iyield d2)))
          in
          bind c l_inner)
  | Ir.Filter (f, a, b) when Ir.pure_single b ->
      let rand = operand_of c b in
      value_loop c a (fun ru l_next ->
          emit_to c l_next (fun t -> B.Ifilter (f, ru, rand, t));
          ignore (emit c (B.Iyield ru)))
  | Ir.Filter (f, a, b) ->
      (* the general form yields u once per matching v *)
      resume_loop c a (fun ru _ ->
          let l_inner =
            resume_loop c b (fun rv l_inner_next ->
                emit_to c l_inner_next (fun t ->
                    B.Ifilter (f, ru, B.Oreg rv, t));
                ignore (emit c (B.Iyield ru)))
          in
          bind c l_inner)
  | Ir.Cond (cnd, t, f) -> emit_cond c cnd t (Some f)
  | Ir.If (cnd, t, f) -> emit_cond c cnd t f
  | Ir.Alt (a, b) ->
      let l_b = resume_loop c a (fun r _ -> ignore (emit c (B.Iyield r))) in
      bind c l_b;
      resume_loop c b (fun r _ -> ignore (emit c (B.Iyield r)))
  | Ir.Seq (a, b) ->
      let l_b = resume_loop c a (fun _ _ -> ()) in
      bind c l_b;
      resume_loop c b (fun r _ -> ignore (emit c (B.Iyield r)))
  | Ir.Seq_void a -> resume_loop c a (fun _ _ -> ())
  | Ir.Imply (a, b) ->
      resume_loop c a (fun _ _ ->
          let l_inner =
            resume_loop c b (fun rv _ -> ignore (emit c (B.Iyield rv)))
          in
          bind c l_inner)
  | Ir.Def_alias (name, a) ->
      let six = str_ix c name in
      resume_loop c a (fun r _ ->
          ignore (emit c (B.Idef_alias (six, r)));
          ignore (emit c (B.Iyield r)))
  | Ir.Index_alias (a, name) ->
      let six = str_ix c name in
      let ic = ireg c in
      ignore (emit c (B.Iiconst (ic, 0L)));
      resume_loop c a (fun r _ ->
          ignore (emit c (B.Iindex_alias (six, ic)));
          ignore (emit c (B.Iyield r)))
  | Ir.To (a, b) ->
      let ilo = ireg c and ihi = ireg c and icur = ireg c in
      resume_loop c a (fun ru _ ->
          ignore (emit c (B.Ito_int (ilo, ru)));
          let l_inner =
            resume_loop c b (fun rv l_inner_next ->
                ignore (emit c (B.Ito_int (ihi, rv)));
                ignore (emit c (B.Iimov (icur, ilo)));
                let d = reg c in
                let l_r = label () in
                bind c l_r;
                emit_to c l_inner_next (fun t ->
                    B.Irange_next (d, icur, ihi, t));
                ignore (emit c (B.Iyield d));
                emit_to c l_r (fun t -> B.Ijmp t))
          in
          bind c l_inner)
  | Ir.To_inf a ->
      let icur = ireg c and istart = ireg c in
      resume_loop c a (fun ru _ ->
          ignore (emit c (B.Ito_int (icur, ru)));
          ignore (emit c (B.Iimov (istart, icur)));
          let d = reg c in
          let l_r = label () in
          bind c l_r;
          ignore (emit c (B.Irange_from (d, icur, istart)));
          ignore (emit c (B.Iyield d));
          emit_to c l_r (fun t -> B.Ijmp t))
  | Ir.Up_to a ->
      let ihi = ireg c and icur = ireg c in
      resume_loop c a (fun ru l_next ->
          ignore (emit c (B.Ito_int (ihi, ru)));
          ignore (emit c (B.Iiadd (ihi, -1L)));
          ignore (emit c (B.Iiconst (icur, 0L)));
          let d = reg c in
          let l_r = label () in
          bind c l_r;
          emit_to c l_next (fun t -> B.Irange_next (d, icur, ihi, t));
          ignore (emit c (B.Iyield d));
          emit_to c l_r (fun t -> B.Ijmp t))
  | Ir.Reduce (r, inner, psym) ->
      let six = sym_ix c psym in
      let d = reg c in
      (match fused_range inner with
      | Some (`To (a, b)) ->
          let oa = operand_of c a in
          let ob = operand_of c b in
          ignore (emit c (B.Ireduce_to (d, r, oa, ob, six)))
      | Some (`Up_to a) ->
          let oa = operand_of c a in
          ignore (emit c (B.Ireduce_upto (d, r, oa, six)))
      | None ->
          let g = spawn c inner in
          ignore (emit c (B.Ireduce (d, r, g, six))));
      ignore (emit c (B.Iyield d));
      let l_done = label () in
      emit_to c l_done (fun t -> B.Ijmp t);
      l_done
  | Ir.Dfs (roots, step) | Ir.Bfs (roots, step) when Ir.pure_single step ->
      let df = match e with Ir.Dfs _ -> true | _ -> false in
      let rand = operand_of c step in
      let groots = spawn c roots in
      let g = gen_slot c in
      ignore (emit c (B.Ichase (g, groots, rand, df)));
      let l_next = label () and l_done = label () in
      bind c l_next;
      let r = reg c in
      emit_to c l_done (fun t -> B.Iresume (r, g, t));
      ignore (emit c (B.Iyield r));
      emit_to c l_next (fun t -> B.Ijmp t);
      l_done
  | Ir.With (kind, lhs, rhs) when plain_with_lhs lhs && Ir.pure_single rhs ->
      (* fused member pull: scope push, one slot/operand read, yield —
         the pop runs on re-entry, so the scope lingers over the yielded
         value exactly like [Eval_seq.scoped] *)
      let rand = operand_of c rhs in
      resume_loop c lhs (fun ru _ ->
          ignore (emit c (B.Ipush_with (kind, ru)));
          let d = reg c in
          ignore (emit c (B.Iload (d, rand)));
          ignore (emit c (B.Iyield d));
          ignore (emit c B.Ipop_scope))
  | Ir.With (kind, lhs, rhs) when plain_with_lhs lhs ->
      resume_loop c lhs (fun ru l_next ->
          ignore (emit c (B.Ipush_with (kind, ru)));
          let g = spawn c rhs in
          let l_rnext = label () and l_exh = label () in
          bind c l_rnext;
          let rv = reg c in
          emit_to c l_exh (fun t -> B.Iresume (rv, g, t));
          ignore (emit c (B.Iyield rv));
          emit_to c l_rnext (fun t -> B.Ijmp t);
          bind c l_exh;
          ignore (emit c B.Ipop_scope);
          emit_to c l_next (fun t -> B.Ijmp t))
  | _ ->
      (* a non-native root (fallback regions are only reachable through
         [spawn], which guards with [native]) *)
      let g = gen_slot c in
      ignore (emit c (B.Ifallback (g, ir_ix c e)));
      let l_next = label () and l_done = label () in
      bind c l_next;
      let r = reg c in
      emit_to c l_done (fun t -> B.Iresume (r, g, t));
      ignore (emit c (B.Iyield r));
      emit_to c l_next (fun t -> B.Ijmp t);
      l_done

and emit_cond c cnd t f =
  resume_loop c cnd (fun ru l_next ->
      let l_false = label () in
      emit_to c l_false (fun tgt -> B.Itruth (ru, tgt));
      let l_t =
        resume_loop c t (fun rv _ -> ignore (emit c (B.Iyield rv)))
      in
      bind c l_t;
      (match f with
      | None -> bind c l_false
      | Some fe ->
          emit_to c l_next (fun tgt -> B.Ijmp tgt);
          bind c l_false;
          let l_f =
            resume_loop c fe (fun rv _ -> ignore (emit c (B.Iyield rv)))
          in
          bind c l_f))

let compile (ir : Ir.expr) : B.program =
  let c =
    {
      code = Array.make 64 B.Ihalt;
      len = 0;
      regions = [];
      entries = [];
      nregions = 0;
      consts = [];
      nconsts = 0;
      names = [];
      nnames = 0;
      strs = [];
      nstrs = 0;
      syms = [];
      nsyms = 0;
      irs = [];
      nirs = 0;
      nregs = 0;
      niregs = 0;
      ngens = 0;
    }
  in
  let root = region c ir in
  assert (root = 0);
  (* drain the worklist: emitting one region's body may enqueue more *)
  let rec drain () =
    match c.regions with
    | [] -> ()
    | (id, e) :: rest ->
        c.regions <- rest;
        c.entries <- (id, c.len) :: c.entries;
        emit_region c e;
        drain ()
  in
  drain ();
  let entries = Array.make (max 1 c.nregions) 0 in
  List.iter (fun (id, pc) -> entries.(id) <- pc) c.entries;
  let of_rev n l =
    let a = Array.of_list (List.rev l) in
    assert (Array.length a = n);
    a
  in
  {
    B.insns = Array.sub c.code 0 c.len;
    entries;
    consts = of_rev c.nconsts c.consts;
    names = of_rev c.nnames c.names;
    strs = of_rev c.nstrs c.strs;
    syms = of_rev c.nsyms c.syms;
    irs = of_rev c.nirs c.irs;
    nregs = c.nregs;
    niregs = c.niregs;
    ngens = c.ngens;
    quiet = Ir.silent ir;
  }
