(** The resolved intermediate representation both engines evaluate.

    {!Lower} translates {!Ast.expr} into this tree once per command; the
    engines never see the AST.  The IR differs from the AST where work
    can be hoisted out of the per-value evaluation loop:

    {ul
    {- every literal is a prebuilt {!Value.t} (string literals already
       interned into target space);}
    {- every name carries a mutable {e slot} — an inline cache for the
       five-stage resolution chain, validated against {!Env}'s generation
       counters (see {!Semantics.name_value});}
    {- cast/sizeof/reduction symbolic renderings are precomputed;}
    {- type expressions whose array dimensions are constant are resolved
       to a {!Ctype.t} up front ({!Tready}).}}

    The "unlowered" ablation ([set lower off]) is the same tree with
    every slot pinned to {!Sdynamic}, so there is exactly one evaluation
    path to test and benchmark. *)

module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout

(** How a [Name] node resolves.  [Snone] means not yet resolved (or
    resolved to something transient, like an outer-scope member, that is
    never worth caching); [Sdynamic] pins the node to the full lookup
    chain on every pull. *)
type slot =
  | Snone
  | Sdynamic
  | Smember of { m_comp : Ctype.comp; m_fi : Layout.field_info }
      (** innermost-scope struct/union member: valid while the innermost
          scope is a member scope over the physically same component; the
          value is rebuilt from the current scope's subject *)
  | Scached of { c_stamp : Env.stamp; c_value : Value.t }
      (** alias / frame local / global / enum constant, valid while the
          generation stamp holds *)

type name = { n_name : string; mutable n_slot : slot }

type lit = {
  l_value : Value.t;
  l_source : bool;
      (** written as a literal in the source (as opposed to produced by
          constant folding) — [e @ lit] compares for equality only
          against source literals, exactly as the unlowered tree did *)
}

type type_expr =
  | Tready of Ctype.t  (** pre-resolved at lowering time *)
  | Tname of string list
  | Tstruct_ref of string
  | Tunion_ref of string
  | Tenum_ref of string
  | Ttypedef_ref of string
  | Tptr of type_expr
  | Tarr of type_expr * expr option

and expr =
  | Lit of lit
  | Name of name
  | Underscore
  | Unary of Ast.unop * expr
  | Incdec of Ast.incdec * expr
  | Binary of Ast.binop * expr * expr
  | Logand of expr * expr
  | Logor of expr * expr
  | Filter of Ast.filter * expr * expr
  | Cond of expr * expr * expr
  | Assign of Ast.binop option * expr * expr
  | Cast of type_expr * string * expr
      (** the string is the display form ["(type)"], precomputed *)
  | Call of string option * expr list
      (** [None] iff the callee was not a plain name (an error at
          evaluation time, as before) *)
  | Index of expr * expr
  | With of Ast.with_kind * expr * expr
  | To of expr * expr
  | To_inf of expr
  | Up_to of expr
  | Alt of expr * expr
  | Seq of expr * expr
  | Seq_void of expr
  | Imply of expr * expr
  | Def_alias of string * expr
  | Dfs of expr * expr
  | Bfs of expr * expr
  | Select of expr * expr
  | Until of expr * expr
  | Index_alias of expr * string
  | Reduce of Ast.reduction * expr * Symbolic.t
      (** carries the precomputed "as entered" symbolic *)
  | Seq_eq of expr * expr
  | Braces of expr
  | Group of expr
      (** kept: [e @ (0)] and [e @ 0] differ (truth-stop vs equality-stop) *)
  | If of expr * expr * expr option
  | For of expr option * expr option * expr option * expr
  | While of expr * expr
  | Decl of (string * type_expr) list
  | Sizeof_expr of expr * Symbolic.t
  | Sizeof_type of type_expr * Symbolic.t
  | Frame of expr
  | Frames_gen

(** Effect-free expressions producing exactly one value — the operands
    the engines may evaluate with a direct call instead of a nested
    generator (the singleton fast path for [a+i], [x[i]], [a >? 0]...). *)
let rec pure_single = function
  | Lit _ | Name _ | Underscore -> true
  | Group e -> pure_single e
  | _ -> false

(** Structural copy with fresh name records.  Slots are per-environment
    state (stamps are only meaningful against the [Env] that wrote
    them), so a compiled program cached server-side and shared across
    sessions hands out clones: same literals, symbolics and strings,
    fresh empty slots.  [Sdynamic] pins survive — they are a mode, not
    cached state. *)
let clone_name nm =
  {
    n_name = nm.n_name;
    n_slot = (match nm.n_slot with Sdynamic -> Sdynamic | _ -> Snone);
  }

let rec clone_type te =
  match te with
  | Tready _ | Tname _ | Tstruct_ref _ | Tunion_ref _ | Tenum_ref _
  | Ttypedef_ref _ ->
      te
  | Tptr t -> Tptr (clone_type t)
  | Tarr (t, e) -> Tarr (clone_type t, Option.map clone e)

and clone e =
  match e with
  | Lit _ | Underscore | Frames_gen -> e
  | Name nm -> Name (clone_name nm)
  | Unary (op, a) -> Unary (op, clone a)
  | Incdec (op, a) -> Incdec (op, clone a)
  | Binary (op, a, b) -> Binary (op, clone a, clone b)
  | Logand (a, b) -> Logand (clone a, clone b)
  | Logor (a, b) -> Logor (clone a, clone b)
  | Filter (f, a, b) -> Filter (f, clone a, clone b)
  | Cond (c, t, f) -> Cond (clone c, clone t, clone f)
  | Assign (op, l, r) -> Assign (op, clone l, clone r)
  | Cast (te, s, a) -> Cast (clone_type te, s, clone a)
  | Call (callee, args) -> Call (callee, List.map clone args)
  | Index (a, b) -> Index (clone a, clone b)
  | With (k, a, b) -> With (k, clone a, clone b)
  | To (a, b) -> To (clone a, clone b)
  | To_inf a -> To_inf (clone a)
  | Up_to a -> Up_to (clone a)
  | Alt (a, b) -> Alt (clone a, clone b)
  | Seq (a, b) -> Seq (clone a, clone b)
  | Seq_void a -> Seq_void (clone a)
  | Imply (a, b) -> Imply (clone a, clone b)
  | Def_alias (n, a) -> Def_alias (n, clone a)
  | Dfs (a, b) -> Dfs (clone a, clone b)
  | Bfs (a, b) -> Bfs (clone a, clone b)
  | Select (a, b) -> Select (clone a, clone b)
  | Until (a, b) -> Until (clone a, clone b)
  | Index_alias (a, n) -> Index_alias (clone a, n)
  | Reduce (r, a, sym) -> Reduce (r, clone a, sym)
  | Seq_eq (a, b) -> Seq_eq (clone a, clone b)
  | Braces a -> Braces (clone a)
  | Group a -> Group (clone a)
  | If (c, t, f) -> If (clone c, clone t, Option.map clone f)
  | For (i, c, s, b) ->
      For (Option.map clone i, Option.map clone c, Option.map clone s, clone b)
  | While (c, b) -> While (clone c, clone b)
  | Decl ds -> Decl (List.map (fun (n, te) -> (n, clone_type te)) ds)
  | Sizeof_expr (a, sym) -> Sizeof_expr (clone a, sym)
  | Sizeof_type (te, sym) -> Sizeof_type (clone_type te, sym)
  | Frame a -> Frame (clone a)

(** Commands ending in [;] are evaluated for effect only — mirrors
    {!Session}'s AST-level test on the lowered tree so a compiled
    program remembers its display mode. *)
let rec silent = function
  | Seq_void _ -> true
  | Seq (_, b) -> silent b
  | _ -> false
