module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Dbgi = Duel_dbgi.Dbgi

let no_sym = Symbolic.atom "?"
let sym_on env = env.Env.flags.Env.symbolic

(* One runtime node per IR node, carrying the paper's [state] and saved
   [value] plus per-operator auxiliary state. *)
type node = {
  expr : Ir.expr;
  kids : node array;
  mutable state : int;
  mutable saved : Value.t option;
  mutable counter : int64;
  mutable hi : int64;
  mutable depth : int;  (* scope depth captured at state 0 *)
  mutable work : Value.t list;  (* dfs/bfs worklist *)
  mutable buffer : Value.t array;  (* select buffer *)
  mutable buffered : int;
  mutable src_done : bool;
  mutable src_scopes : Env.stack;
  mutable visited : (int64, unit) Hashtbl.t option;
  mutable argvals : Value.t array;
}

let dummy_value = Value.int_value Ctype.int 0L

(* Sub-expressions that behave as generator operands, in evaluation
   order. *)
let subexprs (e : Ir.expr) : Ir.expr list =
  match e with
  | Ir.Lit _ | Ir.Name _ | Ir.Underscore | Ir.Frames_gen | Ir.Decl _
  | Ir.Sizeof_type _ ->
      []
  | Ir.Unary (_, a)
  | Ir.Incdec (_, a)
  | Ir.Braces a
  | Ir.Group a
  | Ir.Cast (_, _, a)
  | Ir.Def_alias (_, a)
  | Ir.Index_alias (a, _)
  | Ir.Reduce (_, a, _)
  | Ir.Seq_void a
  | Ir.Up_to a
  | Ir.To_inf a
  | Ir.Sizeof_expr (a, _)
  | Ir.Frame a ->
      [ a ]
  | Ir.Binary (_, a, b)
  | Ir.Logand (a, b)
  | Ir.Logor (a, b)
  | Ir.Filter (_, a, b)
  | Ir.Assign (_, a, b)
  | Ir.Index (a, b)
  | Ir.With (_, a, b)
  | Ir.To (a, b)
  | Ir.Alt (a, b)
  | Ir.Seq (a, b)
  | Ir.Imply (a, b)
  | Ir.Dfs (a, b)
  | Ir.Bfs (a, b)
  | Ir.Select (a, b)
  | Ir.Until (a, b)
  | Ir.Seq_eq (a, b)
  | Ir.While (a, b) ->
      [ a; b ]
  | Ir.Cond (a, b, c) | Ir.If (a, b, Some c) -> [ a; b; c ]
  | Ir.If (a, b, None) -> [ a; b ]
  | Ir.Call (_, args) -> args
  | Ir.For (i, c, s, b) ->
      List.filter_map Fun.id [ i; c; s ] @ [ b ]

let rec compile e =
  {
    expr = e;
    kids = Array.of_list (List.map compile (subexprs e));
    state = 0;
    saved = None;
    counter = 0L;
    hi = 0L;
    depth = 0;
    work = [];
    buffer = [||];
    buffered = 0;
    src_done = false;
    src_scopes = Env.empty_stack;
    visited = None;
    argvals = [||];
  }

let rec reset n =
  n.state <- 0;
  n.saved <- None;
  n.work <- [];
  n.buffered <- 0;
  n.src_done <- false;
  n.visited <- None;
  Array.iter reset n.kids

let get_saved n =
  match n.saved with Some v -> v | None -> assert false

(* --- the evaluator ------------------------------------------------------ *)

let rec next env n : Value.t option =
  match n.expr with
  | Ir.Lit l ->
      if n.state = 0 then begin
        n.state <- 1;
        Some l.Ir.l_value
      end
      else begin
        n.state <- 0;
        None
      end
  | Ir.Name name ->
      if n.state = 0 then begin
        n.state <- 1;
        Some (Semantics.name_value env name)
      end
      else begin
        n.state <- 0;
        None
      end
  | Ir.Underscore ->
      if n.state = 0 then begin
        n.state <- 1;
        Some (Env.current_scope env).Env.sc_value
      end
      else begin
        n.state <- 0;
        None
      end
  | Ir.Group _ -> next env n.kids.(0)
  | Ir.Braces _ -> (
      match next env n.kids.(0) with
      | Some v ->
          Some
            (if sym_on env then
               Value.with_sym v
                 (Symbolic.atom (Printer.scalar_literal env v))
             else v)
      | None -> None)
  | Ir.Unary (op, _) -> Option.map (Ops.unary env op) (next env n.kids.(0))
  | Ir.Incdec (op, _) -> Option.map (Ops.incdec env op) (next env n.kids.(0))
  | Ir.Cast (te, cast_text, _) -> (
      match next env n.kids.(0) with
      | None -> None
      | Some v ->
          let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
          let v' = Value.convert env.Env.dbg t v in
          Some
            (if sym_on env then
               Value.with_sym v' (Symbolic.unary cast_text v.Value.sym)
             else v'))
  | Ir.Def_alias (name, _) -> (
      match next env n.kids.(0) with
      | None -> None
      | Some v ->
          Env.define_alias env name v;
          Some v)
  (* Singleton fast path: an effect-free single-valued right operand is
     evaluated directly per left value, skipping the kid state machine —
     the slot cache makes [Semantics.single] one stamp check. *)
  | Ir.Binary (op, _, b) when Ir.pure_single b ->
      Option.map
        (fun u -> Ops.binary env op u (Semantics.single env b))
        (next env n.kids.(0))
  | Ir.Index (_, b) when Ir.pure_single b ->
      Option.map
        (fun u -> Ops.index env u (Semantics.single env b))
        (next env n.kids.(0))
  | Ir.Filter (f, _, b) when Ir.pure_single b ->
      let rec go () =
        match next env n.kids.(0) with
        | None -> None
        | Some u ->
            if Ops.filter_holds env f u (Semantics.single env b) then Some u
            else go ()
      in
      go ()
  | Ir.Binary (op, _, _) -> binary_like env n (Ops.binary env op)
  | Ir.Index _ -> binary_like env n (Ops.index env)
  | Ir.Assign (op, _, _) -> assign_sm env n op
  | Ir.Alt _ -> alt env n
  | Ir.To _ -> to_range env n
  | Ir.Up_to _ -> up_to env n
  | Ir.To_inf _ -> to_inf env n
  | Ir.Filter (f, _, _) -> filter env n f
  | Ir.Logand _ -> logand env n
  | Ir.Logor _ -> logor env n
  | Ir.Cond _ -> conditional env n ~has_else:true
  | Ir.If (_, _, Some _) -> conditional env n ~has_else:true
  | Ir.If (_, _, None) -> conditional env n ~has_else:false
  | Ir.With (kind, lhs, _) -> with_op env n kind lhs
  | Ir.Imply _ -> imply env n
  | Ir.Seq _ -> seq_op env n
  | Ir.Seq_void _ ->
      drain env n.kids.(0);
      None
  | Ir.Index_alias (_, name) -> index_alias env n name
  | Ir.Reduce (r, _, psym) -> reduce env n r psym
  | Ir.Seq_eq _ -> seq_eq env n
  | Ir.Dfs _ -> expand env n ~depth_first:true
  | Ir.Bfs _ -> expand env n ~depth_first:false
  | Ir.Select _ -> select env n
  | Ir.Until (_, stop) -> until env n stop
  | Ir.While _ -> while_op env n
  | Ir.For (init, cond, step, _) -> for_op env n init cond step
  | Ir.Call (callee, args) -> call env n callee (List.length args)
  | Ir.Decl decls ->
      List.iter (declare env) decls;
      None
  | Ir.Sizeof_expr (_, psym) -> sizeof_expr env n psym
  | Ir.Sizeof_type (te, psym) ->
      if n.state = 0 then begin
        n.state <- 1;
        let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
        let size =
          try Layout.size_of env.Env.dbg.Dbgi.abi t
          with Layout.Incomplete what ->
            Error.failf "sizeof incomplete type %s" what
        in
        let sym = if sym_on env then psym else no_sym in
        Some (Value.int_value ~sym Ctype.ulong (Int64.of_int size))
      end
      else begin
        n.state <- 0;
        None
      end
  | Ir.Frame _ -> (
      match next env n.kids.(0) with
      | None -> None
      | Some u ->
          let i = Int64.to_int (Value.to_int64 env.Env.dbg u) in
          let sym =
            if sym_on env then Symbolic.atom (Printf.sprintf "frame(%d)" i)
            else no_sym
          in
          Some (Value.int_value ~sym Ctype.int (Int64.of_int i)))
  | Ir.Frames_gen ->
      if n.state = 0 then begin
        n.counter <- 0L;
        n.hi <- Int64.of_int (Semantics.frame_count env);
        n.state <- 1
      end;
      if Int64.compare n.counter n.hi < 0 then begin
        let i = n.counter in
        n.counter <- Int64.add i 1L;
        let sym =
          if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym
        in
        Some (Value.int_value ~sym Ctype.int i)
      end
      else begin
        n.state <- 0;
        None
      end

and drain env kid = match next env kid with Some _ -> drain env kid | None -> ()

and eval_int env e =
  let kid = compile e in
  let depth = Env.scope_depth env in
  match next env kid with
  | Some v ->
      let i = Value.to_int64 env.Env.dbg v in
      Env.restore_scope_depth env depth;
      i
  | None -> Error.fail "expected a value"

(* state 0: fetch the next left value; state 1: produce one combination per
   right value — the paper's bin0/bin1 code. *)
and binary_like env n f =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        n.saved <- Some u;
        n.state <- 1;
        binary_like env n f
  else
    match next env n.kids.(1) with
    | Some v -> Some (f (get_saved n) v)
    | None ->
        n.state <- 0;
        binary_like env n f

(* Assignment: like binary_like, but the right operand evaluates under the
   scope stack captured at state 0 — the left side's with-scope must not
   capture names on the right ([q->scope = scope] means the parameter). *)
and assign_sm env n op =
  match n.state with
  | 0 ->
      (* fresh evaluation: capture the stack before the left side can
         push its with-scopes *)
      n.src_scopes <- Env.stack env;
      n.state <- 2;
      assign_sm env n op
  | 2 -> (
      match next env n.kids.(0) with
      | None ->
          n.state <- 0;
          None
      | Some u ->
          n.saved <- Some u;
          n.state <- 1;
          assign_sm env n op)
  | _ -> (
      let outer = Env.stack env in
      Env.set_stack env n.src_scopes;
      let v = next env n.kids.(1) in
      n.src_scopes <- Env.stack env;
      Env.set_stack env outer;
      match v with
      | Some v -> Some (Ops.assign env op (get_saved n) v)
      | None ->
          n.state <- 2;
          assign_sm env n op)

and alt env n =
  if n.state = 0 then
    match next env n.kids.(0) with
    | Some v -> Some v
    | None ->
        n.state <- 1;
        alt env n
  else
    match next env n.kids.(1) with
    | Some v -> Some v
    | None ->
        n.state <- 0;
        None

and to_range env n =
  match n.state with
  | 0 -> (
      match next env n.kids.(0) with
      | None -> None
      | Some u ->
          n.saved <- Some u;
          n.state <- 1;
          to_range env n)
  | 1 -> (
      match next env n.kids.(1) with
      | None ->
          n.state <- 0;
          to_range env n
      | Some v ->
          n.counter <- Value.to_int64 env.Env.dbg (get_saved n);
          n.hi <- Value.to_int64 env.Env.dbg v;
          n.state <- 2;
          to_range env n)
  | _ ->
      if Int64.compare n.counter n.hi <= 0 then begin
        let i = n.counter in
        n.counter <- Int64.add i 1L;
        Some (make_int env i)
      end
      else begin
        n.state <- 1;
        to_range env n
      end

and make_int env i =
  let sym = if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym in
  Value.int_value ~sym Ctype.int i

and up_to env n =
  match n.state with
  | 0 -> (
      match next env n.kids.(0) with
      | None -> None
      | Some u ->
          n.counter <- 0L;
          n.hi <- Int64.sub (Value.to_int64 env.Env.dbg u) 1L;
          n.state <- 1;
          up_to env n)
  | _ ->
      if Int64.compare n.counter n.hi <= 0 then begin
        let i = n.counter in
        n.counter <- Int64.add i 1L;
        Some (make_int env i)
      end
      else begin
        n.state <- 0;
        up_to env n
      end

(* [state] doubles as the pull count ([state - 1] values yielded so
   far): the open range is the one generator with no bound of its own,
   so it answers to [expansion_limit] exactly as {!Eval_seq} does. *)
and to_inf env n =
  match n.state with
  | 0 -> (
      match next env n.kids.(0) with
      | None -> None
      | Some u ->
          n.counter <- Value.to_int64 env.Env.dbg u;
          n.state <- 1;
          to_inf env n)
  | produced_1 ->
      let limit = env.Env.flags.Env.expansion_limit in
      if limit > 0 && produced_1 - 1 >= limit then
        Error.failf "open range exceeded %d values (runaway generator?)"
          limit;
      let i = n.counter in
      n.counter <- Int64.add i 1L;
      n.state <- n.state + 1;
      Some (make_int env i)

and filter env n f =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        n.saved <- Some u;
        n.state <- 1;
        filter env n f
  else
    match next env n.kids.(1) with
    | Some v ->
        if Ops.filter_holds env f (get_saved n) v then Some (get_saved n)
        else filter env n f
    | None ->
        n.state <- 0;
        filter env n f

and logand env n =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        if Value.truth env.Env.dbg u then begin
          n.saved <- Some u;
          n.state <- 1;
          logand env n
        end
        else logand env n
  else
    match next env n.kids.(1) with
    | Some v ->
        Some
          (if sym_on env then
             Value.with_sym v
               (Symbolic.binary Symbolic.prec_logand " && "
                  (get_saved n).Value.sym v.Value.sym)
           else v)
    | None ->
        n.state <- 0;
        logand env n

and logor env n =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        if Value.truth env.Env.dbg u then
          Some (Ops.int_result env ~sym:u.Value.sym 1L)
        else begin
          n.saved <- Some u;
          n.state <- 1;
          logor env n
        end
  else
    match next env n.kids.(1) with
    | Some v ->
        Some
          (if sym_on env then
             Value.with_sym v
               (Symbolic.binary Symbolic.prec_logor " || "
                  (get_saved n).Value.sym v.Value.sym)
           else v)
    | None ->
        n.state <- 0;
        logor env n

(* states: 0 pulling condition; 1 producing then-branch; 2 producing
   else-branch. *)
and conditional env n ~has_else =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some u ->
        if Value.truth env.Env.dbg u then begin
          n.state <- 1;
          conditional env n ~has_else
        end
        else if has_else then begin
          n.state <- 2;
          conditional env n ~has_else
        end
        else conditional env n ~has_else
  else
    let branch = n.state in
    match next env n.kids.(branch) with
    | Some v -> Some v
    | None ->
        n.state <- 0;
        conditional env n ~has_else

and with_op env n kind lhs =
  match lhs with
  | Ir.Frame _ | Ir.Frames_gen ->
      if n.state = 0 then
        match next env n.kids.(0) with
        | None -> None
        | Some u ->
            let i = Int64.to_int (Value.to_int64 env.Env.dbg u) in
            Env.push_scope env (Semantics.frame_scope env i);
            n.state <- 1;
            with_op env n kind lhs
      else begin
        match next env n.kids.(1) with
        | Some v -> Some v
        | None ->
            Env.pop_scope env;
            n.state <- 0;
            with_op env n kind lhs
      end
  | _ ->
      if n.state = 0 then
        match next env n.kids.(0) with
        | None -> None
        | Some u ->
            Env.push_scope env (Semantics.with_scope env kind u);
            n.state <- 1;
            with_op env n kind lhs
      else begin
        match next env n.kids.(1) with
        | Some v -> Some v
        | None ->
            Env.pop_scope env;
            n.state <- 0;
            with_op env n kind lhs
      end

and imply env n =
  if n.state = 0 then
    match next env n.kids.(0) with
    | None -> None
    | Some _ ->
        n.state <- 1;
        imply env n
  else
    match next env n.kids.(1) with
    | Some v -> Some v
    | None ->
        n.state <- 0;
        imply env n

and seq_op env n =
  if n.state = 0 then begin
    drain env n.kids.(0);
    n.state <- 1
  end;
  match next env n.kids.(1) with
  | Some v -> Some v
  | None ->
      n.state <- 0;
      None

and index_alias env n name =
  if n.state = 0 then begin
    n.counter <- 0L;
    n.state <- 1
  end;
  match next env n.kids.(0) with
  | Some u ->
      let i = n.counter in
      n.counter <- Int64.add i 1L;
      let sym =
        if sym_on env then Symbolic.atom (Int64.to_string i) else no_sym
      in
      Env.define_alias env name (Value.int_value ~sym Ctype.int i);
      Some u
  | None ->
      n.state <- 0;
      None

and reduce env n r psym =
  if n.state = 1 then begin
    n.state <- 0;
    None
  end
  else begin
    n.state <- 1;
    let dbg = env.Env.dbg in
    let depth = Env.scope_depth env in
    let sym = if sym_on env then psym else no_sym in
    let result =
      match r with
      | Ast.Rcount ->
          let rec count acc =
            match next env n.kids.(0) with
            | Some _ -> count (acc + 1)
            | None -> acc
          in
          Value.int_value ~sym Ctype.int (Int64.of_int (count 0))
      | Ast.Rsum ->
          let rec sum acc =
            match next env n.kids.(0) with
            | Some v -> sum (Semantics.sum_step env acc v)
            | None -> acc
          in
          Semantics.sum_result env ~sym (sum (Either.Left 0L))
      | Ast.Rall ->
          let rec all () =
            match next env n.kids.(0) with
            | Some v -> if Value.truth dbg v then all () else false
            | None -> true
          in
          let ok = all () in
          if not ok then reset n.kids.(0);
          Value.int_value ~sym Ctype.int (if ok then 1L else 0L)
      | Ast.Rany ->
          let rec any () =
            match next env n.kids.(0) with
            | Some v -> if Value.truth dbg v then true else any ()
            | None -> false
          in
          let ok = any () in
          if ok then reset n.kids.(0);
          Value.int_value ~sym Ctype.int (if ok then 1L else 0L)
    in
    Env.restore_scope_depth env depth;
    Some result
  end

and seq_eq env n =
  if n.state = 1 then begin
    n.state <- 0;
    None
  end
  else begin
    n.state <- 1;
    let depth = Env.scope_depth env in
    let rec go () =
      match (next env n.kids.(0), next env n.kids.(1)) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some u, Some v -> Ops.values_equal env u v && go ()
    in
    let equal = go () in
    reset n.kids.(0);
    reset n.kids.(1);
    Env.restore_scope_depth env depth;
    Some (Ops.int_result env (if equal then 1L else 0L))
  end

(* The paper's dfs: pop a node, open its scope, stack its valid children,
   yield it. *)
and expand env n ~depth_first =
  let limit = env.Env.flags.Env.expansion_limit in
  if n.state = 0 then begin
    if env.Env.flags.Env.cycle_detect then n.visited <- Some (Hashtbl.create 64);
    n.counter <- 0L;
    n.state <- 1;
    n.work <- []
  end;
  let seen_before w =
    match n.visited with
    | None -> false
    | Some tbl -> (
        match w.Value.st with
        | Value.Rint key ->
            if Hashtbl.mem tbl key then true
            else begin
              Hashtbl.replace tbl key ();
              false
            end
        | _ -> false)
  in
  match n.work with
  | node :: rest ->
      n.counter <- Int64.add n.counter 1L;
      if limit > 0 && Int64.compare n.counter (Int64.of_int limit) > 0 then
        Error.failf "--> expansion exceeded %d nodes (cycle?)" limit
      else begin
        Env.push_scope env (Semantics.node_scope env node);
        let rec collect acc =
          match next env n.kids.(1) with
          | Some w -> (
              match Semantics.traversal_child_ok env w with
              | Some wf ->
                  Semantics.chase_hint env w wf;
                  collect (wf :: acc)
              | None -> collect acc)
          | None -> List.rev acc
        in
        let kids = List.filter (fun w -> not (seen_before w)) (collect []) in
        Env.pop_scope env;
        n.work <- (if depth_first then kids @ rest else rest @ kids);
        Some node
      end
  | [] -> (
      match next env n.kids.(0) with
      | None ->
          n.state <- 0;
          None
      | Some u -> (
          match Semantics.traversal_child_ok env u with
          | Some uf when not (seen_before uf) ->
              n.work <- [ uf ];
              expand env n ~depth_first
          | _ -> expand env n ~depth_first))

and select env n =
  if n.state = 0 then begin
    n.buffer <- [||];
    n.buffered <- 0;
    n.src_done <- false;
    n.src_scopes <- Env.stack env;
    n.depth <- Env.scope_depth env;
    n.state <- 1
  end;
  let pull () =
    if n.src_done then false
    else begin
      let outer = Env.stack env in
      Env.set_stack env n.src_scopes;
      let got =
        match next env n.kids.(0) with
        | None ->
            n.src_done <- true;
            false
        | Some v ->
            if n.buffered >= Array.length n.buffer then begin
              let grown = Array.make (max 16 (2 * Array.length n.buffer)) dummy_value in
              Array.blit n.buffer 0 grown 0 n.buffered;
              n.buffer <- grown
            end;
            n.buffer.(n.buffered) <- v;
            n.buffered <- n.buffered + 1;
            true
      in
      n.src_scopes <- Env.stack env;
      Env.set_stack env outer;
      got
    end
  in
  let rec nth i =
    if i < n.buffered then Some n.buffer.(i)
    else if pull () then nth i
    else None
  in
  match next env n.kids.(1) with
  | None ->
      reset n.kids.(0);
      n.state <- 0;
      None
  | Some idx -> (
      let i = Int64.to_int (Value.to_int64 env.Env.dbg idx) in
      if i < 0 then select env n
      else match nth i with Some v -> Some v | None -> select env n)

and until env n stop =
  if n.state = 0 then begin
    n.depth <- Env.scope_depth env;
    n.state <- 1
  end;
  match next env n.kids.(0) with
  | None ->
      n.state <- 0;
      None
  | Some u ->
      let fired =
        match stop with
        | Ir.Lit { Ir.l_source = true; l_value } ->
            Ops.values_equal env u l_value
        | _ ->
            (* the source's own scopes may be live; pop only the stop
               scope *)
            let stop_depth = Env.scope_depth env in
            Env.push_scope env (Semantics.node_scope env u);
            let rec any () =
              match next env n.kids.(1) with
              | Some v ->
                  if Value.truth env.Env.dbg v then true else any ()
              | None -> false
            in
            let f = any () in
            if f then reset n.kids.(1);
            Env.restore_scope_depth env stop_depth;
            f
      in
      if fired then begin
        reset n.kids.(0);
        Env.restore_scope_depth env n.depth;
        n.state <- 0;
        None
      end
      else Some u

(* The paper's while: check that all condition values are non-zero, yield
   the body, start over.  Iterations are bounded by [expansion_limit] —
   a runaway condition must surface as an error, not a hang (same
   contract as the traversal limit in [expand]). *)
and while_op env n =
  let limit = env.Env.flags.Env.expansion_limit in
  let cond_holds () =
    let depth = Env.scope_depth env in
    let rec check () =
      match next env n.kids.(0) with
      | Some v ->
          if Value.truth env.Env.dbg v then check ()
          else begin
            reset n.kids.(0);
            false
          end
      | None -> true
    in
    let ok = check () in
    Env.restore_scope_depth env depth;
    ok
  in
  if n.state = 0 then
    if cond_holds () then begin
      n.counter <- Int64.add n.counter 1L;
      if limit > 0 && Int64.compare n.counter (Int64.of_int limit) > 0 then
        Error.failf "loop exceeded %d iterations (runaway condition?)" limit;
      n.state <- 1;
      while_op env n
    end
    else None
  else
    match next env n.kids.(1) with
    | Some v -> Some v
    | None ->
        n.state <- 0;
        while_op env n

and for_op env n init cond step =
  let limit = env.Env.flags.Env.expansion_limit in
  let have_init = Option.is_some init in
  let have_cond = Option.is_some cond in
  let have_step = Option.is_some step in
  let cond_idx = if have_init then 1 else 0 in
  let step_idx = cond_idx + if have_cond then 1 else 0 in
  let body_idx = step_idx + if have_step then 1 else 0 in
  let cond_holds () =
    if not have_cond then true
    else begin
      let depth = Env.scope_depth env in
      let rec check () =
        match next env n.kids.(cond_idx) with
        | Some v ->
            if Value.truth env.Env.dbg v then check ()
            else begin
              reset n.kids.(cond_idx);
              false
            end
        | None -> true
      in
      let ok = check () in
      Env.restore_scope_depth env depth;
      ok
    end
  in
  match n.state with
  | 0 ->
      if have_init then drain env n.kids.(0);
      n.state <- 1;
      for_op env n init cond step
  | 1 ->
      if cond_holds () then begin
        n.counter <- Int64.add n.counter 1L;
        if limit > 0 && Int64.compare n.counter (Int64.of_int limit) > 0 then
          Error.failf "loop exceeded %d iterations (runaway condition?)" limit;
        n.state <- 2;
        for_op env n init cond step
      end
      else begin
        n.state <- 0;
        None
      end
  | _ -> (
      match next env n.kids.(body_idx) with
      | Some v -> Some v
      | None ->
          if have_step then drain env n.kids.(step_idx);
          n.state <- 1;
          for_op env n init cond step)

(* Cross product over the argument generators: a classic odometer.  State
   0 fills every wheel; afterwards the last wheel advances and exhausted
   wheels restart. *)
and call env n callee nargs =
  let produce () =
    Some (Semantics.call_function env callee (Array.to_list n.argvals))
  in
  if nargs = 0 then
    if n.state = 0 then begin
      n.state <- 1;
      produce ()
    end
    else begin
      n.state <- 0;
      None
    end
  else if n.state = 0 then begin
    n.argvals <- Array.make nargs dummy_value;
    let rec fill i =
      if i >= nargs then true
      else
        match next env n.kids.(i) with
        | Some v ->
            n.argvals.(i) <- v;
            fill (i + 1)
        | None -> false
    in
    if fill 0 then begin
      n.state <- 1;
      produce ()
    end
    else None
  end
  else begin
    let rec advance i =
      if i < 0 then false
      else
        match next env n.kids.(i) with
        | Some v ->
            n.argvals.(i) <- v;
            let rec refill j =
              if j >= nargs then true
              else
                match next env n.kids.(j) with
                | Some v ->
                    n.argvals.(j) <- v;
                    refill (j + 1)
                | None -> false
            in
            refill (i + 1)
        | None -> advance (i - 1)
    in
    if advance (nargs - 1) then produce ()
    else begin
      n.state <- 0;
      None
    end
  end

and declare env (name, te) =
  let t = Semantics.resolve_type env ~eval_int:(eval_int env) te in
  let size =
    try Layout.size_of env.Env.dbg.Dbgi.abi t
    with Layout.Incomplete what ->
      Error.failf "cannot declare a variable of incomplete type %s" what
  in
  let addr = env.Env.dbg.Dbgi.alloc_space size in
  Env.define_alias env name (Value.lvalue ~sym:(Symbolic.atom name) t addr)

and sizeof_expr env n psym =
  if n.state = 1 then begin
    n.state <- 0;
    None
  end
  else begin
    n.state <- 1;
    let depth = Env.scope_depth env in
    let t =
      match next env n.kids.(0) with
      | Some v -> v.Value.typ
      | None -> Error.fail "sizeof of an empty sequence"
    in
    reset n.kids.(0);
    Env.restore_scope_depth env depth;
    let size =
      try Layout.size_of env.Env.dbg.Dbgi.abi t
      with Layout.Incomplete what -> Error.failf "sizeof incomplete type %s" what
    in
    let sym = if sym_on env then psym else no_sym in
    Some (Value.int_value ~sym Ctype.ulong (Int64.of_int size))
  end

let eval env e =
  let root = compile e in
  Seq.of_dispenser (fun () -> next env root)
