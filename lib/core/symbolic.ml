(** Symbolic values.

    Every DUEL value carries a symbolic expression — a legal DUEL
    expression recording how the value was computed — used for result
    display ([x[3] = 7]) and error messages.  A symbolic value is a rope
    plus the precedence of its outermost operator, so composition can
    insert only the parentheses that are necessary.

    The rope matters: a pointer chain [p->next->next->...] extends its
    symbolic value once per generator step, and flat strings would copy
    the whole left operand each time — O(n²) across a traversal, which is
    exactly the hot path the data cache makes cheap on the target side.
    Composition here is O(1); the text is materialised once, in
    {!to_string}, by an iterative flatten. *)

type rope = Str of string | Cat of rope * rope

type t = { rope : rope; len : int; prec : int }

(* Precedence levels, matching the parser (higher binds tighter). *)
let prec_seq = 0
let prec_alt = 1
let prec_imply = 2
let prec_assign = 3
let prec_cond = 4
let prec_to = 5
let prec_logor = 6
let prec_logand = 7
let prec_bitor = 8
let prec_bitxor = 9
let prec_bitand = 10
let prec_equality = 11
let prec_relational = 12
let prec_shift = 13
let prec_additive = 14
let prec_multiplicative = 15
let prec_unary = 16
let prec_postfix = 17
let prec_atom = 18

let atom text = { rope = Str text; len = String.length text; prec = prec_atom }

let lparen = Str "("
let rparen = Str ")"

let paren_if needed sym =
  if needed then (Cat (lparen, Cat (sym.rope, rparen)), sym.len + 2)
  else (sym.rope, sym.len)

(* Render an operand appearing under an operator of precedence [op].  For
   left operands of left-associative operators equal precedence is fine;
   for right operands it needs parens. *)
let left op sym = paren_if (sym.prec < op) sym
let right op sym = paren_if (sym.prec <= op) sym

let binary op_prec op_text a b =
  let ra, la = left op_prec a and rb, lb = right op_prec b in
  {
    rope = Cat (ra, Cat (Str op_text, rb));
    len = la + String.length op_text + lb;
    prec = op_prec;
  }

(* Right-associative operators: the right operand of equal precedence
   needs no parentheses ([a => b => c]). *)
let binary_r op_prec op_text a b =
  let ra, la = right op_prec a and rb, lb = left op_prec b in
  {
    rope = Cat (ra, Cat (Str op_text, rb));
    len = la + String.length op_text + lb;
    prec = op_prec;
  }

let unary op_text a =
  let r, l = paren_if (a.prec < prec_unary) a in
  {
    rope = Cat (Str op_text, r);
    len = String.length op_text + l;
    prec = prec_unary;
  }

let postfix a suffix =
  let r, l = left prec_postfix a in
  {
    rope = Cat (r, Str suffix);
    len = l + String.length suffix;
    prec = prec_postfix;
  }

(* Member access through a with scope: base.field / base->field. *)
let member base sep name =
  let r, l = left prec_postfix base in
  {
    rope = Cat (r, Cat (Str sep, Str name));
    len = l + String.length sep + String.length name;
    prec = prec_postfix;
  }

let prec sym = sym.prec

(* Explicit parenthesization and concatenation, for composite forms
   (conditionals, statement-like renderings) built outside the standard
   operator shapes. *)
let parens_if needed sym =
  if needed then
    {
      rope = Cat (lparen, Cat (sym.rope, rparen));
      len = sym.len + 2;
      prec = prec_atom;
    }
  else sym

let juxt result_prec parts =
  match parts with
  | [] -> { rope = Str ""; len = 0; prec = result_prec }
  | first :: rest ->
      let sym =
        List.fold_left
          (fun acc p -> { rope = Cat (acc.rope, p.rope); len = acc.len + p.len; prec = result_prec })
          first rest
      in
      { sym with prec = result_prec }

(* Iterative flatten (an explicit worklist, all tail calls): symbolic
   ropes of 100k-step traversals must not overflow the stack. *)
let to_string sym =
  let buf = Buffer.create sym.len in
  let rec go todo rope =
    match rope with
    | Str s -> (
        Buffer.add_string buf s;
        match todo with [] -> () | next :: rest -> go rest next)
    | Cat (a, b) -> go (b :: todo) a
  in
  go [] sym.rope;
  Buffer.contents buf

(* --- the -->a[[n]] compression rule ------------------------------------

   The paper: "The symbolic display algorithm automatically prints
   occurrences of ->a->a as -->a[[2]], etc." but its own transcripts leave
   two- and three-long chains expanded; we compress runs of length >=
   [threshold] (default 4), which is consistent with both transcripts that
   show a run length. *)

let default_threshold = 4

let compress ?(threshold = default_threshold) text =
  let n = String.length text in
  let buf = Buffer.create n in
  let ident_at i =
    (* the identifier starting at i, if any *)
    let is_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
    let is_char c = is_start c || (c >= '0' && c <= '9') in
    if i < n && is_start text.[i] then begin
      let j = ref (i + 1) in
      while !j < n && is_char text.[!j] do
        incr j
      done;
      Some (String.sub text i (!j - i))
    end
    else None
  in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && text.[i] = '-' && text.[i + 1] = '>' then begin
      match ident_at (i + 2) with
      | None ->
          Buffer.add_string buf "->";
          go (i + 2)
      | Some name ->
          let step = 2 + String.length name in
          let rec count_run k j =
            if
              j + 1 < n && text.[j] = '-' && text.[j + 1] = '>'
              && ident_at (j + 2) = Some name
            then count_run (k + 1) (j + step)
            else (k, j)
          in
          let run, stop = count_run 1 (i + step) in
          if run >= threshold then begin
            Buffer.add_string buf (Printf.sprintf "-->%s[[%d]]" name run);
            go stop
          end
          else begin
            Buffer.add_string buf "->";
            Buffer.add_string buf name;
            go (i + step)
          end
    end
    else begin
      Buffer.add_char buf text.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf
