module Ctype = Duel_ctype.Ctype
module Tenv = Duel_ctype.Tenv
module Dbgi = Duel_dbgi.Dbgi

type comp_info = {
  ci_comp : Ctype.comp;
  ci_addr : int;
  ci_sep : string;
  ci_sym : Symbolic.t;
}

type scope = {
  sc_value : Value.t;
  sc_lookup : string -> Value.t option;
  sc_comp : comp_info option;
}

type flags = {
  mutable symbolic : bool;
  mutable cycle_detect : bool;
  mutable compress : int;
  mutable expansion_limit : int;
}

(* Invalidation counters for the lowered-name resolution cache (see
   lib/core/ir.ml): a slot captured under one generation is stale as soon
   as the corresponding counter moves. *)
type gens = {
  mutable g_scope : int;  (* any with-scope push/pop/swap *)
  mutable g_alias : int;  (* any alias (re)definition *)
  mutable g_ext : int;  (* target calls, frame changes, external stores *)
  mutable last_probe : int;  (* last observed Memory.generation *)
}

type lstats = {
  mutable l_hits : int;
  mutable l_misses : int;
  mutable l_stale : int;  (* misses that evicted a previously valid slot *)
  mutable l_dynamic : int;  (* full lookups forced by `set lower off` *)
}

type t = {
  dbg : Dbgi.t;
  aliases : (string, Value.t) Hashtbl.t;
  mutable scopes : scope list;
  mutable depth : int;
  strings : (string, int) Hashtbl.t;
  flags : flags;
  gens : gens;
  lstats : lstats;
  probe : (unit -> int) option;
}

let default_flags () =
  {
    symbolic = true;
    cycle_detect = false;
    compress = Symbolic.default_threshold;
    expansion_limit = 1_000_000;
  }

let create ?probe dbg =
  {
    dbg;
    aliases = Hashtbl.create 16;
    scopes = [];
    depth = 0;
    strings = Hashtbl.create 16;
    flags = default_flags ();
    gens =
      {
        g_scope = 0;
        g_alias = 0;
        g_ext = 0;
        last_probe = (match probe with Some p -> p () | None -> 0);
      };
    lstats = { l_hits = 0; l_misses = 0; l_stale = 0; l_dynamic = 0 };
    probe;
  }

(* --- generations -------------------------------------------------------- *)

let bump_ext env = env.gens.g_ext <- env.gens.g_ext + 1

(* Snoop the external-store probe (Memory.generation for in-process
   backends): any write that did not come through this evaluation — the
   mini-C interpreter stepping, a frame push, a test poking memory —
   moves it, and cached frame/global resolutions must re-check. *)
let refresh_ext env =
  match env.probe with
  | None -> ()
  | Some p ->
      let g = p () in
      if g <> env.gens.last_probe then begin
        env.gens.last_probe <- g;
        bump_ext env
      end

type stamp = { p_scope : int; p_alias : int; p_ext : int }

let stamp env =
  refresh_ext env;
  { p_scope = env.gens.g_scope; p_alias = env.gens.g_alias; p_ext = env.gens.g_ext }

(* A cached slot is usable iff nothing that could shadow or move its
   binding happened since it was captured: no alias definition, no
   external/frame activity, and — unless the scope stack is empty, where
   nothing can shadow — no scope motion at all. *)
let stamp_valid env s =
  refresh_ext env;
  s.p_alias = env.gens.g_alias
  && s.p_ext = env.gens.g_ext
  && (env.depth = 0 || s.p_scope = env.gens.g_scope)

(* --- aliases and scopes -------------------------------------------------- *)

let define_alias env name v =
  env.gens.g_alias <- env.gens.g_alias + 1;
  Hashtbl.replace env.aliases name v

let find_alias env name = Hashtbl.find_opt env.aliases name

let push_scope env sc =
  env.scopes <- sc :: env.scopes;
  env.depth <- env.depth + 1;
  env.gens.g_scope <- env.gens.g_scope + 1

let pop_scope env =
  match env.scopes with
  | [] -> invalid_arg "Env.pop_scope: empty scope stack"
  | _ :: rest ->
      env.scopes <- rest;
      env.depth <- env.depth - 1;
      env.gens.g_scope <- env.gens.g_scope + 1

let current_scope env =
  match env.scopes with
  | sc :: _ -> sc
  | [] -> Error.fail "_ used outside of a with scope (. -> --> @)"

let scope_depth env = env.depth

let restore_scope_depth env depth =
  if env.depth > depth then begin
    let rec drop scopes n =
      if n <= 0 then scopes
      else match scopes with [] -> [] | _ :: rest -> drop rest (n - 1)
    in
    env.scopes <- drop env.scopes (env.depth - depth);
    env.depth <- depth;
    env.gens.g_scope <- env.gens.g_scope + 1
  end

type stack = { sk_scopes : scope list; sk_depth : int }

let empty_stack = { sk_scopes = []; sk_depth = 0 }
let stack env = { sk_scopes = env.scopes; sk_depth = env.depth }

let set_stack env sk =
  if env.scopes != sk.sk_scopes then begin
    env.scopes <- sk.sk_scopes;
    env.depth <- sk.sk_depth;
    env.gens.g_scope <- env.gens.g_scope + 1
  end

(* --- the five-stage resolution chain ------------------------------------ *)

let rec scope_find scopes name =
  match scopes with
  | [] -> None
  | sc :: rest -> (
      match sc.sc_lookup name with
      | Some v -> Some v
      | None -> scope_find rest name)

let frame_local env name =
  match env.dbg.Dbgi.frames () with
  | [] -> None
  | frame :: _ -> (
      match List.assoc_opt name frame.Dbgi.fr_locals with
      | Some info ->
          Some
            (Value.lvalue ~sym:(Symbolic.atom name) info.Dbgi.v_type
               info.Dbgi.v_addr)
      | None -> None)

let global env name =
  match env.dbg.Dbgi.find_variable name with
  | Some info ->
      Some
        (Value.lvalue ~sym:(Symbolic.atom name) info.Dbgi.v_type
           info.Dbgi.v_addr)
  | None -> None

let enum_const env name =
  match Tenv.find_enum_const env.dbg.Dbgi.tenv name with
  | Some (e, v) ->
      Some (Value.int_value ~sym:(Symbolic.atom name) (Ctype.Enum e) v)
  | None -> None

let lookup env name =
  match scope_find env.scopes name with
  | Some v -> v
  | None -> (
      match find_alias env name with
      | Some v -> Value.with_sym v (Symbolic.atom name)
      | None -> (
          match frame_local env name with
          | Some v -> v
          | None -> (
              match global env name with
              | Some v -> v
              | None -> (
                  match enum_const env name with
                  | Some v -> v
                  | None -> Error.failf "undefined name %s" name))))

let string_literal env s =
  match Hashtbl.find_opt env.strings s with
  | Some addr -> addr
  | None ->
      let addr = env.dbg.Dbgi.alloc_space (String.length s + 1) in
      env.dbg.Dbgi.put_bytes ~addr (Bytes.of_string (s ^ "\000"));
      Hashtbl.replace env.strings s addr;
      addr
