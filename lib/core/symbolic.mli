(** Symbolic values: the DUEL expression recording how a value was
    computed, used for [sym = value] display and error messages.

    Internally a rope, so composing a long chain ([p->next->next->...])
    is O(1) per step instead of re-copying the left operand; the text is
    materialised once by {!to_string}. *)

type t

(** {1 Precedence levels} (matching the parser; higher binds tighter) *)

val prec_seq : int
val prec_alt : int
val prec_imply : int
val prec_assign : int
val prec_cond : int
val prec_to : int
val prec_logor : int
val prec_logand : int
val prec_bitor : int
val prec_bitxor : int
val prec_bitand : int
val prec_equality : int
val prec_relational : int
val prec_shift : int
val prec_additive : int
val prec_multiplicative : int
val prec_unary : int
val prec_postfix : int
val prec_atom : int

(** {1 Construction} — inserts only the parentheses the precedences
    require *)

val atom : string -> t

val binary : int -> string -> t -> t -> t
(** Left-associative binary operator at the given precedence. *)

val binary_r : int -> string -> t -> t -> t
(** Right-associative ([a => b => c] needs no parens on the right). *)

val unary : string -> t -> t
val postfix : t -> string -> t

val member : t -> string -> string -> t
(** [member base sep name] is [base.field] / [base->field]. *)

val prec : t -> int
(** Precedence of the outermost operator. *)

val parens_if : bool -> t -> t
(** Wrap in parentheses (result is atomic) when the flag holds. *)

val juxt : int -> t list -> t
(** Concatenate pieces verbatim; the result claims the given precedence.
    For composite renderings (conditionals, statement forms) that do not
    fit the binary/unary shapes. *)

val to_string : t -> string

(** {1 The [-->a[[n]]] compression rule} *)

val default_threshold : int

val compress : ?threshold:int -> string -> string
(** Rewrite runs of [->a] of length >= [threshold] as [-->a[[n]]]. *)
