(** A DUEL session: the [duel] command.

    Owns the environment (aliases persist across commands, as in the
    original), parses command strings, drives the selected evaluation
    engine, and formats each produced value as the paper does —
    [symbolic = value] with [-->a[[n]]] compression — or a structured
    error message ("Illegal memory reference in ...: sym = lvalue 0x..").
*)

type engine = Seq_engine | Sm_engine

type t = {
  env : Env.t;
  mutable engine : engine;
  mutable max_values : int;  (** cap on printed values per command; 0 = no cap *)
}

val create : ?engine:engine -> Duel_dbgi.Dbgi.t -> t

val parse : t -> string -> Ast.expr
(** @raise Parser.Error / Lexer.Error *)

val eval : t -> Ast.expr -> Value.t Seq.t
(** Evaluate with the session's engine (no printing). *)

val drive : t -> Ast.expr -> int
(** Evaluate and discard all values (the benchmark path: no display
    formatting); returns the number of values produced. *)

val format_value : t -> Value.t -> string
(** One output line: [symbolic = value]. *)

val exec : t -> string -> string list
(** The [duel] command: parse, evaluate, format.  All errors (lexical,
    syntax, evaluation) come back as output lines rather than exceptions;
    the scope stack is restored afterwards, whatever happened. *)

val exec_string : t -> string -> string
(** [exec] joined with newlines. *)

val cache_stats : t -> string list
(** Human-readable {!Duel_dbgi.Dcache} counters for the session's
    debugger interface (the [info cache] command), or a single
    "memory cache: off" line when the interface is uncached.  [exec] and
    [drive] flush the cache's coalesced writes when a command finishes,
    so memory is consistent between commands. *)
