(** A DUEL session: the [duel] command.

    Owns the environment (aliases persist across commands, as in the
    original), parses command strings, lowers the AST to slotted IR
    ({!Lower}), drives the selected evaluation engine, and formats each
    produced value as the paper does — [symbolic = value] with
    [-->a[[n]]] compression — or a structured error message ("Illegal
    memory reference in ...: sym = lvalue 0x..").
*)

type engine =
  | Seq_engine  (** the reference recursive-[Seq.t] evaluator *)
  | Sm_engine  (** the explicit state-machine evaluator *)
  | Vm_engine  (** the bytecode VM ({!Compile} + {!Vm}) *)

type t = {
  env : Env.t;
  mutable engine : engine;
  mutable max_values : int;  (** cap on printed values per command; 0 = no cap *)
  mutable lower : bool;
      (** [true] (default): lower with resolution slots; [false]: the
          ablation — identical IR with every slot pinned dynamic
          ([set lower off]) *)
  vstats : Vm.stats;  (** VM counters, accumulated across commands *)
  mutable vm_plan : (Ir.expr * Bytecode.program) option;
      (** one-entry compile memo keyed by physical IR identity, so
          re-driving the same tree (benchmarks, watchpoints) compiles
          once *)
}

val create : ?engine:engine -> Duel_dbgi.Dbgi.t -> t
(** Wires the environment's external-state probe to the data cache's
    coherence probe when [dbg] was wrapped with one, so slot caches see
    the same store-generation the dcache snoops. *)

val parse : t -> string -> Ast.expr
(** @raise Parser.Error / Lexer.Error *)

val compile : t -> Ast.expr -> Ir.expr
(** The lowering step, honouring the session's [lower] flag. *)

val eval : t -> Ast.expr -> Value.t Seq.t
(** [compile] then evaluate with the session's engine (no printing). *)

val eval_ir : t -> Ir.expr -> Value.t Seq.t
(** Evaluate already-lowered IR (re-running a compiled command hits the
    slots populated by earlier runs). *)

val drive : t -> Ast.expr -> int
(** Evaluate and discard all values (the benchmark path: no display
    formatting); returns the number of values produced. *)

val drive_ir : t -> Ir.expr -> int
(** [drive] for pre-compiled IR — benchmarks separate the one-time
    lowering cost from steady-state evaluation with this. *)

val format_value : t -> Value.t -> string
(** One output line: [symbolic = value]. *)

val exec : t -> string -> string list
(** The [duel] command: parse, lower, evaluate, format.  All errors
    (lexical, syntax, evaluation) come back as output lines rather than
    exceptions; the scope stack is restored afterwards, whatever
    happened. *)

val exec_program : t -> Bytecode.program -> string list
(** [exec] for an already-compiled program (the serve layer's plan
    cache): runs it on the VM with the same output and error contract as
    [exec] on the program's source text.  Share programs across sessions
    only via {!Bytecode.clone}. *)

val exec_string : t -> string -> string
(** [exec] joined with newlines. *)

val cache_stats : t -> string list
(** Human-readable {!Duel_dbgi.Dcache} counters for the session's
    debugger interface (the [info cache] command), or a single
    "memory cache: off" line when the interface is uncached.  [exec] and
    [drive] flush the cache's coalesced writes when a command finishes,
    so memory is consistent between commands. *)

val prefetch_stats : t -> string list
(** Human-readable {!Duel_dbgi.Prefetch} counters for the session's
    interface (the [info prefetch] command): speculative lines issued /
    useful / wasted, swallowed speculative faults, span reads and engine
    hints — or a single "prefetch: off" line when no predictor is
    attached. *)

val set_prefetch : t -> bool -> bool
(** Enable or disable speculation on the session's interface (the
    [set prefetch on|off] command), attaching a predictor first if the
    interface is cached but was started without one.  [false] when there
    is no data cache to speculate into. *)

val lower_stats : t -> string list
(** Human-readable resolution-cache counters (the [info lower] command):
    whether lowering is on, plus slot hit/miss/stale/dynamic counts from
    {!Env.lstats}. *)

val vm_stats : t -> string list
(** Human-readable VM counters (the [info vm] command): engine mode,
    instruction dispatches, superinstruction hits, frame allocations,
    fallback generators and fused reduce elements. *)
