(** The state-machine generator engine — a faithful port of the paper's
    implementation.

    The paper's [duel_eval] walks the tree with an explicit non-negative
    [state] integer and a saved [value] per node, simulating coroutines;
    each call produces the node's next value and [NOVALUE] (here [None])
    ends the sequence, resetting the node so "the next call to eval
    re-evaluates the node".  This engine reproduces that structure
    operator by operator (the Seq engine in {!Eval_seq} is the idiomatic
    OCaml rendering of the same semantics); differential tests force the
    two to agree, and bench B4 compares their cost. *)

val eval : Env.t -> Ir.expr -> Value.t Seq.t
(** Compile the lowered IR into a mutable state-machine tree and expose
    it as an ephemeral sequence (single traversal). *)
