let binop_text = function
  | Ast.Badd -> ("+", Symbolic.prec_additive)
  | Ast.Bsub -> ("-", Symbolic.prec_additive)
  | Ast.Bmul -> ("*", Symbolic.prec_multiplicative)
  | Ast.Bdiv -> ("/", Symbolic.prec_multiplicative)
  | Ast.Bmod -> ("%", Symbolic.prec_multiplicative)
  | Ast.Blt -> ("<", Symbolic.prec_relational)
  | Ast.Bgt -> (">", Symbolic.prec_relational)
  | Ast.Ble -> ("<=", Symbolic.prec_relational)
  | Ast.Bge -> (">=", Symbolic.prec_relational)
  | Ast.Beq -> ("==", Symbolic.prec_equality)
  | Ast.Bne -> ("!=", Symbolic.prec_equality)
  | Ast.Bshl -> ("<<", Symbolic.prec_shift)
  | Ast.Bshr -> (">>", Symbolic.prec_shift)
  | Ast.Bband -> ("&", Symbolic.prec_bitand)
  | Ast.Bbor -> ("|", Symbolic.prec_bitor)
  | Ast.Bbxor -> ("^", Symbolic.prec_bitxor)

let filter_text = function
  | Ast.Qlt -> ("<?", Symbolic.prec_relational)
  | Ast.Qgt -> (">?", Symbolic.prec_relational)
  | Ast.Qle -> ("<=?", Symbolic.prec_relational)
  | Ast.Qge -> (">=?", Symbolic.prec_relational)
  | Ast.Qeq -> ("==?", Symbolic.prec_equality)
  | Ast.Qne -> ("!=?", Symbolic.prec_equality)

let unop_text = function
  | Ast.Uminus -> "-"
  | Ast.Uplus -> "+"
  | Ast.Unot -> "!"
  | Ast.Ubnot -> "~"
  | Ast.Uderef -> "*"
  | Ast.Uaddr -> "&"

let reduction_text = function
  | Ast.Rcount -> "#/"
  | Ast.Rsum -> "+/"
  | Ast.Rall -> "&&/"
  | Ast.Rany -> "||/"

let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c when Char.code c >= 32 && Char.code c < 127 -> String.make 1 c
  | c -> Printf.sprintf "\\%03o" (Char.code c)

(* Each node renders to a Symbolic.t (string + outer precedence), giving
   the minimal-parentheses composition for free. *)
let rec doc (e : Ast.expr) : Symbolic.t =
  match e with
  | Ast.Int_lit (_, _, lex) -> Symbolic.atom lex
  | Ast.Float_lit (_, _, lex) -> Symbolic.atom lex
  | Ast.Char_lit (_, lex) -> Symbolic.atom lex
  | Ast.Str_lit s ->
      Symbolic.atom
        ("\""
        ^ String.concat "" (List.map escape_char (List.init (String.length s) (String.get s)))
        ^ "\"")
  | Ast.Name n -> Symbolic.atom n
  | Ast.Underscore -> Symbolic.atom "_"
  | Ast.Unary (op, a) -> Symbolic.unary (unop_text op) (doc a)
  | Ast.Incdec (Ast.Preinc, a) -> Symbolic.unary "++" (doc a)
  | Ast.Incdec (Ast.Predec, a) -> Symbolic.unary "--" (doc a)
  | Ast.Incdec (Ast.Postinc, a) -> Symbolic.postfix (doc a) "++"
  | Ast.Incdec (Ast.Postdec, a) -> Symbolic.postfix (doc a) "--"
  | Ast.Binary (op, a, b) ->
      let text, prec = binop_text op in
      Symbolic.binary prec text (doc a) (doc b)
  | Ast.Logand (a, b) -> Symbolic.binary Symbolic.prec_logand " && " (doc a) (doc b)
  | Ast.Logor (a, b) -> Symbolic.binary Symbolic.prec_logor " || " (doc a) (doc b)
  | Ast.Filter (f, a, b) ->
      let text, prec = filter_text f in
      Symbolic.binary prec (" " ^ text ^ " ") (doc a) (doc b)
  | Ast.Cond (c, t, f) ->
      Symbolic.juxt Symbolic.prec_cond
        [
          Symbolic.parens_if (c_prec c <= Symbolic.prec_cond) (doc c);
          Symbolic.atom " ? ";
          doc t;
          Symbolic.atom " : ";
          Symbolic.parens_if (c_prec f < Symbolic.prec_cond) (doc f);
        ]
  | Ast.Assign (None, l, r) ->
      Symbolic.binary_r Symbolic.prec_assign " = " (doc l) (doc r)
  | Ast.Assign (Some op, l, r) ->
      let text, _ = binop_text op in
      Symbolic.binary_r Symbolic.prec_assign (" " ^ text ^ "= ") (doc l) (doc r)
  | Ast.Cast (te, a) ->
      Symbolic.unary ("(" ^ type_doc te ^ ")") (doc a)
  | Ast.Call (f, args) ->
      Symbolic.postfix (doc f)
        ("(" ^ String.concat ", " (List.map (fun a -> Symbolic.to_string (doc a)) args) ^ ")")
  | Ast.Index (a, i) ->
      Symbolic.postfix (doc a) ("[" ^ Symbolic.to_string (doc i) ^ "]")
  | Ast.With (Ast.Wdot, a, b) -> Symbolic.postfix (doc a) ("." ^ with_rhs b)
  | Ast.With (Ast.Warrow, a, b) -> Symbolic.postfix (doc a) ("->" ^ with_rhs b)
  | Ast.Dfs (a, b) -> Symbolic.postfix (doc a) ("-->" ^ with_rhs b)
  | Ast.Bfs (a, b) -> Symbolic.postfix (doc a) ("-->>" ^ with_rhs b)
  | Ast.To (a, b) -> Symbolic.binary Symbolic.prec_to ".." (doc a) (doc b)
  | Ast.To_inf a ->
      Symbolic.juxt Symbolic.prec_to
        [
          Symbolic.parens_if (c_prec a < Symbolic.prec_to) (doc a);
          Symbolic.atom "..";
        ]
  | Ast.Up_to a ->
      Symbolic.juxt Symbolic.prec_to
        [
          Symbolic.atom "..";
          Symbolic.parens_if (c_prec a <= Symbolic.prec_to) (doc a);
        ]
  | Ast.Alt (a, b) -> Symbolic.binary_r Symbolic.prec_alt "," (doc a) (doc b)
  | Ast.Seq (a, b) -> Symbolic.binary_r Symbolic.prec_seq "; " (doc a) (doc b)
  | Ast.Seq_void a ->
      Symbolic.juxt Symbolic.prec_seq [ doc a; Symbolic.atom " ;" ]
  | Ast.Imply (a, b) -> Symbolic.binary_r Symbolic.prec_imply " => " (doc a) (doc b)
  | Ast.Def_alias (n, a) ->
      Symbolic.juxt Symbolic.prec_assign
        [
          Symbolic.atom (n ^ " := ");
          Symbolic.parens_if (c_prec a < Symbolic.prec_assign) (doc a);
        ]
  | Ast.Select (a, i) ->
      Symbolic.postfix (doc a) ("[[" ^ Symbolic.to_string (doc i) ^ "]]")
  | Ast.Until (a, stop) ->
      Symbolic.postfix (doc a)
        ("@"
        ^ Symbolic.to_string
            (Symbolic.parens_if (c_prec stop < Symbolic.prec_atom) (doc stop)))
  | Ast.Index_alias (a, n) -> Symbolic.postfix (doc a) ("#" ^ n)
  | Ast.Reduce (r, a) -> Symbolic.unary (reduction_text r) (doc a)
  | Ast.Seq_eq (a, b) ->
      Symbolic.binary Symbolic.prec_equality " ==/ " (doc a) (doc b)
  | Ast.Braces a -> Symbolic.atom ("{" ^ Symbolic.to_string (doc a) ^ "}")
  | Ast.Group a -> Symbolic.atom ("(" ^ Symbolic.to_string (doc a) ^ ")")
  | Ast.If (c, t, None) ->
      Symbolic.juxt Symbolic.prec_unary
        [
          Symbolic.atom ("if (" ^ Symbolic.to_string (doc c) ^ ") ");
          Symbolic.parens_if (c_prec t < Symbolic.prec_imply) (doc t);
        ]
  | Ast.If (c, t, Some f) ->
      Symbolic.juxt Symbolic.prec_unary
        [
          Symbolic.atom ("if (" ^ Symbolic.to_string (doc c) ^ ") ");
          Symbolic.parens_if (c_prec t < Symbolic.prec_imply) (doc t);
          Symbolic.atom " else ";
          Symbolic.parens_if (c_prec f < Symbolic.prec_imply) (doc f);
        ]
  | Ast.For (i, c, s, b) ->
      let opt = function None -> "" | Some e -> Symbolic.to_string (doc e) in
      Symbolic.juxt Symbolic.prec_unary
        [
          Symbolic.atom
            (Printf.sprintf "for (%s; %s; %s) " (opt i) (opt c) (opt s));
          Symbolic.parens_if (c_prec b < Symbolic.prec_imply) (doc b);
        ]
  | Ast.While (c, b) ->
      Symbolic.juxt Symbolic.prec_unary
        [
          Symbolic.atom ("while (" ^ Symbolic.to_string (doc c) ^ ") ");
          Symbolic.parens_if (c_prec b < Symbolic.prec_imply) (doc b);
        ]
  | Ast.Decl (base, ds) ->
      (* each declarator's type embeds the base; render only the
         derivation part next to the shared base specifier *)
      let declarator (name, te) = declare_rel te name in
      Symbolic.juxt Symbolic.prec_assign
        [
          Symbolic.atom
            (base_doc base ^ " " ^ String.concat ", " (List.map declarator ds));
        ]
  | Ast.Sizeof_expr a -> Symbolic.unary "sizeof " (doc a)
  | Ast.Sizeof_type te -> Symbolic.atom ("sizeof(" ^ type_doc te ^ ")")
  | Ast.Frame a -> Symbolic.atom ("frame(" ^ Symbolic.to_string (doc a) ^ ")")
  | Ast.Frames_gen -> Symbolic.atom "frames"

and c_prec e = Symbolic.prec (doc e)

and with_rhs b =
  match b with
  | Ast.Name n -> n
  | Ast.Underscore -> "_"
  | Ast.Group _ | Ast.Braces _ -> Symbolic.to_string (doc b)
  | _ -> Symbolic.to_string (doc b)

and base_doc = function
  | Ast.Tname words -> String.concat " " words
  | Ast.Tstruct_ref tag -> "struct " ^ tag
  | Ast.Tunion_ref tag -> "union " ^ tag
  | Ast.Tenum_ref tag -> "enum " ^ tag
  | Ast.Ttypedef_ref name -> name
  | Ast.Tptr _ | Ast.Tarr _ -> assert false

(* Render a declarator for [name]: pointers prefix, arrays suffix. *)
and declare te name =
  match te with
  | Ast.Tptr inner -> declare inner ("*" ^ name)
  | Ast.Tarr (inner, dim) ->
      let name = if String.length name > 0 && name.[0] = '*' then "(" ^ name ^ ")" else name in
      let d = match dim with None -> "" | Some e -> Symbolic.to_string (doc e) in
      declare inner (name ^ "[" ^ d ^ "]")
  | base -> (if name = "" then base_doc base else base_doc base ^ " " ^ name)

and type_doc te = declare te ""

(* Declarator without the base specifier (for joint declarations). *)
and declare_rel te name =
  match te with
  | Ast.Tptr inner -> declare_rel inner ("*" ^ name)
  | Ast.Tarr (inner, dim) ->
      let name =
        if String.length name > 0 && name.[0] = '*' then "(" ^ name ^ ")"
        else name
      in
      let d = match dim with None -> "" | Some e -> Symbolic.to_string (doc e) in
      declare_rel inner (name ^ "[" ^ d ^ "]")
  | Ast.Tname _ | Ast.Tstruct_ref _ | Ast.Tunion_ref _ | Ast.Tenum_ref _
  | Ast.Ttypedef_ref _ ->
      name

let to_string e = Symbolic.to_string (doc e)
let type_to_string = type_doc
