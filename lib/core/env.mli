(** Evaluation environment: the alias table, the [with]-scope
    name-resolution stack, per-session flags, generation counters guarding
    the lowered-name resolution cache, and the debugger handle.

    Name resolution order (paper: "C's scope rules apply", extended by
    [with] scopes and aliases): innermost [with] scopes first, then
    aliases (including DUEL declarations and [#] index aliases), then the
    innermost frame's locals, then globals and functions, then enumeration
    constants. *)

module Ctype = Duel_ctype.Ctype
module Dbgi = Duel_dbgi.Dbgi

type comp_info = {
  ci_comp : Ctype.comp;
  ci_addr : int;
  ci_sep : string;  (** ["."] or ["->"], for member symbolics *)
  ci_sym : Symbolic.t;  (** the subject's symbolic, the member's base *)
}
(** When a scope is a struct/union member scope, the data needed to build
    any member value directly — the lowered engines' member slots check
    the component by physical identity and rebuild from here. *)

type scope = {
  sc_value : Value.t;  (** what [_] refers to *)
  sc_lookup : string -> Value.t option;
      (** member resolution, producing values with qualified symbolics
          such as [hash[42]->scope] *)
  sc_comp : comp_info option;  (** set iff this is a comp member scope *)
}

type flags = {
  mutable symbolic : bool;
      (** compute symbolic values (on by default; the B3 bench measures
          the paper's claim that this dominates evaluation cost) *)
  mutable cycle_detect : bool;
      (** detect cycles in [-->]/[-->>] (off by default, matching the
          paper's implementation; on to traverse cyclic lists safely) *)
  mutable compress : int;  (** [-->a[[n]]] compression threshold *)
  mutable expansion_limit : int;
      (** safety cap on nodes yielded by one [-->]; 0 = unlimited *)
}

type gens = {
  mutable g_scope : int;
  mutable g_alias : int;
  mutable g_ext : int;
  mutable last_probe : int;
}
(** Generation counters invalidating cached name slots: [g_scope] moves
    on every scope push/pop/swap, [g_alias] on every alias definition,
    [g_ext] on target calls and whenever the external-store probe (the
    backend's [Memory.generation] for in-process targets) moves. *)

type lstats = {
  mutable l_hits : int;
  mutable l_misses : int;
  mutable l_stale : int;
  mutable l_dynamic : int;
}
(** Resolution-cache counters (the [info lower] command): [l_stale]
    counts the misses that evicted a previously cached slot, [l_dynamic]
    the full lookups taken because lowering was ablated. *)

type t = {
  dbg : Dbgi.t;
  aliases : (string, Value.t) Hashtbl.t;
  mutable scopes : scope list;
  mutable depth : int;  (** [List.length scopes], maintained incrementally *)
  strings : (string, int) Hashtbl.t;  (** interned target string literals *)
  flags : flags;
  gens : gens;
  lstats : lstats;
  probe : (unit -> int) option;
}

val create : ?probe:(unit -> int) -> Dbgi.t -> t
(** [probe] is an external write-generation source (e.g. the data cache's
    coherence probe); cached frame/global name slots re-validate against
    it, so stores that bypass the evaluator invalidate them. *)

val default_flags : unit -> flags

val lookup : t -> string -> Value.t
(** The full, uncached resolution chain.
    @raise Error.Duel_error on undefined names. *)

val define_alias : t -> string -> Value.t -> unit
(** Also bumps [g_alias], invalidating every cached name slot. *)

val find_alias : t -> string -> Value.t option
val push_scope : t -> scope -> unit
val pop_scope : t -> unit

val current_scope : t -> scope
(** Innermost scope, for [_].  @raise Error.Duel_error if none. *)

val scope_depth : t -> int
(** O(1): the depth is maintained by push/pop. *)

val restore_scope_depth : t -> int -> unit
(** Drop scopes down to a saved depth — used by operators that abandon a
    subsequence early ([@], select) so the stack cannot leak. *)

(** {1 Scope-stack snapshots}

    Operators that interleave two evaluation contexts (assignment right
    sides, select sources) swap the whole stack; going through this API
    keeps [depth] and [g_scope] coherent. *)

type stack

val empty_stack : stack
val stack : t -> stack
val set_stack : t -> stack -> unit
(** No-op (and no generation bump) when the stack is physically
    unchanged, so top-level swaps cost nothing. *)

(** {1 Resolution-cache support} *)

type stamp
(** A snapshot of the generation counters taken when a name slot is
    cached. *)

val stamp : t -> stamp
val stamp_valid : t -> stamp -> bool
(** Whether nothing that could shadow or move a cached binding happened
    since [stamp]; consults the external probe first. *)

val bump_ext : t -> unit
(** Record external activity (a target function call) explicitly. *)

val refresh_ext : t -> unit

(** {1 The individual resolution stages} (for the lowered resolver) *)

val scope_find : scope list -> string -> Value.t option
val frame_local : t -> string -> Value.t option
val global : t -> string -> Value.t option
val enum_const : t -> string -> Value.t option

val string_literal : t -> string -> int
(** Target address of an interned copy of a string literal. *)
