(** Lowering: the compile step between parse and eval.

    Translates {!Ast.expr} into {!Ir.expr} once per command: literal
    values prebuilt (strings interned), names given resolution slots,
    literal arithmetic constant-folded (with lazy-error fallback:
    anything that would raise folds back to the unfolded node, so errors
    surface at evaluation time exactly as before), cast/sizeof/reduction
    renderings precomputed, and constant-dimension types pre-resolved.

    [Dynamic] mode is the ablation: the identical tree with every name
    slot pinned to the full lookup chain ([set lower off]) — one
    evaluation path, two resolution strategies. *)

type mode = Cached | Dynamic

val lower : ?mode:mode -> Env.t -> Ast.expr -> Ir.expr
(** Never raises {!Error.Duel_error}: anything unresolvable is left for
    the engines to fail on when (and if) it is actually evaluated. *)

val lower_type : ?mode:mode -> Env.t -> Ast.type_expr -> Ir.type_expr
(** Lower a type expression alone (the mini-C interpreter resolves
    declaration types through this). *)
