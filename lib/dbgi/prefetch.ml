(* Speculative prefetch over the data cache.

   A cold pointer chase pays one backend round trip per hop: the engines
   cannot read node N+1 before the link field of node N lands.  But the
   access pattern is predictable — DUEL traversals walk allocation-order
   runs (constant stride) and fixed link offsets ([-->next] is always
   [base+8] for a given node type) — so this layer reads ahead of demand
   in batched spans and inserts the lines into the dcache before the
   engine asks.  Two signals drive it:

   - stride runs: the demand stream's line bases advancing at a constant
     stride issue one span read covering the next K lines;
   - link-field history: engines hint each validated [-->] hop
     ([hint_chase]); the predictor walks ahead of the engine by peeking
     the link pointer out of resident lines and batch-fetching the
     pointed-to nodes, learning the inter-node stride as it goes.

   Mispredictions are harmless by construction: reads are idempotent,
   speculative lines never replace resident ones (so buffered writes are
   safe), generation coherence drops speculative lines with everything
   else, and a faulting speculative read is swallowed here and only
   counted — demand reads keep their exact fault attribution. *)

module Codec = Duel_mem.Codec
module Abi = Duel_ctype.Abi

type config = {
  depth : int;  (* lines per stride batch / nodes per chase batch *)
  chase_depth : int;  (* hops to run ahead of the engine per hint *)
  min_run : int;  (* constant-stride demands before speculating *)
  max_stride : int;  (* bytes; larger line strides are left alone *)
  max_batch : int;  (* span ceiling, under the RSP server's max_read *)
}

let default_config =
  { depth = 8; chase_depth = 8; min_run = 2; max_stride = 256;
    max_batch = 4096 }

type stats = {
  mutable hints : int;  (* hint_chase calls from the engines *)
  mutable spans : int;  (* speculative span reads issued *)
  mutable issued : int;  (* speculative lines inserted *)
  mutable useful : int;  (* resolved by a demand touch *)
  mutable wasted : int;  (* dropped still-speculative *)
  mutable faulted : int;  (* speculative reads swallowed on a fault *)
}

let fresh_stats () =
  { hints = 0; spans = 0; issued = 0; useful = 0; wasted = 0; faulted = 0 }

type t = {
  dbg : Dbgi.t;
  cfg : config;
  line : int;
  mutable on : bool;
  st : stats;
  (* stride-run state over the demand stream's line bases *)
  mutable last_base : int;  (* min_int = no demand seen yet *)
  mutable stride : int;
  mutable run : int;
  mutable frontier : int;  (* furthest speculated base; min_int = none *)
  (* link-field state fed by the engines' chase hints *)
  mutable offsets : int list;  (* link offsets seen, most recent first *)
  mutable chase_delta : int;  (* last inter-node delta observed *)
  mutable chase_confirmed : bool;  (* two consecutive equal deltas *)
}

let reset_predictor p =
  p.last_base <- min_int;
  p.stride <- 0;
  p.run <- 0;
  p.frontier <- min_int;
  p.chase_delta <- 0;
  p.chase_confirmed <- false

(* One speculative read, all failure swallowed: only demand accesses may
   surface target faults. *)
let fetch p ~addr ~len =
  if len <= 0 then 0
  else
    match Dcache.spec_fetch p.dbg ~addr ~len with
    | 0 -> 0
    | n ->
        (* [issued] itself is counted by the cache's [h_issued] hook *)
        p.st.spans <- p.st.spans + 1;
        n
    | exception Dbgi.Target_fault _ ->
        p.st.faulted <- p.st.faulted + 1;
        0
    | exception Dbgi.Target_transient _ ->
        p.st.faulted <- p.st.faulted + 1;
        0

(* The stride signal.  First-touch line bases advancing [min_run] times
   at one stride open a speculated window [depth] strides deep; the
   window is refreshed when demand closes within half of it, so a steady
   run costs one span read per [depth] lines.  Only first touches train
   the detector ([fresh] from the cache): a depth-first traversal
   re-reads parent nodes every time it backtracks, and those resident
   re-reads would break every run even though the miss frontier itself
   is a perfect stride. *)
let on_demand p ~addr ~len ~fresh =
  ignore len;
  if not fresh then ()
  else
  let b = addr land lnot (p.line - 1) in
  if p.last_base = min_int then p.last_base <- b
  else begin
    let d = b - p.last_base in
    if d <> 0 then begin
      if d = p.stride then p.run <- p.run + 1
      else begin
        p.stride <- d;
        p.run <- 1;
        p.frontier <- min_int
      end;
      p.last_base <- b;
      if p.run >= p.cfg.min_run && abs p.stride <= p.cfg.max_stride then begin
        let remaining =
          if p.frontier = min_int then 0 else (p.frontier - b) / p.stride
        in
        if p.frontier = min_int || remaining <= p.cfg.depth / 2 then begin
          let from =
            if p.frontier = min_int || remaining < 0 then b + p.stride
            else p.frontier + p.stride
          in
          let last = from + ((p.cfg.depth - 1) * p.stride) in
          let lo = min from last and hi = max from last + p.line in
          let lo, hi =
            if hi - lo <= p.cfg.max_batch then (lo, hi)
            else if p.stride > 0 then (lo, lo + p.cfg.max_batch)
            else (hi - p.cfg.max_batch, hi)
          in
          let lo = max lo 0 in
          if hi > lo then begin
            ignore (fetch p ~addr:lo ~len:(hi - lo));
            p.frontier <- last
          end
        end
      end
    end
  end

(* --- registry, by wrapped interface -------------------------------------- *)

let registry : (Dbgi.t * t) list ref = ref []

let find dbg =
  Option.map snd (List.find_opt (fun (d, _) -> d == dbg) !registry)

let attach ?(config = default_config) dbg =
  match find dbg with
  | Some p -> Some p
  | None -> (
      match Dcache.spec_line_size dbg with
      | None -> None
      | Some line ->
          let p =
            {
              dbg;
              cfg = config;
              line;
              on = true;
              st = fresh_stats ();
              last_base = min_int;
              stride = 0;
              run = 0;
              frontier = min_int;
              offsets = [];
              chase_delta = 0;
              chase_confirmed = false;
            }
          in
          (* useful/wasted keep resolving while disabled: lines
             speculated before a [set prefetch off] still settle, so the
             issued = useful + wasted accounting always balances *)
          ignore
            (Dcache.set_spec_hooks dbg
               {
                 Dcache.h_demand =
                   (fun ~addr ~len ~fresh ->
                     if p.on then on_demand p ~addr ~len ~fresh);
                 h_issued = (fun n -> p.st.issued <- p.st.issued + n);
                 h_useful = (fun n -> p.st.useful <- p.st.useful + n);
                 h_wasted = (fun n -> p.st.wasted <- p.st.wasted + n);
                 h_reset = (fun () -> reset_predictor p);
               });
          registry := (dbg, p) :: !registry;
          Some p)

let is_attached dbg = find dbg <> None
let enabled dbg = match find dbg with Some p -> p.on | None -> false

let set_enabled dbg on =
  match find dbg with
  | None -> false
  | Some p ->
      p.on <- on;
      if not on then reset_predictor p;
      true

let stats dbg = Option.map (fun p -> p.st) (find dbg)

let reset_stats dbg =
  match find dbg with
  | None -> ()
  | Some p ->
      let z = fresh_stats () in
      p.st.hints <- z.hints;
      p.st.spans <- z.spans;
      p.st.issued <- z.issued;
      p.st.useful <- z.useful;
      p.st.wasted <- z.wasted;
      p.st.faulted <- z.faulted

(* The link-field signal.  The engines call this for every validated
   [-->] hop: [target] is the node the traversal will open next, whose
   lines the readable-probe just made resident; [link_offset] is where
   this chase's link field lives inside a node; [width] the node size.
   Walk ahead of the engine: peek the link pointer out of resident
   lines, speculatively fetch the pointed-to node (batching [depth]
   nodes per span once the inter-node stride is confirmed), and repeat
   up to [chase_depth] hops.  Every step is best-effort — a peek miss or
   swallowed fault just ends the walk. *)
let hint_chase dbg ~link_offset ~width ~target =
  match find dbg with
  | None -> ()
  | Some p ->
      if p.on then begin
        p.st.hints <- p.st.hints + 1;
        let psz = p.dbg.Dbgi.abi.Abi.ptr_size in
        if
          link_offset >= 0
          && link_offset + psz <= p.cfg.max_batch
          && width > 0 && target <> 0
        then begin
          if not (List.mem link_offset p.offsets) then
            p.offsets <-
              link_offset
              :: (if List.length p.offsets >= 8 then
                    List.filteri (fun i _ -> i < 7) p.offsets
                  else p.offsets);
          let span = max width (link_offset + psz) in
          let fetch_node node =
            (* batch along the learned inter-node stride when we trust
               it, otherwise just this node's lines *)
            if
              p.chase_confirmed && p.chase_delta <> 0
              && abs p.chase_delta <= p.cfg.max_batch / p.cfg.depth
            then begin
              let last = node + (p.chase_delta * (p.cfg.depth - 1)) in
              let lo = min node last and hi = max node last + span in
              let lo, hi =
                if hi - lo <= p.cfg.max_batch then (lo, hi)
                else if p.chase_delta > 0 then (lo, lo + p.cfg.max_batch)
                else (hi - p.cfg.max_batch, hi)
              in
              let lo = max lo 0 in
              fetch p ~addr:lo ~len:(hi - lo)
            end
            else begin
              (* No trusted inter-node stride yet (a tree's left/right
                 deltas never settle): assume allocation-order locality —
                 the builders lay children out right after their parent —
                 and over-fetch forward.  Speculative inserts skip
                 resident lines, so overlap with the stride window or an
                 already-walked region costs nothing. *)
              let len =
                min p.cfg.max_batch (max (span * p.cfg.depth) (p.line * p.cfg.depth))
              in
              fetch p ~addr:node ~len
            end
          in
          let rec go node hops =
            if hops > 0 && node <> 0 then begin
              if not (Dcache.spec_cached dbg ~addr:node ~len:span) then
                ignore (fetch_node node);
              match
                Dcache.spec_peek dbg ~addr:(node + link_offset) ~len:psz
              with
              | None -> ()
              | Some b ->
                  let nxt =
                    Int64.to_int (Codec.decode_int p.dbg.Dbgi.abi b ~signed:false)
                  in
                  let d = nxt - node in
                  if nxt <> 0 && d <> 0 then begin
                    if d = p.chase_delta then p.chase_confirmed <- true
                    else begin
                      p.chase_delta <- d;
                      p.chase_confirmed <- false
                    end;
                    go nxt (hops - 1)
                  end
            end
          in
          go target p.cfg.chase_depth
        end
      end

let to_lines ?(on = true) st =
  [
    Printf.sprintf "prefetch: %s (%d speculative lines in %d span reads)"
      (if on then "on" else "off")
      st.issued st.spans;
    Printf.sprintf "resolved: %d useful, %d wasted; %d speculative faults \
                    swallowed"
      st.useful st.wasted st.faulted;
    Printf.sprintf "signals: %d chase hints from the engines" st.hints;
  ]
