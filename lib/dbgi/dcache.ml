(* Target-memory data cache: line-granular reads, coalesced writes.

   The evaluator issues one DBGI access per scalar it touches, so a
   traversal like [head-->next[[1000]].val] costs thousands of
   round-trips through the narrow interface — catastrophic over a packet
   transport.  This module wraps any [Dbgi.t] in a client-side cache, the
   same layering gdb's dcache puts over the remote protocol: the nub
   interface stays narrow, the client amortises it. *)

(* How the cache learns that target memory changed behind its back.  An
   in-process backend exposes a write-generation counter to snoop
   ([Probe]); a genuinely remote transport has nothing to poll, so the
   owner must tell the cache about stop boundaries ([Explicit] +
   [mark_stale]/[invalidate]). *)
type stale_policy = Probe of (unit -> int) | Explicit

type config = {
  line_size : int;
  max_lines : int;
  max_pending : int;
  stale_policy : stale_policy;
}

let default_config =
  { line_size = 64; max_lines = 256; max_pending = 4096; stale_policy = Explicit }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable fills : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable invalidations : int;
  mutable backend_reads : int;
  mutable backend_writes : int;
  mutable backend_other : int;
}

let round_trips st = st.backend_reads + st.backend_writes + st.backend_other

let fresh_stats () =
  {
    hits = 0;
    misses = 0;
    fills = 0;
    bytes_read = 0;
    bytes_written = 0;
    invalidations = 0;
    backend_reads = 0;
    backend_writes = 0;
    backend_other = 0;
  }

(* Lines are threaded on an intrusive doubly-linked recency list (MRU at
   [mru], LRU at [lru]), so a [touch] is pointer surgery and eviction is
   O(1) instead of a full-table minimum scan.  [spec] marks a line that
   was inserted speculatively (by a prefetcher via [spec_fetch]) and has
   not yet been touched by a demand access; the flag exists only for
   accounting — the bytes are as real as a demand fill's. *)
type line = {
  base : int;
  buf : bytes;
  mutable dirty : bool;
  mutable spec : bool;
  mutable prev : line option;  (* towards MRU *)
  mutable next : line option;  (* towards LRU *)
}

(* The speculation port: how an attached prefetcher observes this cache.
   [h_demand] fires after every demand read completes (the prediction
   signal); [fresh] is true when the access filled a missing line or
   promoted a speculative one — the first-touch stream, which is what a
   stride predictor should train on (re-reads of long-resident lines are
   traversal backtracking, not the miss frontier).  [h_useful]/[h_wasted]
   resolve speculative lines (promoted by a demand touch / dropped
   still-speculative); [h_reset] fires when the cache drops every line,
   so the predictor forgets its run state. *)
type spec_hooks = {
  h_demand : addr:int -> len:int -> fresh:bool -> unit;
  h_issued : int -> unit;
  h_useful : int -> unit;
  h_wasted : int -> unit;
  h_reset : unit -> unit;
}

type cache = {
  cfg : config;
  backend : Dbgi.t;
  lines : (int, line) Hashtbl.t;  (* keyed by line base address *)
  mutable mru : line option;
  mutable lru : line option;
  mutable pending : (int * bytes) list;  (* disjoint, ascending addresses *)
  mutable pending_bytes : int;
  mutable last_gen : int;
  mutable stale : bool;  (* [mark_stale]: drop lines on the next operation *)
  mutable hooks : spec_hooks option;
  st : stats;
}

let line_base c addr = addr land lnot (c.cfg.line_size - 1)

let line_bases c addr len =
  let rec go base last = if base > last then [] else base :: go (base + c.cfg.line_size) last in
  go (line_base c addr) (line_base c (addr + len - 1))

let unlink c l =
  (match l.prev with Some p -> p.next <- l.next | None -> ());
  (match l.next with Some n -> n.prev <- l.prev | None -> ());
  (match c.mru with Some m when m == l -> c.mru <- l.next | _ -> ());
  (match c.lru with Some m when m == l -> c.lru <- l.prev | _ -> ());
  l.prev <- None;
  l.next <- None

let push_front c l =
  l.next <- c.mru;
  (match c.mru with Some m -> m.prev <- Some l | None -> c.lru <- Some l);
  c.mru <- Some l

let touch c line =
  match c.mru with
  | Some m when m == line -> ()
  | _ ->
      unlink c line;
      push_front c line

let clear_lines c =
  (match c.hooks with
  | Some h ->
      let spec = ref 0 in
      Hashtbl.iter (fun _ l -> if l.spec then incr spec) c.lines;
      if !spec > 0 then h.h_wasted !spec;
      h.h_reset ()
  | None -> ());
  Hashtbl.reset c.lines;
  c.mru <- None;
  c.lru <- None

let resync_gen c =
  match c.cfg.stale_policy with
  | Probe probe -> c.last_gen <- probe ()
  | Explicit -> ()

(* Push every coalesced range to the backend, in ascending address order
   (the list invariant), and mark all lines clean.  Ends by resyncing the
   coherence generation: the writes we just issued are our own. *)
let flush_cache c =
  (try
     List.iter
       (fun (addr, data) ->
         c.st.backend_writes <- c.st.backend_writes + 1;
         c.backend.Dbgi.put_bytes ~addr data)
     c.pending
   with Dbgi.Target_transient _ as e ->
     (* the transport flaked mid-flush: every pending range is still
        buffered (cleared only below), so a later flush point retries the
        whole batch — byte writes are idempotent.  Mark the cache stale so
        the next operation re-validates rather than trusting lines the
        backend may or may not have seen. *)
     c.stale <- true;
     raise e);
  c.pending <- [];
  c.pending_bytes <- 0;
  Hashtbl.iter (fun _ l -> l.dirty <- false) c.lines;
  resync_gen c

let invalidate_cache c =
  flush_cache c;
  clear_lines c;
  c.st.invalidations <- c.st.invalidations + 1

(* Detect stores that bypassed this cache, on entry to every cached
   operation.  An explicit [mark_stale] (a remote client observing a stop
   boundary or a server-side eval) always wins; otherwise a [Probe]
   policy snoops the write generation — the mini-C interpreter executing,
   a scenario builder poking memory, a direct Memory.write in a test all
   bump it — and any change drops every line. *)
let check_coherence c =
  if c.stale then begin
    (* invalidate first, clear the flag after: if the flush inside raises
       (a transient transport fault), the mark survives and the next
       operation tries again instead of proceeding on suspect lines *)
    invalidate_cache c;
    c.stale <- false
  end
  else
    match c.cfg.stale_policy with
    | Explicit -> ()
    | Probe probe -> if probe () <> c.last_gen then invalidate_cache c

let evict_one c =
  match c.lru with
  | None -> ()
  | Some l ->
      (* A dirty victim still has unflushed bytes in [pending]; flushing
         first keeps the invariant that every pending byte lives in a
         cached line, so fills can never resurrect stale backend data. *)
      if l.dirty then flush_cache c;
      if l.spec then
        (match c.hooks with Some h -> h.h_wasted 1 | None -> ());
      unlink c l;
      Hashtbl.remove c.lines l.base

let fill c base =
  c.st.fills <- c.st.fills + 1;
  c.st.backend_reads <- c.st.backend_reads + 1;
  let buf = c.backend.Dbgi.get_bytes ~addr:base ~len:c.cfg.line_size in
  if Hashtbl.length c.lines >= c.cfg.max_lines then evict_one c;
  let l = { base; buf; dirty = false; spec = false; prev = None; next = None } in
  push_front c l;
  Hashtbl.replace c.lines base l;
  l

(* Copy [addr, addr+len) between a client buffer and the cached lines.
   [get] reads lines into [out]; otherwise writes [data] into lines,
   marking them dirty.  Returns how many speculative lines the access
   promoted, so the caller can tell a first touch from a re-read. *)
let blit_lines c ~addr ~len ~(out : bytes option) ~(data : bytes option) =
  let promoted = ref 0 in
  List.iter
    (fun base ->
      let l = Hashtbl.find c.lines base in
      let lo = max addr base in
      let hi = min (addr + len) (base + c.cfg.line_size) in
      (match out with
      | Some out -> Bytes.blit l.buf (lo - base) out (lo - addr) (hi - lo)
      | None -> ());
      (match data with
      | Some data ->
          Bytes.blit data (lo - addr) l.buf (lo - base) (hi - lo);
          l.dirty <- true
      | None -> ());
      if l.spec then begin
        (* a demand access touched a speculated line: the prediction paid
           off, exactly once per line *)
        l.spec <- false;
        incr promoted;
        match c.hooks with Some h -> h.h_useful 1 | None -> ()
      end;
      touch c l)
    (line_bases c addr len);
  !promoted

let all_cached c ~addr ~len =
  List.for_all (fun base -> Hashtbl.mem c.lines base) (line_bases c addr len)

(* Ensure every line covering the range is cached.  Raises the fill's
   [Target_fault] if a line cannot be read. *)
let ensure_lines c ~addr ~len =
  List.iter
    (fun base -> if not (Hashtbl.mem c.lines base) then ignore (fill c base))
    (line_bases c addr len)

let cached_get c ~addr ~len =
  if len <= 0 then c.backend.Dbgi.get_bytes ~addr ~len
  else begin
    check_coherence c;
    c.st.bytes_read <- c.st.bytes_read + len;
    let hit = all_cached c ~addr ~len in
    if hit then c.st.hits <- c.st.hits + 1
    else begin
      c.st.misses <- c.st.misses + 1;
      try ensure_lines c ~addr ~len
      with
      | Dbgi.Target_transient _ as e ->
          (* a flaky transport, not a bad address: lines filled so far are
             valid, but be conservative — mark stale and let the caller's
             retry policy (or the session's resumable error) take over *)
          c.stale <- true;
          raise e
      | Dbgi.Target_fault _ ->
        (* Partial-line fallback: the request may be fine even though its
           enclosing line crosses into unmapped space (a fill rounds up).
           Flush first — the exact-range read below may cover dirty lines
           the backend hasn't seen yet — then let the backend serve (or
           fault on) precisely the requested range, preserving the exact
           {addr; len} attribution. *)
        flush_cache c;
        c.st.backend_reads <- c.st.backend_reads + 1;
        raise_notrace Exit
    end;
    let out = Bytes.create len in
    let promoted = blit_lines c ~addr ~len ~out:(Some out) ~data:None in
    (* the demand stream feeds the predictor last, after this request has
       finished mutating the line table: the hook may insert lines *)
    (match c.hooks with
    | Some h -> h.h_demand ~addr ~len ~fresh:((not hit) || promoted > 0)
    | None -> ());
    out
  end

let cached_get c ~addr ~len =
  try cached_get c ~addr ~len
  with Exit -> c.backend.Dbgi.get_bytes ~addr ~len

(* Merge a write into the pending list, coalescing with any ranges it
   overlaps or abuts, so a scalar-at-a-time store loop flushes as one
   backend round-trip.  Later bytes win over earlier ones. *)
let add_pending c addr data =
  let len = Bytes.length data in
  let before, rest =
    List.partition (fun (a, d) -> a + Bytes.length d < addr) c.pending
  in
  let overlap, after = List.partition (fun (a, _) -> a <= addr + len) rest in
  let lo = List.fold_left (fun m (a, _) -> min m a) addr overlap in
  let hi =
    List.fold_left (fun m (a, d) -> max m (a + Bytes.length d)) (addr + len)
      overlap
  in
  let buf = Bytes.create (hi - lo) in
  List.iter
    (fun (a, d) -> Bytes.blit d 0 buf (a - lo) (Bytes.length d))
    overlap;
  Bytes.blit data 0 buf (addr - lo) len;
  c.pending <- before @ ((lo, buf) :: after);
  c.pending_bytes <-
    List.fold_left (fun s (_, d) -> s + Bytes.length d) 0 c.pending

let cached_put c ~addr data =
  let len = Bytes.length data in
  if len = 0 then ()
  else begin
    check_coherence c;
    c.st.bytes_written <- c.st.bytes_written + len;
    match ensure_lines c ~addr ~len with
    | () ->
        (* Write-allocate: the lines are cached, so update them in place
           and buffer the store; it reaches the backend coalesced, at the
           next flush point. *)
        ignore (blit_lines c ~addr ~len ~out:None ~data:(Some data));
        add_pending c addr data;
        if c.pending_bytes > c.cfg.max_pending then flush_cache c
    | exception (Dbgi.Target_transient _ as e) ->
        (* nothing was mutated yet; degrade exactly as the read path does *)
        c.stale <- true;
        raise e
    | exception Dbgi.Target_fault _ ->
        (* The enclosing lines are not fully readable (page boundary, or a
           genuinely bad address): write through uncached so the backend
           decides, with exact fault attribution.  Any lines that were
           cached get the new bytes too — they are clean copies. *)
        flush_cache c;
        c.st.backend_writes <- c.st.backend_writes + 1;
        c.backend.Dbgi.put_bytes ~addr data;
        List.iter
          (fun base ->
            match Hashtbl.find_opt c.lines base with
            | None -> ()
            | Some l ->
                let lo = max addr base
                and hi = min (addr + len) (base + c.cfg.line_size) in
                Bytes.blit data (lo - addr) l.buf (lo - base) (hi - lo);
                touch c l)
          (line_bases c addr len);
        resync_gen c
  end

(* Target code can mutate arbitrary memory, and an allocation changes
   what is mapped: flush our stores first so the target sees them, then
   drop every line. *)
let around_target_op c op =
  check_coherence c;
  flush_cache c;
  c.st.backend_other <- c.st.backend_other + 1;
  Fun.protect
    ~finally:(fun () ->
      (* invalidate even if the call raised: the target may have run and
         mutated memory before failing *)
      clear_lines c;
      c.st.invalidations <- c.st.invalidations + 1;
      resync_gen c)
    op

let probe c ~addr ~len =
  check_coherence c;
  if all_cached c ~addr ~len then begin
    c.st.hits <- c.st.hits + 1;
    let promoted = blit_lines c ~addr ~len ~out:None ~data:None in
    (* probes are demand accesses too: a probe that promotes speculated
       lines is the traversal's first touch of a node *)
    (match c.hooks with
    | Some h -> h.h_demand ~addr ~len ~fresh:(promoted > 0)
    | None -> ());
    true
  end
  else
    match cached_get c ~addr ~len with
    | (_ : bytes) -> true
    | exception Dbgi.Target_fault _ -> false

(* --- the speculation port ------------------------------------------------ *)

(* Insert whole lines carved out of one speculatively read span.  Lines
   already resident are skipped — in particular dirty lines, preserving
   the invariant that every pending byte lives in a cached line — so a
   misprediction can never clobber buffered writes or demand-fresh data. *)
let spec_insert c ~start buf =
  let got = Bytes.length buf in
  let inserted = ref 0 in
  let base = ref start in
  while !base + c.cfg.line_size <= start + got do
    if not (Hashtbl.mem c.lines !base) then begin
      if Hashtbl.length c.lines >= c.cfg.max_lines then evict_one c;
      let lbuf = Bytes.sub buf (!base - start) c.cfg.line_size in
      let l =
        { base = !base; buf = lbuf; dirty = false; spec = true; prev = None;
          next = None }
      in
      push_front c l;
      Hashtbl.replace c.lines !base l;
      incr inserted
    end;
    base := !base + c.cfg.line_size
  done;
  (* the ledger counts at this layer, so [useful + wasted = issued]
     holds for every speculative insert, whoever asked for it *)
  if !inserted > 0 then
    (match c.hooks with Some h -> h.h_issued !inserted | None -> ());
  !inserted

(* One speculative batched read: the whole line-aligned span in a single
   backend round trip.  A batch that straddles an unmapped hole is not
   dropped: an exact interior fault address (direct backends report the
   first bad byte) retries once with the mapped prefix; a coarse fault (a
   remote stub only says "no") retries once with the front half.  A read
   that still faults propagates — the caller (the prefetcher) swallows
   and counts it; demand reads never come through here. *)
let spec_fetch_cache c ~addr ~len =
  if len <= 0 then 0
  else begin
    let start = line_base c addr in
    let want = line_base c (addr + len - 1) + c.cfg.line_size - start in
    if all_cached c ~addr:start ~len:want then 0
    else begin
      let read len =
        c.st.backend_reads <- c.st.backend_reads + 1;
        c.backend.Dbgi.get_bytes ~addr:start ~len
      in
      let buf =
        try read want
        with Dbgi.Target_fault { addr = fa; _ } ->
          let prefix =
            if fa > start && fa < start + want then
              (fa - start) land lnot (c.cfg.line_size - 1)
            else (want / 2) land lnot (c.cfg.line_size - 1)
          in
          if prefix < c.cfg.line_size then
            raise (Dbgi.Target_fault { addr = fa; len = want })
          else read prefix
      in
      spec_insert c ~start buf
    end
  end

let spec_peek_cache c ~addr ~len =
  if len <= 0 then None
  else if not (all_cached c ~addr ~len) then None
  else begin
    let out = Bytes.create len in
    List.iter
      (fun base ->
        let l = Hashtbl.find c.lines base in
        let lo = max addr base in
        let hi = min (addr + len) (base + c.cfg.line_size) in
        Bytes.blit l.buf (lo - base) out (lo - addr) (hi - lo))
      (line_bases c addr len);
    Some out
  end

(* The wrapped interface is a plain [Dbgi.t]; caches are found again by
   physical identity (most recent first, so the live session's wrapper is
   at the head). *)
let registry : (Dbgi.t * cache) list ref = ref []

let find dbg =
  Option.map snd (List.find_opt (fun (d, _) -> d == dbg) !registry)

let wrap ?(config = default_config) backend =
  if config.line_size <= 0 || config.line_size land (config.line_size - 1) <> 0
  then invalid_arg "Dcache.wrap: line_size must be a positive power of two";
  if config.max_lines <= 0 then
    invalid_arg "Dcache.wrap: max_lines must be positive";
  let c =
    {
      cfg = config;
      backend;
      lines = Hashtbl.create (min config.max_lines 64);
      mru = None;
      lru = None;
      pending = [];
      pending_bytes = 0;
      last_gen =
        (match config.stale_policy with Probe probe -> probe () | Explicit -> 0);
      stale = false;
      hooks = None;
      st = fresh_stats ();
    }
  in
  let dbg =
    {
      backend with
      Dbgi.get_bytes = (fun ~addr ~len -> cached_get c ~addr ~len);
      put_bytes = (fun ~addr data -> cached_put c ~addr data);
      alloc_space = (fun size -> around_target_op c (fun () -> backend.Dbgi.alloc_space size));
      call_func =
        (fun name args ->
          around_target_op c (fun () -> backend.Dbgi.call_func name args));
    }
  in
  let dbg = Dbgi.add_layer "cache" dbg in
  registry := (dbg, c) :: !registry;
  Dbgi.register_probe dbg (fun ~addr ~len -> probe c ~addr ~len);
  dbg

let is_cached dbg = find dbg <> None

let coherence_probe dbg =
  Option.bind (find dbg) (fun c ->
      match c.cfg.stale_policy with Probe f -> Some f | Explicit -> None)
let stats dbg = Option.map (fun c -> c.st) (find dbg)
let cached_lines dbg =
  match find dbg with None -> 0 | Some c -> Hashtbl.length c.lines

let flush dbg = match find dbg with None -> () | Some c -> flush_cache c

let flush_all () = List.iter (fun (_, c) -> flush_cache c) !registry

let invalidate dbg =
  match find dbg with None -> () | Some c -> invalidate_cache c

let mark_stale dbg =
  match find dbg with None -> () | Some c -> c.stale <- true

(* --- speculation port, by wrapped interface ------------------------------ *)

let set_spec_hooks dbg hooks =
  match find dbg with
  | None -> false
  | Some c ->
      c.hooks <- Some hooks;
      true

let spec_line_size dbg = Option.map (fun c -> c.cfg.line_size) (find dbg)

let spec_cached dbg ~addr ~len =
  match find dbg with
  | None -> false
  | Some c -> len > 0 && all_cached c ~addr ~len

let spec_peek dbg ~addr ~len =
  Option.bind (find dbg) (fun c -> spec_peek_cache c ~addr ~len)

let spec_fetch dbg ~addr ~len =
  match find dbg with None -> 0 | Some c -> spec_fetch_cache c ~addr ~len

let spec_lines dbg =
  match find dbg with
  | None -> 0
  | Some c ->
      let n = ref 0 in
      Hashtbl.iter (fun _ l -> if l.spec then incr n) c.lines;
      !n

let reset_stats dbg =
  match find dbg with
  | None -> ()
  | Some c ->
      let z = fresh_stats () in
      c.st.hits <- z.hits;
      c.st.misses <- z.misses;
      c.st.fills <- z.fills;
      c.st.bytes_read <- z.bytes_read;
      c.st.bytes_written <- z.bytes_written;
      c.st.invalidations <- z.invalidations;
      c.st.backend_reads <- z.backend_reads;
      c.st.backend_writes <- z.backend_writes;
      c.st.backend_other <- z.backend_other

let to_lines st =
  [
    Printf.sprintf "reads: %d hits, %d misses, %d line fills (%d bytes served)"
      st.hits st.misses st.fills st.bytes_read;
    Printf.sprintf "writes: %d bytes accepted, %d coalesced backend writes"
      st.bytes_written st.backend_writes;
    Printf.sprintf
      "backend round-trips: %d (%d reads, %d writes, %d calls/allocs); %d \
       invalidations"
      (round_trips st) st.backend_reads st.backend_writes st.backend_other
      st.invalidations;
  ]
