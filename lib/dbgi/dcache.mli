(** A client-side target-memory data cache over the narrow {!Dbgi}
    interface — the layering gdb's dcache puts over the remote protocol.

    The evaluator issues one interface access per scalar it touches, so a
    deep traversal costs thousands of round-trips; over a packet
    transport each one is a full exchange.  [wrap] interposes a
    line-granular read cache (64-byte lines by default, LRU-bounded) with
    write coalescing: reads round up to line fills, writes update cached
    lines in place and are buffered, adjacent stores merging into single
    backend writes released at the next flush point.

    {2 Semantics preserved}

    {ul
    {- Faults: a read whose enclosing line cannot be filled (a line
       rounds up across a page boundary) falls back to an exact-range
       backend access, so {!Dbgi.Target_fault} carries exactly the
       [{addr; len}] the uncached interface would have reported, and
       reads that merely {e straddle} a mapping edge still succeed.}
    {- Zero-length accesses never touch cache or backend.}
    {- [alloc_space] and [call_func] flush buffered writes first (the
       target must see them) and invalidate every line after (target code
       can mutate anything).}
    {- A {!Dbgi.Target_transient} from the backend (a flaky transport, an
       injected chaos fault) marks the cache stale and re-raises: buffered
       writes stay buffered (flushing retries the whole idempotent batch
       at the next flush point), no half-completed operation is trusted,
       and the caller's retry policy or the session's resumable error
       takes over.  Transients are never converted into "address
       unreadable".}}

    {2 Coherency contract}

    A cache cannot see stores that bypass it.  Who tells it is the
    {!stale_policy}:

    {ul
    {- [Probe f] — in-process backends.  [f] snoops
       {!Duel_mem.Memory.generation}: any direct mutation (the mini-C
       interpreter executing, a test poking memory) is detected on the
       next cached operation and drops all lines.  Nothing else is
       required of the owner.}
    {- [Explicit] — probe-less operation, the genuinely remote
       configuration: there is no counter to poll across the wire.  The
       {e owner} of the interface must call {!mark_stale} (lazy: lines
       drop on the next cached operation) or {!invalidate} (eager) at
       every point where the target may have changed underneath it —
       after the target resumes or stops, when the active frame count
       reported by the transport changes, and after any server-side
       evaluation ([qDuelEval]) that can write target memory.
       [Duel_serve.Client] does exactly this on [qDuelFrames] deltas and
       after every remote eval.}}

    Under either policy, [alloc_space] and [call_func] still flush and
    invalidate around themselves, and buffered writes are {e ours} — a
    staleness event flushes them to the backend before dropping lines,
    never discards them. *)

(** How the cache learns about stores that bypassed it. *)
type stale_policy =
  | Probe of (unit -> int)
      (** snoop a write-generation counter (in-process backends) *)
  | Explicit
      (** no probe: the owner calls {!mark_stale}/{!invalidate} at stop
          boundaries (remote transports) *)

type config = {
  line_size : int;  (** bytes per line; a positive power of two *)
  max_lines : int;  (** LRU bound on resident lines *)
  max_pending : int;
      (** buffered write bytes before an automatic flush *)
  stale_policy : stale_policy;
}

val default_config : config
(** 64-byte lines, 256 lines (16 KiB), 4 KiB write buffer, [Explicit]
    staleness (no probe). *)

type stats = {
  mutable hits : int;  (** read requests served entirely from cache *)
  mutable misses : int;  (** read requests needing at least one fill *)
  mutable fills : int;  (** line fills issued *)
  mutable bytes_read : int;  (** bytes returned to clients *)
  mutable bytes_written : int;  (** bytes accepted from clients *)
  mutable invalidations : int;  (** whole-cache drops *)
  mutable backend_reads : int;
  mutable backend_writes : int;
  mutable backend_other : int;  (** [alloc_space] + [call_func] *)
}

val round_trips : stats -> int
(** Total backend round-trips: reads + writes + calls/allocs. *)

val wrap : ?config:config -> Dbgi.t -> Dbgi.t
(** [wrap dbg] is a [Dbgi.t] with identical observable semantics whose
    memory traffic goes through the cache.  Also registers a
    {!Dbgi.register_probe} so [Dbgi.readable] answers from cached lines
    without a backend round-trip.
    @raise Invalid_argument on a non-power-of-two line size. *)

val is_cached : Dbgi.t -> bool
(** Whether [dbg] was produced by {!wrap} (physical identity). *)

val coherence_probe : Dbgi.t -> (unit -> int) option
(** The write-generation probe the cache behind [dbg] was configured
    with ([Some f] iff its policy is [Probe f]) — clients that keep
    derived state (e.g. the evaluator's name-resolution cache) can snoop
    the same generation counter. *)

val stats : Dbgi.t -> stats option
(** Live counters of the cache behind [dbg], if any. *)

val cached_lines : Dbgi.t -> int
(** Currently resident lines ([0] for an unwrapped interface). *)

val flush : Dbgi.t -> unit
(** Release buffered writes to the backend, coalesced and in ascending
    address order.  No-op on an unwrapped interface.  {!Duel_core}'s
    session calls this at the end of every command, so external observers
    (tests, the inferior's own code) see memory consistent between
    commands. *)

val flush_all : unit -> unit
(** [flush] every cache ever produced by {!wrap} — a shutdown or
    checkpoint barrier when the caller has interfaces rather than the
    caches behind them. *)

val invalidate : Dbgi.t -> unit
(** [flush] then drop every cached line.  Required after the target
    resumes on a probeless (remote) transport.  No-op if unwrapped. *)

val mark_stale : Dbgi.t -> unit
(** Lazy {!invalidate}: record that target memory may have changed, and
    flush-then-drop on the {e next} cached operation.  This is the
    [Explicit]-policy owner's cheap stop-boundary hook — marking twice
    between operations costs one invalidation.  No-op if unwrapped. *)

val reset_stats : Dbgi.t -> unit

val to_lines : stats -> string list
(** Human-readable counter summary (for [info cache] and friends). *)

(** {2 The speculation port}

    A prediction layer ({!Prefetch}) attaches to a wrapped interface and
    drives these: it observes the demand stream, reads ahead of it in
    batched spans, and inserts whole lines marked {e speculative}.  A
    speculative line is byte-identical to a demand fill — only the
    accounting differs: its first demand touch resolves it {e useful},
    dropping it untouched (eviction, invalidation) resolves it {e
    wasted}, so for any quiesced cache [useful + wasted = issued].
    Speculative inserts never replace a resident line, so buffered writes
    (which always live in cached lines) cannot be clobbered by a
    misprediction. *)

(** Callbacks an attached predictor registers with {!set_spec_hooks}.
    [h_demand] fires after each demand read completes (and may itself
    call {!spec_fetch}); [fresh] is true when the access filled a
    missing line or promoted a speculative one — the first-touch
    stream, the right training signal for a stride detector (resident
    re-reads are traversal backtracking, not the miss frontier).
    [h_issued] counts every speculative line the moment it is inserted
    (so the ledger balances even for {!spec_fetch} calls the predictor
    did not make itself); [h_useful]/[h_wasted] resolve speculative
    lines; [h_reset] fires whenever the cache drops every line, so run
    state learned from the old contents is forgotten. *)
type spec_hooks = {
  h_demand : addr:int -> len:int -> fresh:bool -> unit;
  h_issued : int -> unit;
  h_useful : int -> unit;
  h_wasted : int -> unit;
  h_reset : unit -> unit;
}

val set_spec_hooks : Dbgi.t -> spec_hooks -> bool
(** Register the predictor's callbacks ([false] if [dbg] is unwrapped).
    One predictor per cache: a second registration replaces the first. *)

val spec_line_size : Dbgi.t -> int option
(** The line size of the cache behind [dbg], if any. *)

val spec_cached : Dbgi.t -> addr:int -> len:int -> bool
(** Whether every line covering the range is resident.  No fill, no
    recency touch, no stats — a predictor's residency query. *)

val spec_peek : Dbgi.t -> addr:int -> len:int -> bytes option
(** Read the range from resident lines only ([None] on any absence).
    Sees locally buffered writes.  No touch, no promotion, no stats —
    this is how a predictor decodes a link pointer it just prefetched
    without perturbing the demand signal. *)

val spec_fetch : Dbgi.t -> addr:int -> len:int -> int
(** Speculatively read the line-aligned span covering [addr, addr+len)
    in one backend round trip and insert every non-resident whole line,
    marked speculative; returns the number of lines inserted (0 if all
    were already resident — no read is issued).  A batch straddling an
    unmapped hole inserts the mapped prefix: an exact interior
    {!Dbgi.Target_fault} address retries once with the bytes below it, a
    coarse fault retries once with the front half.  A span that still
    faults re-raises — the caller swallows and counts it; a
    {!Dbgi.Target_transient} likewise propagates without marking the
    cache stale (nothing speculative is trusted). *)

val spec_lines : Dbgi.t -> int
(** Resident lines still marked speculative (unresolved). *)
