(** The DUEL–debugger interface.

    The paper keeps this interface "intentionally narrow to simplify
    connecting it to a debugger": copy bytes to/from the target, allocate
    target space, call a target function, and query symbol/type
    information.  DUEL proper (the [duel_core] library) talks to the target
    {e only} through a value of type {!t}; backends exist for the direct
    in-process simulator ({!Duel_target.Backend} in the target library) and
    for the GDB remote-serial-protocol client ([duel_rsp]).

    Mirrors the paper's function list:
    [duel_get_target_bytes], [duel_put_target_bytes],
    [duel_alloc_target_space], [duel_call_target_func],
    [duel_get_target_variable], [duel_get_target_typedef/struct/union/enum],
    plus the "miscellaneous" frame queries.

    {2 Zero-length convention}

    A zero-length transfer is valid at {e any} address, mapped or not:
    [get_bytes ~addr ~len:0] returns empty bytes, [put_bytes] of empty
    bytes is a no-op, and {!readable} [~len:0] is [true], all without
    touching the target.  (This mirrors C, where any pointer may be used
    for a zero-byte access.)  Backends must honour this; both the direct
    simulator and the RSP client do.  [len] must be non-negative. *)

exception Target_fault of { addr : int; len : int }
(** Raised by [get_bytes]/[put_bytes]: [addr] is the exact faulting target
    address (the first inaccessible byte, which for an access spanning a
    mapping boundary may lie {e inside} the requested range), and [len] is
    the length of the attempted access. *)

exception Target_transient of { addr : int; len : int }
(** A {e transient} failure of the same access: the address is (believed)
    valid but the transport or target flaked — a dropped packet, a stalled
    stub, an injected chaos fault.  Unlike {!Target_fault} it is an
    invitation to retry: [Duel_chaos.resilient] retries these with
    backoff, the data cache marks itself stale and re-raises (so no
    half-completed operation is trusted), and the session surfaces a
    typed, resumable error rather than treating the address as bad.
    {!readable} deliberately does {e not} catch it — a flaky wire must
    never make a valid pointer look invalid. *)

(** Scalar values crossing the interface for target-function calls.
    Pointers travel as [Cint] with a pointer type. *)
type cval = Cint of Duel_ctype.Ctype.t * int64 | Cfloat of Duel_ctype.Ctype.t * float

type var_info = { v_addr : int; v_type : Duel_ctype.Ctype.t }

type frame_info = {
  fr_index : int;  (** 0 is the innermost active frame *)
  fr_func : string;
  fr_locals : (string * var_info) list;
}

type t = {
  abi : Duel_ctype.Abi.t;
  get_bytes : addr:int -> len:int -> bytes;
  put_bytes : addr:int -> bytes -> unit;
  alloc_space : int -> int;
  call_func : string -> cval list -> cval;
      (** @raise Failure if the function is unknown. *)
  find_variable : string -> var_info option;
      (** Global (file-scope) variables and functions by name. *)
  tenv : Duel_ctype.Tenv.t;
      (** Tag and typedef lookup — the paper's
          [duel_get_target_typedef/struct/union/enum]. *)
  frames : unit -> frame_info list;
      (** Active frames, innermost first ("the number of active frames" and
          locals, from the paper's miscellaneous functions). *)
}

val readable : t -> addr:int -> len:int -> bool
(** [true] iff [get_bytes] would succeed — used by [-->] traversals to
    recognise invalid pointers without raising.  Always [true] for
    [len = 0], per the zero-length convention above.  When a readability
    probe is registered for [dbg] (see {!register_probe}), it is consulted
    instead of issuing a [get_bytes] — the data cache answers from already
    cached lines without a backend round-trip. *)

val register_probe : t -> (addr:int -> len:int -> bool) -> unit
(** Attach a readability probe to [dbg] (compared by physical identity).
    Used by {!Dcache.wrap}; the probe is only consulted for [len > 0]. *)

(** {1 Scalar helpers}

    Endian-aware integer access on top of [get_bytes]/[put_bytes] and
    {!Duel_mem.Codec}, so that consumers (the C-baseline queries, the value
    machinery) do not hand-roll byte decoding against the record.  The
    record itself stays paper-narrow: these are functions {e over} the
    interface, not members of it. *)

val read_scalar : t -> addr:int -> size:int -> signed:bool -> int64
(** Read one scalar of [size] bytes (1, 2, 4, or 8), sign-extending iff
    [signed].
    @raise Target_fault as [get_bytes] does.
    @raise Invalid_argument on a bad size. *)

val write_scalar : t -> addr:int -> size:int -> int64 -> unit
(** Store the low [size] bytes of the value in the ABI's byte order. *)
