(** The DUEL–debugger interface.

    The paper keeps this interface "intentionally narrow to simplify
    connecting it to a debugger": copy bytes to/from the target, allocate
    target space, call a target function, and query symbol/type
    information.  DUEL proper (the [duel_core] library) talks to the target
    {e only} through a value of type {!t}; backends exist for the direct
    in-process simulator ({!Duel_target.Backend} in the target library) and
    for the GDB remote-serial-protocol client ([duel_rsp]).

    Mirrors the paper's function list:
    [duel_get_target_bytes], [duel_put_target_bytes],
    [duel_alloc_target_space], [duel_call_target_func],
    [duel_get_target_variable], [duel_get_target_typedef/struct/union/enum],
    plus the "miscellaneous" frame queries.

    {2 Zero-length convention}

    A zero-length transfer is valid at {e any} address, mapped or not:
    [get_bytes ~addr ~len:0] returns empty bytes, [put_bytes] of empty
    bytes is a no-op, and {!readable} [~len:0] is [true], all without
    touching the target.  (This mirrors C, where any pointer may be used
    for a zero-byte access.)  Backends must honour this; both the direct
    simulator and the RSP client do.  [len] must be non-negative. *)

exception Target_fault of { addr : int; len : int }
(** Raised by [get_bytes]/[put_bytes]: [addr] is the exact faulting target
    address (the first inaccessible byte, which for an access spanning a
    mapping boundary may lie {e inside} the requested range), and [len] is
    the length of the attempted access. *)

exception Target_transient of { addr : int; len : int }
(** A {e transient} failure of the same access: the address is (believed)
    valid but the transport or target flaked — a dropped packet, a stalled
    stub, an injected chaos fault.  Unlike {!Target_fault} it is an
    invitation to retry: [Duel_chaos.resilient] retries these with
    backoff, the data cache marks itself stale and re-raises (so no
    half-completed operation is trusted), and the session surfaces a
    typed, resumable error rather than treating the address as bad.
    {!readable} deliberately does {e not} catch it — a flaky wire must
    never make a valid pointer look invalid. *)

(** Scalar values crossing the interface for target-function calls.
    Pointers travel as [Cint] with a pointer type. *)
type cval = Cint of Duel_ctype.Ctype.t * int64 | Cfloat of Duel_ctype.Ctype.t * float

(** {1 Identity and health}

    Introspection over an otherwise-opaque record of functions.  A
    backend's {!caps} says what it {e is} — which transport class moves
    its bytes and which decoration layers wrap it — so tools
    ([info backend], the {!Dispatcher}) can describe a stack without
    reverse-engineering closures.  Its [health] thunk says how it is
    {e doing} right now: trivially constant for simple backends, scored
    live (EWMA latency, consecutive failures) by layers that track
    faults. *)

(** How the backend's live bytes travel. *)
type transport =
  | Direct  (** in-process simulator, no wire *)
  | Loopback  (** RSP packets handled by an in-process server *)
  | Socket  (** a real file descriptor: TCP, Unix-domain, socketpair *)
  | Synthetic  (** fabricated for tests or fault rigs (e.g. a dead replica) *)

type caps = {
  c_id : string;  (** stable identity, e.g. ["direct:all"] *)
  c_transport : transport;
  c_layers : string list;
      (** decoration layers, outermost first: ["cache"], ["retry"],
          ["chaos"], ["dispatch"], … *)
}

type health = {
  h_ok : bool;
  h_detail : string;
  h_latency_ms : float;  (** EWMA of recent op latency; [0.] if unmeasured *)
  h_failures : int;  (** consecutive failures observed *)
}

type var_info = { v_addr : int; v_type : Duel_ctype.Ctype.t }

type frame_info = {
  fr_index : int;  (** 0 is the innermost active frame *)
  fr_func : string;
  fr_locals : (string * var_info) list;
}

type t = {
  abi : Duel_ctype.Abi.t;
  get_bytes : addr:int -> len:int -> bytes;
  put_bytes : addr:int -> bytes -> unit;
  alloc_space : int -> int;
  call_func : string -> cval list -> cval;
      (** @raise Failure if the function is unknown. *)
  find_variable : string -> var_info option;
      (** Global (file-scope) variables and functions by name. *)
  tenv : Duel_ctype.Tenv.t;
      (** Tag and typedef lookup — the paper's
          [duel_get_target_typedef/struct/union/enum]. *)
  frames : unit -> frame_info list;
      (** Active frames, innermost first ("the number of active frames" and
          locals, from the paper's miscellaneous functions). *)
  caps : caps;  (** identity: transport class and decoration layers *)
  health : unit -> health;
      (** Live condition.  Must never raise and never touch the target:
          it reports what recent operations observed. *)
}

val basic_caps : ?transport:transport -> ?layers:string list -> string -> caps
(** [basic_caps id] with [Synthetic] transport and no layers by default. *)

val always_healthy : unit -> health
(** The constant answer for backends with nothing to measure. *)

val add_layer : string -> t -> t
(** Record one more decoration layer (outermost first) in [caps]. *)

val has_layer : t -> string -> bool

val transport_name : transport -> string

val caps_line : caps -> string
(** One line: ["direct:all via direct [cache retry]"]. *)

val health_line : health -> string
(** One line: ["ok (0.12 ms ewma, 0 consecutive failures)"]. *)

val serialized : Mutex.t -> t -> t
(** [serialized lock d]: every target-touching operation ([get_bytes],
    [put_bytes], [alloc_space], [call_func], [find_variable], [frames])
    runs holding [lock], so multiple OCaml 5 domains can share one
    backend whose implementation assumes a single thread (the direct
    in-process simulator).  The granularity is one lock hold per
    operation — a domain's query interleaves with its peers at the same
    per-access boundary concurrent RSP clients always did, and writes
    are serialized rather than refused.  [abi] and [tenv] are immutable
    after construction and [health] only reads counters; they are left
    unwrapped.  Adds the ["lock"] layer to [caps].  Pass the same
    [lock] to every wrapper sharing one target. *)

val readable : t -> addr:int -> len:int -> bool
(** [true] iff [get_bytes] would succeed — used by [-->] traversals to
    recognise invalid pointers without raising.  Always [true] for
    [len = 0], per the zero-length convention above.  When a readability
    probe is registered for [dbg] (see {!register_probe}), it is consulted
    instead of issuing a [get_bytes] — the data cache answers from already
    cached lines without a backend round-trip. *)

val register_probe : t -> (addr:int -> len:int -> bool) -> unit
(** Attach a readability probe to [dbg] (compared by physical identity).
    Used by {!Dcache.wrap}; the probe is only consulted for [len > 0]. *)

(** {1 Scalar helpers}

    Endian-aware integer access on top of [get_bytes]/[put_bytes] and
    {!Duel_mem.Codec}, so that consumers (the C-baseline queries, the value
    machinery) do not hand-roll byte decoding against the record.  The
    record itself stays paper-narrow: these are functions {e over} the
    interface, not members of it. *)

val read_scalar : t -> addr:int -> size:int -> signed:bool -> int64
(** Read one scalar of [size] bytes (1, 2, 4, or 8), sign-extending iff
    [signed].
    @raise Target_fault as [get_bytes] does.
    @raise Invalid_argument on a bad size. *)

val write_scalar : t -> addr:int -> size:int -> int64 -> unit
(** Store the low [size] bytes of the value in the ABI's byte order. *)
