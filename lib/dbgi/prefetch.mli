(** Speculative prefetch over the {!Dcache}: read target memory ahead of
    the demand stream, in batched spans, so cold pointer chases stop
    paying one round trip per hop.

    Two prediction signals:

    {ul
    {- {e Stride runs} — the demand stream's line bases advancing at a
       constant stride (array sweeps, allocation-order traversals) open
       a speculated window of the next [depth] lines, read in one
       backend round trip and refreshed as demand approaches its edge.}
    {- {e Link-field history} — the engines hint every validated [-->]
       hop ({!hint_chase} with the link field's offset inside the node);
       the predictor walks ahead of the engine, peeking each link
       pointer out of resident lines and batch-fetching the pointed-to
       nodes, learning the inter-node stride as it goes.}}

    {2 Harmlessness}

    A misprediction can slow nothing down and corrupt nothing: reads are
    idempotent; speculative lines never replace resident lines (buffered
    writes always live in resident lines, so they cannot be clobbered);
    coherence invalidations drop speculative lines with everything else
    and reset the predictor; and a faulting speculative read is swallowed
    here and only counted — a demand read reaching the same hole still
    faults with its exact [{addr; len}] attribution.

    {2 Accounting}

    Every speculative line resolves exactly once: [useful] on its first
    demand touch, [wasted] when dropped still-speculative.  After the
    cache quiesces (e.g. an invalidate), [useful + wasted = issued]. *)

type config = {
  depth : int;  (** lines per stride batch / nodes per chase batch *)
  chase_depth : int;  (** hops to run ahead of the engine per hint *)
  min_run : int;  (** constant-stride demands before speculating *)
  max_stride : int;  (** bytes; larger line strides are left alone *)
  max_batch : int;
      (** span ceiling in bytes, kept under the RSP server's max_read *)
}

val default_config : config
(** 8-line batches, 8 hops of chase-ahead, 2-demand runs, 256-byte
    stride ceiling, 4 KiB span ceiling. *)

type stats = {
  mutable hints : int;  (** {!hint_chase} calls from the engines *)
  mutable spans : int;  (** speculative span reads issued *)
  mutable issued : int;  (** speculative lines inserted *)
  mutable useful : int;  (** resolved by a demand touch *)
  mutable wasted : int;  (** dropped still-speculative *)
  mutable faulted : int;  (** speculative reads swallowed on a fault *)
}

type t
(** One predictor, attached to one cache-wrapped interface. *)

val attach : ?config:config -> Dbgi.t -> t option
(** Attach a predictor to a {!Dcache.wrap}ped interface ([None] if [dbg]
    has no cache behind it).  Idempotent: re-attaching returns the
    existing predictor.  The predictor starts enabled. *)

val find : Dbgi.t -> t option
val is_attached : Dbgi.t -> bool

val enabled : Dbgi.t -> bool
(** Whether the attached predictor is speculating ([false] when none is
    attached). *)

val set_enabled : Dbgi.t -> bool -> bool
(** Turn speculation on or off ([false] if no predictor is attached).
    Disabling stops new speculation but keeps resolving already-issued
    lines, so the accounting still balances. *)

val hint_chase : Dbgi.t -> link_offset:int -> width:int -> target:int -> unit
(** The engines' [-->] hint: the traversal just validated a hop to the
    node at [target] (size [width]) whose link field lives at
    [link_offset] inside the node.  No-op without an attached, enabled
    predictor; never raises. *)

val stats : Dbgi.t -> stats option
val reset_stats : Dbgi.t -> unit

val to_lines : ?on:bool -> stats -> string list
(** Human-readable counter block for [info prefetch]. *)
