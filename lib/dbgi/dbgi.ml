exception Target_fault of { addr : int; len : int }

type cval =
  | Cint of Duel_ctype.Ctype.t * int64
  | Cfloat of Duel_ctype.Ctype.t * float

type var_info = { v_addr : int; v_type : Duel_ctype.Ctype.t }

type frame_info = {
  fr_index : int;
  fr_func : string;
  fr_locals : (string * var_info) list;
}

type t = {
  abi : Duel_ctype.Abi.t;
  get_bytes : addr:int -> len:int -> bytes;
  put_bytes : addr:int -> bytes -> unit;
  alloc_space : int -> int;
  call_func : string -> cval list -> cval;
  find_variable : string -> var_info option;
  tenv : Duel_ctype.Tenv.t;
  frames : unit -> frame_info list;
}

let readable dbg ~addr ~len =
  len = 0
  ||
  match dbg.get_bytes ~addr ~len with
  | (_ : bytes) -> true
  | exception Target_fault _ -> false

let read_scalar dbg ~addr ~size ~signed =
  Duel_mem.Codec.decode_int dbg.abi (dbg.get_bytes ~addr ~len:size) ~signed

let write_scalar dbg ~addr ~size v =
  dbg.put_bytes ~addr (Duel_mem.Codec.encode_int dbg.abi ~size v)
