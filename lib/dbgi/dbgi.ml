exception Target_fault of { addr : int; len : int }
exception Target_transient of { addr : int; len : int }

type cval =
  | Cint of Duel_ctype.Ctype.t * int64
  | Cfloat of Duel_ctype.Ctype.t * float

type transport = Direct | Loopback | Socket | Synthetic

type caps = { c_id : string; c_transport : transport; c_layers : string list }

type health = {
  h_ok : bool;
  h_detail : string;
  h_latency_ms : float;
  h_failures : int;
}

type var_info = { v_addr : int; v_type : Duel_ctype.Ctype.t }

type frame_info = {
  fr_index : int;
  fr_func : string;
  fr_locals : (string * var_info) list;
}

type t = {
  abi : Duel_ctype.Abi.t;
  get_bytes : addr:int -> len:int -> bytes;
  put_bytes : addr:int -> bytes -> unit;
  alloc_space : int -> int;
  call_func : string -> cval list -> cval;
  find_variable : string -> var_info option;
  tenv : Duel_ctype.Tenv.t;
  frames : unit -> frame_info list;
  caps : caps;
  health : unit -> health;
}

let basic_caps ?(transport = Synthetic) ?(layers = []) id =
  { c_id = id; c_transport = transport; c_layers = layers }

let always_healthy () =
  { h_ok = true; h_detail = "ok"; h_latency_ms = 0.; h_failures = 0 }

let add_layer layer d =
  { d with caps = { d.caps with c_layers = layer :: d.caps.c_layers } }

let has_layer d layer = List.mem layer d.caps.c_layers

let transport_name = function
  | Direct -> "direct"
  | Loopback -> "loopback"
  | Socket -> "socket"
  | Synthetic -> "synthetic"

let caps_line c =
  Printf.sprintf "%s via %s%s" c.c_id (transport_name c.c_transport)
    (match c.c_layers with
    | [] -> ""
    | ls -> " [" ^ String.concat " " ls ^ "]")

let health_line h =
  Printf.sprintf "%s (%s; %.2f ms ewma, %d consecutive failures)"
    (if h.h_ok then "ok" else "down")
    h.h_detail h.h_latency_ms h.h_failures

(* Serialize every target-touching operation under one mutex, so N
   domains (the shards of a sharded server) can share a single
   in-process target whose implementation was written for one thread.
   Granularity is per-operation: a [get_bytes] holds the lock for one
   read, not for a whole query, so shards interleave at the same
   boundary RSP clients always did.  [abi] and [tenv] are read-only
   after construction and stay unwrapped; [health] must never block on
   target work, and the underlying health thunks only read counters, so
   it is also left unlocked. *)
let serialized lock d =
  let locked f = Mutex.protect lock f in
  {
    d with
    get_bytes = (fun ~addr ~len -> locked (fun () -> d.get_bytes ~addr ~len));
    put_bytes = (fun ~addr data -> locked (fun () -> d.put_bytes ~addr data));
    alloc_space = (fun size -> locked (fun () -> d.alloc_space size));
    call_func = (fun name args -> locked (fun () -> d.call_func name args));
    find_variable = (fun name -> locked (fun () -> d.find_variable name));
    frames = (fun () -> locked d.frames);
    caps = { d.caps with c_layers = "lock" :: d.caps.c_layers };
  }

(* Readability probes registered by wrappers (the data cache): a probe
   answers [readable] without the cost of materialising bytes and raising
   through [Target_fault] when the answer is already known client-side.
   Keyed by physical identity; recent registrations sit at the head, so
   the common case (the live session's interface) is found immediately. *)
let probes : (t * (addr:int -> len:int -> bool)) list ref = ref []

let register_probe dbg probe = probes := (dbg, probe) :: !probes

let readable dbg ~addr ~len =
  len = 0
  ||
  match List.find_opt (fun (d, _) -> d == dbg) !probes with
  | Some (_, probe) -> probe ~addr ~len
  | None -> (
      match dbg.get_bytes ~addr ~len with
      | (_ : bytes) -> true
      | exception Target_fault _ -> false)

let read_scalar dbg ~addr ~size ~signed =
  Duel_mem.Codec.decode_int dbg.abi (dbg.get_bytes ~addr ~len:size) ~signed

let write_scalar dbg ~addr ~size v =
  dbg.put_bytes ~addr (Duel_mem.Codec.encode_int dbg.abi ~size v)
