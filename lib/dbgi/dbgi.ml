exception Target_fault of { addr : int; len : int }
exception Target_transient of { addr : int; len : int }

type cval =
  | Cint of Duel_ctype.Ctype.t * int64
  | Cfloat of Duel_ctype.Ctype.t * float

type var_info = { v_addr : int; v_type : Duel_ctype.Ctype.t }

type frame_info = {
  fr_index : int;
  fr_func : string;
  fr_locals : (string * var_info) list;
}

type t = {
  abi : Duel_ctype.Abi.t;
  get_bytes : addr:int -> len:int -> bytes;
  put_bytes : addr:int -> bytes -> unit;
  alloc_space : int -> int;
  call_func : string -> cval list -> cval;
  find_variable : string -> var_info option;
  tenv : Duel_ctype.Tenv.t;
  frames : unit -> frame_info list;
}

(* Readability probes registered by wrappers (the data cache): a probe
   answers [readable] without the cost of materialising bytes and raising
   through [Target_fault] when the answer is already known client-side.
   Keyed by physical identity; recent registrations sit at the head, so
   the common case (the live session's interface) is found immediately. *)
let probes : (t * (addr:int -> len:int -> bool)) list ref = ref []

let register_probe dbg probe = probes := (dbg, probe) :: !probes

let readable dbg ~addr ~len =
  len = 0
  ||
  match List.find_opt (fun (d, _) -> d == dbg) !probes with
  | Some (_, probe) -> probe ~addr ~len
  | None -> (
      match dbg.get_bytes ~addr ~len with
      | (_ : bytes) -> true
      | exception Target_fault _ -> false)

let read_scalar dbg ~addr ~size ~signed =
  Duel_mem.Codec.decode_int dbg.abi (dbg.get_bytes ~addr ~len:size) ~signed

let write_scalar dbg ~addr ~size v =
  dbg.put_bytes ~addr (Duel_mem.Codec.encode_int dbg.abi ~size v)
