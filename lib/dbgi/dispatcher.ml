(* Replica routing over the narrow debugger interface.

   The shape follows the classic prover-dispatcher idiom: a table of
   equivalent providers, a health score per provider, and per-operation
   routing that knows which operations may be retried elsewhere (reads:
   idempotent by the interface contract), which must be anchored (writes:
   primary first, journalled replication behind), and which must run in
   lockstep everywhere or not at all (alloc/call: non-idempotent, and the
   replicas only stay interchangeable if they execute the same history).

   Concurrency: with hedging off everything runs on the caller's thread.
   With hedging on, reads run on worker threads that may be abandoned
   after a winner is chosen; an abandoned worker only touches its own
   replica's health fields, under the dispatcher mutex, and its result
   cell — rendezvous is by polling those cells with [Thread.delay], which
   needs no file descriptors and so nothing can leak or be reused. *)

type hedge = Hedge_off | Hedge_after of float | Hedge_percentile of float

type policy = {
  op_timeout : float;
  hedge : hedge;
  trip_after : int;
  half_open_after : float;
  ewma_alpha : float;
  journal_limit : int;
  is_transport_fault : exn -> bool;
}

let default_transport_fault = function
  | Dbgi.Target_transient _ -> true
  | Unix.Unix_error _ -> true
  | _ -> false

let default_policy =
  {
    op_timeout = 2.0;
    hedge = Hedge_off;
    trip_after = 3;
    half_open_after = 0.05;
    ewma_alpha = 0.2;
    journal_limit = 256;
    is_transport_fault = default_transport_fault;
  }

type counters = {
  mutable reads : int;
  mutable writes : int;
  mutable failovers : int;
  mutable hedges_fired : int;
  mutable hedge_wins : int;
  mutable trips : int;
  mutable probes : int;
  mutable recoveries : int;
  mutable pinned_reads : int;
  mutable repairs : int;
  mutable desyncs : int;
}

let zero_counters () =
  {
    reads = 0;
    writes = 0;
    failovers = 0;
    hedges_fired = 0;
    hedge_wins = 0;
    trips = 0;
    probes = 0;
    recoveries = 0;
    pinned_reads = 0;
    repairs = 0;
    desyncs = 0;
  }

let sample_cap = 64

type replica = {
  rep : Dbgi.t;
  label : string;
  samples : float array;  (* latency ring, ms *)
  mutable n_samples : int;
  mutable ewma_ms : float;  (* 0. until the first sample *)
  mutable failures : int;  (* consecutive transport faults *)
  mutable total_failures : int;
  mutable tripped_until : float;  (* 0. = breaker closed *)
  mutable desynced : bool;
  mutable journal : (int * bytes) list;  (* oldest first *)
  mutable last_err : string;
}

type t = {
  pol : policy;
  reps : replica array;
  cnt : counters;
  m : Mutex.t;
}

let now () = Unix.gettimeofday ()

(* Closed: full member of the rotation.  Open: cooling down, no traffic.
   Half_open: cooldown elapsed; the next operation doubles as a probe. *)
let state nw r =
  if r.tripped_until = 0. then `Closed
  else if nw >= r.tripped_until then `Half_open
  else `Open

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let record_success t r dt_ms =
  locked t (fun () ->
      r.failures <- 0;
      r.ewma_ms <-
        (if r.n_samples = 0 then dt_ms
         else
           (t.pol.ewma_alpha *. dt_ms)
           +. ((1. -. t.pol.ewma_alpha) *. r.ewma_ms));
      r.samples.(r.n_samples mod sample_cap) <- dt_ms;
      r.n_samples <- r.n_samples + 1)

let record_failure t r e =
  locked t (fun () ->
      r.failures <- r.failures + 1;
      r.total_failures <- r.total_failures + 1;
      r.last_err <- Printexc.to_string e;
      if r.failures >= t.pol.trip_after then begin
        if r.tripped_until = 0. then t.cnt.trips <- t.cnt.trips + 1;
        (* a failed half-open probe lands here too and re-arms the timer *)
        r.tripped_until <- now () +. t.pol.half_open_after
      end)

let desync t r why =
  locked t (fun () ->
      if not r.desynced then begin
        r.desynced <- true;
        r.last_err <- why;
        t.cnt.desyncs <- t.cnt.desyncs + 1
      end)

let percentile_ms r p =
  let n = min r.n_samples sample_cap in
  if n < 8 then 2.0
  else begin
    let xs = Array.sub r.samples 0 n in
    Array.sort compare xs;
    xs.(min (n - 1) (int_of_float (ceil (p *. float_of_int (n - 1)))))
  end

(* Routing preference: unmeasured replicas score as fast (give them a
   chance), consecutive failures inflate the score multiplicatively. *)
let score r =
  (if r.ewma_ms = 0. then 0.01 else r.ewma_ms) *. float_of_int (1 + r.failures)

(* --- the write journal ---------------------------------------------- *)

let dirty_overlaps r addr len =
  List.exists
    (fun (a, d) -> a < addr + len && addr < a + Bytes.length d)
    r.journal

exception Stuck_journal

(* Re-apply every journalled write, in order.  Transport faults propagate
   (the journal survives for a later attempt — byte writes are
   idempotent); a [Target_fault] means this replica's mappings have
   diverged from the owner's, which is unrecoverable: [Stuck_journal]. *)
let apply_journal t r =
  match r.journal with
  | [] -> ()
  | entries ->
      (try
         List.iter (fun (addr, data) -> r.rep.Dbgi.put_bytes ~addr data) entries
       with Dbgi.Target_fault _ -> raise Stuck_journal);
      locked t (fun () ->
          t.cnt.repairs <- t.cnt.repairs + List.length entries;
          r.journal <- [])

(* Best-effort repair on the read path: true iff the replica is clean. *)
let repair t r =
  match apply_journal t r with
  | () -> true
  | exception Stuck_journal ->
      desync t r "write journal unappliable (divergent mappings)";
      false
  | exception e when t.pol.is_transport_fault e ->
      record_failure t r e;
      false

let journal_add t r addr data =
  locked t (fun () -> r.journal <- r.journal @ [ (addr, Bytes.copy data) ]);
  if List.length r.journal > t.pol.journal_limit then
    desync t r "write journal overflow"

(* --- read routing ---------------------------------------------------- *)

(* Closed replicas by score, then half-open ones (their attempt is the
   recovery probe).  If everything is tripped or desynced, try the
   longest-tripped live replica anyway: availability beats purity when
   every replica is suspect. *)
let read_candidates t =
  let nw = now () in
  let live =
    List.filter (fun r -> not r.desynced) (Array.to_list t.reps)
  in
  let closed = List.filter (fun r -> state nw r = `Closed) live in
  let half = List.filter (fun r -> state nw r = `Half_open) live in
  let ranked =
    List.sort (fun a b -> compare (score a) (score b)) closed @ half
  in
  match (ranked, live) with
  | [], [] -> []
  | [], live ->
      [ List.hd
          (List.sort (fun a b -> compare a.tripped_until b.tripped_until) live)
      ]
  | cs, _ -> cs

let reopen t r =
  locked t (fun () ->
      r.tripped_until <- 0.;
      r.failures <- 0;
      t.cnt.recoveries <- t.cnt.recoveries + 1)

(* One attempt against one replica.  [`Skip] means the replica was not
   eligible (dirty range it could not repair); [`Fail] is a transport
   fault already scored against it.  Authoritative exceptions
   ([Target_fault], query errors) propagate to the caller unchanged. *)
let attempt_read t r ?range op =
  let probing = state (now ()) r <> `Closed in
  let eligible =
    match range with
    | Some (addr, len) when dirty_overlaps r addr len ->
        if repair t r then true
        else begin
          locked t (fun () -> t.cnt.pinned_reads <- t.cnt.pinned_reads + 1);
          false
        end
    | _ -> true
  in
  if not eligible then `Skip
  else begin
    if probing then locked t (fun () -> t.cnt.probes <- t.cnt.probes + 1);
    let t0 = now () in
    match op r.rep with
    | v ->
        record_success t r ((now () -. t0) *. 1000.);
        if probing then begin
          reopen t r;
          ignore (repair t r)
        end;
        `Ok v
    | exception e when t.pol.is_transport_fault e ->
        record_failure t r e;
        `Fail e
  end

(* After a successful read, give one half-open replica its probe using
   the same operation, so tripped replicas recover even while a healthy
   one absorbs all regular traffic. *)
let piggyback_probe t winner ?range op =
  let nw = now () in
  match
    Array.to_list t.reps
    |> List.find_opt (fun r ->
           (not r.desynced) && r != winner && state nw r = `Half_open)
  with
  | Some r -> ignore (attempt_read t r ?range op)
  | None -> ()

let read_seq t ?range op =
  let last = ref None in
  let failed = ref false in
  let rec go = function
    | [] -> (
        match !last with
        | Some e -> raise e
        | None -> failwith "dispatcher: no live replicas")
    | r :: rest -> (
        match attempt_read t r ?range op with
        | `Ok v ->
            if !failed then
              locked t (fun () -> t.cnt.failovers <- t.cnt.failovers + 1);
            piggyback_probe t r ?range op;
            v
        | `Skip -> go rest
        | `Fail e ->
            failed := true;
            last := Some e;
            go rest)
  in
  go (read_candidates t)

(* --- hedged reads ---------------------------------------------------- *)

let hedge_delay t r =
  match t.pol.hedge with
  | Hedge_off -> None
  | Hedge_after s -> Some s
  | Hedge_percentile p -> Some (max 0.0002 (percentile_ms r p /. 1000.))

(* Launch [op] against [r] on a worker that scores its own outcome and
   parks it in [cell].  The main thread may abandon the worker; nothing
   it does afterwards can confuse a later operation. *)
let launch t r cell op =
  ignore
    (Thread.create
       (fun () ->
         let t0 = now () in
         let res = try `Ok (op r.rep) with e -> `Err e in
         let dt = (now () -. t0) *. 1000. in
         (match res with
         | `Ok _ -> record_success t r dt
         | `Err e when t.pol.is_transport_fault e -> record_failure t r e
         | `Err _ ->
             (* the transport worked; the answer was authoritative *)
             record_success t r dt);
         locked t (fun () -> cell := res))
       ())

let cell_read t cell = locked t (fun () -> !cell)

(* Poll until [pred] or the deadline; 0.2 ms granularity is far below
   the stalls hedging is meant to cut. *)
let poll_until deadline pred =
  let rec go () =
    match pred () with
    | Some v -> Some v
    | None ->
        let remaining = deadline -. now () in
        if remaining <= 0. then None
        else begin
          Thread.delay (min 0.0002 remaining);
          go ()
        end
  in
  go ()

let read_hedged t ~addr ~len =
  let op rep = rep.Dbgi.get_bytes ~addr ~len in
  let clean =
    List.filter (fun r -> not (dirty_overlaps r addr len)) (read_candidates t)
  in
  let nw = now () in
  match List.filter (fun r -> state nw r = `Closed) clean with
  | r1 :: r2 :: _ -> (
      let c1 = ref `Pending and c2 = ref `Pending in
      let fired = ref false in
      let deadline = now () +. t.pol.op_timeout in
      launch t r1 c1 op;
      let delay = match hedge_delay t r1 with Some d -> d | None -> 0. in
      let primary_first =
        poll_until
          (min deadline (now () +. delay))
          (fun () ->
            match cell_read t c1 with `Pending -> None | r -> Some r)
      in
      let fire () =
        if not !fired then begin
          fired := true;
          locked t (fun () -> t.cnt.hedges_fired <- t.cnt.hedges_fired + 1);
          launch t r2 c2 op
        end
      in
      let settle () =
        (* first success wins; an authoritative error from either replica
           is the answer; two transport faults fall back sequentially *)
        match (cell_read t c1, cell_read t c2) with
        | `Ok v, _ -> Some (`Win v)
        | `Pending, `Ok v ->
            locked t (fun () -> t.cnt.hedge_wins <- t.cnt.hedge_wins + 1);
            Some (`Win v)
        | _, `Ok v -> Some (`Win v)
        | `Err e, _ when not (t.pol.is_transport_fault e) -> Some (`Raise e)
        | _, `Err e when not (t.pol.is_transport_fault e) -> Some (`Raise e)
        | `Err e, `Err _ -> Some (`Both_failed e)
        | `Err e, `Pending when not !fired -> Some (`Both_failed e)
        | _ -> None
      in
      (match primary_first with
      | Some (`Err e) when t.pol.is_transport_fault e ->
          (* primary died before the hedge delay: fire the hedge as a
             failover rather than waiting out the timer *)
          locked t (fun () -> t.cnt.failovers <- t.cnt.failovers + 1);
          fire ()
      | Some _ -> ()
      | None -> fire ());
      match poll_until deadline settle with
      | Some (`Win v) -> v
      | Some (`Raise e) -> raise e
      | Some (`Both_failed e) -> (
          let rest =
            List.filter (fun r -> r != r1 && r != r2) (read_candidates t)
          in
          let pick = function
            | `Ok v ->
                locked t (fun () -> t.cnt.failovers <- t.cnt.failovers + 1);
                Some v
            | _ -> None
          in
          match List.find_map (fun r -> pick (attempt_read t r op)) rest with
          | Some v -> v
          | None -> raise e)
      | None -> raise (Dbgi.Target_transient { addr; len }))
  | _ -> read_seq t ~range:(addr, len) op

(* --- writes ----------------------------------------------------------- *)

(* Apply the backlog, then the new write, scoring the round-trip. *)
let write_one t r ~addr data =
  apply_journal t r;
  let t0 = now () in
  r.rep.Dbgi.put_bytes ~addr data;
  record_success t r ((now () -. t0) *. 1000.)

let replicate t r ~addr data =
  if state (now ()) r = `Open then journal_add t r addr data
  else
    match write_one t r ~addr data with
    | () -> ()
    | exception Stuck_journal -> desync t r "write journal unappliable"
    | exception e when t.pol.is_transport_fault e ->
        record_failure t r e;
        journal_add t r addr data
    | exception Dbgi.Target_fault _ ->
        (* the owner took this write; a twin that faults on it has
           diverged and can never serve reads again *)
        desync t r "divergent write fault"

let write t ~addr data =
  locked t (fun () -> t.cnt.writes <- t.cnt.writes + 1);
  let live = List.filter (fun r -> not r.desynced) (Array.to_list t.reps) in
  if live = [] then failwith "dispatcher: no live replicas";
  let nw = now () in
  let order =
    match List.filter (fun r -> state nw r <> `Open) live with
    | [] -> live
    | l -> l
  in
  (* find an owner: the first replica that takes the write.  Transport
     faults journal the write on the failed candidate and move on;
     [Target_fault] is authoritative (the twins agree on mappings). *)
  let rec claim failed = function
    | [] -> (
        match failed with
        | Some e -> raise e
        | None -> failwith "dispatcher: no writable replica")
    | r :: rest -> (
        match write_one t r ~addr data with
        | () ->
            if failed <> None then
              locked t (fun () -> t.cnt.failovers <- t.cnt.failovers + 1);
            r
        | exception Stuck_journal ->
            desync t r "write journal unappliable";
            claim failed rest
        | exception e when t.pol.is_transport_fault e ->
            record_failure t r e;
            journal_add t r addr data;
            claim (Some e) rest)
  in
  let owner = claim None order in
  List.iter (fun r -> if r != owner then replicate t r ~addr data) live

(* --- lockstep operations --------------------------------------------- *)

(* Non-idempotent operations must execute identically everywhere or the
   replicas stop being replicas.  The primary's result is authoritative
   (its exceptions propagate); every other live replica replays the
   operation and must produce the same value, else it is desynced. *)
let lockstep t name op eq =
  let live = List.filter (fun r -> not r.desynced) (Array.to_list t.reps) in
  match live with
  | [] -> failwith "dispatcher: no live replicas"
  | p :: others ->
      let t0 = now () in
      let v = op p.rep in
      record_success t p ((now () -. t0) *. 1000.);
      List.iter
        (fun r ->
          if state (now ()) r = `Open then
            desync t r (name ^ " while tripped: lockstep broken")
          else
            match
              apply_journal t r;
              op r.rep
            with
            | v' ->
                if not (eq v v') then desync t r ("divergent " ^ name ^ " result")
            | exception e ->
                desync t r
                  (Printf.sprintf "%s failed on replica: %s" name
                     (Printexc.to_string e)))
        others;
      v

(* --- assembly --------------------------------------------------------- *)

let replica_health t =
  let nw = now () in
  Array.to_list t.reps
  |> List.map (fun r ->
         let st =
           if r.desynced then "desynced"
           else
             match state nw r with
             | `Closed -> "ok"
             | `Half_open -> "half-open"
             | `Open -> "tripped"
         in
         let detail =
           if r.last_err = "" then st
           else if st = "ok" then st ^ "; last error: " ^ r.last_err
           else st ^ ": " ^ r.last_err
         in
         ( r.label,
           {
             Dbgi.h_ok = (not r.desynced) && state nw r = `Closed;
             h_detail = detail;
             h_latency_ms = r.ewma_ms;
             h_failures = r.failures;
           } ))

let aggregate_health t () =
  let nw = now () in
  let live =
    Array.to_list t.reps
    |> List.filter (fun r -> (not r.desynced) && state nw r <> `Open)
  in
  let total = Array.length t.reps in
  {
    Dbgi.h_ok = live <> [];
    h_detail = Printf.sprintf "%d/%d replicas serving" (List.length live) total;
    h_latency_ms =
      List.fold_left
        (fun acc r -> if acc = 0. then r.ewma_ms else min acc r.ewma_ms)
        0. live;
    h_failures =
      Array.fold_left (fun acc r -> max acc r.failures) 0 t.reps;
  }

let counters t = t.cnt

let report t =
  let c = t.cnt in
  List.map
    (fun (label, h) ->
      Printf.sprintf "replica %-28s %s" label (Dbgi.health_line h)
      ^
      match
        List.find_opt (fun r -> r.label = label) (Array.to_list t.reps)
      with
      | Some r when r.journal <> [] ->
          Printf.sprintf " (%d journalled writes)" (List.length r.journal)
      | _ -> "")
    (replica_health t)
  @ [
      Printf.sprintf
        "ops: %d reads, %d writes; %d failovers, %d pinned reads, %d repairs"
        c.reads c.writes c.failovers c.pinned_reads c.repairs;
      Printf.sprintf
        "breaker: %d trips, %d probes, %d recoveries, %d desyncs; hedging: \
         %d fired, %d won"
        c.trips c.probes c.recoveries c.desyncs c.hedges_fired c.hedge_wins;
    ]

let cval_eq (a : Dbgi.cval) (b : Dbgi.cval) = a = b

let create ?(policy = default_policy) ?labels reps =
  if reps = [] then invalid_arg "Dispatcher.create: no replicas";
  let labels =
    match labels with
    | Some ls when List.length ls = List.length reps -> ls
    | _ ->
        List.mapi
          (fun i (r : Dbgi.t) -> Printf.sprintf "#%d:%s" i r.Dbgi.caps.c_id)
          reps
  in
  let reps =
    List.map2
      (fun rep label ->
        {
          rep;
          label;
          samples = Array.make sample_cap 0.;
          n_samples = 0;
          ewma_ms = 0.;
          failures = 0;
          total_failures = 0;
          tripped_until = 0.;
          desynced = false;
          journal = [];
          last_err = "";
        })
      reps labels
  in
  { pol = policy; reps = Array.of_list reps; cnt = zero_counters (); m = Mutex.create () }

let dbgi t =
  let primary = t.reps.(0).rep in
  let get_bytes ~addr ~len =
    if len = 0 then Bytes.create 0
    else begin
      locked t (fun () -> t.cnt.reads <- t.cnt.reads + 1);
      match t.pol.hedge with
      | Hedge_off ->
          read_seq t ~range:(addr, len) (fun rep ->
              rep.Dbgi.get_bytes ~addr ~len)
      | _ -> read_hedged t ~addr ~len
    end
  in
  let put_bytes ~addr data =
    if Bytes.length data = 0 then ()
    else write t ~addr data
  in
  {
    Dbgi.abi = primary.Dbgi.abi;
    get_bytes;
    put_bytes;
    alloc_space =
      (fun size ->
        lockstep t "alloc" (fun rep -> rep.Dbgi.alloc_space size) ( = ));
    call_func =
      (fun name args ->
        lockstep t "call" (fun rep -> rep.Dbgi.call_func name args) cval_eq);
    find_variable = primary.Dbgi.find_variable;
    tenv = primary.Dbgi.tenv;
    frames = (fun () -> read_seq t (fun rep -> rep.Dbgi.frames ()));
    caps =
      {
        Dbgi.c_id = "dispatch";
        c_transport = primary.Dbgi.caps.Dbgi.c_transport;
        c_layers = [ "dispatch" ];
      };
    health = aggregate_health t;
  }
