(** A [Dbgi.t] fronting N replica backends of the {e same} target.

    The dispatcher turns the fault-injection layer's failure modes into an
    availability story: reads (idempotent by the interface contract) fail
    over between replicas, writes go to a primary and are replicated with
    a journal that pins reads of still-dirty ranges, and non-idempotent
    operations (alloc, call) run in lockstep on every replica so the twins
    stay bit-identical — a replica that cannot keep up is marked desynced
    and dropped rather than allowed to serve divergent bytes.

    Health is scored per replica: an EWMA of operation latency plus a
    consecutive-failure count.  [trip_after] consecutive transport faults
    trip the replica (no traffic) for [half_open_after] seconds, after
    which it is half-open: the next read doubles as a recovery probe.
    Only {e transport-class} faults ([Target_transient], [Unix_error],
    whatever [is_transport_fault] admits) score against a replica —
    [Target_fault] and query errors are authoritative answers about the
    target and propagate unchanged, never triggering failover.

    Hedged reads cut tail latency: when enabled, a read is raced on a
    worker thread and a second replica is fired after a configurable
    delay (fixed, or a percentile of the first replica's recent
    latencies); the first success wins.  With hedging off the dispatcher
    spawns no threads at all. *)

(** When to fire the second replica of a hedged read. *)
type hedge =
  | Hedge_off
  | Hedge_after of float  (** fixed delay, seconds *)
  | Hedge_percentile of float
      (** that percentile (0..1) of the primary's recent latencies *)

type policy = {
  op_timeout : float;
      (** seconds; enforced on the hedged read path (worker threads can be
          abandoned).  The sequential path relies on the replicas' own
          transport timeouts. *)
  hedge : hedge;
  trip_after : int;  (** consecutive transport faults before tripping *)
  half_open_after : float;  (** seconds a tripped replica cools down *)
  ewma_alpha : float;  (** weight of the newest latency sample *)
  journal_limit : int;
      (** pending replicated writes per replica before it is desynced *)
  is_transport_fault : exn -> bool;
      (** which exceptions score health / allow failover; everything else
          is an authoritative answer and propagates *)
}

val default_policy : policy
(** [Hedge_off], 2 s timeout, trip after 3, half-open after 50 ms,
    alpha 0.2, journal limit 256, transport = [Target_transient] or
    [Unix.Unix_error]. *)

type counters = {
  mutable reads : int;
  mutable writes : int;
  mutable failovers : int;  (** an op succeeded only on a later replica *)
  mutable hedges_fired : int;
  mutable hedge_wins : int;  (** the hedge answered before the primary *)
  mutable trips : int;
  mutable probes : int;  (** half-open recovery attempts *)
  mutable recoveries : int;  (** probes that closed the breaker again *)
  mutable pinned_reads : int;
      (** reads steered away from a replica with dirty ranges *)
  mutable repairs : int;  (** journalled writes applied late *)
  mutable desyncs : int;  (** replicas dropped for divergence *)
}

type t

val create : ?policy:policy -> ?labels:string list -> Dbgi.t list -> t
(** [create replicas]: the first replica is the primary — its debug info
    (abi, tenv, symbols) answers static queries, and writes prefer it.
    @raise Invalid_argument on an empty replica list. *)

val dbgi : t -> Dbgi.t
(** The dispatcher as an ordinary backend.  Its [health] aggregates the
    replicas; its [caps] carry the ["dispatch"] layer. *)

val counters : t -> counters

val replica_health : t -> (string * Dbgi.health) list
(** Per-replica label and live condition, in replica order. *)

val report : t -> string list
(** Human-readable routing state: one line per replica plus totals. *)
