exception Malformed of string

let checksum payload =
  let sum = ref 0 in
  String.iter (fun c -> sum := (!sum + Char.code c) land 0xff) payload;
  !sum

let must_escape c = c = '$' || c = '#' || c = '}' || c = '*'

let escape payload =
  let b = Buffer.create (String.length payload + 8) in
  String.iter
    (fun c ->
      if must_escape c then begin
        Buffer.add_char b '}';
        Buffer.add_char b (Char.chr (Char.code c lxor 0x20))
      end
      else Buffer.add_char b c)
    payload;
  Buffer.contents b

let encode payload =
  let escaped = escape payload in
  Printf.sprintf "$%s#%02x" escaped (checksum escaped)

let decode raw =
  let n = String.length raw in
  if n < 4 || raw.[0] <> '$' || raw.[n - 3] <> '#' then
    raise (Malformed "missing $...#xx frame");
  let body = String.sub raw 1 (n - 4) in
  let declared =
    try int_of_string ("0x" ^ String.sub raw (n - 2) 2)
    with Failure _ -> raise (Malformed "bad checksum digits")
  in
  if checksum body <> declared then raise (Malformed "checksum mismatch");
  (* undo escapes and run-length encoding *)
  let b = Buffer.create (String.length body) in
  let rec go i =
    if i < String.length body then
      match body.[i] with
      | '}' ->
          if i + 1 >= String.length body then
            raise (Malformed "trailing escape");
          Buffer.add_char b (Char.chr (Char.code body.[i + 1] lxor 0x20));
          go (i + 2)
      | '*' ->
          if i + 1 >= String.length body then raise (Malformed "trailing RLE");
          if Buffer.length b = 0 then raise (Malformed "RLE with no prior byte");
          let count = Char.code body.[i + 1] - 29 in
          if count < 3 then raise (Malformed "RLE count too small");
          let prev = Buffer.nth b (Buffer.length b - 1) in
          for _ = 1 to count do
            Buffer.add_char b prev
          done;
          go (i + 2)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0;
  Buffer.contents b

(* Memory packets are the hot path (one [m]/[M] per cache-line fill or
   coalesced write), so both codecs are single-pass loops over
   preallocated buffers — no Buffer growth, no per-byte closures. *)

let hex_digits = "0123456789abcdef"

let hex_of_bytes data =
  let n = Bytes.length data in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.unsafe_get data i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1)
      (String.unsafe_get hex_digits (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - 48
  | 'a' .. 'f' -> Char.code c - 87
  | 'A' .. 'F' -> Char.code c - 55
  | _ -> raise (Malformed (Printf.sprintf "bad hex digit %C" c))

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then raise (Malformed "odd hex length");
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = nibble (String.unsafe_get s (2 * i)) in
    let lo = nibble (String.unsafe_get s ((2 * i) + 1)) in
    Bytes.unsafe_set out i (Char.unsafe_chr ((hi lsl 4) lor lo))
  done;
  out
