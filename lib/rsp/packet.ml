exception Malformed of string

let checksum payload =
  let sum = ref 0 in
  String.iter (fun c -> sum := (!sum + Char.code c) land 0xff) payload;
  !sum

let must_escape c = c = '$' || c = '#' || c = '}' || c = '*'

let escape payload =
  let b = Buffer.create (String.length payload + 8) in
  String.iter
    (fun c ->
      if must_escape c then begin
        Buffer.add_char b '}';
        Buffer.add_char b (Char.chr (Char.code c lxor 0x20))
      end
      else Buffer.add_char b c)
    payload;
  Buffer.contents b

let encode payload =
  let escaped = escape payload in
  Printf.sprintf "$%s#%02x" escaped (checksum escaped)

(* Undo escapes and run-length encoding in a raw (verified) frame body. *)
let unescape body =
  let b = Buffer.create (String.length body) in
  let rec go i =
    if i < String.length body then
      match body.[i] with
      | '}' ->
          if i + 1 >= String.length body then
            raise (Malformed "trailing escape");
          Buffer.add_char b (Char.chr (Char.code body.[i + 1] lxor 0x20));
          go (i + 2)
      | '*' ->
          if i + 1 >= String.length body then raise (Malformed "trailing RLE");
          if Buffer.length b = 0 then raise (Malformed "RLE with no prior byte");
          let count = Char.code body.[i + 1] - 29 in
          if count < 3 then raise (Malformed "RLE count too small");
          let prev = Buffer.nth b (Buffer.length b - 1) in
          for _ = 1 to count do
            Buffer.add_char b prev
          done;
          go (i + 2)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0;
  Buffer.contents b

(* A byte-stream transport delivers frames split and coalesced arbitrarily
   across reads, with ACK/NAK bytes (and, after a damaged exchange,
   garbage) between them.  The deframer is the incremental state machine
   a real remote stub runs: bytes go in as they arrive, complete events
   come out, and anything unframeable is skipped until the next '$'. *)
module Deframer = struct
  type event = Frame of string | Bad of string | Ack | Nak

  type state =
    | Idle  (* between frames: expect '$', '+', '-'; skip junk *)
    | Body  (* inside $...: accumulating raw body bytes *)
    | Check1  (* seen '#': expect first checksum digit *)
    | Check2 of char  (* expect second checksum digit *)

  type t = {
    mutable state : state;
    body : Buffer.t;
    mutable junk : int;
  }

  let create () = { state = Idle; body = Buffer.create 64; junk = 0 }
  let junk t = t.junk
  let pending t = t.state <> Idle

  let hex_val c =
    match c with
    | '0' .. '9' -> Some (Char.code c - 48)
    | 'a' .. 'f' -> Some (Char.code c - 87)
    | 'A' .. 'F' -> Some (Char.code c - 55)
    | _ -> None

  (* Complete a frame whose raw body and checksum digits are in hand. *)
  let finish t c1 c2 =
    let body = Buffer.contents t.body in
    Buffer.clear t.body;
    t.state <- Idle;
    match (hex_val c1, hex_val c2) with
    | Some hi, Some lo ->
        if checksum body <> (hi lsl 4) lor lo then Bad "checksum mismatch"
        else begin
          match unescape body with
          | payload -> Frame payload
          | exception Malformed msg -> Bad msg
        end
    | _ -> Bad "bad checksum digits"

  let feed t buf off len =
    if off < 0 || len < 0 || off + len > Bytes.length buf then
      invalid_arg "Deframer.feed";
    let events = ref [] in
    let emit e = events := e :: !events in
    for i = off to off + len - 1 do
      let c = Bytes.get buf i in
      match t.state with
      | Idle -> (
          match c with
          | '$' -> t.state <- Body
          | '+' -> emit Ack
          | '-' -> emit Nak
          | _ -> t.junk <- t.junk + 1)
      | Body -> (
          match c with
          | '#' -> t.state <- Check1
          | '$' ->
              (* A '$' can only start a frame ('$' inside a body is
                 escaped): the one in progress was cut short.  Report it
                 and resync on the new frame. *)
              Buffer.clear t.body;
              emit (Bad "unterminated frame")
          | c -> Buffer.add_char t.body c)
      | Check1 ->
          if c = '$' then begin
            (* The frame was cut before its checksum and a new one starts
               right here, possibly in the same read chunk as the trailing
               garbage.  Consuming the '$' as a checksum digit would
               silently discard the next (valid) frame — report the
               damaged one and resync on the new frame instead. *)
            Buffer.clear t.body;
            emit (Bad "frame cut at checksum");
            t.state <- Body
          end
          else t.state <- Check2 c
      | Check2 c1 ->
          if c = '$' then begin
            Buffer.clear t.body;
            emit (Bad "frame cut at checksum");
            t.state <- Body
          end
          else emit (finish t c1 c)
    done;
    List.rev !events
end

(* The whole-string API used by the in-process loopback: one complete
   frame per call, strict about its shape, as before the deframer
   existed.  Now a thin wrapper over [Deframer.feed]. *)
let decode raw =
  let n = String.length raw in
  if n < 4 || raw.[0] <> '$' || raw.[n - 3] <> '#' then
    raise (Malformed "missing $...#xx frame");
  let d = Deframer.create () in
  match Deframer.feed d (Bytes.unsafe_of_string raw) 0 n with
  | [ Deframer.Frame payload ] when not (Deframer.pending d) && d.Deframer.junk = 0 ->
      payload
  | [ Deframer.Bad msg ] -> raise (Malformed msg)
  | _ -> raise (Malformed "not exactly one frame")

(* Memory packets are the hot path (one [m]/[M] per cache-line fill or
   coalesced write), so both codecs are single-pass loops over
   preallocated buffers — no Buffer growth, no per-byte closures. *)

let hex_digits = "0123456789abcdef"

let hex_of_bytes data =
  let n = Bytes.length data in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.unsafe_get data i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1)
      (String.unsafe_get hex_digits (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - 48
  | 'a' .. 'f' -> Char.code c - 87
  | 'A' .. 'F' -> Char.code c - 55
  | _ -> raise (Malformed (Printf.sprintf "bad hex digit %C" c))

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then raise (Malformed "odd hex length");
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = nibble (String.unsafe_get s (2 * i)) in
    let lo = nibble (String.unsafe_get s ((2 * i) + 1)) in
    Bytes.unsafe_set out i (Char.unsafe_chr ((hi lsl 4) lor lo))
  done;
  out
