module Ctype = Duel_ctype.Ctype
module Dbgi = Duel_dbgi.Dbgi
module Inferior = Duel_target.Inferior

type debug_info = {
  di_abi : Duel_ctype.Abi.t;
  di_tenv : Duel_ctype.Tenv.t;
  di_find_variable : string -> Dbgi.var_info option;
  di_frames : unit -> Dbgi.frame_info list;
}

let debug_info_of_inferior inf =
  {
    di_abi = Inferior.abi inf;
    di_tenv = Inferior.tenv inf;
    di_find_variable = Inferior.find_variable inf;
    di_frames = (fun () -> Inferior.frames inf);
  }

let cval_to_wire = function
  | Dbgi.Cint (_, v) -> Printf.sprintf "i%Lx" v
  | Dbgi.Cfloat (_, f) -> Printf.sprintf "f%Lx" (Int64.bits_of_float f)

let cval_of_wire s =
  if String.length s < 2 then failwith "rsp: short cval reply";
  let v =
    try Int64.of_string ("0x" ^ String.sub s 1 (String.length s - 1))
    with Failure _ -> failwith ("rsp: bad cval reply " ^ s)
  in
  match s.[0] with
  | 'i' -> Dbgi.Cint (Ctype.llong, v)
  | 'f' -> Dbgi.Cfloat (Ctype.double, Int64.float_of_bits v)
  | k -> failwith (Printf.sprintf "rsp: bad cval kind %c" k)

let connect ~exchange di =
  let rpc payload =
    let reply = exchange (Packet.encode payload) in
    if reply = "-" then failwith "rsp: remote rejected packet (NAK)"
    else
      try Packet.decode reply
      with Packet.Malformed msg -> failwith ("rsp: malformed reply: " ^ msg)
  in
  let is_error r = String.length r >= 1 && r.[0] = 'E' in
  let get_bytes ~addr ~len =
    if len = 0 then Bytes.create 0
    else
      let reply = rpc (Printf.sprintf "m%x,%x" addr len) in
      if is_error reply then raise (Dbgi.Target_fault { addr; len })
      else
        let data = Packet.bytes_of_hex reply in
        if Bytes.length data <> len then failwith "rsp: short memory reply"
        else data
  in
  let put_bytes ~addr data =
    if Bytes.length data > 0 then begin
      let reply =
        rpc
          (Printf.sprintf "M%x,%x:%s" addr (Bytes.length data)
             (Packet.hex_of_bytes data))
      in
      if reply <> "OK" then
        raise (Dbgi.Target_fault { addr; len = Bytes.length data })
    end
  in
  let alloc_space len =
    let reply = rpc (Printf.sprintf "qDuelAlloc:%x" len) in
    if is_error reply || reply = "" then failwith "rsp: allocation failed"
    else int_of_string ("0x" ^ reply)
  in
  let call_func name args =
    let payload =
      String.concat ";" (("qDuelCall:" ^ name) :: List.map cval_to_wire args)
    in
    let reply = rpc payload in
    if String.length reply >= 2 && String.sub reply 0 2 = "E!" then
      failwith (String.sub reply 2 (String.length reply - 2))
    else if is_error reply || reply = "" then
      failwith ("rsp: call to " ^ name ^ " failed")
    else
      (* The wire format is untyped; recover the return type from the
         local prototype, as gdb does from debug info. *)
      let ret_type =
        match di.di_find_variable name with
        | Some { Dbgi.v_type = Ctype.Func ft; _ }
        | Some { Dbgi.v_type = Ctype.Ptr (Ctype.Func ft); _ } ->
            Some ft.Ctype.ret
        | _ -> None
      in
      match (cval_of_wire reply, ret_type) with
      | Dbgi.Cint (_, v), Some ((Ctype.Integer k) as t) ->
          Dbgi.Cint (t, Ctype.normalize di.di_abi k v)
      | Dbgi.Cint (_, v), Some ((Ctype.Ptr _ | Ctype.Enum _) as t) ->
          Dbgi.Cint (t, v)
      | Dbgi.Cfloat (_, f), Some ((Ctype.Floating _) as t) -> Dbgi.Cfloat (t, f)
      | cv, _ -> cv
  in
  {
    Dbgi.abi = di.di_abi;
    get_bytes;
    put_bytes;
    alloc_space;
    call_func;
    find_variable = di.di_find_variable;
    tenv = di.di_tenv;
    frames = di.di_frames;
    caps = Dbgi.basic_caps ~transport:Dbgi.Loopback "rsp";
    health = Dbgi.always_healthy;
  }

let loopback ?(cache = true) ?(prefetch = true) inf =
  let server = Server.create inf in
  let raw = connect ~exchange:(Server.handle server) (debug_info_of_inferior inf) in
  if cache then begin
    (* The "remote" is in-process, so we can snoop its memory generation
       like the direct backend does; a genuinely remote transport would
       instead invalidate on stop events. *)
    let dbg =
      Duel_dbgi.Dcache.wrap
        ~config:
          {
            Duel_dbgi.Dcache.default_config with
            stale_policy =
              Duel_dbgi.Dcache.Probe
                (fun () ->
                  Duel_mem.Memory.generation (Inferior.mem inf));
          }
        raw
    in
    if prefetch then ignore (Duel_dbgi.Prefetch.attach dbg);
    dbg
  end
  else raw
