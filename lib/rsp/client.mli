(** The RSP-backed debugger interface.

    Implements {!Duel_dbgi.Dbgi.t} over an RSP byte exchange: memory
    reads/writes, target-space allocation, and target-function calls go
    over the wire; symbols and types come from local "debug info" — just
    as gdb reads symbols and types from the executable file and uses the
    remote protocol only for the live process state.

    The [exchange] function carries one framed packet each way (a network
    transport, or {!loopback} for an in-process server). *)

type debug_info = {
  di_abi : Duel_ctype.Abi.t;
  di_tenv : Duel_ctype.Tenv.t;
  di_find_variable : string -> Duel_dbgi.Dbgi.var_info option;
  di_frames : unit -> Duel_dbgi.Dbgi.frame_info list;
}

val debug_info_of_inferior : Duel_target.Inferior.t -> debug_info
(** Extract the "executable side" information from a simulated inferior —
    what gdb would have parsed out of the binary's debug sections. *)

val connect : exchange:(string -> string) -> debug_info -> Duel_dbgi.Dbgi.t
(** @raise Failure on protocol errors. *)

val loopback :
  ?cache:bool -> ?prefetch:bool -> Duel_target.Inferior.t -> Duel_dbgi.Dbgi.t
(** A ready-made client wired to an in-process {!Server} over the framed
    packet format (every byte still goes through encode/decode).  By
    default wrapped in {!Duel_dbgi.Dcache} (with a write-generation
    coherence probe on the in-process memory) so that traversals cost one
    packet per cache line instead of one per scalar; [~cache:false] gives
    the raw one-packet-per-access client. *)
