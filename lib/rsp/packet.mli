(** GDB Remote Serial Protocol packet framing.

    A packet is [$<payload>#<xx>] where [xx] is the two-hex-digit modulo-256
    sum of the payload bytes.  Payload bytes [$], [#], [}], [*] are escaped
    as [}] followed by the byte xor 0x20; run-length encoding
    ([<byte>*<count+29>]) is accepted on decode (gdbserver emits it) but
    never produced on encode. *)

exception Malformed of string

val checksum : string -> int
val encode : string -> string
(** Frame a payload: escape, append checksum. *)

val decode : string -> string
(** Unframe one packet: verify checksum, undo escapes and run-length
    encoding.  The string must be exactly one frame ([$...#xx]).
    @raise Malformed on bad framing or checksum. *)

(** Incremental deframing for byte-stream transports.

    A TCP or serial connection delivers frames split and coalesced
    arbitrarily across reads, interleaved with single-byte ACK ([+]) /
    NAK ([-]) responses and, after a damaged exchange, garbage.  A
    deframer holds the parse state between reads: feed it each chunk as
    it arrives and act on the completed events.  Junk outside a frame is
    skipped (counted by {!Deframer.junk}) until the next [$] — the
    resynchronisation a real stub performs.  A frame that arrives
    complete but damaged (checksum mismatch, bad escapes) is reported as
    [Bad] rather than raising, because on a live connection the right
    response is a NAK, not an exception. *)
module Deframer : sig
  type event =
    | Frame of string  (** a well-formed frame's decoded payload *)
    | Bad of string  (** a complete but damaged frame: reply NAK *)
    | Ack  (** a bare [+] *)
    | Nak  (** a bare [-] *)

  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> event list
  (** [feed t buf off len] consumes [len] bytes of [buf] starting at
      [off] and returns the events they complete, in order.  Partial
      frames stay buffered for the next call.
      @raise Invalid_argument on an out-of-bounds range. *)

  val junk : t -> int
  (** Bytes skipped while hunting for a [$] outside any frame. *)

  val pending : t -> bool
  (** Whether a partially received frame is buffered. *)
end

val hex_of_bytes : bytes -> string
val bytes_of_hex : string -> bytes
(** @raise Malformed on odd length or non-hex digits. *)
