(** An RSP stub ("gdbserver") fronting a simulated inferior.

    Speaks standard memory packets plus three [qDuel] extension queries in
    the spirit of gdb's [q] packets (a real debug agent would also need
    them, because DUEL allocates scratch target space and calls target
    functions):

    {ul
    {- [m<addr>,<len>] — read memory, hex reply or [E01] on fault}
    {- [M<addr>,<len>:<hex>] — write memory, [OK] or [E01]}
    {- [qDuelAlloc:<len>] — allocate target space, reply [<addr hex>]}
    {- [qDuelCall:<name>;<arg>;...] — call a target function; each arg and
       the reply are [i<hex64>] (integer/pointer) or [f<hex64>] (double
       bits)}
    {- [qDuelFrames] — reply [<n hex>], the active frame count}
    {- [qSupported], [?], [Hg...] — handshake niceties, answered inertly}}

    Unknown packets get the RSP-standard empty reply.

    {2 Resource limits}

    The stub serves a shared target, possibly to many connections at
    once (see [Duel_serve]), so per-request sizes are bounded: reads and
    writes beyond {!limits.max_read}/{!limits.max_write} bytes and
    allocations beyond {!limits.max_alloc} (or a heap-exhausted
    allocator) reply [E02] instead of performing the operation or
    raising — one greedy client cannot exhaust the simulated target or
    provoke an unbounded reply. *)

type limits = {
  max_read : int;  (** largest [m] read, bytes *)
  max_write : int;  (** largest [M] write, bytes *)
  max_alloc : int;  (** largest single [qDuelAlloc], bytes *)
}

val default_limits : limits
(** 4 KiB reads and writes (comfortably above the advertised
    [PacketSize]), 1 MiB allocations. *)

type t

val create : ?limits:limits -> Duel_target.Inferior.t -> t

val handle_payload : t -> string -> string
(** Process one decoded payload, returning the reply payload. *)

val handle : t -> string -> string
(** Process one framed packet ([$...#xx]) and return the framed reply.
    Malformed packets get a NAK ["-"]. *)
