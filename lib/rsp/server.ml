module Inferior = Duel_target.Inferior
module Memory = Duel_mem.Memory
module Ctype = Duel_ctype.Ctype
module Dbgi = Duel_dbgi.Dbgi

(* Per-request resource bounds.  The stub fronts one shared target; a
   greedy (or broken) client must get an error reply, not exhaust the
   simulated heap or make the stub build an unbounded reply.  [E02] is
   the resource-limit error, distinct from [E01] (target fault). *)
type limits = { max_read : int; max_write : int; max_alloc : int }

let default_limits =
  { max_read = 4096; max_write = 4096; max_alloc = 1 lsl 20 }

type t = { inf : Inferior.t; limits : limits }

let create ?(limits = default_limits) inf = { inf; limits }

let parse_int s =
  try Int64.to_int (Int64.of_string ("0x" ^ s))
  with Failure _ -> raise (Packet.Malformed ("bad hex number " ^ s))

let split_once ch s =
  match String.index_opt s ch with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let cval_to_wire = function
  | Dbgi.Cint (_, v) -> Printf.sprintf "i%Lx" v
  | Dbgi.Cfloat (_, f) -> Printf.sprintf "f%Lx" (Int64.bits_of_float f)

let cval_of_wire s =
  if String.length s < 2 then raise (Packet.Malformed "short cval");
  let v =
    try Int64.of_string ("0x" ^ String.sub s 1 (String.length s - 1))
    with Failure _ -> raise (Packet.Malformed ("bad cval " ^ s))
  in
  match s.[0] with
  | 'i' -> Dbgi.Cint (Ctype.llong, v)
  | 'f' -> Dbgi.Cfloat (Ctype.double, Int64.float_of_bits v)
  | _ -> raise (Packet.Malformed ("bad cval kind " ^ s))

let rec handle_payload srv payload =
  let mem = Inferior.mem srv.inf in
  let read_cmd spec =
    match split_once ',' spec with
    | None -> raise (Packet.Malformed "m: expected addr,len")
    | Some (a, l) -> (parse_int a, parse_int l)
  in
  if payload = "" then ""
  else
    match payload.[0] with
    | 'm' -> (
        let addr, len = read_cmd (String.sub payload 1 (String.length payload - 1)) in
        if len < 0 || len > srv.limits.max_read then "E02"
        else
          match Memory.read mem ~addr ~len with
          | data -> Packet.hex_of_bytes data
          | exception Memory.Fault _ -> "E01")
    | 'M' -> (
        let rest = String.sub payload 1 (String.length payload - 1) in
        match split_once ':' rest with
        | None -> raise (Packet.Malformed "M: expected addr,len:hex")
        | Some (spec, hex) -> (
            let addr, len = read_cmd spec in
            if len < 0 || len > srv.limits.max_write then "E02"
            else
              let data = Packet.bytes_of_hex hex in
              if Bytes.length data <> len then "E02"
              else
                match Memory.write mem ~addr data with
                | () -> "OK"
                | exception Memory.Fault _ -> "E01"))
    | 'q' -> query srv payload
    | '?' -> "S05"
    | 'H' -> "OK"
    | _ -> ""

and query srv payload =
  let with_prefix prefix f =
    let n = String.length prefix in
    if String.length payload >= n && String.sub payload 0 n = prefix then
      Some (f (String.sub payload n (String.length payload - n)))
    else None
  in
  let attempts =
    [
      (fun () ->
        with_prefix "qDuelAlloc:" (fun rest ->
            let len = parse_int rest in
            if len <= 0 || len > srv.limits.max_alloc then "E02"
            else
              match Inferior.alloc_data srv.inf ~size:len ~align:16 with
              | addr -> Printf.sprintf "%x" addr
              | exception (Invalid_argument _ | Failure _) ->
                  (* heap exhaustion: a resource limit, not a protocol
                     error — the connection must survive it *)
                  "E02"));
      (fun () ->
        with_prefix "qDuelCall:" (fun rest ->
            match String.split_on_char ';' rest with
            | [] -> "E03"
            | name :: args -> (
                let args =
                  List.filter_map
                    (fun a -> if a = "" then None else Some (cval_of_wire a))
                    args
                in
                match Inferior.call srv.inf name args with
                | result -> cval_to_wire result
                | exception Failure msg -> "E!" ^ msg)));
      (fun () ->
        with_prefix "qDuelFrames" (fun _ ->
            Printf.sprintf "%x" (List.length (Inferior.frames srv.inf))));
      (fun () ->
        with_prefix "qSupported" (fun _ -> "PacketSize=4000"));
    ]
  in
  let rec first = function
    | [] -> ""
    | f :: rest -> ( match f () with Some r -> r | None -> first rest)
  in
  first attempts

let handle srv raw =
  match Packet.decode raw with
  | exception Packet.Malformed _ -> "-"
  | payload -> (
      match handle_payload srv payload with
      | reply -> Packet.encode reply
      | exception Packet.Malformed _ -> Packet.encode "E00")
