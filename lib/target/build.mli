(** Typed heap-graph builder DSL.

    Scenario code constructs debuggee state (structs, arrays, strings,
    linked lists, trees) with these helpers instead of raw byte pokes.
    Every operation is endian- and ABI-correct: scalar widths and
    signedness come from the C type, struct offsets from
    {!Duel_ctype.Layout}, and the bytes go through {!Duel_mem.Codec}, so a
    graph built here is byte-identical to what the equivalent C program
    would have left in memory.

    Integer-valued helpers accept pointer types too (a pointer is stored as
    an unsigned integer of [ptr_size]); [poke_field]/[peek_field] also
    handle bit-field and floating members, converting the [int64] through
    the member's declared type. *)

val alloc : Inferior.t -> Duel_ctype.Ctype.t -> int
(** [alloc inf typ] mallocs zeroed heap storage for one value of [typ] and
    returns its address. *)

val cstring : Inferior.t -> string -> int
(** Copy a NUL-terminated C string into fresh heap storage; returns its
    address. *)

(** {1 Typed scalar access by address} *)

val poke_int : Inferior.t -> Duel_ctype.Ctype.t -> int -> int64 -> unit
(** [poke_int inf typ addr v] stores [v] at [addr] with the width of [typ]
    (an integer, enum, or pointer type).
    @raise Invalid_argument if [typ] has no integer representation. *)

val peek_int : Inferior.t -> Duel_ctype.Ctype.t -> int -> int64
(** Read back a scalar, sign-extending iff [typ] is signed. *)

val poke_float : Inferior.t -> Duel_ctype.Ctype.t -> int -> float -> unit
val peek_float : Inferior.t -> Duel_ctype.Ctype.t -> int -> float

(** {1 Struct/union members} *)

val field_addr : Inferior.t -> Duel_ctype.Ctype.comp -> int -> string -> int
(** Address of a member of the composite at this address.
    @raise Invalid_argument if the composite has no such member. *)

val poke_field : Inferior.t -> Duel_ctype.Ctype.comp -> int -> string -> int64 -> unit
(** Store through a member, honouring its declared type (including
    bit-fields and floating members). *)

val peek_field : Inferior.t -> Duel_ctype.Ctype.comp -> int -> string -> int64

(** {1 Globals by name} *)

val set_global_int : Inferior.t -> string -> int64 -> unit
(** @raise Invalid_argument if no such global. *)

val get_global_int : Inferior.t -> string -> int64
