module Abi = Duel_ctype.Abi
module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Tenv = Duel_ctype.Tenv
module Memory = Duel_mem.Memory
module Alloc = Duel_mem.Alloc
module Dbgi = Duel_dbgi.Dbgi

(* Address-space map (everything strictly below 0x4000_0000, so that
   0x4000_0000 is the canonical never-mapped wild address used by the
   fault-injection scenarios and the RSP fault tests). *)
let text_base = 0x1000
let data_base = 0x0010_0000
let heap_base = 0x0100_0000
let heap_size = 0x1000_0000
let stack_base = 0x3000_0000
let stack_limit = 0x3800_0000

type sym = {
  sym_addr : int;
  sym_size : int;  (* 0 for functions: invisible to [symbol_at] *)
  sym_type : Ctype.t;
}

type frame = {
  fr_name : string;
  fr_locals : (string * Dbgi.var_info) list;
  fr_saved_sp : int;
}

type t = {
  abi : Abi.t;
  mem : Memory.t;
  tenv : Tenv.t;
  heap : Alloc.t;
  symbols : (string, sym) Hashtbl.t;
  mutable sym_order : (string * sym) list;  (* definition order, for symbol_at *)
  funcs : (string, t -> Dbgi.cval list -> Dbgi.cval) Hashtbl.t;
  mutable next_data : int;
  mutable next_text : int;
  mutable sp : int;
  mutable frame_stack : frame list;  (* innermost first *)
  out : Buffer.t;
}

let create ?(abi = Abi.lp64) () =
  let mem = Memory.create () in
  {
    abi;
    mem;
    tenv = Tenv.create ();
    heap = Alloc.create mem ~base:heap_base ~size:heap_size;
    symbols = Hashtbl.create 64;
    sym_order = [];
    funcs = Hashtbl.create 16;
    next_data = data_base;
    next_text = text_base;
    sp = stack_base;
    frame_stack = [];
    out = Buffer.create 256;
  }

let abi inf = inf.abi
let mem inf = inf.mem
let tenv inf = inf.tenv
let heap inf = inf.heap

let alloc_data inf ~size ~align =
  if align > 16 then
    invalid_arg (Printf.sprintf "Inferior.alloc_data: alignment %d > 16" align);
  Alloc.malloc inf.heap size

let align_up addr align = if align <= 1 then addr else (addr + align - 1) / align * align

(* Size/alignment of a symbol's storage; functions and incomplete types
   occupy no data (size 0). *)
let storage_of abi typ =
  match Layout.size_of abi typ with
  | size -> (size, Layout.align_of abi typ)
  | exception Layout.Incomplete _ -> (0, 1)

let add_symbol inf name sym =
  Hashtbl.replace inf.symbols name sym;
  inf.sym_order <- (name, sym) :: inf.sym_order

let check_fresh inf name =
  if Hashtbl.mem inf.symbols name then
    invalid_arg (Printf.sprintf "Inferior: symbol %s already defined" name)

let define_global inf name typ =
  check_fresh inf name;
  let size, align = storage_of inf.abi typ in
  let addr = align_up inf.next_data align in
  if addr + size >= heap_base then
    invalid_arg (Printf.sprintf "Inferior: data region exhausted by %s" name);
  inf.next_data <- addr + max size 1;
  Memory.map inf.mem ~addr ~size:(max size 1);
  add_symbol inf name { sym_addr = addr; sym_size = size; sym_type = typ };
  addr

let find_variable inf name =
  match Hashtbl.find_opt inf.symbols name with
  | Some s -> Some { Dbgi.v_addr = s.sym_addr; v_type = s.sym_type }
  | None -> None

let symbol_at inf addr =
  let covers (_, s) = s.sym_size > 0 && addr >= s.sym_addr && addr < s.sym_addr + s.sym_size in
  match List.find_opt covers inf.sym_order with
  | Some (name, s) -> Some (name, addr - s.sym_addr)
  | None -> None

(* --- frames -------------------------------------------------------------- *)

let push_frame inf fname locals =
  let saved = inf.sp in
  let place (name, typ) =
    let size, align = storage_of inf.abi typ in
    let size = max size 1 in
    let addr = align_up inf.sp align in
    if addr + size > stack_limit then failwith "Inferior: target stack overflow";
    inf.sp <- addr + size;
    Memory.map inf.mem ~addr ~size;
    (* map only zeroes fresh pages; recursion reuses stack addresses, so
       re-zero explicitly to give each activation pristine locals *)
    Memory.write inf.mem ~addr (Bytes.make size '\000');
    (name, { Dbgi.v_addr = addr; v_type = typ })
  in
  let placed = List.map place locals in
  inf.frame_stack <-
    { fr_name = fname; fr_locals = placed; fr_saved_sp = saved } :: inf.frame_stack

let pop_frame inf =
  match inf.frame_stack with
  | [] -> invalid_arg "Inferior.pop_frame: no active frames"
  | fr :: rest ->
      inf.sp <- fr.fr_saved_sp;
      inf.frame_stack <- rest

let frames inf =
  List.mapi
    (fun i fr ->
      { Dbgi.fr_index = i; fr_func = fr.fr_name; fr_locals = fr.fr_locals })
    inf.frame_stack

(* --- target functions ----------------------------------------------------- *)

let register_func inf name ftype impl =
  check_fresh inf name;
  let addr = inf.next_text in
  inf.next_text <- inf.next_text + 16;
  add_symbol inf name { sym_addr = addr; sym_size = 0; sym_type = ftype };
  Hashtbl.replace inf.funcs name impl

let call inf name args =
  match Hashtbl.find_opt inf.funcs name with
  | Some impl -> impl inf args
  | None -> failwith ("no target function named " ^ name)

(* --- captured stdout ------------------------------------------------------ *)

let emit_output inf s = Buffer.add_string inf.out s

let take_output inf =
  let s = Buffer.contents inf.out in
  Buffer.clear inf.out;
  s

let peek_output inf = Buffer.contents inf.out
