module Memory = Duel_mem.Memory
module Dbgi = Duel_dbgi.Dbgi

let direct ?(cache = true) ?(prefetch = true) inf =
  let mem = Inferior.mem inf in
  let raw =
    {
      Dbgi.abi = Inferior.abi inf;
    get_bytes =
      (fun ~addr ~len ->
        try Memory.read mem ~addr ~len
        with Memory.Fault fault ->
          raise (Dbgi.Target_fault { addr = fault; len }));
    put_bytes =
      (fun ~addr data ->
        try Memory.write mem ~addr data
        with Memory.Fault fault ->
          raise (Dbgi.Target_fault { addr = fault; len = Bytes.length data }));
      alloc_space = (fun size -> Inferior.alloc_data inf ~size ~align:16);
      call_func = (fun name args -> Inferior.call inf name args);
      find_variable = Inferior.find_variable inf;
      tenv = Inferior.tenv inf;
      frames = (fun () -> Inferior.frames inf);
      caps = Dbgi.basic_caps ~transport:Dbgi.Direct "direct";
      health = Dbgi.always_healthy;
    }
  in
  if cache then begin
    (* The memory is in-process, so the cache snoops its write generation:
       stores that bypass the interface (the mini-C interpreter, scenario
       builders) invalidate on the next access instead of going stale. *)
    let dbg =
      Duel_dbgi.Dcache.wrap
        ~config:
          {
            Duel_dbgi.Dcache.default_config with
            stale_policy = Duel_dbgi.Dcache.Probe (fun () -> Memory.generation mem);
          }
        raw
    in
    if prefetch then ignore (Duel_dbgi.Prefetch.attach dbg);
    dbg
  end
  else raw
