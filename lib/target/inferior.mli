(** The simulated debuggee ("inferior").

    Plays the role of the live C process the paper's DUEL examined through
    gdb: a byte-addressed target address space ({!Duel_mem.Memory}) carved
    into text, data, heap, and stack regions, plus the debug information a
    debugger would get from symbol tables — global names with addresses and
    C types, a type environment for tags and typedefs, a stack of active
    frames with typed locals, and registered callable target functions.

    Nothing outside [lib/target] touches the internals; consumers go
    through this interface, through the {!Build} object-graph DSL, or
    through the narrow {!Duel_dbgi.Dbgi.t} produced by {!Backend.direct}.

    {2 Address-space layout}

    All regions live below [0x4000_0000], so addresses at or above it are
    never mapped — fault-injection scenarios use [0x4000_0000] as a
    canonical wild pointer:

    - text (registered functions):  [0x0000_1000 ...]
    - data (globals):               [0x0010_0000 ...], bump-allocated
    - heap ({!heap}, [malloc]):     [0x0100_0000 ... 0x1100_0000)
    - stack (frame locals):         [0x3000_0000 ... 0x3800_0000) *)

type t

val create : ?abi:Duel_ctype.Abi.t -> unit -> t
(** Fresh empty inferior.  [abi] defaults to {!Duel_ctype.Abi.lp64}. *)

(** {1 Substrate accessors} *)

val abi : t -> Duel_ctype.Abi.t
val mem : t -> Duel_mem.Memory.t
val tenv : t -> Duel_ctype.Tenv.t

val heap : t -> Duel_mem.Alloc.t
(** The target [malloc] heap; also backs [alloc_space] on the debugger
    interface and the {!Build} DSL. *)

val alloc_data : t -> size:int -> align:int -> int
(** Allocate zeroed heap space.  Blocks are 16-byte aligned;
    @raise Invalid_argument if [align] exceeds 16. *)

(** {1 Symbols} *)

val define_global : t -> string -> Duel_ctype.Ctype.t -> int
(** Place a global of the given type in the data region (aligned for its
    type, zero-initialised) and enter it into the symbol table; returns its
    address.
    @raise Invalid_argument ["Inferior: symbol <name> already defined"] on a
    duplicate name. *)

val find_variable : t -> string -> Duel_dbgi.Dbgi.var_info option
(** Globals {e and} registered functions by name — the paper's
    [duel_get_target_variable]. *)

val symbol_at : t -> int -> (string * int) option
(** The data symbol whose storage contains this address, with the byte
    offset into it — the inverse symbol lookup debuggers use to print
    addresses as [name+offset]. *)

(** {1 Frames} *)

val push_frame : t -> string -> (string * Duel_ctype.Ctype.t) list -> unit
(** Enter a function: allocate zeroed, properly aligned stack storage for
    each named local, in order. *)

val pop_frame : t -> unit
(** Leave the innermost frame, releasing its stack storage.
    @raise Invalid_argument ["Inferior.pop_frame: no active frames"]. *)

val frames : t -> Duel_dbgi.Dbgi.frame_info list
(** Active frames, innermost first; [fr_index] 0 is the innermost. *)

(** {1 Target functions} *)

val register_func :
  t ->
  string ->
  Duel_ctype.Ctype.t ->
  (t -> Duel_dbgi.Dbgi.cval list -> Duel_dbgi.Dbgi.cval) ->
  unit
(** Register a callable target function.  The C type (normally a
    [Ctype.Func]) is entered into the symbol table at a fresh text address,
    so [find_variable] reports it and callers can recover the return type,
    as gdb does from debug info.
    @raise Invalid_argument on a duplicate symbol name. *)

val call : t -> string -> Duel_dbgi.Dbgi.cval list -> Duel_dbgi.Dbgi.cval
(** Invoke a registered function — the paper's [duel_call_target_func].
    @raise Failure ["no target function named <name>"] if unknown. *)

(** {1 Captured target stdout}

    Target-resident [printf]/[puts] write here instead of the real stdout,
    so transcripts are reproducible and testable. *)

val emit_output : t -> string -> unit
(** Append to the capture buffer (used by {!Stdfuncs}). *)

val take_output : t -> string
(** Return everything captured since the last [take_output], clearing the
    buffer. *)

val peek_output : t -> string
(** Return the buffered output without clearing it. *)
