(** The direct in-process debugger backend.

    [direct inf] wraps a simulated inferior in the paper's narrow debugger
    interface — the moral equivalent of DUEL's ~400-line gdb glue module.
    Memory faults ({!Duel_mem.Memory.Fault}) surface as
    {!Duel_dbgi.Dbgi.Target_fault} carrying the exact faulting byte address
    and the length of the attempted access; zero-length transfers always
    succeed, per the interface convention. *)

val direct : Inferior.t -> Duel_dbgi.Dbgi.t
