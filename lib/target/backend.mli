(** The direct in-process debugger backend.

    [direct inf] wraps a simulated inferior in the paper's narrow debugger
    interface — the moral equivalent of DUEL's ~400-line gdb glue module.
    Memory faults ({!Duel_mem.Memory.Fault}) surface as
    {!Duel_dbgi.Dbgi.Target_fault} carrying the exact faulting byte address
    and the length of the attempted access; zero-length transfers always
    succeed, per the interface convention.

    By default the interface is wrapped in {!Duel_dbgi.Dcache} with a
    coherence probe on the inferior's memory, so direct stores (the
    mini-C interpreter, scenario builders) invalidate it automatically,
    and a {!Duel_dbgi.Prefetch} predictor speculates into that cache;
    pass [~cache:false] for the raw, uncached interface (the inferior's
    own store path, conformance baselines) or [~prefetch:false] for a
    cache with no speculation (differential baselines). *)

val direct : ?cache:bool -> ?prefetch:bool -> Inferior.t -> Duel_dbgi.Dbgi.t
