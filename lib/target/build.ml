module Abi = Duel_ctype.Abi
module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Codec = Duel_mem.Codec

let alloc inf typ =
  Inferior.alloc_data inf ~size:(Layout.size_of (Inferior.abi inf) typ) ~align:16

let cstring inf s =
  let addr = Inferior.alloc_data inf ~size:(String.length s + 1) ~align:16 in
  Codec.write_cstring (Inferior.mem inf) ~addr s;
  addr

(* Width and signedness of an integer-representable scalar type (integers,
   enums, _Bool, pointers). *)
let int_shape abi typ =
  match typ with
  | Ctype.Ptr _ -> (abi.Abi.ptr_size, false)
  | _ -> (
      match Ctype.integer_kind typ with
      | Some k -> (Ctype.ikind_size abi k, Ctype.ikind_signed abi k)
      | None -> invalid_arg "Build: not an integer-representable type")

let poke_int inf typ addr v =
  let abi = Inferior.abi inf in
  let size, _ = int_shape abi typ in
  Codec.write_int abi (Inferior.mem inf) ~addr ~size v

let peek_int inf typ addr =
  let abi = Inferior.abi inf in
  let size, signed = int_shape abi typ in
  Codec.read_int abi (Inferior.mem inf) ~addr ~size ~signed

let float_size abi typ =
  match typ with
  | Ctype.Floating k -> Ctype.fkind_size abi k
  | _ -> invalid_arg "Build: not a floating type"

let poke_float inf typ addr v =
  let abi = Inferior.abi inf in
  Codec.write_float abi (Inferior.mem inf) ~addr ~size:(float_size abi typ) v

let peek_float inf typ addr =
  let abi = Inferior.abi inf in
  Codec.read_float abi (Inferior.mem inf) ~addr ~size:(float_size abi typ)

let find_field inf comp name =
  match Layout.find_field (Inferior.abi inf) comp name with
  | Some fi -> fi
  | None ->
      invalid_arg
        (Printf.sprintf "Build: struct %s has no field %s" comp.Ctype.comp_tag
           name)

let field_addr inf comp addr name = addr + (find_field inf comp name).Layout.fi_offset

let poke_field inf comp addr name v =
  let abi = Inferior.abi inf in
  let fi = find_field inf comp name in
  let faddr = addr + fi.Layout.fi_offset in
  let ftype = fi.Layout.fi_field.Ctype.f_type in
  match fi.Layout.fi_field.Ctype.f_bits with
  | Some width ->
      Codec.write_bitfield abi (Inferior.mem inf) ~addr:faddr
        ~unit_size:(Layout.size_of abi ftype) ~bit_off:fi.Layout.fi_bit_off
        ~width v
  | None -> (
      match ftype with
      | Ctype.Floating _ -> poke_float inf ftype faddr (Int64.to_float v)
      | _ -> poke_int inf ftype faddr v)

let peek_field inf comp addr name =
  let abi = Inferior.abi inf in
  let fi = find_field inf comp name in
  let faddr = addr + fi.Layout.fi_offset in
  let ftype = fi.Layout.fi_field.Ctype.f_type in
  match fi.Layout.fi_field.Ctype.f_bits with
  | Some width ->
      let signed =
        match Ctype.integer_kind ftype with
        | Some k -> Ctype.ikind_signed abi k
        | None -> false
      in
      Codec.read_bitfield abi (Inferior.mem inf) ~addr:faddr
        ~unit_size:(Layout.size_of abi ftype) ~bit_off:fi.Layout.fi_bit_off
        ~width ~signed
  | None -> (
      match ftype with
      | Ctype.Floating _ -> Int64.of_float (peek_float inf ftype faddr)
      | _ -> peek_int inf ftype faddr)

let global inf name =
  match Inferior.find_variable inf name with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Build: no global named %s" name)

let set_global_int inf name v =
  let info = global inf name in
  poke_int inf info.Duel_dbgi.Dbgi.v_type info.Duel_dbgi.Dbgi.v_addr v

let get_global_int inf name =
  let info = global inf name in
  peek_int inf info.Duel_dbgi.Dbgi.v_type info.Duel_dbgi.Dbgi.v_addr
