module Abi = Duel_ctype.Abi
module Ctype = Duel_ctype.Ctype
module Codec = Duel_mem.Codec
module Dbgi = Duel_dbgi.Dbgi

let max_cstring = 65536

let read_string inf addr =
  Codec.read_cstring (Inferior.mem inf) ~addr ~max_len:max_cstring

(* --- the conversion engine ---------------------------------------------- *)

(* Mask an integer argument to the unsigned range of its C type, for the
   unsigned conversions (%u %x %X %o %p): C converts the vararg, we mask. *)
let to_unsigned abi typ v =
  let size =
    match typ with
    | Ctype.Ptr _ -> abi.Abi.ptr_size
    | _ -> (
        match Ctype.integer_kind typ with
        | Some k -> Ctype.ikind_size abi k
        | None -> 8)
  in
  if size >= 8 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L (size * 8)) 1L)

type spec = {
  left : bool;
  zero : bool;
  width : int;  (* 0 = none *)
  prec : int option;
}

let pad spec ~numeric s =
  if String.length s >= spec.width then s
  else
    let fill = spec.width - String.length s in
    if spec.left then s ^ String.make fill ' '
    else if spec.zero && numeric && String.length s > 0
            && (s.[0] = '-' || s.[0] = '+') then
      String.make 1 s.[0] ^ String.make fill '0'
      ^ String.sub s 1 (String.length s - 1)
    else if spec.zero && numeric then String.make fill '0' ^ s
    else String.make fill ' ' ^ s

(* Minimum-digits precision for integer conversions: zeros after the sign. *)
let int_prec prec s =
  match prec with
  | None -> s
  | Some p ->
      let sign, digits =
        if String.length s > 0 && (s.[0] = '-' || s.[0] = '+') then
          (String.sub s 0 1, String.sub s 1 (String.length s - 1))
        else ("", s)
      in
      if String.length digits >= p then s
      else sign ^ String.make (p - String.length digits) '0' ^ digits

let format inf fmt args =
  let abi = Inferior.abi inf in
  let buf = Buffer.create (String.length fmt + 32) in
  let args = ref args in
  let next_arg () =
    match !args with
    | [] -> None
    | a :: rest ->
        args := rest;
        Some a
  in
  let next_int () =
    match next_arg () with
    | Some (Dbgi.Cint (typ, v)) -> (typ, v)
    | Some (Dbgi.Cfloat (_, f)) -> (Ctype.llong, Int64.of_float f)
    | None -> (Ctype.int, 0L)
  in
  let next_float () =
    match next_arg () with
    | Some (Dbgi.Cfloat (_, f)) -> f
    | Some (Dbgi.Cint (_, v)) -> Int64.to_float v
    | None -> 0.0
  in
  let n = String.length fmt in
  let rec scan i =
    if i < n then
      match fmt.[i] with
      | '%' when i + 1 < n -> directive (i + 1)
      | c ->
          Buffer.add_char buf c;
          scan (i + 1)
  and directive i =
    (* flags *)
    let left = ref false and zero = ref false in
    let rec flags i =
      if i < n then
        match fmt.[i] with
        | '-' ->
            left := true;
            flags (i + 1)
        | '0' ->
            zero := true;
            flags (i + 1)
        | '+' | ' ' | '#' -> flags (i + 1)
        | _ -> i
      else i
    in
    let i = flags i in
    (* width (digits or '*') *)
    let width, i =
      if i < n && fmt.[i] = '*' then
        let _, v = next_int () in
        (Int64.to_int v, i + 1)
      else
        let rec digits acc i =
          if i < n && fmt.[i] >= '0' && fmt.[i] <= '9' then
            digits ((acc * 10) + (Char.code fmt.[i] - Char.code '0')) (i + 1)
          else (acc, i)
        in
        digits 0 i
    in
    (* precision *)
    let prec, i =
      if i < n && fmt.[i] = '.' then
        if i + 1 < n && fmt.[i + 1] = '*' then
          let _, v = next_int () in
          (Some (Int64.to_int v), i + 2)
        else
          let rec digits acc i =
            if i < n && fmt.[i] >= '0' && fmt.[i] <= '9' then
              digits ((acc * 10) + (Char.code fmt.[i] - Char.code '0')) (i + 1)
            else (acc, i)
          in
          let p, i = digits 0 (i + 1) in
          (Some p, i)
      else (None, i)
    in
    (* length modifiers: widths already travel as int64, so just skip *)
    let rec modifiers i =
      if i < n && (fmt.[i] = 'l' || fmt.[i] = 'h' || fmt.[i] = 'z') then
        modifiers (i + 1)
      else i
    in
    let i = modifiers i in
    let spec = { left = !left; zero = !zero; width; prec } in
    let emit ~numeric s = Buffer.add_string buf (pad spec ~numeric s) in
    let fprec = match prec with Some p -> p | None -> 6 in
    if i >= n then Buffer.add_char buf '%'
    else begin
      (match fmt.[i] with
      | 'd' | 'i' ->
          let _, v = next_int () in
          emit ~numeric:true (int_prec prec (Int64.to_string v))
      | 'u' ->
          let typ, v = next_int () in
          emit ~numeric:true
            (int_prec prec (Printf.sprintf "%Lu" (to_unsigned abi typ v)))
      | 'x' ->
          let typ, v = next_int () in
          emit ~numeric:true
            (int_prec prec (Printf.sprintf "%Lx" (to_unsigned abi typ v)))
      | 'X' ->
          let typ, v = next_int () in
          emit ~numeric:true
            (int_prec prec (Printf.sprintf "%LX" (to_unsigned abi typ v)))
      | 'o' ->
          let typ, v = next_int () in
          emit ~numeric:true
            (int_prec prec (Printf.sprintf "%Lo" (to_unsigned abi typ v)))
      | 'p' ->
          let typ, v = next_int () in
          emit ~numeric:false (Printf.sprintf "0x%Lx" (to_unsigned abi typ v))
      | 'c' ->
          let _, v = next_int () in
          emit ~numeric:false
            (String.make 1 (Char.chr (Int64.to_int (Int64.logand v 0xffL))))
      | 's' ->
          let _, v = next_int () in
          let s = if Int64.equal v 0L then "" else read_string inf (Int64.to_int v) in
          let s =
            match prec with
            | Some p when p < String.length s -> String.sub s 0 p
            | _ -> s
          in
          emit ~numeric:false s
      | 'f' | 'F' -> emit ~numeric:true (Printf.sprintf "%.*f" fprec (next_float ()))
      | 'e' -> emit ~numeric:true (Printf.sprintf "%.*e" fprec (next_float ()))
      | 'E' ->
          emit ~numeric:true
            (String.uppercase_ascii (Printf.sprintf "%.*e" fprec (next_float ())))
      | 'g' ->
          let p = max 1 fprec in
          emit ~numeric:true (Printf.sprintf "%.*g" p (next_float ()))
      | 'G' ->
          let p = max 1 fprec in
          emit ~numeric:true
            (String.uppercase_ascii (Printf.sprintf "%.*g" p (next_float ())))
      | '%' -> Buffer.add_char buf '%'
      | c ->
          (* unknown conversion: print it literally, as glibc does *)
          Buffer.add_char buf '%';
          Buffer.add_char buf c);
      scan (i + 1)
    end
  in
  scan 0;
  Buffer.contents buf

(* --- the registered family ----------------------------------------------- *)

let cint v = Dbgi.Cint (Ctype.int, v)

let arg_int = function
  | Some (Dbgi.Cint (_, v)) -> v
  | Some (Dbgi.Cfloat (_, f)) -> Int64.of_float f
  | None -> 0L

let arg_str inf = function
  | Some (Dbgi.Cint (_, p)) when not (Int64.equal p 0L) ->
      read_string inf (Int64.to_int p)
  | _ -> ""

let nth args i = List.nth_opt args i

let charp = Ctype.ptr Ctype.char
let voidp = Ctype.ptr Ctype.Void

let printf_impl inf args =
  match args with
  | fmt :: rest ->
      let s = format inf (arg_str inf (Some fmt)) rest in
      Inferior.emit_output inf s;
      cint (Int64.of_int (String.length s))
  | [] -> cint 0L

let puts_impl inf args =
  let s = arg_str inf (nth args 0) in
  Inferior.emit_output inf (s ^ "\n");
  cint (Int64.of_int (String.length s + 1))

let strlen_impl inf args =
  Dbgi.Cint (Ctype.ulong, Int64.of_int (String.length (arg_str inf (nth args 0))))

let strcmp_impl inf args =
  let a = arg_str inf (nth args 0) and b = arg_str inf (nth args 1) in
  cint (Int64.of_int (compare a b))

let strchr_impl inf args =
  match nth args 0 with
  | Some (Dbgi.Cint (_, p)) when not (Int64.equal p 0L) ->
      let base = Int64.to_int p in
      let s = read_string inf base in
      let c = Int64.to_int (Int64.logand (arg_int (nth args 1)) 0xffL) in
      if c = 0 then Dbgi.Cint (charp, Int64.of_int (base + String.length s))
      else (
        match String.index_opt s (Char.chr c) with
        | Some i -> Dbgi.Cint (charp, Int64.of_int (base + i))
        | None -> Dbgi.Cint (charp, 0L))
  | _ -> Dbgi.Cint (charp, 0L)

let abs_impl _inf args = cint (Int64.abs (arg_int (nth args 0)))

let atoi_impl inf args =
  let s = arg_str inf (nth args 0) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n') do incr i done;
  let sign =
    if !i < n && (s.[!i] = '-' || s.[!i] = '+') then (
      let neg = s.[!i] = '-' in
      incr i;
      if neg then -1L else 1L)
    else 1L
  in
  let v = ref 0L in
  while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
    v := Int64.add (Int64.mul !v 10L)
        (Int64.of_int (Char.code s.[!i] - Char.code '0'));
    incr i
  done;
  cint (Int64.mul sign !v)

let malloc_impl inf args =
  let size = Int64.to_int (arg_int (nth args 0)) in
  Dbgi.Cint (voidp, Int64.of_int (Inferior.alloc_data inf ~size ~align:16))

let free_impl inf args =
  (match arg_int (nth args 0) with
  | 0L -> ()  (* free(NULL) is a no-op *)
  | p -> Duel_mem.Alloc.free (Inferior.heap inf) (Int64.to_int p));
  cint 0L

let register_all inf =
  let fn name ret params ?(variadic = false) impl =
    Inferior.register_func inf name (Ctype.func ~variadic ret params) impl
  in
  fn "printf" Ctype.int [ charp ] ~variadic:true printf_impl;
  fn "puts" Ctype.int [ charp ] puts_impl;
  fn "strlen" Ctype.ulong [ charp ] strlen_impl;
  fn "strcmp" Ctype.int [ charp; charp ] strcmp_impl;
  fn "strchr" charp [ charp; Ctype.int ] strchr_impl;
  fn "abs" Ctype.int [ Ctype.int ] abs_impl;
  fn "atoi" Ctype.int [ charp ] atoi_impl;
  fn "malloc" voidp [ Ctype.ulong ] malloc_impl;
  fn "free" Ctype.Void [ voidp ] free_impl
