(** Target-resident standard-library functions.

    The paper's DUEL sessions call [printf] and friends inside the
    debuggee via gdb's [call]; here the equivalents are OCaml closures
    registered with {!Inferior.register_func} that operate {e only} on
    target memory and on C-converted argument values, so they are
    observationally identical from DUEL's side.  Output goes to the
    inferior's capture buffer ({!Inferior.take_output}), never to the real
    stdout.

    Registered set: [printf], [puts], [strlen], [strcmp], [strchr],
    [abs], [atoi], [malloc], [free].  Each is entered into the symbol
    table with its C prototype, so backends can recover return types the
    way gdb does from debug info. *)

val register_all : Inferior.t -> unit
(** Register the whole family.
    @raise Invalid_argument if any of the names is already defined. *)

val format : Inferior.t -> string -> Duel_dbgi.Dbgi.cval list -> string
(** [format inf fmt args] renders a C [printf] format string against
    C-converted arguments ([%d %i %u %x %X %o %c %s %f %e %g %p %%] with
    [-], [0], width, [.precision], [*], and [h]/[l] length modifiers).
    [%s] pointers are dereferenced in target memory.  Exhausted argument
    lists read as zero, as varargs would.  Exposed separately so tests can
    exercise the conversion engine without the call interface. *)
