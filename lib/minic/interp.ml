module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Tenv = Duel_ctype.Tenv
module Dbgi = Duel_dbgi.Dbgi
module Inferior = Duel_target.Inferior
module Ast = Duel_core.Ast
module Ir = Duel_core.Ir
module Lower = Duel_core.Lower
module Env = Duel_core.Env
module Value = Duel_core.Value
module Semantics = Duel_core.Semantics
module Eval = Duel_core.Eval_seq

(* Lowered bodies are memoized per AST node (physical identity: Mast
   shares subtrees only by reference).  Dynamic mode: this environment
   has no coherence probe and its frames come and go with every call, so
   resolution slots could go stale undetected — the interpreter takes
   the full lookup chain, as it always did. *)
module Acache = Hashtbl.Make (struct
  type t = Ast.expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type event =
  | Enter of { func : string }
  | Stmt of { func : string; line : int }
  | Leave of { func : string }

exception Runtime_error of string
exception Return_exc of Value.t option
exception Break_exc
exception Continue_exc

type t = {
  inf : Inferior.t;
  env : Env.t;  (* private evaluation environment of the running program *)
  funcs : (string, Mast.func) Hashtbl.t;
  lowered : Ir.expr Acache.t;
  mutable hook : (event -> unit) option;
  mutable step_limit : int;
  mutable steps : int;
}

let inferior t = t.inf
let functions t = Hashtbl.fold (fun k _ acc -> k :: acc) t.funcs []
let set_hook t hook = t.hook <- hook
let set_step_limit t n = t.step_limit <- n

let fire t event = match t.hook with Some h -> h event | None -> ()

(* --- expression evaluation (single-valued C view of DUEL eval) --------- *)

let ir t e =
  match Acache.find_opt t.lowered e with
  | Some lowered -> lowered
  | None ->
      let lowered = Lower.lower ~mode:Lower.Dynamic t.env e in
      Acache.add t.lowered e lowered;
      lowered

let first_value_ir t lowered =
  match (Eval.eval t.env lowered) () with
  | Seq.Cons (v, _) -> Some v
  | Seq.Nil -> None

let first_value t e = first_value_ir t (ir t e)

let eval1_ir t lowered =
  match first_value_ir t lowered with
  | Some v -> v
  | None -> raise (Runtime_error "expression produced no value")

let eval1 t e = eval1_ir t (ir t e)

let truth t e =
  match first_value t e with
  | Some v -> Value.truth (Duel_target.Backend.direct ~cache:false t.inf) v
  | None -> false

let drain t e = Seq.iter ignore (Eval.eval t.env (ir t e))

let resolve t te =
  Semantics.resolve_type t.env
    ~eval_int:(fun e -> Value.to_int64 t.env.Env.dbg (eval1_ir t e))
    (Lower.lower_type ~mode:Lower.Dynamic t.env te)

(* --- statement execution ------------------------------------------------ *)

let rec exec t fname stmt =
  t.steps <- t.steps + 1;
  if t.steps > t.step_limit then
    raise (Runtime_error (Printf.sprintf "step limit (%d) exceeded" t.step_limit));
  fire t (Stmt { func = fname; line = stmt.Mast.s_line });
  match stmt.Mast.s_kind with
  | Mast.Sempty -> ()
  | Mast.Sexpr e -> drain t e
  | Mast.Sdecl ds ->
      (* storage was hoisted at frame entry; run the initializers *)
      List.iter
        (fun (name, _, init) ->
          match init with
          | None -> ()
          | Some e ->
              let lhs = Env.lookup t.env name in
              ignore (Value.store t.env.Env.dbg ~into:lhs (eval1 t e)))
        ds
  | Mast.Sif (cond, then_s, else_s) ->
      if truth t cond then exec t fname then_s
      else Option.iter (exec t fname) else_s
  | Mast.Swhile (cond, body) ->
      (try
         while truth t cond do
           try exec t fname body with Continue_exc -> ()
         done
       with Break_exc -> ())
  | Mast.Sdo (body, cond) ->
      (try
         let continue = ref true in
         while !continue do
           (try exec t fname body with Continue_exc -> ());
           continue := truth t cond
         done
       with Break_exc -> ())
  | Mast.Sfor (init, cond, step, body) ->
      Option.iter (drain t) init;
      (try
         while match cond with None -> true | Some c -> truth t c do
           (try exec t fname body with Continue_exc -> ());
           Option.iter (drain t) step
         done
       with Break_exc -> ())
  | Mast.Sreturn None -> raise (Return_exc None)
  | Mast.Sreturn (Some e) -> raise (Return_exc (Some (eval1 t e)))
  | Mast.Sbreak -> raise Break_exc
  | Mast.Scontinue -> raise Continue_exc
  | Mast.Sblock ss -> List.iter (exec t fname) ss

(* --- function calls ------------------------------------------------------ *)

let run_function t (f : Mast.func) (args : Dbgi.cval list) : Dbgi.cval =
  let dbg = t.env.Env.dbg in
  let params = List.map (fun (n, te) -> (n, resolve t te)) f.Mast.f_params in
  let locals =
    List.map (fun (n, te) -> (n, resolve t te)) (Mast.locals_of_stmt f.Mast.f_body)
  in
  Inferior.push_frame t.inf f.Mast.f_name (params @ locals);
  let store_param (name, _) arg =
    let lhs = Env.lookup t.env name in
    let v = Value.of_cval arg lhs.Value.sym in
    ignore (Value.store dbg ~into:lhs v)
  in
  (try List.iter2 store_param params args
   with Invalid_argument _ ->
     Inferior.pop_frame t.inf;
     raise
       (Runtime_error
          (Printf.sprintf "%s expects %d arguments, got %d" f.Mast.f_name
             (List.length params) (List.length args))));
  let finish result =
    fire t (Leave { func = f.Mast.f_name });
    Inferior.pop_frame t.inf;
    result
  in
  (* fire Enter after the parameters are stored, so entry-breakpoint
     conditions can read them; inside the handler so an aborting hook
     still unwinds this frame *)
  match
    fire t (Enter { func = f.Mast.f_name });
    exec t f.Mast.f_name f.Mast.f_body
  with
  | () -> finish (Dbgi.Cint (Ctype.int, 0L))
  | exception Return_exc None -> finish (Dbgi.Cint (Ctype.int, 0L))
  | exception Return_exc (Some v) ->
      let ret = resolve t f.Mast.f_ret in
      let v =
        match ret with
        | Ctype.Void -> Dbgi.Cint (Ctype.int, 0L)
        | _ -> Value.to_cval dbg (Value.convert dbg ret v)
      in
      finish v
  | exception e ->
      fire t (Leave { func = f.Mast.f_name });
      Inferior.pop_frame t.inf;
      raise e

(* --- loading ------------------------------------------------------------- *)

let declare_struct t (sd : Mast.struct_def) =
  let tenv = Inferior.tenv t.inf in
  let comp = Tenv.declare_struct tenv sd.Mast.sd_tag in
  if comp.Ctype.comp_fields <> None then
    raise (Runtime_error ("struct " ^ sd.Mast.sd_tag ^ " redefined"));
  let field (name, te, width) =
    let ft = resolve t te in
    match width with
    | None -> Ctype.field name ft
    | Some w -> Ctype.bitfield name ft w
  in
  Ctype.define_fields comp (List.map field sd.Mast.sd_fields)

let declare_global t (g : Mast.global) =
  let gt = resolve t g.Mast.g_type in
  ignore (Inferior.define_global t.inf g.Mast.g_name gt);
  match g.Mast.g_init with
  | None -> ()
  | Some e ->
      let lhs = Env.lookup t.env g.Mast.g_name in
      ignore (Value.store t.env.Env.dbg ~into:lhs (eval1 t e))

let register_function t (f : Mast.func) =
  if Hashtbl.mem t.funcs f.Mast.f_name then
    raise (Runtime_error ("function " ^ f.Mast.f_name ^ " redefined"));
  Hashtbl.replace t.funcs f.Mast.f_name f;
  let ftype =
    (* resolved lazily where possible, but the registry needs a C type *)
    Ctype.func (resolve t f.Mast.f_ret)
      (List.map (fun (_, te) -> Ctype.decay (resolve t te)) f.Mast.f_params)
  in
  Inferior.register_func t.inf f.Mast.f_name ftype (fun _inf args ->
      run_function t f args)

let load inf src =
  let program = Mparse.parse ~abi:(Inferior.abi inf) src in
  let t =
    {
      inf;
      (* the interpreter IS the target: its stores must hit memory
         immediately (write-through), not sit in a debugger-side cache *)
      env = Env.create (Duel_target.Backend.direct ~cache:false inf);
      funcs = Hashtbl.create 8;
      lowered = Acache.create 64;
      hook = None;
      step_limit = 10_000_000;
      steps = 0;
    }
  in
  (* two passes: types first (so globals and prototypes can use them) *)
  List.iter
    (function Mast.Tstruct sd -> declare_struct t sd | Mast.Tglobal _ | Mast.Tfunc _ -> ())
    program;
  List.iter
    (function
      | Mast.Tstruct _ -> ()
      | Mast.Tglobal g -> declare_global t g
      | Mast.Tfunc f -> register_function t f)
    program;
  t

let call t name args =
  t.steps <- 0;
  match Hashtbl.find_opt t.funcs name with
  | Some f -> run_function t f args
  | None -> raise (Runtime_error ("no mini-C function named " ^ name))

let call_int t name args =
  let cargs = List.map (fun v -> Dbgi.Cint (Ctype.int, Int64.of_int v)) args in
  match call t name cargs with
  | Dbgi.Cint (_, v) -> v
  | Dbgi.Cfloat (_, f) -> Int64.of_float f
