module Ctype = Duel_ctype.Ctype
module Layout = Duel_ctype.Layout
module Tenv = Duel_ctype.Tenv
module Dbgi = Duel_dbgi.Dbgi

let read_scalar = Dbgi.read_scalar

let read_int_at dbg typ addr =
  let abi = dbg.Dbgi.abi in
  match Ctype.integer_kind typ with
  | Some k ->
      read_scalar dbg ~addr ~size:(Ctype.ikind_size abi k)
        ~signed:(Ctype.ikind_signed abi k)
  | None -> failwith "read_int_at: not an integer type"

let read_ptr_at dbg addr =
  Int64.to_int
    (read_scalar dbg ~addr ~size:dbg.Dbgi.abi.Duel_ctype.Abi.ptr_size
       ~signed:false)

let global dbg name =
  match dbg.Dbgi.find_variable name with
  | Some info -> info
  | None -> failwith ("cquery: no global named " ^ name)

let field_offset dbg comp name =
  match Layout.find_field dbg.Dbgi.abi comp name with
  | Some fi -> fi.Layout.fi_offset
  | None -> failwith ("cquery: no field named " ^ name)

let comp_of dbg tag =
  match Tenv.find_struct dbg.Dbgi.tenv tag with
  | Some c -> c
  | None -> failwith ("cquery: no struct named " ^ tag)

let int_array dbg name =
  let info = global dbg name in
  match info.Dbgi.v_type with
  | Ctype.Array (Ctype.Integer _, _) -> info.Dbgi.v_addr
  | _ -> failwith ("cquery: " ^ name ^ " is not an int array")

let array_search dbg ~name ~ranges ~lo ~hi =
  let base = int_array dbg name in
  let isz = dbg.Dbgi.abi.Duel_ctype.Abi.int_size in
  let out = ref [] in
  List.iter
    (fun (a, b) ->
      for i = a to b do
        let v = read_scalar dbg ~addr:(base + (i * isz)) ~size:isz ~signed:true in
        if Int64.compare v lo > 0 && Int64.compare v hi < 0 then
          out := (i, v) :: !out
      done)
    ranges;
  List.rev !out

let array_positives dbg ~name ~n =
  array_search dbg ~name ~ranges:[ (0, n - 1) ] ~lo:0L ~hi:Int64.max_int

let hash_high_scopes dbg ~threshold =
  let info = global dbg "hash" in
  let comp = comp_of dbg "symbol" in
  let scope_off = field_offset dbg comp "scope" in
  let psz = dbg.Dbgi.abi.Duel_ctype.Abi.ptr_size in
  let out = ref [] in
  for b = 0 to 1023 do
    let head = read_ptr_at dbg (info.Dbgi.v_addr + (b * psz)) in
    if head <> 0 then begin
      let scope = read_int_at dbg Ctype.int (head + scope_off) in
      if Int64.compare scope threshold > 0 then out := (b, scope) :: !out
    end
  done;
  List.rev !out

let list_nodes dbg name =
  let info = global dbg name in
  let comp = comp_of dbg "node" in
  let next_off = field_offset dbg comp "next" in
  let rec walk addr acc =
    if addr = 0 then List.rev acc
    else walk (read_ptr_at dbg (addr + next_off)) (addr :: acc)
  in
  walk (read_ptr_at dbg info.Dbgi.v_addr) []

let list_duplicates dbg ~name =
  let comp = comp_of dbg "node" in
  let value_off = field_offset dbg comp "value" in
  let nodes = Array.of_list (list_nodes dbg name) in
  let value i = read_int_at dbg Ctype.int (nodes.(i) + value_off) in
  let out = ref [] in
  for i = 0 to Array.length nodes - 1 do
    for j = i + 1 to Array.length nodes - 1 do
      if Int64.equal (value i) (value j) then out := (i, j, value i) :: !out
    done
  done;
  List.rev !out

let tree_keys_preorder dbg ~name =
  let info = global dbg name in
  let comp = comp_of dbg "tnode" in
  let key_off = field_offset dbg comp "key" in
  let left_off = field_offset dbg comp "left" in
  let right_off = field_offset dbg comp "right" in
  let rec walk addr acc =
    if addr = 0 then acc
    else
      let acc = read_int_at dbg Ctype.int (addr + key_off) :: acc in
      let acc = walk (read_ptr_at dbg (addr + left_off)) acc in
      walk (read_ptr_at dbg (addr + right_off)) acc
  in
  List.rev (walk (read_ptr_at dbg info.Dbgi.v_addr) [])

let tree_count dbg ~name = List.length (tree_keys_preorder dbg ~name)

let sort_violations dbg =
  let info = global dbg "hash" in
  let comp = comp_of dbg "symbol" in
  let scope_off = field_offset dbg comp "scope" in
  let next_off = field_offset dbg comp "next" in
  let psz = dbg.Dbgi.abi.Duel_ctype.Abi.ptr_size in
  let out = ref [] in
  for b = 0 to 1023 do
    let rec walk addr depth =
      if addr <> 0 then begin
        let next = read_ptr_at dbg (addr + next_off) in
        if next <> 0 then begin
          let scope = read_int_at dbg Ctype.int (addr + scope_off) in
          let next_scope = read_int_at dbg Ctype.int (next + scope_off) in
          if Int64.compare scope next_scope < 0 then
            out := (b, depth, scope) :: !out
        end;
        walk next (depth + 1)
      end
    in
    walk (read_ptr_at dbg (info.Dbgi.v_addr + (b * psz))) 0
  done;
  List.rev !out
