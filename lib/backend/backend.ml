module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache
module Prefetch = Duel_dbgi.Prefetch
module Dispatcher = Duel_dbgi.Dispatcher
module Inferior = Duel_target.Inferior
module Memory = Duel_mem.Memory
module Scenarios = Duel_scenarios.Scenarios
module Chaos = Duel_chaos.Chaos
module Mangler = Duel_chaos.Mangler
module Proxy = Duel_chaos.Proxy

type base =
  | Direct of string
  | Rsp of string
  | Serve_loop of string
  | Dead of string
  | Tcp of string * int * string
  | Unix_sock of string * string

type deco =
  | Cache
  | Prefetch
  | Chaos of { seed : int; profile : string }
  | Flaky of { seed : int; profile : string }
  | Mangle of { seed : int; profile : string; rate : float }
  | Stall of { seed : int; ms : float; rate : float }

type hedge_spec = Hedge_off | Hedge_ms of float | Hedge_percentile of int

type dpolicy = {
  d_hedge : hedge_spec;
  d_timeout_ms : float;
  d_trip : int;
  d_probe_ms : float;
  d_alpha : float;
}

let default_dpolicy =
  {
    d_hedge = Hedge_off;
    d_timeout_ms = 2000.;
    d_trip = 3;
    d_probe_ms = 50.;
    d_alpha = 0.2;
  }

type spec = Atom of base * deco list | Dispatch of spec list * dpolicy

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* ------------------------------------------------------------------ *)
(* Printing (canonical: every policy field spelled out, floats via %g) *)

let fg = Printf.sprintf "%g"

let print_base = function
  | Direct s -> "direct:" ^ s
  | Rsp s -> "rsp:" ^ s
  | Serve_loop s -> "serve:" ^ s
  | Dead s -> "dead:" ^ s
  | Tcp (h, p, s) -> Printf.sprintf "tcp://%s:%d#%s" h p s
  | Unix_sock (p, s) -> Printf.sprintf "unix:%s#%s" p s

let print_deco = function
  | Cache -> "cache"
  | Prefetch -> "prefetch"
  | Chaos { seed; profile } ->
      Printf.sprintf "chaos(seed=%d,profile=%s)" seed profile
  | Flaky { seed; profile } ->
      Printf.sprintf "flaky(seed=%d,profile=%s)" seed profile
  | Mangle { seed; profile; rate } ->
      Printf.sprintf "mangle(seed=%d,profile=%s,rate=%s)" seed profile (fg rate)
  | Stall { seed; ms; rate } ->
      Printf.sprintf "stall(seed=%d,ms=%s,rate=%s)" seed (fg ms) (fg rate)

let print_hedge = function
  | Hedge_off -> "off"
  | Hedge_ms ms -> fg ms ^ "ms"
  | Hedge_percentile n -> Printf.sprintf "p%d" n

let print_policy p =
  Printf.sprintf "hedge=%s,timeout=%sms,trip=%d,probe=%sms,alpha=%s"
    (print_hedge p.d_hedge) (fg p.d_timeout_ms) p.d_trip (fg p.d_probe_ms)
    (fg p.d_alpha)

let rec print = function
  | Atom (b, ds) -> String.concat "+" (print_base b :: List.map print_deco ds)
  | Dispatch (children, pol) ->
      Printf.sprintf "dispatch(%s;%s)"
        (String.concat "," (List.map print children))
        (print_policy pol)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let split_top sep s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let depth = ref 0 in
  String.iter
    (fun c ->
      if c = '(' then (incr depth; Buffer.add_char buf c)
      else if c = ')' then (
        decr depth;
        if !depth < 0 then bad "unbalanced ')' in %S" s;
        Buffer.add_char buf c)
      else if c = sep && !depth = 0 then (
        out := Buffer.contents buf :: !out;
        Buffer.clear buf)
      else Buffer.add_char buf c)
    s;
  if !depth <> 0 then bad "unbalanced '(' in %S" s;
  List.rev (Buffer.contents buf :: !out)

(* "name(...)" where the ')' matching the first '(' is the last char *)
let whole_call s =
  let n = String.length s in
  if n = 0 || s.[n - 1] <> ')' || not (String.contains s '(') then false
  else begin
    let depth = ref 0 and closed_at = ref (-1) in
    String.iteri
      (fun i c ->
        if c = '(' then incr depth
        else if c = ')' then begin
          decr depth;
          if !depth = 0 && !closed_at < 0 then closed_at := i
        end)
      s;
    !depth = 0 && !closed_at = n - 1
  end

let strip_suffix ~suf s =
  let n = String.length s and k = String.length suf in
  if n >= k && String.sub s (n - k) k = suf then Some (String.sub s 0 (n - k))
  else None

let int_of what s =
  match int_of_string_opt (String.trim s) with
  | Some n -> n
  | None -> bad "%s: expected an integer, got %S" what s

let float_of what s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> bad "%s: expected a number, got %S" what s

let ms_of what s =
  let s = String.trim s in
  let s = match strip_suffix ~suf:"ms" s with Some b -> b | None -> s in
  float_of what s

let kvs what s =
  split_top ',' s
  |> List.filter_map (fun item ->
         let item = String.trim item in
         if item = "" then None
         else
           match String.index_opt item '=' with
           | None -> bad "%s: expected key=value, got %S" what item
           | Some i ->
               Some
                 ( String.trim (String.sub item 0 i),
                   String.trim
                     (String.sub item (i + 1) (String.length item - i - 1)) ))

let check_keys what allowed kv =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        bad "%s: unknown key %S (want %s)" what k (String.concat ", " allowed))
    kv

let parse_deco s =
  let s = String.trim s in
  let args_of name =
    let pre = name ^ "(" in
    if String.starts_with ~prefix:pre s && whole_call s then
      Some
        (kvs name
           (String.sub s (String.length pre)
              (String.length s - String.length pre - 1)))
    else None
  in
  let get k d kv = match List.assoc_opt k kv with Some v -> v | None -> d in
  if s = "cache" then Cache
  else if s = "prefetch" then Prefetch
  else
    match args_of "chaos" with
    | Some kv ->
        check_keys "chaos" [ "seed"; "profile" ] kv;
        Chaos
          {
            seed = int_of "chaos seed" (get "seed" "0" kv);
            profile = get "profile" "mild" kv;
          }
    | None -> (
        match args_of "flaky" with
        | Some kv ->
            check_keys "flaky" [ "seed"; "profile" ] kv;
            Flaky
              {
                seed = int_of "flaky seed" (get "seed" "0" kv);
                profile = get "profile" "mild" kv;
              }
        | None -> (
            match args_of "mangle" with
            | Some kv ->
                check_keys "mangle" [ "seed"; "profile"; "rate" ] kv;
                let profile = get "profile" "corrupt" kv in
                let default_rate =
                  match profile with "checksum" -> 0.3 | _ -> 0.01
                in
                Mangle
                  {
                    seed = int_of "mangle seed" (get "seed" "0" kv);
                    profile;
                    rate =
                      float_of "mangle rate" (get "rate" (fg default_rate) kv);
                  }
            | None -> (
                match args_of "stall" with
                | Some kv ->
                    check_keys "stall" [ "seed"; "ms"; "rate" ] kv;
                    Stall
                      {
                        seed = int_of "stall seed" (get "seed" "0" kv);
                        ms = ms_of "stall ms" (get "ms" "20" kv);
                        rate = float_of "stall rate" (get "rate" "0.05" kv);
                      }
                | None ->
                    bad
                      "unknown decorator %S (want cache, chaos(...), \
                       flaky(...), mangle(...), stall(...))"
                      s)))

let parse_base s =
  let s = String.trim s in
  let frag rest =
    match String.index_opt rest '#' with
    | None -> (rest, "all")
    | Some i ->
        let scen = String.sub rest (i + 1) (String.length rest - i - 1) in
        (String.sub rest 0 i, if scen = "" then "all" else scen)
  in
  if String.starts_with ~prefix:"tcp://" s then begin
    let rest = String.sub s 6 (String.length s - 6) in
    let addr, scen = frag rest in
    match String.rindex_opt addr ':' with
    | None -> bad "tcp spec %S: expected tcp://host:port" s
    | Some i ->
        let host = String.sub addr 0 i in
        let port =
          int_of "tcp port" (String.sub addr (i + 1) (String.length addr - i - 1))
        in
        Tcp (host, port, scen)
  end
  else if String.starts_with ~prefix:"unix:" s then begin
    let rest = String.sub s 5 (String.length s - 5) in
    let path, scen = frag rest in
    if path = "" then bad "unix spec %S: empty socket path" s;
    Unix_sock (path, scen)
  end
  else
    let scheme, scen =
      match String.index_opt s ':' with
      | None -> (s, "all")
      | Some i ->
          let scen = String.sub s (i + 1) (String.length s - i - 1) in
          (String.sub s 0 i, if scen = "" then "all" else scen)
    in
    match scheme with
    | "direct" -> Direct scen
    | "rsp" -> Rsp scen
    | "serve" -> Serve_loop scen
    | "dead" -> Dead scen
    | _ ->
        bad "unknown backend scheme in %S (want direct:, rsp:, serve:, dead:, \
             tcp://, unix:, dispatch(...))"
          s

let parse_hedge v =
  if v = "off" then Hedge_off
  else if String.length v > 1 && v.[0] = 'p'
          && String.for_all (fun c -> c >= '0' && c <= '9')
               (String.sub v 1 (String.length v - 1))
  then begin
    let n = int_of "hedge percentile" (String.sub v 1 (String.length v - 1)) in
    if n < 1 || n > 99 then bad "hedge percentile p%d out of range 1..99" n;
    Hedge_percentile n
  end
  else Hedge_ms (ms_of "hedge delay" v)

let parse_policy s =
  let kv = kvs "dispatch policy" s in
  check_keys "dispatch policy" [ "hedge"; "timeout"; "trip"; "probe"; "alpha" ]
    kv;
  List.fold_left
    (fun p (k, v) ->
      match k with
      | "hedge" -> { p with d_hedge = parse_hedge v }
      | "timeout" -> { p with d_timeout_ms = ms_of "timeout" v }
      | "trip" -> { p with d_trip = int_of "trip" v }
      | "probe" -> { p with d_probe_ms = ms_of "probe" v }
      | "alpha" -> { p with d_alpha = float_of "alpha" v }
      | _ -> assert false)
    default_dpolicy kv

let rec parse_spec s =
  let s = String.trim s in
  if String.starts_with ~prefix:"dispatch(" s && whole_call s then begin
    let inner = String.sub s 9 (String.length s - 10) in
    let specs_part, pol =
      match split_top ';' inner with
      | [ sp ] -> (sp, default_dpolicy)
      | [ sp; pol ] -> (sp, parse_policy pol)
      | _ -> bad "dispatch spec %S: at most one ';policy' section" s
    in
    let children =
      split_top ',' specs_part
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
      |> List.map parse_spec
    in
    if children = [] then bad "dispatch spec %S needs at least one replica" s;
    Dispatch (children, pol)
  end
  else
    match
      split_top '+' s |> List.map String.trim |> List.filter (fun x -> x <> "")
    with
    | [] -> bad "empty backend spec"
    | b :: ds -> Atom (parse_base b, List.map parse_deco ds)

let parse s = match parse_spec s with v -> Ok v | exception Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Building *)

(* The scenario grammar lives with the fleet (the other consumer of
   named debuggees); specs and fleet slots accept the same names. *)
let inferior_of_scenario name =
  match Duel_fleet.Fleet.scenario_of_name name with
  | Ok inf -> inf
  | Error m -> bad "%s" m

let scenario_of_name = Duel_fleet.Fleet.scenario_of_name

let transport_fault = function
  | Dbgi.Target_transient _ -> true
  | Unix.Unix_error _ -> true
  | Duel_serve.Client.Error f -> Duel_serve.Client.is_transport f
  | _ -> false

let chaos_profile_of_name name =
  let base, nocall =
    match strip_suffix ~suf:"-nocall" name with
    | Some b -> (b, true)
    | None -> (name, false)
  in
  match Chaos.profile_of_string base with
  | Ok p -> if nocall then { p with Chaos.call_transient = 0. } else p
  | Error m -> bad "chaos profile: %s" m

let mangler_profile_of_name name rate =
  match name with
  | "off" -> Mangler.off
  | "checksum" -> Mangler.checksum_only ~rate
  | "corrupt" -> Mangler.corrupting ~rate
  | "wire" -> Mangler.wire ~rate
  | _ -> bad "unknown mangle profile %S (want off, checksum, corrupt, wire)" name

(* The in-process serve loop is pumped cooperatively; waiting the network
   client's default 2 s per reply would make injected faults glacial. *)
let loop_retry =
  {
    Duel_serve.Client.attempts = 10;
    reply_timeout = 0.25;
    base_backoff = 0.001;
    max_backoff = 0.01;
    jitter = 0.5;
  }

type built = {
  b_dbg : Dbgi.t;
  b_inf : Inferior.t;
  b_spec : spec;
  b_rigs : (string * Chaos.rig) list;
  b_dispatchers : (string * Dispatcher.t) list;
  b_packets : int ref;
  b_close : unit -> unit;
}

type ctx = {
  make_inf : string -> Inferior.t;
  pump : (unit -> unit) option;
  serve_config : Duel_serve.Server.config option;
  retry : Duel_serve.Client.retry_policy option;
  mutable rigs : (string * Chaos.rig) list;
  mutable dispatchers : (string * Dispatcher.t) list;
  packets : int ref;
  mutable closers : (unit -> unit) list;
}

let cache_wrap inf dbg =
  Dcache.wrap
    ~config:
      {
        Dcache.default_config with
        Dcache.stale_policy =
          Dcache.Probe (fun () -> Memory.generation (Inferior.mem inf));
      }
    dbg

(* Local debug information, dead live target: every wire-class operation
   is a transient fault, so a dispatcher trips this replica while the
   zero-length convention and static queries still hold. *)
let dead_of inf =
  let raw = Duel_target.Backend.direct ~cache:false inf in
  let down ~addr ~len = raise (Dbgi.Target_transient { addr; len }) in
  {
    raw with
    Dbgi.get_bytes =
      (fun ~addr ~len -> if len = 0 then Bytes.create 0 else down ~addr ~len);
    put_bytes =
      (fun ~addr data ->
        if Bytes.length data = 0 then ()
        else down ~addr ~len:(Bytes.length data));
    alloc_space = (fun size -> down ~addr:0 ~len:size);
    call_func = (fun _ _ -> down ~addr:0 ~len:0);
    frames = (fun () -> down ~addr:0 ~len:0);
    caps = Dbgi.basic_caps ~transport:Dbgi.Synthetic "dead";
  }

let build_atom ctx base decos =
  let label = print (Atom (base, decos)) in
  let has_cache = List.mem Cache decos in
  let has_prefetch = List.mem Prefetch decos in
  let mangle =
    List.find_map
      (function
        | Mangle { seed; profile; rate } -> Some (seed, profile, rate)
        | _ -> None)
      decos
  in
  (match (mangle, base) with
  | Some _, (Direct _ | Dead _ | Tcp _ | Unix_sock _) ->
      bad "mangle is only valid on rsp:/serve: bases (%s)" label
  | _ -> ());
  let net_connect addr scen =
    let inf = ctx.make_inf scen in
    let cl = Duel_serve.Client.connect ?pump:ctx.pump ?retry:ctx.retry addr in
    ctx.closers <-
      (fun () -> try Duel_serve.Client.close cl with _ -> ()) :: ctx.closers;
    let dbg =
      Duel_serve.Client.dbgi
        ~cache:(has_cache || has_prefetch)
        ~prefetch:has_prefetch cl
        (Duel_rsp.Client.debug_info_of_inferior inf)
    in
    (inf, dbg, true, None)
  in
  (* (inferior, base dbgi, cache-already-applied, wire mangler stats) *)
  let inf, dbg0, net_cache_applied, wire_stats =
    match base with
    | Direct scen ->
        let inf = ctx.make_inf scen in
        (inf, Duel_target.Backend.direct ~cache:false inf, false, None)
    | Dead scen ->
        let inf = ctx.make_inf scen in
        (inf, dead_of inf, false, None)
    | Rsp scen ->
        let inf = ctx.make_inf scen in
        let srv = Duel_rsp.Server.create inf in
        let handle, wire =
          match mangle with
          | None -> (Duel_rsp.Server.handle srv, None)
          | Some (seed, profile, rate) ->
              let m = Mangler.create ~seed (mangler_profile_of_name profile rate) in
              ( Chaos.mangled_exchange m (Duel_rsp.Server.handle srv),
                Some (Mangler.stats m) )
        in
        let packets = ctx.packets in
        let exchange frame = incr packets; handle frame in
        ( inf,
          Duel_rsp.Client.connect ~exchange
            (Duel_rsp.Client.debug_info_of_inferior inf),
          false,
          wire )
    | Serve_loop scen ->
        let inf = ctx.make_inf scen in
        let srv = Duel_serve.Server.create ?config:ctx.serve_config inf in
        let retry = Option.value ctx.retry ~default:loop_retry in
        let cl, wire =
          match mangle with
          | None ->
              let client_end, server_end =
                Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
              in
              Duel_serve.Server.inject srv server_end;
              ( Duel_serve.Client.of_fd
                  ~pump:(fun () -> ignore (Duel_serve.Server.step srv 0.01))
                  ~retry client_end,
                None )
          | Some (seed, profile, rate) ->
              let prof = mangler_profile_of_name profile rate in
              let up = Mangler.create ~seed prof in
              let down = Mangler.create ~seed:(seed + 1) prof in
              let proxy, client_end, server_end = Proxy.between ~up ~down () in
              Duel_serve.Server.inject srv server_end;
              ctx.closers <-
                (fun () -> try Proxy.close proxy with _ -> ()) :: ctx.closers;
              let pump () =
                ignore (Duel_serve.Server.step srv 0.005);
                ignore (Proxy.step proxy 0.005)
              in
              ( Duel_serve.Client.of_fd ~pump ~retry client_end,
                Some (Mangler.stats up) )
        in
        ctx.closers <-
          (fun () -> try Duel_serve.Client.close cl with _ -> ())
          :: ctx.closers;
        let dbg =
          Duel_serve.Client.dbgi
        ~cache:(has_cache || has_prefetch)
        ~prefetch:has_prefetch cl
            (Duel_rsp.Client.debug_info_of_inferior inf)
        in
        (inf, dbg, true, wire)
    | Tcp (host, port, scen) ->
        net_connect (host ^ ":" ^ string_of_int port) scen
    | Unix_sock (path, scen) -> net_connect ("unix:" ^ path) scen
  in
  let dbg =
    List.fold_left
      (fun dbg deco ->
        match deco with
        | Cache ->
            (* flush buffered writes while the transport underneath is
               still alive: the dcache registry outlives this stack, and
               a later [Dcache.flush_all] barrier must not find dirty
               lines behind a closed connection *)
            let cached = if net_cache_applied then dbg else cache_wrap inf dbg in
            ctx.closers <-
              (fun () -> try Dcache.flush cached with _ -> ()) :: ctx.closers;
            cached
        | Prefetch ->
            (* speculation needs a cache to insert into, so +prefetch
               implies one; for network bases both were already applied
               inside the client above *)
            let cached =
              if Dcache.is_cached dbg || net_cache_applied then dbg
              else cache_wrap inf dbg
            in
            (* same close-time flush as +cache: buffered writes must
               leave while the transport underneath is still alive *)
            ctx.closers <-
              (fun () -> try Dcache.flush cached with _ -> ()) :: ctx.closers;
            ignore (Prefetch.attach cached);
            cached
        | Mangle _ -> dbg (* applied at the base *)
        | Stall { seed; ms; rate } ->
            let prof =
              { Chaos.off with Chaos.delay = rate; delay_s = ms /. 1000. }
            in
            Chaos.wrap_dbgi (Chaos.plan ~seed prof) dbg
        | Flaky { seed; profile } ->
            let plan = Chaos.plan ~seed (chaos_profile_of_name profile) in
            let dbg = Chaos.wrap_dbgi plan dbg in
            ctx.rigs <-
              ( label,
                {
                  Chaos.dbg;
                  label;
                  plan_ = plan;
                  retry = Chaos.retry_stats_zero ();
                  wire = wire_stats;
                } )
              :: ctx.rigs;
            dbg
        | Chaos { seed; profile } ->
            let plan = Chaos.plan ~seed (chaos_profile_of_name profile) in
            let dbg = Chaos.wrap_dbgi plan dbg in
            let rstats = Chaos.retry_stats_zero () in
            let dbg = Chaos.resilient ~stats:rstats ~seed dbg in
            ctx.rigs <-
              ( label,
                {
                  Chaos.dbg;
                  label;
                  plan_ = plan;
                  retry = rstats;
                  wire = wire_stats;
                } )
              :: ctx.rigs;
            dbg)
      dbg0 decos
  in
  (inf, dbg)

let rec build_spec ctx = function
  | Atom (b, ds) -> build_atom ctx b ds
  | Dispatch (children, pol) as spec ->
      let built_children =
        List.map (fun c -> (print c, build_spec ctx c)) children
      in
      let labels = List.map fst built_children in
      let reps = List.map (fun (_, (_, dbg)) -> dbg) built_children in
      let primary_inf =
        match built_children with
        | (_, (inf, _)) :: _ -> inf
        | [] -> bad "dispatch spec needs at least one replica"
      in
      let policy =
        {
          Dispatcher.default_policy with
          Dispatcher.op_timeout = pol.d_timeout_ms /. 1000.;
          hedge =
            (match pol.d_hedge with
            | Hedge_off -> Dispatcher.Hedge_off
            | Hedge_ms ms -> Dispatcher.Hedge_after (ms /. 1000.)
            | Hedge_percentile n ->
                Dispatcher.Hedge_percentile (float_of_int n /. 100.));
          trip_after = pol.d_trip;
          half_open_after = pol.d_probe_ms /. 1000.;
          ewma_alpha = pol.d_alpha;
          is_transport_fault = transport_fault;
        }
      in
      let d = Dispatcher.create ~policy ~labels reps in
      ctx.dispatchers <- (print spec, d) :: ctx.dispatchers;
      (primary_inf, Dispatcher.dbgi d)

let build ?make_inf ?pump ?serve_config ?retry spec =
  let make_inf =
    match make_inf with Some f -> f | None -> inferior_of_scenario
  in
  let ctx =
    {
      make_inf;
      pump;
      serve_config;
      retry;
      rigs = [];
      dispatchers = [];
      packets = ref 0;
      closers = [];
    }
  in
  let close_all () =
    List.iter (fun f -> try f () with _ -> ()) ctx.closers
  in
  match build_spec ctx spec with
  | inf, dbg ->
      let closed = ref false in
      let b_close () = if not !closed then (closed := true; close_all ()) in
      Ok
        {
          b_dbg = dbg;
          b_inf = inf;
          b_spec = spec;
          b_rigs = List.rev ctx.rigs;
          b_dispatchers = List.rev ctx.dispatchers;
          b_packets = ctx.packets;
          b_close;
        }
  | exception Bad m ->
      close_all ();
      Error m
  | exception Duel_serve.Client.Error f ->
      close_all ();
      Error
        (Printf.sprintf "building %s: %s" (print spec)
           (Duel_serve.Client.failure_message f))

let of_string ?make_inf ?pump ?serve_config ?retry s =
  match parse s with
  | Error m -> Error m
  | Ok spec -> build ?make_inf ?pump ?serve_config ?retry spec

let of_spec s =
  match of_string s with
  | Ok b -> b.b_dbg
  | Error m -> invalid_arg (Printf.sprintf "Backend.of_spec %S: %s" s m)

let describe b =
  let caps = b.b_dbg.Dbgi.caps in
  let h = b.b_dbg.Dbgi.health () in
  let out = ref [] in
  let add l = out := l :: !out in
  add ("spec:   " ^ print b.b_spec);
  add ("caps:   " ^ Dbgi.caps_line caps);
  add ("health: " ^ Dbgi.health_line h);
  List.iter
    (fun (label, d) ->
      add ("dispatcher " ^ label ^ ":");
      List.iter (fun l -> add ("  " ^ l)) (Dispatcher.report d))
    b.b_dispatchers;
  List.iter
    (fun (label, rig) ->
      add ("chaos rig " ^ label ^ ":");
      List.iter (fun l -> add ("  " ^ l)) (Chaos.rig_report rig))
    b.b_rigs;
  if !(b.b_packets) > 0 then
    add (Printf.sprintf "rsp packets exchanged: %d" !(b.b_packets));
  List.rev !out
