(** One spec string names one fully wired backend stack.

    Every place that used to hand-assemble a [Dbgi.t] — the CLI, the
    conformance battery, the bench driver — goes through {!of_spec}
    instead, so a backend configuration is a {e value} that can be
    printed, generated, round-tripped and listed in a test matrix.

    {2 Grammar}

    {v
    spec  ::= atom | "dispatch(" spec ("," spec)* [";" policy] ")"
    atom  ::= base ("+" deco)*
    base  ::= "direct:" scenario          in-process, raw memory access
            | "rsp:" scenario             in-process RSP loopback
            | "serve:" scenario           in-process serve server + client
            | "dead:" scenario            local debug info, every live
                                          operation a transient fault
            | "tcp://" host ":" port ["#" scenario]
            | "unix:" path ["#" scenario]
    deco  ::= "cache"                     data cache (dcache) layer
            | "prefetch"                  speculative read-ahead into the
                                          dcache (implies cache)
            | "chaos(seed=N,profile=P)"   fault injection + retry layer
            | "flaky(seed=N,profile=P)"   fault injection, no retries
            | "mangle(seed=N,profile=P,rate=R)"
                                          byte mangling on the wire
                                          (rsp / serve bases only)
            | "stall(seed=N,ms=M,rate=R)" injected latency only
    policy ::= kv ("," kv)*               hedge=off|pNN|Xms, timeout=Xms,
                                          trip=N, probe=Xms, alpha=F
    scenario ::= "all" | "symtab" | "faulty" | "big:N"
               | "deep_list:N" | "deep_tree:N"
               | "deep_list_buggy:N" | "deep_list_swapped:N"
               | "deep_tree_buggy:N"
    v}

    The scenario names a synthetic debuggee from [Duel_scenarios]
    (resolution shared with {!Duel_fleet.Fleet.scenario_of_name}, so
    backend specs and fleet slots accept the same names); for
    the network bases it names the {e local twin} whose debug info
    (symbols, types) is used while memory goes over the wire, exactly as
    the serve client documents.  Chaos profiles accept a ["-nocall"]
    suffix ([mild-nocall]) zeroing the call-fault rate, for batteries
    whose call sites sit outside the retry layer.

    {!print} is canonical (all policy fields spelled out, floats via
    [%g]); [parse (print s) = Ok s] for every value this module can
    build, which the property suite pins down. *)

type base =
  | Direct of string
  | Rsp of string
  | Serve_loop of string
  | Dead of string
  | Tcp of string * int * string  (** host, port, scenario *)
  | Unix_sock of string * string  (** path, scenario *)

type deco =
  | Cache
  | Prefetch
  | Chaos of { seed : int; profile : string }
  | Flaky of { seed : int; profile : string }
  | Mangle of { seed : int; profile : string; rate : float }
  | Stall of { seed : int; ms : float; rate : float }

(** The spec-level mirror of {!Duel_dbgi.Dispatcher.hedge} (milliseconds
    and integer percentiles, the units humans type). *)
type hedge_spec = Hedge_off | Hedge_ms of float | Hedge_percentile of int

type dpolicy = {
  d_hedge : hedge_spec;
  d_timeout_ms : float;
  d_trip : int;
  d_probe_ms : float;
  d_alpha : float;
}

val default_dpolicy : dpolicy
(** Mirrors {!Duel_dbgi.Dispatcher.default_policy}: hedging off, 2000 ms
    timeout, trip after 3, 50 ms probe window, alpha 0.2. *)

type spec = Atom of base * deco list | Dispatch of spec list * dpolicy

val parse : string -> (spec, string) result
val print : spec -> string

val scenario_of_name : string -> (Duel_target.Inferior.t, string) result
(** A fresh inferior for a scenario name from the grammar above. *)

val transport_fault : exn -> bool
(** The dispatcher fault predicate for spec-built replicas: the default
    ([Target_transient], [Unix_error]) plus the serve client's typed
    transport failures ({!Duel_serve.Client.is_transport}). *)

(** Everything {!build} wired up, kept so the CLI and the bench driver
    can report on (and tear down) the stack they got. *)
type built = {
  b_dbg : Duel_dbgi.Dbgi.t;
  b_inf : Duel_target.Inferior.t;
      (** the first (primary) inferior — the one whose [take_output] the
          REPL drains and whose memory tests poke *)
  b_spec : spec;
  b_rigs : (string * Duel_chaos.Chaos.rig) list;
      (** one per [chaos]/[flaky] decorator, for [info chaos] *)
  b_dispatchers : (string * Duel_dbgi.Dispatcher.t) list;
  b_packets : int ref;  (** RSP exchanges through in-process loopbacks *)
  b_close : unit -> unit;  (** close clients, proxies, servers; idempotent *)
}

val build :
  ?make_inf:(string -> Duel_target.Inferior.t) ->
  ?pump:(unit -> unit) ->
  ?serve_config:Duel_serve.Server.config ->
  ?retry:Duel_serve.Client.retry_policy ->
  spec ->
  (built, string) result
(** [make_inf] overrides scenario resolution (tests share one inferior
    with the oracle; later calls must return fresh twins).  [pump] is
    handed to network clients dialling out ([tcp://], [unix:]) whose
    server lives in this process.  [serve_config]/[retry] tune the
    in-process [serve:] stack. *)

val of_string :
  ?make_inf:(string -> Duel_target.Inferior.t) ->
  ?pump:(unit -> unit) ->
  ?serve_config:Duel_serve.Server.config ->
  ?retry:Duel_serve.Client.retry_policy ->
  string ->
  (built, string) result
(** [parse] then [build]. *)

val of_spec : string -> Duel_dbgi.Dbgi.t
(** The one-call form of the ISSUE's API: spec string in, backend out.
    @raise Invalid_argument on a malformed or unbuildable spec. *)

val describe : built -> string list
(** The [info backend] report: the resolved spec tree, per-layer caps,
    live health, dispatcher routing state. *)
