(** Synthetic debuggees reproducing the data structures of the paper's
    example transcripts.

    Each builder returns a fresh simulated inferior whose globals, types,
    and heap object graphs are laid out exactly as a compiled C program's
    would be.  The paper's transcripts come from several different debug
    sessions with mutually inconsistent data (e.g. [x[3]] is [7] in one
    example and [-9] in another); where they conflict we keep the
    symbol-table examples on [x] and move the out-of-range example to [w]
    (see EXPERIMENTS.md).

    Inventory of [all ()] (the kitchen-sink debuggee used by the REPL,
    examples, and most tests):

    {ul
    {- [struct symbol { char *name; int scope; struct symbol *next; }
        *hash[1024]] — the compiler symbol table.  Every bucket non-empty;
        scopes decrease along each chain; bucket 0 has scopes 4,3,2,1;
        bucket 1's head is ["x"] with scope 3; bucket 9's head is ["abc"]
        with scope 2; buckets 42 and 529 have heads with scopes 7 and 8
        (the only scopes above 5); bucket 287 has ten nodes with a sort
        violation 8 links in (scope 5 followed by scope 6).}
    {- [struct node { int value; struct node *next; } *L, *head] — linked
       lists: [L] has 12 nodes whose 4th and 9th (0-based) both hold 27;
       [head] holds 10,20,30,33,40,29,50 so that [[[3,5]]] selects 33 and
       29.}
    {- [struct tnode { int key; struct tnode *left, *right; } *root] — the
       binary tree (9, (3 (4) (5)), (12)).}
    {- [int x[100]] — zeros except x[3]=7, x[18]=9, x[47]=6 (the between-5
       -and-10 search), plus x[60]=12, x[77]=25 outside the searched
       ranges.}
    {- [int w[10]] — 1..10 scaled into range except w[3]=-9 and w[8]=120
       (the out-of-range scan).}
    {- [int v[8]] = 3,1,4,1,5,9,2,6 — small demo array.}
    {- [char *s = "hello, world"], [int argc = 4],
       [char *argv[5]] = "duel","-q","x[1..4]","0", NULL.}
    {- [enum color { RED, GREEN, BLUE }] and [enum color paint = GREEN].}
    {- [struct packed { unsigned lo : 3; unsigned mid : 7; int hi; } pk]
       — bit-field demo, lo=5, mid=77, hi=-1.}
    {- [double dd = 2.5], [int i0 = 0] … plain scalars.}
    {- typedef [sym_t] for [struct symbol], [len_t] for [unsigned long].}
    {- [union uval { int i; float f; char c[4]; } uv] with [i] =
       0x41424344 (type punning demo), and [int mat[3][4]] with
       [mat[i][j] = 10*i + j].}
    {- three active frames of [fib] with locals [n] = 5,4,3 and
       [acc] = 1,2,3 (for the [frame]/[frames] extension).}
    {- libc: printf, puts, putchar, strlen, strcmp, strchr, abs, atoi.}}
*)

val all : ?abi:Duel_ctype.Abi.t -> unit -> Duel_target.Inferior.t
(** The kitchen-sink debuggee described above. *)

val symtab : ?abi:Duel_ctype.Abi.t -> unit -> Duel_target.Inferior.t
(** Just the [hash] symbol table (plus libc) — benchmark workload. *)

val big_array : int -> Duel_target.Inferior.t
(** [int big[n]] with a deterministic mix of positives/negatives/zeros
    ([big[i] = (i * 37 mod 19) - 9]) — the B1 sweep workload. *)

val deep_list : int -> Duel_target.Inferior.t
(** [struct node *deep] — an [n]-node list ([deep] node [i] holds
    [3*i]); the remote-traversal benchmark workload: each [->next] hop
    is a dependent target-memory read, so an uncached backend pays one
    round-trip per hop. *)

val deep_tree : int -> Duel_target.Inferior.t
(** [struct tnode *droot] — a complete binary tree of the given depth
    with preorder keys; the pointer-fanout benchmark workload. *)

type list_bug =
  | Off_by_one  (** node [buggy_index n] holds [3*k + 1] instead of [3*k] *)
  | Swapped_link
      (** nodes [buggy_index n] and its successor traded places — the
          observable shape of a botched relink *)

val buggy_index : int -> int
(** Where the seed is planted in an [n]-node buggy list: [n / 2].  Mid-way,
    so a lazy diff must align a real prefix before reporting. *)

val deep_list_buggy : ?bug:list_bug -> int -> Duel_target.Inferior.t
(** The seeded-buggy twin of {!deep_list} (default bug: [Off_by_one]):
    identical layout and addresses, one planted divergence at
    [buggy_index n].  Built for relative debugging — evaluate the same
    traversal on both twins and diff the streams. *)

val tree_buggy_index : int -> int
(** Where the seed is planted in a depth-[d] buggy tree:
    [buggy_index (2^d - 1)], a preorder node index. *)

val deep_tree_buggy : int -> Duel_target.Inferior.t
(** The seeded-buggy twin of {!deep_tree}: the key at preorder index
    [tree_buggy_index depth] is bumped by one. *)

val faulty : unit -> Duel_target.Inferior.t
(** Fault-injection debuggee: [struct node *cyc] — a 4-node cyclic list;
    [struct node *dang] — a 3-node list whose tail [next] points into an
    unmapped page; [struct node *lone] — NULL. *)
