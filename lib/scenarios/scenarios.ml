module Ctype = Duel_ctype.Ctype
module Tenv = Duel_ctype.Tenv
module Memory = Duel_mem.Memory
module Inferior = Duel_target.Inferior
module Build = Duel_target.Build
module Stdfuncs = Duel_target.Stdfuncs

(* --- shared type definitions ------------------------------------------- *)

let symbol_comp inf =
  let tenv = Inferior.tenv inf in
  let c = Tenv.declare_struct tenv "symbol" in
  if c.Ctype.comp_fields = None then
    Ctype.define_fields c
      [
        Ctype.field "name" (Ctype.ptr Ctype.char);
        Ctype.field "scope" Ctype.int;
        Ctype.field "next" (Ctype.ptr (Ctype.Comp c));
      ];
  c

let node_comp inf =
  let tenv = Inferior.tenv inf in
  let c = Tenv.declare_struct tenv "node" in
  if c.Ctype.comp_fields = None then
    Ctype.define_fields c
      [
        Ctype.field "value" Ctype.int;
        Ctype.field "next" (Ctype.ptr (Ctype.Comp c));
      ];
  c

let tnode_comp inf =
  let tenv = Inferior.tenv inf in
  let c = Tenv.declare_struct tenv "tnode" in
  if c.Ctype.comp_fields = None then
    Ctype.define_fields c
      [
        Ctype.field "key" Ctype.int;
        Ctype.field "left" (Ctype.ptr (Ctype.Comp c));
        Ctype.field "right" (Ctype.ptr (Ctype.Comp c));
      ];
  c

(* --- builders ----------------------------------------------------------- *)

(* One symbol-table chain: names and decreasing scopes, linked through
   [next]; returns the head pointer. *)
let build_chain inf comp entries =
  let link (name, scope) tail =
    let sym = Build.alloc inf (Ctype.Comp comp) in
    Build.poke_field inf comp sym "name"
      (Int64.of_int (Build.cstring inf name));
    Build.poke_field inf comp sym "scope" (Int64.of_int scope);
    Build.poke_field inf comp sym "next" (Int64.of_int tail);
    sym
  in
  List.fold_right link entries 0

let bucket_entries b =
  if b = 0 then
    [ ("main", 4); ("argc", 3); ("argv", 2); ("exit", 1) ]
  else if b = 1 then [ ("x", 3); ("tmp1", 1) ]
  else if b = 9 then [ ("abc", 2); ("tmp9", 1) ]
  else if b = 42 then [ ("yylval", 7); ("tok42", 3); ("t42", 1) ]
  else if b = 529 then [ ("yytext", 8); ("t529", 2) ]
  else if b = 287 then
    List.init 10 (fun i ->
        (Printf.sprintf "deep%d" i, if i = 9 then 6 else 5))
  else
    let count = 1 + (b mod 3) in
    List.init count (fun i -> (Printf.sprintf "sym_%d_%d" b i, count - i))

let build_symtab inf =
  let comp = symbol_comp inf in
  let hash_t = Ctype.array (Ctype.ptr (Ctype.Comp comp)) 1024 in
  let hash = Inferior.define_global inf "hash" hash_t in
  let ptr_size = (Inferior.abi inf).Duel_ctype.Abi.ptr_size in
  for b = 0 to 1023 do
    let head = build_chain inf comp (bucket_entries b) in
    Build.poke_int inf
      (Ctype.ptr (Ctype.Comp comp))
      (hash + (b * ptr_size))
      (Int64.of_int head)
  done

let build_list inf comp values name =
  let link v tail =
    let node = Build.alloc inf (Ctype.Comp comp) in
    Build.poke_field inf comp node "value" (Int64.of_int v);
    Build.poke_field inf comp node "next" (Int64.of_int tail);
    node
  in
  let head = List.fold_right link values 0 in
  let g = Inferior.define_global inf name (Ctype.ptr (Ctype.Comp comp)) in
  Build.poke_int inf (Ctype.ptr (Ctype.Comp comp)) g (Int64.of_int head);
  head

let build_lists inf =
  let comp = node_comp inf in
  (* L: 12 nodes, duplicates 27 at indices 4 and 9 *)
  let l_values = [ 11; 13; 17; 19; 27; 31; 37; 41; 43; 27; 47; 53 ] in
  ignore (build_list inf comp l_values "L");
  ignore (build_list inf comp [ 10; 20; 30; 33; 40; 29; 50 ] "head")

type tree = Leaf | Node of int * tree * tree

let build_tree inf =
  let comp = tnode_comp inf in
  let rec build = function
    | Leaf -> 0
    | Node (key, left, right) ->
        let node = Build.alloc inf (Ctype.Comp comp) in
        Build.poke_field inf comp node "key" (Int64.of_int key);
        Build.poke_field inf comp node "left" (Int64.of_int (build left));
        Build.poke_field inf comp node "right" (Int64.of_int (build right));
        node
  in
  let shape =
    Node (9, Node (3, Node (4, Leaf, Leaf), Node (5, Leaf, Leaf)), Node (12, Leaf, Leaf))
  in
  let root = build shape in
  let g = Inferior.define_global inf "root" (Ctype.ptr (Ctype.Comp comp)) in
  Build.poke_int inf (Ctype.ptr (Ctype.Comp comp)) g (Int64.of_int root)

let poke_array_int inf base i v =
  Build.poke_int inf Ctype.int (base + (i * 4)) (Int64.of_int v)

let build_arrays inf =
  let x = Inferior.define_global inf "x" (Ctype.array Ctype.int 100) in
  poke_array_int inf x 3 7;
  poke_array_int inf x 18 9;
  poke_array_int inf x 47 6;
  poke_array_int inf x 60 12;
  poke_array_int inf x 77 25;
  let w = Inferior.define_global inf "w" (Ctype.array Ctype.int 10) in
  List.iteri
    (fun i v -> poke_array_int inf w i v)
    [ 10; 20; 30; -9; 50; 60; 70; 80; 120; 90 ];
  let v = Inferior.define_global inf "v" (Ctype.array Ctype.int 8) in
  List.iteri (fun i x -> poke_array_int inf v i x) [ 3; 1; 4; 1; 5; 9; 2; 6 ]

let build_strings inf =
  let charp = Ctype.ptr Ctype.char in
  let s = Inferior.define_global inf "s" charp in
  Build.poke_int inf charp s (Int64.of_int (Build.cstring inf "hello, world"));
  let argc = Inferior.define_global inf "argc" Ctype.int in
  Build.poke_int inf Ctype.int argc 4L;
  let args = [ "duel"; "-q"; "x[1..4]"; "0" ] in
  let argv = Inferior.define_global inf "argv" (Ctype.array charp 5) in
  let ptr_size = (Inferior.abi inf).Duel_ctype.Abi.ptr_size in
  List.iteri
    (fun i a ->
      Build.poke_int inf charp (argv + (i * ptr_size))
        (Int64.of_int (Build.cstring inf a)))
    args

let build_misc inf =
  let tenv = Inferior.tenv inf in
  let color =
    Tenv.define_enum tenv "color" [ ("RED", 0L); ("GREEN", 1L); ("BLUE", 2L) ]
  in
  let paint = Inferior.define_global inf "paint" (Ctype.Enum color) in
  Build.poke_int inf Ctype.int paint 1L;
  let packed = Tenv.declare_struct tenv "packed" in
  Ctype.define_fields packed
    [
      Ctype.bitfield "lo" Ctype.uint 3;
      Ctype.bitfield "mid" Ctype.uint 7;
      Ctype.field "hi" Ctype.int;
    ];
  let pk = Inferior.define_global inf "pk" (Ctype.Comp packed) in
  (* lo=5, mid=77 share the first unit (ABI-aware bit placement); hi=-1 *)
  let abi = Inferior.abi inf in
  Duel_mem.Codec.write_bitfield abi (Inferior.mem inf) ~addr:pk ~unit_size:4
    ~bit_off:0 ~width:3 5L;
  Duel_mem.Codec.write_bitfield abi (Inferior.mem inf) ~addr:pk ~unit_size:4
    ~bit_off:3 ~width:7 77L;
  Build.poke_int inf Ctype.int (pk + 4) (-1L);
  let dd = Inferior.define_global inf "dd" Ctype.double in
  Build.poke_float inf Ctype.double dd 2.5;
  let i0 = Inferior.define_global inf "i0" Ctype.int in
  Build.poke_int inf Ctype.int i0 0L;
  Tenv.add_typedef tenv "sym_t" (Ctype.Comp (symbol_comp inf));
  Tenv.add_typedef tenv "len_t" Ctype.ulong;
  (* union uval { int i; float f; char c[4]; } uv = { .i = 0x41424344 } *)
  let uval = Tenv.declare_union tenv "uval" in
  Ctype.define_fields uval
    [
      Ctype.field "i" Ctype.int;
      Ctype.field "f" Ctype.float;
      Ctype.field "c" (Ctype.array Ctype.char 4);
    ];
  let uv = Inferior.define_global inf "uv" (Ctype.Comp uval) in
  Build.poke_int inf Ctype.int uv 0x41424344L;
  (* int m[3][4] with m[i][j] = 10*i + j *)
  let mat =
    Inferior.define_global inf "mat"
      (Ctype.Array (Ctype.array Ctype.int 4, Some 3))
  in
  for i = 0 to 2 do
    for j = 0 to 3 do
      poke_array_int inf mat ((i * 4) + j) ((10 * i) + j)
    done
  done

let build_frames inf =
  let locals n acc = [ ("n", Ctype.int); ("acc", Ctype.int) ] |> fun ls ->
    Inferior.push_frame inf "fib" ls;
    match Inferior.frames inf with
    | fr :: _ ->
        let set name v =
          match List.assoc_opt name fr.Duel_dbgi.Dbgi.fr_locals with
          | Some info ->
              Build.poke_int inf Ctype.int info.Duel_dbgi.Dbgi.v_addr
                (Int64.of_int v)
          | None -> ()
        in
        set "n" n;
        set "acc" acc
    | [] -> ()
  in
  locals 5 1;
  locals 4 2;
  locals 3 3

let all ?abi () =
  let inf = Inferior.create ?abi () in
  Stdfuncs.register_all inf;
  build_symtab inf;
  build_lists inf;
  build_tree inf;
  build_arrays inf;
  build_strings inf;
  build_misc inf;
  build_frames inf;
  inf

let symtab ?abi () =
  let inf = Inferior.create ?abi () in
  Stdfuncs.register_all inf;
  build_symtab inf;
  inf

let big_array n =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let big = Inferior.define_global inf "big" (Ctype.array Ctype.int n) in
  for i = 0 to n - 1 do
    poke_array_int inf big i ((i * 37 mod 19) - 9)
  done;
  inf

let deep_list n =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let comp = node_comp inf in
  ignore (build_list inf comp (List.init n (fun i -> i * 3)) "deep");
  inf

let deep_tree depth =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let comp = tnode_comp inf in
  let ptr = Ctype.ptr (Ctype.Comp comp) in
  (* A complete binary tree of the given depth, keys in preorder. *)
  let next_key = ref 0 in
  let rec build d =
    if d = 0 then 0
    else begin
      let node = Build.alloc inf (Ctype.Comp comp) in
      let key = !next_key in
      incr next_key;
      Build.poke_field inf comp node "key" (Int64.of_int key);
      Build.poke_field inf comp node "left" (Int64.of_int (build (d - 1)));
      Build.poke_field inf comp node "right" (Int64.of_int (build (d - 1)));
      node
    end
  in
  let root = build depth in
  let g = Inferior.define_global inf "droot" ptr in
  Build.poke_int inf ptr g (Int64.of_int root);
  inf

(* --- seeded-buggy twins -------------------------------------------------- *)

(* The relative-debugging workload: the same structure built by a
   correct and a subtly wrong builder.  The seed is planted mid-way so a
   lazy cross-target diff has to align a real prefix before it reports,
   and the seeded index is a pure function of the size so tests and the
   bench can assert the exact divergence point. *)

type list_bug = Off_by_one | Swapped_link

let buggy_index n = n / 2

let deep_list_buggy ?(bug = Off_by_one) n =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let comp = node_comp inf in
  let k = buggy_index n in
  let values =
    match bug with
    | Off_by_one ->
        (* node k holds 3*k + 1 instead of 3*k *)
        List.init n (fun i -> if i = k then (i * 3) + 1 else i * 3)
    | Swapped_link ->
        (* nodes k and k+1 traded places, as a botched relink would
           leave them; observationally the values at k and k+1 swap *)
        List.init n (fun i ->
            if i = k && k + 1 < n then (k + 1) * 3
            else if i = k + 1 then k * 3
            else i * 3)
  in
  ignore (build_list inf comp values "deep");
  inf

let tree_buggy_index depth = buggy_index ((1 lsl depth) - 1)

let deep_tree_buggy depth =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let comp = tnode_comp inf in
  let ptr = Ctype.ptr (Ctype.Comp comp) in
  let seeded = tree_buggy_index depth in
  let next_key = ref 0 in
  let rec build d =
    if d = 0 then 0
    else begin
      let node = Build.alloc inf (Ctype.Comp comp) in
      let key = !next_key in
      incr next_key;
      let key = if key = seeded then key + 1 else key in
      Build.poke_field inf comp node "key" (Int64.of_int key);
      Build.poke_field inf comp node "left" (Int64.of_int (build (d - 1)));
      Build.poke_field inf comp node "right" (Int64.of_int (build (d - 1)));
      node
    end
  in
  let root = build depth in
  let g = Inferior.define_global inf "droot" ptr in
  Build.poke_int inf ptr g (Int64.of_int root);
  inf

let faulty () =
  let inf = Inferior.create () in
  Stdfuncs.register_all inf;
  let comp = node_comp inf in
  let ptr = Ctype.ptr (Ctype.Comp comp) in
  (* cyc: a -> b -> c -> d -> a *)
  let nodes = List.init 4 (fun _ -> Build.alloc inf (Ctype.Comp comp)) in
  List.iteri
    (fun i n ->
      Build.poke_field inf comp n "value" (Int64.of_int (100 + i));
      Build.poke_field inf comp n "next"
        (Int64.of_int (List.nth nodes ((i + 1) mod 4))))
    nodes;
  let cyc = Inferior.define_global inf "cyc" ptr in
  Build.poke_int inf ptr cyc (Int64.of_int (List.hd nodes));
  (* dang: 3 nodes, tail points into unmapped space *)
  let d3 = Build.alloc inf (Ctype.Comp comp) in
  Build.poke_field inf comp d3 "value" 3L;
  Build.poke_field inf comp d3 "next" 0x40000000L;
  let d2 = Build.alloc inf (Ctype.Comp comp) in
  Build.poke_field inf comp d2 "value" 2L;
  Build.poke_field inf comp d2 "next" (Int64.of_int d3);
  let d1 = Build.alloc inf (Ctype.Comp comp) in
  Build.poke_field inf comp d1 "value" 1L;
  Build.poke_field inf comp d1 "next" (Int64.of_int d2);
  let dang = Inferior.define_global inf "dang" ptr in
  Build.poke_int inf ptr dang (Int64.of_int d1);
  let lone = Inferior.define_global inf "lone" ptr in
  Build.poke_int inf ptr lone 0L;
  inf
