(** Deterministic fault injection for the DUEL stack.

    A chaos {!plan} wraps a {!Duel_dbgi.Dbgi.t} in a proxy that injects
    {!Duel_dbgi.Dbgi.Target_transient} faults, torn writes and latency
    according to a seeded schedule; {!resilient} is the matching
    retry-with-backoff wrapper that absorbs transients on idempotent
    operations.  {!mangled_exchange} and {!rig_loopback} apply the
    byte-stream {!Mangler} to the in-process RSP loopback.

    {2 Why injected faults are transient, never permanent}

    An injected {e permanent} [Target_fault] on a valid address would make
    {!Duel_dbgi.Dbgi.readable} answer [false] for a good pointer, and a
    [-->] traversal would silently skip live data — a {e wrong answer},
    not a failure.  Transient faults are outside [readable]'s contract,
    so under chaos every query either converges to the oracle answer or
    surfaces a typed, retriable error.  Nothing in between.

    {2 Why convergence is guaranteed}

    Each fault kind stops firing after {!profile.max_burst} consecutive
    injections on its channel and re-arms only after a success.  Keep
    [max_burst < attempts] in the retry policy and {!resilient} always
    wins; the soak battery exploits exactly this to assert
    oracle-or-typed-error with no flaky verdicts. *)

type profile = {
  read_transient : float;  (** per-read probability of a transient *)
  write_transient : float;
      (** per-write probability of a transient raised before any byte *)
  torn_write : float;
      (** per-write probability the first half lands, then a transient *)
  call_transient : float;
      (** per-call/alloc probability of a transient {e before} execution *)
  delay : float;  (** per-operation probability of injected latency *)
  delay_s : float;  (** length of one injected delay, seconds *)
  max_burst : int;
      (** consecutive-injection cap per channel; [0] disables injection *)
}

val off : profile
(** No injection at all — the control arm.  A plan over [off] must be
    byte-identical to no plan. *)

val mild : profile
(** A believably flaky transport: ~2% transient reads/writes, rare torn
    writes, burst cap 2. *)

val nasty : profile
(** A hostile transport: ~15% transient reads, torn writes, call faults,
    burst cap 4 — still convergent under the default retry policy. *)

val profile_of_string : string -> (profile, string) result
(** ["off"], ["mild"], ["nasty"]. *)

type stats = {
  mutable ops : int;  (** operations offered to the proxy *)
  mutable read_faults : int;
  mutable write_faults : int;
  mutable torn_writes : int;
  mutable call_faults : int;
  mutable delays : int;
}

type plan

val plan : ?seed:int -> profile -> plan
(** Same seed, same profile, same operation sequence — same faults. *)

val seed : plan -> int

val stats : plan -> stats

val wrap_dbgi : ?sleep:(float -> unit) -> plan -> Duel_dbgi.Dbgi.t -> Duel_dbgi.Dbgi.t
(** The fault-injecting proxy.  Zero-length transfers pass through
    untouched (the interface's zero-length convention is not a fault
    surface).  [sleep] defaults to [Unix.sleepf]. *)

(** {1 Retry with backoff} *)

type retry_policy = {
  attempts : int;  (** total tries per operation, including the first *)
  base_backoff : float;  (** seconds before the first retry *)
  max_backoff : float;  (** backoff growth cap, seconds *)
  jitter : float;
      (** fraction of the delay randomised away, [0.] none – [1.] full *)
}

val default_retry : retry_policy
(** 8 attempts, 0.2 ms base doubling to a 5 ms cap, 0.5 jitter — enough
    to beat [nasty]'s burst cap with negligible wall-clock cost. *)

val backoff : retry_policy -> Prng.t -> attempt:int -> float
(** Delay before retry number [attempt] (1-based): exponential growth
    from [base_backoff] capped at [max_backoff], then jittered {e down}
    (never above the cap). *)

type retry_stats = {
  mutable r_ops : int;  (** operations that needed at least one retry *)
  mutable r_retries : int;  (** total extra attempts *)
  mutable r_gave_up : int;  (** operations that exhausted [attempts] *)
  mutable r_slept : float;  (** total backoff time requested, seconds *)
}

val retry_stats_zero : unit -> retry_stats

val resilient :
  ?policy:retry_policy ->
  ?stats:retry_stats ->
  ?sleep:(float -> unit) ->
  ?seed:int ->
  Duel_dbgi.Dbgi.t ->
  Duel_dbgi.Dbgi.t
(** Retries [get_bytes]/[put_bytes] on [Target_transient] with
    exponential backoff.  [alloc_space]/[call_func] are {e not} retried —
    they are not idempotent, and resending one that may have executed
    trades a clean typed error for a possible double execution.  (The
    serve layer regains safe resends for evaluation via its sequence
    numbers; see [Duel_serve].) *)

(** {1 Mangled RSP transports} *)

val mangled_exchange :
  ?max_attempts:int -> Mangler.t -> (string -> string) -> (string -> string)
(** [mangled_exchange m handle] damages both directions of a
    framed request/reply exchange (e.g. [Duel_rsp.Server.handle]) and
    runs the retransmit discipline a real link layer would: a damaged
    request is NAKed by the stub and retransmitted; a damaged reply is
    re-requested and the {e stored} reply re-sent, so the request is
    never re-executed — at-most-once for non-idempotent commands.
    Raises [Failure] after [max_attempts] (default 64) consecutive
    damaged deliveries of one frame; keep per-byte rates around 1%. *)

(** {1 Pre-assembled stacks}

    A [rig] is a fully wired chaotic DBGI — injection plan, retry layer,
    optional mangled transport, data cache — plus the counters the
    [info chaos] command reports. *)

type rig = {
  dbg : Duel_dbgi.Dbgi.t;
  label : string;
  plan_ : plan;
  retry : retry_stats;
  wire : Mangler.stats option;  (** present on RSP rigs only *)
}

val rig_direct :
  ?cache:bool ->
  ?seed:int ->
  ?policy:retry_policy ->
  ?sleep:(float -> unit) ->
  profile ->
  Duel_target.Inferior.t ->
  rig
(** Session stack for the direct backend:
    dcache → resilient → chaos proxy → raw target. *)

val rig_loopback :
  ?cache:bool ->
  ?seed:int ->
  ?policy:retry_policy ->
  ?sleep:(float -> unit) ->
  ?mangle:Mangler.profile ->
  profile ->
  Duel_target.Inferior.t ->
  rig
(** Session stack for the in-process RSP loopback, with the byte mangler
    (default [Mangler.corrupting ~rate:0.01]) between client and stub:
    dcache → resilient → chaos proxy → RSP client → mangled wire → stub. *)

val rig_report : rig -> string list
(** Human-readable counter lines for the [info chaos] command. *)
