type profile = {
  corrupt : float;
  checksum_flip : float;
  drop : float;
  duplicate : float;
  split : float;
  guard : int;
}

let off =
  {
    corrupt = 0.;
    checksum_flip = 0.;
    drop = 0.;
    duplicate = 0.;
    split = 0.;
    guard = 64;
  }

let checksum_only ~rate = { off with checksum_flip = rate }
let corrupting ~rate = { off with corrupt = rate; split = rate }

let wire ~rate =
  { off with corrupt = rate; drop = rate; duplicate = rate; split = rate }

type stats = {
  mutable bytes : int;
  mutable corrupted : int;
  mutable checksum_flips : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable splits : int;
}

(* The mangler runs its own miniature deframer so it knows which bytes
   are checksum digits (for [checksum_flip]) and so the guard distance
   can keep damage events too sparse to compensate each other. *)
type scan = Outside | Inside | Cksum of int

type t = {
  profile : profile;
  prng : Prng.t;
  stats : stats;
  mutable scan : scan;
  mutable cooldown : int; (* bytes until the next damage event is allowed *)
  mutable flip_this_frame : bool; (* checksum_flip decision, drawn at '$' *)
  mutable frame_damaged : bool; (* a corrupt/drop/dup hit this frame *)
}

let create ?(seed = 0) profile =
  if profile.guard < 1 then invalid_arg "Mangler.create: guard < 1";
  {
    profile;
    prng = Prng.create seed;
    stats =
      {
        bytes = 0;
        corrupted = 0;
        checksum_flips = 0;
        dropped = 0;
        duplicated = 0;
        splits = 0;
      };
    scan = Outside;
    cooldown = 0;
    flip_this_frame = false;
    frame_damaged = false;
  }

let stats t = t.stats

(* Step a byte to a nearby value that keeps the frame structure intact:
   never a frame metacharacter (which could re-frame the stream into
   something accidentally valid), never NUL, never the original.  A
   single such change inside one frame always breaks the mod-256
   checksum, so it is always detected. *)
let unframed c =
  match c with '$' | '#' | '}' | '*' | '+' | '-' | '\000' -> false | _ -> true

let step_byte prng c =
  let rec try_delta d =
    if d > 8 then Char.chr (Char.code c lxor 0x01 land 0xff)
    else
      let c' = Char.chr ((Char.code c + d) land 0xff) in
      if unframed c' && c' <> c then c' else try_delta (d + 1)
  in
  try_delta (1 + Prng.int prng 4)

let other_hex prng c =
  let digits = "0123456789abcdef" in
  let rec pick () =
    let c' = digits.[Prng.int prng 16] in
    if Char.lowercase_ascii c' = Char.lowercase_ascii c then pick () else c'
  in
  pick ()

let mangle t s =
  let p = t.profile in
  let chunks = ref [] in
  let buf = Buffer.create (String.length s + 8) in
  let cut () =
    if Buffer.length buf > 0 then begin
      chunks := Buffer.contents buf :: !chunks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      t.stats.bytes <- t.stats.bytes + 1;
      (* advance the frame scanner first so damage decisions know what
         role this byte plays *)
      let role = t.scan in
      (match (t.scan, c) with
      | Outside, '$' ->
          t.scan <- Inside;
          t.frame_damaged <- false;
          t.flip_this_frame <- Prng.chance t.prng p.checksum_flip
      | Outside, _ -> ()
      | Inside, '#' -> t.scan <- Cksum 2
      | Inside, '$' ->
          t.frame_damaged <- false;
          t.flip_this_frame <- Prng.chance t.prng p.checksum_flip
      | Inside, _ -> ()
      | Cksum 1, _ -> t.scan <- Outside
      | Cksum _, _ -> t.scan <- Cksum 1);
      if t.cooldown > 0 then t.cooldown <- t.cooldown - 1;
      (* At most ONE damage event per frame (and none in a frame slated
         for a checksum flip): two events in one frame can compensate
         each other modulo 256 — a +8 step on a body byte with a -8
         elsewhere (or a duplicated 0xF8, or a stepped checksum digit)
         adds up to a false-VALID frame carrying a wrong payload.  The
         guard distance alone cannot prevent that; the per-frame cap
         does.  [frame_damaged] re-arms at the next '$'. *)
      let armed =
        t.cooldown = 0 && (not t.flip_this_frame) && not t.frame_damaged
      in
      let damage kind =
        t.cooldown <- p.guard;
        t.frame_damaged <- true;
        kind ()
      in
      (* corrupting a structural byte is special: a stepped '$' loses the
         frame with no Bad event at all (silent, like a drop), so plain
         corruption never touches '$'/'#' — [wire]'s drop models that
         failure honestly instead *)
      let structural = c = '$' || c = '#' in
      (match role with
      | Cksum _ when t.flip_this_frame && not t.frame_damaged ->
          (* flip exactly one digit per selected frame: take the first *)
          t.flip_this_frame <- false;
          t.frame_damaged <- true;
          t.stats.checksum_flips <- t.stats.checksum_flips + 1;
          Buffer.add_char buf (other_hex t.prng c)
      | _ ->
          (* dropping or duplicating a NUL is invisible to a mod-256
             checksum (it contributes zero) — real RSP payloads are
             NUL-free, so the model refuses that one undetectable case *)
          if armed && c <> '\000' && Prng.chance t.prng p.drop then
            damage (fun () -> t.stats.dropped <- t.stats.dropped + 1)
          else if armed && c <> '\000' && Prng.chance t.prng p.duplicate then
            damage (fun () ->
                t.stats.duplicated <- t.stats.duplicated + 1;
                Buffer.add_char buf c;
                Buffer.add_char buf c)
          else if armed && (not structural) && Prng.chance t.prng p.corrupt
          then
            damage (fun () ->
                t.stats.corrupted <- t.stats.corrupted + 1;
                Buffer.add_char buf (step_byte t.prng c))
          else Buffer.add_char buf c);
      if Prng.chance t.prng p.split then begin
        t.stats.splits <- t.stats.splits + 1;
        cut ()
      end)
    s;
  cut ();
  List.rev !chunks
