(* One direction of the relay: read from [src], mangle, queue, write to
   [dst].  The queue is bounded by refusing to read while it is long, so
   a stalled reader exerts backpressure instead of ballooning the proxy
   — the same discipline the serve server applies to its own queues. *)
type leg = {
  src : Unix.file_descr;
  dst : Unix.file_descr;
  mangler : Mangler.t;
  mutable queue : string list; (* chunks pending write, in order *)
  mutable eof : bool; (* saw EOF on [src]; flush then shut down [dst] *)
  mutable down : bool; (* this direction is finished *)
}

type t = {
  a : leg; (* client -> server ("up") *)
  b : leg; (* server -> client ("down") *)
  owned : Unix.file_descr list; (* descriptors the proxy must close *)
  mutable closed : bool;
}

let max_queued_chunks = 64
let read_size = 4096

let of_fds ~up ~down client_fd server_fd =
  {
    a = { src = client_fd; dst = server_fd; mangler = up; queue = []; eof = false; down = false };
    b = { src = server_fd; dst = client_fd; mangler = down; queue = []; eof = false; down = false };
    owned = [ client_fd; server_fd ];
    closed = false;
  }

let between ~up ~down () =
  let client_end, pc = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server_end, ps = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  List.iter Unix.set_nonblock [ client_end; pc; ps; server_end ];
  (of_fds ~up ~down pc ps, client_end, server_end)

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.owned
  end

let buf = Bytes.create read_size

let pump_read leg =
  match Unix.read leg.src buf 0 read_size with
  | 0 -> leg.eof <- true
  | n ->
      let chunks = Mangler.mangle leg.mangler (Bytes.sub_string buf 0 n) in
      leg.queue <- leg.queue @ chunks
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> leg.eof <- true

let pump_write leg =
  match leg.queue with
  | [] -> ()
  | chunk :: rest -> (
      match Unix.write_substring leg.dst chunk 0 (String.length chunk) with
      | n ->
          leg.queue <-
            (if n = String.length chunk then rest
             else String.sub chunk n (String.length chunk - n) :: rest)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
          leg.queue <- [];
          leg.eof <- true;
          leg.down <- true)

let settle leg =
  if leg.eof && leg.queue = [] && not leg.down then begin
    leg.down <- true;
    (* half-close: the peer sees EOF for this direction only *)
    try Unix.shutdown leg.dst Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()
  end

let step t timeout =
  if t.closed then false
  else begin
    let want_read l =
      (not l.eof) && (not l.down) && List.length l.queue < max_queued_chunks
    in
    let reads =
      List.filter_map
        (fun l -> if want_read l then Some l.src else None)
        [ t.a; t.b ]
    in
    let writes =
      List.filter_map
        (fun l -> if l.queue <> [] && not l.down then Some l.dst else None)
        [ t.a; t.b ]
    in
    (match Unix.select reads writes [] timeout with
    | rs, ws, _ ->
        List.iter
          (fun l -> if List.memq l.src rs && want_read l then pump_read l)
          [ t.a; t.b ];
        List.iter
          (fun l -> if List.memq l.dst ws then pump_write l)
          [ t.a; t.b ]
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    settle t.a;
    settle t.b;
    if t.a.down && t.b.down then begin
      close t;
      false
    end
    else true
  end

let serve ?max_conns ~up ~down ~seed ~listen ~upstream () =
  let lsock = Unix.socket (Unix.domain_of_sockaddr listen) Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock listen;
  Unix.listen lsock 8;
  let conn = ref 0 in
  let more () = match max_conns with None -> true | Some n -> !conn < n in
  Fun.protect
    ~finally:(fun () -> try Unix.close lsock with Unix.Unix_error _ -> ())
    (fun () ->
      while more () do
        let cfd, _ = Unix.accept lsock in
        let sfd =
          Unix.socket (Unix.domain_of_sockaddr upstream) Unix.SOCK_STREAM 0
        in
        (match Unix.connect sfd upstream with
        | () ->
            Unix.set_nonblock cfd;
            Unix.set_nonblock sfd;
            (* per-connection manglers, seeded reproducibly *)
            let t =
              of_fds
                ~up:(Mangler.create ~seed:(seed + (2 * !conn)) up)
                ~down:(Mangler.create ~seed:(seed + (2 * !conn) + 1) down)
                cfd sfd
            in
            while step t 0.5 do
              ()
            done
        | exception Unix.Unix_error _ ->
            List.iter
              (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
              [ cfd; sfd ]);
        incr conn
      done)
