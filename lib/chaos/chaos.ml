module Dbgi = Duel_dbgi.Dbgi
module Dcache = Duel_dbgi.Dcache
module Inferior = Duel_target.Inferior

type profile = {
  read_transient : float;
  write_transient : float;
  torn_write : float;
  call_transient : float;
  delay : float;
  delay_s : float;
  max_burst : int;
}

let off =
  {
    read_transient = 0.;
    write_transient = 0.;
    torn_write = 0.;
    call_transient = 0.;
    delay = 0.;
    delay_s = 0.;
    max_burst = 0;
  }

let mild =
  {
    read_transient = 0.02;
    write_transient = 0.02;
    torn_write = 0.005;
    call_transient = 0.01;
    delay = 0.005;
    delay_s = 0.0002;
    max_burst = 2;
  }

let nasty =
  {
    read_transient = 0.15;
    write_transient = 0.12;
    torn_write = 0.04;
    call_transient = 0.08;
    delay = 0.02;
    delay_s = 0.0005;
    max_burst = 4;
  }

let profile_of_string = function
  | "off" -> Ok off
  | "mild" -> Ok mild
  | "nasty" -> Ok nasty
  | s -> Error (Printf.sprintf "unknown chaos profile %S (off|mild|nasty)" s)

type stats = {
  mutable ops : int;
  mutable read_faults : int;
  mutable write_faults : int;
  mutable torn_writes : int;
  mutable call_faults : int;
  mutable delays : int;
}

type plan = {
  prng : Prng.t;
  profile : profile;
  p_stats : stats;
  p_seed : int;
  (* consecutive-injection counters, one per channel; injection is
     suppressed once a counter reaches [max_burst] and the counter
     re-arms on the next successful pass-through.  This is what turns
     "probably converges" into "always converges within max_burst + 1
     attempts" — the property the soak battery's oracle check needs. *)
  mutable burst_read : int;
  mutable burst_write : int;
  mutable burst_call : int;
}

let plan ?(seed = 0) profile =
  {
    prng = Prng.create seed;
    profile;
    p_stats =
      {
        ops = 0;
        read_faults = 0;
        write_faults = 0;
        torn_writes = 0;
        call_faults = 0;
        delays = 0;
      };
    p_seed = seed;
    burst_read = 0;
    burst_write = 0;
    burst_call = 0;
  }

let seed t = t.p_seed
let stats t = t.p_stats

let wrap_dbgi ?(sleep = Unix.sleepf) plan (d : Dbgi.t) =
  let p = plan.profile in
  let st = plan.p_stats in
  let tick () =
    st.ops <- st.ops + 1;
    if Prng.chance plan.prng p.delay then begin
      st.delays <- st.delays + 1;
      sleep p.delay_s
    end
  in
  let get_bytes ~addr ~len =
    if len = 0 then d.Dbgi.get_bytes ~addr ~len
    else begin
      tick ();
      if plan.burst_read < p.max_burst && Prng.chance plan.prng p.read_transient
      then begin
        plan.burst_read <- plan.burst_read + 1;
        st.read_faults <- st.read_faults + 1;
        raise (Dbgi.Target_transient { addr; len })
      end
      else begin
        plan.burst_read <- 0;
        d.Dbgi.get_bytes ~addr ~len
      end
    end
  in
  let put_bytes ~addr data =
    let len = Bytes.length data in
    if len = 0 then d.Dbgi.put_bytes ~addr data
    else begin
      tick ();
      if
        plan.burst_write < p.max_burst
        && Prng.chance plan.prng p.write_transient
      then begin
        plan.burst_write <- plan.burst_write + 1;
        st.write_faults <- st.write_faults + 1;
        raise (Dbgi.Target_transient { addr; len })
      end
      else if
        plan.burst_write < p.max_burst
        && len > 1
        && Prng.chance plan.prng p.torn_write
      then begin
        (* the realistic write failure: part of the data landed before
           the wire died.  The retry (same bytes, same address) is
           idempotent, and the caller's data cache must treat its lines
           as stale until one attempt completes. *)
        plan.burst_write <- plan.burst_write + 1;
        st.torn_writes <- st.torn_writes + 1;
        d.Dbgi.put_bytes ~addr (Bytes.sub data 0 (len / 2));
        raise (Dbgi.Target_transient { addr; len })
      end
      else begin
        plan.burst_write <- 0;
        d.Dbgi.put_bytes ~addr data
      end
    end
  in
  let flake_call () =
    tick ();
    if plan.burst_call < p.max_burst && Prng.chance plan.prng p.call_transient
    then begin
      plan.burst_call <- plan.burst_call + 1;
      st.call_faults <- st.call_faults + 1;
      (* before execution, so a caller that chooses to retry may *)
      raise (Dbgi.Target_transient { addr = 0; len = 0 })
    end
    else plan.burst_call <- 0
  in
  let alloc_space len =
    flake_call ();
    d.Dbgi.alloc_space len
  in
  let call_func name args =
    flake_call ();
    d.Dbgi.call_func name args
  in
  Dbgi.add_layer "chaos" { d with Dbgi.get_bytes; put_bytes; alloc_space; call_func }

(* Retry with backoff *)

type retry_policy = {
  attempts : int;
  base_backoff : float;
  max_backoff : float;
  jitter : float;
}

let default_retry =
  { attempts = 8; base_backoff = 0.0002; max_backoff = 0.005; jitter = 0.5 }

let backoff policy prng ~attempt =
  let scaled = policy.base_backoff *. (2. ** float_of_int (attempt - 1)) in
  let capped = Float.min policy.max_backoff scaled in
  capped *. (1. -. Prng.float prng policy.jitter)

type retry_stats = {
  mutable r_ops : int;
  mutable r_retries : int;
  mutable r_gave_up : int;
  mutable r_slept : float;
}

let retry_stats_zero () =
  { r_ops = 0; r_retries = 0; r_gave_up = 0; r_slept = 0. }

let resilient ?(policy = default_retry) ?stats ?(sleep = Unix.sleepf)
    ?(seed = 0) (d : Dbgi.t) =
  let st = match stats with Some s -> s | None -> retry_stats_zero () in
  let prng = Prng.create (seed lxor 0x5e11) in
  let with_retry op =
    let rec go attempt =
      try op ()
      with Dbgi.Target_transient _ as e ->
        if attempt = 1 then st.r_ops <- st.r_ops + 1;
        if attempt >= policy.attempts then begin
          st.r_gave_up <- st.r_gave_up + 1;
          raise e
        end
        else begin
          st.r_retries <- st.r_retries + 1;
          let d = backoff policy prng ~attempt in
          st.r_slept <- st.r_slept +. d;
          sleep d;
          go (attempt + 1)
        end
    in
    go 1
  in
  Dbgi.add_layer "retry"
    {
      d with
      Dbgi.get_bytes =
        (fun ~addr ~len -> with_retry (fun () -> d.Dbgi.get_bytes ~addr ~len));
      put_bytes =
        (fun ~addr data -> with_retry (fun () -> d.Dbgi.put_bytes ~addr data));
      (* alloc_space / call_func deliberately un-retried: not idempotent *)
    }

(* Mangled RSP exchange *)

module Packet = Duel_rsp.Packet

let mangled_exchange ?(max_attempts = 64) m handle =
  let reassemble s = String.concat "" (Mangler.mangle m s) in
  fun framed ->
    (* Request leg: the stub NAKs anything that does not decode, and the
       link layer retransmits.  Our corruption modes cannot turn one
       valid frame into a different valid frame (see Mangler), so the
       stub executes either exactly [framed] or nothing. *)
    let rec send attempt =
      if attempt > max_attempts then
        failwith "chaos: mangled exchange did not converge (request)";
      let delivered = reassemble framed in
      let reply = handle delivered in
      if reply = "-" then send (attempt + 1) else reply
    in
    (* Reply leg: on damage the client NAKs and the stub re-sends its
       stored reply — the command is not re-executed, which keeps
       alloc/call at-most-once even under retransmission. *)
    let reply = send 1 in
    let rec recv attempt =
      if attempt > max_attempts then
        failwith "chaos: mangled exchange did not converge (reply)";
      let delivered = reassemble reply in
      match Packet.decode delivered with
      | _ -> delivered
      | exception Packet.Malformed _ -> recv (attempt + 1)
    in
    recv 1

(* Pre-assembled stacks *)

type rig = {
  dbg : Dbgi.t;
  label : string;
  plan_ : plan;
  retry : retry_stats;
  wire : Mangler.stats option;
}

let cache_over inf raw =
  Dcache.wrap
    ~config:
      {
        Dcache.default_config with
        stale_policy =
          Dcache.Probe
            (fun () -> Duel_mem.Memory.generation (Inferior.mem inf));
      }
    raw

let assemble ?(cache = true) ~seed ~policy ~sleep ~label ~wire profile inf raw =
  let plan_ = plan ~seed profile in
  let retry = retry_stats_zero () in
  let chaotic = wrap_dbgi ~sleep plan_ raw in
  let stable = resilient ~policy ~stats:retry ~sleep ~seed chaotic in
  let dbg = if cache then cache_over inf stable else stable in
  { dbg; label; plan_; retry; wire }

let rig_direct ?cache ?(seed = 0) ?(policy = default_retry)
    ?(sleep = Unix.sleepf) profile inf =
  let raw = Duel_target.Backend.direct ~cache:false inf in
  assemble ?cache ~seed ~policy ~sleep ~label:"direct" ~wire:None profile inf
    raw

let rig_loopback ?cache ?(seed = 0) ?(policy = default_retry)
    ?(sleep = Unix.sleepf) ?(mangle = Mangler.corrupting ~rate:0.01) profile
    inf =
  let server = Duel_rsp.Server.create inf in
  let m = Mangler.create ~seed:(seed lxor 0x3a7) mangle in
  let wire = Mangler.stats m in
  let exchange = mangled_exchange m (Duel_rsp.Server.handle server) in
  let raw =
    Duel_rsp.Client.connect ~exchange
      (Duel_rsp.Client.debug_info_of_inferior inf)
  in
  assemble ?cache ~seed ~policy ~sleep ~label:"rsp-loopback"
    ~wire:(Some wire) profile inf raw

let rig_report r =
  let s = r.plan_.p_stats in
  let base =
    [
      Printf.sprintf "chaos: %s backend, seed %d" r.label r.plan_.p_seed;
      Printf.sprintf
        "injected: %d read, %d write, %d torn, %d call transients; %d delays \
         (%d ops)"
        s.read_faults s.write_faults s.torn_writes s.call_faults s.delays
        s.ops;
      Printf.sprintf "retry: %d ops retried, %d extra attempts, %d gave up, %.1f ms backoff"
        r.retry.r_ops r.retry.r_retries r.retry.r_gave_up
        (1000. *. r.retry.r_slept);
    ]
  in
  match r.wire with
  | None -> base
  | Some w ->
      base
      @ [
          Printf.sprintf
            "wire: %d bytes; %d corrupted, %d checksum flips, %d dropped, %d \
             duplicated, %d splits"
            w.Mangler.bytes w.Mangler.corrupted w.Mangler.checksum_flips
            w.Mangler.dropped w.Mangler.duplicated w.Mangler.splits;
        ]
