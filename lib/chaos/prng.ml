(* Splitmix64: one word of state, trivially seedable, fully deterministic
   — exactly what a replayable fault schedule needs.  (Vigna's reference
   constants.) *)

type t = { mutable state : int64 }

let create seed =
  (* decorate small integer seeds so seed 0 and seed 1 diverge instantly *)
  { state = Int64.add (Int64.of_int seed) 0x9e3779b97f4a7c15L }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  (* shift keeps the result a nonnegative OCaml int *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 2) (Int64.of_int n))

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))

let chance t p =
  let u = float t 1.0 in
  u < p
