(** A socket-level chaos proxy.

    Relays bytes between a client and a server file descriptor, passing
    each direction through its own {!Mangler} — the same fault surface a
    real flaky network link presents to [duel_serve], exercised through
    the server's actual [select] loop and the client's actual deframer.

    Two shapes:
    - {!between} builds an in-process relay out of two socketpairs, to be
      stepped cooperatively from a test (give one end to
      [Serve.Server.inject], dial the other from [Serve.Client]);
    - {!serve} runs a standalone accept loop in front of a real TCP
      server, for manual chaos testing from the command line. *)

type t

val between : up:Mangler.t -> down:Mangler.t -> unit -> t * Unix.file_descr * Unix.file_descr
(** [between ~up ~down ()] is [(proxy, client_end, server_end)].  Bytes
    written on [client_end] arrive on [server_end] mangled by [up];
    bytes written on [server_end] arrive on [client_end] mangled by
    [down].  Both returned descriptors are non-blocking.  Close either
    end (or {!close} the proxy) to tear the relay down; EOF propagates
    after queued bytes drain. *)

val step : t -> float -> bool
(** Pump the relay once, waiting at most the given seconds for
    readiness.  Returns [false] once both directions have shut down (the
    proxy is then fully closed). *)

val close : t -> unit
(** Close all proxy-held descriptors immediately. *)

val serve :
  ?max_conns:int ->
  up:Mangler.profile ->
  down:Mangler.profile ->
  seed:int ->
  listen:Unix.sockaddr ->
  upstream:Unix.sockaddr ->
  unit ->
  unit
(** Run a blocking accept-and-relay loop: each accepted connection gets
    its own upstream connection and its own pair of manglers (seeded
    from [seed] and the connection index, so runs are replayable).
    Returns when [max_conns] connections (default unlimited) have come
    and gone. *)
