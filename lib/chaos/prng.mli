(** A tiny deterministic PRNG (splitmix64).

    Fault injection must be replayable from a printed seed, across runs
    and platforms, and must never perturb (or be perturbed by) the global
    [Random] state the test harnesses use.  Splitmix64 is the standard
    seeding mix: one 64-bit word of state, full period, and good enough
    statistics for scheduling faults. *)

type t

val create : int -> t
(** Deterministic: the same seed always yields the same stream. *)

val copy : t -> t

val bits64 : t -> int64
(** The next raw 64-bit word. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n)].  [n] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [[0, x)]. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] ([p <= 0.] never,
    [p >= 1.] always).  Always consumes one draw, so schedules with
    different rates stay aligned on the same seed. *)
