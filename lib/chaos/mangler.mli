(** A deterministic byte-stream mangler for RSP transports.

    Sits between two peers and damages the bytes in flight the way a
    hostile wire would: corrupt a byte, drop a byte, duplicate a byte,
    flip a checksum digit, split a write into arbitrary chunks.  Every
    decision comes from a seeded {!Prng}, so a failing schedule replays
    exactly from its seed.

    {2 Detectability}

    The RSP frame format can only recover from damage it can {e detect}
    (checksum mismatch, bad framing).  Plain byte corruption therefore
    steps a byte to a {e nearby plain value} — never to ['$'], ['#'],
    ['}'], ['*'], ['+'], ['-'] or NUL — and at most {e one} damage event
    lands per frame (with {!profile.guard} bytes between events across
    frames): two changes inside one frame could compensate each other
    modulo 256 into a false-valid frame carrying a wrong payload, which
    is the one failure the whole recovery model cannot survive.  Drops
    and duplicates skip NUL bytes for the same reason — a zero byte
    contributes nothing to the checksum.  Dropping a ['$'] can still
    lose a frame {e silently} (junk skip, no [Bad] event); that is the
    fault the client's receive timeout exists for. *)

type profile = {
  corrupt : float;  (** per-byte probability of stepping a payload byte *)
  checksum_flip : float;
      (** per-frame probability of corrupting a checksum digit — always
          detectable, the pure NAK/retransmit exercise *)
  drop : float;  (** per-byte probability the byte vanishes *)
  duplicate : float;  (** per-byte probability the byte is sent twice *)
  split : float;  (** per-byte probability of a chunk boundary *)
  guard : int;
      (** minimum bytes between two damage events (detectability); at
          least 1 *)
}

val off : profile
(** All rates zero: the identity mangler (the fault-rate-0 control). *)

val checksum_only : rate:float -> profile
(** Only checksum-digit flips, at [rate] per frame: every damaged frame
    is NAKed and retransmitted, nothing is ever lost or false-valid. *)

val corrupting : rate:float -> profile
(** Plain-byte corruption (plus chunk splitting at the same rate):
    damage is always detectable; frames are never silently lost. *)

val wire : rate:float -> profile
(** The full hostile wire: corruption, drops, duplicates and splits all
    at [rate].  Frames can be lost silently (dropped ['$']) — peers need
    timeouts, not just NAKs. *)

type stats = {
  mutable bytes : int;  (** bytes offered to the mangler *)
  mutable corrupted : int;
  mutable checksum_flips : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable splits : int;
}

type t

val create : ?seed:int -> profile -> t
val stats : t -> stats

val mangle : t -> string -> string list
(** [mangle t s] is the damaged byte stream, already divided into the
    chunks a read loop should receive (concatenate them for a
    single-delivery transport).  Deterministic in (seed, call sequence). *)
